(** CXL design-space explorer: how does a workload behave across memory
    technologies, cache depths and persist-path provisioning?

    Run with:
      dune exec examples/cxl_explorer.exe                 # defaults (lbm)
      dune exec examples/cxl_explorer.exe -- -w xsbench
      dune exec examples/cxl_explorer.exe -- -w tatp --bandwidth 1,4,32 *)

open Cmdliner
open Cwsp_sim

let explore name bandwidths =
  match Cwsp_workloads.Registry.find name with
  | None ->
    Printf.eprintf "unknown workload %S\n" name;
    exit 1
  | Some w ->
    let slow scheme cfg = Cwsp_core.Api.slowdown w ~scheme cfg in
    Printf.printf "workload: %s — %s\n\n" w.name w.description;

    (* 1. memory technologies (Fig 27 / Tab 1 style) *)
    print_endline "cWSP overhead by main-memory technology:";
    Cwsp_util.Table.print
      ~headers:[ "memory"; "read ns"; "write GB/s"; "cWSP slowdown" ]
      (List.map
         (fun (m : Nvm.t) ->
           [
             m.mem_name;
             Printf.sprintf "%.0f" m.read_ns;
             Printf.sprintf "%.1f" m.write_bw_gbs;
             Cwsp_util.Table.f3
               (slow Cwsp_schemes.Schemes.cwsp { Config.default with mem = m });
           ])
         (Nvm.all_techs @ Nvm.cxl_devices));

    (* 2. hierarchy depth (Fig 1 style), PMEM vs DRAM main memory *)
    print_endline "\nPMEM-vs-DRAM slowdown by cache depth (no persistence):";
    Cwsp_util.Table.print
      ~headers:[ "levels"; "PMEM/DRAM" ]
      (List.map
         (fun levels ->
           let base = Config.fig1_levels levels in
           let t mem =
             (Cwsp_core.Api.stats w Cwsp_schemes.Schemes.baseline
                { base with mem })
               .elapsed_ns
           in
           [
             string_of_int levels;
             Cwsp_util.Table.f3 (t Nvm.cxl_pmem /. t Nvm.cxl_dram);
           ])
         [ 2; 3; 4; 5 ]);

    (* 3. persist-path bandwidth (Fig 21 style) *)
    print_endline "\ncWSP overhead by persist-path bandwidth:";
    Cwsp_util.Table.print
      ~headers:[ "GB/s"; "cWSP slowdown" ]
      (List.map
         (fun bw ->
           [
             Printf.sprintf "%g" bw;
             Cwsp_util.Table.f3
               (slow Cwsp_schemes.Schemes.cwsp
                  { Config.default with path_bandwidth_gbs = bw });
           ])
         bandwidths)

let cmd =
  let workload =
    Arg.(value & opt string "lbm" & info [ "w"; "workload" ] ~docv:"NAME")
  in
  let bandwidths =
    Arg.(
      value
      & opt (list float) [ 1.0; 2.0; 4.0; 10.0; 32.0 ]
      & info [ "bandwidth" ] ~docv:"GBPS,..")
  in
  Cmd.v
    (Cmd.info "cxl_explorer" ~doc:"cWSP design-space exploration")
    Term.(const explore $ workload $ bandwidths)

let () = exit (Cmd.eval cmd)
