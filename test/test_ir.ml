(* Tests for the IR: types, evaluation semantics, builder, validator. *)

open Cwsp_ir
open Types

let qtest = QCheck_alcotest.to_alcotest

(* ---- uses / defs ---- *)

let test_uses_defs () =
  Alcotest.(check (list int)) "bin uses" [ 1; 2 ] (uses (Bin (Add, 0, Reg 1, Reg 2)));
  Alcotest.(check (option int)) "bin def" (Some 0) (def (Bin (Add, 0, Reg 1, Reg 2)));
  Alcotest.(check (list int)) "store uses" [ 3; 4 ] (uses (Store (3, 0, Reg 4)));
  Alcotest.(check (option int)) "store no def" None (def (Store (3, 0, Reg 4)));
  Alcotest.(check (option int)) "call ret def" (Some 7)
    (def (Call ("f", [ Imm 1 ], Some 7)));
  Alcotest.(check (list int)) "ckpt uses" [ 5 ] (uses (Ckpt 5));
  Alcotest.(check bool) "atomic is sync" true (is_sync (Atomic_rmw (Add, 0, 1, 0, Imm 1)));
  Alcotest.(check bool) "store not sync" false (is_sync (Store (0, 0, Imm 1)));
  Alcotest.(check bool) "ckpt writes memory" true (writes_memory (Ckpt 0));
  Alcotest.(check bool) "load reads memory" true (reads_memory (Load (0, 1, 8)));
  (* flush/pfence order the persist stream without touching the memory
     image or acting as sync points *)
  Alcotest.(check (list int)) "flush uses its base" [ 3 ] (uses (Flush (3, 8)));
  Alcotest.(check (option int)) "flush no def" None (def (Flush (3, 8)));
  Alcotest.(check (list int)) "pfence no uses" [] (uses Pfence);
  Alcotest.(check bool) "flush not sync" false (is_sync (Flush (0, 0)));
  Alcotest.(check bool) "pfence not sync" false (is_sync Pfence);
  Alcotest.(check bool) "flush writes no memory" false
    (writes_memory (Flush (0, 0)));
  Alcotest.(check bool) "flush reads no memory" false
    (reads_memory (Flush (0, 0)))

let test_term_succs () =
  Alcotest.(check (list int)) "jmp" [ 3 ] (term_succs (Jmp 3));
  Alcotest.(check (list int)) "br" [ 1; 2 ] (term_succs (Br (0, 1, 2)));
  Alcotest.(check (list int)) "br same target deduped" [ 1 ] (term_succs (Br (0, 1, 1)));
  Alcotest.(check (list int)) "ret" [] (term_succs (Ret None))

(* ---- eval semantics ---- *)

let test_eval_basic () =
  Alcotest.(check int) "add" 7 (Eval.binop Add 3 4);
  Alcotest.(check int) "sub" (-1) (Eval.binop Sub 3 4);
  Alcotest.(check int) "div by zero total" 0 (Eval.binop Div 5 0);
  Alcotest.(check int) "rem by zero total" 0 (Eval.binop Rem 5 0);
  Alcotest.(check int) "div min by -1" (-min_int) (Eval.binop Div min_int (-1));
  Alcotest.(check int) "shl" 8 (Eval.binop Shl 1 3);
  Alcotest.(check int) "shift by 63 is zero (lsl)" 0 (Eval.binop Shl 1 63);
  Alcotest.(check int) "ashr sign" (-1) (Eval.binop Ashr (-1) 5);
  Alcotest.(check int) "cmp lt true" 1 (Eval.cmpop Lt 1 2);
  Alcotest.(check int) "cmp ge false" 0 (Eval.cmpop Ge 1 2)

let prop_eval_add_commutes =
  QCheck.Test.make ~name:"add commutes" ~count:300
    QCheck.(pair int int)
    (fun (a, b) -> Eval.binop Add a b = Eval.binop Add b a)

let prop_eval_sub_add_roundtrip =
  QCheck.Test.make ~name:"a+b-b = a" ~count:300
    QCheck.(pair int int)
    (fun (a, b) -> Eval.binop Sub (Eval.binop Add a b) b = a)

let prop_eval_cmp_total_order =
  QCheck.Test.make ~name:"exactly one of lt/eq/gt" ~count:300
    QCheck.(pair int int)
    (fun (a, b) ->
      Eval.cmpop Lt a b + Eval.cmpop Eq a b + Eval.cmpop Gt a b = 1)

(* ---- builder ---- *)

let tiny_program () =
  let b = Builder.program () in
  Builder.global b "data" ~size:64 ~init:[ (0, 42) ] ();
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let p = la fb "data" in
      let v = load fb p 0 in
      let w = add fb (Reg v) (Imm 1) in
      store fb p 8 (Reg w);
      call_void fb "__out" [ Reg w ];
      ret fb None);
  Builder.set_main b "main";
  Builder.finish b

let test_builder_valid () =
  let p = tiny_program () in
  Alcotest.(check (list string)) "validates" [] (Validate.check p)

let test_builder_loop_structure () =
  let b = Builder.program () in
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let acc = imm fb 0 in
      let _ =
        loop fb ~from:(Imm 0) ~below:(Imm 10) (fun i ->
            emit fb (Bin (Add, acc, Reg acc, Reg i)))
      in
      call_void fb "__out" [ Reg acc ];
      ret fb None);
  Builder.set_main b "main";
  let p = Builder.finish b in
  Validate.check_exn p;
  let m = Cwsp_interp.Machine.run_functional p in
  Alcotest.(check (list int)) "sum 0..9" [ 45 ] (Cwsp_interp.Machine.outputs m)

let test_builder_rejects_unterminated () =
  let b = Builder.program () in
  Alcotest.check_raises "unterminated block"
    (Invalid_argument "Builder.func: block 0 of f not terminated") (fun () ->
      Builder.func b "f" ~nparams:0 (fun _fb -> ()))

let test_builder_rejects_double_term () =
  let b = Builder.program () in
  let exn = ref None in
  (try
     Builder.func b "f" ~nparams:0 (fun fb ->
         Builder.ret fb None;
         Builder.ret fb None)
   with Invalid_argument m -> exn := Some m);
  Alcotest.(check bool) "raised" true (!exn <> None)

(* ---- validator ---- *)

let test_validator_catches_bad_global () =
  let p = tiny_program () in
  let bad =
    {
      p with
      Prog.funcs =
        [
          ( "main",
            {
              (Prog.func_exn p "main") with
              Prog.blocks =
                [| { Prog.instrs = [ La (0, "nonexistent") ]; term = Ret None } |];
            } );
        ];
    }
  in
  Alcotest.(check bool) "error reported" true (Validate.check bad <> [])

let test_validator_catches_bad_register () =
  let fn =
    {
      Prog.name = "main";
      nparams = 0;
      nregs = 1;
      blocks = [| { Prog.instrs = [ Mov (5, Imm 0) ]; term = Ret None } |];
    }
  in
  let p = { Prog.globals = []; funcs = [ ("main", fn) ]; main = "main" } in
  Alcotest.(check bool) "register out of range" true (Validate.check p <> [])

let test_validator_catches_bad_label () =
  let fn =
    {
      Prog.name = "main";
      nparams = 0;
      nregs = 1;
      blocks = [| { Prog.instrs = []; term = Jmp 9 } |];
    }
  in
  let p = { Prog.globals = []; funcs = [ ("main", fn) ]; main = "main" } in
  Alcotest.(check bool) "label out of range" true (Validate.check p <> [])

let test_validator_duplicate_boundary_id () =
  let fn =
    {
      Prog.name = "main";
      nparams = 0;
      nregs = 1;
      blocks =
        [|
          {
            Prog.instrs = [ Boundary 3; Mov (0, Imm 1); Boundary 3 ];
            term = Ret None;
          };
        |];
    }
  in
  let p = { Prog.globals = []; funcs = [ ("main", fn) ]; main = "main" } in
  Alcotest.(check bool) "duplicate boundary id" true (Validate.check p <> []);
  let fn_ok =
    {
      fn with
      Prog.blocks =
        [|
          {
            Prog.instrs = [ Boundary 3; Mov (0, Imm 1); Boundary 4 ];
            term = Ret None;
          };
        |];
    }
  in
  let p_ok = { Prog.globals = []; funcs = [ ("main", fn_ok) ]; main = "main" } in
  Alcotest.(check (list string)) "distinct ids fine" [] (Validate.check p_ok)

let test_validator_intrinsic_arity () =
  let fn =
    {
      Prog.name = "main";
      nparams = 0;
      nregs = 1;
      blocks =
        [| { Prog.instrs = [ Call ("__out", [], None) ]; term = Ret None } |];
    }
  in
  let p = { Prog.globals = []; funcs = [ ("main", fn) ]; main = "main" } in
  Alcotest.(check bool) "arity error" true (Validate.check p <> [])

(* ---- pretty-printing ---- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_pp_smoke () =
  let p = tiny_program () in
  let s = Pp.program_str p in
  Alcotest.(check bool) "mentions main" true (contains s "func main");
  Alcotest.(check bool) "mentions global" true (contains s "global @data")

(* ---- parser round-trips ---- *)

let test_parse_roundtrip_tiny () =
  let p = tiny_program () in
  let printed = Pp.program_str p in
  let reparsed = Parse.program printed in
  Alcotest.(check (list string)) "reparsed validates" [] (Validate.check reparsed);
  Alcotest.(check string) "print-parse-print fixpoint" printed
    (Pp.program_str reparsed);
  let m1 = Cwsp_interp.Machine.run_functional p in
  let m2 = Cwsp_interp.Machine.run_functional reparsed in
  Alcotest.(check (list int)) "same behaviour" (Cwsp_interp.Machine.outputs m1)
    (Cwsp_interp.Machine.outputs m2)

(* a program with explicit flush/pfence instructions survives the text
   format: print -> parse -> print is a fixpoint and behaviour matches *)
let explicit_tiny () =
  let b = Builder.program () in
  Builder.global b "data" ~size:64 ~init:[ (0, 5) ] ();
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let p = la fb "data" in
      let v = load fb p 0 in
      let w = add fb (Reg v) (Imm 2) in
      store fb p 8 (Reg w);
      flush fb p 8;
      pfence fb;
      call_void fb "__out" [ Reg w ];
      ret fb None);
  Builder.set_main b "main";
  Builder.finish b

let test_parse_roundtrip_flush () =
  let p = explicit_tiny () in
  let printed = Pp.program_str p in
  Alcotest.(check bool) "prints flush" true (contains printed "flush [");
  Alcotest.(check bool) "prints pfence" true (contains printed "pfence");
  let reparsed = Parse.program printed in
  Alcotest.(check (list string)) "reparsed validates" [] (Validate.check reparsed);
  Alcotest.(check string) "print-parse-print fixpoint" printed
    (Pp.program_str reparsed);
  let m1 = Cwsp_interp.Machine.run_functional p in
  let m2 = Cwsp_interp.Machine.run_functional reparsed in
  Alcotest.(check (list int)) "same behaviour" (Cwsp_interp.Machine.outputs m1)
    (Cwsp_interp.Machine.outputs m2)

let test_parse_roundtrip_workloads () =
  List.iter
    (fun name ->
      let w = Cwsp_workloads.Registry.find_exn name in
      (* round-trip the *compiled* binary too: boundaries, checkpoints
         and (in explicit mode) flush/pfence must survive the text
         format *)
      List.iter
        (fun config ->
          let compiled =
            Cwsp_compiler.Pipeline.compile ~config (w.build ~scale:1)
          in
          let printed = Pp.program_str compiled.prog in
          let reparsed = Parse.program printed in
          Alcotest.(check (list string)) (name ^ " validates") []
            (Validate.check reparsed);
          Alcotest.(check string)
            (name ^ " fixpoint")
            printed
            (Pp.program_str reparsed))
        Cwsp_compiler.Pipeline.[ cwsp; cwsp_explicit ])
    [ "bzip2"; "radix"; "tatp"; "c" ]

let test_parse_errors () =
  let bad line =
    try
      ignore (Parse.program line);
      false
    with Parse.Parse_error _ | Failure _ -> true
  in
  Alcotest.(check bool) "garbage instruction" true
    (bad "main = m\nfunc m(0 params, 1 regs):\n.b0:\n  r0 = frobnicate 1, 2\n  ret\n");
  Alcotest.(check bool) "no main" true (bad "global @g : 8 bytes\n");
  Alcotest.(check bool) "unterminated block" true
    (bad "main = m\nfunc m(0 params, 1 regs):\n.b0:\n  r0 = mov 1\n");
  (* fences take no operand; flush needs a [rN + k] address *)
  Alcotest.(check bool) "pfence with operand" true
    (bad "main = m\nfunc m(0 params, 2 regs):\n.b0:\n  pfence r1\n  ret\n");
  Alcotest.(check bool) "fence with operand" true
    (bad "main = m\nfunc m(0 params, 2 regs):\n.b0:\n  fence r1\n  ret\n");
  Alcotest.(check bool) "flush without brackets" true
    (bad "main = m\nfunc m(0 params, 2 regs):\n.b0:\n  flush r1\n  ret\n")

(* flushing a non-address (a comparison result) is a program bug the
   validator rejects *)
let test_validate_flush_non_address () =
  let b = Builder.program () in
  Builder.global b "data" ~size:16 ();
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let c = cmp fb Types.Lt (Imm 1) (Imm 2) in
      Builder.flush fb c 0;
      ret fb None);
  Builder.set_main b "main";
  let p = Builder.finish b in
  Alcotest.(check bool) "flush of cmp result rejected" true
    (Validate.check p <> [])

let () =
  Alcotest.run "ir"
    [
      ( "types",
        [
          Alcotest.test_case "uses/defs" `Quick test_uses_defs;
          Alcotest.test_case "term succs" `Quick test_term_succs;
        ] );
      ( "eval",
        [
          Alcotest.test_case "basic" `Quick test_eval_basic;
          qtest prop_eval_add_commutes;
          qtest prop_eval_sub_add_roundtrip;
          qtest prop_eval_cmp_total_order;
        ] );
      ( "builder",
        [
          Alcotest.test_case "valid output" `Quick test_builder_valid;
          Alcotest.test_case "loop helper" `Quick test_builder_loop_structure;
          Alcotest.test_case "unterminated rejected" `Quick test_builder_rejects_unterminated;
          Alcotest.test_case "double terminator rejected" `Quick test_builder_rejects_double_term;
        ] );
      ( "validate",
        [
          Alcotest.test_case "bad global" `Quick test_validator_catches_bad_global;
          Alcotest.test_case "bad register" `Quick test_validator_catches_bad_register;
          Alcotest.test_case "bad label" `Quick test_validator_catches_bad_label;
          Alcotest.test_case "intrinsic arity" `Quick test_validator_intrinsic_arity;
          Alcotest.test_case "duplicate boundary id" `Quick
            test_validator_duplicate_boundary_id;
          Alcotest.test_case "flush of non-address" `Quick
            test_validate_flush_non_address;
        ] );
      ("pp", [ Alcotest.test_case "smoke" `Quick test_pp_smoke ]);
      ( "parse",
        [
          Alcotest.test_case "roundtrip tiny" `Quick test_parse_roundtrip_tiny;
          Alcotest.test_case "roundtrip flush/pfence" `Quick
            test_parse_roundtrip_flush;
          Alcotest.test_case "roundtrip compiled workloads" `Slow
            test_parse_roundtrip_workloads;
          Alcotest.test_case "errors rejected" `Quick test_parse_errors;
        ] );
    ]
