(* Tests for CFG utilities, loop detection, liveness, alias analysis. *)

open Cwsp_ir
open Cwsp_analysis

(* A diamond CFG:  b0 -> (b1 | b2) -> b3 *)
let diamond_func () =
  let b = Builder.program () in
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let c = imm fb 1 in
      let b1 = block fb in
      let b2 = block fb in
      let b3 = block fb in
      br fb c ~ifso:b1 ~ifnot:b2;
      switch_to fb b1;
      let x1 = imm fb 10 in
      call_void fb "__out" [ Reg x1 ];
      jmp fb b3;
      switch_to fb b2;
      let x2 = imm fb 20 in
      call_void fb "__out" [ Reg x2 ];
      jmp fb b3;
      switch_to fb b3;
      ret fb None);
  Builder.set_main b "main";
  Prog.func_exn (Builder.finish b) "main"

let test_predecessors () =
  let fn = diamond_func () in
  let preds = Cfg.predecessors fn in
  Alcotest.(check (list int)) "entry no preds" [] preds.(0);
  Alcotest.(check (list int)) "join has both" [ 1; 2 ] (List.sort compare preds.(3))

let test_rpo_starts_at_entry () =
  let fn = diamond_func () in
  match Cfg.reverse_postorder fn with
  | 0 :: rest ->
    Alcotest.(check int) "all blocks" 3 (List.length rest);
    Alcotest.(check bool) "join last" true (List.nth rest 2 = 3)
  | _ -> Alcotest.fail "rpo must start at entry"

let test_loop_headers () =
  let b = Builder.program () in
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let _ = loop fb ~from:(Imm 0) ~below:(Imm 3) (fun _ -> ()) in
      ret fb None);
  Builder.set_main b "main";
  let fn = Prog.func_exn (Builder.finish b) "main" in
  let headers = Loops.headers fn in
  let count = Array.to_list headers |> List.filter Fun.id |> List.length in
  Alcotest.(check int) "exactly one header" 1 count;
  Alcotest.(check bool) "entry is not a header" false headers.(0)

(* ---- liveness ---- *)

let test_liveness_straightline () =
  (* r0 = param used by a store at the end; temp defined and dead quickly *)
  let b = Builder.program () in
  Builder.global b "gl" ~size:8 ();
  Builder.func b "f" ~nparams:1 (fun fb ->
      let open Builder in
      let p = param fb 0 in
      let t = imm fb 1 in
      let _dead = add fb (Reg t) (Imm 2) in
      let g = la fb "gl" in
      store fb g 0 (Reg p);
      ret fb None);
  Builder.func b "main" ~nparams:0 (fun fb ->
      Builder.call_void fb "f" [ Types.Imm 3 ];
      Builder.ret fb None);
  Builder.set_main b "main";
  let p = Builder.finish b in
  let fn = Prog.func_exn p "f" in
  let live = Liveness.compute fn in
  let at_entry = Liveness.live_before live ~bi:0 ~ii:0 in
  Alcotest.(check bool) "param live at entry" true (Liveness.IntSet.mem 0 at_entry);
  (* after the store, nothing is live *)
  let nblk = List.length fn.blocks.(0).instrs in
  let at_end = Liveness.live_before live ~bi:0 ~ii:nblk in
  Alcotest.(check int) "nothing live before ret" 0 (Liveness.IntSet.cardinal at_end)

let test_liveness_across_branch () =
  let fn = diamond_func () in
  let live = Liveness.compute fn in
  (* the condition register (defined by instr 0 of entry) is live before
     the terminator of block 0 *)
  let at_term = Liveness.live_before live ~bi:0 ~ii:1 in
  Alcotest.(check bool) "branch condition live" true
    (Liveness.IntSet.cardinal at_term > 0)

(* ---- generic dataflow solver ---- *)

(* Forward "reachable from entry" on the shared solver: bottom = false,
   join = or, transfer = identity on the inflow (plus the boundary
   seeding the entry with true). The diamond should mark every block;
   a function with an unreachable block should leave it at bottom. *)
module ReachProblem = struct
  module D = struct
    type t = bool

    let bottom = false
    let equal = Bool.equal
    let join = ( || )
  end

  type ctx = unit

  let direction = `Forward
  let boundary () _ = true
  let transfer () _ _ s = s
end

module Reach = Dataflow.Make (ReachProblem)

let test_dataflow_forward_reach () =
  let fn = diamond_func () in
  let r = Reach.solve () fn in
  Array.iteri
    (fun bi reached ->
      Alcotest.(check bool)
        (Printf.sprintf "block %d reached" bi)
        true reached)
    r.Reach.inb

let unreachable_block_func () =
  let b = Builder.program () in
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let dead = block fb in
      let exit_b = block fb in
      jmp fb exit_b;
      switch_to fb dead;
      let x = imm fb 99 in
      call_void fb "__out" [ Reg x ];
      jmp fb exit_b;
      switch_to fb exit_b;
      ret fb None);
  Builder.set_main b "main";
  Prog.func_exn (Builder.finish b) "main"

let test_dataflow_skips_unreachable () =
  let fn = unreachable_block_func () in
  let r = Reach.solve () fn in
  Alcotest.(check bool) "entry reached" true r.Reach.inb.(0);
  Alcotest.(check bool) "dead block stays bottom" false r.Reach.inb.(1);
  Alcotest.(check bool) "exit reached" true r.Reach.inb.(2)

(* A domain that never converges (strictly growing counter): the solver
   must detect the divergence and raise instead of spinning forever. *)
module DivergeProblem = struct
  module D = struct
    type t = int

    let bottom = 0
    let equal = Int.equal
    let join = max
  end

  type ctx = unit

  let direction = `Forward
  let boundary () _ = 1
  let transfer () _ _ s = s + 1
end

module Diverge = Dataflow.Make (DivergeProblem)

let test_dataflow_divergence_raises () =
  (* self-loop so the counter keeps flowing back into the block *)
  let b = Builder.program () in
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let _ = loop fb ~from:(Imm 0) ~below:(Imm 3) (fun _ -> ()) in
      ret fb None);
  Builder.set_main b "main";
  let fn = Prog.func_exn (Builder.finish b) "main" in
  match Diverge.solve () fn with
  | _ -> Alcotest.fail "divergent domain must not converge"
  | exception Failure _ -> ()

let test_reaching_defs_diamond () =
  let fn = diamond_func () in
  let r = Reaching_defs.solve fn in
  (* the branch condition (r0, defined in entry) reaches the join *)
  Alcotest.(check bool) "entry def reaches join" true
    (Reaching_defs.IntSet.mem 0 r.Reaching_defs.inb.(3));
  (* defs from both arms reach the join, but nothing reaches entry *)
  Alcotest.(check int) "nothing reaches entry" 0
    (Reaching_defs.IntSet.cardinal r.Reaching_defs.inb.(0));
  Alcotest.(check bool) "arm defs reach join" true
    (Reaching_defs.IntSet.cardinal r.Reaching_defs.inb.(3) >= 3)

(* ---- alias analysis ---- *)

let alias_accesses_of body =
  let b = Builder.program () in
  Builder.global b "ga" ~size:128 ();
  Builder.global b "gb" ~size:128 ();
  Builder.func b "main" ~nparams:0 (fun fb ->
      body fb;
      Builder.ret fb None);
  Builder.set_main b "main";
  let p = Builder.finish b in
  Validate.check_exn p;
  Alias.accesses (Prog.func_exn p "main")

let test_alias_distinct_globals () =
  let accs =
    alias_accesses_of (fun fb ->
        let open Builder in
        let a = la fb "ga" in
        let bp = la fb "gb" in
        let _ = load fb a 0 in
        store fb bp 0 (Imm 1))
  in
  match accs with
  | [ l; s ] ->
    Alcotest.(check bool) "no alias across globals" false
      (Alias.may_alias l.sym s.sym)
  | _ -> Alcotest.fail "expected two accesses"

let test_alias_same_global_same_offset () =
  let accs =
    alias_accesses_of (fun fb ->
        let open Builder in
        let a = la fb "ga" in
        let _ = load fb a 8 in
        store fb a 8 (Imm 1))
  in
  match accs with
  | [ l; s ] ->
    Alcotest.(check bool) "same location aliases" true (Alias.may_alias l.sym s.sym)
  | _ -> Alcotest.fail "expected two accesses"

let test_alias_same_global_distinct_offsets () =
  let accs =
    alias_accesses_of (fun fb ->
        let open Builder in
        let a = la fb "ga" in
        let _ = load fb a 0 in
        store fb a 8 (Imm 1))
  in
  match accs with
  | [ l; s ] ->
    Alcotest.(check bool) "provably distinct offsets" false
      (Alias.may_alias l.sym s.sym)
  | _ -> Alcotest.fail "expected two accesses"

let test_alias_variable_offset_within () =
  let accs =
    alias_accesses_of (fun fb ->
        let open Builder in
        let a = la fb "ga" in
        let i = imm fb 3 in
        let idx = mul fb (Reg i) (Imm 8) in
        let p = add fb (Reg a) (Reg idx) in
        let _ = load fb p 0 in
        store fb a 0 (Imm 1))
  in
  match accs with
  | [ l; s ] ->
    (* pointer arithmetic over a register: Within ga, may alias *)
    Alcotest.(check bool) "variable offset may alias" true
      (Alias.may_alias l.sym s.sym)
  | _ -> Alcotest.fail "expected two accesses"

let test_alias_loaded_pointer_is_any () =
  let accs =
    alias_accesses_of (fun fb ->
        let open Builder in
        let a = la fb "ga" in
        let p = load fb a 0 in
        (* p was loaded from memory: could point anywhere *)
        let _ = load fb p 0 in
        store fb a 64 (Imm 1))
  in
  match accs with
  | [ _; l2; s ] ->
    Alcotest.(check bool) "loaded pointer aliases everything" true
      (Alias.may_alias l2.sym s.sym)
  | _ -> Alcotest.fail "expected three accesses"

let test_alias_const_offset_propagation () =
  let accs =
    alias_accesses_of (fun fb ->
        let open Builder in
        let a = la fb "ga" in
        let p = add fb (Reg a) (Imm 16) in
        let _ = load fb p 0 in
        store fb a 16 (Imm 1))
  in
  match accs with
  | [ l; s ] ->
    Alcotest.(check bool) "base+16 aliases offset-16 store" true
      (Alias.may_alias l.sym s.sym);
    (match l.sym with
    | Alias.Exact ("ga", 16) -> ()
    | _ -> Alcotest.fail "expected exact resolution")
  | _ -> Alcotest.fail "expected two accesses"

(* ---- persistency-order dataflow ---- *)

(* Helpers: observe the abstract durability state immediately before one
   instruction of one block. *)
let state_before t bi k =
  let res = ref None in
  Persist_order.iter_block t bi ~f:(fun ~ii _ins ~before ~covered:_ ->
      if ii = k then res := Some before);
  match !res with
  | Some s -> s
  | None -> Alcotest.failf "no instruction (%d,%d)" bi k

let dur_of t bi k site = Persist_order.Site_map.find_opt site (state_before t bi k)

(* Straight-line: a store walks dirty -> flushed -> durable through its
   flush and the persist fence. *)
let test_persist_straightline () =
  let b = Builder.program () in
  Builder.global b "g" ~size:16 ();
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let p = la fb "g" in
      store fb p 0 (Imm 7);
      Builder.flush fb p 0;
      pfence fb;
      ret fb None);
  Builder.set_main b "main";
  let fn = Prog.func_exn (Builder.finish b) "main" in
  let t = Persist_order.analyze fn in
  let site = (0, 1) in
  Alcotest.(check bool) "dirty after store" true
    (dur_of t 0 2 site = Some Persist_order.Dirty);
  Alcotest.(check bool) "flushed after flush" true
    (dur_of t 0 3 site = Some Persist_order.Flushed);
  Alcotest.(check bool) "durable after pfence" true
    (Persist_order.Site_map.is_empty t.Persist_order.outb.(0));
  (* the flush reports exactly the site it upgraded *)
  let covered_sites = ref [] in
  Persist_order.iter_block t 0 ~f:(fun ~ii:_ ins ~before:_ ~covered ->
      match ins with
      | Types.Flush _ -> covered_sites := covered
      | _ -> ());
  Alcotest.(check (list (pair int int))) "flush covers the store" [ site ]
    !covered_sites;
  (* the site resolves to an exact alias class *)
  (match Persist_order.sym_at t site with
  | Alias.Exact ("g", 0) -> ()
  | s -> Alcotest.failf "expected g+0, got %s" (Persist_order.string_of_sym s))

(* Diamond: discharging on only one arm must leave the worst state
   (Dirty) at the join. *)
let test_persist_diamond_join () =
  let b = Builder.program () in
  Builder.global b "g" ~size:16 ();
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let p = la fb "g" in
      store fb p 0 (Imm 7);
      let c = imm fb 1 in
      let b1 = block fb in
      let b2 = block fb in
      let b3 = block fb in
      br fb c ~ifso:b1 ~ifnot:b2;
      switch_to fb b1;
      Builder.flush fb p 0;
      pfence fb;
      jmp fb b3;
      switch_to fb b2;
      jmp fb b3;
      switch_to fb b3;
      ret fb None);
  Builder.set_main b "main";
  let fn = Prog.func_exn (Builder.finish b) "main" in
  let t = Persist_order.analyze fn in
  let site = (0, 1) in
  Alcotest.(check bool) "flushed-arm exit clean" true
    (Persist_order.Site_map.is_empty t.Persist_order.outb.(1));
  Alcotest.(check bool) "other arm still dirty" true
    (Persist_order.Site_map.find_opt site t.Persist_order.outb.(2)
    = Some Persist_order.Dirty);
  Alcotest.(check bool) "join takes the worst state" true
    (Persist_order.Site_map.find_opt site t.Persist_order.inb.(3)
    = Some Persist_order.Dirty)

(* Loop: a pre-loop store discharged inside the body is clean on the
   back edge but still dirty at the header (the loop-entry path), so the
   obligation is hoistable, not loop-carried. *)
let test_persist_loop_fixpoint () =
  let b = Builder.program () in
  Builder.global b "g" ~size:16 ();
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let p = la fb "g" in
      store fb p 0 (Imm 7);
      let _ =
        loop fb ~from:(Types.Imm 0) ~below:(Types.Imm 4) (fun _ ->
            Builder.flush fb p 0;
            pfence fb)
      in
      ret fb None);
  Builder.set_main b "main";
  let fn = Prog.func_exn (Builder.finish b) "main" in
  let t = Persist_order.analyze fn in
  let site = (0, 1) in
  let header =
    match
      Array.to_list (Array.mapi (fun i h -> (i, h)) t.Persist_order.headers)
      |> List.find_opt snd
    with
    | Some (i, _) -> i
    | None -> Alcotest.fail "no loop header"
  in
  let preds = Cfg.predecessors fn in
  let back, entry =
    List.partition
      (fun pred -> Persist_order.is_back_edge t ~header ~pred)
      preds.(header)
  in
  Alcotest.(check int) "one back edge" 1 (List.length back);
  Alcotest.(check int) "one entry edge" 1 (List.length entry);
  (* the body's discharge makes the back-edge inflow clean... *)
  Alcotest.(check bool) "back edge clean" true
    (Persist_order.Site_map.is_empty
       t.Persist_order.outb.(List.hd back));
  (* ...but the loop-entry path has not flushed yet, so the header's
     fixpoint join keeps the obligation alive *)
  Alcotest.(check bool) "header keeps entry-path obligation" true
    (Persist_order.Site_map.find_opt site t.Persist_order.inb.(header)
    = Some Persist_order.Dirty)

(* Commit points clear every obligation: a boundary and a non-intrinsic
   call both drain the map; an intrinsic call does not. *)
let test_persist_commit_points () =
  Alcotest.(check bool) "__out is not a commit" false
    (Persist_order.commit_call "__out");
  Alcotest.(check bool) "user calls commit" true
    (Persist_order.commit_call "helper");
  let b = Builder.program () in
  Builder.global b "g" ~size:16 ();
  Builder.func b "helper" ~nparams:0 (fun fb -> Builder.ret fb None);
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let p = la fb "g" in
      store fb p 0 (Imm 7);
      call_void fb "helper" [];
      ret fb None);
  Builder.set_main b "main";
  let fn = Prog.func_exn (Builder.finish b) "main" in
  let t = Persist_order.analyze fn in
  Alcotest.(check bool) "call commits (clears the map)" true
    (Persist_order.Site_map.is_empty t.Persist_order.outb.(0))

let () =
  Alcotest.run "analysis"
    [
      ( "cfg",
        [
          Alcotest.test_case "predecessors" `Quick test_predecessors;
          Alcotest.test_case "rpo" `Quick test_rpo_starts_at_entry;
          Alcotest.test_case "loop headers" `Quick test_loop_headers;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "straightline" `Quick test_liveness_straightline;
          Alcotest.test_case "across branch" `Quick test_liveness_across_branch;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "forward reach" `Quick test_dataflow_forward_reach;
          Alcotest.test_case "unreachable stays bottom" `Quick
            test_dataflow_skips_unreachable;
          Alcotest.test_case "divergence raises" `Quick
            test_dataflow_divergence_raises;
          Alcotest.test_case "reaching defs diamond" `Quick
            test_reaching_defs_diamond;
        ] );
      ( "alias",
        [
          Alcotest.test_case "distinct globals" `Quick test_alias_distinct_globals;
          Alcotest.test_case "same global same offset" `Quick test_alias_same_global_same_offset;
          Alcotest.test_case "distinct offsets" `Quick test_alias_same_global_distinct_offsets;
          Alcotest.test_case "variable offset" `Quick test_alias_variable_offset_within;
          Alcotest.test_case "loaded pointer" `Quick test_alias_loaded_pointer_is_any;
          Alcotest.test_case "const offset propagation" `Quick test_alias_const_offset_propagation;
        ] );
      ( "persist-order",
        [
          Alcotest.test_case "straight-line lattice walk" `Quick
            test_persist_straightline;
          Alcotest.test_case "diamond join" `Quick test_persist_diamond_join;
          Alcotest.test_case "loop fixpoint" `Quick test_persist_loop_fixpoint;
          Alcotest.test_case "commit points" `Quick test_persist_commit_points;
        ] );
    ]
