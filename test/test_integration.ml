(* Integration tests: the reproduced shapes of the paper's headline
   results, asserted on a representative subset so the suite stays fast.
   The full tables print from bench/main.exe. *)

open Cwsp_sim
open Cwsp_schemes

let w = Cwsp_workloads.Registry.find_exn

let slow ?(cfg = Config.default) name scheme =
  Cwsp_core.Api.slowdown (w name) ~scheme cfg

(* Fig 13 shape: low single/low-double-digit overhead for compute suites *)
let test_fig13_shape () =
  let names = [ "gobmk"; "namd"; "sjeng"; "leela"; "xsbench"; "soplex" ] in
  let gm = Cwsp_util.Stats.gmean (List.map (fun n -> slow n Schemes.cwsp) names) in
  Alcotest.(check bool)
    (Printf.sprintf "compute gmean %.3f in [1.0, 1.12]" gm)
    true
    (gm >= 1.0 && gm <= 1.12)

let test_fig13_splash_worse () =
  let splash = [ "radix"; "water-ns"; "lu-cg" ] in
  let cpu = [ "gobmk"; "namd"; "sjeng" ] in
  let gms names = Cwsp_util.Stats.gmean (List.map (fun n -> slow n Schemes.cwsp) names) in
  Alcotest.(check bool) "SPLASH3 > CPU2006 overhead" true (gms splash > gms cpu)

(* Fig 14 shape: cWSP < Capri at 4GB/s; ReplayCache far worse; Capri
   catches up with the ideal path *)
let test_fig14_shape () =
  let bw b = { Config.default with path_bandwidth_gbs = b } in
  let names = [ "radix"; "water-ns"; "p" ] in
  let gm scheme cfg =
    Cwsp_util.Stats.gmean (List.map (fun n -> slow ~cfg n scheme) names)
  in
  let cwsp4 = gm Schemes.cwsp (bw 4.0) in
  let capri4 = gm Schemes.capri (bw 4.0) in
  let capri32 = gm Schemes.capri (bw 32.0) in
  let rc = gm Schemes.replaycache (bw 4.0) in
  Alcotest.(check bool)
    (Printf.sprintf "capri4 (%.2f) > cwsp4 (%.2f)" capri4 cwsp4)
    true (capri4 > cwsp4);
  Alcotest.(check bool)
    (Printf.sprintf "capri32 (%.2f) < capri4 (%.2f)" capri32 capri4)
    true (capri32 < capri4);
  Alcotest.(check bool)
    (Printf.sprintf "replaycache (%.2f) worst" rc)
    true
    (rc > capri4)

(* Fig 18 shape: ideal PSP much worse than cWSP on memory-intensive apps *)
let test_fig18_shape () =
  let names = [ "lbm"; "xsbench"; "lulesh" ] in
  let gm scheme =
    Cwsp_util.Stats.gmean (List.map (fun n -> slow n scheme) names)
  in
  let psp = gm Schemes.psp_ideal and cwsp = gm Schemes.cwsp in
  Alcotest.(check bool)
    (Printf.sprintf "psp %.2f vs cwsp %.2f: gap > 1.15x" psp cwsp)
    true
    (psp /. cwsp > 1.15)

(* Fig 19 shape: region sizes in the tens of instructions *)
let test_fig19_shape () =
  let lens =
    List.map
      (fun n ->
        let tr = Cwsp_core.Api.trace (w n) Cwsp_compiler.Pipeline.cwsp in
        let ls = Cwsp_interp.Trace.region_lengths tr in
        float_of_int (List.fold_left ( + ) 0 ls) /. float_of_int (List.length ls))
      [ "gobmk"; "lbm"; "radix"; "tatp" ]
  in
  let avg = Cwsp_util.Stats.mean lens in
  Alcotest.(check bool)
    (Printf.sprintf "avg region length %.1f in [8, 120]" avg)
    true
    (avg >= 8.0 && avg <= 120.0)

(* Fig 21 shape: overhead falls with persist-path bandwidth and flattens *)
let test_fig21_shape () =
  let at b =
    slow ~cfg:{ Config.default with path_bandwidth_gbs = b } "radix" Schemes.cwsp
  in
  let s1 = at 1.0 and s4 = at 4.0 and s10 = at 10.0 and s32 = at 32.0 in
  Alcotest.(check bool) "1 >= 4" true (s1 >= s4 -. 0.001);
  Alcotest.(check bool) "4 >= 10" true (s4 >= s10 -. 0.001);
  Alcotest.(check bool) "flat beyond 10" true (s10 -. s32 < 0.05)

(* Fig 22 shape: RBT 8 worse than 32 on short-region suites *)
let test_fig22_shape () =
  let at n =
    slow ~cfg:{ Config.default with rbt_entries = n } "radix" Schemes.cwsp
  in
  Alcotest.(check bool) "rbt8 >= rbt32" true (at 8 >= at 32 -. 0.001)

(* Fig 26 shape: WPQ 8 worse than 24 for write-dense suites *)
let test_fig26_shape () =
  let at n =
    slow ~cfg:{ Config.default with wpq_entries = n } "water-ns" Schemes.cwsp
  in
  Alcotest.(check bool) "wpq8 >= wpq24" true (at 8 >= at 24 -. 0.001)

(* Fig 1 shape: deeper hierarchies shrink the PMEM/DRAM gap *)
let test_fig1_shape () =
  let ratio levels name =
    let base = Config.fig1_levels levels in
    let pm =
      Cwsp_core.Api.stats (w name) Schemes.baseline
        { base with mem = Nvm.cxl_pmem }
    in
    let dr =
      Cwsp_core.Api.stats (w name) Schemes.baseline
        { base with mem = Nvm.cxl_dram }
    in
    Stats.slowdown pm ~baseline:dr
  in
  List.iter
    (fun name ->
      let r2 = ratio 2 name and r5 = ratio 5 name in
      Alcotest.(check bool)
        (Printf.sprintf "%s: 5-level (%.2f) <= 2-level (%.2f)" name r5 r2)
        true (r5 <= r2 +. 0.01))
    [ "lbm"; "lulesh"; "libquan" ]

(* Fig 27 shape: overhead stays moderate across NVM technologies *)
let test_fig27_shape () =
  List.iter
    (fun (tech : Nvm.t) ->
      let s =
        slow ~cfg:{ Config.default with mem = tech } "lbm" Schemes.cwsp
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s overhead %.2f < 1.3" tech.mem_name s)
        true (s < 1.3))
    Nvm.all_techs

(* hardware overhead table *)
let test_hw_overhead () =
  Alcotest.(check int) "176 bytes" 176 (Cwsp_experiments.Hw_overhead.run ())

(* experiment registry covers every figure *)
let test_experiment_index_complete () =
  let ids = List.map (fun (e : Cwsp_experiments.Index.entry) -> e.id)
      Cwsp_experiments.Index.all
  in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " registered") true (List.mem id ids))
    [ "fig1"; "fig6"; "fig8"; "fig13"; "fig14"; "fig15"; "fig17"; "fig18";
      "fig19"; "fig20"; "fig21"; "fig22"; "fig23"; "fig24"; "fig25"; "fig26";
      "fig27"; "hw"; "recovery" ]

let () =
  Alcotest.run "integration"
    [
      ( "shapes",
        [
          Alcotest.test_case "fig13 compute gmean" `Slow test_fig13_shape;
          Alcotest.test_case "fig13 splash worse" `Slow test_fig13_splash_worse;
          Alcotest.test_case "fig14 ordering" `Slow test_fig14_shape;
          Alcotest.test_case "fig18 psp gap" `Slow test_fig18_shape;
          Alcotest.test_case "fig19 region sizes" `Slow test_fig19_shape;
          Alcotest.test_case "fig21 bandwidth" `Slow test_fig21_shape;
          Alcotest.test_case "fig22 rbt" `Slow test_fig22_shape;
          Alcotest.test_case "fig26 wpq" `Slow test_fig26_shape;
          Alcotest.test_case "fig1 hierarchy" `Slow test_fig1_shape;
          Alcotest.test_case "fig27 nvm tech" `Slow test_fig27_shape;
        ] );
      ( "meta",
        [
          Alcotest.test_case "hw overhead" `Quick test_hw_overhead;
          Alcotest.test_case "index complete" `Quick test_experiment_index_complete;
        ] );
    ]
