(* Differential validation of the decoded execution core (DESIGN.md
   §12): [Cwsp_ir.Decode] must be observationally identical to the
   reference interpreter ([Machine]/[Multi]) — same commit trace, same
   outputs, same step count, same final memory, same trap behaviour.

   Three oracles:
   1. registry-wide identity: every workload in the registry, compiled
      uninstrumented and fully instrumented;
   2. SPMD identity: every parallel workload across thread counts,
      against [Multi]'s round-robin schedule;
   3. fuzz differential: randomized programs from the shared
      [Cwsp_fuzz.Gen] generator (nested control flow, opaque pointers,
      allocator calls, atomics) through both compile configurations. *)

open Cwsp_interp
module Fuzz_gen = Cwsp_fuzz.Gen

let ok label = function
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: decoded/reference divergence: %s" label e

let test_registry_identity () =
  List.iter
    (fun (w : Cwsp_workloads.Defs.t) ->
      List.iter
        (fun config ->
          let compiled = Cwsp_compiler.Pipeline.compile ~config (w.build ~scale:1) in
          let label =
            Printf.sprintf "%s/%s" w.name
              (Cwsp_compiler.Pipeline.config_name config)
          in
          ok label (Oracle.check ~label compiled.prog))
        Cwsp_compiler.Pipeline.[ baseline; cwsp ])
    Cwsp_workloads.Registry.all

let test_spmd_identity () =
  List.iter
    (fun (w : Cwsp_workloads.W_parallel.t) ->
      List.iter
        (fun threads ->
          List.iter
            (fun config ->
              let compiled =
                Cwsp_compiler.Pipeline.compile ~config
                  (w.pbuild ~scale:1 ~threads)
              in
              let label = Printf.sprintf "%s@%d" w.pname threads in
              ok label
                (Oracle.check_spmd ~label compiled.prog ~threads
                   ~worker:w.worker))
            Cwsp_compiler.Pipeline.[ baseline; cwsp ])
        [ 2; 4 ])
    Cwsp_workloads.W_parallel.all

(* SPMD fuzz differential: racy seeds included deliberately — whatever
   the interleaving does, both engines must do it identically. *)
let test_spmd_fuzz_differential () =
  for seed = 1 to 30 do
    let prog, kind = Fuzz_gen.gen_spmd_program seed in
    List.iter
      (fun threads ->
        let label =
          Printf.sprintf "spmd seed %d@%d (%s)" seed threads
            (match kind with `Drf -> "drf" | `Racy -> "racy")
        in
        ok label
          (Oracle.check_spmd ~fuel:2_000_000 ~label prog ~threads
             ~worker:"worker"))
      [ 2; 3 ]
  done

let test_fuzz_differential () =
  for seed = 1 to 80 do
    let prog = Fuzz_gen.gen_program seed in
    List.iter
      (fun config ->
        let compiled = Cwsp_compiler.Pipeline.compile ~config prog in
        let label =
          Printf.sprintf "seed %d/%s" seed
            (Cwsp_compiler.Pipeline.config_name config)
        in
        ok label (Oracle.check ~fuel:2_000_000 ~label compiled.prog))
      Cwsp_compiler.Pipeline.[ baseline; cwsp ]
  done

(* the oracle's own plumbing: [trace_of_program] with checks forced on
   must agree with what [check] returns, and a decoded run's trace is
   the one the engines replay *)
let test_oracle_trace_roundtrip () =
  let w = Cwsp_workloads.Registry.find_exn "sjeng" in
  let compiled =
    Cwsp_compiler.Pipeline.compile ~config:Cwsp_compiler.Pipeline.cwsp
      (w.build ~scale:1)
  in
  let tr = Oracle.trace_of_program ~label:"sjeng" compiled.prog in
  let _, ref_tr = Machine.trace_of_program compiled.prog in
  match Trace.first_diff tr ref_tr with
  | None -> ()
  | Some i -> Alcotest.failf "trace differs from reference at event %d" i

let () =
  Alcotest.run "decode"
    [
      ( "differential",
        [
          Alcotest.test_case "registry identity (all workloads x 2 configs)"
            `Slow test_registry_identity;
          Alcotest.test_case "SPMD identity (all parallel workloads x 2 threads x 2 configs)"
            `Slow test_spmd_identity;
          Alcotest.test_case "SPMD fuzz differential (30 programs x 2 thread counts)"
            `Slow test_spmd_fuzz_differential;
          Alcotest.test_case "fuzz differential (80 programs x 2 configs)"
            `Slow test_fuzz_differential;
          Alcotest.test_case "oracle trace roundtrip" `Quick
            test_oracle_trace_roundtrip;
        ] );
    ]
