(* Compiler fuzzing: randomized programs pushed through the full cWSP
   pipeline with two oracles —

   1. semantic equivalence: the instrumented binary produces the same
      outputs and final memory as the uninstrumented one;
   2. crash consistency: power failures injected at random points recover
      to a bit-exact NVM state and an exactly-once output stream.

   Programs come from the shared [Cwsp_fuzz.Gen] generator (the fuzzing
   subsystem's seed source); every seed that fails is reproducible from
   its number. *)

open Cwsp_ir
open Cwsp_util
module Fuzz_gen = Cwsp_fuzz.Gen

(* program-visible memory: everything outside the hardware-managed
   checkpoint area (checkpoints are genuine stores, so the instrumented
   binary legitimately differs there) *)
let data_words mem =
  let out = ref [] in
  Cwsp_interp.Memory.iter
    (fun a v -> if not (Cwsp_interp.Layout.is_ckpt_addr a) then out := (a, v) :: !out)
    mem;
  List.sort compare !out

let run_outputs prog =
  let m = Cwsp_interp.Machine.create (Cwsp_interp.Machine.link prog) in
  Cwsp_interp.Machine.run ~fuel:2_000_000 m Cwsp_interp.Machine.no_hooks;
  m

let test_semantic_equivalence () =
  for seed = 1 to 120 do
    let prog = Fuzz_gen.gen_program seed in
    Validate.check_exn prog;
    let baseline =
      Cwsp_compiler.Pipeline.compile ~config:Cwsp_compiler.Pipeline.baseline prog
    in
    let cwsp = Cwsp_compiler.Pipeline.compile ~config:Cwsp_compiler.Pipeline.cwsp prog in
    let mb = run_outputs baseline.prog in
    let mc = run_outputs cwsp.prog in
    if Cwsp_interp.Machine.outputs mb <> Cwsp_interp.Machine.outputs mc then
      Alcotest.failf "seed %d: outputs diverge" seed;
    if data_words mb.mem <> data_words mc.mem then
      Alcotest.failf "seed %d: final memory diverges" seed
  done

let test_regions_clean () =
  for seed = 1 to 120 do
    let prog = Fuzz_gen.gen_program seed in
    let cwsp = Cwsp_compiler.Pipeline.compile ~config:Cwsp_compiler.Pipeline.cwsp prog in
    List.iter
      (fun (name, fn) ->
        match Cwsp_idem.Antidep.violations fn with
        | [] -> ()
        | v ->
          Alcotest.failf "seed %d: %s has %d antidependences, e.g. %s" seed name
            (List.length v)
            (Cwsp_idem.Antidep.pair_to_string (List.hd v)))
      cwsp.prog.funcs
  done

let test_crash_recovery_fuzz () =
  let rng = Rng.create 424242 in
  for seed = 1 to 60 do
    let prog = Fuzz_gen.gen_program seed in
    let compiled =
      Cwsp_compiler.Pipeline.compile ~config:Cwsp_compiler.Pipeline.cwsp prog
    in
    let _, tr = Cwsp_interp.Machine.trace_of_program compiled.prog in
    (* crash points follow the program's actual boundary structure: one
       per inter-boundary interval (a fixed count would oversample short
       programs and leave long ones with untested intervals) *)
    List.iter
      (fun crash_at ->
        match
          Cwsp_recovery.Harness.validate ~seed:(Rng.int rng 100000) ~crash_at
            compiled
        with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "seed %d crash@%d: %s" seed crash_at e)
      (Cwsp_fuzz.Oracle.boundary_crash_points rng ~trace:tr ~max_points:8)
  done

(* Alias-analysis soundness against dynamic behaviour: for every pair of
   accesses in [main] that the analysis claims can NEVER alias, check
   that no execution ever touches a common address from both. *)
let test_alias_soundness () =
  for seed = 1 to 80 do
    let prog = Fuzz_gen.gen_program seed in
    let fn = Prog.func_exn prog "main" in
    let accesses = Cwsp_analysis.Alias.accesses fn in
    (* dynamic address sets per static position, collected by stepping
       the machine and inspecting the current frame *)
    let dyn : (int * int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
    let record pos addr =
      let tbl =
        match Hashtbl.find_opt dyn pos with
        | Some t -> t
        | None ->
          let t = Hashtbl.create 8 in
          Hashtbl.add dyn pos t;
          t
      in
      Hashtbl.replace tbl addr ()
    in
    let linked = Cwsp_interp.Machine.link prog in
    let m = Cwsp_interp.Machine.create linked in
    let main_idx = linked.main_idx in
    let steps = ref 0 in
    while m.status = Cwsp_interp.Machine.Running && !steps < 500_000 do
      incr steps;
      (match m.frames with
      | fr :: _ when fr.lf.findex = main_idx && fr.idx < Array.length fr.lf.code.(fr.blk)
        -> (
        match fr.lf.code.(fr.blk).(fr.idx) with
        | Types.Load (_, base, off) -> record (fr.blk, fr.idx) (fr.regs.(base) + off)
        | Types.Store (base, off, _) -> record (fr.blk, fr.idx) (fr.regs.(base) + off)
        | Types.Atomic_rmw (_, _, base, off, _) | Types.Cas (_, base, off, _, _) ->
          record (fr.blk, fr.idx) (fr.regs.(base) + off)
        | _ -> ())
      | _ -> ());
      Cwsp_interp.Machine.step m Cwsp_interp.Machine.no_hooks
    done;
    (* every no-alias claim must hold dynamically *)
    List.iter
      (fun (a : Cwsp_analysis.Alias.access) ->
        List.iter
          (fun (b : Cwsp_analysis.Alias.access) ->
            if
              (a.a_bi, a.a_ii) < (b.a_bi, b.a_ii)
              && not (Cwsp_analysis.Alias.may_alias a.sym b.sym)
            then
              match
                ( Hashtbl.find_opt dyn (a.a_bi, a.a_ii),
                  Hashtbl.find_opt dyn (b.a_bi, b.a_ii) )
              with
              | Some ta, Some tb ->
                Hashtbl.iter
                  (fun addr () ->
                    if Hashtbl.mem tb addr then
                      Alcotest.failf
                        "seed %d: no-alias claim violated at 0x%x between \
                         (%d,%d) and (%d,%d)"
                        seed addr a.a_bi a.a_ii b.a_bi b.a_ii)
                  ta
              | _ -> ())
          accesses)
      accesses
  done

(* SPMD semantic equivalence, DRF seeds only: instrumentation changes
   the instruction counts and therefore the round-robin interleaving,
   but a data-race-free program's result must not depend on the
   interleaving (the SC-for-DRF premise) — so the instrumented binary
   must still produce the baseline's final data memory. Racy seeds are
   skipped: their result is interleaving-dependent by design, and the
   pipeline hook below would (correctly) reject compiling them. *)
let test_spmd_semantic_equivalence () =
  for seed = 1 to 40 do
    let prog, kind = Fuzz_gen.gen_spmd_program seed in
    if kind = `Drf then begin
      let run config =
        let compiled = Cwsp_compiler.Pipeline.compile ~config prog in
        let t, _ =
          Cwsp_interp.Multi.traces_of_program ~fuel:2_000_000 compiled.prog
            ~threads:3 ~worker:"worker"
        in
        data_words t.mem
      in
      if
        run Cwsp_compiler.Pipeline.baseline <> run Cwsp_compiler.Pipeline.cwsp
      then Alcotest.failf "spmd seed %d: final memory diverges" seed
    end
  done

(* The static verifier as a fuzzing oracle: every randomized program,
   compiled under every instrumented configuration, must verify clean. *)
let test_verifier_clean () =
  List.iter
    (fun config ->
      for seed = 1 to 80 do
        let prog = Fuzz_gen.gen_program seed in
        let compiled = Cwsp_compiler.Pipeline.compile ~config prog in
        match Cwsp_verify.Verify.(errors (run compiled)) with
        | [] -> ()
        | errs ->
          Alcotest.failf "seed %d (%s): %s" seed
            (Cwsp_compiler.Pipeline.config_name config)
            (Cwsp_verify.Verify.report errs)
      done)
    Cwsp_compiler.Pipeline.[ cwsp; cwsp_no_prune; regions_only ]

let () =
  (* have every compile below re-checked by the static verifier *)
  Cwsp_verify.Verify.install_pipeline_hook ();
  Alcotest.run "fuzz"
    [
      ( "pipeline",
        [
          Alcotest.test_case "semantic equivalence (120 programs)" `Slow
            test_semantic_equivalence;
          Alcotest.test_case "regions clean (120 programs)" `Slow
            test_regions_clean;
          Alcotest.test_case "crash recovery (60 programs, boundary sweep)" `Slow
            test_crash_recovery_fuzz;
          Alcotest.test_case "alias soundness (80 programs)" `Slow
            test_alias_soundness;
          Alcotest.test_case "SPMD semantic equivalence (DRF seeds of 40)" `Slow
            test_spmd_semantic_equivalence;
          Alcotest.test_case "verifier clean (80 programs x 3 configs)" `Slow
            test_verifier_clean;
        ] );
    ]
