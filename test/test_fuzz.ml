(* Compiler fuzzing: randomized programs pushed through the full cWSP
   pipeline with two oracles —

   1. semantic equivalence: the instrumented binary produces the same
      outputs and final memory as the uninstrumented one;
   2. crash consistency: power failures injected at random points recover
      to a bit-exact NVM state and an exactly-once output stream.

   The generator emits structurally random but well-formed programs:
   nested loops, branches, random arithmetic DAGs, loads/stores with both
   provable and unprovable addresses (mixing Exact/Within/Any aliasing),
   calls into the runtime allocator, atomics and fences. Every seed that
   fails is reproducible from its number. *)

open Cwsp_ir
open Cwsp_util

let n_globals = 3

(* random operand: a live register or a small immediate *)
let rand_operand rng regs =
  if Rng.bool rng || regs = [] then Types.Imm (Rng.int rng 1000 - 500)
  else Types.Reg (Rng.pick rng (Array.of_list regs))

let rand_binop rng =
  Rng.pick rng [| Types.Add; Sub; Mul; And; Or; Xor; Shl; Lshr |]

let rand_global rng = Printf.sprintf "fz%d" (Rng.int rng n_globals)

(* emit a random address computation over global [g]: exact, strided or
   opaque (via a register the alias analysis cannot track) *)
let rand_address rng fb regs g =
  let open Builder in
  let base = la fb g in
  match Rng.int rng 3 with
  | 0 -> (base, 8 * Rng.int rng 32) (* exact offset *)
  | 1 ->
    let idx =
      match regs with
      | [] -> imm fb (Rng.int rng 32)
      | _ -> Rng.pick rng (Array.of_list regs)
    in
    let bounded = bin fb And (Reg idx) (Imm 31) in
    (bin fb Add (Reg base) (Reg (bin fb Shl (Reg bounded) (Imm 3))), 0)
  | _ ->
    (* launder the pointer through memory: Any provenance *)
    let slot = la fb "fzptr" in
    store fb slot 0 (Reg base);
    let p = load fb slot 0 in
    (p, 8 * Rng.int rng 32)

let rec gen_block rng fb depth regs budget =
  let open Builder in
  let regs = ref regs in
  let n = 3 + Rng.int rng 8 in
  for _ = 1 to n do
    if !budget > 0 then begin
      decr budget;
      match Rng.int rng 10 with
      | 0 | 1 | 2 ->
        let d = bin fb (rand_binop rng) (rand_operand rng !regs) (rand_operand rng !regs) in
        regs := d :: !regs
      | 3 | 4 ->
        let g = rand_global rng in
        let a, off = rand_address rng fb !regs g in
        let v = load fb a off in
        regs := v :: !regs
      | 5 | 6 ->
        let g = rand_global rng in
        let a, off = rand_address rng fb !regs g in
        store fb a off (rand_operand rng !regs)
      | 7 when depth > 0 ->
        let c = cmp fb Types.Ne (rand_operand rng !regs) (Imm 0) in
        let saved = !regs in
        if_ fb c
          ~then_:(fun () -> gen_block rng fb (depth - 1) saved budget)
          ~else_:(fun () -> gen_block rng fb (depth - 1) saved budget)
      | 7 ->
        let d = mov fb (rand_operand rng !regs) in
        regs := d :: !regs
      | 8 when depth > 0 ->
        let iters = 2 + Rng.int rng 5 in
        let saved = !regs in
        let _ =
          loop fb ~from:(Imm 0) ~below:(Imm iters) (fun i ->
              gen_block rng fb (depth - 1) (i :: saved) budget)
        in
        ()
      | 8 ->
        let g = rand_global rng in
        let a, off = rand_address rng fb !regs g in
        let v = atomic_rmw fb Types.Add a off (rand_operand rng !regs) in
        regs := v :: !regs
      | _ ->
        if Rng.int rng 4 = 0 then fence fb
        else begin
          let p = call fb "malloc" [ Imm (8 * (1 + Rng.int rng 4)) ] in
          store fb p 0 (rand_operand rng !regs);
          let v = load fb p 0 in
          regs := v :: !regs;
          if Rng.bool rng then call_void fb "free" [ Reg p ]
        end
    end
  done;
  (* make some values observable *)
  match !regs with
  | r :: _ -> call_void fb "__out" [ Reg r ]
  | [] -> ()

let gen_program seed : Prog.t =
  let rng = Rng.create seed in
  let b = Builder.program () in
  Cwsp_runtime.Libc.add b;
  for i = 0 to n_globals - 1 do
    Builder.global b (Printf.sprintf "fz%d" i) ~size:256 ()
  done;
  Builder.global b "fzptr" ~size:8 ();
  Builder.func b "main" ~nparams:0 (fun fb ->
      let budget = ref (40 + Rng.int rng 60) in
      gen_block rng fb 2 [] budget;
      Builder.ret fb None);
  Builder.set_main b "main";
  Builder.finish b

(* program-visible memory: everything outside the hardware-managed
   checkpoint area (checkpoints are genuine stores, so the instrumented
   binary legitimately differs there) *)
let data_words mem =
  let out = ref [] in
  Cwsp_interp.Memory.iter
    (fun a v -> if not (Cwsp_interp.Layout.is_ckpt_addr a) then out := (a, v) :: !out)
    mem;
  List.sort compare !out

let run_outputs prog =
  let m = Cwsp_interp.Machine.create (Cwsp_interp.Machine.link prog) in
  Cwsp_interp.Machine.run ~fuel:2_000_000 m Cwsp_interp.Machine.no_hooks;
  m

let test_semantic_equivalence () =
  for seed = 1 to 120 do
    let prog = gen_program seed in
    Validate.check_exn prog;
    let baseline =
      Cwsp_compiler.Pipeline.compile ~config:Cwsp_compiler.Pipeline.baseline prog
    in
    let cwsp = Cwsp_compiler.Pipeline.compile ~config:Cwsp_compiler.Pipeline.cwsp prog in
    let mb = run_outputs baseline.prog in
    let mc = run_outputs cwsp.prog in
    if Cwsp_interp.Machine.outputs mb <> Cwsp_interp.Machine.outputs mc then
      Alcotest.failf "seed %d: outputs diverge" seed;
    if data_words mb.mem <> data_words mc.mem then
      Alcotest.failf "seed %d: final memory diverges" seed
  done

let test_regions_clean () =
  for seed = 1 to 120 do
    let prog = gen_program seed in
    let cwsp = Cwsp_compiler.Pipeline.compile ~config:Cwsp_compiler.Pipeline.cwsp prog in
    List.iter
      (fun (name, fn) ->
        match Cwsp_idem.Antidep.violations fn with
        | [] -> ()
        | v ->
          Alcotest.failf "seed %d: %s has %d antidependences, e.g. %s" seed name
            (List.length v)
            (Cwsp_idem.Antidep.pair_to_string (List.hd v)))
      cwsp.prog.funcs
  done

let test_crash_recovery_fuzz () =
  let rng = Rng.create 424242 in
  for seed = 1 to 60 do
    let prog = gen_program seed in
    let compiled =
      Cwsp_compiler.Pipeline.compile ~config:Cwsp_compiler.Pipeline.cwsp prog
    in
    let _, tr = Cwsp_interp.Machine.trace_of_program compiled.prog in
    let total = Cwsp_interp.Trace.length tr in
    if total > 4 then
      for _ = 1 to 8 do
        let crash_at = 1 + Rng.int rng (total - 2) in
        match
          Cwsp_recovery.Harness.validate ~seed:(Rng.int rng 100000) ~crash_at
            compiled
        with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "seed %d crash@%d: %s" seed crash_at e
      done
  done

(* Alias-analysis soundness against dynamic behaviour: for every pair of
   accesses in [main] that the analysis claims can NEVER alias, check
   that no execution ever touches a common address from both. *)
let test_alias_soundness () =
  for seed = 1 to 80 do
    let prog = gen_program seed in
    let fn = Prog.func_exn prog "main" in
    let accesses = Cwsp_analysis.Alias.accesses fn in
    (* dynamic address sets per static position, collected by stepping
       the machine and inspecting the current frame *)
    let dyn : (int * int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
    let record pos addr =
      let tbl =
        match Hashtbl.find_opt dyn pos with
        | Some t -> t
        | None ->
          let t = Hashtbl.create 8 in
          Hashtbl.add dyn pos t;
          t
      in
      Hashtbl.replace tbl addr ()
    in
    let linked = Cwsp_interp.Machine.link prog in
    let m = Cwsp_interp.Machine.create linked in
    let main_idx = linked.main_idx in
    let steps = ref 0 in
    while m.status = Cwsp_interp.Machine.Running && !steps < 500_000 do
      incr steps;
      (match m.frames with
      | fr :: _ when fr.lf.findex = main_idx && fr.idx < Array.length fr.lf.code.(fr.blk)
        -> (
        match fr.lf.code.(fr.blk).(fr.idx) with
        | Types.Load (_, base, off) -> record (fr.blk, fr.idx) (fr.regs.(base) + off)
        | Types.Store (base, off, _) -> record (fr.blk, fr.idx) (fr.regs.(base) + off)
        | Types.Atomic_rmw (_, _, base, off, _) | Types.Cas (_, base, off, _, _) ->
          record (fr.blk, fr.idx) (fr.regs.(base) + off)
        | _ -> ())
      | _ -> ());
      Cwsp_interp.Machine.step m Cwsp_interp.Machine.no_hooks
    done;
    (* every no-alias claim must hold dynamically *)
    List.iter
      (fun (a : Cwsp_analysis.Alias.access) ->
        List.iter
          (fun (b : Cwsp_analysis.Alias.access) ->
            if
              (a.a_bi, a.a_ii) < (b.a_bi, b.a_ii)
              && not (Cwsp_analysis.Alias.may_alias a.sym b.sym)
            then
              match
                ( Hashtbl.find_opt dyn (a.a_bi, a.a_ii),
                  Hashtbl.find_opt dyn (b.a_bi, b.a_ii) )
              with
              | Some ta, Some tb ->
                Hashtbl.iter
                  (fun addr () ->
                    if Hashtbl.mem tb addr then
                      Alcotest.failf
                        "seed %d: no-alias claim violated at 0x%x between \
                         (%d,%d) and (%d,%d)"
                        seed addr a.a_bi a.a_ii b.a_bi b.a_ii)
                  ta
              | _ -> ())
          accesses)
      accesses
  done

(* The static verifier as a fuzzing oracle: every randomized program,
   compiled under every instrumented configuration, must verify clean. *)
let test_verifier_clean () =
  List.iter
    (fun config ->
      for seed = 1 to 80 do
        let prog = gen_program seed in
        let compiled = Cwsp_compiler.Pipeline.compile ~config prog in
        match Cwsp_verify.Verify.(errors (run compiled)) with
        | [] -> ()
        | errs ->
          Alcotest.failf "seed %d (%s): %s" seed
            (Cwsp_compiler.Pipeline.config_name config)
            (Cwsp_verify.Verify.report errs)
      done)
    Cwsp_compiler.Pipeline.[ cwsp; cwsp_no_prune; regions_only ]

let () =
  (* have every compile below re-checked by the static verifier *)
  Cwsp_verify.Verify.install_pipeline_hook ();
  Alcotest.run "fuzz"
    [
      ( "pipeline",
        [
          Alcotest.test_case "semantic equivalence (120 programs)" `Slow
            test_semantic_equivalence;
          Alcotest.test_case "regions clean (120 programs)" `Slow
            test_regions_clean;
          Alcotest.test_case "crash recovery (60 programs x 8 crashes)" `Slow
            test_crash_recovery_fuzz;
          Alcotest.test_case "alias soundness (80 programs)" `Slow
            test_alias_soundness;
          Alcotest.test_case "verifier clean (80 programs x 3 configs)" `Slow
            test_verifier_clean;
        ] );
    ]
