(* Registry-wide workload sanity: all 38 applications build, validate,
   run to completion deterministically, and have the advertised
   character. *)

open Cwsp_ir
open Cwsp_interp
open Cwsp_workloads

let all = Registry.all

let test_registry_census () =
  Alcotest.(check int) "38 applications" 38 (List.length all);
  Alcotest.(check int) "CPU2006" 10 (List.length (Registry.by_suite Defs.Cpu2006));
  Alcotest.(check int) "CPU2017" 7 (List.length (Registry.by_suite Defs.Cpu2017));
  Alcotest.(check int) "Mini-apps" 2 (List.length (Registry.by_suite Defs.Miniapps));
  Alcotest.(check int) "SPLASH3" 10 (List.length (Registry.by_suite Defs.Splash3));
  Alcotest.(check int) "WHISPER" 6 (List.length (Registry.by_suite Defs.Whisper));
  Alcotest.(check int) "STAMP" 3 (List.length (Registry.by_suite Defs.Stamp));
  let names = Registry.names in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_find () =
  Alcotest.(check bool) "find lbm" true (Registry.find "lbm" <> None);
  Alcotest.(check bool) "find nothing" true (Registry.find "nope" = None);
  Alcotest.check_raises "find_exn" (Invalid_argument "unknown workload \"nope\"")
    (fun () -> ignore (Registry.find_exn "nope"))

let test_all_build_and_validate () =
  List.iter
    (fun (w : Defs.t) ->
      let p = w.build ~scale:1 in
      Alcotest.(check (list string)) (w.name ^ " validates") [] (Validate.check p))
    all

let test_all_run_to_completion () =
  List.iter
    (fun (w : Defs.t) ->
      let p = w.build ~scale:1 in
      let m = Machine.create (Machine.link p) in
      (try Machine.run ~fuel:3_000_000 m Machine.no_hooks
       with Machine.Fuel_exhausted ->
         Alcotest.failf "%s did not finish within fuel" w.name);
      Alcotest.(check bool)
        (w.name ^ " produced output")
        true
        (Machine.outputs m <> []))
    all

let test_deterministic () =
  List.iter
    (fun name ->
      let w = Registry.find_exn name in
      let m1 = Machine.run_functional (w.build ~scale:1) in
      let m2 = Machine.run_functional (w.build ~scale:1) in
      Alcotest.(check (list int)) (name ^ " deterministic") (Machine.outputs m1)
        (Machine.outputs m2);
      Alcotest.(check bool) (name ^ " memories equal") true
        (Memory.equal m1.mem m2.mem))
    [ "astar"; "radix"; "c"; "tpcc"; "kmeans" ]

let test_traces_have_stores_and_syscalls () =
  List.iter
    (fun (w : Defs.t) ->
      let _, tr = Machine.trace_of_program (w.build ~scale:1) in
      let s = Trace.summarize tr in
      Alcotest.(check bool) (w.name ^ " has stores") true (s.stores > 0);
      Alcotest.(check bool)
        (w.name ^ " trace is reasonably sized")
        true
        (s.instructions > 10_000 && s.instructions < 2_500_000))
    all

let test_scale_grows_work () =
  let w = Registry.find_exn "sjeng" in
  let _, t1 = Machine.trace_of_program (w.build ~scale:1) in
  let _, t2 = Machine.trace_of_program (w.build ~scale:2) in
  Alcotest.(check bool) "scale 2 is bigger" true
    (Trace.length t2 > Trace.length t1)

let test_memory_intensive_flags () =
  let mi = Registry.memory_intensive in
  Alcotest.(check bool) "subset non-trivial" true (List.length mi >= 8);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " flagged") true
        (List.exists (fun (w : Defs.t) -> w.name = name) mi))
    [ "lbm"; "xsbench"; "lulesh"; "tatp" ]

(* the memory-intensive subset must actually miss the SRAM LLC *)
let test_memory_intensive_behavior () =
  List.iter
    (fun name ->
      let w = Registry.find_exn name in
      let st =
        Cwsp_core.Api.stats w Cwsp_schemes.Schemes.baseline
          Cwsp_sim.Config.default
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s llc-miss %.2f > 0.2" name st.llc_miss_rate)
        true (st.llc_miss_rate > 0.2))
    [ "lbm"; "xsbench"; "sps" ]

(* the suite-defining characters used throughout the evaluation *)
let test_splash3_is_store_dense () =
  let density suite =
    let ws = Registry.by_suite suite in
    let per (w : Defs.t) =
      let _, tr = Machine.trace_of_program (w.build ~scale:1) in
      let s = Trace.summarize tr in
      float_of_int s.stores /. float_of_int s.instructions
    in
    Cwsp_util.Stats.mean (List.map per ws)
  in
  Alcotest.(check bool) "SPLASH3 denser than CPU2006" true
    (density Defs.Splash3 > density Defs.Cpu2006)

let () =
  Alcotest.run "workloads"
    [
      ( "registry",
        [
          Alcotest.test_case "census" `Quick test_registry_census;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "memory-intensive flags" `Quick test_memory_intensive_flags;
        ] );
      ( "execution",
        [
          Alcotest.test_case "all validate" `Slow test_all_build_and_validate;
          Alcotest.test_case "all complete" `Slow test_all_run_to_completion;
          Alcotest.test_case "deterministic" `Slow test_deterministic;
          Alcotest.test_case "traces sized" `Slow test_traces_have_stores_and_syscalls;
          Alcotest.test_case "scale grows" `Slow test_scale_grows_work;
        ] );
      ( "character",
        [
          Alcotest.test_case "memory intensity" `Slow test_memory_intensive_behavior;
          Alcotest.test_case "splash3 store-dense" `Slow test_splash3_is_store_dense;
        ] );
    ]
