(* Unit and property tests for Cwsp_util. *)

open Cwsp_util

let qtest = QCheck_alcotest.to_alcotest

(* ---- Rng ---- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "different streams differ" true (xs <> ys)

let prop_rng_int_range =
  QCheck.Test.make ~name:"Rng.int in range" ~count:500
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_skewed_range =
  QCheck.Test.make ~name:"Rng.skewed in range" ~count:500
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.skewed rng bound in
      v >= 0 && v < bound)

let draw n rng = List.init n (fun _ -> Rng.int rng 1_000_000)

let test_rng_split () =
  let p1 = Rng.create 99 and p2 = Rng.create 99 in
  let c1 = Rng.split p1 and c2 = Rng.split p2 in
  Alcotest.(check (list int)) "split is deterministic" (draw 20 c1) (draw 20 c2);
  (* the child's stream must not reappear in the parent's continuation *)
  Alcotest.(check bool) "child differs from parent continuation" true
    (draw 20 (Rng.split (Rng.create 99)) <> draw 20 p1)

let test_rng_stream_pure () =
  let a = Rng.create 7 and b = Rng.create 7 in
  ignore (draw 10 (Rng.stream a 3));
  ignore (draw 10 (Rng.stream a 12));
  (* deriving streams must not advance the parent *)
  Alcotest.(check (list int)) "parent unmoved" (draw 20 b) (draw 20 a)

let test_rng_stream_indexed () =
  let parent = Rng.create 11 in
  let at i = draw 8 (Rng.stream parent i) in
  Alcotest.(check (list int)) "same index, same stream" (at 5) (at 5);
  Alcotest.(check bool) "indices 0/1 differ" true (at 0 <> at 1);
  Alcotest.(check bool) "index differs from raw parent copy" true
    (at 0 <> draw 8 (Rng.copy parent));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Rng.stream: negative index") (fun () ->
      ignore (Rng.stream parent (-1)))

let prop_rng_stream_decorrelated =
  (* first outputs of sibling streams behave like independent draws *)
  QCheck.Test.make ~name:"Rng.stream siblings differ" ~count:200
    QCheck.(pair small_int (int_range 0 1000))
    (fun (seed, i) ->
      let p = Rng.create seed in
      draw 4 (Rng.stream p i) <> draw 4 (Rng.stream p (i + 1)))

let test_rng_shuffle_permutation () =
  let rng = Rng.create 7 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* ---- Stats ---- *)

let test_gmean_basic () =
  Alcotest.(check (float 1e-9)) "gmean of equal" 2.0 (Stats.gmean [ 2.0; 2.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "gmean 1x4" 2.0 (Stats.gmean [ 1.0; 4.0 ])

let test_gmean_rejects_nonpositive () =
  Alcotest.check_raises "non-positive" (Invalid_argument "Stats.gmean: non-positive input")
    (fun () -> ignore (Stats.gmean [ 1.0; 0.0 ]))

let prop_gmean_between_min_max =
  QCheck.Test.make ~name:"gmean within [min,max]" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range 0.01 100.0))
    (fun xs ->
      let g = Stats.gmean xs in
      let lo, hi = Stats.min_max xs in
      g >= lo -. 1e-9 && g <= hi +. 1e-9)

let prop_mean_scale =
  QCheck.Test.make ~name:"mean scales linearly" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range (-100.) 100.0))
    (fun xs ->
      let m = Stats.mean xs in
      let m2 = Stats.mean (List.map (fun x -> 2.0 *. x) xs) in
      abs_float (m2 -. (2.0 *. m)) < 1e-6)

let test_stddev () =
  Alcotest.(check (float 1e-9)) "constant has zero stddev" 0.0
    (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  Alcotest.(check (float 1e-9)) "known sample" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ])

let test_acc () =
  let a = Stats.Acc.create () in
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Stats.Acc.mean a);
  Stats.Acc.add a 1.0;
  Stats.Acc.add a 3.0;
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.Acc.mean a);
  Alcotest.(check int) "count" 2 (Stats.Acc.count a)

let test_acc_merge () =
  let a = Stats.Acc.create () and b = Stats.Acc.create () in
  Stats.Acc.add a 1.0;
  Stats.Acc.add b 3.0;
  Stats.Acc.add b 5.0;
  Stats.Acc.merge ~into:a b;
  Alcotest.(check int) "merged count" 3 (Stats.Acc.count a);
  Alcotest.(check (float 1e-9)) "merged mean" 3.0 (Stats.Acc.mean a);
  (* src untouched *)
  Alcotest.(check int) "src count" 2 (Stats.Acc.count b);
  (* merging an empty accumulator is the identity *)
  Stats.Acc.merge ~into:a (Stats.Acc.create ());
  Alcotest.(check int) "identity merge" 3 (Stats.Acc.count a)

let test_hist_basic () =
  let h = Stats.Histogram.create [| 1.0; 2.0; 5.0 |] in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Stats.Histogram.quantile h 0.5));
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.5; 3.0; 100.0 ];
  Alcotest.(check int) "count" 5 (Stats.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 106.5 (Stats.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "mean" 21.3 (Stats.Histogram.mean h);
  Alcotest.(check (list (pair (float 0.0) int)))
    "buckets"
    [ (1.0, 1); (2.0, 2); (5.0, 1); (infinity, 1) ]
    (Stats.Histogram.buckets h)

let test_hist_bad_bounds () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Histogram.create: no buckets") (fun () ->
      ignore (Stats.Histogram.create [||]));
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Histogram.create: bounds not strictly increasing")
    (fun () -> ignore (Stats.Histogram.create [| 1.0; 1.0 |]))

let test_hist_quantile () =
  let h = Stats.Histogram.create [| 10.0; 20.0; 30.0 |] in
  for v = 1 to 30 do
    Stats.Histogram.add h (float_of_int v)
  done;
  (* extremes clamp to the observed min/max *)
  Alcotest.(check (float 1e-9)) "q0" 1.0 (Stats.Histogram.quantile h 0.0);
  Alcotest.(check (float 1e-9)) "q1" 30.0 (Stats.Histogram.quantile h 1.0);
  (* the median of a uniform 1..30 sample lands in the middle bucket *)
  let q50 = Stats.Histogram.quantile h 0.5 in
  Alcotest.(check bool) "q50 in middle bucket" true (q50 >= 10.0 && q50 <= 20.0);
  (* overflow-bucket quantiles report the observed max, not infinity *)
  let h2 = Stats.Histogram.create [| 1.0 |] in
  Stats.Histogram.add h2 50.0;
  Stats.Histogram.add h2 70.0;
  Alcotest.(check (float 1e-9)) "overflow q99" 70.0
    (Stats.Histogram.quantile h2 0.99);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Histogram.quantile: q outside [0,1]") (fun () ->
      ignore (Stats.Histogram.quantile h 1.5))

let test_hist_p999 () =
  (* uniform 1..1000 with 250-wide buckets: every tail quantile lands in
     the last bucket and interpolates exactly (rank 999 of 1000 is 99.6%
     through [750,1000] -> 999.0) *)
  let h = Stats.Histogram.create [| 250.0; 500.0; 750.0; 1000.0 |] in
  for v = 1 to 1000 do
    Stats.Histogram.add h (float_of_int v)
  done;
  Alcotest.(check (float 1e-9)) "p99 interpolates" 990.0
    (Stats.Histogram.quantile h 0.99);
  Alcotest.(check (float 1e-9)) "p999 interpolates" 999.0
    (Stats.Histogram.quantile h 0.999);
  Alcotest.(check string) "summary digest"
    "count=1000 mean=500.5 p50=500 p90=900 p99=990 p999=999"
    (Stats.Histogram.summary h);
  Alcotest.(check string) "empty summary" "count=0"
    (Stats.Histogram.summary (Stats.Histogram.create [| 1.0 |]))

let prop_hist_quantile_monotone =
  QCheck.Test.make ~name:"histogram quantiles are monotone in q" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range 0.0 1000.0))
    (fun xs ->
      let h = Stats.Histogram.create [| 1.0; 10.0; 100.0; 500.0 |] in
      List.iter (Stats.Histogram.add h) xs;
      let qs = [ 0.0; 0.25; 0.5; 0.75; 0.9; 1.0 ] in
      let vs = List.map (Stats.Histogram.quantile h) qs in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      mono vs)

let test_hist_merge () =
  let a = Stats.Histogram.create [| 1.0; 2.0 |] in
  let b = Stats.Histogram.create [| 1.0; 2.0 |] in
  Stats.Histogram.add a 0.5;
  Stats.Histogram.add b 1.5;
  Stats.Histogram.add b 9.0;
  Stats.Histogram.merge ~into:a b;
  Alcotest.(check int) "merged count" 3 (Stats.Histogram.count a);
  Alcotest.(check (float 1e-9)) "merged sum" 11.0 (Stats.Histogram.sum a);
  Alcotest.(check (list (pair (float 0.0) int)))
    "merged buckets"
    [ (1.0, 1); (2.0, 1); (infinity, 1) ]
    (Stats.Histogram.buckets a);
  Alcotest.(check (float 1e-9)) "merged max visible to quantile" 9.0
    (Stats.Histogram.quantile a 1.0);
  Alcotest.check_raises "mismatched bounds"
    (Invalid_argument "Histogram.merge: different bucket bounds") (fun () ->
      Stats.Histogram.merge ~into:a (Stats.Histogram.create [| 3.0 |]))

(* ---- Table ---- *)

let test_table_alignment () =
  let s = Table.render ~headers:[ "a"; "bb" ] [ [ "xxx"; "1" ]; [ "y"; "22" ] ] in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | h :: _sep :: r1 :: r2 :: _ ->
    Alcotest.(check int) "equal widths" (String.length h) (String.length r1);
    Alcotest.(check int) "equal widths" (String.length h) (String.length r2)
  | _ -> Alcotest.fail "unexpected shape");
  Alcotest.(check bool) "contains data" true
    (String.length s > 0)

let test_table_ragged_rejected () =
  Alcotest.check_raises "ragged" (Invalid_argument "Table.render: ragged row")
    (fun () -> ignore (Table.render ~headers:[ "a" ] [ [ "1"; "2" ] ]))

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
          qtest prop_rng_int_range;
          qtest prop_rng_skewed_range;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "stream purity" `Quick test_rng_stream_pure;
          Alcotest.test_case "stream indexing" `Quick test_rng_stream_indexed;
          qtest prop_rng_stream_decorrelated;
        ] );
      ( "stats",
        [
          Alcotest.test_case "gmean basic" `Quick test_gmean_basic;
          Alcotest.test_case "gmean non-positive" `Quick test_gmean_rejects_nonpositive;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "acc" `Quick test_acc;
          Alcotest.test_case "acc merge" `Quick test_acc_merge;
          qtest prop_gmean_between_min_max;
          qtest prop_mean_scale;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basic" `Quick test_hist_basic;
          Alcotest.test_case "bad bounds" `Quick test_hist_bad_bounds;
          Alcotest.test_case "quantile" `Quick test_hist_quantile;
          Alcotest.test_case "p999" `Quick test_hist_p999;
          qtest prop_hist_quantile_monotone;
          Alcotest.test_case "merge" `Quick test_hist_merge;
        ] );
      ( "table",
        [
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "ragged rejected" `Quick test_table_ragged_rejected;
        ] );
    ]
