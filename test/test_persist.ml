(* End-to-end tests for explicit persistency: the [Persist_order]
   analysis driving certified flush/pfence insertion, the [Persist_check]
   verifier tier, and the dynamic explicit-persistency crash oracle.

   Positive direction: every registry workload compiled in explicit mode
   verifies with zero persist diagnostics — no errors AND no warnings
   (warnings would mean the inserted placement is not minimal) — and a
   strided power-failure sweep over the explicit durability oracle
   recovers a bit-exact state at every crash point.

   Negative direction: a mutation corpus built from the real compiled
   binary — drop one flush, drop one pfence — where each mutant must be
   (a) caught statically by Persist_check and (b) shown actually losing
   data dynamically at some crash point under blind recovery, i.e. the
   static tier is not crying wolf: what it flags is a real durability
   hole. *)

open Cwsp_ir
open Cwsp_compiler

let explicit_config = Pipeline.cwsp_explicit

(* The oracle corpus workload: small (fast sweeps) and its stores change
   memory values, so a lost store is dynamically observable. *)
let corpus_workload = "lu-ncg"

let compile_explicit name =
  let w = Cwsp_workloads.Registry.find_exn name in
  Pipeline.compile ~config:explicit_config (w.build ~scale:1)

(* ---- mutation plumbing: drop the nth flush / pfence in [fname] ---- *)

let drop_in fname ~what n (c : Pipeline.compiled) : Pipeline.compiled =
  let k = ref (-1) in
  let funcs =
    List.map
      (fun (name, (fn : Prog.func)) ->
        if name <> fname then (name, fn)
        else
          let blocks =
            Array.map
              (fun (b : Prog.block) ->
                let instrs =
                  List.filter
                    (fun i ->
                      match (i, what) with
                      | Types.Flush _, `Flush ->
                        incr k;
                        !k <> n
                      | Types.Pfence, `Pfence ->
                        incr k;
                        !k <> n
                      | _ -> true)
                    b.instrs
                in
                { b with instrs })
              fn.blocks
          in
          (name, { fn with blocks }))
      c.prog.funcs
  in
  { c with prog = { c.prog with funcs } }

(* ---- dynamic sweep over the explicit durability oracle ---- *)

let golden_steps (c : Pipeline.compiled) =
  let m = Cwsp_interp.Machine.create (Cwsp_interp.Machine.link c.prog) in
  Cwsp_interp.Machine.run m Cwsp_interp.Machine.no_hooks;
  Cwsp_interp.Machine.steps m

(* Strided crash points across the whole execution; returns the number
   of sweeps whose recovered state diverged, plus the first error. *)
let sweep ~points ~steps (c : Pipeline.compiled) =
  let fails = ref 0 and first = ref None in
  for i = 0 to points - 1 do
    let crash_at = 1 + (i * (max 1 (steps - 2)) / points) in
    match Cwsp_recovery.Harness.validate_explicit ~crash_at c with
    | Ok _ -> ()
    | Error e ->
      incr fails;
      if !first = None then first := Some (crash_at, e)
  done;
  (!fails, !first)

let has_rule rule diags =
  List.exists (fun (d : Cwsp_verify.Diag.t) -> d.rule = rule) diags

(* ---- positive: the whole registry is certified in explicit mode ---- *)

let test_registry_explicit_clean () =
  List.iter
    (fun (w : Cwsp_workloads.Defs.t) ->
      let c = Pipeline.compile ~config:explicit_config (w.build ~scale:1) in
      match Cwsp_verify.Verify.(normalize (run c)) with
      | [] -> ()
      | ds ->
        Alcotest.failf "%s: explicit compile not clean:\n%s" w.name
          (Cwsp_verify.Verify.report ds))
    Cwsp_workloads.Registry.all

(* the explicit config reports a distinct name, so memo/report rows of
   implicit and explicit compiles can never be confused *)
let test_config_names () =
  Alcotest.(check string)
    "explicit name" "cwsp-explicit"
    (Pipeline.config_name explicit_config);
  Alcotest.(check string) "implicit name unchanged" "cwsp"
    (Pipeline.config_name Pipeline.cwsp)

(* every flush the compiler inserts covers at least one store on some
   path (= the redundant-flush lint is the exact complement of the
   cleanup pass) *)
let test_insertion_minimal () =
  let c = compile_explicit corpus_workload in
  let diags = Cwsp_verify.Verify.(normalize (run c)) in
  Alcotest.(check bool) "no redundant flushes" false
    (has_rule Cwsp_verify.Diag.Redundant_flush diags)

(* the persist tier is byte-identical across executor pool widths *)
let test_jobs_determinism () =
  let names = [ "lu-ncg"; "kmeans"; "gobmk"; "fft" ] in
  let pairs =
    Array.of_list (List.map Cwsp_workloads.Registry.find_exn names)
  in
  let rows jobs =
    Cwsp_core.Executor.map_pool ~cat:"test-persist"
      ~label:(fun i -> pairs.(i).Cwsp_workloads.Defs.name)
      ~jobs
      (fun (w : Cwsp_workloads.Defs.t) ->
        let c = Pipeline.compile ~config:explicit_config (w.build ~scale:1) in
        Cwsp_verify.Verify.(report_json (normalize (run c))))
      pairs
  in
  Alcotest.(check (array string)) "jobs=1 equals jobs=4" (rows 1) (rows 4)

(* ---- positive: the oracle recovers at every strided crash point ---- *)

let test_oracle_positive_sweep () =
  let c = compile_explicit corpus_workload in
  let steps = golden_steps c in
  let fails, first = sweep ~points:12 ~steps c in
  match first with
  | None -> Alcotest.(check int) "no failures" 0 fails
  | Some (at, e) ->
    Alcotest.failf "%d/12 crash points diverged; first @%d: %s" fails at e

(* ---- negative: the mutation corpus ---- *)

(* Each mutant must be caught statically with the expected rule AND
   escape dynamically at some crash point when checking is off. *)
let check_mutant name ~rule ~steps mutant =
  let diags = Cwsp_verify.Verify.(normalize (run mutant)) in
  let errs = Cwsp_verify.Verify.errors diags in
  if errs = [] then Alcotest.failf "%s: not caught statically" name;
  if not (has_rule rule errs) then
    Alcotest.failf "%s: expected %s, verifier said:\n%s" name
      (Cwsp_verify.Diag.rule_name rule)
      (Cwsp_verify.Verify.report errs);
  let escapes, _ = sweep ~points:40 ~steps mutant in
  if escapes = 0 then
    Alcotest.failf
      "%s: caught statically but never escaped dynamically — the \
       diagnostic may be vacuous"
      name

let test_mutant_dropped_flush () =
  let c = compile_explicit corpus_workload in
  let steps = golden_steps c in
  check_mutant "drop-flush" ~rule:Cwsp_verify.Diag.Missing_flush ~steps
    (drop_in "main" ~what:`Flush 0 c)

let test_mutant_dropped_pfence () =
  let c = compile_explicit corpus_workload in
  let steps = golden_steps c in
  check_mutant "drop-pfence" ~rule:Cwsp_verify.Diag.Missing_fence ~steps
    (drop_in "main" ~what:`Pfence 0 c)

(* the implicit-mode verifier must NOT be affected: the same drop on an
   implicit compile (which has no flushes at all) stays clean, i.e. the
   persist tier really is gated on the explicit mode *)
let test_implicit_unaffected () =
  let w = Cwsp_workloads.Registry.find_exn corpus_workload in
  let c = Pipeline.compile ~config:Pipeline.cwsp (w.build ~scale:1) in
  let diags = Cwsp_verify.Verify.(normalize (run c)) in
  List.iter
    (fun rule ->
      Alcotest.(check bool)
        (Cwsp_verify.Diag.rule_name rule ^ " absent in implicit mode")
        false (has_rule rule diags))
    Cwsp_verify.Diag.
      [ Missing_flush; Missing_fence; Early_commit; Redundant_flush ]

(* explicit compiles carry no flush into the implicit engine semantics:
   the explicit binary still computes the same outputs *)
let test_explicit_preserves_behaviour () =
  let w = Cwsp_workloads.Registry.find_exn corpus_workload in
  let imp = Pipeline.compile ~config:Pipeline.cwsp (w.build ~scale:1) in
  let exp = compile_explicit corpus_workload in
  let run p =
    Cwsp_interp.Machine.outputs (Cwsp_interp.Machine.run_functional p)
  in
  Alcotest.(check (list int))
    "same device outputs" (run imp.prog) (run exp.prog)

let () =
  Alcotest.run "persist"
    [
      ( "static",
        [
          Alcotest.test_case "registry certified in explicit mode" `Slow
            test_registry_explicit_clean;
          Alcotest.test_case "config names" `Quick test_config_names;
          Alcotest.test_case "insertion minimal" `Quick test_insertion_minimal;
          Alcotest.test_case "pool-width determinism" `Quick
            test_jobs_determinism;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "positive crash sweep" `Slow
            test_oracle_positive_sweep;
          Alcotest.test_case "behaviour preserved" `Quick
            test_explicit_preserves_behaviour;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "dropped flush" `Slow test_mutant_dropped_flush;
          Alcotest.test_case "dropped pfence" `Slow test_mutant_dropped_pfence;
          Alcotest.test_case "implicit unaffected" `Quick
            test_implicit_unaffected;
        ] );
    ]
