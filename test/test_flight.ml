(* The crash-surviving flight recorder and its post-mortem analyzer:
   ring codec round-trips, attach-by-scan cursor rebuild, wrap
   accounting, the torn-frontier tolerance rule (truncated, never
   corrupt), dump-artifact round-trips, outcome-neutrality of recording
   in the harness, and pool-width determinism of campaign dumps. *)

module Memory = Cwsp_ir.Memory
module Layout = Cwsp_ir.Layout
module Recorder = Cwsp_flight.Recorder
module Postmortem = Cwsp_flight.Postmortem
module Harness = Cwsp_recovery.Harness
module Fault = Cwsp_recovery.Fault
module Campaign = Cwsp_recovery.Campaign

let verdict = Alcotest.testable
    (fun fmt v -> Format.pp_print_string fmt (Postmortem.verdict_name v))
    ( = )

(* ---- ring codec ---- *)

let test_roundtrip () =
  let mem = Memory.create () in
  Alcotest.(check bool) "no ring on blank memory" true
    (Recorder.attach mem = None);
  let t = Recorder.format ~capacity:8 mem in
  Recorder.append t ~kind:Recorder.Boundary 10 1 2 0;
  Recorder.append t ~kind:Recorder.Telemetry 3 4 (-1) 6;
  Recorder.bump_epoch t;
  Recorder.append t ~kind:Recorder.Crash 99 7 2 0;
  (* attach rebuilds the cursor purely from NVM *)
  match Recorder.attach mem with
  | None -> Alcotest.fail "attach failed on a formatted ring"
  | Some t' ->
    Alcotest.(check int) "next lsn rebuilt" 4 (Recorder.next_lsn t');
    Alcotest.(check int) "epoch rebuilt" 1 (Recorder.epoch t');
    let a = Postmortem.audit mem in
    Alcotest.check verdict "clean" Postmortem.Clean a.a_verdict;
    Alcotest.(check int) "3 records" 3 (List.length a.a_records);
    Alcotest.(check (list int)) "epochs" [ 0; 1 ] a.a_epochs;
    (* the negative telemetry arg survives the codec *)
    (match List.nth a.a_records 1 with
    | { r_args = _, _, a2, _; _ } -> Alcotest.(check int) "neg arg" (-1) a2)

let test_wrap () =
  let mem = Memory.create () in
  let t = Recorder.format ~capacity:4 mem in
  for i = 1 to 10 do
    Recorder.append t ~kind:Recorder.Note i 0 0 0
  done;
  let a = Postmortem.audit mem in
  Alcotest.check verdict "wrapped ring still clean" Postmortem.Clean a.a_verdict;
  Alcotest.(check int) "max lsn" 10 a.a_max_lsn;
  Alcotest.(check int) "overwritten" 6 a.a_overwritten;
  Alcotest.(check (list int)) "surviving suffix"
    [ 7; 8; 9; 10 ]
    (List.map (fun (r : Postmortem.record) -> r.r_lsn) a.a_records)

(* ---- the torn-frontier tolerance rule (satellite: ring faults) ---- *)

(* Tear every word of the frontier record in turn (and then all of them
   at once): the audit must always come back [Truncated] — a consistent
   prefix — and every intact record must still be readable. Damage
   anywhere else must come back [Corrupt]. *)
let test_torn_frontier_truncates () =
  let build () =
    let mem = Memory.create () in
    let t = Recorder.format ~capacity:8 mem in
    for i = 1 to 6 do
      Recorder.append t ~kind:Recorder.Note i i i i
    done;
    (mem, t)
  in
  let _, t0 = build () in
  let frontier = Recorder.frontier_words t0 in
  Alcotest.(check int) "frontier is one record" Recorder.record_words
    (List.length frontier);
  List.iter
    (fun addr ->
      let mem, _ = build () in
      Memory.write mem addr 0xdeadbeef;
      let a = Postmortem.audit mem in
      Alcotest.check verdict
        (Printf.sprintf "torn word @%x -> truncated" addr)
        Postmortem.Truncated a.a_verdict;
      Alcotest.(check int) "prefix survives" 5 (List.length a.a_records);
      Alcotest.(check int) "one torn slot" 1 a.a_torn)
    frontier;
  (* the whole frontier record smashed at once *)
  let mem, _ = build () in
  List.iter (fun addr -> Memory.write mem addr 0xdeadbeef) frontier;
  let a = Postmortem.audit mem in
  Alcotest.check verdict "smashed frontier -> truncated" Postmortem.Truncated
    a.a_verdict;
  (* a mid-ring slot torn with the frontier intact is NOT crash-shaped *)
  let mem, _ = build () in
  Memory.write mem (Recorder.slot_addr 2) 0xdeadbeef;
  let a = Postmortem.audit mem in
  Alcotest.check verdict "mid-ring damage -> corrupt" Postmortem.Corrupt
    a.a_verdict;
  Alcotest.(check (list int)) "corrupt slot reported" [ 2 ] a.a_corrupt_slots

(* a torn frontier never stops the next epoch: append overwrites it *)
let test_append_after_tear () =
  let mem = Memory.create () in
  let t = Recorder.format ~capacity:8 mem in
  for i = 1 to 3 do
    Recorder.append t ~kind:Recorder.Note i 0 0 0
  done;
  (match Recorder.frontier_words t with
  | commit :: _ -> Memory.write mem commit 0x1234
  | [] -> Alcotest.fail "no frontier");
  match Recorder.attach mem with
  | None -> Alcotest.fail "attach failed"
  | Some t' ->
    (* lsn 3 was torn away, so the scan sees max lsn 2 and reuses 3 *)
    Alcotest.(check int) "torn frontier lsn reused" 3 (Recorder.next_lsn t');
    Recorder.bump_epoch t';
    Recorder.append t' ~kind:Recorder.Restart 0 0 0 0;
    let a = Postmortem.audit mem in
    Alcotest.check verdict "healed by overwrite" Postmortem.Clean a.a_verdict;
    Alcotest.(check (list int)) "epochs" [ 0; 1 ] a.a_epochs

(* ---- dump artifact ---- *)

let test_dump_roundtrip () =
  let mem = Memory.create () in
  let t = Recorder.format ~capacity:8 mem in
  Recorder.append t ~kind:Recorder.Telemetry 17 102 (-1) 12;
  Recorder.bump_epoch t;
  Recorder.append t ~kind:Recorder.Decision 1 15 4 1;
  let dump = Recorder.dump_string mem in
  (match Recorder.load_dump_string dump with
  | None -> Alcotest.fail "dump failed to parse"
  | Some mem' ->
    Alcotest.(check string) "dump round-trips byte-exactly" dump
      (Recorder.dump_string mem');
    let a = Postmortem.audit mem' in
    Alcotest.check verdict "reloaded ring clean" Postmortem.Clean a.a_verdict;
    Alcotest.(check string) "text render deterministic"
      (Postmortem.render_text (Postmortem.audit mem))
      (Postmortem.render_text a));
  Alcotest.(check bool) "garbage rejected" true
    (Recorder.load_dump_string "not a dump" = None);
  (* a dump naming an address outside the flight region is rejected *)
  Alcotest.(check bool) "foreign address rejected" true
    (Recorder.load_dump_string (Recorder.dump_header ^ "\n10 1\n") = None)

let test_empty_and_noring () =
  let mem = Memory.create () in
  Alcotest.check verdict "blank memory" Postmortem.No_ring
    (Postmortem.audit mem).a_verdict;
  let _ = Recorder.format ~capacity:8 mem in
  Alcotest.check verdict "formatted, no records" Postmortem.Empty
    (Postmortem.audit mem).a_verdict

(* ---- harness integration: recording is outcome-neutral ---- *)

let compiled_of name =
  Cwsp_core.Api.compiled
    (Cwsp_workloads.Registry.find_exn name)
    Cwsp_compiler.Pipeline.cwsp

let test_harness_flight_neutral () =
  let compiled = compiled_of "fft" in
  let g = Harness.golden_of compiled in
  List.iter
    (fun cls ->
      let run flight =
        Harness.validate_fault ~golden:g ~hardened:true ~flight ~fault:cls
          ~seed:7 ~crash_at:(g.g_steps / 2) compiled
      in
      match (run false, run true) with
      | Ok off, Ok on ->
        Alcotest.(check bool)
          (Fault.name cls ^ ": outcome unchanged by recording")
          true
          (off.fr_outcome = on.fr_outcome
          && off.fr_state_ok = on.fr_state_ok
          && off.fr_injected = on.fr_injected
          && off.fr_detections = on.fr_detections
          && off.fr_rung_region = on.fr_rung_region);
        Alcotest.(check bool) "dump only when enabled" true
          (off.fr_flight = None && on.fr_flight <> None);
        (* the dump must audit as a trustworthy timeline with the crash
           and the ladder's verdict on it *)
        let dump = Option.get on.fr_flight in
        (match Recorder.load_dump_string dump with
        | None -> Alcotest.fail "harness dump unparseable"
        | Some mem ->
          let a = Postmortem.audit mem in
          Alcotest.(check bool)
            (Fault.name cls ^ ": dump trustworthy")
            true
            (a.a_verdict = Postmortem.Clean
            || a.a_verdict = Postmortem.Truncated);
          let s = Postmortem.summarize a in
          Alcotest.(check int) "one crash" 1 s.s_crashes;
          Alcotest.(check bool) "a decision was recorded" true
            (s.s_decisions <> []))
      | Error a, Error b ->
        Alcotest.(check string) "same harness error" a b
      | _ -> Alcotest.failf "%s: flight changed Ok/Error" (Fault.name cls))
    [ Fault.Torn_persist; Fault.Log_corruption; Fault.Ckpt_bitflip ]

let test_explicit_flight () =
  let compiled =
    Cwsp_core.Api.compiled
      (Cwsp_workloads.Registry.find_exn "fft")
      Cwsp_compiler.Pipeline.cwsp_explicit
  in
  let dump = ref None in
  (match
     Harness.validate_explicit ~flight:true
       ~on_flight:(fun d -> dump := Some d)
       ~crash_at:2000 compiled
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match Option.bind !dump Recorder.load_dump_string with
  | None -> Alcotest.fail "explicit dump missing or unparseable"
  | Some mem ->
    let a = Postmortem.audit mem in
    Alcotest.check verdict "explicit dump clean" Postmortem.Clean a.a_verdict;
    let s = Postmortem.summarize a in
    Alcotest.(check int) "crash recorded" 1 s.s_crashes;
    (* chrome render is well-formed enough for a JSON validator *)
    let chrome = Postmortem.render_chrome a in
    Alcotest.(check bool) "chrome render shape" true
      (String.length chrome > 2
      && chrome.[0] = '['
      && String.ends_with ~suffix:"]\n" chrome)

(* ---- campaign dumps are identical at any pool width ---- *)

let test_campaign_flight_deterministic () =
  let target = Campaign.target ~name:"fft" (compiled_of "fft") in
  let run map =
    Campaign.run ~map ~flight:true ~seeds:2
      ~classes:[ Fault.Torn_persist; Fault.Log_corruption ]
      [ target ]
  in
  let seq = run Array.map in
  let par = run (fun f specs -> Cwsp_core.Executor.map_pool ~jobs:3 f specs) in
  let dumps r =
    List.map
      (fun (c : Campaign.cell) -> (Campaign.flight_file_name c, c.c_flight))
      r.Campaign.r_cells
  in
  Alcotest.(check bool) "every cell carries a dump" true
    (List.for_all (fun (_, d) -> d <> None) (dumps seq));
  Alcotest.(check bool) "dumps identical, jobs=seq vs pool" true
    (dumps seq = dumps par);
  (* each dump ends with the campaign's own Cell verdict in a new epoch *)
  List.iter
    (fun (c : Campaign.cell) ->
      match Option.bind c.c_flight Recorder.load_dump_string with
      | None -> Alcotest.fail "cell dump unparseable"
      | Some mem ->
        let a = Postmortem.audit mem in
        let last = List.nth a.a_records (List.length a.a_records - 1) in
        Alcotest.(check bool) "last record is the cell verdict" true
          (last.r_kind = Some Recorder.Cell))
    seq.Campaign.r_cells

let () =
  Alcotest.run "flight"
    [
      ( "ring",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "wrap" `Quick test_wrap;
          Alcotest.test_case "torn frontier truncates" `Quick
            test_torn_frontier_truncates;
          Alcotest.test_case "append after tear" `Quick test_append_after_tear;
          Alcotest.test_case "dump roundtrip" `Quick test_dump_roundtrip;
          Alcotest.test_case "empty and no-ring" `Quick test_empty_and_noring;
        ] );
      ( "harness",
        [
          Alcotest.test_case "recording is outcome-neutral" `Quick
            test_harness_flight_neutral;
          Alcotest.test_case "explicit-mode dump" `Quick test_explicit_flight;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "dumps deterministic across pool widths" `Quick
            test_campaign_flight_deterministic;
        ] );
    ]
