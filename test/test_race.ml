(* The SPMD race verifier (DESIGN.md §13) end to end:

   1. registry sweep: every parallel workload × every instrumented
      config — DRF workloads certify with zero race findings, the
      deliberately racy one is rejected;
   2. mutation corpus: four hand-written mutants of one DRF base, each
      caught by exactly the intended static rule AND shown to misbehave
      (race or hang) under the dynamic monitor — the static tier and
      the dynamic oracle corroborate each other;
   3. tid-affine unit tests: the stride/range disjointness verdicts the
      tier's lock-free half rests on;
   4. the redundant-atomic lint;
   5. quantum regression: [Multi.create ?quantum] actually changes the
      interleaving, DRF results don't care, racy results do;
   6. fuzz soundness hammer: generated SPMD programs — a certificate
      implies a clean monitor sweep, a planted defect implies a static
      rejection;
   7. parallel verify sweep is byte-identical across executor widths. *)

open Cwsp_ir
module Fuzz_gen = Cwsp_fuzz.Gen
open Cwsp_interp
module Ta = Cwsp_analysis.Tid_affine
module Race = Cwsp_analysis.Race
module Verify = Cwsp_verify.Verify
module Diag = Cwsp_verify.Diag
module Pipeline = Cwsp_compiler.Pipeline
module W = Cwsp_workloads.W_parallel

let configs = Pipeline.[ cwsp; cwsp_no_prune; regions_only ]

let is_race_rule (d : Diag.t) =
  match d.rule with
  | Diag.Data_race | Diag.Unlocked_shared_write | Diag.Tid_overlap_unprovable
  | Diag.Redundant_atomic ->
    true
  | _ -> false

let race_diags prog_compiled =
  List.filter is_race_rule Verify.(normalize (run prog_compiled))

(* ---- 1. registry sweep ---- *)

let test_registry_sweep () =
  List.iter
    (fun (w : W.t) ->
      List.iter
        (fun config ->
          let compiled = Pipeline.compile ~config (w.pbuild ~scale:1 ~threads:4) in
          let rd = race_diags compiled in
          let label =
            Printf.sprintf "%s/%s" w.pname (Pipeline.config_name config)
          in
          if w.expect_racy then begin
            if not (List.exists Diag.is_error rd) then
              Alcotest.failf "%s: expected a race rejection, got none" label;
            List.iter
              (fun (d : Diag.t) ->
                if d.rule <> Diag.Unlocked_shared_write then
                  Alcotest.failf "%s: unexpected rule %s" label
                    (Diag.rule_name d.rule))
              rd
          end
          else if rd <> [] then
            Alcotest.failf "%s: spurious race finding: %s" label
              (Diag.to_string (List.hd rd)))
        configs)
    W.all

(* every workload's certificate (or rejection) is corroborated by the
   dynamic monitor on executed interleavings *)
let test_registry_monitor () =
  List.iter
    (fun (w : W.t) ->
      let p = w.pbuild ~scale:1 ~threads:3 in
      let os = Race_monitor.sweep ~fuel:50_000_000 p ~threads:3 ~worker:w.worker in
      if w.expect_racy then begin
        if Race_monitor.all_clean os then
          Alcotest.failf "%s: expected a dynamic race, all runs clean" w.pname
      end
      else if not (Race_monitor.all_clean os) then
        Alcotest.failf "%s: dynamic race/hang on a certified workload" w.pname)
    W.all

(* ---- 2. mutation corpus ---- *)

type mutant = Base | Drop_acquire | Widen_stride | Drop_release | Plain_accum

let mutant_name = function
  | Base -> "base"
  | Drop_acquire -> "drop-acquire"
  | Widen_stride -> "widen-stride"
  | Drop_release -> "drop-release"
  | Plain_accum -> "plain-accum"

(* One DRF worker exercising all three certified idioms in three
   phases — a lock-free tid-striped loop, an inline CAS/TSO-release
   critical-section loop, an atomic-accumulator loop — with one idiom
   broken per mutant. The phases are deliberately sync-free relative to
   each other where possible, so a planted race is not accidentally
   ordered (and masked) by the lock's happens-before edges. *)
let corpus_prog (m : mutant) : Prog.t =
  let open Builder in
  let b = Builder.program () in
  Builder.global b "cstriped" ~size:(4 * 32 * 8) ();
  Builder.global b "cshared" ~size:(32 * 8) ();
  Builder.global b "clock" ~size:8 ();
  Builder.global b "cacc" ~size:8 ();
  Builder.global b "cres" ~size:(4 * 8) ();
  Builder.func b "worker" ~nparams:1 (fun fb ->
      let tid = param fb 0 in
      let striped = la fb "cstriped" in
      let shared = la fb "cshared" in
      let lock = la fb "clock" in
      let accw = la fb "cacc" in
      let mybase =
        bin fb Add (Reg striped) (Reg (bin fb Mul (Reg tid) (Imm (32 * 8))))
      in
      (* phase A: striped private traffic, no synchronization at all;
         Widen_stride doubles the index mask, so thread t reaches into
         thread t+1's stripe *)
      let _ =
        loop fb ~from:(Imm 0) ~below:(Imm 48) (fun j ->
            let mask = match m with Widen_stride -> 63 | _ -> 31 in
            let idx = bin fb And (Reg j) (Imm mask) in
            let slot = bin fb Add (Reg mybase) (Reg (bin fb Shl (Reg idx) (Imm 3))) in
            let v = load fb slot 0 in
            store fb slot 0 (Reg (bin fb Add (Reg v) (Imm 1))))
      in
      (* phase B: critical sections on [cshared] under an inline
         CAS-acquire / TSO-release lock; Drop_acquire removes the CAS,
         Drop_release the unlock store *)
      let _ =
        loop fb ~from:(Imm 0) ~below:(Imm 16) (fun j ->
            (match m with
            | Drop_acquire -> ()
            | _ ->
              let head = block fb in
              let cont = block fb in
              jmp fb head;
              switch_to fb head;
              let old = cas fb lock 0 ~expected:(Imm 0) ~desired:(Imm 1) in
              let got = cmp fb Eq (Reg old) (Imm 0) in
              br fb got ~ifso:cont ~ifnot:head;
              switch_to fb cont);
            let sidx = bin fb And (Reg (bin fb Add (Reg j) (Reg tid))) (Imm 31) in
            let sslot = bin fb Add (Reg shared) (Reg (bin fb Shl (Reg sidx) (Imm 3))) in
            let sv = load fb sslot 0 in
            store fb sslot 0 (Reg (bin fb Add (Reg sv) (Imm 1)));
            (* Plain_accum: a shared accumulator downgraded from atomic
               to plain load/add/store — kept inside the section, so the
               only defect is mixed atomicity vs phase C's atomics *)
            (match m with
            | Plain_accum ->
              let av = load fb accw 0 in
              store fb accw 0 (Reg (bin fb Add (Reg av) (Reg sv)))
            | _ -> ());
            (match m with
            | Drop_release -> ()
            | _ -> store fb lock 0 (Imm 0)))
      in
      (* phase C: shared atomic accumulators — data atomics (Reg/Xor
         operand shapes), not lock operations *)
      let _ =
        loop fb ~from:(Imm 0) ~below:(Imm 16) (fun j ->
            ignore (atomic_rmw fb Types.Add accw 0 (Reg j));
            ignore (atomic_rmw fb Types.Xor accw 0 (Reg tid)))
      in
      let res = la fb "cres" in
      let rslot = bin fb Add (Reg res) (Reg (bin fb Shl (Reg tid) (Imm 3))) in
      store fb rslot 0 (Reg tid);
      ret fb None);
  Builder.func b "main" ~nparams:0 (fun fb ->
      call_void fb "worker" [ Imm 0 ];
      ret fb None);
  Builder.set_main b "main";
  Builder.finish b

let intended_rule = function
  | Base -> None
  | Drop_acquire -> Some Diag.Unlocked_shared_write
  | Widen_stride -> Some Diag.Tid_overlap_unprovable
  | Drop_release -> Some Diag.Data_race
  | Plain_accum -> Some Diag.Data_race

let test_mutants_static () =
  List.iter
    (fun m ->
      let compiled = Pipeline.compile (corpus_prog m) in
      let rd = race_diags compiled in
      let name = mutant_name m in
      match intended_rule m with
      | None ->
        if rd <> [] then
          Alcotest.failf "base: spurious finding: %s"
            (Diag.to_string (List.hd rd))
      | Some rule ->
        if not (List.exists (fun (d : Diag.t) -> d.rule = rule) rd) then
          Alcotest.failf "%s: not caught by %s (%d findings)" name
            (Diag.rule_name rule) (List.length rd);
        List.iter
          (fun (d : Diag.t) ->
            if d.rule <> rule then
              Alcotest.failf "%s: stray rule %s (wanted only %s): %s" name
                (Diag.rule_name d.rule) (Diag.rule_name rule)
                (Diag.to_string d))
          rd)
    [ Base; Drop_acquire; Widen_stride; Drop_release; Plain_accum ]

(* each mutant must also misbehave for real: the racy ones race under
   the monitor, the dropped release hangs the spinners *)
let test_mutants_dynamic () =
  let sweep m ~fuel =
    Race_monitor.sweep ~fuel (corpus_prog m) ~threads:3 ~worker:"worker"
  in
  let raced os = List.exists (fun (o : Race_monitor.outcome) -> o.races <> []) os in
  let hung os = List.exists (fun (o : Race_monitor.outcome) -> o.hung) os in
  let os = sweep Base ~fuel:10_000_000 in
  if not (Race_monitor.all_clean os) then
    Alcotest.fail "base: dynamic race/hang on the DRF corpus program";
  List.iter
    (fun m ->
      if not (raced (sweep m ~fuel:10_000_000)) then
        Alcotest.failf "%s: no dynamic race observed" (mutant_name m))
    [ Drop_acquire; Widen_stride; Plain_accum ];
  let os = sweep Drop_release ~fuel:400_000 in
  if not (hung os) then
    Alcotest.fail "drop-release: spinners should exhaust their fuel"

(* ---- 3. tid-affine disjointness ---- *)

let test_tid_affine () =
  let check = Alcotest.(check bool) in
  let pg ?(k = 0) ?(g = "g") lo hi = Ta.Pglob { g; k; lo; hi } in
  let v = Ta.cross_thread in
  (* per-thread stripes: stride 256, footprint [0,248+7] — disjoint *)
  check "stride covers footprint" true (v (pg ~k:256 0 248) (pg ~k:256 0 248) = Ta.Disjoint);
  (* widened footprint crosses into the neighbour stripe *)
  check "widened stride overlaps" true (v (pg ~k:256 0 504) (pg ~k:256 0 504) = Ta.Overlap);
  (* one shared word, all threads *)
  check "same word overlaps" true (v (pg 0 0) (pg 0 0) = Ta.Overlap);
  (* fixed word inside some thread's stripe *)
  check "fixed vs striped hit" true (v (pg 256 256) (pg ~k:256 0 0) = Ta.Overlap);
  (* fixed word between stripes' footprints *)
  check "fixed vs striped miss" true (v (pg 16 16) (pg ~k:256 0 0) = Ta.Disjoint);
  (* word-footprint adjacency: stride 8 just separates single words *)
  check "stride 8 single word" true (v (pg ~k:8 0 0) (pg ~k:8 0 0) = Ta.Disjoint);
  check "stride 8 range 8" true (v (pg ~k:8 0 8) (pg ~k:8 0 8) = Ta.Overlap);
  (* distinct globals never collide (object-bounded, as in Alias) *)
  check "different globals" true
    (v (pg ~g:"a" 0 1000) (pg ~g:"b" 0 1000) = Ta.Disjoint);
  (* mismatched strides: never claim Disjoint *)
  check "mismatched strides stay unproven" true
    (v (pg ~k:256 0 0) (pg ~k:320 0 0) <> Ta.Disjoint);
  (* unknowns *)
  check "Pany is unknown" true (v Ta.Pany (pg 0 0) = Ta.Unknown);
  check "infinite range unknown" true
    (v (pg ~k:256 0 Ta.pinf) (pg ~k:256 0 Ta.pinf) = Ta.Unknown);
  (* the analysis half: a masked, shifted, tid-scaled index resolves *)
  let p, _ = Fuzz_gen.gen_spmd_program 2 in
  let wfn = Prog.func_exn p "worker" in
  let states, _ = Ta.block_entry_states ~tid_param:0 wfn in
  check "worker entry has states" true (Array.length states > 0)

(* ---- 4. redundant-atomic lint ---- *)

let test_redundant_atomic () =
  let open Builder in
  let b = Builder.program () in
  Builder.global b "priv" ~size:(4 * 8) ();
  Builder.func b "worker" ~nparams:1 (fun fb ->
      let tid = param fb 0 in
      let g = la fb "priv" in
      let slot = bin fb Add (Reg g) (Reg (bin fb Shl (Reg tid) (Imm 3))) in
      (* an atomic on a provably thread-private word (Xor: not an
         acquire/release shape, so it stays a data access) *)
      ignore (atomic_rmw fb Types.Xor slot 0 (Imm 1));
      ret fb None);
  Builder.func b "main" ~nparams:0 (fun fb ->
      call_void fb "worker" [ Imm 0 ];
      ret fb None);
  Builder.set_main b "main";
  let p = Builder.finish b in
  let fs = Race.check p ~worker:"worker" in
  match fs with
  | [ { f_rule = Race.Rredundant_atomic; _ } ] -> ()
  | _ ->
    Alcotest.failf "expected exactly the redundant-atomic lint, got %d findings"
      (List.length fs)

(* ---- 5. quantum regression ---- *)

let test_quantum () =
  let threads = 3 in
  let final ~quantum (w : W.t) g =
    let p = w.pbuild ~scale:1 ~threads in
    let linked = Machine.link p in
    let t = Multi.create ~quantum linked ~threads ~worker:w.worker in
    Multi.run t (fun _ -> Machine.no_hooks);
    Memory.read t.mem (Hashtbl.find linked.Machine.global_addr g)
  in
  let expected = threads * 400 in
  List.iter
    (fun quantum ->
      Alcotest.(check int)
        (Printf.sprintf "pcounter quantum=%d" quantum)
        expected
        (final ~quantum W.pcounter "pcnt"))
    [ 1; 7; 32 ];
  let racy = List.map (fun q -> final ~quantum:q W.pcounter_racy "rcnt") [ 1; 7; 32 ] in
  Alcotest.(check bool) "racy counter loses updates" true
    (List.exists (fun v -> v < expected) racy);
  Alcotest.(check bool) "quantum changes the interleaving" true
    (List.length (List.sort_uniq compare racy) > 1);
  (match Multi.create ~quantum:0 (Machine.link (W.pcounter.pbuild ~scale:1 ~threads)) ~threads ~worker:"worker" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "quantum=0 must be rejected")

(* ---- 6. fuzz soundness hammer ---- *)

let test_fuzz_soundness () =
  let drf = ref 0 and racy = ref 0 in
  for seed = 1 to 40 do
    let p, kind = Fuzz_gen.gen_spmd_program seed in
    let compiled = Pipeline.compile p in
    let errs = List.filter Diag.is_error (race_diags compiled) in
    match kind with
    | `Drf ->
      incr drf;
      if errs <> [] then
        Alcotest.failf "seed %d: DRF generator shape not certified: %s" seed
          (Diag.to_string (List.hd errs));
      (* the certificate, checked on executed interleavings *)
      let os = Race_monitor.sweep ~fuel:5_000_000 p ~threads:3 ~worker:"worker" in
      if not (Race_monitor.all_clean os) then
        Alcotest.failf "seed %d: certified race-free but the monitor raced" seed
    | `Racy ->
      incr racy;
      if errs = [] then
        Alcotest.failf "seed %d: planted defect not rejected" seed
  done;
  if !drf = 0 || !racy = 0 then
    Alcotest.failf "generator imbalance: %d drf / %d racy" !drf !racy

(* ---- 7. executor-width determinism ---- *)

let test_parallel_determinism () =
  let pairs =
    Array.of_list
      (List.concat_map
         (fun (w : W.t) -> List.map (fun c -> (w, c)) configs)
         W.all)
  in
  let report (w, config) =
    let compiled = Pipeline.compile ~config (w.W.pbuild ~scale:1 ~threads:4) in
    Verify.report (Verify.run compiled)
  in
  let run jobs =
    Cwsp_core.Executor.map_pool ~cat:"verify-race"
      ~label:(fun i -> (fst pairs.(i)).W.pname)
      ~jobs report pairs
  in
  Alcotest.(check (array string)) "jobs=1 vs jobs=4" (run 1) (run 4)

let () =
  Alcotest.run "race"
    [
      ( "static",
        [
          Alcotest.test_case "registry sweep (all parallel workloads x 3 configs)"
            `Slow test_registry_sweep;
          Alcotest.test_case "mutation corpus: intended rule only" `Quick
            test_mutants_static;
          Alcotest.test_case "tid-affine disjointness verdicts" `Quick
            test_tid_affine;
          Alcotest.test_case "redundant-atomic lint" `Quick test_redundant_atomic;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "registry monitor corroboration" `Slow
            test_registry_monitor;
          Alcotest.test_case "mutation corpus: dynamic misbehaviour" `Slow
            test_mutants_dynamic;
          Alcotest.test_case "quantum regression" `Quick test_quantum;
        ] );
      ( "cross",
        [
          Alcotest.test_case "fuzz soundness hammer (40 programs)" `Slow
            test_fuzz_soundness;
          Alcotest.test_case "parallel verify determinism" `Quick
            test_parallel_determinism;
        ] );
    ]
