(* Randomized well-formed program generator shared by the fuzz suites
   (test_fuzz: compiler oracles; test_decode: decoded-core differential
   oracle). Emits nested loops, branches, random arithmetic DAGs,
   loads/stores with both provable and unprovable addresses (mixing
   Exact/Within/Any aliasing), calls into the runtime allocator, atomics
   and fences. Every seed is reproducible from its number. *)

open Cwsp_ir
open Cwsp_util

let n_globals = 3

(* random operand: a live register or a small immediate *)
let rand_operand rng regs =
  if Rng.bool rng || regs = [] then Types.Imm (Rng.int rng 1000 - 500)
  else Types.Reg (Rng.pick rng (Array.of_list regs))

let rand_binop rng =
  Rng.pick rng [| Types.Add; Sub; Mul; And; Or; Xor; Shl; Lshr |]

let rand_global rng = Printf.sprintf "fz%d" (Rng.int rng n_globals)

(* emit a random address computation over global [g]: exact, strided or
   opaque (via a register the alias analysis cannot track) *)
let rand_address rng fb regs g =
  let open Builder in
  let base = la fb g in
  match Rng.int rng 3 with
  | 0 -> (base, 8 * Rng.int rng 32) (* exact offset *)
  | 1 ->
    let idx =
      match regs with
      | [] -> imm fb (Rng.int rng 32)
      | _ -> Rng.pick rng (Array.of_list regs)
    in
    let bounded = bin fb And (Reg idx) (Imm 31) in
    (bin fb Add (Reg base) (Reg (bin fb Shl (Reg bounded) (Imm 3))), 0)
  | _ ->
    (* launder the pointer through memory: Any provenance *)
    let slot = la fb "fzptr" in
    store fb slot 0 (Reg base);
    let p = load fb slot 0 in
    (p, 8 * Rng.int rng 32)

let rec gen_block rng fb depth regs budget =
  let open Builder in
  let regs = ref regs in
  let n = 3 + Rng.int rng 8 in
  for _ = 1 to n do
    if !budget > 0 then begin
      decr budget;
      match Rng.int rng 10 with
      | 0 | 1 | 2 ->
        let d = bin fb (rand_binop rng) (rand_operand rng !regs) (rand_operand rng !regs) in
        regs := d :: !regs
      | 3 | 4 ->
        let g = rand_global rng in
        let a, off = rand_address rng fb !regs g in
        let v = load fb a off in
        regs := v :: !regs
      | 5 | 6 ->
        let g = rand_global rng in
        let a, off = rand_address rng fb !regs g in
        store fb a off (rand_operand rng !regs)
      | 7 when depth > 0 ->
        let c = cmp fb Types.Ne (rand_operand rng !regs) (Imm 0) in
        let saved = !regs in
        if_ fb c
          ~then_:(fun () -> gen_block rng fb (depth - 1) saved budget)
          ~else_:(fun () -> gen_block rng fb (depth - 1) saved budget)
      | 7 ->
        let d = mov fb (rand_operand rng !regs) in
        regs := d :: !regs
      | 8 when depth > 0 ->
        let iters = 2 + Rng.int rng 5 in
        let saved = !regs in
        let _ =
          loop fb ~from:(Imm 0) ~below:(Imm iters) (fun i ->
              gen_block rng fb (depth - 1) (i :: saved) budget)
        in
        ()
      | 8 ->
        let g = rand_global rng in
        let a, off = rand_address rng fb !regs g in
        let v = atomic_rmw fb Types.Add a off (rand_operand rng !regs) in
        regs := v :: !regs
      | _ ->
        if Rng.int rng 4 = 0 then fence fb
        else begin
          let p = call fb "malloc" [ Imm (8 * (1 + Rng.int rng 4)) ] in
          store fb p 0 (rand_operand rng !regs);
          let v = load fb p 0 in
          regs := v :: !regs;
          if Rng.bool rng then call_void fb "free" [ Reg p ]
        end
    end
  done;
  (* make some values observable *)
  match !regs with
  | r :: _ -> call_void fb "__out" [ Reg r ]
  | [] -> ()

let gen_program seed : Prog.t =
  let rng = Rng.create seed in
  let b = Builder.program () in
  Cwsp_runtime.Libc.add b;
  for i = 0 to n_globals - 1 do
    Builder.global b (Printf.sprintf "fz%d" i) ~size:256 ()
  done;
  Builder.global b "fzptr" ~size:8 ();
  Builder.func b "main" ~nparams:0 (fun fb ->
      let budget = ref (40 + Rng.int rng 60) in
      gen_block rng fb 2 [] budget;
      Builder.ret fb None);
  Builder.set_main b "main";
  Builder.finish b
