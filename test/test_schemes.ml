(* Scheme-level comparisons on a few real workloads (small but real). *)

open Cwsp_sim
open Cwsp_schemes

let w name = Cwsp_workloads.Registry.find_exn name

let slow name scheme =
  Cwsp_core.Api.slowdown (w name) ~scheme Config.default

let test_baseline_is_one () =
  Alcotest.(check (float 1e-9)) "baseline/baseline" 1.0
    (slow "gobmk" Schemes.baseline)

let test_cwsp_overhead_positive_bounded () =
  List.iter
    (fun name ->
      let s = slow name Schemes.cwsp in
      Alcotest.(check bool) (name ^ " >= 1") true (s >= 1.0);
      Alcotest.(check bool) (name ^ " < 2") true (s < 2.0))
    [ "gobmk"; "lbm"; "radix"; "tatp" ]

let test_ido_worse_than_cwsp () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ ": ido >= cwsp") true
        (slow name Schemes.ido >= slow name Schemes.cwsp -. 0.01))
    [ "radix"; "lbm"; "water-ns" ]

let test_capri_worse_than_cwsp_at_4gb () =
  (* the paper's Fig. 14 claim is suite-level: over write-dense
     applications Capri's 64B redo-buffer persistence loses to cWSP's
     8B persist path at the practical 4GB/s bandwidth *)
  let names = [ "radix"; "water-ns"; "p"; "lu-cg" ] in
  let gm scheme = Cwsp_util.Stats.gmean (List.map (fun n -> slow n scheme) names) in
  let capri = gm Schemes.capri and cwsp = gm Schemes.cwsp in
  Alcotest.(check bool)
    (Printf.sprintf "capri (%.2f) >= cwsp (%.2f) on write-dense gmean" capri cwsp)
    true
    (capri >= cwsp -. 0.01)

let test_replaycache_worst () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ ": replaycache >= capri") true
        (slow name Schemes.replaycache >= slow name Schemes.capri -. 0.05))
    [ "radix"; "water-ns" ]

let test_psp_ideal_bad_on_memory_intensive () =
  (* the whole point of WSP: losing the DRAM cache hurts much more than
     cWSP's persistence machinery (Fig. 18) *)
  List.iter
    (fun name ->
      let psp = slow name Schemes.psp_ideal in
      let cwsp = slow name Schemes.cwsp in
      Alcotest.(check bool)
        (Printf.sprintf "%s: psp(%.2f) > cwsp(%.2f)" name psp cwsp)
        true (psp > cwsp))
    [ "lbm"; "xsbench"; "lulesh" ]

let test_psp_ideal_drops_dram_cache () =
  let cfg = Schemes.psp_ideal.s_reconfig Config.default in
  Alcotest.(check int) "one level fewer"
    (List.length Config.default.levels - 1)
    (List.length cfg.levels)

let test_fig15_stage_ordering () =
  (* stage 1 (no persistence) must be the cheapest; the final stage must
     not exceed the no-pruning stage *)
  let stage n = List.assoc n Schemes.fig15_stages in
  let s name sch = slow name sch in
  List.iter
    (fun name ->
      let s1 = s name (stage "+RegionFormation") in
      let s5 = s name (stage "+WPQDelay") in
      let s6 = s name (stage "+Pruning") in
      Alcotest.(check bool) (name ^ ": stage1 <= stage5") true (s1 <= s5 +. 0.01);
      Alcotest.(check bool) (name ^ ": pruning helps") true (s6 <= s5 +. 0.01))
    [ "radix"; "water-ns"; "bzip2" ]

let test_scheme_binaries_differ () =
  (* cwsp strips checkpoints relative to no-prune *)
  let tr_full = Cwsp_core.Api.trace (w "radix") Cwsp_compiler.Pipeline.cwsp in
  let tr_nop = Cwsp_core.Api.trace (w "radix") Cwsp_compiler.Pipeline.cwsp_no_prune in
  let s_full = Cwsp_interp.Trace.summarize tr_full in
  let s_nop = Cwsp_interp.Trace.summarize tr_nop in
  Alcotest.(check bool) "pruning removed dynamic ckpts" true
    (s_full.ckpts < s_nop.ckpts);
  Alcotest.(check int) "same stores" s_nop.stores s_full.stores

let () =
  Alcotest.run "schemes"
    [
      ( "ordering",
        [
          Alcotest.test_case "baseline = 1" `Quick test_baseline_is_one;
          Alcotest.test_case "cwsp bounded" `Slow test_cwsp_overhead_positive_bounded;
          Alcotest.test_case "ido >= cwsp" `Slow test_ido_worse_than_cwsp;
          Alcotest.test_case "capri >= cwsp" `Slow test_capri_worse_than_cwsp_at_4gb;
          Alcotest.test_case "replaycache worst" `Slow test_replaycache_worst;
          Alcotest.test_case "psp ideal loses" `Slow test_psp_ideal_bad_on_memory_intensive;
          Alcotest.test_case "psp drops DRAM$" `Quick test_psp_ideal_drops_dram_cache;
          Alcotest.test_case "fig15 stages" `Slow test_fig15_stage_ordering;
          Alcotest.test_case "binaries differ" `Slow test_scheme_binaries_differ;
        ] );
    ]
