(* End-to-end validation of the recovery protocol (Section VII):
   crash injection at many points, undo-log revert, recovery-slice
   execution, resumption, NVM-state equality — including a negative test
   showing the harness actually detects corruption. *)

open Cwsp_compiler

let compiled_of name =
  Cwsp_core.Api.compiled (Cwsp_workloads.Registry.find_exn name) Pipeline.cwsp

let sweep name ~points =
  let compiled = compiled_of name in
  let tr = Cwsp_core.Api.trace (Cwsp_workloads.Registry.find_exn name) Pipeline.cwsp in
  let total = Cwsp_interp.Trace.length tr in
  let failures = ref [] in
  for i = 0 to points - 1 do
    let crash_at = 1 + (i * (total - 2) / points) in
    match
      Cwsp_recovery.Harness.validate ~seed:(9000 + i) ~crash_at compiled
    with
    | Ok _ -> ()
    | Error e -> failures := Printf.sprintf "@%d: %s" crash_at e :: !failures
  done;
  !failures

let test_sweep name points () =
  Alcotest.(check (list string)) (name ^ " recovery clean") [] (sweep name ~points)

(* early crashes: the program-start and prologue paths *)
let test_early_crashes () =
  let compiled = compiled_of "bzip2" in
  for crash_at = 1 to 40 do
    match Cwsp_recovery.Harness.validate ~seed:crash_at ~crash_at compiled with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "crash@%d: %s" crash_at e
  done

(* repeated seeds vary the persisted subsets at one crash point *)
let test_seed_variation () =
  let compiled = compiled_of "radix" in
  for seed = 0 to 30 do
    match Cwsp_recovery.Harness.validate ~seed ~crash_at:20_000 compiled with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done

(* recovery re-executes only a bounded window of instructions *)
let test_reexecution_bounded () =
  let compiled = compiled_of "water-ns" in
  match Cwsp_recovery.Harness.validate ~seed:5 ~crash_at:30_000 compiled with
  | Ok r ->
    Alcotest.(check bool) "some registers restored" true (r.restored_registers >= 0);
    Alcotest.(check bool) "recovery region near crash" true
      (r.recovery_region > 0)
  | Error e -> Alcotest.fail e

(* NEGATIVE: corrupt one recovery slice; the harness must detect the
   resulting inconsistency for some crash point. This shows the sweep
   above is a real check, not a tautology. *)
let test_corrupted_slice_detected () =
  let compiled = compiled_of "bzip2" in
  (* corrupt every non-empty slice: claim each live-in register is 0xBAD *)
  let corrupted =
    {
      compiled with
      Pipeline.slices =
        Array.map
          (fun slice ->
            List.map (fun (r, _) -> (r, Cwsp_ckpt.Slice.EImm 0xBAD)) slice)
          compiled.Pipeline.slices;
    }
  in
  let tr = Cwsp_core.Api.trace (Cwsp_workloads.Registry.find_exn "bzip2") Pipeline.cwsp in
  let total = Cwsp_interp.Trace.length tr in
  let detected = ref false in
  (try
     for i = 1 to 50 do
       let crash_at = 1 + (i * (total - 2) / 50) in
       match
         Cwsp_recovery.Harness.validate ~seed:i ~crash_at corrupted
       with
       | Ok _ -> ()
       | Error _ ->
         detected := true;
         raise Exit
     done
   with
  | Exit -> ()
  | _ ->
    (* corrupted registers may also trap (bad addresses, stack overflow)
       or hang the re-execution; either way the corruption did not
       silently pass *)
    detected := true);
  Alcotest.(check bool) "corruption detected" true !detected

(* the poison scheme itself: registers not restored by the slice must be
   genuinely dead; stress on the pointer-heavy allocator workload *)
let test_allocator_workload_sweep () =
  Alcotest.(check (list string)) "allocator-heavy recovery clean" []
    (sweep "c" ~points:25)

(* Exactly-once device I/O (Section VIII): a program that emits output
   inside its hot loop; across any crash, released-prefix + regenerated
   output must equal the failure-free stream — validated by the harness
   for every crash point. *)
let test_io_exactly_once () =
  let b = Cwsp_ir.Builder.program () in
  Cwsp_runtime.Libc.add b;
  Cwsp_ir.Builder.global b "iobuf" ~size:512 ();
  Cwsp_ir.Builder.func b "main" ~nparams:0 (fun fb ->
      let open Cwsp_ir.Builder in
      let g = la fb "iobuf" in
      let _ =
        loop fb ~from:(Imm 0) ~below:(Imm 60) (fun i ->
            let v = load fb (bin fb Add (Reg g) (Reg (bin fb Shl (Reg (bin fb Rem (Reg i) (Imm 64)) ) (Imm 3)))) 0 in
            let w = bin fb Add (Reg v) (Reg i) in
            store fb (bin fb Add (Reg g) (Reg (bin fb Shl (Reg (bin fb Rem (Reg i) (Imm 64))) (Imm 3)))) 0 (Reg w);
            (* device write every iteration *)
            call_void fb "__out" [ Reg w ])
      in
      ret fb None);
  Cwsp_ir.Builder.set_main b "main";
  let prog = Cwsp_ir.Builder.finish b in
  let compiled = Pipeline.compile ~config:Pipeline.cwsp prog in
  let _, tr = Cwsp_interp.Machine.trace_of_program compiled.prog in
  let total = Cwsp_interp.Trace.length tr in
  (* crash at every instruction: the harness checks both NVM state and
     the exactly-once I/O property *)
  let failures = ref [] in
  for crash_at = 1 to total - 2 do
    match Cwsp_recovery.Harness.validate ~seed:crash_at ~crash_at compiled with
    | Ok _ -> ()
    | Error e ->
      if List.length !failures < 3 then
        failures := Printf.sprintf "@%d: %s" crash_at e :: !failures
  done;
  Alcotest.(check (list string)) "I/O exactly-once at every crash point" []
    !failures

(* Crash during recovery: the machine loses power again while
   re-executing after a first failure. Recovery must compose. *)
let test_double_crash () =
  let compiled = compiled_of "bzip2" in
  let tr = Cwsp_core.Api.trace (Cwsp_workloads.Registry.find_exn "bzip2") Pipeline.cwsp in
  let total = Cwsp_interp.Trace.length tr in
  for i = 0 to 19 do
    let c1 = 1 + (i * (total - 2) / 20) in
    (* second failure shortly after resumption — inside or just past the
       re-executed region *)
    List.iter
      (fun c2 ->
        match
          Cwsp_recovery.Harness.validate_chain ~seed:(300 + i)
            ~crash_points:[ c1; c2 ] compiled
        with
        | Ok crashes ->
          Alcotest.(check bool) "at least one crash" true (crashes >= 1)
        | Error e -> Alcotest.failf "c1=%d c2=%d: %s" c1 c2 e)
      [ 3; 17; 120 ]
  done

let test_triple_crash () =
  let compiled = compiled_of "radix" in
  for seed = 0 to 9 do
    match
      Cwsp_recovery.Harness.validate_chain ~seed
        ~crash_points:[ 10_000 + (seed * 1500); 40; 40 ] compiled
    with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done

(* ---- MC undo-log arrays (Section V-B2) ---- *)

(* The Fig. 10(c) hazard: two speculative regions store to the same
   address. With append-only per-region logs, reverse-chronological
   revert restores the value the oldest unpersisted region must read. *)
let test_mc_logs_fig10c () =
  let logs = Cwsp_recovery.Mc_logs.create ~n_mcs:2 in
  let mem = Cwsp_interp.Memory.create () in
  let addr = 0x2000 in
  (* Rg0 (non-speculative) wrote 100 earlier; NVM holds it *)
  Cwsp_interp.Memory.write mem addr 100;
  (* speculative Rg1 stores 200 (logs old=100), Rg2 stores 300 (logs old=200) *)
  Cwsp_recovery.Mc_logs.log logs ~region:1 ~addr ~old:100 ~value:200;
  Cwsp_interp.Memory.write mem addr 200;
  Cwsp_recovery.Mc_logs.log logs ~region:2 ~addr ~old:200 ~value:300;
  Cwsp_interp.Memory.write mem addr 300;
  (* power failure while Rg0 is the oldest unpersisted region *)
  Cwsp_recovery.Mc_logs.revert_speculative logs ~oldest_unpersisted:0
    ~apply:(fun a old -> Cwsp_interp.Memory.write mem a old);
  Alcotest.(check int) "ld in Rg0 re-reads 100, not 200" 100
    (Cwsp_interp.Memory.read mem addr)

let test_mc_logs_deallocate () =
  let logs = Cwsp_recovery.Mc_logs.create ~n_mcs:2 in
  Cwsp_recovery.Mc_logs.log logs ~region:5 ~addr:0x100 ~old:1 ~value:11;
  Cwsp_recovery.Mc_logs.log logs ~region:5 ~addr:0x200 ~old:2 ~value:22;
  Cwsp_recovery.Mc_logs.log logs ~region:6 ~addr:0x300 ~old:3 ~value:33;
  Alcotest.(check int) "three live" 3 (Cwsp_recovery.Mc_logs.live_entries logs);
  Cwsp_recovery.Mc_logs.deallocate logs ~region:5;
  Alcotest.(check int) "region 5 reclaimed" 1
    (Cwsp_recovery.Mc_logs.live_entries logs);
  Alcotest.(check int) "region 6 intact" 1
    (List.length (Cwsp_recovery.Mc_logs.region_entries logs ~region:6))

let test_mc_logs_revert_excludes_oldest () =
  let logs = Cwsp_recovery.Mc_logs.create ~n_mcs:2 in
  let mem = Cwsp_interp.Memory.create () in
  Cwsp_interp.Memory.write mem 0x100 77 (* R_o's own speculative write *);
  Cwsp_recovery.Mc_logs.log logs ~region:3 ~addr:0x100 ~old:7 ~value:77;
  Cwsp_interp.Memory.write mem 0x200 88;
  Cwsp_recovery.Mc_logs.log logs ~region:4 ~addr:0x200 ~old:8 ~value:88;
  Cwsp_recovery.Mc_logs.revert_speculative logs ~oldest_unpersisted:3
    ~apply:(fun a old -> Cwsp_interp.Memory.write mem a old);
  Alcotest.(check int) "R_o's data store kept (idempotence handles it)" 77
    (Cwsp_interp.Memory.read mem 0x100);
  Alcotest.(check int) "younger region reverted" 8
    (Cwsp_interp.Memory.read mem 0x200)

(* REGRESSION: the recovery-point draw used to be bounded by the window
   instead of the tracked-region count. Right after a boundary step the
   list legitimately holds window+1 regions, so at window=1 the protocol
   could never roll back to the just-closed region. Post-fix, a
   contiguous crash sweep at window=1 must both stay clean and actually
   revert a region at some crash point. *)
let test_window1_rollback_regression () =
  let compiled = compiled_of "lu-ncg" in
  let saw_rollback = ref false in
  for i = 0 to 149 do
    let crash_at = 5_000 + i in
    match
      Cwsp_recovery.Harness.validate ~window:1 ~seed:(800 + i) ~crash_at
        compiled
    with
    | Ok r -> if r.reverted_regions >= 1 then saw_rollback := true
    | Error e -> Alcotest.failf "window=1 crash@%d: %s" crash_at e
  done;
  Alcotest.(check bool) "window=1 selects the just-closed region" true
    !saw_rollback

(* ---- hardened log records: checksums, LSNs, count headers ---- *)

let hardened_logs () =
  let logs = Cwsp_recovery.Mc_logs.create ~n_mcs:2 in
  (* addresses span both MCs (256-byte interleave) *)
  List.iter
    (fun (addr, old, value) ->
      Cwsp_recovery.Mc_logs.log logs ~region:9 ~addr ~old ~value)
    [ (0x100, 1, 2); (0x208, 3, 4); (0x110, 5, 6); (0x218, 7, 8); (0x120, 9, 10) ];
  logs

let test_mc_logs_audit_clean () =
  let au = Cwsp_recovery.Mc_logs.audit_region (hardened_logs ()) ~region:9 in
  Alcotest.(check (list string)) "no structural damage" []
    au.Cwsp_recovery.Mc_logs.au_structural;
  Alcotest.(check int) "no bad records" 0
    (List.length au.Cwsp_recovery.Mc_logs.au_bad)

let test_mc_logs_audit_corruption () =
  let rng = Cwsp_util.Rng.create 4 in
  let detected = ref 0 in
  (* the injector picks a random record/field each time; every single
     corruption must be visible to the audit *)
  for trial = 0 to 19 do
    let logs = hardened_logs () in
    match Cwsp_recovery.Mc_logs.inject_corrupt logs rng ~regions:[ 9 ] with
    | None -> Alcotest.failf "trial %d: nothing to corrupt" trial
    | Some _ ->
      let au = Cwsp_recovery.Mc_logs.audit_region logs ~region:9 in
      if au.Cwsp_recovery.Mc_logs.au_structural <> [] || au.au_bad <> [] then
        incr detected
  done;
  Alcotest.(check int) "every corruption detected" 20 !detected

let test_mc_logs_audit_drop_tail () =
  let rng = Cwsp_util.Rng.create 11 in
  let logs = hardened_logs () in
  (match Cwsp_recovery.Mc_logs.inject_drop_tail logs rng ~regions:[ 9 ] with
  | None -> Alcotest.fail "nothing to drop"
  | Some _ -> ());
  let au = Cwsp_recovery.Mc_logs.audit_region logs ~region:9 in
  Alcotest.(check bool) "count header exposes the dropped tail" true
    (au.Cwsp_recovery.Mc_logs.au_structural <> [])

let test_mc_logs_copy_independent () =
  let logs = hardened_logs () in
  let snap = Cwsp_recovery.Mc_logs.copy logs in
  let rng = Cwsp_util.Rng.create 3 in
  ignore (Cwsp_recovery.Mc_logs.inject_corrupt logs rng ~regions:[ 9 ]);
  let au = Cwsp_recovery.Mc_logs.audit_region snap ~region:9 in
  Alcotest.(check (list string)) "snapshot untouched by later corruption" []
    au.Cwsp_recovery.Mc_logs.au_structural;
  Alcotest.(check int) "snapshot records still verify" 0
    (List.length au.Cwsp_recovery.Mc_logs.au_bad)

(* ---- adversarial fault model ---- *)

let fault_compiled = lazy (compiled_of "lu-ncg")
let fault_golden =
  lazy (Cwsp_recovery.Harness.golden_of (Lazy.force fault_compiled))

(* NEGATIVE corpus: with hardening disabled (blind protocol: trust every
   byte, legacy truncate-first ordering), each fault class must produce
   an observable divergence from the failure-free run for some seed.
   This proves the campaign's oracle sees exactly the damage the
   hardened audits catch — the positive results are not a tautology. *)
let test_blind_diverges cls () =
  let compiled = Lazy.force fault_compiled in
  let golden = Lazy.force fault_golden in
  let diverged = ref false in
  (try
     for seed = 0 to 29 do
       let crash_at = 3_000 + (seed * 1_100) in
       match
         Cwsp_recovery.Harness.validate_fault ~golden ~hardened:false
           ~fault:cls ~seed ~crash_at compiled
       with
       | Ok r ->
         if r.fr_injected <> None && not r.fr_state_ok then begin
           diverged := true;
           raise Exit
         end
       | Error _ ->
         (* the blind protocol wedged outright — also a divergence *)
         diverged := true;
         raise Exit
     done
   with Exit -> ());
  Alcotest.(check bool)
    (Cwsp_recovery.Fault.name cls ^ " breaks the blind protocol")
    true !diverged

(* POSITIVE: the hardened protocol over the same fault classes — a small
   deterministic campaign must inject real faults, detect them, and
   never let one escape to a wrong committed state. *)
let test_hardened_campaign () =
  let targets =
    [ Cwsp_recovery.Campaign.target ~name:"lu-ncg" (Lazy.force fault_compiled) ]
  in
  let report =
    Cwsp_recovery.Campaign.run ~window:8 ~hardened:true ~master_seed:77
      ~seeds:4 ~classes:Cwsp_recovery.Fault.all targets
  in
  Alcotest.(check (list string)) "zero escaped faults" []
    (List.map
       (fun (c : Cwsp_recovery.Campaign.cell) -> c.c_detail)
       (Cwsp_recovery.Campaign.escaped report));
  let injected =
    List.length
      (List.filter
         (fun (c : Cwsp_recovery.Campaign.cell) -> c.c_injected)
         report.r_cells)
  and detected =
    List.length
      (List.filter
         (fun (c : Cwsp_recovery.Campaign.cell) -> c.c_detected)
         report.r_cells)
  in
  Alcotest.(check bool) "faults were actually injected" true (injected >= 10);
  Alcotest.(check bool) "hardening audits fired" true (detected >= 1);
  (* determinism: the same matrix again is byte-identical *)
  let report2 =
    Cwsp_recovery.Campaign.run ~window:8 ~hardened:true ~master_seed:77
      ~seeds:4 ~classes:Cwsp_recovery.Fault.all targets
  in
  Alcotest.(check string) "campaign is deterministic"
    (Cwsp_recovery.Campaign.to_json report)
    (Cwsp_recovery.Campaign.to_json report2)

(* Crash during recovery: the staged plan is swept — power is cut after
   every prefix of recovery steps, recovery restarts from the surviving
   image, and the final state must still match. Slice instructions must
   be among the swept crash sites. *)
let test_recovery_crash_sweep () =
  let compiled = Lazy.force fault_compiled in
  let golden = Lazy.force fault_golden in
  let points = ref 0 and slice_points = ref 0 in
  for seed = 0 to 7 do
    let crash_at = 4_000 + (seed * 4_000) in
    match
      Cwsp_recovery.Harness.validate_fault ~golden ~hardened:true
        ~fault:Cwsp_recovery.Fault.Recovery_crash ~seed ~crash_at compiled
    with
    | Ok r ->
      Alcotest.(check int)
        (Printf.sprintf "seed %d: no sweep failures" seed)
        0 r.fr_sweep_failures;
      Alcotest.(check bool) "final state matches" true r.fr_state_ok;
      points := !points + r.fr_sweep_points;
      slice_points := !slice_points + r.fr_sweep_slice_points
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done;
  Alcotest.(check bool) "swept mid-recovery crash sites" true (!points > 0);
  Alcotest.(check bool) "swept recovery-slice instructions" true
    (!slice_points > 0)

let () =
  Alcotest.run "recovery"
    [
      ( "sweeps",
        [
          Alcotest.test_case "bzip2" `Slow (test_sweep "bzip2" 25);
          Alcotest.test_case "radix" `Slow (test_sweep "radix" 25);
          Alcotest.test_case "tatp" `Slow (test_sweep "tatp" 25);
          Alcotest.test_case "xz" `Slow (test_sweep "xz" 25);
          Alcotest.test_case "water-sp" `Slow (test_sweep "water-sp" 25);
          Alcotest.test_case "allocator (c)" `Slow test_allocator_workload_sweep;
          Alcotest.test_case "I/O exactly-once" `Slow test_io_exactly_once;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "early crashes" `Slow test_early_crashes;
          Alcotest.test_case "seed variation" `Slow test_seed_variation;
          Alcotest.test_case "bounded re-execution" `Quick test_reexecution_bounded;
          Alcotest.test_case "corruption detected" `Slow test_corrupted_slice_detected;
          Alcotest.test_case "double crash" `Slow test_double_crash;
          Alcotest.test_case "triple crash" `Slow test_triple_crash;
        ] );
      ( "mc-logs",
        [
          Alcotest.test_case "fig10c overwrite avoidance" `Quick test_mc_logs_fig10c;
          Alcotest.test_case "deallocation" `Quick test_mc_logs_deallocate;
          Alcotest.test_case "oldest excluded" `Quick test_mc_logs_revert_excludes_oldest;
          Alcotest.test_case "audit clean" `Quick test_mc_logs_audit_clean;
          Alcotest.test_case "audit sees corruption" `Quick test_mc_logs_audit_corruption;
          Alcotest.test_case "audit sees dropped tail" `Quick test_mc_logs_audit_drop_tail;
          Alcotest.test_case "copy is independent" `Quick test_mc_logs_copy_independent;
        ] );
      ( "faults",
        [
          Alcotest.test_case "window=1 rollback regression" `Slow
            test_window1_rollback_regression;
          Alcotest.test_case "blind: torn persist diverges" `Slow
            (test_blind_diverges Cwsp_recovery.Fault.Torn_persist);
          Alcotest.test_case "blind: dropped tail diverges" `Slow
            (test_blind_diverges Cwsp_recovery.Fault.Dropped_tail);
          Alcotest.test_case "blind: log corruption diverges" `Slow
            (test_blind_diverges Cwsp_recovery.Fault.Log_corruption);
          Alcotest.test_case "blind: ckpt bit flip diverges" `Slow
            (test_blind_diverges Cwsp_recovery.Fault.Ckpt_bitflip);
          Alcotest.test_case "blind: recovery crash diverges" `Slow
            (test_blind_diverges Cwsp_recovery.Fault.Recovery_crash);
          Alcotest.test_case "hardened campaign: zero escapes" `Slow
            test_hardened_campaign;
          Alcotest.test_case "recovery-crash sweep" `Slow
            test_recovery_crash_sweep;
        ] );
    ]
