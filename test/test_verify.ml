(* Tests for the static crash-consistency verifier.

   Positive direction: real pipeline output — registry workloads and a
   hand-built program under every instrumented configuration — verifies
   with zero errors.

   Negative direction: a corpus of hand-corrupted compiled programs, each
   damaging exactly one invariant the compiler is supposed to establish
   (dropped boundaries, stripped checkpoints, doctored slices, forged
   boundary ids, stray checkpoints, stores into the checkpoint area), and
   each required to trigger its expected diagnostic rule. *)

open Cwsp_ir
open Cwsp_compiler
open Cwsp_ckpt

(* A program exercising every boundary-placement rule: an antidependence
   (load/store of the same word of [g]), a fence, a loop, and calls. *)
let base_prog () =
  let b = Builder.program () in
  Builder.global b "g" ~size:64 ();
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let base = la fb "g" in
      let v = load fb base 0 in
      let w = add fb (Reg v) (Imm 1) in
      store fb base 0 (Reg w);
      fence fb;
      let acc = imm fb 0 in
      let _ =
        loop fb ~from:(Types.Imm 0) ~below:(Types.Imm 4) (fun i ->
            emit fb (Types.Bin (Types.Add, acc, Types.Reg acc, Types.Reg i)))
      in
      call_void fb "__out" [ Reg acc ];
      call_void fb "__out" [ Reg v ];
      ret fb None);
  Builder.set_main b "main";
  Builder.finish b

let compile ?(config = Pipeline.cwsp) () = Pipeline.compile ~config (base_prog ())

let main_fn (c : Pipeline.compiled) = Prog.func_exn c.prog "main"

(* ---- corruption plumbing ---- *)

let with_main_blocks f (c : Pipeline.compiled) =
  let fn = main_fn c in
  { c with Pipeline.prog = Prog.with_func c.prog { fn with Prog.blocks = f fn.blocks } }

let with_slice id f (c : Pipeline.compiled) =
  let slices = Array.copy c.Pipeline.slices in
  slices.(id) <- f slices.(id);
  { c with Pipeline.slices = slices }

let map_instrs f =
  with_main_blocks
    (Array.map (fun (blk : Prog.block) -> { blk with instrs = List.map f blk.instrs }))

let drop_at bi ii =
  with_main_blocks
    (Array.mapi (fun i (blk : Prog.block) ->
         if i <> bi then blk
         else { blk with instrs = List.filteri (fun j _ -> j <> ii) blk.instrs }))

(* first instruction position satisfying [p] *)
let find_instr c p =
  let res = ref None in
  Prog.iter_instrs
    (fun bi ii ins -> if !res = None && p ins then res := Some (bi, ii))
    (main_fn c);
  match !res with
  | Some x -> x
  | None -> Alcotest.fail "test_verify: instruction not found"

(* first boundary of block [bi] at or after [ii] *)
let boundary_after c bi ii =
  let res = ref None in
  Prog.iter_instrs
    (fun bi' ii' ins ->
      match ins with
      | Types.Boundary id when bi' = bi && ii' >= ii && !res = None ->
        res := Some (ii', id)
      | _ -> ())
    (main_fn c);
  match !res with
  | Some x -> x
  | None -> Alcotest.fail "test_verify: boundary not found"

(* last boundary of block [bi] strictly before [ii] *)
let boundary_before c bi ii =
  let res = ref None in
  Prog.iter_instrs
    (fun bi' ii' ins ->
      match ins with
      | Types.Boundary id when bi' = bi && ii' < ii -> res := Some (ii', id)
      | _ -> ())
    (main_fn c);
  match !res with
  | Some x -> x
  | None -> Alcotest.fail "test_verify: boundary not found"

(* boundaries of main in traversal order, as (bi, ii, id) *)
let boundaries c =
  Prog.fold_instrs
    (fun acc bi ii ins ->
      match ins with Types.Boundary id -> (bi, ii, id) :: acc | _ -> acc)
    [] (main_fn c)
  |> List.rev

(* ---- assertions ---- *)

let has_rule rule diags =
  List.exists (fun (d : Cwsp_verify.Diag.t) -> d.rule = rule) diags

let expect_rule name rule corrupted =
  let diags = Cwsp_verify.Verify.run corrupted in
  if not (has_rule rule diags) then
    Alcotest.failf "%s: expected rule %s, verifier said:\n%s" name
      (Cwsp_verify.Diag.rule_name rule)
      (match diags with [] -> "(clean)" | _ -> Cwsp_verify.Verify.report diags)

let expect_clean name compiled =
  match Cwsp_verify.Verify.(errors (run compiled)) with
  | [] -> ()
  | errs -> Alcotest.failf "%s: unexpected errors:\n%s" name (Cwsp_verify.Verify.report errs)

(* ---- positive: real pipeline output verifies clean ---- *)

let test_base_program_clean () =
  List.iter
    (fun config ->
      expect_clean (Pipeline.config_name config) (compile ~config ()))
    Pipeline.[ cwsp; cwsp_no_prune; regions_only; baseline ]

let test_workloads_clean () =
  List.iter
    (fun name ->
      let w = Cwsp_workloads.Registry.find_exn name in
      List.iter
        (fun config ->
          expect_clean
            (name ^ "/" ^ Pipeline.config_name config)
            (Pipeline.compile ~config (w.build ~scale:1)))
        Pipeline.[ cwsp; cwsp_no_prune; regions_only ])
    [ "radix"; "tatp"; "rb"; "bzip2" ]

(* ---- negative: each corruption triggers its rule ---- *)

(* Drop the boundary phase 2 inserted between the aliasing load and store. *)
let test_corrupt_antidep () =
  let c = compile () in
  let lbi, lii = find_instr c (function Types.Load _ -> true | _ -> false) in
  let bii, _ = boundary_after c lbi lii in
  expect_rule "antidep" Cwsp_verify.Diag.Antidep (drop_at lbi bii c)

let test_corrupt_entry_boundary () =
  let c = compile () in
  let bi, ii = find_instr c (function Types.Boundary _ -> true | _ -> false) in
  Alcotest.(check int) "entry boundary opens block 0" 0 bi;
  expect_rule "entry" Cwsp_verify.Diag.Entry_boundary (drop_at bi ii c)

let test_corrupt_loop_boundary () =
  let c = compile () in
  let headers = Cwsp_analysis.Loops.headers (main_fn c) in
  let hdr =
    match Array.to_list (Array.mapi (fun i h -> (i, h)) headers)
          |> List.find_opt (fun (_, h) -> h)
    with
    | Some (i, _) -> i
    | None -> Alcotest.fail "no loop header"
  in
  let ii, _ = boundary_after c hdr 0 in
  expect_rule "loop" Cwsp_verify.Diag.Loop_boundary (drop_at hdr ii c)

let test_corrupt_sync_boundary () =
  let c = compile () in
  let fbi, fii = find_instr c (function Types.Fence -> true | _ -> false) in
  let ii, _ = boundary_before c fbi fii in
  expect_rule "sync" Cwsp_verify.Diag.Sync_boundary (drop_at fbi ii c)

let test_corrupt_call_boundary () =
  let c = compile () in
  let cbi, cii =
    find_instr c (function Types.Call ("__out", _, _) -> true | _ -> false)
  in
  let ii, _ = boundary_after c cbi cii in
  expect_rule "call" Cwsp_verify.Diag.Call_boundary (drop_at cbi ii c)

(* Remove the slice entry of a register that is live into a region. *)
let test_corrupt_live_in_uncovered () =
  let c = compile () in
  let live = Cwsp_analysis.Liveness.compute (main_fn c) in
  let target =
    List.find_map
      (fun (bi, ii, id) ->
        match
          Cwsp_analysis.Liveness.(IntSet.choose_opt (live_before live ~bi ~ii))
        with
        | Some r when List.mem_assoc r c.Pipeline.slices.(id) -> Some (id, r)
        | _ -> None)
      (boundaries c)
  in
  match target with
  | None -> Alcotest.fail "no boundary with live-ins"
  | Some (id, r) ->
    expect_rule "live-in" Cwsp_verify.Diag.Live_in_uncovered
      (with_slice id (List.remove_assoc r) c)

(* Strip every checkpoint but keep the slices that read their slots. *)
let test_corrupt_strip_ckpts () =
  let c = compile ~config:Pipeline.cwsp_no_prune () in
  let any_slot =
    Array.exists
      (List.exists (fun (_, e) -> Slice.slot_refs e <> []))
      c.Pipeline.slices
  in
  Alcotest.(check bool) "some slice reads a slot" true any_slot;
  let stripped =
    with_main_blocks
      (Array.map (fun (blk : Prog.block) ->
           {
             blk with
             instrs =
               List.filter
                 (function Types.Ckpt _ -> false | _ -> true)
                 blk.instrs;
           }))
      c
  in
  expect_rule "stripped ckpts" Cwsp_verify.Diag.Slot_not_checkpointed stripped

(* Make the entry region's slice read the slot of a register that is only
   defined (and checkpointed) later. *)
let test_corrupt_slot_ref_undefined () =
  let c = compile ~config:Pipeline.cwsp_no_prune () in
  let _, lii = find_instr c (function Types.Load _ -> true | _ -> false) in
  let v =
    match (main_fn c).blocks.(0).instrs |> List.filteri (fun j _ -> j = lii) with
    | [ Types.Load (dst, _, _) ] -> dst
    | _ -> Alcotest.fail "load not in entry block"
  in
  let _, _, entry_id = List.hd (boundaries c) in
  expect_rule "slot-ref" Cwsp_verify.Diag.Slot_ref_undefined
    (with_slice entry_id (fun _ -> [ (0, Slice.ESlot v) ]) c)

let test_corrupt_slice_unknown_global () =
  let c = compile () in
  let id =
    match
      List.find_opt (fun (_, _, id) -> c.Pipeline.slices.(id) <> []) (boundaries c)
    with
    | Some (_, _, id) -> id
    | None -> Alcotest.fail "no nonempty slice"
  in
  expect_rule "unknown global" Cwsp_verify.Diag.Slice_unknown_global
    (with_slice id
       (fun slice ->
         match slice with
         | (r, _) :: rest -> (r, Slice.EAddr "no_such_global") :: rest
         | [] -> assert false)
       c)

let test_corrupt_duplicate_boundary_id () =
  let c = compile () in
  match boundaries c with
  | (_, _, id0) :: (_, _, id1) :: _ ->
    expect_rule "duplicate id" Cwsp_verify.Diag.Duplicate_boundary_id
      (map_instrs
         (function
           | Types.Boundary id when id = id1 -> Types.Boundary id0
           | ins -> ins)
         c)
  | _ -> Alcotest.fail "need two boundaries"

let test_corrupt_nonmonotone_boundary_id () =
  let c = compile () in
  match boundaries c with
  | (_, _, id0) :: (_, _, id1) :: _ ->
    expect_rule "swapped ids" Cwsp_verify.Diag.Nonmonotone_boundary_id
      (map_instrs
         (function
           | Types.Boundary id when id = id0 -> Types.Boundary id1
           | Types.Boundary id when id = id1 -> Types.Boundary id0
           | ins -> ins)
         c)
  | _ -> Alcotest.fail "need two boundaries"

let test_corrupt_boundary_id_range () =
  let c = compile () in
  let _, _, id0 = List.hd (boundaries c) in
  expect_rule "id out of range" Cwsp_verify.Diag.Boundary_id_range
    (map_instrs
       (function
         | Types.Boundary id when id = id0 ->
           Types.Boundary (Array.length c.Pipeline.slices + 7)
         | ins -> ins)
       c)

(* A checkpoint with no boundary behind it checkpoints for nobody. *)
let test_corrupt_ckpt_placement () =
  let c = compile () in
  expect_rule "stray ckpt" Cwsp_verify.Diag.Ckpt_placement
    (with_main_blocks
       (Array.mapi (fun i (blk : Prog.block) ->
            if i <> 0 then blk
            else { blk with instrs = blk.instrs @ [ Types.Ckpt 0 ] }))
       c)

(* A user store aimed at the hardware checkpoint slot area. *)
let test_ckpt_area_store () =
  let b = Builder.program () in
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let p = imm fb 0x2000_0000 in
      store fb p 0 (Imm 7);
      ret fb None);
  Builder.set_main b "main";
  let compiled =
    Pipeline.compile ~config:Pipeline.baseline (Builder.finish b)
  in
  expect_rule "ckpt area store" Cwsp_verify.Diag.Ckpt_area_store compiled

let () =
  Alcotest.run "verify"
    [
      ( "positive",
        [
          Alcotest.test_case "base program clean" `Quick test_base_program_clean;
          Alcotest.test_case "workloads clean" `Quick test_workloads_clean;
        ] );
      ( "corrupted",
        [
          Alcotest.test_case "antidep" `Quick test_corrupt_antidep;
          Alcotest.test_case "entry boundary" `Quick test_corrupt_entry_boundary;
          Alcotest.test_case "loop boundary" `Quick test_corrupt_loop_boundary;
          Alcotest.test_case "sync boundary" `Quick test_corrupt_sync_boundary;
          Alcotest.test_case "call boundary" `Quick test_corrupt_call_boundary;
          Alcotest.test_case "live-in uncovered" `Quick
            test_corrupt_live_in_uncovered;
          Alcotest.test_case "stripped checkpoints" `Quick
            test_corrupt_strip_ckpts;
          Alcotest.test_case "slot ref undefined" `Quick
            test_corrupt_slot_ref_undefined;
          Alcotest.test_case "slice unknown global" `Quick
            test_corrupt_slice_unknown_global;
          Alcotest.test_case "duplicate boundary id" `Quick
            test_corrupt_duplicate_boundary_id;
          Alcotest.test_case "nonmonotone boundary id" `Quick
            test_corrupt_nonmonotone_boundary_id;
          Alcotest.test_case "boundary id range" `Quick
            test_corrupt_boundary_id_range;
          Alcotest.test_case "ckpt placement" `Quick test_corrupt_ckpt_placement;
          Alcotest.test_case "ckpt area store" `Quick test_ckpt_area_store;
        ] );
    ]
