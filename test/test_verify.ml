(* Tests for the static crash-consistency verifier.

   Positive direction: real pipeline output — registry workloads and a
   hand-built program under every instrumented configuration — verifies
   with zero errors.

   Negative direction: a corpus of hand-corrupted compiled programs, each
   damaging exactly one invariant the compiler is supposed to establish
   (dropped boundaries, stripped checkpoints, doctored slices, forged
   boundary ids, stray checkpoints, stores into the checkpoint area), and
   each required to trigger its expected diagnostic rule. *)

open Cwsp_ir
open Cwsp_compiler
open Cwsp_ckpt

(* A program exercising every boundary-placement rule: an antidependence
   (load/store of the same word of [g]), a fence, a loop, and calls. *)
let base_prog () =
  let b = Builder.program () in
  Builder.global b "g" ~size:64 ();
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let base = la fb "g" in
      let v = load fb base 0 in
      let w = add fb (Reg v) (Imm 1) in
      store fb base 0 (Reg w);
      fence fb;
      let acc = imm fb 0 in
      let _ =
        loop fb ~from:(Types.Imm 0) ~below:(Types.Imm 4) (fun i ->
            emit fb (Types.Bin (Types.Add, acc, Types.Reg acc, Types.Reg i)))
      in
      call_void fb "__out" [ Reg acc ];
      call_void fb "__out" [ Reg v ];
      ret fb None);
  Builder.set_main b "main";
  Builder.finish b

let compile ?(config = Pipeline.cwsp) () = Pipeline.compile ~config (base_prog ())

let main_fn (c : Pipeline.compiled) = Prog.func_exn c.prog "main"

(* ---- corruption plumbing ---- *)

let with_main_blocks f (c : Pipeline.compiled) =
  let fn = main_fn c in
  { c with Pipeline.prog = Prog.with_func c.prog { fn with Prog.blocks = f fn.blocks } }

let with_slice id f (c : Pipeline.compiled) =
  let slices = Array.copy c.Pipeline.slices in
  slices.(id) <- f slices.(id);
  { c with Pipeline.slices = slices }

let map_instrs f =
  with_main_blocks
    (Array.map (fun (blk : Prog.block) -> { blk with instrs = List.map f blk.instrs }))

let drop_at bi ii =
  with_main_blocks
    (Array.mapi (fun i (blk : Prog.block) ->
         if i <> bi then blk
         else { blk with instrs = List.filteri (fun j _ -> j <> ii) blk.instrs }))

(* first instruction position satisfying [p] *)
let find_instr c p =
  let res = ref None in
  Prog.iter_instrs
    (fun bi ii ins -> if !res = None && p ins then res := Some (bi, ii))
    (main_fn c);
  match !res with
  | Some x -> x
  | None -> Alcotest.fail "test_verify: instruction not found"

(* first boundary of block [bi] at or after [ii] *)
let boundary_after c bi ii =
  let res = ref None in
  Prog.iter_instrs
    (fun bi' ii' ins ->
      match ins with
      | Types.Boundary id when bi' = bi && ii' >= ii && !res = None ->
        res := Some (ii', id)
      | _ -> ())
    (main_fn c);
  match !res with
  | Some x -> x
  | None -> Alcotest.fail "test_verify: boundary not found"

(* last boundary of block [bi] strictly before [ii] *)
let boundary_before c bi ii =
  let res = ref None in
  Prog.iter_instrs
    (fun bi' ii' ins ->
      match ins with
      | Types.Boundary id when bi' = bi && ii' < ii -> res := Some (ii', id)
      | _ -> ())
    (main_fn c);
  match !res with
  | Some x -> x
  | None -> Alcotest.fail "test_verify: boundary not found"

(* boundaries of main in traversal order, as (bi, ii, id) *)
let boundaries c =
  Prog.fold_instrs
    (fun acc bi ii ins ->
      match ins with Types.Boundary id -> (bi, ii, id) :: acc | _ -> acc)
    [] (main_fn c)
  |> List.rev

(* ---- assertions ---- *)

let has_rule rule diags =
  List.exists (fun (d : Cwsp_verify.Diag.t) -> d.rule = rule) diags

let expect_rule name rule corrupted =
  let diags = Cwsp_verify.Verify.run corrupted in
  if not (has_rule rule diags) then
    Alcotest.failf "%s: expected rule %s, verifier said:\n%s" name
      (Cwsp_verify.Diag.rule_name rule)
      (match diags with [] -> "(clean)" | _ -> Cwsp_verify.Verify.report diags)

let expect_clean name compiled =
  match Cwsp_verify.Verify.(errors (run compiled)) with
  | [] -> ()
  | errs -> Alcotest.failf "%s: unexpected errors:\n%s" name (Cwsp_verify.Verify.report errs)

(* ---- positive: real pipeline output verifies clean ---- *)

let test_base_program_clean () =
  List.iter
    (fun config ->
      expect_clean (Pipeline.config_name config) (compile ~config ()))
    Pipeline.[ cwsp; cwsp_no_prune; regions_only; baseline ]

let test_workloads_clean () =
  List.iter
    (fun name ->
      let w = Cwsp_workloads.Registry.find_exn name in
      List.iter
        (fun config ->
          expect_clean
            (name ^ "/" ^ Pipeline.config_name config)
            (Pipeline.compile ~config (w.build ~scale:1)))
        Pipeline.[ cwsp; cwsp_no_prune; regions_only ])
    [ "radix"; "tatp"; "rb"; "bzip2" ]

(* ---- negative: each corruption triggers its rule ---- *)

(* Drop the boundary phase 2 inserted between the aliasing load and store. *)
let test_corrupt_antidep () =
  let c = compile () in
  let lbi, lii = find_instr c (function Types.Load _ -> true | _ -> false) in
  let bii, _ = boundary_after c lbi lii in
  expect_rule "antidep" Cwsp_verify.Diag.Antidep (drop_at lbi bii c)

let test_corrupt_entry_boundary () =
  let c = compile () in
  let bi, ii = find_instr c (function Types.Boundary _ -> true | _ -> false) in
  Alcotest.(check int) "entry boundary opens block 0" 0 bi;
  expect_rule "entry" Cwsp_verify.Diag.Entry_boundary (drop_at bi ii c)

let test_corrupt_loop_boundary () =
  let c = compile () in
  let headers = Cwsp_analysis.Loops.headers (main_fn c) in
  let hdr =
    match Array.to_list (Array.mapi (fun i h -> (i, h)) headers)
          |> List.find_opt (fun (_, h) -> h)
    with
    | Some (i, _) -> i
    | None -> Alcotest.fail "no loop header"
  in
  let ii, _ = boundary_after c hdr 0 in
  expect_rule "loop" Cwsp_verify.Diag.Loop_boundary (drop_at hdr ii c)

let test_corrupt_sync_boundary () =
  let c = compile () in
  let fbi, fii = find_instr c (function Types.Fence -> true | _ -> false) in
  let ii, _ = boundary_before c fbi fii in
  expect_rule "sync" Cwsp_verify.Diag.Sync_boundary (drop_at fbi ii c)

let test_corrupt_call_boundary () =
  let c = compile () in
  let cbi, cii =
    find_instr c (function Types.Call ("__out", _, _) -> true | _ -> false)
  in
  let ii, _ = boundary_after c cbi cii in
  expect_rule "call" Cwsp_verify.Diag.Call_boundary (drop_at cbi ii c)

(* Remove the slice entry of a register that is live into a region. *)
let test_corrupt_live_in_uncovered () =
  let c = compile () in
  let live = Cwsp_analysis.Liveness.compute (main_fn c) in
  let target =
    List.find_map
      (fun (bi, ii, id) ->
        match
          Cwsp_analysis.Liveness.(IntSet.choose_opt (live_before live ~bi ~ii))
        with
        | Some r when List.mem_assoc r c.Pipeline.slices.(id) -> Some (id, r)
        | _ -> None)
      (boundaries c)
  in
  match target with
  | None -> Alcotest.fail "no boundary with live-ins"
  | Some (id, r) ->
    expect_rule "live-in" Cwsp_verify.Diag.Live_in_uncovered
      (with_slice id (List.remove_assoc r) c)

(* Strip every checkpoint but keep the slices that read their slots. *)
let test_corrupt_strip_ckpts () =
  let c = compile ~config:Pipeline.cwsp_no_prune () in
  let any_slot =
    Array.exists
      (List.exists (fun (_, e) -> Slice.slot_refs e <> []))
      c.Pipeline.slices
  in
  Alcotest.(check bool) "some slice reads a slot" true any_slot;
  let stripped =
    with_main_blocks
      (Array.map (fun (blk : Prog.block) ->
           {
             blk with
             instrs =
               List.filter
                 (function Types.Ckpt _ -> false | _ -> true)
                 blk.instrs;
           }))
      c
  in
  expect_rule "stripped ckpts" Cwsp_verify.Diag.Slot_not_checkpointed stripped

(* Make the entry region's slice read the slot of a register that is only
   defined (and checkpointed) later. *)
let test_corrupt_slot_ref_undefined () =
  let c = compile ~config:Pipeline.cwsp_no_prune () in
  let _, lii = find_instr c (function Types.Load _ -> true | _ -> false) in
  let v =
    match (main_fn c).blocks.(0).instrs |> List.filteri (fun j _ -> j = lii) with
    | [ Types.Load (dst, _, _) ] -> dst
    | _ -> Alcotest.fail "load not in entry block"
  in
  let _, _, entry_id = List.hd (boundaries c) in
  expect_rule "slot-ref" Cwsp_verify.Diag.Slot_ref_undefined
    (with_slice entry_id (fun _ -> [ (0, Slice.ESlot v) ]) c)

let test_corrupt_slice_unknown_global () =
  let c = compile () in
  let id =
    match
      List.find_opt (fun (_, _, id) -> c.Pipeline.slices.(id) <> []) (boundaries c)
    with
    | Some (_, _, id) -> id
    | None -> Alcotest.fail "no nonempty slice"
  in
  expect_rule "unknown global" Cwsp_verify.Diag.Slice_unknown_global
    (with_slice id
       (fun slice ->
         match slice with
         | (r, _) :: rest -> (r, Slice.EAddr "no_such_global") :: rest
         | [] -> assert false)
       c)

let test_corrupt_duplicate_boundary_id () =
  let c = compile () in
  match boundaries c with
  | (_, _, id0) :: (_, _, id1) :: _ ->
    expect_rule "duplicate id" Cwsp_verify.Diag.Duplicate_boundary_id
      (map_instrs
         (function
           | Types.Boundary id when id = id1 -> Types.Boundary id0
           | ins -> ins)
         c)
  | _ -> Alcotest.fail "need two boundaries"

let test_corrupt_nonmonotone_boundary_id () =
  let c = compile () in
  match boundaries c with
  | (_, _, id0) :: (_, _, id1) :: _ ->
    expect_rule "swapped ids" Cwsp_verify.Diag.Nonmonotone_boundary_id
      (map_instrs
         (function
           | Types.Boundary id when id = id0 -> Types.Boundary id1
           | Types.Boundary id when id = id1 -> Types.Boundary id0
           | ins -> ins)
         c)
  | _ -> Alcotest.fail "need two boundaries"

let test_corrupt_boundary_id_range () =
  let c = compile () in
  let _, _, id0 = List.hd (boundaries c) in
  expect_rule "id out of range" Cwsp_verify.Diag.Boundary_id_range
    (map_instrs
       (function
         | Types.Boundary id when id = id0 ->
           Types.Boundary (Array.length c.Pipeline.slices + 7)
         | ins -> ins)
       c)

(* A checkpoint with no boundary behind it checkpoints for nobody. *)
let test_corrupt_ckpt_placement () =
  let c = compile () in
  expect_rule "stray ckpt" Cwsp_verify.Diag.Ckpt_placement
    (with_main_blocks
       (Array.mapi (fun i (blk : Prog.block) ->
            if i <> 0 then blk
            else { blk with instrs = blk.instrs @ [ Types.Ckpt 0 ] }))
       c)

(* ---- semantic corpus: corruptions invisible to every syntactic tier ----

   Each case damages the *meaning* of a recovery slice — the restored
   value — while keeping all structural invariants intact: the slice
   still reads checkpointed, reaching slots and resolvable globals, so
   the PR-1 tiers accept the program. Only the symbolic slice checker
   ([Sem_check]) can tell the restored value no longer equals the
   register's region-entry value. Every case asserts both directions:
   the syntactic tiers alone report zero errors, and the semantic tier
   reports the expected rule. *)

(* A program whose pruner rematerializes two live-ins from older slots:
   slice entries (slot[x] add 7) and (slot[x] sub slot[z]) at the second
   boundary — targets for expression-level corruptions. *)
let remat_prog () =
  let b = Builder.program () in
  Builder.global b "g" ~size:64 ();
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let base = la fb "g" in
      let x = load fb base 0 in
      let z = load fb base 8 in
      store fb base 0 (Reg x);
      let y = add fb (Reg x) (Imm 7) in
      let w = sub fb (Reg x) (Reg z) in
      let l2 = load fb base 16 in
      store fb base 16 (Reg l2);
      store fb base 24 (Reg w);
      call_void fb "__out" [ Reg y ];
      ret fb None);
  Builder.set_main b "main";
  Builder.finish b

(* A register redefined between two regions, so the compiler checkpoints
   it twice; dropping the younger checkpoint leaves a stale slot that
   every syntactic check still accepts (the older checkpoint survives). *)
let reckpt_prog () =
  let b = Builder.program () in
  Builder.global b "g" ~size:64 ();
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let base = la fb "g" in
      let r = load fb base 0 in
      store fb base 0 (Reg r);
      Builder.emit fb (Types.Bin (Types.Add, r, Types.Reg r, Types.Imm 1));
      let l2 = load fb base 8 in
      store fb base 8 (Reg l2);
      store fb base 16 (Reg r);
      call_void fb "__out" [ Reg r ];
      ret fb None);
  Builder.set_main b "main";
  Builder.finish b

let compile_prog prog = Pipeline.compile ~config:Pipeline.cwsp prog

(* first slice entry satisfying [p], as (boundary id, register, expr) *)
let find_slice (c : Pipeline.compiled) p =
  let found = ref None in
  Array.iteri
    (fun id slice ->
      if !found = None then
        List.iter
          (fun (r, e) -> if !found = None && p r e then found := Some (id, r, e))
          slice)
    c.Pipeline.slices;
  match !found with
  | Some x -> x
  | None -> Alcotest.fail "test_verify: no slice entry matches"

(* first slice with two identity entries (r <- slot[r]), as (id, a, b) *)
let find_identity_pair (c : Pipeline.compiled) =
  let found = ref None in
  Array.iteri
    (fun id slice ->
      if !found = None then
        let regs =
          List.filter_map
            (fun (r, e) ->
              match e with Slice.ESlot s when s = r -> Some r | _ -> None)
            slice
        in
        match regs with a :: b :: _ -> found := Some (id, a, b) | _ -> ())
    c.Pipeline.slices;
  match !found with
  | Some x -> x
  | None -> Alcotest.fail "test_verify: no slice with two kept checkpoints"

let map_slice_entry id reg f c =
  with_slice id
    (List.map (fun (r, e) -> if r = reg then (r, f e) else (r, e)))
    c

let insert_at bi at instrs =
  with_main_blocks
    (Array.mapi (fun i (blk : Prog.block) ->
         if i <> bi then blk
         else
           {
             blk with
             instrs =
               List.concat
                 (List.mapi
                    (fun j ins -> if j = at then instrs @ [ ins ] else [ ins ])
                    blk.instrs);
           }))

(* start of the checkpoint run attached to the boundary at (bi, ii) *)
let attach_start (c : Pipeline.compiled) bi ii =
  let instrs = Array.of_list (main_fn c).blocks.(bi).instrs in
  let j = ref ii in
  while
    !j > 0 && match instrs.(!j - 1) with Types.Ckpt _ -> true | _ -> false
  do
    decr j
  done;
  !j

let sem_rules = Cwsp_verify.Diag.[ Slice_value_mismatch; Stale_slot_read ]

let expect_sem ?(rules = sem_rules) name corrupted =
  (match Cwsp_verify.Verify.(errors (run ~sem:false corrupted)) with
  | [] -> ()
  | errs ->
    Alcotest.failf "%s: corruption should pass the syntactic tiers:\n%s" name
      (Cwsp_verify.Verify.report errs));
  let diags = Cwsp_verify.Verify.run corrupted in
  let caught =
    List.exists
      (fun (d : Cwsp_verify.Diag.t) ->
        Cwsp_verify.Diag.is_error d && List.mem d.rule rules)
      diags
  in
  if not caught then
    Alcotest.failf "%s: semantic tier missed the corruption, verifier said:\n%s"
      name
      (match diags with
      | [] -> "(clean)"
      | ds -> Cwsp_verify.Verify.report ds)

let mismatch = [ Cwsp_verify.Diag.Slice_value_mismatch ]
let stale = [ Cwsp_verify.Diag.Stale_slot_read ]

(* 1: a global address replaced by a constant *)
let test_sem_addr_const () =
  let c = compile () in
  let id, reg, _ =
    find_slice c (fun _ e -> match e with Slice.EAddr _ -> true | _ -> false)
  in
  expect_sem ~rules:mismatch "addr->imm"
    (map_slice_entry id reg (fun _ -> Slice.EImm 4096) c)

(* 2: a global address off by 8 bytes *)
let test_sem_addr_offset () =
  let c = compile () in
  let id, reg, _ =
    find_slice c (fun _ e -> match e with Slice.EAddr _ -> true | _ -> false)
  in
  expect_sem ~rules:mismatch "addr+8"
    (map_slice_entry id reg
       (fun e -> Slice.EBin (Types.Add, e, Slice.EImm 8))
       c)

(* 3: restored value off by one *)
let test_sem_wrap_add () =
  let c = compile () in
  let id, reg, _ =
    find_slice c (fun r e -> match e with Slice.ESlot s -> s = r | _ -> false)
  in
  expect_sem ~rules:mismatch "e+1"
    (map_slice_entry id reg
       (fun e -> Slice.EBin (Types.Add, e, Slice.EImm 1))
       c)

(* 4: restored value negated *)
let test_sem_negate () =
  let c = compile () in
  let id, reg, _ =
    find_slice c (fun r e -> match e with Slice.ESlot s -> s = r | _ -> false)
  in
  expect_sem ~rules:mismatch "0-e"
    (map_slice_entry id reg
       (fun e -> Slice.EBin (Types.Sub, Slice.EImm 0, e))
       c)

(* 5: slice reads the other register's (checkpointed, reaching) slot *)
let test_sem_wrong_slot () =
  let c = compile () in
  let id, a, b = find_identity_pair c in
  expect_sem "wrong slot" (map_slice_entry id a (fun _ -> Slice.ESlot b) c)

(* 6: two entries restored from each other's slots *)
let test_sem_swapped_entries () =
  let c = compile () in
  let id, a, b = find_identity_pair c in
  expect_sem "swapped entries"
    (map_slice_entry id a
       (fun _ -> Slice.ESlot b)
       (map_slice_entry id b (fun _ -> Slice.ESlot a) c))

(* 7: a younger region's checkpoint clobbers a slot an older remat slice
   still needs — Fig. 4(b)'s dead-slot hazard, injected post-compile *)
let test_sem_clobbered_slot () =
  let c = compile_prog (remat_prog ()) in
  let id, _, e =
    find_slice c (fun _ e ->
        match e with
        | Slice.EBin (Types.Add, Slice.ESlot _, Slice.EImm 7) -> true
        | _ -> false)
  in
  let s =
    match e with Slice.EBin (_, Slice.ESlot s, _) -> s | _ -> assert false
  in
  let bi, ii, _ = List.find (fun (_, _, i) -> i = id) (boundaries c) in
  expect_sem ~rules:stale "clobbered slot"
    (insert_at bi (attach_start c bi ii)
       [ Types.Mov (s, Types.Imm 0); Types.Ckpt s ]
       c)

(* 8: the re-checkpoint of a redefined register pruned away; the older
   checkpoint of the same register keeps every syntactic tier quiet *)
let test_sem_pruned_needed_ckpt () =
  let c = compile_prog (reckpt_prog ()) in
  let positions = ref [] in
  Prog.iter_instrs
    (fun bi ii ins ->
      match ins with
      | Types.Ckpt r -> positions := (r, bi, ii) :: !positions
      | _ -> ())
    (main_fn c);
  let twice =
    List.find_map
      (fun (r, bi, ii) ->
        if List.exists (fun (r', bi', ii') -> r' = r && (bi', ii') <> (bi, ii))
             !positions
        then Some (r, bi, ii)
        else None)
      !positions (* positions are in reverse order: head = youngest *)
  in
  match twice with
  | None -> Alcotest.fail "test_verify: no twice-checkpointed register"
  | Some (_, bi, ii) ->
    expect_sem ~rules:stale "pruned needed ckpt" (drop_at bi ii c)

(* 9: rematerialization operator flipped *)
let test_sem_op_swap () =
  let c = compile_prog (remat_prog ()) in
  let id, reg, _ =
    find_slice c (fun _ e ->
        match e with
        | Slice.EBin (Types.Add, Slice.ESlot _, Slice.EImm _) -> true
        | _ -> false)
  in
  expect_sem ~rules:mismatch "add->sub"
    (map_slice_entry id reg
       (function
         | Slice.EBin (Types.Add, a, b) -> Slice.EBin (Types.Sub, a, b)
         | e -> e)
       c)

(* 10: operands of a non-commutative rematerialization swapped *)
let test_sem_operand_swap () =
  let c = compile_prog (remat_prog ()) in
  let id, reg, _ =
    find_slice c (fun _ e ->
        match e with
        | Slice.EBin (Types.Sub, a, b) -> a <> b
        | _ -> false)
  in
  expect_sem "sub operand swap"
    (map_slice_entry id reg
       (function
         | Slice.EBin (Types.Sub, a, b) -> Slice.EBin (Types.Sub, b, a)
         | e -> e)
       c)

(* 11: rematerialization immediate off by one *)
let test_sem_imm_bump () =
  let c = compile_prog (remat_prog ()) in
  let id, reg, _ =
    find_slice c (fun _ e ->
        match e with
        | Slice.EBin (Types.Add, Slice.ESlot _, Slice.EImm _) -> true
        | _ -> false)
  in
  expect_sem ~rules:mismatch "imm+1"
    (map_slice_entry id reg
       (function
         | Slice.EBin (op, a, Slice.EImm v) -> Slice.EBin (op, a, Slice.EImm (v + 1))
         | e -> e)
       c)

(* the two corpus programs themselves verify clean, semantic tier included *)
let test_sem_corpus_clean () =
  expect_clean "remat" (compile_prog (remat_prog ()));
  expect_clean "reckpt" (compile_prog (reckpt_prog ()))

(* A user store aimed at the hardware checkpoint slot area. *)
let test_ckpt_area_store () =
  let b = Builder.program () in
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let p = imm fb 0x2000_0000 in
      store fb p 0 (Imm 7);
      ret fb None);
  Builder.set_main b "main";
  let compiled =
    Pipeline.compile ~config:Pipeline.baseline (Builder.finish b)
  in
  expect_rule "ckpt area store" Cwsp_verify.Diag.Ckpt_area_store compiled

(* ---- persist corpus: hand-damaged explicit-persistency binaries ----

   The compiler's explicit mode discharges every store with a
   La/flush/pfence sequence before each commit point. Each case below
   damages exactly one aspect of that placement on the real compiled
   binary and must trigger exactly the matching [Persist_check] rule;
   the undamaged binary must verify with zero diagnostics, warnings
   included. *)

let compile_explicit () = compile ~config:Pipeline.cwsp_explicit ()

(* A fence-free variant: with no sync [Fence] downstream of the
   discharge, a flushed-but-undrained store reads as [missing-fence]
   (with a later fence it would be [early-commit] instead). *)
let fence_free_prog () =
  let b = Builder.program () in
  Builder.global b "g" ~size:64 ();
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let base = la fb "g" in
      let v = load fb base 0 in
      let w = add fb (Reg v) (Imm 1) in
      store fb base 0 (Reg w);
      call_void fb "__out" [ Reg w ];
      ret fb None);
  Builder.set_main b "main";
  Builder.finish b

let compile_fence_free () =
  Pipeline.compile ~config:Pipeline.cwsp_explicit (fence_free_prog ())

let find_flush c = find_instr c (function Types.Flush _ -> true | _ -> false)
let find_pfence c = find_instr c (function Types.Pfence -> true | _ -> false)

(* swap the instructions at positions i and j of block bi *)
let swap_at bi i j =
  with_main_blocks
    (Array.mapi (fun b (blk : Prog.block) ->
         if b <> bi then blk
         else
           let arr = Array.of_list blk.instrs in
           let t = arr.(i) in
           arr.(i) <- arr.(j);
           arr.(j) <- t;
           { blk with instrs = Array.to_list arr }))

(* move the instruction at (bi, ii) to just after the next boundary of
   the same block *)
let move_after_next_boundary bi ii =
  with_main_blocks
    (Array.mapi (fun b (blk : Prog.block) ->
         if b <> bi then blk
         else
           let ins = List.nth blk.instrs ii in
           let rest = List.filteri (fun j _ -> j <> ii) blk.instrs in
           let moved = ref false in
           let instrs =
             List.concat
               (List.mapi
                  (fun j x ->
                    match x with
                    | Types.Boundary _ when j >= ii && not !moved ->
                      moved := true;
                      [ x; ins ]
                    | _ -> [ x ])
                  rest)
           in
           { blk with instrs = (if !moved then instrs else instrs @ [ ins ]) }))

(* 0: the undamaged explicit compile is fully certified — no errors and
   no redundant-flush warnings (minimality) *)
let test_persist_clean () =
  let c = compile_explicit () in
  match Cwsp_verify.Verify.(normalize (run c)) with
  | [] -> ()
  | ds ->
    Alcotest.failf "explicit compile not clean:\n%s"
      (Cwsp_verify.Verify.report ds)

(* 1: dropped flush — the store never leaves the cache *)
let test_persist_dropped_flush () =
  let c = compile_explicit () in
  let bi, ii = find_flush c in
  expect_rule "dropped flush" Cwsp_verify.Diag.Missing_flush (drop_at bi ii c)

(* 2: dropped pfence — flushed but never drained *)
let test_persist_dropped_pfence () =
  let c = compile_fence_free () in
  let bi, ii = find_pfence c in
  expect_rule "dropped pfence" Cwsp_verify.Diag.Missing_fence (drop_at bi ii c)

(* 3: commit hoisted above its fence — the pfence lands after the
   boundary it was supposed to seal *)
let test_persist_early_commit () =
  let c = compile_explicit () in
  let bi, ii = find_pfence c in
  expect_rule "early commit" Cwsp_verify.Diag.Early_commit
    (move_after_next_boundary bi ii c)

(* 4: fence before flush — the writeback reaches the persist queue only
   after the drain, so the commit sees it flushed-but-unfenced *)
let test_persist_fence_before_flush () =
  let c = compile_fence_free () in
  let bi, fii = find_flush c in
  let bi', pii = find_pfence c in
  Alcotest.(check int) "flush and pfence share a block" bi bi';
  expect_rule "fence before flush" Cwsp_verify.Diag.Missing_fence
    (swap_at bi fii pii c)

(* 5: duplicated flush — the second writeback upgrades nothing on any
   path (the minimality lint) *)
let test_persist_duplicate_flush () =
  let c = compile_explicit () in
  let bi, ii = find_flush c in
  let fl = List.nth (main_fn c).blocks.(bi).instrs ii in
  expect_rule "duplicate flush" Cwsp_verify.Diag.Redundant_flush
    (insert_at bi ii [ fl ] c)

(* 6: flush retargeted at the wrong alias class — an unstored offset,
   leaving the real store dirty *)
let test_persist_wrong_class () =
  let c = compile_explicit () in
  expect_rule "wrong alias class" Cwsp_verify.Diag.Missing_flush
    (map_instrs
       (function Types.Flush (b, _) -> Types.Flush (b, 56) | ins -> ins)
       c)

(* 7: a store smuggled in between the discharge and its boundary *)
let test_persist_store_after_discharge () =
  let c = compile_explicit () in
  let sbi, sii = find_instr c (function Types.Store _ -> true | _ -> false) in
  let st = List.nth (main_fn c).blocks.(sbi).instrs sii in
  let bi, pii = find_pfence c in
  expect_rule "store after discharge" Cwsp_verify.Diag.Missing_flush
    (insert_at bi (pii + 1) [ st ] c)

(* 8: every persist instruction stripped — the fully blind binary *)
let test_persist_stripped () =
  let c = compile_explicit () in
  expect_rule "all persists stripped" Cwsp_verify.Diag.Missing_flush
    (with_main_blocks
       (Array.map (fun (blk : Prog.block) ->
            {
              blk with
              instrs =
                List.filter
                  (function Types.Flush _ | Types.Pfence -> false | _ -> true)
                  blk.instrs;
            }))
       c)

let () =
  Alcotest.run "verify"
    [
      ( "positive",
        [
          Alcotest.test_case "base program clean" `Quick test_base_program_clean;
          Alcotest.test_case "workloads clean" `Quick test_workloads_clean;
        ] );
      ( "corrupted",
        [
          Alcotest.test_case "antidep" `Quick test_corrupt_antidep;
          Alcotest.test_case "entry boundary" `Quick test_corrupt_entry_boundary;
          Alcotest.test_case "loop boundary" `Quick test_corrupt_loop_boundary;
          Alcotest.test_case "sync boundary" `Quick test_corrupt_sync_boundary;
          Alcotest.test_case "call boundary" `Quick test_corrupt_call_boundary;
          Alcotest.test_case "live-in uncovered" `Quick
            test_corrupt_live_in_uncovered;
          Alcotest.test_case "stripped checkpoints" `Quick
            test_corrupt_strip_ckpts;
          Alcotest.test_case "slot ref undefined" `Quick
            test_corrupt_slot_ref_undefined;
          Alcotest.test_case "slice unknown global" `Quick
            test_corrupt_slice_unknown_global;
          Alcotest.test_case "duplicate boundary id" `Quick
            test_corrupt_duplicate_boundary_id;
          Alcotest.test_case "nonmonotone boundary id" `Quick
            test_corrupt_nonmonotone_boundary_id;
          Alcotest.test_case "boundary id range" `Quick
            test_corrupt_boundary_id_range;
          Alcotest.test_case "ckpt placement" `Quick test_corrupt_ckpt_placement;
          Alcotest.test_case "ckpt area store" `Quick test_ckpt_area_store;
        ] );
      ( "semantic",
        [
          Alcotest.test_case "corpus programs clean" `Quick test_sem_corpus_clean;
          Alcotest.test_case "addr replaced by const" `Quick test_sem_addr_const;
          Alcotest.test_case "addr offset" `Quick test_sem_addr_offset;
          Alcotest.test_case "value plus one" `Quick test_sem_wrap_add;
          Alcotest.test_case "value negated" `Quick test_sem_negate;
          Alcotest.test_case "wrong slot" `Quick test_sem_wrong_slot;
          Alcotest.test_case "swapped entries" `Quick test_sem_swapped_entries;
          Alcotest.test_case "clobbered slot" `Quick test_sem_clobbered_slot;
          Alcotest.test_case "pruned needed ckpt" `Quick
            test_sem_pruned_needed_ckpt;
          Alcotest.test_case "op swap" `Quick test_sem_op_swap;
          Alcotest.test_case "operand swap" `Quick test_sem_operand_swap;
          Alcotest.test_case "imm bump" `Quick test_sem_imm_bump;
        ] );
      ( "persist",
        [
          Alcotest.test_case "explicit compile clean" `Quick test_persist_clean;
          Alcotest.test_case "dropped flush" `Quick test_persist_dropped_flush;
          Alcotest.test_case "dropped pfence" `Quick test_persist_dropped_pfence;
          Alcotest.test_case "early commit" `Quick test_persist_early_commit;
          Alcotest.test_case "fence before flush" `Quick
            test_persist_fence_before_flush;
          Alcotest.test_case "duplicate flush" `Quick
            test_persist_duplicate_flush;
          Alcotest.test_case "wrong alias class" `Quick test_persist_wrong_class;
          Alcotest.test_case "store after discharge" `Quick
            test_persist_store_after_discharge;
          Alcotest.test_case "all persists stripped" `Quick
            test_persist_stripped;
        ] );
    ]
