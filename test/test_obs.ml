(* Tests for the observability layer (Cwsp_obs.Obs): span bookkeeping,
   the zero-cost disabled mode, the determinism contract (golden output
   byte-identical across pool widths with tracing on), and the shape of
   the exported Chrome trace-event JSON. *)

open Cwsp_sim
open Cwsp_core
open Cwsp_workloads
open Cwsp_experiments
module Obs = Cwsp_obs.Obs

let w = Registry.find_exn
let cwsp = Cwsp_schemes.Schemes.cwsp

(* ---- span bookkeeping ---- *)

let test_span_balance () =
  Obs.reset ();
  Obs.enable ();
  Obs.span_begin ~cat:"t" "outer";
  Obs.span_begin ~cat:"t" ~args:[ ("k", 1.0) ] "inner";
  Alcotest.(check int) "two open spans" 2 (Obs.open_depth ());
  Obs.span_end ();
  Obs.span_end ();
  Alcotest.(check int) "balanced" 0 (Obs.open_depth ());
  let spans = Obs.snapshot_spans () in
  Alcotest.(check int) "two recorded" 2 (List.length spans);
  let find name =
    match List.find_opt (fun s -> s.Obs.sp_name = name) spans with
    | Some s -> s
    | None -> Alcotest.fail ("span not recorded: " ^ name)
  in
  let a = find "outer" and b = find "inner" in
  Alcotest.(check bool) "inner nested in outer" true
    (b.sp_ts_us >= a.sp_ts_us
    && b.sp_ts_us +. b.sp_dur_us <= a.sp_ts_us +. a.sp_dur_us +. 1.0);
  Alcotest.(check string) "cat kept" "t" a.sp_cat;
  Alcotest.(check (list (pair string (float 0.0)))) "args kept"
    [ ("k", 1.0) ] b.sp_args;
  Obs.reset ()

let test_span_unbalanced_end () =
  Obs.reset ();
  Obs.enable ();
  let before = Obs.unbalanced_ends () in
  Obs.span_end ();
  (* counted, never raised *)
  Alcotest.(check int) "unbalanced counted" (before + 1) (Obs.unbalanced_ends ());
  Alcotest.(check int) "no spans recorded" 0
    (List.length (Obs.snapshot_spans ()));
  Obs.reset ()

let test_time_helper () =
  Obs.reset ();
  Obs.enable ();
  let r = Obs.time ~cat:"t" "timed" (fun () -> 41 + 1) in
  Alcotest.(check int) "result passed through" 42 r;
  (* span recorded even when f raises *)
  (try Obs.time "raising" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "both spans recorded" 2
    (List.length (Obs.snapshot_spans ()));
  Alcotest.(check int) "stack rewound after raise" 0 (Obs.open_depth ());
  Obs.reset ()

(* ---- disabled mode is a no-op ---- *)

let test_disabled_noop () =
  Obs.reset ();
  Alcotest.(check bool) "reset disables" false !Obs.on;
  Obs.span_begin ~cat:"t" "ghost";
  Obs.span_end ();
  Obs.counter_event ~name:"ghost" ~ts_us:0.0 [ ("v", 1.0) ];
  let c = Obs.Counter.make "test.disabled.counter" in
  Obs.Counter.add c 5;
  Obs.Counter.incr c;
  let h = Obs.Hist.make "test.disabled.hist" in
  Obs.Hist.add h 3.0;
  Alcotest.(check int) "no spans" 0 (List.length (Obs.snapshot_spans ()));
  Alcotest.(check int) "counter untouched" 0 (Obs.Counter.value c);
  Alcotest.(check int) "hist untouched" 0 (Obs.Hist.count h);
  Alcotest.(check int) "depth zero" 0 (Obs.open_depth ());
  (* the timed helper still runs the payload *)
  Alcotest.(check int) "time passes through" 7 (Obs.time "x" (fun () -> 7));
  Obs.reset ()

let test_counters_enabled () =
  Obs.reset ();
  Obs.enable ();
  let c = Obs.Counter.make "test.enabled.counter" in
  Obs.Counter.add c 5;
  Obs.Counter.incr c;
  Alcotest.(check int) "accumulates" 6 (Obs.Counter.value c);
  Alcotest.(check string) "name" "test.enabled.counter" (Obs.Counter.name c);
  (* find-or-create returns the same counter *)
  Obs.Counter.incr (Obs.Counter.make "test.enabled.counter");
  Alcotest.(check int) "shared by name" 7 (Obs.Counter.value c);
  Obs.reset ()

(* ---- determinism: tracing on, jobs=1 vs jobs=4 ---- *)

let subset = List.map w [ "radix"; "tatp" ]
let series = [ Exp.slowdown_series "cWSP" cwsp Config.default ]
let render () = Exp.per_workload_table ~subset ~series ()

(* Capture everything [f] prints to stdout (same shape as
   test_executor.ml). *)
let capture_stdout f =
  let tmp = Filename.temp_file "cwsp_obs_test" ".txt" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close fd)
    (fun () -> ignore (f ()));
  let ic = open_in_bin tmp in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  s

let run_traced ~jobs =
  Obs.reset ();
  Obs.enable ();
  Api.reset_caches ();
  Executor.run ~jobs (Exp.plan ~subset series);
  let out = capture_stdout render in
  let spans = List.length (Obs.snapshot_spans ()) in
  (* the golden-identity runs must fit their rings: a dropped span would
     mean the comparison silently covered less than the full workload *)
  List.iter
    (fun (tid, dropped) ->
      Alcotest.(check int)
        (Printf.sprintf "domain %d dropped no spans" tid)
        0 dropped)
    (Obs.dropped_per_domain ());
  Obs.reset ();
  (out, spans)

let test_traced_jobs_identical () =
  let out1, spans1 = run_traced ~jobs:1 in
  let out4, spans4 = run_traced ~jobs:4 in
  Alcotest.(check bool) "rendered output non-empty" true
    (String.length out1 > 0);
  Alcotest.(check string) "stdout identical, tracing on, jobs=1 vs 4" out1 out4;
  Alcotest.(check bool) "spans recorded at both widths" true
    (spans1 > 0 && spans4 > 0)

let test_traced_matches_untraced () =
  (* tracing must not perturb the rendered output at all *)
  let traced, _ = run_traced ~jobs:2 in
  Obs.reset ();
  Api.reset_caches ();
  Executor.run ~jobs:2 (Exp.plan ~subset series);
  let plain = capture_stdout render in
  Alcotest.(check string) "tracing on vs off" plain traced

(* ---- Chrome trace-event JSON schema ---- *)

(* Minimal recursive-descent JSON parser (no external deps): enough to
   validate the exported trace structurally. *)
type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise (Bad_json "eof") in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
      | _ -> ()
  in
  let expect c =
    if peek () <> c then
      raise (Bad_json (Printf.sprintf "expected %c at %d" c !pos));
    advance ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          (* keep the raw escape; fidelity is irrelevant for the schema *)
          advance ();
          advance ();
          advance ();
          Buffer.add_char b '?'
        | c -> Buffer.add_char b c);
        advance ();
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> raise (Bad_json (Printf.sprintf "bad number at %d" start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then (
        advance ();
        Obj [])
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((k, v) :: acc)
          | '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | c -> raise (Bad_json (Printf.sprintf "bad object char %c" c))
        in
        members []
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then (
        advance ();
        Arr [])
      else
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elems (v :: acc)
          | ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | c -> raise (Bad_json (Printf.sprintf "bad array char %c" c))
        in
        elems []
    | '"' -> Str (parse_string ())
    | 't' ->
      pos := !pos + 4;
      Bool true
    | 'f' ->
      pos := !pos + 5;
      Bool false
    | 'n' ->
      pos := !pos + 4;
      Null
    | _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad_json "trailing garbage");
  v

let field name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Exercise every instrumented layer in-process, export the trace, and
   validate it against the Chrome trace-event schema. *)
let test_trace_schema () =
  Obs.reset ();
  Obs.enable ();
  Api.reset_caches ();
  Executor.run ~jobs:2 (Exp.plan ~subset series);
  (* one fault-campaign cell for the campaign category *)
  let target =
    Cwsp_recovery.Campaign.target ~name:"radix"
      (Api.compiled (w "radix") Cwsp_compiler.Pipeline.cwsp)
  in
  let report =
    Cwsp_recovery.Campaign.run ~seeds:1
      ~classes:[ List.hd Cwsp_recovery.Fault.all ]
      [ target ]
  in
  Alcotest.(check int) "campaign ran one cell" 1
    (List.length report.Cwsp_recovery.Campaign.r_cells);
  let tmp = Filename.temp_file "cwsp_obs_trace" ".json" in
  Obs.write_trace tmp;
  let j = parse_json (read_file tmp) in
  Sys.remove tmp;
  Obs.reset ();
  let events =
    match field "traceEvents" j with
    | Some (Arr evs) -> evs
    | _ -> Alcotest.fail "traceEvents array missing"
  in
  Alcotest.(check bool) "has events" true (events <> []);
  let cats = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let str k =
        match field k ev with
        | Some (Str s) -> s
        | _ -> Alcotest.fail (Printf.sprintf "event missing string %S" k)
      in
      let num k =
        match field k ev with
        | Some (Num f) -> f
        | _ -> Alcotest.fail (Printf.sprintf "event missing number %S" k)
      in
      ignore (str "name");
      ignore (num "pid");
      match str "ph" with
      | "X" ->
        Hashtbl.replace cats (str "cat") ();
        ignore (num "tid");
        ignore (num "ts");
        Alcotest.(check bool) "duration non-negative" true (num "dur" >= 0.0)
      | "C" -> (
        ignore (num "ts");
        match field "args" ev with
        | Some (Obj kvs) ->
          List.iter
            (fun (_, v) ->
              match v with
              | Num _ -> ()
              | _ -> Alcotest.fail "counter arg not a number")
            kvs
        | _ -> Alcotest.fail "counter event without args object")
      | "M" -> ()
      | ph -> Alcotest.fail (Printf.sprintf "unexpected phase %S" ph))
    events;
  List.iter
    (fun cat ->
      Alcotest.(check bool)
        (Printf.sprintf "category %S present" cat)
        true (Hashtbl.mem cats cat))
    [ "compiler"; "executor"; "sim"; "campaign" ]

let test_metrics_schema () =
  Obs.reset ();
  Obs.enable ();
  let c = Obs.Counter.make "test.metrics.counter" in
  Obs.Counter.add c 3;
  let h = Obs.Hist.make "test.metrics.hist" in
  Obs.Hist.add h 5.0;
  Obs.Hist.add h 500.0;
  let tmp = Filename.temp_file "cwsp_obs_metrics" ".json" in
  Obs.write_metrics tmp;
  let j = parse_json (read_file tmp) in
  Sys.remove tmp;
  Obs.reset ();
  (match field "counters" j with
  | Some (Obj kvs) ->
    Alcotest.(check bool) "counter exported" true
      (List.assoc_opt "test.metrics.counter" kvs = Some (Num 3.0))
  | _ -> Alcotest.fail "counters object missing");
  match field "histograms" j with
  | Some (Obj kvs) -> (
    match List.assoc_opt "test.metrics.hist" kvs with
    | Some hist ->
      Alcotest.(check bool) "hist count" true (field "count" hist = Some (Num 2.0));
      (match field "p50" hist with
      | Some (Num _) -> ()
      | _ -> Alcotest.fail "hist p50 missing")
    | None -> Alcotest.fail "histogram not exported")
  | _ -> Alcotest.fail "histograms object missing"

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "balance and nesting" `Quick test_span_balance;
          Alcotest.test_case "unbalanced end counted" `Quick
            test_span_unbalanced_end;
          Alcotest.test_case "time helper" `Quick test_time_helper;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "no-op when off" `Quick test_disabled_noop;
          Alcotest.test_case "counters when on" `Quick test_counters_enabled;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs=1 vs jobs=4, tracing on" `Slow
            test_traced_jobs_identical;
          Alcotest.test_case "tracing on vs off" `Slow
            test_traced_matches_untraced;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace schema" `Slow test_trace_schema;
          Alcotest.test_case "metrics schema" `Quick test_metrics_schema;
        ] );
    ]
