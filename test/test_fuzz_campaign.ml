(* The fuzzing subsystem end to end (DESIGN.md §14):

   1. determinism: campaign coverage reports are byte-identical at
      --jobs 1 vs --jobs 4, and across a stop + resume of the same
      campaign directory;
   2. shipped compiler: a bounded campaign over the real pipeline finds
      zero oracle escapes, retains mutants, and mutation lights strictly
      more coverage than generation alone at the same exec budget;
   3. bug reinjection: three deliberately broken pipelines (dropping a
      checkpoint, a boundary, a flush from the compiled binary) are each
      caught by a small fixed-seed campaign, with an auto-minimized
      counterexample persisted under findings/;
   4. minimizer corpus: five hand-written defective programs (the race
      tier's mutation corpus idioms) each shrink to <= 25 instructions
      while still reproducing their diagnostic.

   No [Verify.install_pipeline_hook] here: campaigns must be free to
   compile programs the verifier would reject — rejection IS the signal
   being measured. *)

open Cwsp_ir
module Pipeline = Cwsp_compiler.Pipeline
module Verify = Cwsp_verify.Verify
module Diag = Cwsp_verify.Diag
module Campaign = Cwsp_fuzz.Campaign
module Corpus = Cwsp_fuzz.Corpus
module Coverage = Cwsp_fuzz.Coverage
module Oracle = Cwsp_fuzz.Oracle
module Minimize = Cwsp_fuzz.Minimize

(* ---- scratch campaign directories ---- *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let scratch tag =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cwsp-fuzz-test-%d-%s" (Unix.getpid ()) tag)
  in
  rm_rf dir;
  dir

let params ?(jobs = 1) dir =
  { (Campaign.default_params ~dir) with p_master_seed = 97; p_batch = 40;
    p_jobs = jobs; p_min_budget = 600 }

(* ---- 1. determinism ---- *)

let test_jobs_identical () =
  let d1 = scratch "jobs1" and d4 = scratch "jobs4" in
  let o1 = Campaign.run (params ~jobs:1 d1) ~execs:120 in
  let o4 = Campaign.run (params ~jobs:4 d4) ~execs:120 in
  if o1.o_report <> o4.o_report then
    Alcotest.fail "coverage reports differ between --jobs 1 and --jobs 4";
  rm_rf d1;
  rm_rf d4

let test_resume_identical () =
  let dfull = scratch "full" and dresume = scratch "resume" in
  let ofull = Campaign.run (params dfull) ~execs:120 in
  (* stop after the first half of the exec budget, then relaunch: the
     resumed campaign must replay onto the exact same report *)
  let _ = Campaign.run (params dresume) ~execs:60 in
  let ores = Campaign.run (params dresume) ~execs:120 in
  if ofull.o_report <> ores.o_report then
    Alcotest.fail "coverage report after stop+resume differs from one run";
  rm_rf dfull;
  rm_rf dresume

(* ---- 2. the shipped compiler survives a campaign ---- *)

let test_shipped_compiler_clean () =
  let d = scratch "shipped" in
  let o = Campaign.run (params d) ~execs:200 in
  if o.o_findings > 0 then
    Alcotest.failf "shipped compiler: %d findings (first one is in %s)"
      o.o_findings
      (Filename.concat d "findings");
  if o.o_fatal then Alcotest.fail "shipped compiler: verifier escape";
  if o.o_corpus = 0 then Alcotest.fail "campaign retained nothing";
  rm_rf d

(* Mutation must buy coverage over generation alone: the same oracle on
   the same number of pure generator programs lights strictly fewer
   cells than the campaign's generate-and-mutate loop. *)
let test_mutation_buys_coverage () =
  let execs = 200 in
  let d = scratch "mutbuy" in
  let o = Campaign.run (params d) ~execs in
  rm_rf d;
  let gen_cov = Coverage.create () in
  let master = Cwsp_util.Rng.create 97 in
  for j = 0 to execs - 1 do
    let rng = Cwsp_util.Rng.stream master j in
    let seed = 1 + Cwsp_util.Rng.int rng 0x3fff_ffff in
    let ev = Oracle.evaluate (Cwsp_util.Rng.stream master (j + 1000))
        (Cwsp_fuzz.Gen.gen_program seed) in
    ignore (Coverage.add gen_cov ~origin:Coverage.Gen ev.e_cells)
  done;
  let gen_cells = Coverage.count gen_cov in
  if o.o_cells <= gen_cells then
    Alcotest.failf
      "mutation bought nothing: campaign %d cells vs %d generation-only"
      o.o_cells gen_cells

(* ---- 3. bug reinjection ---- *)

(* Drop the first instruction matching [pred] from the compiled binary,
   leaving the metadata (slices, boundary table) claiming otherwise —
   the shape of a real emission bug. *)
let drop_first pred (compiled : Pipeline.compiled) : Pipeline.compiled =
  let dropped = ref false in
  let funcs =
    List.map
      (fun (name, (fn : Prog.func)) ->
        let blocks =
          Array.map
            (fun (b : Prog.block) ->
              {
                b with
                instrs =
                  List.filter
                    (fun i ->
                      if (not !dropped) && pred i then begin
                        dropped := true;
                        false
                      end
                      else true)
                    b.instrs;
              })
            fn.blocks
        in
        (name, { fn with blocks }))
      compiled.prog.funcs
  in
  { compiled with prog = { compiled.prog with funcs } }

let reinject tag pred =
  let compile config prog = drop_first pred (Pipeline.compile ~config prog) in
  let d = scratch ("inject-" ^ tag) in
  let o = Campaign.run ~compile (params d) ~execs:100 in
  if o.o_findings = 0 then
    Alcotest.failf "injected %s bug survived 100 execs undetected" tag;
  (* the counterexample is persisted, minimized, and reloadable *)
  let c = Corpus.open_dir d in
  (match Corpus.load_state c ~master_seed:97 ~shard:(0, 1) ~batch:40 with
  | None -> Alcotest.fail "campaign state unreadable"
  | Some st ->
    List.iter
      (fun (f : Corpus.saved_finding) ->
        let path = Filename.concat (Filename.concat d "findings") (f.sf_fp ^ ".ir") in
        if not (Sys.file_exists path) then
          Alcotest.failf "finding %s: no persisted counterexample" f.sf_key;
        if f.sf_instrs > 60 then
          Alcotest.failf "finding %s: counterexample not minimized (%d instrs)"
            f.sf_key f.sf_instrs)
      st.s_findings);
  rm_rf d

let test_reinject_drop_ckpt () =
  reinject "ckpt" (function Types.Ckpt _ -> true | _ -> false)

let test_reinject_drop_boundary () =
  reinject "boundary" (function Types.Boundary _ -> true | _ -> false)

let test_reinject_drop_flush () =
  reinject "flush" (function Types.Flush _ -> true | _ -> false)

(* ---- 4. minimizer corpus ---- *)

(* Five defective programs over the race tier's corpus idioms (a striped
   loop, an inline CAS lock, an atomic accumulator), one defect each. *)
type mutant =
  | Drop_acquire
  | Widen_stride
  | Drop_release
  | Plain_accum
  | Private_atomic

let mutant_name = function
  | Drop_acquire -> "drop-acquire"
  | Widen_stride -> "widen-stride"
  | Drop_release -> "drop-release"
  | Plain_accum -> "plain-accum"
  | Private_atomic -> "private-atomic"

let intended_rule = function
  | Drop_acquire -> Diag.Unlocked_shared_write
  | Widen_stride -> Diag.Tid_overlap_unprovable
  | Drop_release -> Diag.Data_race
  | Plain_accum -> Diag.Data_race
  | Private_atomic -> Diag.Redundant_atomic

let mutant_prog (m : mutant) : Prog.t =
  let open Builder in
  let b = Builder.program () in
  Builder.global b "mstriped" ~size:(4 * 32 * 8) ();
  Builder.global b "mshared" ~size:(32 * 8) ();
  Builder.global b "mlock" ~size:8 ();
  Builder.global b "macc" ~size:8 ();
  Builder.func b "worker" ~nparams:1 (fun fb ->
      let tid = param fb 0 in
      let striped = la fb "mstriped" in
      let shared = la fb "mshared" in
      let lock = la fb "mlock" in
      let accw = la fb "macc" in
      let mybase =
        bin fb Add (Reg striped) (Reg (bin fb Mul (Reg tid) (Imm (32 * 8))))
      in
      (* striped private traffic; Widen_stride reaches the next stripe,
         Private_atomic needlessly makes the private update atomic *)
      let _ =
        loop fb ~from:(Imm 0) ~below:(Imm 48) (fun j ->
            let mask = match m with Widen_stride -> 63 | _ -> 31 in
            let idx = bin fb And (Reg j) (Imm mask) in
            let slot = bin fb Add (Reg mybase) (Reg (bin fb Shl (Reg idx) (Imm 3))) in
            match m with
            | Private_atomic -> ignore (atomic_rmw fb Types.Add slot 0 (Imm 1))
            | _ ->
              let v = load fb slot 0 in
              store fb slot 0 (Reg (bin fb Add (Reg v) (Imm 1))))
      in
      (* critical sections under an inline CAS-acquire / TSO-release
         lock; Drop_acquire removes the CAS, Drop_release the unlock *)
      let _ =
        loop fb ~from:(Imm 0) ~below:(Imm 16) (fun j ->
            (match m with
            | Drop_acquire -> ()
            | _ ->
              let head = block fb in
              let cont = block fb in
              jmp fb head;
              switch_to fb head;
              let old = cas fb lock 0 ~expected:(Imm 0) ~desired:(Imm 1) in
              let got = cmp fb Eq (Reg old) (Imm 0) in
              br fb got ~ifso:cont ~ifnot:head;
              switch_to fb cont);
            let sidx = bin fb And (Reg (bin fb Add (Reg j) (Reg tid))) (Imm 31) in
            let sslot = bin fb Add (Reg shared) (Reg (bin fb Shl (Reg sidx) (Imm 3))) in
            let sv = load fb sslot 0 in
            store fb sslot 0 (Reg (bin fb Add (Reg sv) (Imm 1)));
            (match m with
            | Plain_accum ->
              let av = load fb accw 0 in
              store fb accw 0 (Reg (bin fb Add (Reg av) (Reg sv)))
            | _ -> ());
            (match m with
            | Drop_release -> ()
            | _ -> store fb lock 0 (Imm 0)))
      in
      (* shared atomic accumulator traffic *)
      let _ =
        loop fb ~from:(Imm 0) ~below:(Imm 16) (fun j ->
            ignore (atomic_rmw fb Types.Add accw 0 (Reg j)))
      in
      ret fb None);
  Builder.func b "main" ~nparams:0 (fun fb ->
      call_void fb "worker" [ Imm 0 ];
      ret fb None);
  Builder.set_main b "main";
  Builder.finish b

let rule_fires rule prog =
  match Pipeline.compile ~config:Pipeline.cwsp prog with
  | exception _ -> false
  | compiled ->
    List.exists
      (fun (d : Diag.t) -> d.rule = rule)
      (Verify.normalize (Verify.run compiled))

let test_minimizer_corpus () =
  List.iter
    (fun m ->
      let rule = intended_rule m in
      let prog = mutant_prog m in
      if not (rule_fires rule prog) then
        Alcotest.failf "%s: intended rule does not fire before minimization"
          (mutant_name m);
      let mini = Minimize.minimize ~budget:1500 ~pred:(rule_fires rule) prog in
      let n = Prog.total_instr_count mini in
      if n > 25 then
        Alcotest.failf "%s: minimized to %d instructions (> 25)" (mutant_name m) n;
      if not (rule_fires rule mini) then
        Alcotest.failf "%s: minimized program lost its diagnostic" (mutant_name m))
    [ Drop_acquire; Widen_stride; Drop_release; Plain_accum; Private_atomic ]

let () =
  Alcotest.run "fuzz-campaign"
    [
      ( "campaign",
        [
          Alcotest.test_case "reports byte-identical: jobs 1 vs 4" `Slow
            test_jobs_identical;
          Alcotest.test_case "reports byte-identical: stop + resume" `Slow
            test_resume_identical;
          Alcotest.test_case "shipped compiler: zero findings" `Slow
            test_shipped_compiler_clean;
          Alcotest.test_case "mutation buys coverage over generation" `Slow
            test_mutation_buys_coverage;
          Alcotest.test_case "reinjected bug caught: dropped checkpoint" `Slow
            test_reinject_drop_ckpt;
          Alcotest.test_case "reinjected bug caught: dropped boundary" `Slow
            test_reinject_drop_boundary;
          Alcotest.test_case "reinjected bug caught: dropped flush" `Slow
            test_reinject_drop_flush;
          Alcotest.test_case "minimizer corpus: 5 mutants to <= 25 instrs" `Quick
            test_minimizer_corpus;
        ] );
    ]
