(* Executor determinism and result-store concurrency tests: the
   plan/execute/render architecture must produce byte-identical rendered
   output and identical Stats.t for any domain-pool width, and the
   mutex-protected store must stay consistent under concurrent hammering
   (DESIGN.md §5). *)

open Cwsp_sim
open Cwsp_core
open Cwsp_workloads
open Cwsp_experiments

let w = Registry.find_exn
let cwsp = Cwsp_schemes.Schemes.cwsp

(* A representative slice of the evaluation: a slowdown column plus two
   sweep columns, over workloads from three suites. *)
let subset = List.map w [ "sjeng"; "radix"; "tatp" ]

let series =
  [
    Exp.slowdown_series "cWSP" cwsp Config.default;
    Exp.slowdown_series "RBT-8" cwsp { Config.default with rbt_entries = 8 };
    Exp.slowdown_series "RBT-32" cwsp { Config.default with rbt_entries = 32 };
  ]

let render () = Exp.per_workload_table ~subset ~series ()

(* Capture everything [f] prints to stdout. *)
let capture_stdout f =
  let tmp = Filename.temp_file "cwsp_exec_test" ".txt" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close fd)
    (fun () -> ignore (f ()));
  let ic = open_in_bin tmp in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  s

let run_at ~jobs =
  Api.reset_caches ();
  Executor.run ~jobs (Exp.plan ~subset series);
  let out = capture_stdout render in
  let stats =
    List.map (fun wl -> Stats.to_string (Api.stats wl cwsp Config.default)) subset
  in
  (out, stats)

(* Rendered output and full Stats.t contents identical at 1 vs 4 domains. *)
let test_jobs_determinism () =
  let out1, stats1 = run_at ~jobs:1 in
  let out4, stats4 = run_at ~jobs:4 in
  Alcotest.(check bool) "rendered output non-empty" true
    (String.length out1 > 0);
  Alcotest.(check string) "rendered output jobs=1 vs jobs=4" out1 out4;
  List.iteri
    (fun i (s1, s4) ->
      Alcotest.(check string) (Printf.sprintf "stats[%d] identical" i) s1 s4)
    (List.combine stats1 stats4)

(* The executor dedupes: re-running the same plan adds no new results. *)
let test_plan_dedup () =
  Api.reset_caches ();
  let plan = Exp.plan ~subset series in
  Executor.run ~jobs:2 (plan @ plan);
  let points =
    List.length (List.sort_uniq compare (List.map Job.key plan))
  in
  Alcotest.(check bool)
    (Printf.sprintf "plan has %d unique points" points)
    true (points > 0);
  (* all of them must now be memo hits: render without executing *)
  let out = capture_stdout render in
  Alcotest.(check bool) "render from warm store" true (String.length out > 0)

(* Concurrency smoke: many domains hammer one store with overlapping
   keys; every read must observe the canonical value and the store must
   end with exactly one entry per key. *)
let test_store_hammer () =
  let store : (int, int) Store.t = Store.create 16 in
  let iters = 20_000 and keyspace = 97 in
  let worker () =
    for i = 0 to iters - 1 do
      let k = i mod keyspace in
      let v = Store.memo store k (fun () -> (k * 2654435761) land 0xffff) in
      if v <> (k * 2654435761) land 0xffff then
        failwith (Printf.sprintf "store returned wrong value for key %d" k)
    done
  in
  let domains = List.init 3 (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains;
  Alcotest.(check int) "one entry per key" keyspace (Store.length store)

(* Concurrency smoke at the Api layer: domains racing whole
   compile->trace->replay chains for the same points all observe equal
   results. *)
let test_api_concurrent_stats () =
  Api.reset_caches ();
  let ws = List.map w [ "sjeng"; "radix" ] in
  let compute () =
    List.map (fun wl -> (Api.stats wl cwsp Config.default).elapsed_ns) ws
  in
  let domains = List.init 3 (fun _ -> Domain.spawn compute) in
  let mine = compute () in
  let others = List.map Domain.join domains in
  List.iter
    (fun other ->
      List.iteri
        (fun i (a, b) ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "elapsed_ns[%d] equal across domains" i)
            a b)
        (List.combine mine other))
    others

let () =
  Alcotest.run "executor"
    [
      ( "determinism",
        [
          Alcotest.test_case "jobs=1 vs jobs=4" `Slow test_jobs_determinism;
          Alcotest.test_case "plan dedup" `Slow test_plan_dedup;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "store hammer" `Quick test_store_hammer;
          Alcotest.test_case "api concurrent stats" `Slow
            test_api_concurrent_stats;
        ] );
    ]
