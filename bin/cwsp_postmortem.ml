(** cwsp-postmortem — forensic timeline analyzer for flight-recorder
    dumps (the [.flight] artifacts written by [fault_campaign --flight],
    fuzz findings, or [Harness.validate_*] with recording on).

    Audits the ring the way recovery audits the undo logs: per-record
    checksums and LSNs separate intact records from torn ones, and the
    damage report says whether the losses are consistent with a
    fail-stop crash ([truncated] — only the write frontier is damaged,
    the surviving timeline is a trustworthy prefix) or not ([corrupt]).
    Then renders the cross-crash timeline: records grouped by crash
    epoch, totally ordered by LSN, with recovery-ladder decisions and
    fault injections decoded.

    Exit status: 0 for a clean/truncated/empty ring (the timeline is
    trustworthy), 1 for corrupt or no-ring (it is not), 2 for usage. *)

module Recorder = Cwsp_flight.Recorder
module Postmortem = Cwsp_flight.Postmortem

let usage = "cwsp_postmortem [--chrome FILE] [--quiet] DUMP.flight"

let () =
  let chrome = ref "" in
  let quiet = ref false in
  let dumps = ref [] in
  Arg.parse
    [
      ( "--chrome",
        Arg.Set_string chrome,
        "FILE  also write the timeline as Chrome trace-event JSON (one \
         track per crash epoch, ts = LSN)" );
      ("--quiet", Arg.Set quiet, "  suppress the text timeline (audit only)");
    ]
    (fun a -> dumps := a :: !dumps)
    usage;
  let path =
    match !dumps with
    | [ p ] -> p
    | _ ->
        prerr_endline usage;
        exit 2
  in
  match Recorder.load_dump path with
  | None ->
      Printf.eprintf "cwsp-postmortem: %s: not a readable flight dump\n" path;
      exit 2
  | Some mem ->
      let a = Postmortem.audit mem in
      if not !quiet then print_string (Postmortem.render_text a);
      if !chrome <> "" then begin
        let oc = open_out !chrome in
        output_string oc (Postmortem.render_chrome a);
        close_out oc;
        if not !quiet then
          Printf.printf "chrome trace written to %s\n" !chrome
      end;
      match a.a_verdict with
      | Postmortem.Clean | Postmortem.Truncated | Postmortem.Empty -> ()
      | Postmortem.Corrupt | Postmortem.No_ring ->
          Printf.eprintf "cwsp-postmortem: ring is %s — timeline untrustworthy\n"
            (Postmortem.verdict_name a.a_verdict);
          exit 1
