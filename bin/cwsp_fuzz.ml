(** cwsp-fuzz — coverage-guided crash-consistency fuzzing campaign.

    Generates and mutates IR programs, pushes each through the full
    pipeline (static verifier, crash-recovery sweep at every
    inter-boundary interval, adversarial fault classes, explicit-mode
    sweep, dynamic race monitor) and keeps whatever lights up new
    coverage. Findings — compiler crashes, non-race static rejections,
    fault escapes, and verifier escapes (statically certified programs
    that dynamically diverge) — are deduplicated, auto-minimized and
    persisted under the campaign directory.

    The campaign is resumable and shardable: state is saved at batch
    boundaries, [--shard i/n] processes the exec indices congruent to
    [i] mod [n], and every exec streams its randomness off the master
    seed and its absolute index, so coverage reports are byte-identical
    at any [--jobs] width and across kill/resume.

    Exit status: 0 clean, 1 findings (2 on usage errors). *)

let () =
  let dir = ref "" in
  let execs = ref 2000 in
  let batch = ref 64 in
  let jobs = ref 1 in
  let shard = ref (0, 1) in
  let master_seed = ref 1 in
  let json_file = ref "" in
  let max_seconds = ref 0.0 in
  let min_budget = ref 3000 in
  let trace = ref "" in
  let metrics = ref "" in
  let parse_shard s =
    match String.split_on_char '/' s with
    | [ i; n ] -> (
      match (int_of_string_opt i, int_of_string_opt n) with
      | Some i, Some n when n > 0 && i >= 0 && i < n -> shard := (i, n)
      | _ -> raise (Arg.Bad ("bad shard " ^ s)))
    | _ -> raise (Arg.Bad ("bad shard " ^ s ^ " (expected i/n)"))
  in
  Arg.parse
    [
      ("--corpus", Arg.Set_string dir, "DIR  campaign directory (required)");
      ("--execs", Arg.Set_int execs, "N  total exec indices to cover (default 2000)");
      ( "--batch",
        Arg.Set_int batch,
        "N  execs per batch = state-save granularity (default 64)" );
      ("--jobs", Arg.Set_int jobs, "N  evaluate N programs at a time on the domain pool");
      ( "--shard",
        Arg.String parse_shard,
        "i/n  process exec indices congruent to i mod n (default 0/1)" );
      ("--master-seed", Arg.Set_int master_seed, "N  campaign master seed (default 1)");
      ("--json", Arg.Set_string json_file, "FILE  write the JSON coverage report");
      ( "--max-seconds",
        Arg.Set_float max_seconds,
        "S  stop at the next batch boundary after S seconds (resumable)" );
      ( "--minimize-budget",
        Arg.Set_int min_budget,
        "N  predicate evaluations per finding minimization (default 3000)" );
      ( "--trace",
        Arg.Set_string trace,
        "FILE  write a Chrome trace-event JSON profile (per-exec spans)" );
      ("--metrics", Arg.Set_string metrics, "FILE  write flat JSON metrics");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "cwsp_fuzz --corpus DIR [--execs N] [--batch N] [--jobs N] [--shard i/n] \
     [--master-seed N] [--max-seconds S] [--json FILE]";
  if !dir = "" then begin
    prerr_endline "cwsp-fuzz: --corpus DIR is required";
    exit 2
  end;
  Cwsp_obs.Obs.configure
    ?trace:(if !trace = "" then None else Some !trace)
    ?metrics:(if !metrics = "" then None else Some !metrics)
    ();
  let params =
    {
      Cwsp_fuzz.Campaign.p_dir = !dir;
      p_master_seed = !master_seed;
      p_shard = !shard;
      p_batch = !batch;
      p_jobs = !jobs;
      p_min_budget = !min_budget;
    }
  in
  let outcome =
    Cwsp_fuzz.Campaign.run
      ?max_seconds:(if !max_seconds > 0.0 then Some !max_seconds else None)
      params ~execs:!execs
  in
  Printf.printf
    "cwsp-fuzz: shard %d/%d  execs %d  discards %d  corpus %d  cells %d \
     (+%d new)  findings %d%s\n"
    (fst !shard) (snd !shard) outcome.o_execs outcome.o_discards
    outcome.o_corpus outcome.o_cells outcome.o_new_cells outcome.o_findings
    (if outcome.o_fatal then "  [FATAL: verifier escape]" else "");
  if !json_file <> "" then begin
    let oc = open_out !json_file in
    output_string oc outcome.o_report;
    close_out oc;
    Printf.printf "JSON report written to %s\n" !json_file
  end;
  Cwsp_obs.Obs.finalize ();
  if outcome.o_findings > 0 then begin
    Printf.eprintf "cwsp-fuzz: %d findings (see %s/findings/)\n"
      outcome.o_findings !dir;
    exit 1
  end
