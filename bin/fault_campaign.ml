(** fault-campaign — deterministic adversarial fault-injection campaign
    over the recovery protocol: a (workload x fault-class x seed) matrix
    of crashes with a faulty persistence path (torn persists, dropped
    persist-buffer tails, corrupted undo logs, checkpoint bit rot, power
    failure during recovery), recovered by the hardened protocol and
    checked bit-exactly against failure-free runs.

    Exits non-zero if any fault ESCAPES — the protocol claims success
    but the final NVM/IO state diverges. [--unhardened] runs the blind
    legacy protocol instead (escapes expected; for studying the fault
    model, not for CI). [--jobs N] fans cells over the domain pool;
    per-cell RNG streams are derived from the master seed and the cell's
    matrix position, so the report is byte-identical at any width. *)

open Cwsp_workloads

let default_workloads =
  [ "lu-ncg"; "fft"; "kmeans"; "vacation"; "bzip2"; "radix"; "tatp"; "xz" ]

let split_csv s = String.split_on_char ',' s |> List.filter (fun x -> x <> "")

let () =
  let workloads = ref default_workloads in
  let classes = ref Cwsp_recovery.Fault.all in
  let seeds = ref 20 in
  let jobs = ref 1 in
  let window = ref 16 in
  let master_seed = ref 2024 in
  let hardened = ref true in
  let json_file = ref "" in
  let flight_dir = ref "" in
  let trace = ref "" in
  let metrics = ref "" in
  Arg.parse
    [
      ( "--workloads",
        Arg.String (fun s -> workloads := split_csv s),
        "W1,W2,...  registry workloads to crash (default: a fast 8-workload \
         mix)" );
      ( "--classes",
        Arg.String
          (fun s ->
            classes :=
              List.map
                (fun n ->
                  match Cwsp_recovery.Fault.of_name n with
                  | Some c -> c
                  | None -> raise (Arg.Bad ("unknown fault class " ^ n)))
                (split_csv s)),
        "C1,C2,...  fault classes (default: all five)" );
      ("--seeds", Arg.Set_int seeds, "N  repetitions per (workload, class) cell (default 20)");
      ("--jobs", Arg.Set_int jobs, "N  run N cells at a time on the domain pool");
      ("--window", Arg.Set_int window, "N  RBT window (default 16)");
      ("--master-seed", Arg.Set_int master_seed, "N  campaign master seed (default 2024)");
      ( "--unhardened",
        Arg.Clear hardened,
        "  run the blind legacy protocol (escapes expected)" );
      ("--json", Arg.Set_string json_file, "FILE  write the JSON coverage report");
      ( "--flight",
        Arg.Set_string flight_dir,
        "DIR  record every cell's in-NVM flight ring and write the dumps \
         (one .flight file per cell; feed to cwsp_postmortem)" );
      ( "--trace",
        Arg.Set_string trace,
        "FILE  write a Chrome trace-event JSON profile (per-cell spans)" );
      ( "--metrics",
        Arg.Set_string metrics,
        "FILE  write flat JSON metrics (per-class outcome counters)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "fault_campaign [--workloads ...] [--classes ...] [--seeds N] [--jobs N] \
     [--unhardened] [--json FILE] [--trace FILE] [--metrics FILE]";
  Cwsp_obs.Obs.configure
    ?trace:(if !trace = "" then None else Some !trace)
    ?metrics:(if !metrics = "" then None else Some !metrics)
    ();
  let targets =
    List.map
      (fun name ->
        match List.find_opt (fun (d : Defs.t) -> d.name = name) Registry.all with
        | None ->
            Printf.eprintf "fault-campaign: unknown workload %s\n" name;
            exit 2
        | Some w ->
            Cwsp_recovery.Campaign.target ~name
              (Cwsp_core.Api.compiled w Cwsp_compiler.Pipeline.cwsp))
      !workloads
  in
  let report =
    Cwsp_recovery.Campaign.run
      ~map:(fun f specs -> Cwsp_core.Executor.map_pool ~jobs:!jobs f specs)
      ~window:!window ~hardened:!hardened ~master_seed:!master_seed
      ~flight:(!flight_dir <> "") ~seeds:!seeds ~classes:!classes targets
  in
  print_string (Cwsp_recovery.Campaign.render report);
  if !flight_dir <> "" then begin
    let n = Cwsp_recovery.Campaign.save_flights report !flight_dir in
    Printf.printf "flight dumps: %d written to %s\n" n !flight_dir
  end;
  if !json_file <> "" then begin
    let oc = open_out !json_file in
    output_string oc (Cwsp_recovery.Campaign.to_json report);
    close_out oc;
    Printf.printf "JSON report written to %s\n" !json_file
  end;
  Cwsp_obs.Obs.finalize ();
  let esc = List.length (Cwsp_recovery.Campaign.escaped report) in
  if !hardened && esc > 0 then begin
    Printf.eprintf "fault-campaign: %d escaped faults\n" esc;
    exit 1
  end
