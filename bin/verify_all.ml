(** verify-all — sweep the static crash-consistency verifier (syntactic
    tiers + the semantic slice checker + the SPMD race tier) over every
    registry workload and every parallel workload under each
    instrumented pipeline configuration. One line per (workload, config)
    pair — or a JSON report with [--format json] — and a non-zero exit
    if any error-severity diagnostic is found. Parallel workloads that
    are deliberately racy ([W_parallel.expect_racy]) invert the check:
    the race tier MUST reject them, and a clean report is the failure.

    [--jobs N] fans the (workload, config) pairs out over the shared
    domain pool; the report order is the declaration order regardless
    of N, so outputs are byte-identical across pool widths. *)

open Cwsp_compiler

let base_configs =
  [ Pipeline.cwsp; Pipeline.cwsp_no_prune; Pipeline.regions_only ]

type row = {
  workload : string;
  config : string;
  regions : int;
  expect_racy : bool;
  diags : Cwsp_verify.Diag.t list;
}

type pair =
  | Seq of Cwsp_workloads.Defs.t * Pipeline.config
  | Spmd of Cwsp_workloads.W_parallel.t * Pipeline.config

let spmd_threads = 4

let pair_label = function
  | Seq (w, config) ->
    w.Cwsp_workloads.Defs.name ^ "/" ^ Pipeline.config_name config
  | Spmd (w, config) ->
    Printf.sprintf "%s@%d/%s" w.Cwsp_workloads.W_parallel.pname spmd_threads
      (Pipeline.config_name config)

let verify_pair (p : pair) : row =
  match p with
  | Seq (w, config) ->
    let compiled = Pipeline.compile ~config (w.build ~scale:1) in
    {
      workload = w.name;
      config = Pipeline.config_name config;
      regions = Pipeline.nboundaries compiled;
      expect_racy = false;
      diags = Cwsp_verify.Verify.(normalize (run compiled));
    }
  | Spmd (w, config) ->
    let compiled =
      Pipeline.compile ~config (w.pbuild ~scale:1 ~threads:spmd_threads)
    in
    {
      workload = Printf.sprintf "%s@%d" w.pname spmd_threads;
      config = Pipeline.config_name config;
      regions = Pipeline.nboundaries compiled;
      expect_racy = w.expect_racy;
      diags = Cwsp_verify.Verify.(normalize (run compiled));
    }

let is_race_error (d : Cwsp_verify.Diag.t) =
  Cwsp_verify.Diag.is_error d
  && match d.rule with
     | Data_race | Unlocked_shared_write | Tid_overlap_unprovable -> true
     | _ -> false

(* A deliberately racy workload passes iff the race tier rejected it and
   nothing else went wrong; everything else passes iff error-free. *)
let row_failed row =
  let errs = Cwsp_verify.Verify.errors row.diags in
  if row.expect_racy then
    List.exists (fun d -> not (is_race_error d)) errs
    || not (List.exists is_race_error errs)
  else errs <> []

let print_text rows =
  Array.iter
    (fun row ->
      let errs = Cwsp_verify.Verify.errors row.diags in
      let warnings = List.length row.diags - List.length errs in
      let status =
        if row_failed row then Printf.sprintf "FAIL (%d errors)" (List.length errs)
        else if row.expect_racy then
          Printf.sprintf "ok (%d expected race errors)" (List.length errs)
        else if warnings > 0 then Printf.sprintf "ok (%d warnings)" warnings
        else "ok"
      in
      Printf.printf "%-12s %-14s regions=%-5d %s\n" row.workload row.config
        row.regions status;
      if row_failed row && errs <> [] then begin
        print_string (Cwsp_verify.Verify.report errs);
        print_newline ()
      end)
    rows

let print_json rows =
  let row_json row =
    let errs = Cwsp_verify.Verify.errors row.diags in
    Printf.sprintf
      "{\"workload\":\"%s\",\"config\":\"%s\",\"regions\":%d,\"errors\":%d,\
       \"warnings\":%d,\"expected_racy\":%b,\"failed\":%b,\"diagnostics\":%s}"
      row.workload row.config row.regions (List.length errs)
      (List.length row.diags - List.length errs)
      row.expect_racy (row_failed row)
      (Cwsp_verify.Verify.report_json row.diags)
  in
  print_string "[\n";
  Array.iteri
    (fun i row ->
      print_string (row_json row);
      if i < Array.length rows - 1 then print_string ",";
      print_newline ())
    rows;
  print_string "]\n"

let () =
  let jobs = ref 1 in
  let format = ref "text" in
  let persist_mode = ref "implicit" in
  let trace = ref "" in
  let metrics = ref "" in
  Arg.parse
    [
      ("--jobs", Arg.Set_int jobs, "N  verify N (workload, config) pairs at a time");
      ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun s -> format := s),
        "  report format (default text)" );
      ( "--persist-mode",
        Arg.Symbol ([ "implicit"; "explicit" ], fun s -> persist_mode := s),
        "  explicit compiles every config with flush/pfence insertion and \
         runs the persist tier (default implicit)" );
      ( "--trace",
        Arg.Set_string trace,
        "FILE  write a Chrome trace-event JSON profile (Perfetto)" );
      ( "--metrics",
        Arg.Set_string metrics,
        "FILE  write flat JSON metrics (per-tier latency histograms)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "verify_all [--jobs N] [--format text|json] [--trace FILE] [--metrics FILE]";
  Cwsp_obs.Obs.configure
    ?trace:(if !trace = "" then None else Some !trace)
    ?metrics:(if !metrics = "" then None else Some !metrics)
    ();
  let configs =
    if !persist_mode = "explicit" then
      List.map Pipeline.explicit_of base_configs
    else base_configs
  in
  let pairs =
    Array.of_list
      (List.concat_map
         (fun (w : Cwsp_workloads.Defs.t) ->
           List.map (fun config -> Seq (w, config)) configs)
         Cwsp_workloads.Registry.all
      @ List.concat_map
          (fun (w : Cwsp_workloads.W_parallel.t) ->
            List.map (fun config -> Spmd (w, config)) configs)
          Cwsp_workloads.W_parallel.all)
  in
  let rows =
    Cwsp_core.Executor.map_pool ~cat:"verify"
      ~label:(fun i -> pair_label pairs.(i))
      ~jobs:!jobs verify_pair pairs
  in
  (match !format with "json" -> print_json rows | _ -> print_text rows);
  Cwsp_obs.Obs.finalize ();
  let failures =
    Array.fold_left (fun acc row -> if row_failed row then acc + 1 else acc) 0 rows
  in
  if failures > 0 then begin
    Printf.eprintf "verify-all: %d failing (workload, config) pairs\n" failures;
    exit 1
  end
