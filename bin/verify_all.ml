(** verify-all — sweep the static crash-consistency verifier over every
    registry workload under each instrumented pipeline configuration.
    Prints one line per (workload, config) pair and exits non-zero if any
    error-severity diagnostic is found anywhere. *)

open Cwsp_compiler

let configs =
  [ Pipeline.cwsp; Pipeline.cwsp_no_prune; Pipeline.regions_only ]

let () =
  let failures = ref 0 in
  List.iter
    (fun (w : Cwsp_workloads.Defs.t) ->
      List.iter
        (fun config ->
          let compiled = Pipeline.compile ~config (w.build ~scale:1) in
          let diags = Cwsp_verify.Verify.run compiled in
          let errs = Cwsp_verify.Verify.errors diags in
          let warnings = List.length diags - List.length errs in
          Printf.printf "%-12s %-14s regions=%-5d %s\n" w.name
            (Pipeline.config_name config)
            (Pipeline.nboundaries compiled)
            (if errs <> [] then
               Printf.sprintf "FAIL (%d errors)" (List.length errs)
             else if warnings > 0 then
               Printf.sprintf "ok (%d warnings)" warnings
             else "ok");
          if errs <> [] then begin
            incr failures;
            print_string (Cwsp_verify.Verify.report errs);
            print_newline ()
          end)
        configs)
    Cwsp_workloads.Registry.all;
  if !failures > 0 then begin
    Printf.eprintf "verify-all: %d failing (workload, config) pairs\n" !failures;
    exit 1
  end
