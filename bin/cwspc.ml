(** cwspc — the cWSP compiler driver.

    Compiles a workload from the registry with the chosen pipeline
    configuration, and optionally dumps the instrumented IR, the compile
    report (regions, checkpoints, pruning rate), the recovery slices, a
    timing simulation against the baseline, and a crash-recovery
    validation sweep.

    Programs can also be written to and compiled from the textual IR
    format ([Cwsp_ir.Pp] / [Cwsp_ir.Parse]).

    Examples:
      cwspc --list
      cwspc -w radix --report
      cwspc -w lbm --dump-ir | less
      cwspc -w tatp --simulate --validate 25
      cwspc -w radix --emit radix.cwsp
      cwspc --input radix.cwsp --report *)

open Cmdliner
open Cwsp_compiler

let list_workloads () =
  List.iter
    (fun (w : Cwsp_workloads.Defs.t) ->
      Printf.printf "%-10s %-10s %s%s\n" w.name
        (Cwsp_workloads.Defs.suite_name w.suite)
        w.description
        (if w.memory_intensive then "  [memory-intensive]" else ""))
    Cwsp_workloads.Registry.all

let config_of_string = function
  | "cwsp" -> Ok Pipeline.cwsp
  | "no-prune" -> Ok Pipeline.cwsp_no_prune
  | "regions" -> Ok Pipeline.regions_only
  | "baseline" -> Ok Pipeline.baseline
  | s -> Error (`Msg (Printf.sprintf "unknown config %S" s))

let run_inner list workload input emit config persist_mode dump_ir report
    slices simulate validate scale verify format =
  if list then (
    list_workloads ();
    `Ok ())
  else
    let source =
      match (workload, input) with
      | Some name, None -> (
        match Cwsp_workloads.Registry.find name with
        | Some w -> Ok (`Workload w)
        | None -> Error (Printf.sprintf "unknown workload %S (try --list)" name))
      | None, Some file -> (
        try
          let ic = open_in file in
          let n = in_channel_length ic in
          let text = really_input_string ic n in
          close_in ic;
          let prog = Cwsp_ir.Parse.program text in
          Cwsp_ir.Validate.check_exn prog;
          Ok (`Program prog)
        with
        | Sys_error m -> Error m
        | Cwsp_ir.Parse.Parse_error (ln, m) ->
          Error (Printf.sprintf "%s:%d: %s" file ln m)
        | Failure m -> Error m)
      | Some _, Some _ -> Error "pass either --workload or --input, not both"
      | None, None -> Error "pass --workload NAME, --input FILE or --list"
    in
    match source with
    | Error m -> `Error (false, m)
    | Ok source -> (
        match config_of_string config with
        | Error (`Msg m) -> `Error (false, m)
        | Ok cc ->
          let cc =
            match persist_mode with
            | `Implicit -> cc
            | `Explicit -> Pipeline.explicit_of cc
          in
          let compiled =
            match source with
            | `Workload w -> Cwsp_core.Api.compiled ~scale w cc
            | `Program prog -> Pipeline.compile ~config:cc prog
          in
          (match emit with
          | Some file ->
            let oc = open_out file in
            output_string oc (Cwsp_ir.Pp.program_str compiled.prog);
            close_out oc;
            Printf.printf "wrote %s\n" file
          | None -> ());
          if report then print_string (Pipeline.report_to_string compiled);
          if dump_ir then print_string (Cwsp_ir.Pp.program_str compiled.prog);
          if slices then
            Array.iteri
              (fun id slice ->
                if slice <> [] then
                  Printf.printf "region #%d (%s): %s\n" id
                    compiled.boundary_owner.(id)
                    (Cwsp_ckpt.Slice.to_string slice))
              compiled.slices;
          if simulate then begin
            let cfg = Cwsp_sim.Config.default in
            let source_prog =
              match source with
              | `Workload w -> w.build ~scale
              | `Program prog -> prog
            in
            let base_prog =
              (Pipeline.compile ~config:Pipeline.baseline source_prog).prog
            in
            let _, tr_base = Cwsp_interp.Machine.trace_of_program base_prog in
            let _, tr = Cwsp_interp.Machine.trace_of_program compiled.prog in
            let base = Cwsp_sim.Engine.run_trace cfg Cwsp_sim.Engine.Baseline tr_base in
            let st =
              Cwsp_sim.Engine.run_trace cfg
                (Cwsp_sim.Engine.Cwsp Cwsp_sim.Engine.cwsp_full) tr
            in
            Printf.printf "baseline: %s\n" (Cwsp_sim.Stats.to_string base);
            Printf.printf "cwsp:     %s\n" (Cwsp_sim.Stats.to_string st);
            Printf.printf "normalized slowdown: %.3f\n"
              (Cwsp_sim.Stats.slowdown st ~baseline:base)
          end;
          (match validate with
          | 0 -> ()
          | points ->
            let _, tr = Cwsp_interp.Machine.trace_of_program compiled.prog in
            let total = Cwsp_interp.Trace.length tr in
            let ok = ref 0 in
            for i = 0 to points - 1 do
              let crash_at = 1 + (i * (max 1 (total - 2)) / points) in
              (* explicit-mode binaries are checked against the explicit
                 (flush/fence) durability oracle, implicit ones against
                 the cWSP hardware model *)
              match
                if cc.Pipeline.persist_mode = Pipeline.Explicit then
                  Cwsp_recovery.Harness.validate_explicit ~crash_at compiled
                else
                  Cwsp_recovery.Harness.validate ~seed:(100 + i) ~crash_at
                    compiled
              with
              | Ok _ -> incr ok
              | Error e -> Printf.printf "FAIL @%d: %s\n" crash_at e
            done;
            Printf.printf "recovery validation: %d/%d crash points ok\n" !ok points);
          if verify then begin
            let diags = Cwsp_verify.Verify.(normalize (run compiled)) in
            let errs = Cwsp_verify.Verify.errors diags in
            (match format with
            | `Json -> print_endline (Cwsp_verify.Verify.report_json diags)
            | `Text ->
              if diags <> [] then
                print_endline (Cwsp_verify.Verify.report diags);
              if errs = [] then
                Printf.printf "verify: ok (%d regions, %d warnings)\n"
                  (Pipeline.nboundaries compiled)
                  (List.length diags));
            if errs <> [] then
              `Error
                ( false,
                  Printf.sprintf "verification failed with %d error(s)"
                    (List.length errs) )
            else `Ok ()
          end
          else `Ok ())

(* Telemetry wrapper: configure before any compile/simulate work so the
   spans land in the ring buffers, finalize after the last exit path. *)
let run list workload input emit config persist_mode dump_ir report slices
    simulate validate scale verify format trace metrics =
  Cwsp_obs.Obs.configure ?trace ?metrics ();
  let result =
    run_inner list workload input emit config persist_mode dump_ir report
      slices simulate validate scale verify format
  in
  Cwsp_obs.Obs.finalize ();
  result

let cmd =
  let list =
    Arg.(value & flag & info [ "l"; "list" ] ~doc:"List available workloads.")
  in
  let workload =
    Arg.(
      value
      & opt (some string) None
      & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload to compile.")
  in
  let input =
    Arg.(
      value
      & opt (some string) None
      & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Compile a textual IR file.")
  in
  let emit =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit" ] ~docv:"FILE" ~doc:"Write the compiled IR to FILE.")
  in
  let config =
    Arg.(
      value & opt string "cwsp"
      & info [ "c"; "config" ] ~docv:"CONFIG"
          ~doc:"Pipeline config: $(b,cwsp), $(b,no-prune), $(b,regions) or $(b,baseline).")
  in
  let persist_mode =
    Arg.(
      value
      & opt (enum [ ("implicit", `Implicit); ("explicit", `Explicit) ]) `Implicit
      & info [ "persist-mode" ] ~docv:"MODE"
          ~doc:
            "Persistency mode: $(b,implicit) (the cWSP hardware persists \
             committed stores) or $(b,explicit) (the compiler inserts \
             certified minimal flush/pfence sequences; enables the \
             persist verifier tier and the explicit recovery oracle).")
  in
  let dump_ir =
    Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the instrumented IR.")
  in
  let report =
    Arg.(value & flag & info [ "r"; "report" ] ~doc:"Print the compile report.")
  in
  let slices =
    Arg.(value & flag & info [ "slices" ] ~doc:"Print non-empty recovery slices.")
  in
  let simulate =
    Arg.(
      value & flag
      & info [ "s"; "simulate" ] ~doc:"Run the timing simulation vs the baseline.")
  in
  let validate =
    Arg.(
      value & opt int 0
      & info [ "validate" ] ~docv:"N"
          ~doc:"Inject N power failures and validate the recovery protocol.")
  in
  let scale =
    Arg.(value & opt int 1 & info [ "scale" ] ~docv:"K" ~doc:"Workload scale factor.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Run the static crash-consistency verifier on the compiled \
             program; exit non-zero on any error diagnostic.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Verifier report format: $(b,text) (one diagnostic per line \
             plus a summary) or $(b,json) (machine-readable diagnostic \
             records).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON profile of the run to FILE \
             (open in Perfetto or chrome://tracing). Also honors the \
             $(b,CWSP_TRACE) environment variable.")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write flat JSON metrics (counters, histograms, gauges) to \
             FILE. Also honors the $(b,CWSP_METRICS) environment variable.")
  in
  let term =
    Term.(
      ret
        (const run $ list $ workload $ input $ emit $ config $ persist_mode
       $ dump_ir $ report $ slices $ simulate $ validate $ scale $ verify
       $ format $ trace $ metrics))
  in
  Cmd.v
    (Cmd.info "cwspc" ~version:"1.0"
       ~doc:"compiler-directed whole-system persistence driver")
    term

let () = exit (Cmd.eval cmd)
