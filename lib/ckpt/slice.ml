(** Recovery slices (Section IV-C / VII).

    A slice is attached to each region boundary; when power failure
    interrupts the region that starts at that boundary, the recovery
    runtime evaluates the slice to restore the region's live-in registers
    before re-executing it. Slice expressions reconstruct values from
    immediates, global addresses and the NVM checkpoint slots that survive
    pruning — exactly the three sources the paper's recovery slice in
    Fig. 4(b) uses (constants 100 and 1, plus a shift over region Rg0's
    checkpoint of r3). *)

open Cwsp_ir

type expr =
  | EImm of int
  | EAddr of string            (* address of a global, resolved at link *)
  | ESlot of Types.reg         (* read the NVM checkpoint slot of a register *)
  | EBin of Types.binop * expr * expr
  | ECmp of Types.cmpop * expr * expr

(** One entry per live-in register of the region. *)
type t = (Types.reg * expr) list

let rec expr_size = function
  | EImm _ | EAddr _ | ESlot _ -> 1
  | EBin (_, a, b) | ECmp (_, a, b) -> 1 + expr_size a + expr_size b

(** [eval ~slot ~addr_of e] evaluates a slice expression at recovery time;
    [slot r] reads the checkpoint slot of register [r] from NVM and
    [addr_of g] resolves a global's address. *)
let rec eval ~slot ~addr_of = function
  | EImm v -> v
  | EAddr g -> addr_of g
  | ESlot r -> slot r
  | EBin (op, a, b) -> Eval.binop op (eval ~slot ~addr_of a) (eval ~slot ~addr_of b)
  | ECmp (op, a, b) -> Eval.cmpop op (eval ~slot ~addr_of a) (eval ~slot ~addr_of b)

let rec expr_to_string = function
  | EImm v -> string_of_int v
  | EAddr g -> "@" ^ g
  | ESlot r -> Printf.sprintf "slot[r%d]" r
  | EBin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (Pp.binop_str op)
      (expr_to_string b)
  | ECmp (op, a, b) ->
    Printf.sprintf "(%s cmp.%s %s)" (expr_to_string a) (Pp.cmpop_str op)
      (expr_to_string b)

let to_string (t : t) =
  t
  |> List.map (fun (r, e) -> Printf.sprintf "r%d <- %s" r (expr_to_string e))
  |> String.concat "; "

(** Registers whose slices read their own checkpoint slot directly (i.e.
    the checkpoint was kept rather than pruned or rematerialized). *)
let slot_restored (t : t) =
  List.filter_map (function r, ESlot r' when r = r' -> Some r | _ -> None) t

(** All checkpoint slots an expression reads. *)
let rec slot_refs = function
  | EImm _ | EAddr _ -> []
  | ESlot r -> [ r ]
  | EBin (_, a, b) | ECmp (_, a, b) -> slot_refs a @ slot_refs b

(** All globals an expression takes the address of. *)
let rec expr_globals = function
  | EImm _ | ESlot _ -> []
  | EAddr g -> [ g ]
  | EBin (_, a, b) | ECmp (_, a, b) -> expr_globals a @ expr_globals b
