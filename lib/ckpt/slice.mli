(** Recovery slices (Sections IV-C and VII).

    A slice is attached to each region boundary; when power failure
    interrupts the region starting there, the recovery runtime evaluates
    it to restore the region's live-in registers. Expressions reconstruct
    values from immediates, global addresses and the NVM checkpoint slots
    that survive pruning — the three sources of Fig. 4(b). *)

open Cwsp_ir

type expr =
  | EImm of int
  | EAddr of string     (** address of a global, resolved at link time *)
  | ESlot of Types.reg  (** read the NVM checkpoint slot of a register *)
  | EBin of Types.binop * expr * expr
  | ECmp of Types.cmpop * expr * expr

(** One entry per live-in register of the region. *)
type t = (Types.reg * expr) list

val expr_size : expr -> int

(** Evaluate at recovery time; [slot r] reads register [r]'s checkpoint
    slot from NVM, [addr_of g] resolves a global's address. *)
val eval : slot:(Types.reg -> int) -> addr_of:(string -> int) -> expr -> int

val expr_to_string : expr -> string
val to_string : t -> string

(** Registers restored straight from their own slot (checkpoint kept). *)
val slot_restored : t -> Types.reg list

(** All checkpoint slots an expression reads. *)
val slot_refs : expr -> Types.reg list

(** All globals an expression takes the address of. *)
val expr_globals : expr -> string list
