(** Live-out register checkpointing and optimal checkpoint pruning
    (Sections IV-B and IV-C; pruning follows Penny's reconstruction idea).

    Step 1 inserts [Ckpt r] immediately before every region boundary for
    every register live across it, so that the NVM slot of each live-in of
    each region holds its entry value once the preceding region persists.

    Step 2 prunes. For each boundary [k] and live register [r] the
    analysis computes a recovery plan — how the recovery slice of a region
    starting at [k] obtains [r]:

    - [VSlot]: read [r]'s checkpoint slot (either a checkpoint is kept at
      [k], or an earlier kept checkpoint still holds the value);
    - [VRemat e]: evaluate [e] over immediates, global addresses and the
      slots of other checkpointed registers — the Fig. 4(b) recovery-slice
      construction.

    A checkpoint at [k] is removed whenever the plan does not need it:
    the value is unchanged since all predecessor boundaries and they agree
    on the plan, or the defining instruction sits in [k]'s segment or in a
    single predecessor's block suffix and can be re-evaluated. Any
    disagreement, unresolved dependency or stale slot reference falls back
    to keeping the checkpoint, which is always sound because the kept
    [Ckpt] refreshes the slot with exactly the value the slice reads. *)

open Cwsp_ir
open Cwsp_analysis
module IntSet = Set.Make (Int)
module Obs = Cwsp_obs.Obs

(* ---- step 1: insertion ---- *)

let assert_no_ckpt (fn : Prog.func) =
  Prog.iter_instrs
    (fun _ _ ins ->
      match ins with
      | Types.Ckpt _ -> invalid_arg "Ckpt.Pass: function already has checkpoints"
      | _ -> ())
    fn

let insert_checkpoints (fn : Prog.func) : Prog.func * int =
  assert_no_ckpt fn;
  let live = Liveness.compute fn in
  let inserted = ref 0 in
  let blocks =
    Array.mapi
      (fun bi (blk : Prog.block) ->
        let rec rebuild ii instrs acc =
          match instrs with
          | [] -> List.rev acc
          | (Types.Boundary _ as b) :: rest ->
            let live_set = Liveness.live_before live ~bi ~ii in
            let ckpts =
              Liveness.IntSet.elements live_set
              |> List.map (fun r ->
                     incr inserted;
                     Types.Ckpt r)
            in
            rebuild (ii + 1) rest (b :: List.rev_append ckpts acc)
          | ins :: rest -> rebuild (ii + 1) rest (ins :: acc)
        in
        { blk with instrs = rebuild 0 blk.instrs [] })
      fn.blocks
  in
  ({ fn with blocks }, !inserted)

(* ---- step 2: the plan analysis ---- *)

type plan = Top | VSlot | VRemat of Slice.expr

let plan_equal a b =
  match (a, b) with
  | Top, Top | VSlot, VSlot -> true
  | VRemat e1, VRemat e2 -> e1 = e2
  | _ -> false

(* How boundary [k] recovers register [r] as a function of predecessors. *)
type via =
  | Inherit of int * IntSet.t
    (* unchanged along the paths from this pred; the set is that path's
       defs (suffix + intermediates + segment), used to re-validate slot
       references of inherited remat expressions *)
  | Fixed of Slice.expr (* rematerialized in the pred's suffix or segment *)
  | Blocked             (* unanalyzable: keep the checkpoint *)

type template =
  | Seg of Slice.expr option (* defined in k's segment: remat or keep *)
  | Vias of via list         (* not defined in the segment *)

type analysis = {
  rg : Regions.t;
  nbounds : int;
  nparams : int;
  live_at : IntSet.t array;
  infos : Regions.info array;
  templates : (int * int, template) Hashtbl.t;
  out : (int * int, plan) Hashtbl.t;
  keep : (int * int, unit) Hashtbl.t;
  pinned : (int * int, unit) Hashtbl.t;
}

let get_plan a k r = Option.value ~default:Top (Hashtbl.find_opt a.out (k, r))
let set_keep a k r = Hashtbl.replace a.keep (k, r) ()
let is_keep a k r = Hashtbl.mem a.keep (k, r)

let pin a k r =
  Hashtbl.replace a.pinned (k, r) ();
  set_keep a k r

(* A slot reference is permanently valid when the register is a parameter
   that is never redefined: its prologue checkpoint (always kept — the
   entry boundary has no predecessors) holds its value for the whole
   activation. *)
let permanent_slot a r = r < a.nparams && a.rg.never_defined.(r)

let max_remat_depth = 40
let max_expr_size = 64

exception Remat_fail

(** Rematerialize the value of [r] at boundary [k] when its definition
    lies in the given chain of spans (earliest first, ending just before
    [k]). [gap_defs] are registers defined in code between the spans
    (intermediate boundary-free blocks), which invalidates slot pinning
    for them.

    Slot references come in three flavours:
    - permanent: never-redefined parameters (prologue checkpoint);
    - pinned at [k]: the register's value is unchanged from the reference
      point to [k], so keeping its checkpoint at [k] makes the slot hold
      exactly the needed value;
    - pinned at the chain's opening boundary [chain_pred] (with
      [pre_defs] the registers possibly redefined between that boundary
      and the chain, e.g. in the predecessor's suffix or intermediate
      blocks): the slot then holds the *region-entry* value — this is the
      paper's Fig. 4(b) pattern, where Rg2's slice shifts the value
      checkpointed back in region Rg0. *)
let remat (a : analysis) (k : int) (r : int) ~(chain : Regions.span list)
    ~(gap_defs : IntSet.t) ~(chain_pred : int option) ~(pre_defs : IntSet.t) :
    Slice.expr option =
  let spans = Array.of_list chain in
  let nspans = Array.length spans in
  let instr si j = a.rg.code.(spans.(si).sbi).(j) in
  (* last def of [reg] strictly before (si, pos) within the chain *)
  let find_def reg ~si ~pos =
    let rec scan si j =
      if j < spans.(si).lo then if si = 0 then None else scan (si - 1) (spans.(si - 1).hi - 1)
      else if Types.def (instr si j) = Some reg then Some (si, j)
      else scan si (j - 1)
    in
    if nspans = 0 then None else scan si (pos - 1)
  in
  let no_def_from reg ~si ~pos =
    (* no def of [reg] at or after (si, pos) through the end of the chain,
       nor in the inter-span gap code *)
    (not (IntSet.mem reg gap_defs))
    &&
    let rec scan si j =
      if si >= nspans then true
      else if j >= spans.(si).hi then scan (si + 1) (if si + 1 < nspans then spans.(si + 1).lo else 0)
      else if Types.def (instr si j) = Some reg then false
      else scan si (j + 1)
    in
    scan si pos
  in
  let rec expr_of_def (si, j) depth : Slice.expr =
    match instr si j with
    | Types.Mov (_, Imm v) -> EImm v
    | Types.Mov (_, Reg r2) -> resolve r2 ~si ~pos:j depth
    | Types.La (_, g) -> EAddr g
    | Types.Bin (op, _, x, y) ->
      EBin (op, resolve_operand x ~si ~pos:j depth, resolve_operand y ~si ~pos:j depth)
    | Types.Cmp (op, _, x, y) ->
      ECmp (op, resolve_operand x ~si ~pos:j depth, resolve_operand y ~si ~pos:j depth)
    | Types.Load _ | Types.Call _ | Types.Atomic_rmw _ | Types.Cas _
    | Types.Store _ | Types.Fence | Types.Flush _ | Types.Pfence
    | Types.Ckpt _ | Types.Boundary _ ->
      raise Remat_fail
  and resolve_operand o ~si ~pos depth =
    match o with
    | Types.Imm v -> Slice.EImm v
    | Types.Reg r2 -> resolve r2 ~si ~pos depth
  and resolve r2 ~si ~pos depth : Slice.expr =
    if depth <= 0 then raise Remat_fail;
    match find_def r2 ~si ~pos with
    | Some d -> expr_of_def d (depth - 1)
    | None ->
      if permanent_slot a r2 then Slice.ESlot r2
      else if
        (* unique operand-free defs dominating this use are constants *)
        (match Regions.constant_at a.rg r2 ~bi:spans.(si).sbi ~ii:pos with
        | Some _ -> true
        | None -> false)
      then (
        match Regions.constant_at a.rg r2 ~bi:spans.(si).sbi ~ii:pos with
        | Some (Types.La (_, g)) -> Slice.EAddr g
        | Some (Types.Mov (_, Types.Imm v)) -> Slice.EImm v
        | Some _ | None -> raise Remat_fail)
      else if IntSet.mem r2 a.live_at.(k) && no_def_from r2 ~si ~pos then begin
        pin a k r2;
        Slice.ESlot r2
      end
      else begin
        (* Region-entry slot: r2's value at the chain's opening boundary
           [p]. Sound only when no checkpoint of r2 can overwrite the
           slot after [p]'s: checkpoints live only at boundaries, the
           region p->k has none inside, and r2 being *dead* at [k] means
           no checkpoint of it exists at [k] either. (A live-at-[k] r2
           whose value is unchanged is already covered by the pin-at-[k]
           case above.) *)
        match chain_pred with
        | Some p
          when (not (IntSet.mem r2 a.live_at.(k)))
               && (not (IntSet.mem r2 pre_defs))
               && (not (IntSet.mem r2 gap_defs))
               && IntSet.mem r2 a.live_at.(p) ->
          pin a p r2;
          Slice.ESlot r2
        | Some _ | None -> raise Remat_fail
      end
  in
  match find_def r ~si:(nspans - 1) ~pos:spans.(nspans - 1).hi with
  | None -> None
  | Some d -> (
    try
      let e = expr_of_def d max_remat_depth in
      if Slice.expr_size e > max_expr_size then None else Some e
    with Remat_fail -> None)

(* Build the iteration-invariant template for (k, r). *)
let template_of (a : analysis) (k : int) (r : int) : template =
  let info = a.infos.(k) in
  if IntSet.mem r info.segment_defs then begin
    (* the opening boundary of the segment chain, when unambiguous *)
    let chain_pred, pre_defs =
      match info.pred_entries with
      | [ pe ] ->
        ( Some pe.pe_pred,
          IntSet.union (Regions.span_defs a.rg pe.pe_suffix) info.intermediate_defs )
      | [] | _ :: _ :: _ -> (None, IntSet.empty)
    in
    Seg
      (remat a k r ~chain:[ info.segment ] ~gap_defs:IntSet.empty ~chain_pred
         ~pre_defs)
  end
  else begin
    let vias =
      List.map
        (fun (pe : Regions.pred_entry) ->
          let sdefs = Regions.span_defs a.rg pe.pe_suffix in
          let path_defs =
            IntSet.union sdefs (IntSet.union info.intermediate_defs info.segment_defs)
          in
          if not (IntSet.mem r path_defs) then Inherit (pe.pe_pred, path_defs)
          else if IntSet.mem r sdefs && not (IntSet.mem r info.intermediate_defs)
          then
            match
              remat a k r
                ~chain:[ pe.pe_suffix; info.segment ]
                ~gap_defs:info.intermediate_defs
                ~chain_pred:(Some pe.pe_pred) ~pre_defs:IntSet.empty
            with
            | Some e -> Fixed e
            | None -> Blocked
          else Blocked)
        info.pred_entries
    in
    Vias vias
  end

(* [Keep_it] aborts a meet: the checkpoint must stay. *)
exception Keep_it

let analyze (fn : Prog.func) : analysis =
  let rg = Regions.build fn in
  let live = Liveness.compute fn in
  let nbounds = Array.length rg.bounds in
  let live_at =
    Array.map
      (fun (b : Regions.bpos) ->
        Liveness.live_before live ~bi:b.bi ~ii:b.ii
        |> Liveness.IntSet.elements |> IntSet.of_list)
      rg.bounds
  in
  let infos = Array.init nbounds (fun k -> Regions.info rg k) in
  let a =
    {
      rg;
      nbounds;
      nparams = fn.nparams;
      live_at;
      infos;
      templates = Hashtbl.create 64;
      out = Hashtbl.create 64;
      keep = Hashtbl.create 64;
      pinned = Hashtbl.create 16;
    }
  in
  (* Prepass: templates (iteration-invariant; remat attempts pin slots). *)
  for k = 0 to nbounds - 1 do
    IntSet.iter
      (fun r -> Hashtbl.replace a.templates (k, r) (template_of a k r))
      a.live_at.(k)
  done;
  (* Fixpoint. Values move Top -> concrete -> VSlot(keep); keep is sticky. *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed do
    changed := false;
    incr rounds;
    if !rounds > 4 * (nbounds + 2) then failwith "Ckpt.Pass: plan fixpoint diverged";
    for k = 0 to nbounds - 1 do
      IntSet.iter
        (fun r ->
          let v =
            if Hashtbl.mem a.pinned (k, r) || is_keep a k r then begin
              set_keep a k r;
              VSlot
            end
            else
              match Hashtbl.find a.templates (k, r) with
              | Seg (Some e) -> VRemat e
              | Seg None ->
                set_keep a k r;
                VSlot
              | Vias [] ->
                set_keep a k r;
                VSlot
              | Vias vias -> (
                try
                  let m =
                    List.fold_left
                      (fun acc via ->
                        let v =
                          match via with
                          | Fixed e -> VRemat e
                          | Blocked -> raise Keep_it
                          | Inherit (p, path_defs) -> (
                            match get_plan a p r with
                            | Top -> Top
                            | VSlot -> VSlot
                            | VRemat e ->
                              (* inherited remat: every pinned slot it reads
                                 must still be valid at k *)
                              let ok =
                                List.for_all
                                  (fun r2 ->
                                    permanent_slot a r2
                                    || ((not (IntSet.mem r2 path_defs))
                                       && plan_equal (get_plan a k r2) VSlot))
                                  (Slice.slot_refs e)
                              in
                              if ok then VRemat e else raise Keep_it)
                        in
                        match (acc, v) with
                        | Top, x | x, Top -> x
                        | x, y when plan_equal x y -> x
                        | _ -> raise Keep_it)
                      Top vias
                  in
                  m
                with Keep_it ->
                  set_keep a k r;
                  VSlot)
          in
          if not (plan_equal v (get_plan a k r)) then begin
            Hashtbl.replace a.out (k, r) v;
            changed := true
          end)
        a.live_at.(k)
    done
  done;
  (* Any value still Top (e.g. unreachable cycles) keeps its checkpoint. *)
  for k = 0 to nbounds - 1 do
    IntSet.iter
      (fun r ->
        match get_plan a k r with
        | Top ->
          Hashtbl.replace a.out (k, r) VSlot;
          set_keep a k r
        | VSlot | VRemat _ -> ())
      a.live_at.(k)
  done;
  a

(* ---- step 3: apply pruning and build slices ---- *)

let remove_pruned (a : analysis) (fn : Prog.func) : Prog.func * int =
  let kept = ref 0 in
  let blocks =
    Array.mapi
      (fun bi (blk : Prog.block) ->
        (* reverse walk: a Ckpt belongs to the next Boundary after it *)
        let rev = List.rev blk.instrs in
        let rec walk instrs current acc =
          match instrs with
          | [] -> acc
          | (Types.Boundary _ as b) :: rest ->
            let ii = List.length rest in
            let k = Regions.boundary_index a.rg ~bi ~ii in
            walk rest (Some k) (b :: acc)
          | (Types.Ckpt r as c) :: rest -> (
            match current with
            | Some k when is_keep a k r ->
              incr kept;
              walk rest current (c :: acc)
            | Some _ -> walk rest current acc (* pruned *)
            | None -> failwith "Ckpt.Pass: dangling checkpoint")
          | ins :: rest -> walk rest None (ins :: acc)
        in
        { blk with instrs = walk rev None [] })
      fn.blocks
  in
  ({ fn with blocks }, !kept)

let slices_of (a : analysis) : (int, Slice.t) Hashtbl.t =
  let tbl = Hashtbl.create (max 4 a.nbounds) in
  Array.iteri
    (fun k (b : Regions.bpos) ->
      let slice =
        IntSet.elements a.live_at.(k)
        |> List.map (fun r ->
               match get_plan a k r with
               | VSlot | Top -> (r, Slice.ESlot r)
               | VRemat e -> (r, e))
      in
      Hashtbl.replace tbl b.id slice)
    a.rg.bounds;
  tbl

type result = {
  fn : Prog.func;
  slices : (int, Slice.t) Hashtbl.t; (* boundary id -> recovery slice *)
  inserted : int;                    (* checkpoints inserted before pruning *)
  kept : int;                        (* checkpoints surviving pruning *)
}

(** Full checkpoint pass over one region-formed function. With
    [prune = false] every inserted checkpoint is kept (the iDO-like
    configuration used by the ablation study, Fig. 15). *)
let run_func ?(prune = true) (fn : Prog.func) : result =
  Obs.span_begin ~cat:"compiler" "ckpt-insert";
  let fn1, inserted = insert_checkpoints fn in
  Obs.span_end ();
  Obs.span_begin ~cat:"compiler" "penny-analyze";
  let a = analyze fn1 in
  Obs.span_end ();
  if prune then begin
    Obs.span_begin ~cat:"compiler" "penny-prune";
    let fn2, kept = remove_pruned a fn1 in
    Obs.span_end ();
    Obs.span_begin ~cat:"compiler" "slice-gen";
    let slices = slices_of a in
    Obs.span_end ();
    { fn = fn2; slices; inserted; kept }
  end
  else begin
    let tbl = Hashtbl.create (max 4 a.nbounds) in
    Array.iter
      (fun (b : Regions.bpos) ->
        let k = Regions.boundary_index a.rg ~bi:b.bi ~ii:b.ii in
        let slice =
          IntSet.elements a.live_at.(k) |> List.map (fun r -> (r, Slice.ESlot r))
        in
        Hashtbl.replace tbl b.id slice)
      a.rg.bounds;
    { fn = fn1; slices = tbl; inserted; kept = inserted }
  end
