(** The campaign's coverage map. A cell is a short string key with a
    category prefix:

    - ["rule:<config>:<rule>:<severity>"] — a verifier rule fired on
      this program under that compile configuration;
    - ["fault:<class>:<outcome>"] — an adversarial fault class ended in
      recovered/degraded/refused;
    - ["crash:*"], ["explicit:*"], ["monitor:*"] — dynamic oracle
      outcomes;
    - ["shape:*"] — region-shape features of the compiled program (loop
      headers, alias classes, atomics, flush patterns, dynamic boundary
      and region-length buckets);
    - ["outcome:*"] — how far the input got through the oracle.

    Inputs that light up a cell no map entry covers yet are retained in
    the corpus. Each cell remembers whether a fresh generator program or
    a mutant reached it first, so reports can show what mutation buys
    over generation alone. *)

type origin = Gen | Mut

type t

val create : unit -> t
val mem : t -> string -> bool
val count : t -> int
val count_origin : t -> origin -> int

(** Add cells; returns how many were new. The first writer's [origin]
    sticks. *)
val add : t -> origin:origin -> string list -> int

(** (cell, origin) pairs in insertion order — the persisted form. *)
val to_list : t -> (string * origin) list

val of_list : (string * origin) list -> t

(** Distinct cells, sorted. *)
val cells_sorted : t -> string list

(** (category-prefix, cell count), sorted by category. *)
val by_category : t -> (string * int) list

(** Power-of-two bucket of a non-negative count (0, 1, 2, 4, ... capped
    at 65536) — coarse enough that coverage saturates, fine enough that
    "deeper" still reads as new. *)
val bucket : int -> int

(** Region-shape feature cells of a compiled program plus one dynamic
    trace of it. *)
val shape_cells :
  Cwsp_compiler.Pipeline.compiled -> trace:Cwsp_interp.Trace.t -> string list
