(* ddmin over IR programs. All phases run to a joint fixpoint or until
   the predicate-evaluation budget is spent. *)

open Cwsp_ir

(* Delete flat instruction positions [lo, hi) of a function. *)
let delete_range (fn : Prog.func) lo hi =
  let k = ref (-1) in
  let blocks =
    Array.map
      (fun (b : Prog.block) ->
        {
          b with
          instrs =
            List.filter
              (fun _ ->
                incr k;
                !k < lo || !k >= hi)
              b.instrs;
        })
      fn.blocks
  in
  { fn with blocks }

let minimize ?(budget = 3000) ~pred (prog : Prog.t) : Prog.t =
  let budget = ref budget in
  let try_ cand =
    !budget > 0
    && begin
         decr budget;
         Validate.check cand = [] && (try pred cand with _ -> false)
       end
  in
  let cur = ref prog in
  let changed = ref true in
  while !changed && !budget > 0 do
    changed := false;
    (* 1. drop whole functions (repeat: removing a caller frees its
       callees, e.g. the allocator chain) *)
    let rec drop_funcs () =
      let dropped = ref false in
      List.iter
        (fun (name, _) ->
          if name <> (!cur).main then begin
            let cand =
              { !cur with funcs = List.filter (fun (n, _) -> n <> name) (!cur).funcs }
            in
            if try_ cand then begin
              cur := cand;
              dropped := true;
              changed := true
            end
          end)
        (!cur).funcs;
      if !dropped && !budget > 0 then drop_funcs ()
    in
    drop_funcs ();
    (* 2. drop globals *)
    List.iter
      (fun (g : Prog.global) ->
        let cand =
          {
            !cur with
            globals =
              List.filter (fun (x : Prog.global) -> x.gname <> g.gname) (!cur).globals;
          }
        in
        if try_ cand then begin
          cur := cand;
          changed := true
        end)
      (!cur).globals;
    (* 3. straighten branches: a Br collapsed to a Jmp disconnects loop
       bodies, which phase 4 then deletes wholesale *)
    List.iter
      (fun (name, _) ->
        match List.assoc_opt name (!cur).funcs with
        | None -> ()
        | Some fn0 ->
          Array.iteri
            (fun bi _ ->
              (* re-read the block each time: once a Br became a Jmp it
                 must not be "rewritten" again (a no-op candidate would
                 burn the budget without progress) *)
              match List.assoc_opt name (!cur).funcs with
              | Some (fn : Prog.func) when bi < Array.length fn.blocks -> (
                match fn.blocks.(bi).term with
                | Types.Br (_, a, bl) ->
                  List.iter
                    (fun target ->
                      match List.assoc_opt name (!cur).funcs with
                      | Some (fn : Prog.func) -> (
                        match fn.blocks.(bi).term with
                        | Types.Br _ ->
                          let blocks = Array.copy fn.blocks in
                          blocks.(bi) <-
                            { (blocks.(bi)) with term = Types.Jmp target };
                          let cand = Prog.with_func !cur { fn with blocks } in
                          if try_ cand then begin
                            cur := cand;
                            changed := true
                          end
                        | _ -> ())
                      | None -> ())
                    [ a; bl ]
                | _ -> ())
              | _ -> ())
            fn0.blocks)
      (!cur).funcs;
    (* 4. ddmin over each function's flat instruction list *)
    List.iter
      (fun (name, _) ->
        let count () =
          match List.assoc_opt name (!cur).funcs with
          | Some fn -> Prog.instr_count fn
          | None -> 0
        in
        let chunk = ref (max 1 (count () / 2)) in
        while !chunk >= 1 && !budget > 0 do
          let start = ref 0 in
          while !start < count () && !budget > 0 do
            (match List.assoc_opt name (!cur).funcs with
            | None -> start := max_int
            | Some fn ->
              let n = Prog.instr_count fn in
              let hi = min (!start + !chunk) n in
              let cand = Prog.with_func !cur (delete_range fn !start hi) in
              if try_ cand then begin
                cur := cand;
                changed := true
                (* positions shifted down; rescan from the same start *)
              end
              else start := !start + !chunk);
            ()
          done;
          if !chunk = 1 then chunk := 0 else chunk := !chunk / 2
        done)
      (!cur).funcs;
  done;
  !cur
