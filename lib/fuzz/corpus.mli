(** Persistent on-disk corpus and campaign state.

    Layout under the campaign directory:

    - [corpus/<fp>.ir] — retained programs, printed with
      [Pp.program_str] (reloaded with [Parse.program]); [<fp>] is the
      16-hex-digit FNV-1a content fingerprint, so identical programs
      written by concurrent shards collapse to one file and creation is
      first-writer-wins (an existing file is never rewritten);
    - [findings/<fp>.ir] — auto-minimized counterexamples;
    - [state-<i>of<n>] — one shard's resumable campaign state: master
      seed, batch cursor, exec/discard counters, the retention order
      (with per-entry origin), the coverage map in insertion order, and
      the deduplicated findings. Written atomically (tmp + rename) at
      batch boundaries only, so a killed campaign resumes from the last
      completed batch and — because item randomness streams off the
      absolute exec index — reaches the exact report a never-killed run
      produces. *)

open Cwsp_ir

val fingerprint : Prog.t -> string

type t (* an opened campaign directory *)

val open_dir : string -> t
val dir : t -> string

(** Write a corpus program; first writer wins. Returns the fingerprint. *)
val save_program : t -> Prog.t -> string

(** Write a minimized counterexample under [findings/]. *)
val save_finding : t -> Prog.t -> string

(** Write a finding's flight-recorder dump as [findings/<fp>.flight],
    next to its [.ir]; first writer wins. *)
val save_flight : t -> fp:string -> string -> unit

val load_program : t -> string -> Prog.t option

type saved_finding = {
  sf_key : string;       (** [Oracle.finding_key] — the dedupe key *)
  sf_kind : string;
  sf_fp : string;        (** fingerprint of the minimized program *)
  sf_instrs : int;       (** instruction count after minimization *)
  sf_detail : string;
}

type state = {
  mutable s_master_seed : int;
  mutable s_shard : int * int;
  mutable s_batch : int;          (** items per batch *)
  mutable s_next_batch : int;     (** first batch not yet completed *)
  mutable s_execs : int;
  mutable s_discards : int;
  mutable s_retained : (string * Coverage.origin) list; (** fp, in order *)
  s_cov : Coverage.t;
  mutable s_findings : saved_finding list; (** discovery order *)
}

val fresh_state : master_seed:int -> shard:int * int -> batch:int -> state

(** Atomic write of this shard's state file. *)
val save_state : t -> state -> unit

(** Load this shard's state file, if present and compatible with the
    given campaign parameters ([None] otherwise — the campaign then
    starts fresh). *)
val load_state :
  t -> master_seed:int -> shard:int * int -> batch:int -> state option
