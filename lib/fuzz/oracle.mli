(** The WITCHER-style output-equivalence oracle, one program at a time.

    A program is first run uninstrumented (the baseline), with every
    dynamic memory access screened: anything touching the hardware
    checkpoint area or a negative address is a wild program — discarded,
    not a finding (mutation freely manufactures such pointers, and they
    would fault the instrumented run for reasons that indict nobody).

    Surviving programs are compiled under [cwsp] and [cwsp-explicit] and
    pushed through the whole stack: verifier-rule firings become
    coverage cells; a statically accepted program must then (1) produce
    the baseline's outputs and final data memory, (2) recover to a
    bit-exact state from a power failure in every inter-boundary
    interval, (3) survive the adversarial fault classes hardened, and
    (4) — when the race tier certified an SPMD worker — stay race-free
    under the dynamic vector-clock monitor. Any dynamic divergence of a
    statically certified program is a verifier escape: the
    campaign-fatal finding class.

    Static errors from the race tier are verdicts about the source
    program (mutants race on purpose) and count as coverage only; static
    errors from every other tier indict the compiler, whose obligations
    hold for arbitrary valid input. *)

open Cwsp_ir

(** Injectable compiler, so campaigns can fuzz a deliberately broken
    pipeline (the bug-reinjection acceptance tests). *)
type compile_fn =
  Cwsp_compiler.Pipeline.config -> Prog.t -> Cwsp_compiler.Pipeline.compiled

val default_compile : compile_fn

type finding_kind =
  | Compile_crash       (** the pipeline raised on valid input *)
  | Static_reject       (** non-race verifier error on a fresh compile *)
  | Fault_escape        (** hardened protocol committed a wrong image *)
  | Verifier_escape     (** statically certified, dynamically diverged *)

val kind_name : finding_kind -> string
val kind_of_name : string -> finding_kind option

type finding = { fk : finding_kind; detail : string }

(** Dedupe key: kind plus the leading token of the detail (rule name,
    fault class, oracle stage) — one corpus entry per distinct bug
    signature, not per crash point. *)
val finding_key : finding -> string

type eval = {
  e_cells : string list;        (** distinct, sorted *)
  e_findings : finding list;
  e_discarded : string option;  (** why the input left the pool early *)
}

val is_fatal : eval -> bool

(** Crash points derived from the trace's actual boundary structure: one
    step index per inter-boundary interval (including the tail after the
    last boundary), evenly thinned to [max_points] when there are more
    intervals. Empty for traces too short to crash inside. *)
val boundary_crash_points :
  Cwsp_util.Rng.t -> trace:Trace.t -> max_points:int -> int list

(** Evaluate one program. [rng] drives crash-point jitter, fault-class
    selection and seeds; stream it per exec index for deterministic
    campaigns. *)
val evaluate : ?compile:compile_fn -> Cwsp_util.Rng.t -> Prog.t -> eval

(** Does [prog] still reproduce a finding of this kind/detail signature?
    The minimizer's predicate: cheap, deterministic, and false on any
    exception. *)
val reproduces :
  ?compile:compile_fn -> kind:finding_kind -> detail:string -> Prog.t -> bool

(** Forensic companion to a finding: re-run the failing experiment with
    the in-NVM flight recorder on and return the
    [Cwsp_flight.Recorder] dump artifact (feed to [cwsp_postmortem]).
    [Fault_escape] replays the [reproduces] search at the escaping crash
    point; [Verifier_escape]s of the crash/explicit stages replay the
    diverging power cut. [None] for static finding kinds or when the
    replay no longer fails. Deterministic, and never changes a verdict —
    the recorder ring is invisible to every oracle comparison. *)
val flight_dump :
  ?compile:compile_fn ->
  kind:finding_kind ->
  detail:string ->
  Prog.t ->
  string option
