(* Batch-round campaign driver. Determinism contract: every exec index
   draws from [Rng.stream master index], items are built from the corpus
   as of their batch start, evaluation fans out on the domain pool, and
   the merge is sequential in index order — so the report depends only
   on (master seed, shard, batch size, exec budget), never on [jobs] or
   wall-clock, and a kill + resume replays to identical bytes. *)

open Cwsp_ir
module Obs = Cwsp_obs.Obs
module Executor = Cwsp_core.Executor
module Rng = Cwsp_util.Rng

type params = {
  p_dir : string;
  p_master_seed : int;
  p_shard : int * int;
  p_batch : int;
  p_jobs : int;
  p_min_budget : int;
}

let default_params ~dir =
  {
    p_dir = dir;
    p_master_seed = 1;
    p_shard = (0, 1);
    p_batch = 64;
    p_jobs = 1;
    p_min_budget = 3000;
  }

type outcome = {
  o_execs : int;
  o_discards : int;
  o_corpus : int;
  o_cells : int;
  o_new_cells : int;
  o_findings : int;
  o_fatal : bool;
  o_report : string;
}

let c_execs = Obs.Counter.make "fuzz.execs"
let c_discards = Obs.Counter.make "fuzz.discards"
let c_retained = Obs.Counter.make "fuzz.retained"
let c_findings = Obs.Counter.make "fuzz.findings"
let h_batch_us = Obs.Hist.make "fuzz.batch_us"

(* Mutation rng and oracle rng stream off disjoint index spaces so a
   mutator tweak never shifts the oracle's crash-point jitter. *)
let oracle_stream_base = 0x4000_0000

(* ---- item construction ---- *)

let fresh_program rng =
  let seed = 1 + Rng.int rng 0x3fff_ffff in
  if Rng.int rng 5 = 0 then fst (Gen.gen_spmd_program seed)
  else Gen.gen_program seed

(* One exec's input: a fresh generator program when the corpus is empty
   or on a 1-in-4 draw, otherwise 1-3 stacked mutations of a corpus pick
   (donor: another corpus pick, or a fresh program). *)
let build_item ~master ~corpus j : Coverage.origin * Prog.t =
  let rng = Rng.stream master j in
  let ncorp = Array.length corpus in
  if ncorp = 0 || Rng.int rng 4 = 0 then (Coverage.Gen, fresh_program rng)
  else begin
    let base = corpus.(Rng.int rng ncorp) in
    let donor =
      if ncorp > 1 && Rng.bool rng then corpus.(Rng.int rng ncorp)
      else fresh_program rng
    in
    let stack = 1 + Rng.int rng 3 in
    let applied = ref false in
    let prog = ref base in
    for _ = 1 to stack do
      match Mutate.mutate rng ~donor !prog with
      | Some (_, p') ->
        applied := true;
        prog := p'
      | None -> ()
    done;
    if !applied then (Coverage.Mut, !prog) else (Coverage.Gen, fresh_program rng)
  end

(* ---- report ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let is_fatal_state (st : Corpus.state) =
  List.exists
    (fun (f : Corpus.saved_finding) ->
      f.sf_kind = Oracle.kind_name Oracle.Verifier_escape)
    st.s_findings

(* Deterministic: no timestamps, findings in discovery order, cells
   sorted. Byte-identical across [--jobs] widths and kill/resume. *)
let report_json (st : Corpus.state) =
  let b = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"master_seed\": %d,\n" st.s_master_seed;
  add "  \"shard\": \"%d/%d\",\n" (fst st.s_shard) (snd st.s_shard);
  add "  \"batch\": %d,\n" st.s_batch;
  add "  \"batches_done\": %d,\n" st.s_next_batch;
  add "  \"execs\": %d,\n" st.s_execs;
  add "  \"discards\": %d,\n" st.s_discards;
  add "  \"corpus\": %d,\n" (List.length st.s_retained);
  add "  \"corpus_gen\": %d,\n"
    (List.length (List.filter (fun (_, o) -> o = Coverage.Gen) st.s_retained));
  add "  \"corpus_mut\": %d,\n"
    (List.length (List.filter (fun (_, o) -> o = Coverage.Mut) st.s_retained));
  add "  \"cells_total\": %d,\n" (Coverage.count st.s_cov);
  add "  \"cells_gen\": %d,\n" (Coverage.count_origin st.s_cov Coverage.Gen);
  add "  \"cells_mut\": %d,\n" (Coverage.count_origin st.s_cov Coverage.Mut);
  add "  \"by_category\": {";
  List.iteri
    (fun i (cat, n) ->
      add "%s\"%s\": %d" (if i = 0 then " " else ", ") (json_escape cat) n)
    (Coverage.by_category st.s_cov);
  add " },\n";
  add "  \"findings\": [";
  List.iteri
    (fun i (f : Corpus.saved_finding) ->
      add "%s\n    { \"key\": \"%s\", \"kind\": \"%s\", \"fp\": \"%s\", \
           \"instrs\": %d, \"detail\": \"%s\" }"
        (if i = 0 then "" else ",")
        (json_escape f.sf_key) (json_escape f.sf_kind) f.sf_fp f.sf_instrs
        (json_escape f.sf_detail))
    (List.rev st.s_findings);
  add "%s],\n" (if st.s_findings = [] then "" else "\n  ");
  add "  \"fatal\": %b,\n" (is_fatal_state st);
  add "  \"cells\": [";
  List.iteri
    (fun i c -> add "%s\n    \"%s\"" (if i = 0 then "" else ",") (json_escape c))
    (Coverage.cells_sorted st.s_cov);
  add "%s]\n" (if Coverage.count st.s_cov = 0 then "" else "\n  ");
  add "}\n";
  Buffer.contents b

(* ---- the campaign loop ---- *)

let run ?(compile = Oracle.default_compile) ?max_seconds (p : params) ~execs =
  let shard_i, shard_n = p.p_shard in
  if shard_n <= 0 || shard_i < 0 || shard_i >= shard_n then
    invalid_arg "Campaign.run: shard";
  if p.p_batch <= 0 then invalid_arg "Campaign.run: batch";
  let c = Corpus.open_dir p.p_dir in
  let st =
    match
      Corpus.load_state c ~master_seed:p.p_master_seed ~shard:p.p_shard
        ~batch:p.p_batch
    with
    | Some st -> st
    | None -> Corpus.fresh_state ~master_seed:p.p_master_seed ~shard:p.p_shard ~batch:p.p_batch
  in
  let cells_before = Coverage.count st.s_cov in
  let master = Rng.create p.p_master_seed in
  (* in-memory cache of retained programs; misses reload from disk *)
  let progs : (string, Prog.t) Hashtbl.t = Hashtbl.create 64 in
  let corpus_array () =
    Array.of_list
      (List.filter_map
         (fun (fp, _) ->
           match Hashtbl.find_opt progs fp with
           | Some prog -> Some prog
           | None -> (
             match Corpus.load_program c fp with
             | Some prog ->
               Hashtbl.replace progs fp prog;
               Some prog
             | None -> None))
         st.s_retained)
  in
  let t0 = Obs.now_us () in
  let over_deadline () =
    match max_seconds with
    | None -> false
    | Some s -> (Obs.now_us () -. t0) /. 1_000_000. >= s
  in
  let nbatches = (execs + p.p_batch - 1) / p.p_batch in
  let b = ref st.s_next_batch in
  while !b < nbatches && not (over_deadline ()) do
    let bt0 = Obs.now_us () in
    (* batches are always full width — a batch's item set must not
       depend on this invocation's exec budget, or a stop at an
       unaligned budget would mark a partly-covered batch as done and
       resume past the gap (the budget rounds up to whole batches) *)
    let lo = !b * p.p_batch in
    let hi = (!b + 1) * p.p_batch in
    let idxs =
      List.filter
        (fun j -> j mod shard_n = shard_i)
        (List.init (hi - lo) (fun k -> lo + k))
    in
    let corpus = corpus_array () in
    let items =
      Array.of_list (List.map (fun j -> (j, build_item ~master ~corpus j)) idxs)
    in
    let evals =
      Executor.map_pool ~cat:"fuzz"
        ~label:(fun i -> Printf.sprintf "exec-%d" (fst items.(i)))
        ~jobs:p.p_jobs
        (fun (j, (_, prog)) ->
          Oracle.evaluate ~compile (Rng.stream master (oracle_stream_base + j)) prog)
        items
    in
    (* sequential merge, in exec-index order *)
    Array.iteri
      (fun k (_, (origin, prog)) ->
        let ev = evals.(k) in
        st.s_execs <- st.s_execs + 1;
        Obs.Counter.incr c_execs;
        (match ev.Oracle.e_discarded with
        | Some _ ->
          st.s_discards <- st.s_discards + 1;
          Obs.Counter.incr c_discards
        | None -> ());
        let fresh = Coverage.add st.s_cov ~origin ev.e_cells in
        if fresh > 0 && ev.e_discarded = None then begin
          let fp = Corpus.save_program c prog in
          if not (List.exists (fun (fp', _) -> fp' = fp) st.s_retained) then begin
            st.s_retained <- st.s_retained @ [ (fp, origin) ];
            Hashtbl.replace progs fp prog;
            Obs.Counter.incr c_retained
          end
        end;
        List.iter
          (fun (f : Oracle.finding) ->
            let key = Oracle.finding_key f in
            if
              not
                (List.exists
                   (fun (sf : Corpus.saved_finding) -> sf.sf_key = key)
                   st.s_findings)
            then begin
              let pred =
                Oracle.reproduces ~compile ~kind:f.fk ~detail:f.detail
              in
              let mini =
                (* only shrink when the signature deterministically
                   reproduces on the unminimized program *)
                if try pred prog with _ -> false then
                  Minimize.minimize ~budget:p.p_min_budget ~pred prog
                else prog
              in
              let ffp = Corpus.save_finding c mini in
              (* forensic companion: replay the failing experiment with
                 the flight recorder on and ship the dump with the .ir *)
              (match
                 Oracle.flight_dump ~compile ~kind:f.fk ~detail:f.detail mini
               with
              | Some dump -> Corpus.save_flight c ~fp:ffp dump
              | None -> ());
              st.s_findings <-
                {
                  Corpus.sf_key = key;
                  sf_kind = Oracle.kind_name f.fk;
                  sf_fp = ffp;
                  sf_instrs = Prog.total_instr_count mini;
                  sf_detail = f.detail;
                }
                :: st.s_findings;
              Obs.Counter.incr c_findings
            end)
          ev.e_findings)
      items;
    st.s_next_batch <- !b + 1;
    Corpus.save_state c st;
    Obs.Hist.add h_batch_us (Obs.now_us () -. bt0);
    incr b
  done;
  {
    o_execs = st.s_execs;
    o_discards = st.s_discards;
    o_corpus = List.length st.s_retained;
    o_cells = Coverage.count st.s_cov;
    o_new_cells = Coverage.count st.s_cov - cells_before;
    o_findings = List.length st.s_findings;
    o_fatal = is_fatal_state st;
    o_report = report_json st;
  }
