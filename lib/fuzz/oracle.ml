(* The per-program oracle stack: baseline wild-screen, compile, verify,
   output equivalence, boundary-derived crash sweep, adversarial fault
   probes, explicit-persistency sweep, dynamic race cross-check. *)

open Cwsp_ir
open Cwsp_util
module Pipeline = Cwsp_compiler.Pipeline
module Machine = Cwsp_interp.Machine
module Harness = Cwsp_recovery.Harness
module Fault = Cwsp_recovery.Fault
module Verify = Cwsp_verify.Verify
module Diag = Cwsp_verify.Diag

type compile_fn = Pipeline.config -> Prog.t -> Pipeline.compiled

let default_compile config prog = Pipeline.compile ~config prog

type finding_kind = Compile_crash | Static_reject | Fault_escape | Verifier_escape

let kind_name = function
  | Compile_crash -> "compile-crash"
  | Static_reject -> "static-reject"
  | Fault_escape -> "fault-escape"
  | Verifier_escape -> "verifier-escape"

let kind_of_name = function
  | "compile-crash" -> Some Compile_crash
  | "static-reject" -> Some Static_reject
  | "fault-escape" -> Some Fault_escape
  | "verifier-escape" -> Some Verifier_escape
  | _ -> None

type finding = { fk : finding_kind; detail : string }

let first_token s =
  match String.index_opt s ' ' with
  | Some i -> String.sub s 0 i
  | None -> s

let finding_key f = kind_name f.fk ^ ":" ^ first_token f.detail

type eval = {
  e_cells : string list;
  e_findings : finding list;
  e_discarded : string option;
}

let is_fatal e = List.exists (fun f -> f.fk = Verifier_escape) e.e_findings

(* keep details single-line and short enough for the state file *)
let clean s =
  let s = String.map (fun c -> if c = '\n' || c = '\r' || c = '\t' then ' ' else c) s in
  if String.length s > 200 then String.sub s 0 200 else s

(* ---- baseline run with the wild-address screen ---- *)

let baseline_fuel = 2_000_000
let instrumented_fuel = 10_000_000

type base_run = { br_outputs : int list; br_data : (int * int) list }

let data_words mem =
  let out = ref [] in
  Memory.iter
    (fun a v ->
      if not (Layout.is_ckpt_addr a || Layout.is_flight_addr a) then
        out := (a, v) :: !out)
    mem;
  List.sort compare !out

exception Wild of int

(* Step the source program, screening every data access: negative,
   misaligned, checkpoint-area or flight-recorder addresses mean the
   mutant manufactured a pointer no sane program holds — such inputs are
   discarded before they can fault the instrumented stack (or stomp the
   forensic ring) for uninteresting reasons. *)
let baseline_run (prog : Prog.t) : (base_run, string) result =
  let m = Machine.create (Machine.link prog) in
  let steps = ref 0 in
  let screen base off (fr : Machine.frame) =
    let a = fr.regs.(base) + off in
    if a < 0 || a land 7 <> 0 || Layout.is_ckpt_addr a || Layout.is_flight_addr a
    then raise (Wild a)
  in
  try
    while m.status = Machine.Running && !steps < baseline_fuel do
      incr steps;
      (match m.frames with
      | fr :: _ when fr.idx < Array.length fr.lf.code.(fr.blk) -> (
        match fr.lf.code.(fr.blk).(fr.idx) with
        | Types.Load (_, b, o) | Types.Store (b, o, _) | Types.Flush (b, o) ->
          screen b o fr
        | Types.Atomic_rmw (_, _, b, o, _) | Types.Cas (_, b, o, _, _) ->
          screen b o fr
        | _ -> ())
      | _ -> ());
      Machine.step m Machine.no_hooks
    done;
    if m.status = Machine.Running then Error "fuel"
    else Ok { br_outputs = Machine.outputs m; br_data = data_words m.mem }
  with
  | Wild _ -> Error "wild"
  | Machine.Trap _ -> Error "trap"
  | _ -> Error "trap"

(* ---- crash-point schedule from the trace's boundary structure ---- *)

let boundary_crash_points rng ~trace ~max_points =
  let n = Trace.length trace in
  if n < 4 then []
  else begin
    let bps = ref [] in
    for i = 0 to n - 1 do
      if Event.tag (Trace.get trace i) = Event.tag_boundary then bps := i :: !bps
    done;
    let bps = List.rev !bps in
    (* one interval per boundary gap, plus the tail after the last
       boundary; crash points stay in [1, n-2] so recovery has work *)
    let hi_cap = n - 2 in
    let segs = ref [] and prev = ref 1 in
    List.iter
      (fun b ->
        let hi = min b hi_cap in
        if hi >= !prev then segs := (!prev, hi) :: !segs;
        prev := b + 1)
      bps;
    if hi_cap >= !prev then segs := (!prev, hi_cap) :: !segs;
    let segs = Array.of_list (List.rev !segs) in
    let nseg = Array.length segs in
    if nseg = 0 then [ 1 + Rng.int rng (max 1 (n - 2)) ]
    else begin
      let chosen =
        if nseg <= max_points then Array.to_list segs
        else if max_points <= 1 then [ segs.(0) ]
        else
          List.sort_uniq compare
            (List.init max_points (fun k -> segs.(k * (nseg - 1) / (max_points - 1))))
      in
      List.sort_uniq compare
        (List.map (fun (lo, hi) -> lo + Rng.int rng (hi - lo + 1)) chosen)
    end
  end

(* ---- the full oracle stack ---- *)

let race_rule = function
  | Diag.Data_race | Diag.Unlocked_shared_write | Diag.Tid_overlap_unprovable
  | Diag.Redundant_atomic ->
    true
  | _ -> false

let spmd_worker (prog : Prog.t) =
  match Prog.find_func prog "worker" with
  | Some w when w.nparams = 1 -> true
  | _ -> false

let evaluate ?(compile = default_compile) rng (prog : Prog.t) : eval =
  let cells = ref [] and findings = ref [] in
  let cell c = cells := c :: !cells in
  let finding fk detail = findings := { fk; detail = clean detail } :: !findings in
  let finish discarded =
    {
      e_cells = List.sort_uniq compare !cells;
      e_findings = List.rev !findings;
      e_discarded = discarded;
    }
  in
  if Validate.check prog <> [] then begin
    cell "outcome:invalid";
    finish (Some "invalid")
  end
  else if not (Wellformed.defined prog) then begin
    (* an uninitialized register read would be misreported downstream as
       a slice defect of the compiler — screen it like a wild address *)
    cell "outcome:undef";
    finish (Some "undef")
  end
  else
    match baseline_run prog with
    | Error why ->
      cell ("outcome:baseline-" ^ why);
      finish (Some ("baseline-" ^ why))
    | Ok base ->
      cell "outcome:ok";
      (* ---- implicit mode: the full cWSP pipeline ---- *)
      (match compile Pipeline.cwsp prog with
      | exception e -> finding Compile_crash ("cwsp: " ^ Printexc.to_string e)
      | compiled -> (
        let diags = try Some (Verify.run compiled) with _ -> None in
        match diags with
        | None -> finding Compile_crash "cwsp: verifier raised"
        | Some diags ->
          List.iter
            (fun (r, s) -> cell (Printf.sprintf "rule:cwsp:%s:%s" r s))
            (Verify.fired diags);
          let errs = Verify.errors diags in
          let compiler_errs =
            List.filter (fun (d : Diag.t) -> not (race_rule d.rule)) errs
          in
          (match compiler_errs with
          | d :: _ ->
            finding Static_reject
              (Printf.sprintf "%s cwsp: %s" (Diag.rule_name d.rule) d.message)
          | [] -> ());
          if errs = [] then begin
            (* statically certified: every dynamic divergence from here
               on is a verifier escape *)
            match Machine.trace_of_program ~fuel:instrumented_fuel compiled.prog with
            | exception e ->
              cell "crash:trap";
              finding Verifier_escape
                ("semantic instrumented run failed: " ^ Printexc.to_string e)
            | m, tr ->
              List.iter cell (Coverage.shape_cells compiled ~trace:tr);
              if Machine.outputs m <> base.br_outputs then
                finding Verifier_escape "semantic outputs diverge (cwsp vs source)"
              else if data_words m.mem <> base.br_data then
                finding Verifier_escape "semantic final data memory diverges"
              else begin
                (* WITCHER sweep: crash once per inter-boundary interval *)
                List.iter
                  (fun crash_at ->
                    match
                      Harness.validate ~seed:(Rng.int rng 1_000_000) ~crash_at
                        compiled
                    with
                    | Ok _ -> cell "crash:recovered"
                    | Error e ->
                      cell "crash:diverged";
                      finding Verifier_escape (Printf.sprintf "crash @%d: %s" crash_at e))
                  (boundary_crash_points rng ~trace:tr ~max_points:12);
                (* adversarial fault classes: two per exec *)
                let classes = Array.of_list Fault.all in
                let steps = Machine.steps m in
                let i = Rng.int rng (Array.length classes) in
                let j = (i + 1 + Rng.int rng (Array.length classes - 1))
                        mod Array.length classes in
                List.iter
                  (fun ci ->
                    let cls = classes.(ci) in
                    let crash_at = 1 + Rng.int rng (max 1 (steps - 2)) in
                    match
                      Harness.validate_fault ~hardened:true ~fault:cls
                        ~seed:(Rng.int rng 1_000_000) ~crash_at compiled
                    with
                    | Ok r ->
                      let oname =
                        match r.fr_outcome with
                        | Harness.Recovered -> "recovered"
                        | Harness.Degraded -> "degraded"
                        | Harness.Refused -> "refused"
                      in
                      cell (Printf.sprintf "fault:%s:%s" (Fault.name cls) oname);
                      if (not r.fr_state_ok) || r.fr_sweep_failures > 0 then
                        finding Fault_escape
                          (Printf.sprintf "%s crash@%d: wrong final state (%s)"
                             (Fault.name cls) crash_at oname)
                    | Error _ -> cell (Printf.sprintf "fault:%s:skipped" (Fault.name cls)))
                  [ i; j ];
                (* dynamic race cross-check of a certified SPMD worker *)
                if spmd_worker prog then begin
                  let o =
                    Cwsp_interp.Race_monitor.observe ~fuel:400_000 prog
                      ~threads:3 ~worker:"worker"
                  in
                  if o.races <> [] then begin
                    cell "monitor:raced";
                    finding Verifier_escape
                      (Printf.sprintf
                         "monitor saw %d race(s) on a certified worker"
                         (List.length o.races))
                  end
                  else if o.hung then cell "monitor:hung"
                  else cell "monitor:clean"
                end
              end
          end));
      (* ---- explicit mode: the persist tier's dynamic ground truth ---- *)
      (match compile Pipeline.cwsp_explicit prog with
      | exception e ->
        finding Compile_crash ("cwsp-explicit: " ^ Printexc.to_string e)
      | compiled -> (
        let diags = try Some (Verify.run compiled) with _ -> None in
        match diags with
        | None -> finding Compile_crash "cwsp-explicit: verifier raised"
        | Some diags ->
          List.iter
            (fun (r, s) -> cell (Printf.sprintf "rule:cwsp-explicit:%s:%s" r s))
            (Verify.fired diags);
          let errs = Verify.errors diags in
          let compiler_errs =
            List.filter (fun (d : Diag.t) -> not (race_rule d.rule)) errs
          in
          (match compiler_errs with
          | d :: _ ->
            finding Static_reject
              (Printf.sprintf "%s cwsp-explicit: %s" (Diag.rule_name d.rule)
                 d.message)
          | [] -> ());
          if errs = [] then begin
            match Machine.trace_of_program ~fuel:instrumented_fuel compiled.prog with
            | exception e ->
              finding Verifier_escape
                ("explicit instrumented run failed: " ^ Printexc.to_string e)
            | m, tr ->
              if
                Machine.outputs m <> base.br_outputs
                || data_words m.mem <> base.br_data
              then
                finding Verifier_escape "explicit semantics diverge from source"
              else
                List.iter
                  (fun crash_at ->
                    match Harness.validate_explicit ~crash_at compiled with
                    | Ok _ -> cell "explicit:recovered"
                    | Error e ->
                      cell "explicit:diverged";
                      finding Verifier_escape
                        (Printf.sprintf "explicit @%d: %s" crash_at e))
                  (boundary_crash_points rng ~trace:tr ~max_points:6)
          end));
      finish None

(* ---- targeted reproduction predicates for the minimizer ---- *)

let certified_compile (compile : compile_fn) config prog =
  match compile config prog with
  | exception _ -> None
  | compiled ->
    if Verify.errors (Verify.run compiled) = [] then Some compiled else None

let semantic_diverges base compiled =
  match Machine.trace_of_program ~fuel:instrumented_fuel compiled.Pipeline.prog with
  | exception _ -> Some "trap"
  | m, _ ->
    if Machine.outputs m <> base.br_outputs then Some "outputs"
    else if data_words m.mem <> base.br_data then Some "memory"
    else None

let reproduces ?(compile = default_compile) ~kind ~detail (prog : Prog.t) : bool =
  try
    if Validate.check prog <> [] || not (Wellformed.defined prog) then false
    else
      match kind with
      | Compile_crash ->
        (match compile Pipeline.cwsp prog with
        | exception _ -> true
        | _ -> (
          match compile Pipeline.cwsp_explicit prog with
          | exception _ -> true
          | _ -> false))
      | Static_reject ->
        let rule = first_token detail in
        let hits config =
          match compile config prog with
          | exception _ -> false
          | compiled ->
            List.exists
              (fun (d : Diag.t) ->
                (not (race_rule d.rule)) && Diag.rule_name d.rule = rule)
              (Verify.errors (Verify.run compiled))
        in
        hits Pipeline.cwsp || hits Pipeline.cwsp_explicit
      | Fault_escape -> (
        match Fault.of_name (first_token detail) with
        | None -> false
        | Some cls -> (
          match baseline_run prog with
          | Error _ -> false
          | Ok _ -> (
            match certified_compile compile Pipeline.cwsp prog with
            | None -> false
            | Some compiled ->
              let g = Harness.golden_of compiled in
              let escaped crash_at seed =
                match
                  Harness.validate_fault ~golden:g ~hardened:true ~fault:cls
                    ~seed ~crash_at compiled
                with
                | Ok r -> (not r.fr_state_ok) || r.fr_sweep_failures > 0
                | Error _ -> false
              in
              let pts =
                List.filter
                  (fun p -> p >= 1 && p < g.g_steps - 1)
                  [ g.g_steps / 4; g.g_steps / 2; (3 * g.g_steps) / 4 ]
              in
              List.exists (fun p -> List.exists (escaped p) [ 1; 2; 3 ]) pts)))
      | Verifier_escape -> (
        match baseline_run prog with
        | Error _ -> false
        | Ok base -> (
          let stage = first_token detail in
          match stage with
          | "semantic" -> (
            match certified_compile compile Pipeline.cwsp prog with
            | None -> false
            | Some compiled -> semantic_diverges base compiled <> None)
          | "crash" -> (
            match certified_compile compile Pipeline.cwsp prog with
            | None -> false
            | Some compiled -> (
              match
                Machine.trace_of_program ~fuel:instrumented_fuel compiled.prog
              with
              | exception _ -> true
              | _, tr ->
                let rng = Rng.create 0x9e3779b9 in
                List.exists
                  (fun crash_at ->
                    match Harness.validate ~seed:1 ~crash_at compiled with
                    | Ok _ -> false
                    | Error _ -> true)
                  (boundary_crash_points rng ~trace:tr ~max_points:12)))
          | "explicit" -> (
            match certified_compile compile Pipeline.cwsp_explicit prog with
            | None -> false
            | Some compiled -> (
              match
                Machine.trace_of_program ~fuel:instrumented_fuel compiled.prog
              with
              | exception _ -> true
              | m, tr ->
                Machine.outputs m <> base.br_outputs
                || data_words m.mem <> base.br_data
                || List.exists
                     (fun crash_at ->
                       match Harness.validate_explicit ~crash_at compiled with
                       | Ok _ -> false
                       | Error _ -> true)
                     (boundary_crash_points (Rng.create 0x9e3779b9) ~trace:tr
                        ~max_points:6)))
          | "monitor" -> (
            if not (spmd_worker prog) then false
            else
              match certified_compile compile Pipeline.cwsp prog with
              | None -> false
              | Some _ ->
                let o =
                  Cwsp_interp.Race_monitor.observe ~fuel:400_000 prog ~threads:3
                    ~worker:"worker"
                in
                o.races <> [])
          | _ -> false))
  with _ -> false

(* ---- forensic flight dump for a finding ---- *)

(* "crash@12" / "@12" -> 12 *)
let parse_at tok =
  match String.index_opt tok '@' with
  | None -> None
  | Some i ->
    let rest = String.sub tok (i + 1) (String.length tok - i - 1) in
    let rest =
      match String.index_opt rest ':' with
      | Some j -> String.sub rest 0 j
      | None -> rest
    in
    int_of_string_opt rest

let second_token s =
  match String.index_opt s ' ' with
  | None -> None
  | Some i -> Some (first_token (String.sub s (i + 1) (String.length s - i - 1)))

let flight_dump ?(compile = default_compile) ~kind ~detail (prog : Prog.t) :
    string option =
  try
    match kind with
    | Compile_crash | Static_reject -> None
    | Fault_escape -> (
      (* mirror [reproduces]'s search, recorder on; ship the dump of the
         first crash that escapes *)
      match Fault.of_name (first_token detail) with
      | None -> None
      | Some cls -> (
        match baseline_run prog with
        | Error _ -> None
        | Ok _ -> (
          match certified_compile compile Pipeline.cwsp prog with
          | None -> None
          | Some compiled ->
            let g = Harness.golden_of compiled in
            let dump = ref None in
            let escaped crash_at seed =
              match
                Harness.validate_fault ~golden:g ~hardened:true ~flight:true
                  ~fault:cls ~seed ~crash_at compiled
              with
              | Ok r when (not r.fr_state_ok) || r.fr_sweep_failures > 0 ->
                dump := r.fr_flight;
                true
              | _ -> false
            in
            let pts =
              List.filter
                (fun p -> p >= 1 && p < g.g_steps - 1)
                [ g.g_steps / 4; g.g_steps / 2; 3 * g.g_steps / 4 ]
            in
            ignore
              (List.exists (fun p -> List.exists (escaped p) [ 1; 2; 3 ]) pts);
            !dump)))
    | Verifier_escape -> (
      match (first_token detail, second_token detail) with
      | "crash", Some tok -> (
        match (parse_at tok, certified_compile compile Pipeline.cwsp prog) with
        | Some crash_at, Some compiled -> (
          (* no injected fault: a plain power cut at the diverging point,
             recovered by the hardened ladder with the recorder on *)
          match
            Harness.validate_fault ~hardened:true ~flight:true ~seed:1
              ~crash_at compiled
          with
          | Ok r -> r.fr_flight
          | Error _ -> None)
        | _ -> None)
      | "explicit", Some tok -> (
        match
          (parse_at tok, certified_compile compile Pipeline.cwsp_explicit prog)
        with
        | Some crash_at, Some compiled ->
          let dump = ref None in
          (match
             Harness.validate_explicit ~flight:true
               ~on_flight:(fun d -> dump := Some d)
               ~crash_at compiled
           with
          | Ok _ | Error _ -> ());
          !dump
        | _ -> None)
      | _ -> None)
  with _ -> None
