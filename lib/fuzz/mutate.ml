(* IR mutation operators. All operators work on flat instruction
   positions (block-order index over a function's instruction list,
   terminators excluded) and rebuild immutable blocks; [mutate] retries
   across the operator menu until [Validate.check] accepts a result. *)

open Cwsp_ir
open Cwsp_util

type op =
  | Splice
  | Insert
  | Delete
  | Op_flip
  | Addr_perturb
  | Move
  | Stride_widen
  | Lock_drop
  | Atomic_downgrade
  | Flush_insert
  | Flush_drop
  | Pfence_toggle

let op_name = function
  | Splice -> "splice"
  | Insert -> "insert"
  | Delete -> "delete"
  | Op_flip -> "op-flip"
  | Addr_perturb -> "addr-perturb"
  | Move -> "move"
  | Stride_widen -> "stride-widen"
  | Lock_drop -> "lock-drop"
  | Atomic_downgrade -> "atomic-downgrade"
  | Flush_insert -> "flush-insert"
  | Flush_drop -> "flush-drop"
  | Pfence_toggle -> "pfence-toggle"

(* ---- flat-position plumbing ---- *)

let flat (fn : Prog.func) : Types.instr array =
  Array.of_list
    (List.rev (Prog.fold_instrs (fun acc _ _ i -> i :: acc) [] fn))

(* Replace the instruction at flat position [n] by [f instr] (a list:
   empty deletes, several expand). *)
let map_at (fn : Prog.func) n f =
  let k = ref (-1) in
  let blocks =
    Array.map
      (fun (b : Prog.block) ->
        {
          b with
          instrs =
            List.concat_map
              (fun i ->
                incr k;
                if !k = n then f i else [ i ])
              b.instrs;
        })
      fn.blocks
  in
  { fn with blocks }

(* Insert [ins] before flat position [n]; [n >= instr_count] appends to
   the last block. *)
let insert_at (fn : Prog.func) n ins =
  let k = ref (-1) in
  let placed = ref false in
  let blocks =
    Array.map
      (fun (b : Prog.block) ->
        {
          b with
          instrs =
            List.concat_map
              (fun i ->
                incr k;
                if !k = n then begin
                  placed := true;
                  ins @ [ i ]
                end
                else [ i ])
              b.instrs;
        })
      fn.blocks
  in
  let fn = { fn with blocks } in
  if !placed then fn
  else begin
    let blocks = Array.copy fn.blocks in
    let last = Array.length blocks - 1 in
    blocks.(last) <- { (blocks.(last)) with instrs = blocks.(last).instrs @ ins };
    { fn with blocks }
  end

(* ---- target selection ---- *)

(* Mutations mostly target user code; the runtime library is fair game
   one draw in four (a corrupted allocator or lock is exactly the kind
   of traffic the oracles should survive). *)
let pick_func rng (p : Prog.t) ~need_instrs : Prog.func option =
  let eligible (f : Prog.func) = (not need_instrs) || Prog.instr_count f > 0 in
  let user =
    List.filter
      (fun (n, f) ->
        eligible f && not (List.mem n Cwsp_runtime.Libc.function_names))
      p.funcs
  in
  let all = List.filter (fun (_, f) -> eligible f) p.funcs in
  let cands = if Rng.int rng 4 = 0 || user = [] then all else user in
  match cands with
  | [] -> None
  | _ -> Some (snd (Rng.pick rng (Array.of_list cands)))

(* ---- per-instruction rewrites ---- *)

let flip_binop rng op =
  let menu = [| Types.Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Lshr; Ashr |] in
  let rec go () =
    let o = Rng.pick rng menu in
    if o = op then go () else o
  in
  go ()

let flip_cmpop rng op =
  let menu = [| Types.Eq; Ne; Lt; Le; Gt; Ge |] in
  let rec go () =
    let o = Rng.pick rng menu in
    if o = op then go () else o
  in
  go ()

let op_flip rng (i : Types.instr) : Types.instr option =
  match i with
  | Bin (op, d, a, b) -> Some (Bin (flip_binop rng op, d, a, b))
  | Cmp (op, d, a, b) -> Some (Cmp (flip_cmpop rng op, d, a, b))
  | Mov (d, Imm v) -> Some (Mov (d, Imm (v lxor (1 lsl Rng.int rng 16))))
  | Store (b, o, Imm v) -> Some (Store (b, o, Imm (v + 1 + Rng.int rng 7)))
  | Atomic_rmw (op, d, b, o, s) -> Some (Atomic_rmw (flip_binop rng op, d, b, o, s))
  | _ -> None

let addr_perturb rng (i : Types.instr) : Types.instr option =
  let nudge o = max 0 (o + (8 * (Rng.int rng 9 - 4))) in
  match i with
  | Load (d, b, o) -> Some (Load (d, b, nudge o))
  | Store (b, o, s) -> Some (Store (b, nudge o, s))
  | Flush (b, o) -> Some (Flush (b, nudge o))
  | Atomic_rmw (op, d, b, o, s) -> Some (Atomic_rmw (op, d, b, nudge o, s))
  | Cas (d, b, o, e, w) -> Some (Cas (d, b, nudge o, e, w))
  | _ -> None

let stride_widen rng (i : Types.instr) : Types.instr option =
  match i with
  | Bin (And, d, a, Imm m) when m > 0 && m land (m + 1) = 0 ->
    Some (Bin (And, d, a, Imm ((2 * m) + 1)))
  | Bin (Mul, d, a, Imm k) when k > 0 ->
    Some (Bin (Mul, d, a, Imm (if Rng.bool rng then 2 * k else max 1 (k / 2))))
  | Bin (Shl, d, a, Imm k) when k > 0 && k < 16 ->
    Some (Bin (Shl, d, a, Imm (k + 1)))
  | _ -> None

(* ---- splice: registers of the grafted run are remapped ---- *)

let map_operand use = function
  | Types.Reg r -> Types.Reg (use r)
  | Types.Imm v -> Types.Imm v

(* Uses are resolved before the def extends the mapping, so a run's
   internal dataflow survives the graft. *)
let map_instr ~use ~def (i : Types.instr) : Types.instr =
  match i with
  | Bin (op, d, a, b) ->
    let a = map_operand use a and b = map_operand use b in
    Bin (op, def d, a, b)
  | Cmp (op, d, a, b) ->
    let a = map_operand use a and b = map_operand use b in
    Cmp (op, def d, a, b)
  | Mov (d, s) ->
    let s = map_operand use s in
    Mov (def d, s)
  | La (d, g) -> La (def d, g)
  | Load (d, b, o) ->
    let b = use b in
    Load (def d, b, o)
  | Store (b, o, s) -> Store (use b, o, map_operand use s)
  | Call (f, args, ret) ->
    let args = List.map (map_operand use) args in
    Call (f, args, Option.map def ret)
  | Atomic_rmw (op, d, b, o, s) ->
    let b = use b and s = map_operand use s in
    Atomic_rmw (op, def d, b, o, s)
  | Cas (d, b, o, e, w) ->
    let b = use b and e = map_operand use e and w = map_operand use w in
    Cas (def d, b, o, e, w)
  | Fence -> Fence
  | Flush (b, o) -> Flush (use b, o)
  | Pfence -> Pfence
  | Ckpt r -> Ckpt (use r)
  | Boundary id -> Boundary id

(* An instruction may be grafted into [p] when every symbol it names
   resolves there; compiler-owned instructions never move. *)
let spliceable (p : Prog.t) (i : Types.instr) =
  match i with
  | Types.La (_, g) -> Prog.find_global p g <> None
  | Types.Call (f, args, _) -> (
    match List.assoc_opt f Validate.intrinsics with
    | Some arity -> List.length args = arity
    | None -> (
      match Prog.find_func p f with
      | Some callee -> List.length args = callee.nparams
      | None -> false))
  | Types.Ckpt _ | Types.Boundary _ -> false
  | _ -> true

let splice rng ~(donor : Prog.t) (p : Prog.t) : Prog.t option =
  match pick_func rng donor ~need_instrs:true with
  | None -> None
  | Some dfn -> (
    match pick_func rng p ~need_instrs:true with
    | None -> None
    | Some tfn ->
      let code = flat dfn in
      let start = Rng.int rng (Array.length code) in
      let len = min (1 + Rng.int rng 6) (Array.length code - start) in
      let run = Array.to_list (Array.sub code start len) in
      if not (List.for_all (spliceable p) run) then None
      else begin
        let remap = Hashtbl.create 8 in
        let nregs = ref tfn.nregs in
        let use r =
          match Hashtbl.find_opt remap r with
          | Some r' -> r'
          | None -> if tfn.nregs = 0 then 0 else r mod tfn.nregs
        in
        let def r =
          let r' = !nregs in
          incr nregs;
          Hashtbl.replace remap r r';
          r'
        in
        let run = List.map (map_instr ~use ~def) run in
        if tfn.nregs = 0 && List.exists (fun i -> Types.uses i <> []) run then None
        else begin
          let at = Rng.int rng (Prog.instr_count tfn + 1) in
          let tfn = insert_at { tfn with nregs = !nregs } at run in
          Some (Prog.with_func p tfn)
        end
      end)

(* ---- fresh-instruction insertion ---- *)

let gen_instr rng (fn : Prog.func) : (Types.instr list * int) option =
  if fn.nregs = 0 then None
  else begin
    let r () = Rng.int rng fn.nregs in
    let operand () =
      if Rng.bool rng then Types.Imm (Rng.int rng 64 - 32) else Types.Reg (r ())
    in
    let d = fn.nregs in
    let off () = 8 * Rng.int rng 16 in
    match Rng.int rng 9 with
    | 0 -> Some ([ Types.Bin (flip_binop rng Types.Ashr, d, operand (), operand ()) ], d + 1)
    | 1 -> Some ([ Types.Cmp (flip_cmpop rng Types.Ge, d, operand (), operand ()) ], d + 1)
    | 2 -> Some ([ Types.Mov (d, operand ()) ], d + 1)
    | 3 -> Some ([ Types.Load (d, r (), off ()) ], d + 1)
    | 4 -> Some ([ Types.Store (r (), off (), operand ()) ], fn.nregs)
    | 5 -> Some ([ Types.Atomic_rmw (Types.Add, d, r (), off (), operand ()) ], d + 1)
    | 6 -> Some ([ Types.Fence ], fn.nregs)
    | 7 -> Some ([ Types.Flush (r (), off ()) ], fn.nregs)
    | _ -> Some ([ Types.Pfence ], fn.nregs)
  end

(* ---- positional operators ---- *)

let positions_matching (fn : Prog.func) pred =
  let code = flat fn in
  let out = ref [] in
  Array.iteri (fun i ins -> if pred ins then out := i :: !out) code;
  Array.of_list (List.rev !out)

let apply rng ~donor op (p : Prog.t) : Prog.t option =
  match op with
  | Splice -> splice rng ~donor p
  | Insert -> (
    match pick_func rng p ~need_instrs:false with
    | None -> None
    | Some fn -> (
      match gen_instr rng fn with
      | None -> None
      | Some (ins, nregs) ->
        let at = Rng.int rng (Prog.instr_count fn + 1) in
        Some (Prog.with_func p (insert_at { fn with nregs } at ins))))
  | Delete | Op_flip | Addr_perturb | Stride_widen -> (
    match pick_func rng p ~need_instrs:true with
    | None -> None
    | Some fn -> (
      let count = Prog.instr_count fn in
      let rewrite =
        match op with
        | Delete -> fun _ -> Some []
        | Op_flip -> fun i -> Option.map (fun x -> [ x ]) (op_flip rng i)
        | Addr_perturb -> fun i -> Option.map (fun x -> [ x ]) (addr_perturb rng i)
        | _ -> fun i -> Option.map (fun x -> [ x ]) (stride_widen rng i)
      in
      (* scan from a random start for a position the rewrite accepts *)
      let start = Rng.int rng count in
      let code = flat fn in
      let found = ref None in
      for k = 0 to count - 1 do
        if !found = None then begin
          let n = (start + k) mod count in
          match rewrite code.(n) with
          | Some ins -> found := Some (n, ins)
          | None -> ()
        end
      done;
      match !found with
      | None -> None
      | Some (n, ins) -> Some (Prog.with_func p (map_at fn n (fun _ -> ins)))))
  | Move -> (
    match pick_func rng p ~need_instrs:true with
    | None -> None
    | Some fn ->
      let count = Prog.instr_count fn in
      if count < 2 then None
      else begin
        let n = Rng.int rng count in
        let ins = (flat fn).(n) in
        if not (spliceable p ins) then None
        else begin
          let fn = map_at fn n (fun _ -> []) in
          let at = Rng.int rng count in
          Some (Prog.with_func p (insert_at fn at [ ins ]))
        end
      end)
  | Lock_drop -> (
    match pick_func rng p ~need_instrs:true with
    | None -> None
    | Some fn ->
      let locks =
        positions_matching fn (function
          | Types.Call (("spin_lock" | "spin_unlock"), _, _) -> true
          | _ -> false)
      in
      if Array.length locks = 0 then None
      else Some (Prog.with_func p (map_at fn (Rng.pick rng locks) (fun _ -> []))))
  | Atomic_downgrade -> (
    match pick_func rng p ~need_instrs:true with
    | None -> None
    | Some fn ->
      let rmws =
        positions_matching fn (function Types.Atomic_rmw _ -> true | _ -> false)
      in
      if Array.length rmws = 0 then None
      else begin
        let n = Rng.pick rng rmws in
        let t = fn.nregs in
        let fn = { fn with nregs = fn.nregs + 1 } in
        let fn =
          map_at fn n (function
            | Types.Atomic_rmw (op, d, b, o, s) ->
              [ Types.Load (d, b, o); Types.Bin (op, t, Reg d, s);
                Types.Store (b, o, Reg t) ]
            | i -> [ i ])
        in
        Some (Prog.with_func p fn)
      end)
  | Flush_insert -> (
    match pick_func rng p ~need_instrs:true with
    | None -> None
    | Some fn ->
      let stores =
        positions_matching fn (function Types.Store _ -> true | _ -> false)
      in
      if Array.length stores = 0 then None
      else begin
        let n = Rng.pick rng stores in
        let fn =
          map_at fn n (function
            | Types.Store (b, o, s) ->
              [ Types.Store (b, o, s); Types.Flush (b, o) ]
            | i -> [ i ])
        in
        Some (Prog.with_func p fn)
      end)
  | Flush_drop -> (
    match pick_func rng p ~need_instrs:true with
    | None -> None
    | Some fn ->
      let flushes =
        positions_matching fn (function Types.Flush _ -> true | _ -> false)
      in
      if Array.length flushes = 0 then None
      else Some (Prog.with_func p (map_at fn (Rng.pick rng flushes) (fun _ -> []))))
  | Pfence_toggle -> (
    match pick_func rng p ~need_instrs:true with
    | None -> None
    | Some fn ->
      let pfences =
        positions_matching fn (function Types.Pfence -> true | _ -> false)
      in
      if Array.length pfences > 0 && Rng.bool rng then
        Some (Prog.with_func p (map_at fn (Rng.pick rng pfences) (fun _ -> [])))
      else begin
        let at = Rng.int rng (Prog.instr_count fn + 1) in
        Some (Prog.with_func p (insert_at fn at [ Types.Pfence ]))
      end)

(* Splice and the generic edits dominate; the domain-aware operators get
   enough weight to matter on SPMD / explicit-persist corpus entries. *)
let menu =
  [|
    Splice; Splice; Splice;
    Insert; Insert;
    Delete; Delete; Delete;
    Op_flip; Op_flip; Op_flip;
    Addr_perturb; Addr_perturb;
    Move; Move;
    Stride_widen;
    Lock_drop;
    Atomic_downgrade;
    Flush_insert;
    Flush_drop;
    Pfence_toggle;
  |]

let mutate ?(tries = 12) rng ~donor (p : Prog.t) =
  let rec go k =
    if k = 0 then None
    else begin
      let op = Rng.pick rng menu in
      match apply rng ~donor op p with
      | Some p' when Validate.check p' = [] && Wellformed.defined p' -> Some (op, p')
      | _ -> go (k - 1)
      | exception _ -> go (k - 1)
    end
  in
  go tries
