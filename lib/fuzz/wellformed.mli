(** Definite-initialization screen for fuzzer inputs.

    The compiler's obligations are stated over programs whose register
    reads are all reachable from some definition; a read that no
    definition can reach (on any path from function entry — parameters
    count as defined) makes checkpoint-slice construction report
    [Slot_ref_undefined] about the *source*, which would be misfiled as
    a compiler finding. Such programs are screened out of the pool,
    like wild-address programs, rather than reported. *)

open Cwsp_ir

(** [defined p] is true when, in every function, every register use
    (instruction or terminator operand) is definitely initialized: a
    definition reaches it on *every* path from the function entry
    (parameters count as defined). Code in blocks unreachable from the
    entry still gets compiled and verified, so it must satisfy the rule
    with only the parameters treated as defined. *)
val defined : Prog.t -> bool
