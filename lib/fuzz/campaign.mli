(** Coverage-guided campaign driver.

    Work is cut into batches of a fixed size over a global exec-index
    space: batch [k] covers exec indices [k*batch, (k+1)*batch), a shard
    [i/n] processes the indices congruent to [i] mod [n], and every
    index draws its randomness from [Rng.stream master_seed index] — so
    what each exec does depends only on (master seed, index, corpus
    state at its batch start), never on pool width or scheduling.
    Batches evaluate on the executor's domain pool and merge
    sequentially in index order; campaign state persists at every batch
    boundary, which makes a killed campaign resumable to the exact
    report an uninterrupted run produces, and makes coverage reports
    byte-identical at any [--jobs] width.

    Retention: an exec whose evaluation lit at least one new coverage
    cell enters the on-disk corpus and becomes mutation fodder for later
    batches. Findings are deduplicated by signature, auto-minimized
    (budget-capped), and persisted under [findings/]. *)

type params = {
  p_dir : string;          (** campaign directory *)
  p_master_seed : int;
  p_shard : int * int;     (** (i, n): process indices ≡ i mod n *)
  p_batch : int;           (** execs per batch (state-save granularity) *)
  p_jobs : int;            (** executor pool width *)
  p_min_budget : int;      (** minimizer predicate-evaluation budget *)
}

val default_params : dir:string -> params

type outcome = {
  o_execs : int;       (** execs this shard has processed, lifetime *)
  o_discards : int;
  o_corpus : int;      (** retained programs *)
  o_cells : int;       (** total coverage cells *)
  o_new_cells : int;   (** cells first lit during this invocation *)
  o_findings : int;
  o_fatal : bool;      (** a verifier escape was found *)
  o_report : string;   (** deterministic JSON coverage report *)
}

(** Run (or resume) the campaign until [execs] total exec indices are
    covered — rounded up to whole batches, so a batch's item set never
    depends on the invocation's budget. [compile] substitutes a
    (possibly broken) pipeline; [max_seconds] stops at the next batch
    boundary once exceeded — progress made so far stays persisted and
    resumable. *)
val run :
  ?compile:Oracle.compile_fn ->
  ?max_seconds:float ->
  params ->
  execs:int ->
  outcome

(** The report JSON of a campaign state (what [o_report] contains). *)
val report_json : Corpus.state -> string
