(** Delta-debugging auto-minimization of counterexample programs.

    Greedy fixpoint over three reduction phases — drop whole functions,
    drop globals, ddmin (chunked binary reduction) over each function's
    flat instruction list, plus a terminator-straightening pass that
    collapses branches so dead loop bodies become deletable. Every
    candidate must pass [Validate.check] and the caller's predicate; the
    predicate is expected to be deterministic and exception-safe (the
    [Oracle.reproduces] predicates are).

    [budget] caps predicate evaluations (default 3000), making worst-case
    minimization time a campaign parameter rather than a hazard. *)

open Cwsp_ir

val minimize : ?budget:int -> pred:(Prog.t -> bool) -> Prog.t -> Prog.t
