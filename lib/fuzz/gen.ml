(* Randomized well-formed program generator: the fuzzer's seed source,
   shared with the test suites (test_fuzz: compiler oracles; test_decode:
   decoded-core differential oracle; test_race: labelled SPMD seeds).
   Emits nested loops, branches, random arithmetic DAGs, loads/stores
   with both provable and unprovable addresses (mixing Exact/Within/Any
   aliasing), calls into the runtime allocator, atomics and fences.
   Every seed is reproducible from its number. *)

open Cwsp_ir
open Cwsp_util

let n_globals = 3

(* random operand: a live register or a small immediate *)
let rand_operand rng regs =
  if Rng.bool rng || regs = [] then Types.Imm (Rng.int rng 1000 - 500)
  else Types.Reg (Rng.pick rng (Array.of_list regs))

let rand_binop rng =
  Rng.pick rng [| Types.Add; Sub; Mul; And; Or; Xor; Shl; Lshr |]

let rand_global rng = Printf.sprintf "fz%d" (Rng.int rng n_globals)

(* emit a random address computation over global [g]: exact, strided or
   opaque (via a register the alias analysis cannot track) *)
let rand_address rng fb regs g =
  let open Builder in
  let base = la fb g in
  match Rng.int rng 3 with
  | 0 -> (base, 8 * Rng.int rng 32) (* exact offset *)
  | 1 ->
    let idx =
      match regs with
      | [] -> imm fb (Rng.int rng 32)
      | _ -> Rng.pick rng (Array.of_list regs)
    in
    let bounded = bin fb And (Reg idx) (Imm 31) in
    (bin fb Add (Reg base) (Reg (bin fb Shl (Reg bounded) (Imm 3))), 0)
  | _ ->
    (* launder the pointer through memory: Any provenance *)
    let slot = la fb "fzptr" in
    store fb slot 0 (Reg base);
    let p = load fb slot 0 in
    (p, 8 * Rng.int rng 32)

let rec gen_block rng fb depth regs budget =
  let open Builder in
  let regs = ref regs in
  let n = 3 + Rng.int rng 8 in
  for _ = 1 to n do
    if !budget > 0 then begin
      decr budget;
      match Rng.int rng 10 with
      | 0 | 1 | 2 ->
        let d = bin fb (rand_binop rng) (rand_operand rng !regs) (rand_operand rng !regs) in
        regs := d :: !regs
      | 3 | 4 ->
        let g = rand_global rng in
        let a, off = rand_address rng fb !regs g in
        let v = load fb a off in
        regs := v :: !regs
      | 5 | 6 ->
        let g = rand_global rng in
        let a, off = rand_address rng fb !regs g in
        store fb a off (rand_operand rng !regs)
      | 7 when depth > 0 ->
        let c = cmp fb Types.Ne (rand_operand rng !regs) (Imm 0) in
        let saved = !regs in
        if_ fb c
          ~then_:(fun () -> gen_block rng fb (depth - 1) saved budget)
          ~else_:(fun () -> gen_block rng fb (depth - 1) saved budget)
      | 7 ->
        let d = mov fb (rand_operand rng !regs) in
        regs := d :: !regs
      | 8 when depth > 0 ->
        let iters = 2 + Rng.int rng 5 in
        let saved = !regs in
        let _ =
          loop fb ~from:(Imm 0) ~below:(Imm iters) (fun i ->
              gen_block rng fb (depth - 1) (i :: saved) budget)
        in
        ()
      | 8 ->
        let g = rand_global rng in
        let a, off = rand_address rng fb !regs g in
        let v = atomic_rmw fb Types.Add a off (rand_operand rng !regs) in
        regs := v :: !regs
      | _ ->
        if Rng.int rng 4 = 0 then fence fb
        else begin
          let p = call fb "malloc" [ Imm (8 * (1 + Rng.int rng 4)) ] in
          store fb p 0 (rand_operand rng !regs);
          let v = load fb p 0 in
          regs := v :: !regs;
          if Rng.bool rng then call_void fb "free" [ Reg p ]
        end
    end
  done;
  (* make some values observable *)
  match !regs with
  | r :: _ -> call_void fb "__out" [ Reg r ]
  | [] -> ()

let gen_program seed : Prog.t =
  let rng = Rng.create seed in
  let b = Builder.program () in
  Cwsp_runtime.Libc.add b;
  for i = 0 to n_globals - 1 do
    Builder.global b (Printf.sprintf "fz%d" i) ~size:256 ()
  done;
  Builder.global b "fzptr" ~size:8 ();
  Builder.func b "main" ~nparams:0 (fun fb ->
      let budget = ref (40 + Rng.int rng 60) in
      gen_block rng fb 2 [] budget;
      Builder.ret fb None);
  Builder.set_main b "main";
  Builder.finish b

(* ---- SPMD generation ---- *)

(* Random SPMD programs for the multi-thread differential oracle and as
   a soundness hammer for the race tier: a [`Drf] seed mixes tid-striped
   private traffic, a spinlock-protected shared section and an atomic
   shared accumulator — all idioms [Cwsp_verify.Race_check] certifies —
   while a [`Racy] seed plants exactly one defect (unlocked shared
   section, plain accumulator, or a stride widened into the neighbour's
   stripe). Workers deliberately avoid the allocator and [lcg_next]:
   their bump pointer / hidden state is itself shared and would race. *)

let spmd_threads = 4 (* stripe sizing bound; runs may use fewer *)
let spmd_stripe = 32 (* words of private stripe per thread *)

let gen_spmd_program seed : Prog.t * [ `Drf | `Racy ] =
  let open Builder in
  let rng = Rng.create (0x5bd1e995 * (seed + 1)) in
  let racy = Rng.int rng 3 = 0 in
  let defect = Rng.int rng 3 in
  let b = Builder.program () in
  Cwsp_runtime.Libc.add b;
  Builder.global b "sp_arr" ~size:(spmd_stripe * spmd_threads * 8) ();
  Builder.global b "sp_shared" ~size:(32 * 8) ();
  Builder.global b "sp_res" ~size:(spmd_threads * 8) ();
  Builder.global b "sp_lock" ~size:8 ();
  Builder.global b "sp_acc" ~size:8 ();
  Builder.func b "worker" ~nparams:1 (fun fb ->
      let tid = param fb 0 in
      let arr = la fb "sp_arr" in
      let shared = la fb "sp_shared" in
      let lock = la fb "sp_lock" in
      let accw = la fb "sp_acc" in
      let mybase =
        bin fb Add (Reg arr) (Reg (bin fb Mul (Reg tid) (Imm (spmd_stripe * 8))))
      in
      let acc = imm fb (Rng.int rng 100) in
      let iters = 4 + Rng.int rng 8 in
      let locked_section =
        (* the drawn defect must actually exist in the program *)
        Rng.int rng 4 < 3 || (racy && defect = 0)
      in
      let use_acc = Rng.bool rng in
      let _ =
        loop fb ~from:(Imm 0) ~below:(Imm iters) (fun i ->
            (* tid-striped private traffic; defect 2 widens the index
               mask into the neighbour's stripe *)
            let mask =
              if racy && defect = 2 then (2 * spmd_stripe) - 1
              else spmd_stripe - 1
            in
            let idx = bin fb And (Reg (bin fb Add (Reg i) (Reg acc))) (Imm mask) in
            let off = bin fb Shl (Reg idx) (Imm 3) in
            let slot = bin fb Add (Reg mybase) (Reg off) in
            let v = load fb slot 0 in
            let v2 = bin fb (rand_binop rng) (Reg v) (rand_operand rng [ acc; i ]) in
            store fb slot 0 (Reg v2);
            emit fb (Types.Mov (acc, Reg (bin fb Xor (Reg acc) (Reg v2))));
            (* shared section; defect 0 drops the lock *)
            if locked_section then begin
              let sidx = bin fb And (Reg acc) (Imm 31) in
              let sslot = bin fb Add (Reg shared) (Reg (bin fb Shl (Reg sidx) (Imm 3))) in
              if racy && defect = 0 then begin
                let sv = load fb sslot 0 in
                store fb sslot 0 (Reg (bin fb Add (Reg sv) (Imm 1)))
              end
              else begin
                call_void fb "spin_lock" [ Reg lock ];
                let sv = load fb sslot 0 in
                store fb sslot 0 (Reg (bin fb Add (Reg sv) (Imm 1)));
                call_void fb "spin_unlock" [ Reg lock ]
              end
            end;
            (* shared accumulator; defect 1 downgrades it to plain *)
            if use_acc || (racy && defect = 1) then
              if racy && defect = 1 then begin
                let av = load fb accw 0 in
                store fb accw 0 (Reg (bin fb Add (Reg av) (Reg v2)))
              end
              else ignore (atomic_rmw fb Types.Add accw 0 (Reg v2)))
      in
      let res = la fb "sp_res" in
      let rslot = bin fb Add (Reg res) (Reg (bin fb Shl (Reg tid) (Imm 3))) in
      store fb rslot 0 (Reg acc);
      ret fb None);
  Builder.func b "main" ~nparams:0 (fun fb ->
      call_void fb "worker" [ Imm 0 ];
      ret fb None);
  Builder.set_main b "main";
  (Builder.finish b, if racy then `Racy else `Drf)
