(* Coverage map: string cells with first-writer origin tracking. The
   map itself is order-insensitive (a set), but insertion order is kept
   for the persisted campaign state so a resumed run replays the exact
   retention decisions of the killed one. *)

open Cwsp_ir

type origin = Gen | Mut

type t = {
  tbl : (string, origin) Hashtbl.t;
  mutable rev_order : (string * origin) list; (* newest first *)
}

let create () = { tbl = Hashtbl.create 256; rev_order = [] }
let mem t c = Hashtbl.mem t.tbl c
let count t = Hashtbl.length t.tbl

let count_origin t o =
  Hashtbl.fold (fun _ o' n -> if o' = o then n + 1 else n) t.tbl 0

let add t ~origin cells =
  List.fold_left
    (fun fresh c ->
      if Hashtbl.mem t.tbl c then fresh
      else begin
        Hashtbl.replace t.tbl c origin;
        t.rev_order <- (c, origin) :: t.rev_order;
        fresh + 1
      end)
    0 cells

let to_list t = List.rev t.rev_order

let of_list l =
  let t = create () in
  List.iter (fun (c, o) -> ignore (add t ~origin:o [ c ])) l;
  t

let cells_sorted t = List.sort compare (List.map fst (to_list t))

let by_category t =
  let cat c = match String.index_opt c ':' with
    | Some i -> String.sub c 0 i
    | None -> c
  in
  let counts = Hashtbl.create 8 in
  Hashtbl.iter
    (fun c _ ->
      let k = cat c in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    t.tbl;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])

let bucket n =
  if n <= 0 then 0
  else begin
    let b = ref 1 in
    while !b * 2 <= n && !b < 65536 do
      b := !b * 2
    done;
    !b
  end

(* Transitive may-alias classes over a function's data accesses: the
   number of address equivalence classes is a shape feature (a program
   whose accesses collapse into [Any] looks very different to the
   region-formation pass than one with disjoint exact globals). *)
let alias_classes (fn : Prog.func) =
  let classes : Cwsp_analysis.Alias.sym list list ref = ref [] in
  List.iter
    (fun (a : Cwsp_analysis.Alias.access) ->
      let touches, rest =
        List.partition
          (List.exists (fun s -> Cwsp_analysis.Alias.may_alias s a.sym))
          !classes
      in
      classes := (a.sym :: List.concat touches) :: rest)
    (Cwsp_analysis.Alias.accesses fn);
  List.length !classes

let shape_cells (c : Cwsp_compiler.Pipeline.compiled) ~trace : string list =
  let prog = c.Cwsp_compiler.Pipeline.prog in
  let main = Prog.func_exn prog prog.main in
  let loops =
    Array.fold_left
      (fun n h -> if h then n + 1 else n)
      0
      (Cwsp_analysis.Loops.headers main)
  in
  let atomics = ref false
  and cas = ref false
  and fences = ref false
  and flushes = ref false
  and pfences = ref false
  and allocs = ref false in
  List.iter
    (fun (name, fn) ->
      if not (List.mem name Cwsp_runtime.Libc.function_names) then
        Prog.iter_instrs
          (fun _ _ i ->
            match i with
            | Types.Atomic_rmw _ -> atomics := true
            | Types.Cas _ -> cas := true
            | Types.Fence -> fences := true
            | Types.Flush _ -> flushes := true
            | Types.Pfence -> pfences := true
            | Types.Call (("malloc" | "free"), _, _) -> allocs := true
            | _ -> ())
          fn)
    prog.funcs;
  let spmd =
    match Prog.find_func prog "worker" with
    | Some w -> w.nparams = 1
    | None -> false
  in
  let s = Trace.summarize trace in
  let rmax = List.fold_left max 0 (Trace.region_lengths trace) in
  let persist =
    match (!flushes, !pfences) with
    | false, false -> "none"
    | true, false -> "flush"
    | false, true -> "pfence"
    | true, true -> "flush+pfence"
  in
  [
    Printf.sprintf "shape:loops:%d" (min loops 8);
    Printf.sprintf "shape:aliascls:%d" (bucket (alias_classes main));
    Printf.sprintf "shape:atomics:%b" !atomics;
    Printf.sprintf "shape:cas:%b" !cas;
    Printf.sprintf "shape:fences:%b" !fences;
    Printf.sprintf "shape:alloc:%b" !allocs;
    Printf.sprintf "shape:spmd:%b" spmd;
    Printf.sprintf "shape:persistops:%s" persist;
    Printf.sprintf "shape:dynboundaries:%d" (bucket s.boundaries);
    Printf.sprintf "shape:dynstores:%d" (bucket s.stores);
    Printf.sprintf "shape:regionmax:%d" (bucket rmax);
  ]
