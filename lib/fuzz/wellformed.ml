open Cwsp_ir
module IntSet = Set.Make (Int)

(* Definite initialization (must-reach): IN[entry] = params, IN[b] =
   intersection of predecessor OUTs (unvisited = top), OUT[b] = IN[b] +
   every def in b. Intersection matters: a self-recurrent def like
   [r = add r, 1] at a loop header reaches its own use around the back
   edge, yet on first entry the register is uninitialized — exactly the
   case the verifier's slice construction flags. Sets only shrink, so
   the worklist terminates. *)
let func_defined (fn : Prog.func) =
  let nb = Array.length fn.blocks in
  if nb = 0 then true
  else begin
    let params =
      List.fold_left (fun s r -> IntSet.add r s) IntSet.empty
        (List.init fn.nparams Fun.id)
    in
    let out_of set (b : Prog.block) =
      List.fold_left
        (fun s i -> match Types.def i with Some d -> IntSet.add d s | None -> s)
        set b.instrs
    in
    let in_ = Array.make nb None in
    in_.(0) <- Some params;
    let work = Queue.create () in
    Queue.add 0 work;
    while not (Queue.is_empty work) do
      let b = Queue.take work in
      let set = Option.value in_.(b) ~default:params in
      let out = out_of set fn.blocks.(b) in
      List.iter
        (fun s ->
          if s >= 0 && s < nb then begin
            match in_.(s) with
            | None ->
              in_.(s) <- Some out;
              Queue.add s work
            | Some old ->
              let merged = IntSet.inter old out in
              (* semantic equality: structural compare of sets with equal
                 elements but different tree shapes would never converge *)
              if not (IntSet.equal merged old) then begin
                in_.(s) <- Some merged;
                Queue.add s work
              end
          end)
        (Types.term_succs fn.blocks.(b).term)
    done;
    let block_ok bi (blk : Prog.block) =
      (* unreachable blocks are still compiled and verified: only the
         parameters count as defined there *)
      let set = ref (Option.value in_.(bi) ~default:params) in
      List.for_all
        (fun i ->
          let ok = List.for_all (fun r -> IntSet.mem r !set) (Types.uses i) in
          (match Types.def i with Some d -> set := IntSet.add d !set | None -> ());
          ok)
        blk.instrs
      && List.for_all (fun r -> IntSet.mem r !set) (Types.term_uses blk.term)
    in
    let ok = ref true in
    Array.iteri (fun bi blk -> if not (block_ok bi blk) then ok := false) fn.blocks;
    !ok
  end

let defined (p : Prog.t) = List.for_all (fun (_, fn) -> func_defined fn) p.funcs
