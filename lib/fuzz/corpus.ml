(* On-disk corpus: content-fingerprinted program files (first-writer-
   wins, like [Cwsp_core.Store]'s content-addressed entries) plus a
   plain-text resumable state file per shard. *)

open Cwsp_ir

(* FNV-1a over the printed program, with the offset basis and every
   round folded to 60 bits so the hex form is stable across platforms
   (OCaml ints are 63-bit). *)
let fingerprint (p : Prog.t) =
  let s = Pp.program_str p in
  let h = ref (0xcbf29ce484222325L |> Int64.to_int |> ( land ) 0xfffffffffffffff) in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3 land 0xfffffffffffffff)
    s;
  Printf.sprintf "%015x" !h

type t = { root : string }

let ensure_dir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755

let open_dir root =
  ensure_dir root;
  ensure_dir (Filename.concat root "corpus");
  ensure_dir (Filename.concat root "findings");
  { root }

let dir t = t.root

let write_atomic path content =
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  let oc = open_out tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

(* First-writer-wins: identical content maps to an identical path, so
   an existing file is already the right bytes. *)
let save_in t sub (p : Prog.t) =
  let fp = fingerprint p in
  let path = Filename.concat (Filename.concat t.root sub) (fp ^ ".ir") in
  if not (Sys.file_exists path) then write_atomic path (Pp.program_str p);
  fp

let save_program t p = save_in t "corpus" p
let save_finding t p = save_in t "findings" p

(* The finding's forensic flight dump rides next to its .ir under the
   same fingerprint; deterministic content, so first-writer-wins too. *)
let save_flight t ~fp dump =
  let path = Filename.concat (Filename.concat t.root "findings") (fp ^ ".flight") in
  if not (Sys.file_exists path) then write_atomic path dump

let load_program t fp =
  let path = Filename.concat (Filename.concat t.root "corpus") (fp ^ ".ir") in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Parse.program s with
    | p -> if Validate.check p = [] then Some p else None
    | exception _ -> None
  end

(* ---- campaign state ---- *)

type saved_finding = {
  sf_key : string;
  sf_kind : string;
  sf_fp : string;
  sf_instrs : int;
  sf_detail : string;
}

type state = {
  mutable s_master_seed : int;
  mutable s_shard : int * int;
  mutable s_batch : int;
  mutable s_next_batch : int;
  mutable s_execs : int;
  mutable s_discards : int;
  mutable s_retained : (string * Coverage.origin) list;
  s_cov : Coverage.t;
  mutable s_findings : saved_finding list;
}

let fresh_state ~master_seed ~shard ~batch =
  {
    s_master_seed = master_seed;
    s_shard = shard;
    s_batch = batch;
    s_next_batch = 0;
    s_execs = 0;
    s_discards = 0;
    s_retained = [];
    s_cov = Coverage.create ();
    s_findings = [];
  }

(* percent-encoding keeps every field single-token on its line *)
let enc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9'
      | '-' | ':' | '.' | '_' | '/' | '@' | '=' | '<' | '>' | '+' | '*' ->
        Buffer.add_char b c
      | _ -> Buffer.add_string b (Printf.sprintf "%%%02x" (Char.code c)))
    s;
  Buffer.contents b

let dec s =
  let b = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    if s.[!i] = '%' && !i + 2 < n then begin
      Buffer.add_char b (Char.chr (int_of_string ("0x" ^ String.sub s (!i + 1) 2)));
      i := !i + 3
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let origin_tag = function Coverage.Gen -> "g" | Coverage.Mut -> "m"

let origin_of_tag = function "g" -> Some Coverage.Gen | "m" -> Some Coverage.Mut | _ -> None

let state_path t (i, n) =
  Filename.concat t.root (Printf.sprintf "state-%dof%d" i n)

let save_state t (st : state) =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "cwsp-fuzz-state 1";
  line "master_seed %d" st.s_master_seed;
  line "shard %d %d" (fst st.s_shard) (snd st.s_shard);
  line "batch %d" st.s_batch;
  line "next_batch %d" st.s_next_batch;
  line "execs %d" st.s_execs;
  line "discards %d" st.s_discards;
  List.iter (fun (fp, o) -> line "prog %s %s" (origin_tag o) fp) st.s_retained;
  List.iter
    (fun (c, o) -> line "cell %s %s" (origin_tag o) (enc c))
    (Coverage.to_list st.s_cov);
  List.iter
    (fun f ->
      line "finding %s %s %s %d %s" (enc f.sf_key) f.sf_kind f.sf_fp f.sf_instrs
        (enc f.sf_detail))
    (List.rev st.s_findings);
  write_atomic (state_path t st.s_shard) (Buffer.contents b)

let load_state t ~master_seed ~shard ~batch : state option =
  let path = state_path t shard in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let n = in_channel_length ic in
    let body = really_input_string ic n in
    close_in ic;
    let st = fresh_state ~master_seed ~shard ~batch in
    let ok = ref true in
    let findings = ref [] in
    (try
    List.iter
      (fun l ->
        if !ok && l <> "" then
          match String.split_on_char ' ' l with
          | [ "cwsp-fuzz-state"; "1" ] -> ()
          | [ "master_seed"; v ] -> if int_of_string v <> master_seed then ok := false
          | [ "shard"; i; n ] ->
            if (int_of_string i, int_of_string n) <> shard then ok := false
          | [ "batch"; v ] -> if int_of_string v <> batch then ok := false
          | [ "next_batch"; v ] -> st.s_next_batch <- int_of_string v
          | [ "execs"; v ] -> st.s_execs <- int_of_string v
          | [ "discards"; v ] -> st.s_discards <- int_of_string v
          | [ "prog"; o; fp ] -> (
            match origin_of_tag o with
            | Some o -> st.s_retained <- st.s_retained @ [ (fp, o) ]
            | None -> ok := false)
          | [ "cell"; o; c ] -> (
            match origin_of_tag o with
            | Some o -> ignore (Coverage.add st.s_cov ~origin:o [ dec c ])
            | None -> ok := false)
          | [ "finding"; key; kind; fp; instrs; detail ] ->
            findings :=
              {
                sf_key = dec key;
                sf_kind = kind;
                sf_fp = fp;
                sf_instrs = int_of_string instrs;
                sf_detail = dec detail;
              }
              :: !findings
          | _ -> ok := false)
      (String.split_on_char '\n' body)
    with _ -> ok := false);
    st.s_findings <- !findings;
    if !ok then Some st else None
  end
