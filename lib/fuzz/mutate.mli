(** IR-level mutation operators over well-formed programs. Each
    application picks an operator, applies it to a copy of the input,
    and keeps the result only when [Validate.check] still accepts it —
    so the campaign only ever feeds structurally valid programs to the
    compiler, and any rejection downstream is a genuine finding.

    The menu covers the generic AFL-style moves (splice from a donor,
    insert, delete, operator flip, address perturbation, instruction
    move) plus the domain-aware ones: stride widening and lock dropping
    target the SPMD race tier's idioms, atomic downgrade turns a RMW
    into its racy load/op/store expansion, and the flush/pfence
    operators churn the explicit-persistency surface. *)

open Cwsp_ir

type op =
  | Splice           (** graft a donor instruction run, registers remapped *)
  | Insert           (** one fresh random instruction *)
  | Delete
  | Op_flip          (** swap a binop/cmpop, or nudge an immediate *)
  | Addr_perturb     (** move a load/store/flush displacement *)
  | Move             (** reinsert an instruction elsewhere, possibly
                         across a synchronization point *)
  | Stride_widen     (** widen an index mask / stride multiplier (SPMD) *)
  | Lock_drop        (** delete one spin_lock/spin_unlock call (SPMD) *)
  | Atomic_downgrade (** RMW -> load; op; store (SPMD) *)
  | Flush_insert     (** add a flush after a store (explicit persist) *)
  | Flush_drop
  | Pfence_toggle    (** insert or delete a pfence *)

val op_name : op -> string

(** One mutation: up to [tries] (default 12) operator draws until one
    applies and validates. [donor] feeds [Splice]. [None] when no draw
    produced a valid program. *)
val mutate :
  ?tries:int -> Cwsp_util.Rng.t -> donor:Prog.t -> Prog.t -> (op * Prog.t) option
