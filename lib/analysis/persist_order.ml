(** Persistency-order dataflow analysis.

    Tracks, for an explicit-persistency (clwb/sfence-style) compile, the
    durability state of every store site: a store leaves its line *dirty*
    in the cache; a [Flush] of the same line moves it to *flushed*
    (written back but not yet guaranteed ordered); a [Pfence] (or a full
    synchronization fence/atomic, which subsumes one) makes every flushed
    line *durable*. The abstract domain is a finite map from store sites
    — (block, instruction) coordinates — to [Dirty]/[Flushed]; absence
    means durable-or-clean. The join takes the pointwise worst state
    (Dirty > Flushed > absent), so a fact survives only if it holds on
    every path.

    Commit points — region boundaries, calls to non-intrinsic functions
    (the callee's entry boundary dynamically closes the caller's open
    region), and returns (the modular interprocedural contract: a
    function leaves all its stores durable) — require the map to be
    empty; the verifier tier [Persist_check] reports each residue, and
    the insertion pass [Persist_insert] discharges it. Both therefore
    model a commit as clearing the map.

    Alias classes come from [Alias.mem_sites]: flushes cover dirty sites
    with the identical [Exact] symbolic address, plus a block-local
    syntactic rule (same base register and displacement, base not
    redefined in between) that covers [Within]/[Any] stores flushed
    immediately after the store. Checkpoint writes are exempt: the
    register-checkpoint engine keeps its hardware persist path in every
    mode. *)

open Cwsp_ir

module Site = struct
  type t = int * int

  let compare = compare
end

module Site_map = Map.Make (Site)

type dur = Dirty | Flushed

type state = dur Site_map.t

(* ---- domain ---- *)

let join_dur a b = match (a, b) with Dirty, _ | _, Dirty -> Dirty | _ -> Flushed

let join (a : state) (b : state) : state =
  Site_map.union (fun _ x y -> Some (join_dur x y)) a b

let equal_state = Site_map.equal ( = )

(* ---- commit points ---- *)

(** Is a call to [callee] a commit point? Intrinsics execute inline with
    no entry boundary; every real callee opens with a boundary that
    dynamically closes the caller's region. *)
let commit_call callee = not (List.mem_assoc callee Validate.intrinsics)

let is_commit_instr = function
  | Types.Boundary _ -> true
  | Types.Call (callee, _, _) -> commit_call callee
  | _ -> false

(* ---- per-instruction transfer ---- *)

type ctx = {
  syms : (int * int, Alias.sym) Hashtbl.t;
  kinds : (int * int, Alias.site_kind) Hashtbl.t;
}

let sym_of ctx site =
  match Hashtbl.find_opt ctx.syms site with Some s -> s | None -> Alias.Any

let exact_eq a b =
  match (a, b) with
  | Alias.Exact (g1, o1), Alias.Exact (g2, o2) -> g1 = g2 && o1 = o2
  | _ -> false

(* The block-local syntactic address map: (base reg, displacement) ->
   last store site through that addressing expression, invalidated when
   the base register is redefined. Covers flushes of [Within]/[Any]
   stores placed next to the store they cover. *)
type local = (int * int, int * int) Hashtbl.t

let local_invalidate (local : local) d =
  let stale =
    Hashtbl.fold (fun (b, o) _ acc -> if b = d then (b, o) :: acc else acc)
      local []
  in
  List.iter (Hashtbl.remove local) stale

(* Remove sites that [site] must overwrite: the identical Exact class, or
   the block-local same addressing expression. An overwritten store's old
   value no longer needs durability — only the final value at a commit
   does (an intermediate flushed value reaching a commit is still an
   error, reported at the overwriting store's own site). *)
let kill_overwritten ctx ~sym ~(local : local) ~base ~off state =
  let state =
    match sym with
    | Alias.Exact _ ->
      Site_map.filter (fun s _ -> not (exact_eq (sym_of ctx s) sym)) state
    | Alias.Within _ | Alias.Any -> state
  in
  match Hashtbl.find_opt local (base, off) with
  | Some s -> Site_map.remove s state
  | None -> state

(* Sites a flush at [base + off] with symbolic address [fsym] upgrades:
   dirty sites of the identical Exact class, plus the block-local
   syntactic match. Returns the new state and the covered sites. *)
let cover ctx ~fsym ~(local : local) ~base ~off state =
  let covered = ref [] in
  let state =
    match fsym with
    | Alias.Exact _ ->
      Site_map.mapi
        (fun s d ->
          if d = Dirty && exact_eq (sym_of ctx s) fsym then begin
            covered := s :: !covered;
            Flushed
          end
          else d)
        state
    | Alias.Within _ | Alias.Any -> state
  in
  match Hashtbl.find_opt local (base, off) with
  | Some s when Site_map.find_opt s state = Some Dirty ->
    covered := s :: !covered;
    (Site_map.add s Flushed state, !covered)
  | _ -> (state, !covered)

let drain state = Site_map.filter (fun _ d -> d = Dirty) state

(* One instruction: returns the post-state and, for flushes, the covered
   sites (for the redundancy lint). Mutates [local]. *)
let step ctx ~bi ~ii (ins : Types.instr) (local : local) (state : state) :
    state * (int * int) list =
  let site = (bi, ii) in
  let state, covered =
    match ins with
    | Types.Store (base, off, _) ->
      let sym = sym_of ctx site in
      let state = kill_overwritten ctx ~sym ~local ~base ~off state in
      Hashtbl.replace local (base, off) site;
      (Site_map.add site Dirty state, [])
    | Types.Flush (base, off) ->
      let fsym = sym_of ctx site in
      cover ctx ~fsym ~local ~base ~off state
    | Types.Pfence | Types.Fence -> (drain state, [])
    | Types.Atomic_rmw (_, _, base, off, _) | Types.Cas (_, base, off, _, _) ->
      (* full fence, and a hardware failure-atomic overwrite of its own
         location (durable with its closing boundary) — no obligation *)
      let sym = sym_of ctx site in
      let state = kill_overwritten ctx ~sym ~local ~base ~off state in
      (drain state, [])
    | Types.Boundary _ -> (Site_map.empty, [])
    | Types.Call (callee, _, _) when commit_call callee -> (Site_map.empty, [])
    | _ -> (state, [])
  in
  (match Types.def ins with
  | Some d -> local_invalidate local d
  | None -> ());
  (state, covered)

(* ---- block-level solver on the shared Dataflow engine ---- *)

module Problem = struct
  module D = struct
    type t = state

    let bottom = Site_map.empty
    let equal = equal_state
    let join = join
  end

  type nonrec ctx = ctx * Prog.func

  let direction = `Forward
  let boundary _ _ = Site_map.empty

  let transfer (ctx, fn) _fn bi state =
    let local : local = Hashtbl.create 8 in
    let st = ref state in
    List.iteri
      (fun ii ins -> st := fst (step ctx ~bi ~ii ins local !st))
      fn.Prog.blocks.(bi).instrs;
    !st
end

module Solver = Dataflow.Make (Problem)

type t = {
  fn : Prog.func;
  ctx : ctx;
  inb : state array;   (** durability state at each block entry *)
  outb : state array;  (** durability state at each block exit *)
  reachable : bool array;
  headers : bool array;
  doms : Dominators.t;
}

let analyze (fn : Prog.func) : t =
  let syms = Hashtbl.create 64 in
  let kinds = Hashtbl.create 64 in
  List.iter
    (fun (site, kind, sym) ->
      Hashtbl.replace syms site sym;
      Hashtbl.replace kinds site kind)
    (Alias.mem_sites fn);
  let ctx = { syms; kinds } in
  let { Solver.inb; outb } = Solver.solve (ctx, fn) fn in
  {
    fn;
    ctx;
    inb;
    outb;
    reachable = Cfg.reachable fn;
    headers = Loops.headers fn;
    doms = Dominators.compute fn;
  }

let sym_at t site = sym_of t.ctx site
let kind_at t site = Hashtbl.find_opt t.ctx.kinds site

(** Walk block [bi], calling [f ~ii ins ~before ~covered] with the state
    immediately before each instruction and the sites a flush covers. *)
let iter_block t bi
    ~(f : ii:int -> Types.instr -> before:state -> covered:(int * int) list ->
       unit) : unit =
  let local : local = Hashtbl.create 8 in
  let st = ref t.inb.(bi) in
  List.iteri
    (fun ii ins ->
      let before = !st in
      let after, covered = step t.ctx ~bi ~ii ins local before in
      f ~ii ins ~before ~covered;
      st := after)
    t.fn.Prog.blocks.(bi).instrs

(** Is the back-edge predecessor test satisfied: predecessor [p] of loop
    header [h] closes the loop (h dominates p)? Used to separate
    loop-carried obligations (flushed at the latch, once per iteration)
    from loop-entry obligations (hoisted to the preheader edge). *)
let is_back_edge t ~header ~pred =
  Dominators.dominates t.doms ~a:header ~b:pred

let string_of_sym = function
  | Alias.Exact (g, o) -> Printf.sprintf "%s+%d" g o
  | Alias.Within g -> Printf.sprintf "%s+?" g
  | Alias.Any -> "?"
