(** Generic block-level worklist dataflow solver — see the interface for
    the contract. The engine is direction-agnostic: it works over an
    abstract edge relation ([flow_preds] feeding each node, [flow_succs]
    to requeue) which is the CFG for forward problems and the reversed
    CFG for backward ones. *)

open Cwsp_ir

module type DOMAIN = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

module type PROBLEM = sig
  module D : DOMAIN

  type ctx

  val direction : [ `Forward | `Backward ]
  val boundary : ctx -> Prog.func -> D.t
  val transfer : ctx -> Prog.func -> int -> D.t -> D.t
end

module Make (P : PROBLEM) = struct
  type result = { inb : P.D.t array; outb : P.D.t array }

  let solve (ctx : P.ctx) (fn : Prog.func) : result =
    let n = Array.length fn.blocks in
    let preds = Cfg.predecessors fn in
    let succs = Array.init n (Cfg.successors fn) in
    (* [flow_preds.(b)] are the blocks whose post-transfer state feeds
       [b]; [flow_succs.(b)] the blocks to requeue when [b]'s
       post-transfer state changes. *)
    let flow_preds, flow_succs, order =
      match P.direction with
      | `Forward -> (preds, succs, Cfg.reverse_postorder fn)
      | `Backward -> (succs, preds, List.rev (Cfg.reverse_postorder fn))
    in
    (* [pre.(b)]: state flowing into the transfer of [b] (block-entry
       state forward, block-exit state backward). [post.(b)]: its
       image under the transfer. *)
    let pre = Array.make n P.D.bottom in
    let post = Array.make n P.D.bottom in
    let boundary = P.boundary ctx fn in
    let is_flow_source bi =
      match P.direction with
      | `Forward -> bi = 0
      | `Backward -> succs.(bi) = []
    in
    (* Only blocks reachable from the entry participate; everything else
       keeps [bottom], matching the historical per-analysis solvers. *)
    let eligible = Array.make n false in
    List.iter (fun bi -> eligible.(bi) <- true) order;
    let on_list = Array.make n false in
    let work = Queue.create () in
    let enqueue bi =
      if eligible.(bi) && not on_list.(bi) then begin
        on_list.(bi) <- true;
        Queue.add bi work
      end
    in
    List.iter enqueue order;
    (* The pop cap is a divergence guard, not a complexity bound: real
       domains converge in a handful of sweeps, so the cap only needs to
       be large enough that no legitimate chain of component flips (which
       scales with blocks x domain components, not blocks alone) can
       exhaust it. *)
    let budget = ref (4_194_304 + (n * n)) in
    let pops = Array.make n 0 in
    while not (Queue.is_empty work) do
      if !budget <= 0 then begin
        let hot = ref 0 in
        Array.iteri (fun i c -> if c > pops.(!hot) then hot := i) pops;
        failwith
          (Printf.sprintf
             "Dataflow.solve: fixpoint did not converge (bad domain join?): \
              %d blocks, hottest block %d popped %d times"
             n !hot pops.(!hot))
      end;
      decr budget;
      let bi = Queue.pop work in
      pops.(bi) <- pops.(bi) + 1;
      on_list.(bi) <- false;
      let inflow =
        List.fold_left
          (fun acc p -> P.D.join acc post.(p))
          (if is_flow_source bi then boundary else P.D.bottom)
          flow_preds.(bi)
      in
      pre.(bi) <- inflow;
      let out = P.transfer ctx fn bi inflow in
      if not (P.D.equal out post.(bi)) then begin
        post.(bi) <- out;
        List.iter enqueue flow_succs.(bi)
      end
    done;
    match P.direction with
    | `Forward -> { inb = pre; outb = post }
    | `Backward -> { inb = post; outb = pre }
end
