(** Generic block-level worklist dataflow solver.

    One fixpoint engine shared by every analysis in the repository:
    [Liveness] (backward, set union), the reaching-definitions facts the
    verifier's checkpoint checks consume, and the symbolic
    translation-validation domain of [Cwsp_verify.Sem_check]. A client
    supplies a join-semilattice with a bottom element and a per-block
    transfer function; the solver iterates block states to a fixpoint
    over the CFG in the requested direction.

    The solver is deliberately *unparameterized over convergence proofs*:
    domains of unbounded height (e.g. symbolic expressions) must make
    their [join] collapse disagreement to a finite set of values (top or
    join-point symbols). A round cap guards against domains that fail to
    do so; exceeding it raises rather than silently delivering a
    non-fixpoint. *)

open Cwsp_ir

module type DOMAIN = sig
  type t

  val bottom : t
  (** Identity of [join]; the initial state of every block. *)

  val equal : t -> t -> bool

  val join : t -> t -> t
  (** Merge of two incoming path states. Must be commutative and
      idempotent up to [equal], with [join bottom x] = [x]. *)
end

module type PROBLEM = sig
  module D : DOMAIN

  type ctx
  (** Per-function precomputed context threaded to [transfer] (e.g. the
      instruction arrays, alias facts); keeps transfer closures
      allocation-free inside the fixpoint loop. *)

  val direction : [ `Forward | `Backward ]

  val boundary : ctx -> Prog.func -> D.t
  (** State flowing into the entry block (forward) or out of every
      exit block (backward). *)

  val transfer : ctx -> Prog.func -> int -> D.t -> D.t
  (** [transfer ctx fn bi s] pushes the state through block [bi]:
      in-state to out-state (forward) or out-state to in-state
      (backward). *)
end

module Make (P : PROBLEM) : sig
  type result = {
    inb : P.D.t array;  (** per block: state at block entry *)
    outb : P.D.t array; (** per block: state at block exit *)
  }

  val solve : P.ctx -> Prog.func -> result
  (** Worklist fixpoint over the function's CFG. Blocks are seeded in
      reverse postorder (forward) or postorder (backward) so reducible
      graphs converge in a small number of sweeps; unreachable blocks
      keep [D.bottom]. Raises [Failure] if the domain fails to converge
      within the round cap. *)
end
