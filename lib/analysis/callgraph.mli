(** Static call graph with bottom-up SCC ordering; the interprocedural
    summary layer ([Interproc]) processes functions in the order this
    module produces so callee summaries exist before their callers'. *)

open Cwsp_ir

type t

val build : Prog.t -> t

(** Direct callees of a function (deduped, in first-call order);
    intrinsics and undefined names are excluded. *)
val callees : t -> string -> string list

(** Strongly-connected components, callees before callers. *)
val sccs_bottom_up : t -> string list list

(** A component is recursive if it has more than one member or a
    self-loop. *)
val recursive : t -> string list -> bool
