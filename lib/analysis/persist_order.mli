(** Persistency-order dataflow analysis for explicit (clwb/sfence-style)
    persistency: per alias class, tracks each store site through
    dirty -> flushed -> durable, on the shared [Dataflow] solver. The
    verifier tier [Persist_check] reports obligations that reach a
    commit point; the insertion pass [Persist_insert] discharges them
    with minimal flush/pfence placements. *)

open Cwsp_ir

module Site_map : Map.S with type key = int * int

(** Durability of one store site; absence from the map means
    durable-or-clean. *)
type dur = Dirty | Flushed

type state = dur Site_map.t

(** Pointwise worst-state merge (Dirty > Flushed > absent). *)
val join : state -> state -> state

val equal_state : state -> state -> bool

(** Is a call to this callee a commit point? (Everything but the
    interpreter intrinsics: a real callee's entry boundary dynamically
    closes the caller's open region.) *)
val commit_call : string -> bool

(** Boundaries and commit calls; returns are commit points of their
    block's terminator, not an instruction. *)
val is_commit_instr : Types.instr -> bool

type t = {
  fn : Prog.func;
  ctx : ctx;
  inb : state array;   (** durability state at each block entry *)
  outb : state array;  (** durability state at each block exit *)
  reachable : bool array;
  headers : bool array;
  doms : Dominators.t;
}

and ctx

val analyze : Prog.func -> t

(** Flow-sensitive symbolic address of a store/flush/atomic site. *)
val sym_at : t -> int * int -> Alias.sym

val kind_at : t -> int * int -> Alias.site_kind option

(** Walk one block, presenting the abstract state immediately before
    each instruction and, for flushes, the sites the flush upgrades
    (empty = the flush is redundant on every path). *)
val iter_block :
  t -> int ->
  f:(ii:int -> Types.instr -> before:state -> covered:(int * int) list ->
     unit) ->
  unit

(** Does predecessor [pred] of loop header [header] close the loop
    (header dominates pred)? Separates loop-carried obligations from
    hoistable loop-entry obligations. *)
val is_back_edge : t -> header:int -> pred:int -> bool

val string_of_sym : Alias.sym -> string
