(** Object-provenance alias analysis.

    Plays the role of LLVM's alias analysis in the cWSP compiler
    (Section IV-A): it classifies every memory access of a function by a
    symbolic address — a (global object, offset) pair when provable,
    [Any] otherwise. Two accesses may alias unless their symbolic
    addresses are provably disjoint. Heap pointers (loaded from memory or
    returned by calls) resolve to [Any], which is conservative: it only
    produces extra region cuts, never missed antidependences. *)

open Cwsp_ir

(* Provenance of a register value. *)
type prov =
  | Bot                       (* no pointer information yet *)
  | Obj of string * offv      (* address inside a named global *)
  | Unknown                   (* may point anywhere *)

and offv = Const of int | AnyOff

let join_off a b =
  match (a, b) with
  | Const x, Const y when x = y -> Const x
  | _ -> AnyOff

let join_prov a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Unknown, _ | _, Unknown -> Unknown
  | Obj (g1, o1), Obj (g2, o2) ->
    if g1 = g2 then Obj (g1, join_off o1 o2) else Unknown

let equal_prov a b =
  match (a, b) with
  | Bot, Bot | Unknown, Unknown -> true
  | Obj (g1, Const x), Obj (g2, Const y) -> g1 = g2 && x = y
  | Obj (g1, AnyOff), Obj (g2, AnyOff) -> g1 = g2
  | _ -> false

(* Transfer function for one instruction over a mutable register state. *)
let transfer state (ins : Types.instr) =
  let get = function
    | Types.Reg r -> state.(r)
    | Types.Imm _ -> Bot
  in
  let set d p = state.(d) <- p in
  match ins with
  | La (d, g) -> set d (Obj (g, Const 0))
  | Mov (d, src) -> set d (get src)
  | Bin (Add, d, a, b) -> (
    match (a, b, get a, get b) with
    | _, Types.Imm k, Obj (g, Const c), _ -> set d (Obj (g, Const (c + k)))
    | Types.Imm k, _, _, Obj (g, Const c) -> set d (Obj (g, Const (c + k)))
    | _, _, Obj (g, _), Bot | _, _, Bot, Obj (g, _) -> set d (Obj (g, AnyOff))
    | _, _, Obj _, _ | _, _, _, Obj _ -> set d Unknown
    | _, _, Unknown, _ | _, _, _, Unknown -> set d Unknown
    | _ -> set d Bot)
  | Bin (Sub, d, a, b) -> (
    match (b, get a) with
    | Types.Imm k, Obj (g, Const c) -> set d (Obj (g, Const (c - k)))
    | _, Obj (g, _) -> set d (Obj (g, AnyOff))
    | _, Unknown -> set d Unknown
    | _ -> set d Bot)
  | Bin (_, d, a, b) -> (
    (* other arithmetic on a pointer loses precision *)
    match (get a, get b) with
    | (Obj _ | Unknown), _ | _, (Obj _ | Unknown) -> set d Unknown
    | _ -> set d Bot)
  | Cmp (_, d, _, _) -> set d Bot
  | Load (d, _, _) -> set d Unknown (* loaded values may be heap pointers *)
  | Atomic_rmw (_, d, _, _, _) | Cas (d, _, _, _, _) -> set d Unknown
  | Call (_, _, Some d) -> set d Unknown
  | Call (_, _, None) | Store _ | Fence | Flush _ | Pfence | Ckpt _
  | Boundary _ -> ()

(** Resolved symbolic address of one access. *)
type sym = Exact of string * int | Within of string | Any

let resolve_addr prov disp =
  match prov with
  | Obj (g, Const c) -> Exact (g, c + disp)
  | Obj (g, AnyOff) -> Within g
  | Unknown | Bot -> Any

let may_alias a b =
  match (a, b) with
  | Any, _ | _, Any -> true
  | Exact (g1, o1), Exact (g2, o2) -> g1 = g2 && o1 = o2
  | Within g1, Within g2 | Within g1, Exact (g2, _) | Exact (g1, _), Within g2 ->
    g1 = g2

type access = {
  a_bi : int;
  a_ii : int;
  reads : bool;
  writes : bool;
  sym : sym;
}

(* Provenance fixpoint: symbolic register state at entry of every block,
   plus the reachability mask. Shared by [accesses] and [mem_sites]. *)
let block_entry_states (fn : Prog.func) =
  let n = Array.length fn.blocks in
  let nregs = max 1 fn.nregs in
  let entry_state () =
    Array.init nregs (fun r -> if r < fn.nparams then Unknown else Bot)
  in
  let bot_state () = Array.make nregs Bot in
  let states = Array.init n (fun i -> if i = 0 then entry_state () else bot_state ()) in
  let rpo = Cfg.reverse_postorder fn in
  let reachable = Cfg.reachable fn in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun bi ->
        let state = Array.copy states.(bi) in
        List.iter (fun ins -> transfer state ins) fn.blocks.(bi).instrs;
        List.iter
          (fun s ->
            let merged = Array.mapi (fun r p -> join_prov p state.(r)) states.(s) in
            if not (Array.for_all2 equal_prov merged states.(s)) then begin
              states.(s) <- merged;
              changed := true
            end)
          (Cfg.successors fn bi))
      rpo
  done;
  (states, reachable)

(** Flow-sensitive resolution of every data memory access of [fn].
    Checkpoint writes are excluded: the checkpoint area is hardware-managed
    and never read by program loads (only by the recovery runtime), so it
    cannot participate in a memory antidependence. *)
let accesses (fn : Prog.func) : access list =
  let n = Array.length fn.blocks in
  let states, reachable = block_entry_states fn in
  let result = ref [] in
  for bi = 0 to n - 1 do
    if reachable.(bi) then begin
      let state = Array.copy states.(bi) in
      List.iteri
        (fun ii ins ->
          (match ins with
          | Types.Load (_, base, off) ->
            result :=
              { a_bi = bi; a_ii = ii; reads = true; writes = false;
                sym = resolve_addr state.(base) off }
              :: !result
          | Types.Store (base, off, _) ->
            result :=
              { a_bi = bi; a_ii = ii; reads = false; writes = true;
                sym = resolve_addr state.(base) off }
              :: !result
          | Types.Atomic_rmw (_, _, base, off, _) | Types.Cas (_, base, off, _, _) ->
            result :=
              { a_bi = bi; a_ii = ii; reads = true; writes = true;
                sym = resolve_addr state.(base) off }
              :: !result
          | Types.Bin _ | Types.Cmp _ | Types.Mov _ | Types.La _ | Types.Call _
          | Types.Fence | Types.Flush _ | Types.Pfence | Types.Ckpt _
          | Types.Boundary _ -> ());
          transfer state ins)
        fn.blocks.(bi).instrs
    end
  done;
  List.rev !result

(** The kind of persist-relevant memory site at one position. *)
type site_kind = Sk_store | Sk_flush | Sk_atomic

(** Flow-sensitive symbolic addresses of every store, flush, and atomic of
    [fn], in program order — the site classification the persistency-order
    analysis ([Persist_order]) keys its abstract domain on. Loads are
    irrelevant to durability and excluded; so are checkpoint writes (the
    hardware checkpoint persist path handles them in every mode). *)
let mem_sites (fn : Prog.func) : ((int * int) * site_kind * sym) list =
  let n = Array.length fn.blocks in
  let states, reachable = block_entry_states fn in
  let result = ref [] in
  for bi = 0 to n - 1 do
    if reachable.(bi) then begin
      let state = Array.copy states.(bi) in
      List.iteri
        (fun ii ins ->
          (match ins with
          | Types.Store (base, off, _) ->
            result := ((bi, ii), Sk_store, resolve_addr state.(base) off) :: !result
          | Types.Flush (base, off) ->
            result := ((bi, ii), Sk_flush, resolve_addr state.(base) off) :: !result
          | Types.Atomic_rmw (_, _, base, off, _) | Types.Cas (_, base, off, _, _) ->
            result := ((bi, ii), Sk_atomic, resolve_addr state.(base) off) :: !result
          | _ -> ());
          transfer state ins)
        fn.blocks.(bi).instrs
    end
  done;
  List.rev !result
