(** Bottom-up interprocedural summary layer over [Callgraph]: a client
    supplies the per-function summarizer; this module orders the
    computation (callees first), substitutes parameter-relative places
    at call sites, and falls back to a conservative summary on
    recursive components. *)

open Cwsp_ir
module Ta = Tid_affine

type kind = Read | Write | Rmw

type access = {
  kind : kind;
  place : Ta.place;
  locks : Ta.place list;
  bi : int;
  ii : int;
  path : string;
}

type summary = {
  s_accesses : access list;
  s_acquired : Ta.place list;
  s_released : Ta.place list;
  s_conservative : bool;
}

(** Reads-and-writes-anything, no lock effects; used for recursive
    components. *)
val conservative_summary : summary

(** Substitute the caller's abstract argument values into a
    callee-relative place. *)
val subst_place : Ta.t array -> Ta.place -> Ta.place

(** Instantiate a callee summary at a call site [(bi, ii)]: places
    substituted, witness paths extended with [callee]. *)
val instantiate :
  summary -> callee:string -> args:Ta.t array -> bi:int -> ii:int -> summary

(** Bottom-up sweep; [summarize]'s [lookup] resolves already-computed
    callee summaries ([None] for intrinsics/unknown names). *)
val summaries :
  summarize:(lookup:(string -> summary option) -> Prog.func -> summary) ->
  Prog.t ->
  (string, summary) Hashtbl.t
