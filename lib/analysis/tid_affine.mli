(** Tid-affine symbolic value analysis: every register approximated as
    [base + k*tid + [lo, hi]], built for the cross-thread disjointness
    question the SPMD race verifier asks. [min_int]/[max_int] act as
    -inf/+inf interval sentinels; arithmetic that could overflow
    collapses to [Top]. *)

open Cwsp_ir

val ninf : int
val pinf : int

(** Exact 63-bit addition, [None] on overflow. *)
val checked_add : int -> int -> int option

(** Exact 63-bit multiplication, [None] on overflow. *)
val checked_mul : int -> int -> int option

(** Interval-bound addition: the infinity sentinels absorb, finite
    overflow is [None]. *)
val bound_add : int -> int -> int option

type base = Bnum | Bglob of string | Bparam of int

type t = Bot | Top | V of { base : base; k : int; lo : int; hi : int }

val const : int -> t
val of_global : string -> t
val of_param : int -> t

(** The symbolic thread id: [0 + 1*tid + [0,0]]. *)
val of_tid : t

val equal : t -> t -> bool

(** [join ~widen old next]: least upper bound; with [widen], bounds that
    strictly grow relative to [old] jump to their infinity. *)
val join : widen:bool -> t -> t -> t

(** Abstract one instruction over a mutable register state. *)
val step : t array -> Types.instr -> unit

(** Entry register state; [tid_param] marks the parameter holding the
    thread id, remaining parameters get opaque [Bparam] bases. *)
val entry_state : ?tid_param:int -> Prog.func -> t array

(** Per-block entry states and the reachability mask: RPO fixpoint with
    delayed widening (precise diamond joins, terminating loops). *)
val block_entry_states :
  ?tid_param:int -> Prog.func -> t array array * bool array

(** A resolved memory place: global or unresolved-parameter base with a
    tid coefficient and a residual offset interval. *)
type place =
  | Pglob of { g : string; k : int; lo : int; hi : int }
  | Pparam of { p : int; k : int; lo : int; hi : int }
  | Pany

val place_of : t -> disp:int -> place

(** Does the place's address depend on the thread id (or is it wholly
    unknown)? *)
val tid_dependent : place -> bool

(** A provably unique concrete word — the only shape usable as a lock
    identity. *)
val exact_place : place -> bool

val place_to_string : place -> string

type verdict = Disjoint | Overlap | Unknown

(** Can these two places, evaluated in two different threads t1 <> t2
    (both >= 0), touch a common 8-byte word? [Disjoint] is a proof over
    all thread pairs; [Overlap] is a proven collision for some pair;
    reasoning is object-bounded as in [Alias]. *)
val cross_thread : place -> place -> verdict
