(** Static call graph with bottom-up SCC ordering.

    The first interprocedural layer in the repository: [Interproc]
    computes per-function summaries in the order this module produces,
    so every summary can assume its (non-recursive) callees are already
    summarized. Call targets in this IR are direct names, so the graph
    is exact — there are no indirect calls to approximate. *)

open Cwsp_ir

type t = {
  funcs : string list; (* declaration order *)
  callees : (string, string list) Hashtbl.t; (* deduped, declaration order *)
}

let build (p : Prog.t) : t =
  let callees = Hashtbl.create 16 in
  let funcs = List.map fst p.funcs in
  List.iter
    (fun (name, fn) ->
      let seen = Hashtbl.create 4 in
      let out = ref [] in
      Prog.iter_instrs
        (fun _ _ ins ->
          match ins with
          | Types.Call (callee, _, _) ->
            if Prog.find_func p callee <> None && not (Hashtbl.mem seen callee)
            then begin
              Hashtbl.add seen callee ();
              out := callee :: !out
            end
          | _ -> ())
        fn;
      Hashtbl.replace callees name (List.rev !out))
    p.funcs;
  { funcs; callees }

let callees (t : t) name =
  Option.value ~default:[] (Hashtbl.find_opt t.callees name)

(* Tarjan strongly-connected components. The components come out in
   reverse topological order of the condensation — i.e. callees before
   callers — which is exactly the bottom-up summary order. *)
let sccs_bottom_up (t : t) : string list list =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (callees t v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let comp = ref [] in
      let continue_ = ref true in
      while !continue_ do
        match !stack with
        | [] -> continue_ := false
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          comp := w :: !comp;
          if w = v then continue_ := false
      done;
      out := !comp :: !out
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) t.funcs;
  (* Tarjan emits components in reverse topological order already; we
     accumulated them with [::], so reverse back. *)
  List.rev !out

let recursive (t : t) (scc : string list) =
  match scc with
  | [ v ] -> List.mem v (callees t v)
  | _ -> true
