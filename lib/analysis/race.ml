(** Static SPMD data-race analysis.

    The SPMD interpreter ([Cwsp_interp.Multi]) is sequentially
    consistent *for data-race-free programs* (Section VIII) — this
    analysis discharges that premise. Over a program whose threads all
    run one worker function, it classifies every cross-thread
    conflicting access pair on shared globals, combining three
    ingredients:

    - [Tid_affine] disjointness: accesses of the shape
      [base + f(tid)] are proven pairwise-disjoint across threads by
      stride/range reasoning — the lock-free half of the story;
    - a lockset analysis (Eraser-style, run on the shared [Dataflow]
      solver) recognizing the repository's own lock idioms as named
      patterns (below);
    - [Interproc] bottom-up summaries, so accesses and lock effects
      inside callees ([spin_lock], [memcpy], the allocator) are
      instantiated at worker call sites.

    {2 Named lock-operation patterns}

    - [Cas_acquire]: a {e guarded} [cas (expected 0) (desired nonzero)]
      — the spinlock acquire in [Cwsp_runtime.Libc.spin_lock] and the
      inline spins in [Workloads.Kernels.transactions] /
      [Workloads.W_parallel.ptso]. Guarded means the CAS result is
      compared against the expected value and the failure edge of that
      comparison branches back to re-execute the CAS ([cas_guarded]):
      only then does a successful CAS witness that no other thread
      holds the lock. A CAS whose outcome is ignored, or whose failure
      path proceeds into the "critical" section anyway, excludes
      nothing and is demoted to an ordinary atomic data access.
    - [Rmw_release]: [atomic_rmw And _ (Imm 0)] — [spin_unlock]. The
      release applies its lockset effect {e and} is still recorded as
      an atomic write to the word, so mixed atomic/plain traffic on the
      word stays visible to classification.
    - [Tso_release]: a *plain* store of 0 to a known lock word — the
      x86 unlock idiom [Workloads.Kernels.transactions] uses ("on TSO a
      plain store suffices"). Under the interpreter's SC-interleaving
      memory this publishes the critical section exactly like an atomic
      release, so the lockset treats it as one; it is only recognized
      on words some {e guarded} acquire targets, anything else stored
      to a lock word remains an ordinary (racy) access.

    A bare fetch-add such as [atomic_rmw Add lock (Imm 1)] with the
    result discarded is deliberately {e not} an acquire: it never
    blocks or retries, so every thread sails into the section and the
    only thing the RMW provides is atomicity of its own update. It is
    classified as what it is — an [Ip.Rmw] data access.

    A lock identity must be a provably unique concrete word
    ([Ta.exact_place]); acquire shapes on unprovable addresses are
    demoted to ordinary atomic data accesses. Locks that may still be
    held at worker exit broke release discipline and protect nothing —
    their "critical sections" are classified as data races. *)

open Cwsp_ir
module Ta = Tid_affine
module Ip = Interproc

(* ---- named patterns ---- *)

type pattern = Cas_acquire | Rmw_release | Tso_release

let pattern_name = function
  | Cas_acquire -> "cas-acquire"
  | Rmw_release -> "rmw-release"
  | Tso_release -> "tso-release"

(* Shape-level classification (address and guard not yet considered). *)
let atomic_pattern (ins : Types.instr) : pattern option =
  match ins with
  | Types.Cas (_, _, _, Types.Imm 0, Types.Imm d) when d <> 0 -> Some Cas_acquire
  | Types.Atomic_rmw (Types.And, _, _, _, Types.Imm 0) -> Some Rmw_release
  | _ -> None

(* ---- acquire-guard verification ---- *)

(* Register written by an instruction, if any. *)
let def_of = function
  | Types.Bin (_, d, _, _)
  | Types.Cmp (_, d, _, _)
  | Types.Mov (d, _)
  | Types.La (d, _)
  | Types.Load (d, _, _)
  | Types.Atomic_rmw (_, d, _, _, _)
  | Types.Cas (d, _, _, _, _)
  | Types.Call (_, _, Some d) -> Some d
  | _ -> None

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t

(* Does label [l] re-execute the CAS's block [target]? Either directly,
   or through a short chain of empty forwarding blocks. *)
let rec retries_to (fn : Prog.func) ~target l ~depth =
  l = target
  || depth > 0
     && (let blk = fn.blocks.(l) in
         blk.instrs = []
         &&
         match blk.term with
         | Types.Jmp l' -> retries_to fn ~target l' ~depth:(depth - 1)
         | _ -> false)

(** A [Cas_acquire] shape only acquires if it is {e guarded}: within
    its block the CAS result [d] is compared against the expected value
    0 (before any redefinition of [d]), the comparison result reaches
    the block terminator unclobbered, and the terminator branches the
    {e failure} side back to the CAS's own block — i.e. the thread
    spins until the CAS succeeds. Anything looser (result ignored,
    failure path falling through into the section) provides no mutual
    exclusion. *)
let cas_guarded (fn : Prog.func) ~bi ~ii d : bool =
  let blk = fn.blocks.(bi) in
  let rec find_guard = function
    | [] -> None
    | Types.Cmp (((Types.Eq | Types.Ne) as op), g, Types.Reg r, Types.Imm 0) :: tl
      when r = d ->
      Some (op, g, tl)
    | Types.Cmp (((Types.Eq | Types.Ne) as op), g, Types.Imm 0, Types.Reg r) :: tl
      when r = d ->
      Some (op, g, tl)
    | ins :: tl -> if def_of ins = Some d then None else find_guard tl
  in
  match find_guard (drop (ii + 1) blk.instrs) with
  | None -> false
  | Some (op, g, rest) -> (
    List.for_all (fun ins -> def_of ins <> Some g) rest
    &&
    match blk.term with
    | Types.Br (r, ifso, ifnot) when r = g ->
      (* [Br] takes [ifso] when g <> 0: for [Eq old 0] success is the
         taken edge, for [Ne old 0] success is the fall-through. *)
      let fail = match op with Types.Eq -> ifnot | _ -> ifso in
      retries_to fn ~target:bi fail ~depth:4
    | _ -> false)

(* Guarded Cas_acquire sites of a function, keyed by (block, instr). *)
let guarded_sites (fn : Prog.func) : (int * int, unit) Hashtbl.t =
  let t = Hashtbl.create 4 in
  Array.iteri
    (fun bi (blk : Prog.block) ->
      List.iteri
        (fun ii ins ->
          match ins with
          | Types.Cas (d, _, _, Types.Imm 0, Types.Imm dz) when dz <> 0 ->
            if cas_guarded fn ~bi ~ii d then Hashtbl.replace t (bi, ii) ()
          | _ -> ())
        blk.instrs)
    fn.blocks;
  t

(* ---- lockset flow state ---- *)

(* Sorted place lists as sets. *)
let union a b = List.sort_uniq compare (List.rev_append a b)
let inter a b = List.filter (fun x -> List.mem x b) a
let remove x l = List.filter (fun y -> y <> x) l
let add x l = if List.mem x l then l else List.sort compare (x :: l)

type ls = {
  must : Ta.place list; (* held on every path *)
  may : Ta.place list; (* held on some path *)
  rel : Ta.place list; (* released on every path *)
}

(* What one instruction does to the lockset. *)
type effect_ =
  | Enone (* ordinary instruction (data accesses included) *)
  | Eacquire of Ta.place
  | Erelease of Ta.place
  | Ecall of string * Ip.summary (* instantiated at the call site *)

type fctx = {
  fn : Prog.func;
  av : Ta.t array array; (* tid-affine entry states per block *)
  guarded : (int * int, unit) Hashtbl.t; (* guarded Cas_acquire sites *)
  lock_objs : (Ta.place, unit) Hashtbl.t; (* exact words some acquire targets *)
  lookup : string -> Ip.summary option;
}

let operand_av (av : Ta.t array) = function
  | Types.Reg r -> av.(r)
  | Types.Imm c -> Ta.const c

let args_av av args = Array.of_list (List.map (operand_av av) args)

(* Classify one instruction given the live tid-affine state. [bi]/[ii]
   locate the instruction so [Cas_acquire] shapes can be checked for a
   guard; unguarded ones stay [Enone] (ordinary atomic data access). *)
let effect_of (ctx : fctx) (av : Ta.t array) ~bi ~ii (ins : Types.instr) :
    effect_ =
  match ins with
  | Types.Cas (_, base, _, _, _) | Types.Atomic_rmw (_, _, base, _, _) -> (
    match atomic_pattern ins with
    | None -> Enone
    | Some Cas_acquire when not (Hashtbl.mem ctx.guarded (bi, ii)) -> Enone
    | Some pat -> (
      let off =
        match ins with
        | Types.Cas (_, _, o, _, _) | Types.Atomic_rmw (_, _, _, o, _) -> o
        | _ -> 0
      in
      let p = Ta.place_of av.(base) ~disp:off in
      if not (Ta.exact_place p) then Enone
      else
        match pat with
        | Cas_acquire -> Eacquire p
        | Rmw_release | Tso_release -> Erelease p))
  | Types.Store (base, off, Types.Imm 0) ->
    (* Tso_release: plain unlock store, only on known lock words *)
    let p = Ta.place_of av.(base) ~disp:off in
    if Ta.exact_place p && Hashtbl.mem ctx.lock_objs p then Erelease p else Enone
  | Types.Call (f, args, _) -> (
    match ctx.lookup f with
    | Some s ->
      Ecall (f, Ip.instantiate s ~callee:f ~args:(args_av av args) ~bi:0 ~ii:0)
    | None -> Enone)
  | _ -> Enone

let apply_effect ls = function
  | Enone -> ls
  | Eacquire p -> { ls with must = add p ls.must; may = add p ls.may }
  | Erelease p ->
    { must = remove p ls.must; may = remove p ls.may; rel = add p ls.rel }
  | Ecall (_, s) ->
    let sub l = List.fold_left (fun acc p -> remove p acc) l s.Ip.s_released in
    let addl l = List.fold_left (fun acc p -> add p acc) l s.Ip.s_acquired in
    {
      must = addl (sub ls.must);
      may = addl (sub ls.may);
      rel = List.fold_left (fun acc p -> add p acc) ls.rel s.Ip.s_released;
    }

module Lockset_problem = struct
  module D = struct
    type t = ls option (* None: unreachable *)

    let bottom = None
    let equal = ( = )

    let join a b =
      match (a, b) with
      | None, x | x, None -> x
      | Some a, Some b ->
        Some
          {
            must = inter a.must b.must;
            may = union a.may b.may;
            rel = inter a.rel b.rel;
          }
  end

  type ctx = fctx

  let direction = `Forward
  let boundary _ _ = Some { must = []; may = []; rel = [] }

  let transfer (ctx : ctx) (fn : Prog.func) bi (s : D.t) : D.t =
    match s with
    | None -> None
    | Some ls ->
      let av = Array.copy ctx.av.(bi) in
      let state = ref ls in
      List.iteri
        (fun ii ins ->
          state := apply_effect !state (effect_of ctx av ~bi ~ii ins);
          Ta.step av ins)
        fn.blocks.(bi).instrs;
      Some !state
end

module Lockset_solver = Dataflow.Make (Lockset_problem)

(* ---- per-function engine ---- *)

type fresult = {
  r_accesses : Ip.access list;
  r_may_exit : Ta.place list; (* may-held at some Ret: broken discipline *)
  r_rel_exit : Ta.place list; (* released on every path to every Ret *)
  r_lock_objs : (Ta.place, unit) Hashtbl.t;
}

let analyze ~(lookup : string -> Ip.summary option) ?tid_param (fn : Prog.func)
    : fresult =
  let av, reachable = Ta.block_entry_states ?tid_param fn in
  let guarded = guarded_sites fn in
  (* Pre-pass: every exact word a *guarded* acquire (direct or via a
     summarized callee) targets is a lock object; the set must exist
     before the lockset flow so [Tso_release] stores classify. *)
  let lock_objs : (Ta.place, unit) Hashtbl.t = Hashtbl.create 4 in
  Array.iteri
    (fun bi (blk : Prog.block) ->
      if reachable.(bi) then begin
        let st = Array.copy av.(bi) in
        List.iteri
          (fun ii ins ->
            (match ins with
            | Types.Cas (_, base, off, _, _) -> (
              match atomic_pattern ins with
              | Some Cas_acquire when Hashtbl.mem guarded (bi, ii) ->
                let p = Ta.place_of st.(base) ~disp:off in
                if Ta.exact_place p then Hashtbl.replace lock_objs p ()
              | _ -> ())
            | Types.Call (f, args, _) -> (
              match lookup f with
              | Some s ->
                let inst =
                  Ip.instantiate s ~callee:f ~args:(args_av st args) ~bi ~ii:0
                in
                List.iter
                  (fun p ->
                    if Ta.exact_place p then Hashtbl.replace lock_objs p ())
                  (inst.Ip.s_acquired @ inst.Ip.s_released)
              | None -> ())
            | _ -> ());
            Ta.step st ins)
          blk.instrs
      end)
    fn.blocks;
  let ctx = { fn; av; guarded; lock_objs; lookup } in
  let solved = Lockset_solver.solve ctx fn in
  (* Collection pass: data accesses with the locks held at them, plus
     the exit-state lock discipline facts. *)
  let accesses = ref [] in
  let may_exit = ref [] in
  let rel_exit = ref None in
  Array.iteri
    (fun bi (blk : Prog.block) ->
      if reachable.(bi) then begin
        let st = Array.copy av.(bi) in
        let ls =
          ref
            (match solved.inb.(bi) with
            | Some ls -> ls
            | None -> { must = []; may = []; rel = [] })
        in
        List.iteri
          (fun ii ins ->
            let eff = effect_of ctx st ~bi ~ii ins in
            (match (eff, ins) with
            | Erelease _, Types.Atomic_rmw (_, _, base, off, _) ->
              (* Rmw_release: lockset effect *and* an atomic write to
                 the word — mixed atomic/plain traffic must stay
                 classifiable *)
              accesses :=
                { Ip.kind = Ip.Rmw; place = Ta.place_of st.(base) ~disp:off;
                  locks = !ls.must; bi; ii; path = "" }
                :: !accesses
            | (Eacquire _ | Erelease _), _ -> () (* lock op, not data *)
            | Ecall (f, _), Types.Call (_, args, _) ->
              (* re-instantiate with the true position *)
              let s = Option.get (lookup f) in
              let inst =
                Ip.instantiate s ~callee:f ~args:(args_av st args) ~bi ~ii
              in
              List.iter
                (fun (a : Ip.access) ->
                  accesses :=
                    { a with locks = union a.locks !ls.must } :: !accesses)
                inst.Ip.s_accesses
            | _, Types.Load (_, base, off) ->
              accesses :=
                { Ip.kind = Ip.Read; place = Ta.place_of st.(base) ~disp:off;
                  locks = !ls.must; bi; ii; path = "" }
                :: !accesses
            | _, Types.Store (base, off, _) ->
              accesses :=
                { Ip.kind = Ip.Write; place = Ta.place_of st.(base) ~disp:off;
                  locks = !ls.must; bi; ii; path = "" }
                :: !accesses
            | _, (Types.Atomic_rmw (_, _, base, off, _) | Types.Cas (_, base, off, _, _)) ->
              accesses :=
                { Ip.kind = Ip.Rmw; place = Ta.place_of st.(base) ~disp:off;
                  locks = !ls.must; bi; ii; path = "" }
                :: !accesses
            | _ -> ());
            ls := apply_effect !ls eff;
            Ta.step st ins)
          blk.instrs;
        match blk.term with
        | Types.Ret _ ->
          let out =
            match solved.outb.(bi) with
            | Some ls -> ls
            | None -> { must = []; may = []; rel = [] }
          in
          may_exit := union !may_exit out.may;
          rel_exit :=
            Some
              (match !rel_exit with
              | None -> out.rel
              | Some r -> inter r out.rel)
        | _ -> ()
      end)
    fn.blocks;
  {
    r_accesses = List.rev !accesses;
    r_may_exit = !may_exit;
    r_rel_exit = Option.value ~default:[] !rel_exit;
    r_lock_objs = lock_objs;
  }

(* The [Interproc] client: summarize a callee (no tid in scope). *)
let summarize ~lookup (fn : Prog.func) : Ip.summary =
  let r = analyze ~lookup fn in
  {
    Ip.s_accesses = r.r_accesses;
    s_acquired = r.r_may_exit;
    s_released = r.r_rel_exit;
    s_conservative = false;
  }

(* ---- SPMD entry convention ---- *)

(** SPMD programs in this repository enter a unary function named
    ["worker"] taking the thread id ([W_parallel.scaffold],
    [Multi.create]); its presence is what arms the race tier. *)
let spmd_entry (p : Prog.t) : string option =
  match Prog.find_func p "worker" with
  | Some fn when fn.nparams = 1 -> Some "worker"
  | _ -> None

(* ---- findings ---- *)

type rule =
  | Rdata_race
  | Runlocked_shared_write
  | Rtid_overlap_unprovable
  | Rredundant_atomic

type finding = { f_rule : rule; f_bi : int; f_ii : int; f_msg : string }

let kind_str = function
  | Ip.Read -> "read"
  | Ip.Write -> "write"
  | Ip.Rmw -> "atomic rmw"

let access_str (a : Ip.access) =
  Printf.sprintf "%s of %s at (%d,%d)%s%s" (kind_str a.kind)
    (Ta.place_to_string a.place) a.bi a.ii
    (if a.path = "" then "" else Printf.sprintf " [via %s]" a.path)
    (match a.locks with
    | [] -> ""
    | ls ->
      Printf.sprintf " holding {%s}"
        (String.concat ", " (List.map Ta.place_to_string ls)))

(** Classify every cross-thread conflicting access pair of [worker].
    Self-pairs are included: a single static site executes in all
    threads, so it conflicts with its own image in another thread
    unless its footprint is tid-disjoint. *)
let check (p : Prog.t) ~worker : finding list =
  let summaries = Ip.summaries ~summarize p in
  let wfn = Prog.func_exn p worker in
  let r = analyze ~lookup:(Hashtbl.find_opt summaries) ~tid_param:0 wfn in
  let invalid = r.r_may_exit in
  let valid_lock l = Ta.exact_place l && not (List.mem l invalid) in
  let accesses = Array.of_list r.r_accesses in
  let findings = ref [] in
  let emit f_rule ~bi ~ii fmt =
    Printf.ksprintf
      (fun f_msg -> findings := { f_rule; f_bi = bi; f_ii = ii; f_msg } :: !findings)
      fmt
  in
  let n = Array.length accesses in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let a = accesses.(i) and b = accesses.(j) in
      let both k = a.Ip.kind = k && b.Ip.kind = k in
      if (not (both Ip.Read)) && not (both Ip.Rmw) then begin
        match Ta.cross_thread a.place b.place with
        | Ta.Disjoint -> ()
        | verdict ->
          if
            not
              (List.exists
                 (fun l -> valid_lock l && List.mem l b.Ip.locks)
                 a.Ip.locks)
          then begin
            let overlap_str =
              match verdict with
              | Ta.Overlap -> "overlap across threads"
              | _ -> "cannot be proven disjoint across threads"
            in
            if Ta.tid_dependent a.place || Ta.tid_dependent b.place then
              emit Rtid_overlap_unprovable ~bi:a.bi ~ii:a.ii
                "tid-indexed footprints %s: %s vs %s" overlap_str
                (access_str a) (access_str b)
            else if (a.kind = Ip.Rmw) <> (b.kind = Ip.Rmw) then
              emit Rdata_race ~bi:a.bi ~ii:a.ii
                "mixed atomic/plain accesses to one location (%s): %s vs %s"
                overlap_str (access_str a) (access_str b)
            else if a.locks = [] && b.locks = [] then
              emit Runlocked_shared_write ~bi:a.bi ~ii:a.ii
                "unsynchronized shared accesses (%s): %s vs %s" overlap_str
                (access_str a) (access_str b)
            else begin
              let broken =
                List.filter (fun l -> List.mem l invalid) (a.locks @ b.locks)
              in
              match broken with
              | l :: _ ->
                emit Rdata_race ~bi:a.bi ~ii:a.ii
                  "lock %s is acquired but may never be released (held at \
                   worker exit), so it proves no exclusion: %s vs %s"
                  (Ta.place_to_string l) (access_str a) (access_str b)
              | [] ->
                emit Rdata_race ~bi:a.bi ~ii:a.ii
                  "no common lock protects the conflicting accesses (%s): %s \
                   vs %s"
                  overlap_str (access_str a) (access_str b)
            end
          end
      end
    done
  done;
  (* redundant-atomic lint: an atomic whose footprint is provably
     thread-private needs no atomicity *)
  Array.iteri
    (fun i (a : Ip.access) ->
      ignore i;
      if
        a.kind = Ip.Rmw
        && (not (Hashtbl.mem r.r_lock_objs a.place))
        && Ta.cross_thread a.place a.place = Ta.Disjoint
        && Array.for_all
             (fun (b : Ip.access) ->
               b == a || Ta.cross_thread a.place b.Ip.place = Ta.Disjoint)
             accesses
      then
        emit Rredundant_atomic ~bi:a.bi ~ii:a.ii
          "atomic rmw on a provably thread-private word %s — plain accesses \
           suffice"
          (Ta.place_to_string a.place))
    accesses;
  (* one finding per (rule, site pair) is already guaranteed; sort for
     deterministic output *)
  List.sort_uniq compare (List.rev !findings)
