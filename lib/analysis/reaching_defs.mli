(** May-reaching definitions at block granularity, on the shared
    [Dataflow] solver: which registers have at least one definition on
    some path from the entry to each block boundary. The verifier's
    checkpoint checks consume this to decide whether a slot reference
    can name a register that was actually computed (and hence
    checkpointed) before its boundary runs. *)

open Cwsp_ir
module IntSet : Set.S with type elt = int

type result = {
  inb : IntSet.t array;  (** per block: registers defined on some path to entry *)
  outb : IntSet.t array; (** per block: same, at block exit *)
}

val solve : Prog.func -> result
