(** Object-provenance alias analysis — the role of LLVM's alias analysis
    in the cWSP compiler (Section IV-A). Classifies every memory access
    by a symbolic address; two accesses may alias unless provably
    disjoint. Heap pointers (loaded from memory or returned by calls)
    resolve to [Any] — conservative: extra region cuts, never missed
    antidependences (validated dynamically by the fuzzer's
    alias-soundness oracle). *)

open Cwsp_ir

(** Resolved symbolic address of one access. *)
type sym =
  | Exact of string * int (** a specific word of a named global *)
  | Within of string      (** somewhere inside a named global *)
  | Any

val may_alias : sym -> sym -> bool

type access = {
  a_bi : int;
  a_ii : int;
  reads : bool;
  writes : bool;
  sym : sym;
}

(** Flow-sensitive resolution of every data memory access of a function.
    Checkpoint writes are excluded (the checkpoint area is never read by
    program loads). *)
val accesses : Prog.func -> access list

(** The kind of persist-relevant memory site at one position. *)
type site_kind = Sk_store | Sk_flush | Sk_atomic

(** Flow-sensitive symbolic addresses of every store, flush, and atomic
    of a function, in program order — the site classification the
    persistency-order analysis keys its abstract domain on. *)
val mem_sites : Prog.func -> ((int * int) * site_kind * sym) list
