(** Tid-affine symbolic value analysis for SPMD workers.

    Every register is approximated as [base + k*tid + [lo, hi]]: a base
    provenance (pure number, a global's address, or an unresolved
    parameter of a summarized callee), an affine coefficient on the
    thread id, and a saturating interval of residual offsets. The point
    of the domain is the cross-thread disjointness question the race
    verifier asks: do two accesses of the shape [base + f(tid)],
    evaluated in *different* threads, ever touch a common 8-byte word?
    Striped layouts ([arr + tid*stripe + bounded]) are provably
    disjoint when the stride covers the residual range; everything the
    domain cannot bound widens to [Top] and stays conservatively
    "maybe overlapping".

    Like [Alias], reasoning is object-bounded: addresses derived from a
    global are assumed to stay inside that global, so accesses to
    different globals never conflict. The dynamic monitor
    ([Cwsp_interp.Race_monitor]) cross-checks this premise on executed
    interleavings.

    Interval bounds use [min_int]/[max_int] as -inf/+inf sentinels; any
    arithmetic that could overflow 63-bit ints collapses to [Top]
    rather than wrapping, because machine arithmetic wraps and a wrapped
    value no longer satisfies the affine claim. *)

open Cwsp_ir

let ninf = min_int
let pinf = max_int

type base = Bnum | Bglob of string | Bparam of int

type t = Bot | Top | V of { base : base; k : int; lo : int; hi : int }

let const c = V { base = Bnum; k = 0; lo = c; hi = c }
let of_global g = V { base = Bglob g; k = 0; lo = 0; hi = 0 }
let of_param p = V { base = Bparam p; k = 0; lo = 0; hi = 0 }
let of_tid = V { base = Bnum; k = 1; lo = 0; hi = 0 }

(* Exact 63-bit addition/multiplication; [None] on overflow. *)
let checked_add a b =
  let s = a + b in
  if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then None else Some s

let checked_mul a b =
  if a = 0 || b = 0 then Some 0
  else
    let p = a * b in
    (* [min_int] products are rejected even when exact: [min_int] is the
       -inf sentinel, and a coefficient of [min_int] cannot be negated
       without wrapping (sub_av, exists_mult). *)
    if p / b = a && p <> min_int then Some p else None

let checked_sub a b = if b = min_int then None else checked_add a (-b)

(* Interval-bound addition: infinities absorb, finite overflow fails. *)
let bound_add a b =
  if a = ninf || b = ninf then Some ninf
  else if a = pinf || b = pinf then Some pinf
  else checked_add a b

let equal a b =
  match (a, b) with
  | Bot, Bot | Top, Top -> true
  | V a, V b -> a.base = b.base && a.k = b.k && a.lo = b.lo && a.hi = b.hi
  | _ -> false

(** [join ~widen old new]: least upper bound; with [widen] a bound that
    strictly grows relative to [old] jumps straight to its infinity, so
    loop fixpoints terminate. Bases or coefficients that disagree
    collapse to [Top]. *)
let join ~widen a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | V va, V vb ->
    if va.base <> vb.base || va.k <> vb.k then Top
    else
      let lo = min va.lo vb.lo and hi = max va.hi vb.hi in
      let lo = if widen && lo < va.lo then ninf else lo in
      let hi = if widen && hi > va.hi then pinf else hi in
      V { va with lo; hi }

(* ---- abstract arithmetic ---- *)

let mk base k lo hi =
  match (lo, hi) with
  | Some lo, Some hi -> V { base; k; lo; hi }
  | _ -> Top

let add_av a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, _ | _, Top -> Top
  | V a, V b -> (
    let base =
      match (a.base, b.base) with
      | Bnum, x | x, Bnum -> Some x
      | _ -> None (* pointer + pointer: meaningless *)
    in
    match (base, checked_add a.k b.k) with
    | Some base, Some k -> mk base k (bound_add a.lo b.lo) (bound_add a.hi b.hi)
    | _ -> Top)

let sub_av a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, _ | _, Top -> Top
  | V a, V b -> (
    let base =
      match (a.base, b.base) with
      | x, Bnum -> Some x
      | Bglob g1, Bglob g2 when g1 = g2 -> Some Bnum (* pointer difference *)
      | _ -> None
    in
    let neg x = if x = ninf then pinf else if x = pinf then ninf else -x in
    (* [checked_sub], not [checked_add _ (-k)]: negating k = min_int
       wraps and would feed a wrong coefficient to disjointness *)
    match (base, checked_sub a.k b.k) with
    | Some base, Some k ->
      mk base k (bound_add a.lo (neg b.hi)) (bound_add a.hi (neg b.lo))
    | _ -> Top)

(* Scale by an exact constant (the [tid * stride] shape). *)
let scale_av a c =
  match a with
  | Bot -> Bot
  | Top -> Top
  | V a when a.base = Bnum -> (
    if c = 0 then const 0
    else
      match checked_mul a.k c with
      | None -> Top
      | Some k ->
        let sb x =
          if x = ninf then Some (if c > 0 then ninf else pinf)
          else if x = pinf then Some (if c > 0 then pinf else ninf)
          else checked_mul x c
        in
        let l = sb a.lo and h = sb a.hi in
        let lo, hi = if c > 0 then (l, h) else (h, l) in
        mk Bnum k lo hi)
  | V _ -> Top (* scaling a pointer *)

let exact_const = function
  | V { base = Bnum; k = 0; lo; hi } when lo = hi && lo > ninf && hi < pinf ->
    Some lo
  | _ -> None

let mul_av a b =
  match (exact_const a, exact_const b) with
  | Some c, _ -> scale_av b c
  | _, Some c -> scale_av a c
  | _ -> (
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | ( V { base = Bnum; k = 0; lo = l1; hi = h1 },
        V { base = Bnum; k = 0; lo = l2; hi = h2 } )
      when l1 > ninf && h1 < pinf && l2 > ninf && h2 < pinf -> (
      let ps =
        [ checked_mul l1 l2; checked_mul l1 h2; checked_mul h1 l2;
          checked_mul h1 h2 ]
      in
      match ps with
      | [ Some a; Some b; Some c; Some d ] ->
        let lo = min (min a b) (min c d) and hi = max (max a b) (max c d) in
        V { base = Bnum; k = 0; lo; hi }
      | _ -> Top)
    | _ -> Top)

(* Nonnegative-bounded view: [Some hi] when the value is provably in
   [0, hi] with no base/tid component. *)
let nonneg_bound = function
  | V { base = Bnum; k = 0; lo; hi } when lo >= 0 -> Some hi
  | _ -> None

(* Smallest all-ones mask covering [h]: bitwise | / ^ of values in
   [0, h1] x [0, h2] stays within [0, mask h1 lor mask h2]. *)
let pow2_mask h =
  if h = pinf then pinf
  else begin
    let m = ref 1 in
    while !m <= h && !m < max_int / 2 do
      m := (!m * 2) + 1
    done;
    if !m <= h then pinf else !m
  end

let and_av a b =
  (* x land m for m >= 0 lands in [0, m] regardless of x — even a Top
     or tid-dependent x — which is what makes masked striped offsets
     ([(e land mask) * 8]) provable. *)
  match (exact_const a, exact_const b) with
  | Some m, _ when m >= 0 -> (
    match nonneg_bound b with
    | Some h -> V { base = Bnum; k = 0; lo = 0; hi = min m h }
    | None -> V { base = Bnum; k = 0; lo = 0; hi = m })
  | _, Some m when m >= 0 -> (
    match nonneg_bound a with
    | Some h -> V { base = Bnum; k = 0; lo = 0; hi = min m h }
    | None -> V { base = Bnum; k = 0; lo = 0; hi = m })
  | _ -> (
    match (nonneg_bound a, nonneg_bound b) with
    | Some h1, Some h2 -> V { base = Bnum; k = 0; lo = 0; hi = min h1 h2 }
    | _ -> Top)

let orxor_av a b =
  match (nonneg_bound a, nonneg_bound b) with
  | Some h1, Some h2 ->
    let m = if h1 = pinf || h2 = pinf then pinf else pow2_mask h1 lor pow2_mask h2 in
    V { base = Bnum; k = 0; lo = 0; hi = m }
  | _ -> Top

let shl_av a b =
  match exact_const b with
  | Some c when c >= 0 && c < 62 -> scale_av a (1 lsl c)
  | _ -> Top

let shr_av a b =
  match (nonneg_bound a, exact_const b) with
  | Some h, Some c when c >= 0 && c < 62 ->
    V { base = Bnum; k = 0; lo = 0; hi = (if h = pinf then pinf else h asr c) }
  | _ -> Top

let div_av a b =
  match (a, exact_const b) with
  | V { base = Bnum; k = 0; lo; hi }, Some c when c > 0 && lo >= 0 ->
    V { base = Bnum; k = 0; lo = lo / c;
        hi = (if hi = pinf then pinf else hi / c) }
  | _ -> Top

let rem_av a b =
  match exact_const b with
  | Some m when m <> 0 ->
    let mm = abs m - 1 in
    (* OCaml Rem follows the dividend's sign and |result| < |m|, for any
       dividend — even wrapped/unknown ones — so these bounds need no
       precondition. A provably nonnegative dividend (including the
       affine k*tid + [lo>=0] shape, tid >= 0) tightens to [0, m-1]. *)
    let nonneg =
      match a with
      | V { base = Bnum; k; lo; _ } when k >= 0 && lo >= 0 -> true
      | _ -> false
    in
    V { base = Bnum; k = 0; lo = (if nonneg then 0 else -mm); hi = mm }
  | _ -> Top

(* ---- transfer ---- *)

let step (state : t array) (ins : Types.instr) =
  let get = function Types.Reg r -> state.(r) | Types.Imm c -> const c in
  let set d v = state.(d) <- v in
  match ins with
  | Types.Bin (op, d, a, b) -> (
    let x = get a and y = get b in
    match op with
    | Types.Add -> set d (add_av x y)
    | Types.Sub -> set d (sub_av x y)
    | Types.Mul -> set d (mul_av x y)
    | Types.Div -> set d (div_av x y)
    | Types.Rem -> set d (rem_av x y)
    | Types.And -> set d (and_av x y)
    | Types.Or | Types.Xor -> set d (orxor_av x y)
    | Types.Shl -> set d (shl_av x y)
    | Types.Lshr | Types.Ashr -> set d (shr_av x y))
  | Types.Cmp (_, d, _, _) -> set d (V { base = Bnum; k = 0; lo = 0; hi = 1 })
  | Types.Mov (d, src) -> set d (get src)
  | Types.La (d, g) -> set d (of_global g)
  | Types.Load (d, _, _) -> set d Top
  | Types.Atomic_rmw (_, d, _, _, _) | Types.Cas (d, _, _, _, _) -> set d Top
  | Types.Call (_, _, Some d) -> set d Top
  | Types.Call (_, _, None)
  | Types.Store _ | Types.Fence | Types.Flush _ | Types.Pfence | Types.Ckpt _
  | Types.Boundary _ -> ()

(** Entry state for [fn]: with [tid_param] the designated parameter is
    the symbolic thread id ([k = 1]); remaining parameters are opaque
    [Bparam] bases so callee summaries stay substitutable. *)
let entry_state ?tid_param (fn : Prog.func) : t array =
  Array.init (max 1 fn.nregs) (fun r ->
      if r < fn.nparams then
        if tid_param = Some r then of_tid else of_param r
      else Bot)

(** Per-block entry states (same shape as [Alias.block_entry_states]):
    an RPO fixpoint with delayed widening — a block's entry joins
    plainly for its first few updates, then widens, so diamond joins
    keep precise bounds while loops terminate. *)
let block_entry_states ?tid_param (fn : Prog.func) : t array array * bool array =
  let n = Array.length fn.blocks in
  let nregs = max 1 fn.nregs in
  let states =
    Array.init n (fun i ->
        if i = 0 then entry_state ?tid_param fn else Array.make nregs Bot)
  in
  let updates = Array.make n 0 in
  let rpo = Cfg.reverse_postorder fn in
  let reachable = Cfg.reachable fn in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun bi ->
        let state = Array.copy states.(bi) in
        List.iter (fun ins -> step state ins) fn.blocks.(bi).instrs;
        List.iter
          (fun s ->
            let widen = updates.(s) > 2 in
            let merged =
              Array.mapi (fun r old -> join ~widen old state.(r)) states.(s)
            in
            if not (Array.for_all2 equal merged states.(s)) then begin
              states.(s) <- merged;
              updates.(s) <- updates.(s) + 1;
              changed := true
            end)
          (Cfg.successors fn bi))
      rpo
  done;
  (states, reachable)

(* ---- places and cross-thread disjointness ---- *)

type place =
  | Pglob of { g : string; k : int; lo : int; hi : int }
  | Pparam of { p : int; k : int; lo : int; hi : int }
  | Pany

let place_of (av : t) ~disp : place =
  match av with
  | V { base = Bglob g; k; lo; hi } -> (
    match (bound_add lo disp, bound_add hi disp) with
    | Some lo, Some hi -> Pglob { g; k; lo; hi }
    | _ -> Pany)
  | V { base = Bparam p; k; lo; hi } -> (
    match (bound_add lo disp, bound_add hi disp) with
    | Some lo, Some hi -> Pparam { p; k; lo; hi }
    | _ -> Pany)
  | _ -> Pany

let tid_dependent = function
  | Pany -> true
  | Pglob { k; _ } | Pparam { k; _ } -> k <> 0

(** A provably unique word: the only place shapes that can act as a
    lock identity. A [Pparam] word is exact *relative to the argument*
    — inside a callee summary it names one word per call site, and
    [Interproc.subst_place] turns it into a concrete [Pglob] word when
    the summary is instantiated. *)
let exact_place = function
  | Pglob { k = 0; lo; hi; _ } when lo = hi -> true
  | Pparam { k = 0; lo; hi; _ } when lo = hi -> true
  | _ -> false

let place_to_string = function
  | Pany -> "<any>"
  | Pparam { p; k; lo; hi } ->
    Printf.sprintf "param%d+%d*tid+[%s,%s]" p k
      (if lo = ninf then "-inf" else string_of_int lo)
      (if hi = pinf then "+inf" else string_of_int hi)
  | Pglob { g; k; lo; hi } ->
    if k = 0 && lo = hi then Printf.sprintf "%s+%d" g lo
    else
      Printf.sprintf "%s+%d*tid+[%s,%s]" g k
        (if lo = ninf then "-inf" else string_of_int lo)
        (if hi = pinf then "+inf" else string_of_int hi)

type verdict = Disjoint | Overlap | Unknown

(* Is there an integer t >= tmin with k*t in [a, b]?  (k <> 0, finite
   window; an empty window has no solution.) [None] when the
   normalization itself would wrap — [min_int] cannot be negated — so
   the caller answers Unknown rather than risking a wrapped Disjoint. *)
let exists_mult k (a, b) ~tmin =
  if b < a then Some false
  else if k = min_int || a = min_int || b = min_int then None
  else
    let k, a, b = if k > 0 then (k, a, b) else (-k, -b, -a) in
    (* divisions written via [mod] so they cannot overflow (the additive
       forms [x + y - 1] wrap for x near max_int) *)
    let floor_div x y = if x >= 0 || x mod y = 0 then x / y else (x / y) - 1 in
    let ceil_div x y = if x <= 0 || x mod y = 0 then x / y else (x / y) + 1 in
    let tlo = max tmin (ceil_div a k) in
    Some (tlo <= floor_div b k)

let finite lo hi = lo > ninf && hi < pinf

(** Can accesses at [p1] (in thread t1) and [p2] (in thread t2 <> t1)
    touch a common 8-byte word, quantified over all t1 <> t2 >= 0?
    Every static site runs in *all* threads, so a site must also be
    checked against itself ([cross_thread p p]). *)
let cross_thread p1 p2 : verdict =
  match (p1, p2) with
  | Pany, _ | _, Pany -> Unknown
  | Pparam _, _ | _, Pparam _ -> Unknown
  | Pglob a, Pglob b ->
    if a.g <> b.g then Disjoint
    else
      (* 8-byte word footprints: [lo, hi+7]; a finite upper bound that
         cannot be widened without wrapping saturates to +inf, which
         downstream turns into Unknown/Overlap, never Disjoint *)
      let sat7 h =
        if h = pinf then pinf
        else match checked_add h 7 with Some v -> v | None -> pinf
      in
      let ahi = sat7 a.hi in
      let bhi = sat7 b.hi in
      if a.k = 0 && b.k = 0 then
        if a.lo <= bhi && b.lo <= ahi then Overlap else Disjoint
      else if a.k = b.k then begin
        if not (finite a.lo ahi && finite b.lo bhi) then Unknown
        else
          (* footprints collide iff k*d ∈ [a.lo-bhi, ahi-b.lo] for some
             thread gap d = t2-t1 <> 0; by symmetry d >= 1 suffices
             after also checking the mirrored window. Window bounds go
             through checked subtraction: a wrapped window could answer
             a false Disjoint. *)
          match
            ( checked_sub a.lo bhi, checked_sub ahi b.lo,
              checked_sub b.lo ahi, checked_sub bhi a.lo )
          with
          | Some w1l, Some w1h, Some w2l, Some w2h -> (
            match
              ( exists_mult a.k (w1l, w1h) ~tmin:1,
                exists_mult a.k (w2l, w2h) ~tmin:1 )
            with
            | Some e1, Some e2 -> if e1 || e2 then Overlap else Disjoint
            | _ -> Unknown)
          | _ -> Unknown
      end
      else if a.k = 0 || b.k = 0 then begin
        (* fixed window vs a striped family: exact, since the striped
           side's thread ranges over all t >= 0 and the fixed side is
           thread-independent (any other thread hits it). *)
        let flo, fhi, sk, slo, shi =
          if a.k = 0 then (a.lo, ahi, b.k, b.lo, bhi)
          else (b.lo, bhi, a.k, a.lo, ahi)
        in
        if not (finite flo fhi && finite slo shi) then Unknown
        else
          match (checked_sub flo shi, checked_sub fhi slo) with
          | Some wl, Some wh -> (
            match exists_mult sk (wl, wh) ~tmin:0 with
            | Some true -> Overlap
            | Some false -> Disjoint
            | None -> Unknown)
          | _ -> Unknown
      end
      else begin
        (* distinct nonzero strides: no closed form here; scan small
           thread pairs for a provable overlap, otherwise give up. This
           branch only affects diagnostic classification — Disjoint is
           never claimed — so overflowing candidates are just skipped. *)
        if not (finite a.lo ahi && finite b.lo bhi) then Unknown
        else begin
          let hit = ref false in
          for t1 = 0 to 16 do
            for t2 = 0 to 16 do
              if t1 <> t2 then begin
                match
                  ( checked_mul a.k t1, checked_mul b.k t2 )
                with
                | Some o1, Some o2 -> (
                  match
                    ( checked_add a.lo o1, checked_add bhi o2,
                      checked_add b.lo o2, checked_add ahi o1 )
                  with
                  | Some alo1, Some bhi2, Some blo2, Some ahi1 ->
                    if alo1 <= bhi2 && blo2 <= ahi1 then hit := true
                  | _ -> ())
                | _ -> ()
              end
            done
          done;
          if !hit then Overlap else Unknown
        end
      end
