(** Classic backward liveness, expressed as a [Dataflow] problem.

    The cWSP compiler checkpoints exactly the registers that are live
    across each region boundary (Section IV-B), so the checkpoint passes
    query [live_before] at boundary positions. The fixpoint itself runs
    on the shared [Dataflow] worklist engine; this module contributes
    only the domain (register sets under union) and the per-block
    backward transfer. *)

open Cwsp_ir
module IntSet = Set.Make (Int)

type t = {
  fn : Prog.func;
  live_out : IntSet.t array; (* per block: live at block exit *)
}

let block_transfer (blk : Prog.block) live_out =
  (* backward over terminator then instructions *)
  let live = List.fold_left (fun s r -> IntSet.add r s) live_out (Types.term_uses blk.term) in
  List.fold_left
    (fun live ins ->
      let live =
        match Types.def ins with Some d -> IntSet.remove d live | None -> live
      in
      List.fold_left (fun s r -> IntSet.add r s) live (Types.uses ins))
    live (List.rev blk.instrs)

module Problem = struct
  module D = struct
    type t = IntSet.t

    let bottom = IntSet.empty
    let equal = IntSet.equal
    let join = IntSet.union
  end

  type ctx = unit

  let direction = `Backward
  let boundary () _fn = IntSet.empty
  let transfer () (fn : Prog.func) bi out = block_transfer fn.blocks.(bi) out
end

module Solver = Dataflow.Make (Problem)

let compute (fn : Prog.func) : t =
  let r = Solver.solve () fn in
  { fn; live_out = r.outb }

(** Live registers immediately before instruction [ii] of block [bi]
    (an index equal to the instruction count addresses the point just
    before the terminator). *)
let live_before (t : t) ~bi ~ii =
  let blk = t.fn.blocks.(bi) in
  let ninstrs = List.length blk.instrs in
  if ii < 0 || ii > ninstrs then invalid_arg "Liveness.live_before: bad index";
  let live =
    List.fold_left
      (fun s r -> IntSet.add r s)
      t.live_out.(bi)
      (Types.term_uses blk.term)
  in
  (* walk backward from the terminator to position ii *)
  let rec walk live instrs pos =
    if pos < ii then live
    else
      match instrs with
      | [] -> live
      | ins :: rest ->
        let live =
          if pos >= ii then
            let live =
              match Types.def ins with
              | Some d -> IntSet.remove d live
              | None -> live
            in
            List.fold_left (fun s r -> IntSet.add r s) live (Types.uses ins)
          else live
        in
        walk live rest (pos - 1)
  in
  walk live (List.rev blk.instrs) (ninstrs - 1)
