(** Static SPMD data-race analysis: tid-affine disjointness + an
    Eraser-style lockset analysis (on the shared [Dataflow] solver) +
    bottom-up [Interproc] summaries, classifying every cross-thread
    conflicting access pair of an SPMD worker. Discharges the
    SC-for-DRF premise [Cwsp_interp.Multi] states (Section VIII). *)

open Cwsp_ir
module Ta = Tid_affine
module Ip = Interproc

(** The lock-operation idioms recognized, as named patterns:
    [Cas_acquire] (the guarded CAS spin of [Libc.spin_lock] and the
    inline acquire in [Kernels.transactions]), [Rmw_release]
    ([Libc.spin_unlock]), and [Tso_release] — the plain-store-of-0 x86
    unlock idiom [Kernels.transactions] uses, recognized only on words
    some guarded acquire targets. A bare fetch-add with its result
    discarded is {e not} an acquire (it never blocks, so it excludes
    nothing) and stays an ordinary atomic data access. *)
type pattern = Cas_acquire | Rmw_release | Tso_release

val pattern_name : pattern -> string

(** Shape-level classification of an atomic instruction. A
    [Cas_acquire] shape only *acts* as an acquire when [cas_guarded]
    additionally holds at its site. *)
val atomic_pattern : Types.instr -> pattern option

(** Is the CAS at [(bi, ii)] with result register [d] guarded — result
    compared against the expected value 0 and the failure edge looping
    back to retry the CAS? Only guarded CAS shapes acquire. *)
val cas_guarded : Prog.func -> bi:int -> ii:int -> int -> bool

(** Per-function result, also usable directly in tests. *)
type fresult = {
  r_accesses : Ip.access list;
  r_may_exit : Ta.place list;
  r_rel_exit : Ta.place list;
  r_lock_objs : (Ta.place, unit) Hashtbl.t;
}

val analyze :
  lookup:(string -> Ip.summary option) -> ?tid_param:int -> Prog.func -> fresult

(** The [Interproc] summarizer this analysis plugs in. *)
val summarize : lookup:(string -> Ip.summary option) -> Prog.func -> Ip.summary

(** The SPMD entry convention: a unary function named ["worker"]
    (thread id parameter), as built by [W_parallel.scaffold] and run by
    [Multi.create]. *)
val spmd_entry : Prog.t -> string option

type rule =
  | Rdata_race             (* conflicting pair, locks exist but prove nothing *)
  | Runlocked_shared_write (* conflicting pair, no locks at all *)
  | Rtid_overlap_unprovable(* tid-indexed footprints not provably disjoint *)
  | Rredundant_atomic      (* lint: atomic on a thread-private word *)

type finding = { f_rule : rule; f_bi : int; f_ii : int; f_msg : string }

(** All findings for [worker], deterministic order. *)
val check : Prog.t -> worker:string -> finding list
