(** Static SPMD data-race analysis: tid-affine disjointness + an
    Eraser-style lockset analysis (on the shared [Dataflow] solver) +
    bottom-up [Interproc] summaries, classifying every cross-thread
    conflicting access pair of an SPMD worker. Discharges the
    SC-for-DRF premise [Cwsp_interp.Multi] states (Section VIII). *)

open Cwsp_ir
module Ta = Tid_affine
module Ip = Interproc

(** The lock-operation idioms recognized, as named patterns:
    [Cas_acquire] ([Libc.spin_lock]), [Rmw_acquire] (locked fetch-add,
    [Kernels.transactions]), [Rmw_release] ([Libc.spin_unlock]), and
    [Tso_release] — the plain-store-of-0 x86 unlock idiom
    [Kernels.transactions] uses, recognized only on words some acquire
    pattern targets. *)
type pattern = Cas_acquire | Rmw_acquire | Rmw_release | Tso_release

val pattern_name : pattern -> string

(** Shape-level classification of an atomic instruction. *)
val atomic_pattern : Types.instr -> pattern option

(** Per-function result, also usable directly in tests. *)
type fresult = {
  r_accesses : Ip.access list;
  r_may_exit : Ta.place list;
  r_rel_exit : Ta.place list;
  r_lock_objs : (Ta.place, unit) Hashtbl.t;
}

val analyze :
  lookup:(string -> Ip.summary option) -> ?tid_param:int -> Prog.func -> fresult

(** The [Interproc] summarizer this analysis plugs in. *)
val summarize : lookup:(string -> Ip.summary option) -> Prog.func -> Ip.summary

(** The SPMD entry convention: a unary function named ["worker"]
    (thread id parameter), as built by [W_parallel.scaffold] and run by
    [Multi.create]. *)
val spmd_entry : Prog.t -> string option

type rule =
  | Rdata_race             (* conflicting pair, locks exist but prove nothing *)
  | Runlocked_shared_write (* conflicting pair, no locks at all *)
  | Rtid_overlap_unprovable(* tid-indexed footprints not provably disjoint *)
  | Rredundant_atomic      (* lint: atomic on a thread-private word *)

type finding = { f_rule : rule; f_bi : int; f_ii : int; f_msg : string }

(** All findings for [worker], deterministic order. *)
val check : Prog.t -> worker:string -> finding list
