(** Bottom-up interprocedural summaries.

    The first interprocedural layer in the repository: a client (the
    race analysis) supplies a per-function summarizer; this module runs
    it over [Callgraph.sccs_bottom_up] order so each function can fold
    in its callees' already-computed summaries, and provides the place
    substitution that instantiates a callee's parameter-relative effects
    at a call site. Recursive components get the client's conservative
    summary — precision there is not worth a fixpoint, since the only
    recursive code in the repository is the allocator's free-list walk,
    which is unsynchronized shared state anyway. *)

open Cwsp_ir
module Ta = Tid_affine

(** How a summarized access touches memory. [Rmw] is an atomic
    read-modify-write used as a *data* access (lock-protocol atomics are
    classified out by the client and never appear in summaries). *)
type kind = Read | Write | Rmw

type access = {
  kind : kind;
  place : Ta.place;
  locks : Ta.place list; (* sorted; locks held at the access *)
  bi : int;
  ii : int; (* position in the reported function (call site once lifted) *)
  path : string; (* callee chain, "" for a direct access *)
}

type summary = {
  s_accesses : access list;
  s_acquired : Ta.place list; (* locks that may still be held at exit *)
  s_released : Ta.place list; (* locks released on every path *)
  s_conservative : bool; (* recursive SCC fallback *)
}

let conservative_summary =
  {
    s_accesses =
      [
        { kind = Read; place = Ta.Pany; locks = []; bi = -1; ii = -1; path = "" };
        { kind = Write; place = Ta.Pany; locks = []; bi = -1; ii = -1; path = "" };
      ];
    s_acquired = [];
    s_released = [];
    s_conservative = true;
  }

(** Instantiate a callee-relative place at a call site: [Bparam i]
    bases substitute the caller's abstract value for argument [i] (the
    callee's residual interval shifts by the argument's), globals pass
    through, anything unresolvable is [Pany]. *)
let subst_place (args : Ta.t array) (p : Ta.place) : Ta.place =
  match p with
  | Ta.Pglob _ | Ta.Pany -> p
  | Ta.Pparam { p = i; k; lo; hi } -> (
    if i >= Array.length args then Ta.Pany
    else
      match args.(i) with
      | Ta.V { base = Ta.Bglob g; k = ka; lo = la; hi = ha } -> (
        match
          (Ta.(if k = 0 then Some ka else checked_add ka k),
           Ta.bound_add lo la, Ta.bound_add hi ha)
        with
        | Some k, Some lo, Some hi -> Ta.Pglob { g; k; lo; hi }
        | _ -> Ta.Pany)
      | Ta.V { base = Ta.Bparam q; k = ka; lo = la; hi = ha } -> (
        match
          (Ta.(if k = 0 then Some ka else checked_add ka k),
           Ta.bound_add lo la, Ta.bound_add hi ha)
        with
        | Some k, Some lo, Some hi -> Ta.Pparam { p = q; k; lo; hi }
        | _ -> Ta.Pany)
      | _ -> Ta.Pany)

(** Instantiate a whole callee summary at a call site: places
    substituted, positions lifted to the call site, the callee name
    prepended to each witness path. *)
let instantiate (s : summary) ~callee ~(args : Ta.t array) ~bi ~ii :
    summary =
  let lift (a : access) =
    {
      a with
      place = subst_place args a.place;
      locks = List.sort_uniq compare (List.map (subst_place args) a.locks);
      bi;
      ii;
      path = (if a.path = "" then callee else callee ^ " -> " ^ a.path);
    }
  in
  {
    s_accesses = List.map lift s.s_accesses;
    s_acquired = List.sort_uniq compare (List.map (subst_place args) s.s_acquired);
    s_released = List.sort_uniq compare (List.map (subst_place args) s.s_released);
    s_conservative = s.s_conservative;
  }

(** Run [summarize] bottom-up over the call graph. [summarize] receives
    a lookup that resolves any already-summarized callee (so a missing
    entry means an intrinsic or an unresolved name). *)
let summaries ~(summarize : lookup:(string -> summary option) -> Prog.func -> summary)
    (p : Prog.t) : (string, summary) Hashtbl.t =
  let cg = Callgraph.build p in
  let tbl : (string, summary) Hashtbl.t = Hashtbl.create 16 in
  let lookup name = Hashtbl.find_opt tbl name in
  List.iter
    (fun scc ->
      if Callgraph.recursive cg scc then
        List.iter (fun name -> Hashtbl.replace tbl name conservative_summary) scc
      else
        List.iter
          (fun name ->
            match Prog.find_func p name with
            | Some fn -> Hashtbl.replace tbl name (summarize ~lookup fn)
            | None -> ())
          scc)
    (Callgraph.sccs_bottom_up cg);
  tbl
