(** May-reaching definitions (block granularity) as a [Dataflow] client:
    forward direction, register sets under union, transfer adds every
    register the block defines. *)

open Cwsp_ir
module IntSet = Set.Make (Int)

type result = { inb : IntSet.t array; outb : IntSet.t array }

module Problem = struct
  module D = struct
    type t = IntSet.t

    let bottom = IntSet.empty
    let equal = IntSet.equal
    let join = IntSet.union
  end

  type ctx = unit

  let direction = `Forward
  let boundary () _fn = IntSet.empty

  let transfer () (fn : Prog.func) bi inb =
    List.fold_left
      (fun acc ins ->
        match Types.def ins with Some d -> IntSet.add d acc | None -> acc)
      inb fn.blocks.(bi).instrs
end

module Solver = Dataflow.Make (Problem)

let solve (fn : Prog.func) : result =
  let r = Solver.solve () fn in
  { inb = r.inb; outb = r.outb }
