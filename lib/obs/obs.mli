(** Whole-stack observability: spans, counters, histograms and gauges,
    exported as Chrome-trace-event JSON (Perfetto / chrome://tracing)
    and a flat metrics.json.

    Telemetry is a side artifact: nothing here feeds back into compiled
    programs, traces, statistics or rendered output, so golden outputs
    are byte-identical with tracing on or off and at any pool width.
    The disabled path is a single branch on [!on] — no allocation, no
    closure capture. Spans land in per-domain ring buffers (bounded;
    overflow overwrites the oldest and is counted) merged at export. *)

(** The static fast-path flag. Read directly ([if !Obs.on then ...])
    before building dynamic names/args; mutate only via
    [enable]/[configure]/[reset], before spawning domains. *)
val on : bool ref

val enable : unit -> unit

(** Microseconds since process start (the trace timebase). *)
val now_us : unit -> float

(** {1 Structured event records}

    The flight-recorder hook: sites call [record kind a0 a1 a2 a3]; the
    call is a single branch (no allocation) unless a sink is installed
    for the calling domain, in which case the five integers are handed
    to it. Sinks are per-domain (DLS), so concurrent campaign cells
    record into disjoint rings. *)

(** Install [sink] as the calling domain's sink for the duration of [f]
    (nestable; the previous sink is restored on exit). *)
val with_recorder :
  (int -> int -> int -> int -> int -> unit) -> (unit -> 'a) -> 'a

(** Record one structured event; no-op without an installed sink. *)
val record : int -> int -> int -> int -> int -> unit

(** {1 Spans} *)

(** Open a span on the calling domain. [args] become Chrome trace args. *)
val span_begin :
  ?cat:string -> ?args:(string * float) list -> string -> unit

(** Close the innermost open span (records a complete "X" event).
    Unmatched calls are counted, never raised. *)
val span_end : unit -> unit

(** Open spans on the calling domain (0 when balanced or disabled). *)
val open_depth : unit -> int

(** Unmatched [span_end] calls seen so far. *)
val unbalanced_ends : unit -> int

(** Time [f] under a span. Allocates the closure even when disabled —
    for coarse per-run sites only, not per-event hot paths. *)
val time : ?cat:string -> string -> (unit -> 'a) -> 'a

(** {1 Counter samples and tracks} *)

(** Emit a Chrome "C" counter sample. [pid] 0 is the real-time process;
    [alloc_track] pids carry their own timeline (e.g. simulated µs). *)
val counter_event :
  ?pid:int -> name:string -> ts_us:float -> (string * float) list -> unit

(** Fresh Perfetto process track; named via process_name metadata. *)
val alloc_track : string -> int

(** {1 Monotonic counters} *)

module Counter : sig
  type t

  (** Find-or-create by name (registered globally for export). *)
  val make : string -> t

  val add : t -> int -> unit
  val incr : t -> unit
  val value : t -> int
  val name : t -> string
end

(** {1 Histograms} *)

(** Default duration bounds, µs: 1µs..10s on a 1-2-5 grid. *)
val default_bounds : float array

module Hist : sig
  type t

  (** Find-or-create by name; [bounds] applies only on creation. *)
  val make : ?bounds:float array -> string -> t

  val add : t -> float -> unit
  val count : t -> int
end

(** {1 Gauges} *)

(** Register a pull-style provider sampled once at [write_metrics]. *)
val register_gauges : (unit -> (string * float) list) -> unit

(** {1 Snapshots and export} *)

type span_view = {
  sp_name : string;
  sp_cat : string;
  sp_ts_us : float;
  sp_dur_us : float;
  sp_tid : int;
  sp_args : (string * float) list;
}

(** All completed spans, merged across domains, timestamp-sorted. *)
val snapshot_spans : unit -> span_view list

(** Events overwritten in full rings, program-wide. *)
val dropped_events : unit -> int

(** Per-domain overflow accounting: (tid, dropped) sorted by tid, zeros
    included. Exported under [spans.dropped_per_domain] in metrics. *)
val dropped_per_domain : unit -> (int * int) list

(** Write the Chrome trace-event JSON file. *)
val write_trace : string -> unit

(** Write the flat metrics JSON file (counters, histogram summaries,
    gauges, span accounting; sorted keys). *)
val write_metrics : string -> unit

(** {1 CLI wiring} *)

(** Set telemetry targets: explicit paths win over the [CWSP_TRACE] /
    [CWSP_METRICS] environment; either enables instrumentation.
    [CWSP_TRACE_BUF] overrides ring capacity. Call once at startup. *)
val configure : ?trace:string -> ?metrics:string -> unit -> unit

(** Write configured artifacts (no-op when none); notices to stderr. *)
val finalize : unit -> unit

(** Test-only: disable and clear all recorded state. *)
val reset : unit -> unit
