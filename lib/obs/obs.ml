(** Whole-stack observability: structured spans, counters, histograms
    and gauge providers, exported as Chrome-trace-event JSON (opens
    directly in Perfetto / chrome://tracing) and a flat metrics.json.

    Determinism contract: telemetry is a {e side artifact}. Nothing in
    this module feeds back into compiled programs, traces, simulation
    statistics or rendered experiment output; enabling tracing changes
    what lands in [--trace]/[--metrics] files (and stderr notices) and
    nothing else, so golden outputs stay byte-identical with tracing on
    or off and at any pool width.

    Cost contract: the disabled path is a single branch on the static
    [on] flag — no allocation and no closure capture. Instrumentation
    sites on hot paths call [span_begin]/[span_end] (or test [!on]
    themselves before building dynamic names); only coarse per-run sites
    use the closure-passing [time] helper.

    Domain-safety: spans land in per-domain ring buffers reached through
    [Domain.DLS] (no locks on the record path) and are merged at export;
    each buffer registers itself once, under a mutex, in a global list —
    the same first-writer-wins discipline as [Store]. Counters are
    atomics; histograms take a per-histogram mutex (coarse call sites
    only). Rings are bounded: when a domain overflows its ring the
    oldest events are overwritten and the drop is counted, never
    blocking the instrumented code. *)

(* ---- enablement ---- *)

(** The static fast-path flag. Read it directly ([if !Obs.on then ...])
    before building dynamic span names or argument lists; mutate it only
    through [enable]/[configure]/[reset] (and before spawning domains —
    the flag is a plain ref published by the spawn). *)
let on = ref false

let enable () = on := true

(* ---- clock ---- *)

(* Trace timestamps are microseconds since process start (Chrome's
   native unit), from the wall clock: they never touch simulated time
   or any rendered result. *)
let t_epoch = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. t_epoch) *. 1e6

(* ---- events and per-domain rings ---- *)

type ev =
  | Span of {
      name : string;
      cat : string;
      ts : float; (* µs since process start *)
      dur : float; (* µs *)
      tid : int;
      args : (string * float) list;
    }
  | Count of {
      name : string;
      ts : float; (* µs; sim tracks use simulated µs *)
      pid : int; (* 0 = the real-time process; >0 = [alloc_track] tracks *)
      args : (string * float) list;
    }

type dstate = {
  tid : int;
  mutable stack : (string * string * float * (string * float) list) list;
  mutable ring : ev option array; (* sized on first event *)
  mutable widx : int; (* total events ever pushed *)
}

let mu = Mutex.create ()
let dstates : dstate list ref = ref []
let ring_cap = ref 8192
let unbalanced = Atomic.make 0

let dls : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let d =
        { tid = (Domain.self () :> int); stack = []; ring = [||]; widx = 0 }
      in
      Mutex.protect mu (fun () -> dstates := d :: !dstates);
      d)

let push d ev =
  if Array.length d.ring = 0 then d.ring <- Array.make (max 16 !ring_cap) None;
  d.ring.(d.widx mod Array.length d.ring) <- Some ev;
  d.widx <- d.widx + 1

(* ---- structured event records ---- *)

(* The flight-recorder hook: a per-domain sink for structured integer
   events (kind + four args). Like spans, the disabled path is a single
   branch — here on a global activation count — and the sink itself
   lives in DLS, so concurrent campaign cells each record into their own
   ring without cross-talk. Nothing downstream of [record] feeds back
   into program state; installing a sink changes what lands in the
   ring and nothing else. *)

let recording = Atomic.make 0

let sink_dls : (int -> int -> int -> int -> int -> unit) option ref Domain.DLS.key
    =
  Domain.DLS.new_key (fun () -> ref None)

(** Install [sink] as the calling domain's event sink for the duration
    of [f] (nestable; the previous sink is restored). *)
let with_recorder sink f =
  let r = Domain.DLS.get sink_dls in
  let prev = !r in
  r := Some sink;
  Atomic.incr recording;
  Fun.protect f ~finally:(fun () ->
      ignore (Atomic.fetch_and_add recording (-1));
      r := prev)

(** Record one structured event: [record kind a0 a1 a2 a3]. No-op (one
    branch, no allocation) unless a sink is installed somewhere; a
    domain without its own sink stays a no-op even then. *)
let record kind a0 a1 a2 a3 =
  if Atomic.get recording > 0 then
    match !(Domain.DLS.get sink_dls) with
    | Some sink -> sink kind a0 a1 a2 a3
    | None -> ()

(* ---- spans ---- *)

let span_begin ?(cat = "") ?(args = []) name =
  if !on then begin
    let d = Domain.DLS.get dls in
    d.stack <- (name, cat, now_us (), args) :: d.stack
  end

let span_end () =
  if !on then begin
    let d = Domain.DLS.get dls in
    match d.stack with
    | [] -> Atomic.incr unbalanced
    | (name, cat, ts, args) :: rest ->
      d.stack <- rest;
      push d (Span { name; cat; ts; dur = now_us () -. ts; tid = d.tid; args })
  end

(** Open spans on the calling domain (0 when balanced or disabled). *)
let open_depth () =
  if !on then List.length (Domain.DLS.get dls).stack else 0

(** Unmatched [span_end] calls seen so far. *)
let unbalanced_ends () = Atomic.get unbalanced

(** Time [f] under a span. Allocates the closure even when disabled —
    fine for coarse per-run sites, not for per-event hot paths. *)
let time ?cat name f =
  if not !on then f ()
  else begin
    span_begin ?cat name;
    Fun.protect ~finally:span_end f
  end

(* ---- counter events and tracks ---- *)

(** Emit a Chrome "C" (counter) sample. [pid] 0 is the real-time
    process; tracks from [alloc_track] carry their own timeline (the sim
    engine records epochs in simulated µs there). *)
let counter_event ?(pid = 0) ~name ~ts_us args =
  if !on then push (Domain.DLS.get dls) (Count { name; ts = ts_us; pid; args })

let next_track = Atomic.make 1
let tracks : (int * string) list ref = ref []

(** Allocate a fresh Perfetto process track (returns its pid) named in
    the trace via process_name metadata. *)
let alloc_track name =
  let pid = Atomic.fetch_and_add next_track 1 in
  Mutex.protect mu (fun () -> tracks := (pid, name) :: !tracks);
  pid

(* ---- counters ---- *)

module Counter = struct
  type t = { cname : string; v : int Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 64

  (** Find-or-create by name (first writer wins, like [Store]). *)
  let make name =
    Mutex.protect mu (fun () ->
        match Hashtbl.find_opt registry name with
        | Some c -> c
        | None ->
          let c = { cname = name; v = Atomic.make 0 } in
          Hashtbl.add registry name c;
          c)

  let add c n = if !on then ignore (Atomic.fetch_and_add c.v n)
  let incr c = add c 1
  let value c = Atomic.get c.v
  let name c = c.cname
end

(* ---- histograms ---- *)

(* Duration-oriented default bounds, in µs: 1µs .. 10s on a 1-2-5 grid. *)
let default_bounds =
  [|
    1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1e3; 2e3; 5e3; 1e4; 2e4; 5e4;
    1e5; 2e5; 5e5; 1e6; 2e6; 5e6; 1e7;
  |]

module Hist = struct
  type t = { hname : string; hmu : Mutex.t; h : Cwsp_util.Stats.Histogram.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  (** Find-or-create by name; [bounds] only applies on creation. *)
  let make ?(bounds = default_bounds) name =
    Mutex.protect mu (fun () ->
        match Hashtbl.find_opt registry name with
        | Some h -> h
        | None ->
          let h =
            {
              hname = name;
              hmu = Mutex.create ();
              h = Cwsp_util.Stats.Histogram.create bounds;
            }
          in
          Hashtbl.add registry name h;
          h)

  let add t v =
    if !on then
      Mutex.protect t.hmu (fun () -> Cwsp_util.Stats.Histogram.add t.h v)

  let count t = Mutex.protect t.hmu (fun () -> Cwsp_util.Stats.Histogram.count t.h)
end

(* ---- gauge providers ---- *)

(* Pull-style metrics sampled once at export (e.g. [Store] cache
   hit/miss totals registered by [Api]). *)
let gauge_providers : (unit -> (string * float) list) list ref = ref []

let register_gauges f =
  Mutex.protect mu (fun () -> gauge_providers := f :: !gauge_providers)

(* ---- snapshots ---- *)

type span_view = {
  sp_name : string;
  sp_cat : string;
  sp_ts_us : float;
  sp_dur_us : float;
  sp_tid : int;
  sp_args : (string * float) list;
}

let snapshot_events () =
  let ds = Mutex.protect mu (fun () -> !dstates) in
  List.concat_map
    (fun d ->
      let cap = Array.length d.ring in
      let n = min d.widx cap in
      List.filter_map Fun.id
        (List.init n (fun i -> d.ring.((d.widx - n + i) mod cap))))
    ds

(** Events overwritten in full rings, per domain: (tid, dropped) sorted
    by tid. Domains that dropped nothing still appear — the export
    asserting "no domain overflowed" needs the zeros. *)
let dropped_per_domain () =
  let ds = Mutex.protect mu (fun () -> !dstates) in
  List.map (fun d -> (d.tid, max 0 (d.widx - Array.length d.ring))) ds
  |> List.sort compare

(** Events overwritten in full rings, program-wide. *)
let dropped_events () =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (dropped_per_domain ())

(** All completed spans, merged across domains, timestamp-sorted. *)
let snapshot_spans () =
  snapshot_events ()
  |> List.filter_map (function
       | Span { name; cat; ts; dur; tid; args } ->
         Some
           {
             sp_name = name;
             sp_cat = cat;
             sp_ts_us = ts;
             sp_dur_us = dur;
             sp_tid = tid;
             sp_args = args;
           }
       | Count _ -> None)
  |> List.sort (fun a b ->
         compare
           (a.sp_ts_us, a.sp_tid, a.sp_name)
           (b.sp_ts_us, b.sp_tid, b.sp_name))

(* ---- JSON emission ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Printf.bprintf b "\\u%04x" (Char.code c)
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let args_json args =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (json_float v))
         args)
  ^ "}"

(** Write the Chrome trace-event file ([{"traceEvents":[...]}]): "M"
    process-name metadata for the root process and every [alloc_track],
    "X" complete events for spans, "C" counter samples. *)
let write_trace path =
  let oc = open_out path in
  output_string oc "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  let first = ref true in
  let emit line =
    if !first then first := false else output_string oc ",\n";
    output_string oc line
  in
  emit
    "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
     \"args\":{\"name\":\"cwsp\"}}";
  let tks = Mutex.protect mu (fun () -> List.rev !tracks) in
  List.iter
    (fun (pid, name) ->
      emit
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\
            \"args\":{\"name\":\"%s\"}}"
           pid (json_escape name)))
    tks;
  List.iter
    (fun ev ->
      match ev with
      | Span { name; cat; ts; dur; tid; args } ->
        emit
          (Printf.sprintf
             "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\
              \"name\":\"%s\",\"cat\":\"%s\"%s}"
             tid ts (Float.max 0.0 dur) (json_escape name) (json_escape cat)
             (if args = [] then "" else ",\"args\":" ^ args_json args))
      | Count { name; ts; pid; args } ->
        emit
          (Printf.sprintf
             "{\"ph\":\"C\",\"pid\":%d,\"tid\":0,\"ts\":%.3f,\"name\":\"%s\",\
              \"args\":%s}"
             pid ts (json_escape name) (args_json args)))
    (snapshot_events ());
  output_string oc "\n]}\n";
  close_out oc

(** Write the flat metrics file: counters, histogram summaries
    (count/sum/mean/p50/p90/p99/buckets), sampled gauges, and span
    accounting. Keys are sorted for deterministic layout. *)
let write_metrics path =
  let oc = open_out path in
  let counters =
    Mutex.protect mu (fun () ->
        Hashtbl.fold (fun k c acc -> (k, Atomic.get c.Counter.v) :: acc)
          Counter.registry [])
    |> List.sort compare
  in
  let hists =
    Mutex.protect mu (fun () ->
        Hashtbl.fold (fun k h acc -> (k, h) :: acc) Hist.registry [])
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let gauges =
    List.concat_map (fun f -> f ()) (List.rev !gauge_providers)
    |> List.sort compare
  in
  output_string oc "{\n\"counters\":{";
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "%s\n  \"%s\":%d" (if i > 0 then "," else "")
        (json_escape k) v)
    counters;
  output_string oc "\n},\n\"histograms\":{";
  List.iteri
    (fun i (k, (h : Hist.t)) ->
      let open Cwsp_util.Stats in
      Mutex.protect h.Hist.hmu (fun () ->
          let q p = json_float (Histogram.quantile h.Hist.h p) in
          Printf.fprintf oc
            "%s\n  \"%s\":{\"count\":%d,\"sum\":%s,\"mean\":%s,\"p50\":%s,\
             \"p90\":%s,\"p99\":%s,\"p999\":%s,\"buckets\":["
            (if i > 0 then "," else "")
            (json_escape k)
            (Histogram.count h.Hist.h)
            (json_float (Histogram.sum h.Hist.h))
            (json_float (Histogram.mean h.Hist.h))
            (q 0.5) (q 0.9) (q 0.99) (q 0.999);
          List.iteri
            (fun j (ub, n) ->
              Printf.fprintf oc "%s{\"le\":%s,\"n\":%d}"
                (if j > 0 then "," else "")
                (if Float.is_finite ub then json_float ub else "\"inf\"")
                n)
            (Histogram.buckets h.Hist.h);
          output_string oc "]}"))
    hists;
  output_string oc "\n},\n\"gauges\":{";
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "%s\n  \"%s\":%s" (if i > 0 then "," else "")
        (json_escape k) (json_float v))
    gauges;
  Printf.fprintf oc
    "\n},\n\"spans\":{\"recorded\":%d,\"dropped\":%d,\"unbalanced\":%d,\
     \"dropped_per_domain\":{"
    (List.length (snapshot_spans ()))
    (dropped_events ())
    (Atomic.get unbalanced);
  List.iteri
    (fun i (tid, n) ->
      Printf.fprintf oc "%s\"d%d\":%d" (if i > 0 then "," else "") tid n)
    (dropped_per_domain ());
  output_string oc "}}\n}\n";
  close_out oc

(* ---- CLI wiring ---- *)

let trace_path = ref None
let metrics_path = ref None

(** Wire the process's telemetry targets: explicit [?trace]/[?metrics]
    paths win, otherwise the [CWSP_TRACE]/[CWSP_METRICS] environment
    variables; setting either enables instrumentation.
    [CWSP_TRACE_BUF] overrides the per-domain ring capacity. Call once
    at startup, before spawning domains. *)
let configure ?trace ?metrics () =
  let or_env v k = match v with Some _ -> v | None -> Sys.getenv_opt k in
  (match Sys.getenv_opt "CWSP_TRACE_BUF" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n > 0 -> ring_cap := n
    | Some _ | None -> ())
  | None -> ());
  trace_path := or_env trace "CWSP_TRACE";
  metrics_path := or_env metrics "CWSP_METRICS";
  if !trace_path <> None || !metrics_path <> None then on := true

(** Write the configured artifacts (no-op when none were configured).
    Notices go to stderr: stdout belongs to golden outputs. *)
let finalize () =
  (match !trace_path with
  | Some p ->
    write_trace p;
    Printf.eprintf "obs: trace written to %s (%d spans, %d dropped)\n%!" p
      (List.length (snapshot_spans ()))
      (dropped_events ())
  | None -> ());
  match !metrics_path with
  | Some p ->
    write_metrics p;
    Printf.eprintf "obs: metrics written to %s\n%!" p
  | None -> ()

(** Test-only: disable, clear every ring/stack/counter/histogram/track
    and the configured paths. Counter/histogram handles stay valid. *)
let reset () =
  on := false;
  trace_path := None;
  metrics_path := None;
  Atomic.set unbalanced 0;
  Mutex.protect mu (fun () ->
      List.iter
        (fun d ->
          d.stack <- [];
          d.widx <- 0;
          if Array.length d.ring > 0 then
            Array.fill d.ring 0 (Array.length d.ring) None)
        !dstates;
      tracks := [];
      Hashtbl.iter (fun _ c -> Atomic.set c.Counter.v 0) Counter.registry;
      Hashtbl.iter
        (fun _ (h : Hist.t) ->
          Mutex.protect h.Hist.hmu (fun () ->
              Cwsp_util.Stats.Histogram.clear h.Hist.h))
        Hist.registry)
