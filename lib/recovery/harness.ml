(** Power-failure injection and the cWSP recovery protocol (Section VII) —
    the validation the paper explicitly leaves as future work ("No Power
    Failure Recovery Test", Section VIII).

    The harness executes a compiled program while maintaining exactly the
    state the cWSP hardware keeps:

    - per-region undo logs at the memory controllers (here: (addr, old)
      pairs tagged with the dynamic region index);
    - the register checkpoints, which are ordinary stores to the NVM
      checkpoint area made by the program itself;
    - the recovery-slice table produced by the compiler.

    At a random instruction it "cuts power": it picks the oldest
    unpersisted region R_o within the RBT window, reverts all speculative
    NVM updates of younger regions with the undo logs, un-persists a
    random per-MC FIFO prefix-complement of R_o's own stores (stores to
    the same location always target the same MC, so per-location
    visibility is a prefix — matching real persist-path FIFOs), reverts
    R_o's checkpoint-area stores, and then runs the recovery protocol:
    evaluate R_o's recovery slice to restore its live-in registers
    (every other register is poisoned to catch liveness bugs) and resume
    execution from R_o's entry. Crash consistency holds iff the final NVM
    state equals a failure-free run's.

    Call frames *below* the recovery point are restored from the boundary
    snapshot: they model the NVM-resident stack (spilled registers and
    return addresses live in ordinary persistent memory on a real
    machine; our IR keeps them in interpreter frames). *)

open Cwsp_interp
module Obs = Cwsp_obs.Obs
module Recorder = Cwsp_flight.Recorder

let poison = 0x5F5F5F5F

(* Flight-recorder event codes, routed through [Obs.record] so the sites
   stay a single no-op branch when no recorder is installed. *)
let k_boundary = Recorder.kind_code Recorder.Boundary
let k_telemetry = Recorder.kind_code Recorder.Telemetry

(* CWSP_FLIGHT=1 turns the flight recorder on for every experiment in
   the process — the CI switch for proving recorder-on runs match the
   recorder-off goldens and perf baselines. Read once at startup. *)
let flight_env = Sys.getenv_opt "CWSP_FLIGHT" = Some "1"

(* [Fault.cls] codes as the ring records them ([Recorder.fault_name]). *)
let fault_code = function
  | Fault.Torn_persist -> 1
  | Fault.Dropped_tail -> 2
  | Fault.Log_corruption -> 3
  | Fault.Ckpt_bitflip -> 4
  | Fault.Recovery_crash -> 5

type region_record = {
  region_index : int;
  static_id : int;       (* global boundary id that opened this region;
                            -1 for region 0 (program start); -2 for the
                            resume point of a post-recovery execution *)
  frames : Machine.frame list; (* snapshot at region entry *)
  depth : int;
  outputs_at_entry : int;
    (* device outputs produced before this region started: the I/O
       released once every earlier region persisted ([Io_buffer]) *)
  mutable has_sync : bool;
    (* an atomic committed inside this region. Sync primitives persist
       synchronously with their trailing checkpoints as one
       failure-atomic unit (the MC's failure-atomic logging, Fig. 10b):
       crash-wise the unit is all-or-nothing *)
}

type tracked = {
  machine : Machine.t;
  compiled : Cwsp_compiler.Pipeline.compiled;
  window : int; (* RBT size: max concurrently-unpersisted regions *)
  io : Io_buffer.t;  (* region-buffered device I/O (Section VIII) *)
  logs : Mc_logs.t;  (* per-MC per-region undo-log arrays (Section V-B2) *)
  slot_sums : (int, int) Hashtbl.t;
    (* MC-side shadow metadata for the checkpoint area: slot address ->
       checksum of its current value, updated atomically with each slot
       persist. Recovery audits slice inputs against it (absent = zero) *)
  mutable regions : region_record list; (* newest first, length <= window+1 *)
  mutable region_count : int;
  mutable sync_floor : int;
    (* highest *closed* region that contained a sync primitive: stores
       prior to a committed atomic are persisted before it commits
       (Section VIII), so the recovery point can never move at or before
       such a region *)
}

let copy_frame (fr : Machine.frame) = { fr with regs = Array.copy fr.regs }

let make_tracked ~window ~compiled ~machine ~region0 =
  let t =
    {
      machine;
      compiled;
      window;
      io = Io_buffer.create ();
      logs = Mc_logs.create ~n_mcs:2;
      slot_sums = Hashtbl.create 64;
      regions = [];
      region_count = 0;
      sync_floor = -1;
    }
  in
  t.regions <- [ region0 ];
  t

let create ?(window = 16) (compiled : Cwsp_compiler.Pipeline.compiled) =
  let linked = Machine.link compiled.prog in
  let machine = Machine.create linked in
  make_tracked ~window ~compiled ~machine
    ~region0:
      { region_index = 0; static_id = -1; frames = []; depth = 0;
        outputs_at_entry = 0; has_sync = false }

(** Track a machine that is itself resuming after a recovery: crashes
    before its first boundary roll back to the resume point (whose
    registers the previous recovery already restored), not to program
    start. Enables crash-during-recovery validation. *)
let create_resumed ?(window = 16) (compiled : Cwsp_compiler.Pipeline.compiled)
    (machine : Machine.t) =
  make_tracked ~window ~compiled ~machine
    ~region0:
      { region_index = 0; static_id = -2;
        frames = List.map copy_frame machine.frames; depth = machine.depth;
        outputs_at_entry = 0; has_sync = false }

let current_region t = List.hd t.regions

let on_boundary t static_id =
  (* closing a region that contained a sync primitive seals it: the drain
     semantics of Section VIII guarantee everything up to and including
     it is persistent *)
  let closed_sync =
    let cur = current_region t in
    if cur.has_sync then t.sync_floor <- cur.region_index;
    cur.has_sync
  in
  (* flight recorder: a boundary commit plus persist-path telemetry.
     [Obs.record] is a single no-op branch unless a recorder sink is
     installed (validate_fault ~flight:true), so untraced runs pay two
     dead branches per region boundary. *)
  let live = Mc_logs.live_entries t.logs in
  Obs.record k_boundary t.machine.steps static_id live
    (if closed_sync then 1 else 0);
  Obs.record k_telemetry (List.length t.regions) live t.sync_floor
    (Hashtbl.length t.slot_sums);
  (* regions falling out of the tracking window are treated as persisted
     (non-speculative): the MCs reclaim their log arrays, exactly the
     hardware's deallocation protocol *)
  let rec trim n = function
    | [] -> []
    | x :: rest ->
      if n = 0 then begin
        List.iter
          (fun (r : region_record) ->
            Mc_logs.deallocate t.logs ~region:r.region_index)
          (x :: rest);
        []
      end
      else x :: trim (n - 1) rest
  in
  t.region_count <- t.region_count + 1;
  Io_buffer.on_region_start t.io ~region_index:t.region_count
    ~total_outputs:(List.length t.machine.outputs);
  let snapshot = List.map copy_frame t.machine.frames in
  t.regions <-
    {
      region_index = t.region_count;
      static_id;
      frames = snapshot;
      depth = t.machine.depth;
      outputs_at_entry = List.length t.machine.outputs;
      has_sync = false;
    }
    :: trim t.window t.regions

let hooks t : Machine.hooks =
  {
    on_event =
      (fun ev ->
        let tag = Event.tag ev in
        if tag = Event.tag_boundary then on_boundary t (Event.payload ev)
        else if tag = Event.tag_atomic then (current_region t).has_sync <- true);
    on_store =
      (fun ~addr ~old ~value ->
        (* every speculative store is undo-logged on arrival at its MC *)
        Mc_logs.log t.logs ~region:(current_region t).region_index ~addr ~old
          ~value;
        if Layout.is_ckpt_addr addr then
          Hashtbl.replace t.slot_sums addr (Fault.value_sum value));
  }

(** Run for [steps] instructions (or to completion). Returns [true] if the
    program halted before the budget. *)
let run_until t steps =
  let h = hooks t in
  let target = t.machine.steps + steps in
  while t.machine.status = Machine.Running && t.machine.steps < target do
    Machine.step t.machine h
  done;
  t.machine.status = Machine.Halted

(* ---- crash-state construction ---- *)

let revert_ckpt_stores mem entries =
  List.iter
    (fun (e : Mc_logs.entry) ->
      if Layout.is_ckpt_addr e.e_addr then Memory.write mem e.e_addr e.e_old)
    entries

(* Un-persist a random per-MC suffix of the oldest unpersisted region's
   data stores. Entries come newest-first per MC, so a per-MC *suffix*
   in program order is a per-MC *prefix* of the reversed lists. *)
let revert_partial rng mem (entries : Mc_logs.entry list) ~n_mcs =
  let mc_of addr = (addr lsr 8) mod n_mcs in
  (* how many of each MC's stores persisted (in program order) *)
  let per_mc_total = Array.make n_mcs 0 in
  List.iter
    (fun (e : Mc_logs.entry) ->
      if not (Layout.is_ckpt_addr e.e_addr) then
        per_mc_total.(mc_of e.e_addr) <- per_mc_total.(mc_of e.e_addr) + 1)
    entries;
  let persisted_prefix =
    Array.map (fun n -> if n = 0 then 0 else Cwsp_util.Rng.int rng (n + 1)) per_mc_total
  in
  let seen_from_end = Array.make n_mcs 0 in
  List.iter
    (fun (e : Mc_logs.entry) ->
      if not (Layout.is_ckpt_addr e.e_addr) then begin
        let mc = mc_of e.e_addr in
        let pos_from_start = per_mc_total.(mc) - seen_from_end.(mc) in
        seen_from_end.(mc) <- seen_from_end.(mc) + 1;
        if pos_from_start > persisted_prefix.(mc) then
          Memory.write mem e.e_addr e.e_old
      end)
    entries

type crash_report = {
  crash_step : int;
  recovery_region : int;      (* dynamic index of the oldest unpersisted region *)
  reverted_regions : int;
  reexecuted_instructions : int; (* instructions between recovery point and crash *)
  restored_registers : int;
  released_outputs : int list;
    (* device I/O already released at the crash (Section VIII: the redo
       buffers of persisted regions were flushed); oldest first *)
}

(** Cut power now, build the surviving NVM state, run the recovery
    protocol, and return a machine resumed at the recovery point plus a
    report. [rng] drives which regions/stores are treated as persisted. *)
let crash_and_recover ?(n_mcs = 2) rng (t : tracked) :
    Machine.t * crash_report =
  let crash_step = t.machine.steps in
  let mem = Memory.snapshot t.machine.mem in
  (* choose the oldest unpersisted region within the window; never at or
     before a closed sync region (its commit drained everything older) *)
  let eligible =
    List.length
      (List.filter
         (fun (r : region_record) -> r.region_index > t.sync_floor)
         t.regions)
  in
  let avail = max 1 eligible in
  (* every eligible tracked region is a legal recovery point. (The bound
     used to be [min avail t.window], which could never select the oldest
     tracked region: right after a boundary step the list legitimately
     holds window+1 regions, so a crash landing exactly on a region
     boundary silently skipped the just-closed region — and at window=1
     no rollback ever happened at all.) *)
  let back = Cwsp_util.Rng.int rng avail in
  (* regions list is newest first: element [back] is R_o *)
  let younger = List.filteri (fun i _ -> i < back) t.regions in
  let r_o = List.nth t.regions back in
  let r_o_entries = Mc_logs.region_entries t.logs ~region:r_o.region_index in
  (* 1. revert speculative NVM updates of younger regions: the MCs replay
     their per-region log arrays in reverse chronological order *)
  Mc_logs.revert_speculative t.logs ~oldest_unpersisted:r_o.region_index
    ~apply:(fun addr old -> Memory.write mem addr old);
  (* 2. un-persist R_o's own stores: a random per-MC FIFO suffix for
     ordinary regions; everything for a still-open sync region (the
     atomic + trailing checkpoints are one failure-atomic unit that did
     not complete) *)
  if r_o.has_sync then
    List.iter
      (fun (e : Mc_logs.entry) -> Memory.write mem e.e_addr e.e_old)
      r_o_entries
  else revert_partial rng mem r_o_entries ~n_mcs;
  (* 3. checkpoint-area stores of unpersisted regions are reverted too:
     the recovery slice must see the slots as of R_o's entry *)
  revert_ckpt_stores mem r_o_entries;
  let linked = t.machine.linked in
  (* I/O of persisted regions was released to the device; the rest was
     still buffered and is discarded with the crash *)
  let released_outputs =
    let n = Io_buffer.released t.io ~oldest_unpersisted:r_o.region_index in
    assert (n = r_o.outputs_at_entry);
    let all = List.rev t.machine.outputs in
    List.filteri (fun i _ -> i < n) all
  in
  if r_o.static_id = -2 then begin
    (* crash before the first boundary of a post-recovery execution:
       roll back to the resume point (registers were restored by the
       previous recovery and live in the snapshot) *)
    let m =
      Machine.resume linked ~mem
        ~frames:(`Frames (List.map copy_frame r_o.frames))
        ~depth:r_o.depth
    in
    ( m,
      {
        crash_step;
        recovery_region = 0;
        reverted_regions = List.length younger;
        reexecuted_instructions = crash_step;
        restored_registers = 0;
        released_outputs;
      } )
  end
  else if r_o.static_id < 0 then begin
    (* crash before the first boundary: restart the program from scratch
       on the surviving memory *)
    let m = Machine.resume linked ~mem ~frames:`Fresh ~depth:0 in
    ( m,
      {
        crash_step;
        recovery_region = 0;
        reverted_regions = List.length younger;
        reexecuted_instructions = crash_step;
        restored_registers = 0;
        released_outputs;
      } )
  end
  else begin
    (* 4. recovery slice: restore R_o's live-in registers *)
    let slice = t.compiled.slices.(r_o.static_id) in
    let frames = List.map copy_frame r_o.frames in
    let fr = List.hd frames in
    Array.fill fr.regs 0 (Array.length fr.regs) poison;
    let slot r2 = Memory.read mem (Layout.ckpt_slot ~tid:0 ~depth:r_o.depth r2) in
    let addr_of g =
      match Hashtbl.find_opt linked.global_addr g with
      | Some a -> a
      | None -> failwith ("recovery slice references unknown global " ^ g)
    in
    List.iter
      (fun (r, expr) -> fr.regs.(r) <- Cwsp_ckpt.Slice.eval ~slot ~addr_of expr)
      slice;
    let m = Machine.resume linked ~mem ~frames:(`Frames frames) ~depth:r_o.depth in
    ( m,
      {
        crash_step;
        recovery_region = r_o.region_index;
        reverted_regions = List.length younger;
        reexecuted_instructions = crash_step - 0;
        restored_registers = List.length slice;
        released_outputs;
      } )
  end

(** Full experiment: run [compiled] to completion twice — once undisturbed
    (golden) and once with a power failure at [crash_at] instructions —
    and compare the final NVM states. Returns [Ok report] on bitwise
    equality. *)
let validate ?(window = 16) ?(n_mcs = 2) ~seed ~crash_at
    (compiled : Cwsp_compiler.Pipeline.compiled) :
    (crash_report, string) result =
  let rng = Cwsp_util.Rng.create seed in
  (* golden run *)
  let golden = Machine.create (Machine.link compiled.prog) in
  Machine.run golden Machine.no_hooks;
  (* crashing run *)
  let t = create ~window compiled in
  let halted = run_until t crash_at in
  if halted then Error "program halted before the crash point"
  else begin
    let recovered, report = crash_and_recover ~n_mcs rng t in
    (* a recovered run that never halts is a divergence to report, not a
       hang: allow a generous multiple of the failure-free step count *)
    let fuel = (4 * golden.steps) + 10_000 in
    match Machine.run ~fuel recovered Machine.no_hooks with
    | exception Machine.Fuel_exhausted ->
      Error
        (Printf.sprintf
           "recovered run failed to halt within %d steps (crash@%d, region %d)"
           fuel report.crash_step report.recovery_region)
    | () ->
    let io_ok =
      (* exactly-once device I/O (Section VIII): released prefix plus the
         recovered run's output must equal the failure-free output *)
      report.released_outputs @ Machine.outputs recovered
      = Machine.outputs golden
    in
    if not io_ok then
      Error
        (Printf.sprintf
           "device I/O diverged after recovery (crash@%d, region %d): %d             released + %d regenerated vs %d golden"
           report.crash_step report.recovery_region
           (List.length report.released_outputs)
           (List.length (Machine.outputs recovered))
           (List.length (Machine.outputs golden)))
    else if Memory.equal golden.mem recovered.mem then Ok report
    else
      match Memory.first_diff golden.mem recovered.mem with
      | Some (addr, g, r) ->
        Error
          (Printf.sprintf
             "NVM mismatch after recovery at 0x%x: golden=%d recovered=%d \
              (crash@%d, region %d)"
             addr g r report.crash_step report.recovery_region)
      | None -> Error "memories differ but no diff found"
  end

(** Multi-failure validation: run to [c], crash, recover, resume, crash
    again at the next point of [crash_points] — recovery itself must be
    crash consistent. Compares the final NVM state and the exactly-once
    I/O stream against a failure-free run. *)
let validate_chain ?(window = 16) ?(n_mcs = 2) ~seed ~crash_points
    (compiled : Cwsp_compiler.Pipeline.compiled) :
    (int, string) result =
  let rng = Cwsp_util.Rng.create seed in
  let golden = Machine.create (Machine.link compiled.prog) in
  Machine.run golden Machine.no_hooks;
  let rec go tracked crash_points released_acc crashes =
    let t = tracked in
    match crash_points with
    | [] ->
      (* no more failures: run to completion through the harness hooks *)
      let h = hooks t in
      while t.machine.status = Machine.Running do
        Machine.step t.machine h
      done;
      let final_io = released_acc @ Machine.outputs t.machine in
      if final_io <> Machine.outputs golden then
        Error
          (Printf.sprintf "device I/O diverged after %d crashes" crashes)
      else if Memory.equal golden.mem t.machine.mem then Ok crashes
      else (
        match Memory.first_diff golden.mem t.machine.mem with
        | Some (addr, g, r) ->
          Error
            (Printf.sprintf
               "NVM mismatch after %d crashes at 0x%x: golden=%d got=%d"
               crashes addr g r)
        | None -> Error "memories differ but no diff found")
    | c :: rest ->
      if run_until t c then
        (* halted before this crash point: just check the final state *)
        go t [] released_acc crashes
      else begin
        let recovered, report = crash_and_recover ~n_mcs rng t in
        let t' = create_resumed ~window t.compiled recovered in
        go t' rest (released_acc @ report.released_outputs) (crashes + 1)
      end
  in
  go (create ~window compiled) crash_points [] 0

(* ==================================================================== *)
(* Explicit-persistency oracle: the dynamic ground truth for the        *)
(* Persist_check static tier. Models hardware WITHOUT the cWSP persist  *)
(* path: a data store is durable only once a flush captured its line    *)
(* AND a later pfence (or sync primitive) drained it. Register          *)
(* checkpoints keep their hardware path (write-through, undo-logged per *)
(* open region so a crash can't leave a half-written ckpt run), and an  *)
(* atomic is a failure-atomic unit that completes with its closing      *)
(* boundary. The crash is maximally adversarial and deterministic:      *)
(* cache contents AND the flushed-but-unfenced set are lost. Recovery   *)
(* is blind — resume at the newest boundary, no undo logs to roll back  *)
(* with — so the final state is right iff the compiler really did make  *)
(* every prior store durable: exactly the obligation Persist_check      *)
(* discharges statically. A mutant that drops/moves one flush or fence  *)
(* escapes here dynamically at some crash point.                        *)
(* ==================================================================== *)

type explicit_tracked = {
  e_machine : Machine.t;
  e_compiled : Cwsp_compiler.Pipeline.compiled;
  e_nvm : Memory.t; (* the durable image, maintained alongside the run *)
  e_pending : (int, int) Hashtbl.t; (* flushed, not yet fenced: addr -> value *)
  mutable e_pending_atomic : (int * int) option;
      (* an atomic's (addr, value) awaiting its closing boundary *)
  mutable e_last_store : (int * int) option;
      (* the store the current instruction just performed, so the atomic
         event can claim its value (hook order is store-then-event) *)
  mutable e_ckpt_undo : (int * int) list; (* open region's ckpt (addr, old) *)
  mutable e_boundary : (int * Machine.frame list * int * int) option;
      (* newest boundary: static id, frame snapshot, depth, outputs *)
}

let explicit_drain e =
  Hashtbl.iter (fun addr v -> Memory.write e.e_nvm addr v) e.e_pending;
  Hashtbl.reset e.e_pending

let explicit_hooks e : Machine.hooks =
  {
    on_store =
      (fun ~addr ~old:_ ~value ->
        if Layout.is_ckpt_addr addr then begin
          (* hardware persist path of the checkpoint engine: write-through,
             journaled until the region's boundary commits the run *)
          let nold = Memory.read e.e_nvm addr in
          Memory.write e.e_nvm addr value;
          e.e_ckpt_undo <- (addr, nold) :: e.e_ckpt_undo
        end
        else e.e_last_store <- Some (addr, value));
    on_event =
      (fun ev ->
        let tag = Event.tag ev in
        if tag = Event.tag_flush then begin
          let addr = Event.payload ev in
          if not (Layout.is_ckpt_addr addr) then
            (* the writeback captures the line's current cache contents *)
            Hashtbl.replace e.e_pending addr (Memory.read e.e_machine.mem addr);
          e.e_last_store <- None
        end
        else if tag = Event.tag_pfence || tag = Event.tag_fence then begin
          explicit_drain e;
          e.e_last_store <- None
        end
        else if tag = Event.tag_atomic then begin
          (* full sync: drains the persist stream; its own write is a
             failure-atomic unit completing at the closing boundary *)
          explicit_drain e;
          (match e.e_last_store with
          | Some (a, v) when a = Event.payload ev ->
            e.e_pending_atomic <- Some (a, v)
          | _ -> ());
          e.e_last_store <- None
        end
        else if tag = Event.tag_boundary then begin
          (* flight recorder: boundary commit in the explicit model,
             with the flushed-but-unfenced set as persist telemetry *)
          Obs.record k_boundary e.e_machine.steps (Event.payload ev)
            (Hashtbl.length e.e_pending)
            (match e.e_pending_atomic with Some _ -> 1 | None -> 0);
          (match e.e_pending_atomic with
          | Some (a, v) -> Memory.write e.e_nvm a v
          | None -> ());
          e.e_pending_atomic <- None;
          e.e_ckpt_undo <- [];
          e.e_boundary <-
            Some
              ( Event.payload ev,
                List.map copy_frame e.e_machine.frames,
                e.e_machine.depth,
                List.length e.e_machine.outputs );
          e.e_last_store <- None
        end
        else e.e_last_store <- None);
  }

(** Explicit-persistency crash experiment: run [compiled] (an
    [Explicit]-mode binary) to [crash_at] instructions, cut power —
    losing the caches, the flushed-but-unfenced set and any uncommitted
    atomic, and reverting the open region's checkpoint-area stores —
    then blindly resume at the newest boundary via its recovery slice
    and compare the final NVM state and the exactly-once device output
    stream against a failure-free run. Deterministic: the adversary
    always takes everything a fence had not sealed. *)
let validate_explicit ?(flight = false) ?on_flight ~crash_at
    (compiled : Cwsp_compiler.Pipeline.compiled) : (crash_report, string) result
    =
  let flight = flight || flight_env in
  let golden = Machine.create (Machine.link compiled.prog) in
  Machine.run golden Machine.no_hooks;
  let linked = Machine.link compiled.prog in
  let machine = Machine.create linked in
  let e =
    {
      e_machine = machine;
      e_compiled = compiled;
      e_nvm = Memory.snapshot machine.mem;
      e_pending = Hashtbl.create 64;
      e_pending_atomic = None;
      e_last_store = None;
      e_ckpt_undo = [];
      e_boundary = None;
    }
  in
  (* In the explicit model the recorder lives in the durable image
     directly: each append is its own flush+fence (the commit-word
     ordering is the failure-atomicity), so the ring survives the
     deterministic crash whole. *)
  let frec = if flight then Some (Recorder.format e.e_nvm) else None in
  let with_sink f =
    match frec with
    | Some fr ->
      Obs.with_recorder
        (fun k a b c d ->
          match Recorder.kind_of_code k with
          | Some kind -> Recorder.append fr ~kind a b c d
          | None -> ())
        f
    | None -> f ()
  in
  with_sink @@ fun () ->
  let h = explicit_hooks e in
  while e.e_machine.status = Machine.Running && e.e_machine.steps < crash_at do
    Machine.step e.e_machine h
  done;
  if e.e_machine.status = Machine.Halted then
    Error "program halted before the crash point"
  else begin
    let crash_step = e.e_machine.steps in
    (* power is lost: only [e_nvm] survives; the open region's ckpt run
       is rolled back so the recovery slice sees the slots as of the
       newest boundary (newest-first replay restores the oldest value) *)
    let image = Memory.snapshot e.e_nvm in
    List.iter (fun (addr, old) -> Memory.write image addr old) e.e_ckpt_undo;
    let recovered, recovery_region, restored, released_outputs =
      match e.e_boundary with
      | None ->
        ( Machine.resume linked ~mem:image ~frames:`Fresh ~depth:0,
          0, 0, [] )
      | Some (static_id, frames, depth, outs) ->
        let slice = compiled.slices.(static_id) in
        let frames = List.map copy_frame frames in
        let fr = List.hd frames in
        Array.fill fr.regs 0 (Array.length fr.regs) poison;
        let slot r = Memory.read image (Layout.ckpt_slot ~tid:0 ~depth r) in
        let addr_of g =
          match Hashtbl.find_opt linked.global_addr g with
          | Some a -> a
          | None -> failwith ("recovery slice references unknown global " ^ g)
        in
        List.iter
          (fun (r, expr) ->
            fr.regs.(r) <- Cwsp_ckpt.Slice.eval ~slot ~addr_of expr)
          slice;
        let released =
          List.filteri (fun i _ -> i < outs) (Machine.outputs e.e_machine)
        in
        ( Machine.resume linked ~mem:image ~frames:(`Frames frames) ~depth,
          static_id, List.length slice, released )
    in
    (* recovery-side flight events: new crash epoch on the surviving
       image, then the crash record and the blind-resume decision *)
    if flight then begin
      (match Recorder.attach image with
      | Some r ->
        Recorder.bump_epoch r;
        Recorder.append r ~kind:Recorder.Crash crash_step recovery_region 0 0;
        Recorder.append r ~kind:Recorder.Resume recovery_region restored 0 0
      | None -> ());
      match on_flight with
      | Some f -> f (Recorder.dump_string image)
      | None -> ()
    end;
    (* bound the blind re-execution the same way [validate] bounds its
       recovered run: non-termination is a reportable divergence *)
    let fuel = (4 * golden.steps) + 10_000 in
    match Machine.run ~fuel recovered Machine.no_hooks with
    | exception Machine.Fuel_exhausted ->
      Error
        (Printf.sprintf
           "explicit-mode recovered run failed to halt within %d steps \
            (crash@%d)"
           fuel crash_step)
    | () ->
    let report =
      {
        crash_step;
        recovery_region;
        reverted_regions = 0;
        reexecuted_instructions = crash_step;
        restored_registers = restored;
        released_outputs;
      }
    in
    if released_outputs @ Machine.outputs recovered <> Machine.outputs golden
    then
      Error
        (Printf.sprintf
           "device I/O diverged after explicit-mode recovery (crash@%d): %d \
            released + %d regenerated vs %d golden"
           crash_step
           (List.length released_outputs)
           (List.length (Machine.outputs recovered))
           (List.length (Machine.outputs golden)))
    else if
      Memory.equal_except ~except:Layout.is_flight_addr golden.mem
        recovered.mem
    then Ok report
    else
      match
        Memory.first_diff_except ~except:Layout.is_flight_addr golden.mem
          recovered.mem
      with
      | Some (addr, g, r) ->
        Error
          (Printf.sprintf
             "NVM mismatch after explicit-mode recovery at 0x%x: golden=%d \
              recovered=%d (crash@%d, boundary %d)"
             addr g r crash_step recovery_region)
      | None -> Error "memories differ but no diff found"
  end

(* ==================================================================== *)
(* Adversarial fault model: crashes where the persistence path itself   *)
(* is faulty (torn persists, dropped persist-buffer tails, log/ckpt     *)
(* corruption, power failure during recovery). The clean-crash paths    *)
(* above trust every surviving byte; the hardened protocol below audits *)
(* the undo logs (checksums, LSNs, count headers) and the checkpoint    *)
(* area before committing to a rollback boundary, degrading to deeper   *)
(* boundaries whose logs verify and refusing outright rather than ever  *)
(* producing a wrong final NVM image.                                   *)
(* ==================================================================== *)

type golden = { g_mem : Memory.t; g_outputs : int list; g_steps : int }

(** Failure-free reference run, shared across a campaign's cells. *)
let golden_of (compiled : Cwsp_compiler.Pipeline.compiled) =
  let m = Machine.create (Machine.link compiled.prog) in
  Machine.run m Machine.no_hooks;
  { g_mem = m.mem; g_outputs = Machine.outputs m; g_steps = m.steps }

(** The surviving durable state at the instant power is lost, before any
    recovery runs and before any fault is injected into it: the NVM
    image (with the chosen un-persisted suffix of R_o's stores removed),
    the MC log arrays, the checkpoint-area shadow checksums, and the
    tracking metadata recovery needs. Unlike [crash_and_recover], which
    interleaves crash construction with recovery, this is a pure value —
    injectors mutate it, and both the blind and the hardened protocols
    can be run (repeatedly, for the crash-during-recovery sweep) against
    copies of it. *)
type crash_state = {
  cs_mem : Memory.t;
  cs_logs : Mc_logs.t;
  cs_slot_sums : (int, int) Hashtbl.t;
  cs_regions : region_record list; (* newest first, as tracked *)
  cs_nominal : int; (* position of R_o, the nominal recovery point *)
  cs_released : int list; (* device outputs already released, oldest first *)
  cs_sync_floor : int;
  cs_crash_step : int;
  cs_linked : Machine.linked;
  cs_compiled : Cwsp_compiler.Pipeline.compiled;
}

(** Cut power now and build the surviving durable state. Physically
    honest about per-location persist FIFOs: R_o's un-persisted suffix
    skips addresses a younger tracked region also stored to (a younger
    persisted store to the same location implies R_o's earlier store
    persisted first), and younger regions' speculative stores are left
    in the image — reverting them is recovery's job, not the crash's. *)
let cut_power ?(n_mcs = 2) rng (t : tracked) : crash_state =
  ignore n_mcs;
  let eligible =
    List.length
      (List.filter
         (fun (r : region_record) -> r.region_index > t.sync_floor)
         t.regions)
  in
  let avail = max 1 eligible in
  let back = Cwsp_util.Rng.int rng avail in
  let r_o = List.nth t.regions back in
  let mem = Memory.snapshot t.machine.mem in
  let slot_sums = Hashtbl.copy t.slot_sums in
  let r_o_entries = Mc_logs.region_entries t.logs ~region:r_o.region_index in
  let younger_covers = Hashtbl.create 64 in
  List.iteri
    (fun i (r : region_record) ->
      if i < back then
        List.iter
          (fun (e : Mc_logs.entry) -> Hashtbl.replace younger_covers e.e_addr ())
          (Mc_logs.region_entries t.logs ~region:r.region_index))
    t.regions;
  let unpersist (e : Mc_logs.entry) =
    if not (Hashtbl.mem younger_covers e.e_addr) then begin
      Memory.write mem e.e_addr e.e_old;
      (* slot metadata persists atomically with the slot store: an
         un-persisted checkpoint store rolls its shadow checksum back *)
      if Layout.is_ckpt_addr e.e_addr then
        Hashtbl.replace slot_sums e.e_addr (Fault.value_sum e.e_old)
    end
  in
  if r_o.has_sync then
    (* still-open sync region: the atomic + trailing checkpoints are one
       failure-atomic unit that did not complete — nothing persisted *)
    List.iter unpersist r_o_entries
  else begin
    (* random per-MC FIFO suffix of R_o's data stores un-persists, and
       R_o's checkpoint-area stores are treated as unpersisted (the
       trailing checkpoint of R_o's opening boundary had not drained) *)
    let mc_of addr = Mc_logs.mc_of t.logs addr in
    let per_mc_total = Array.make 8 0 in
    List.iter
      (fun (e : Mc_logs.entry) ->
        if not (Layout.is_ckpt_addr e.e_addr) then
          per_mc_total.(mc_of e.e_addr) <- per_mc_total.(mc_of e.e_addr) + 1)
      r_o_entries;
    let persisted_prefix =
      Array.map
        (fun n -> if n = 0 then 0 else Cwsp_util.Rng.int rng (n + 1))
        per_mc_total
    in
    let seen_from_end = Array.make 8 0 in
    List.iter
      (fun (e : Mc_logs.entry) ->
        if Layout.is_ckpt_addr e.e_addr then unpersist e
        else begin
          let mc = mc_of e.e_addr in
          let pos_from_start = per_mc_total.(mc) - seen_from_end.(mc) in
          seen_from_end.(mc) <- seen_from_end.(mc) + 1;
          if pos_from_start > persisted_prefix.(mc) then unpersist e
        end)
      r_o_entries
  end;
  let released =
    let n = Io_buffer.released t.io ~oldest_unpersisted:r_o.region_index in
    assert (n = r_o.outputs_at_entry);
    List.filteri (fun i _ -> i < n) (List.rev t.machine.outputs)
  in
  {
    cs_mem = mem;
    cs_logs = Mc_logs.copy t.logs;
    cs_slot_sums = slot_sums;
    cs_regions = t.regions;
    cs_nominal = back;
    cs_released = released;
    cs_sync_floor = t.sync_floor;
    cs_crash_step = t.machine.steps;
    cs_linked = t.machine.linked;
    cs_compiled = t.compiled;
  }

(* Newest verified record per address across all tracked regions; the
   position (index into cs_regions) tells which side of a rollback
   boundary last wrote the address. Per address the order is exact: a
   location always maps to one MC, whose per-region lists are newest
   first, and list position is newest first too. *)
let newest_per_addr cs =
  let tbl = Hashtbl.create 64 in
  List.iteri
    (fun idx (r : region_record) ->
      List.iter
        (fun (e : Mc_logs.entry) ->
          if
            Mc_logs.entry_ok ~region:r.region_index e
            && not (Hashtbl.mem tbl e.e_addr)
          then Hashtbl.add tbl e.e_addr (idx, e))
        (Mc_logs.region_entries cs.cs_logs ~region:r.region_index))
    cs.cs_regions;
  tbl

(* Checkpoint-slot addresses a region's recovery slice reads. *)
let slice_slot_addrs cs (r : region_record) =
  if r.static_id < 0 then []
  else
    cs.cs_compiled.slices.(r.static_id)
    |> List.concat_map (fun (_, e) -> Cwsp_ckpt.Slice.slot_refs e)
    |> List.sort_uniq compare
    |> List.map (fun reg -> Layout.ckpt_slot ~tid:0 ~depth:r.depth reg)

(* ---- fault injection into a crash state ---- *)

let inject rng (cls : Fault.cls) cs : string option =
  let sorted_candidates l =
    Array.of_list (List.sort (fun (a, _) (b, _) -> compare a b) l)
  in
  match cls with
  | Fault.Recovery_crash -> None (* realized as the mid-recovery sweep *)
  | Fault.Torn_persist ->
      (* tear the NVM word of a store that did persist; prefer one whose
         newest write is on the persisted side of the nominal boundary —
         tears inside the revert set are repaired without ever being
         noticed, which is legal but uninteresting *)
      let m = newest_per_addr cs in
      let deep, any =
        Hashtbl.fold
          (fun addr (idx, (e : Mc_logs.entry)) (deep, any) ->
            (* a store that changed nothing cannot tear observably *)
            if Memory.read cs.cs_mem addr = e.e_old then (deep, any)
            else
              let c = (addr, e) in
              ((if idx > cs.cs_nominal then c :: deep else deep), c :: any))
          m ([], [])
      in
      let pool = if deep <> [] then deep else any in
      if pool = [] then None
      else begin
        let arr = sorted_candidates pool in
        let addr, e = arr.(Cwsp_util.Rng.int rng (Array.length arr)) in
        let old = e.e_old in
        Memory.mutate cs.cs_mem addr (fun v -> Fault.tear rng ~value:v ~old);
        Some (Printf.sprintf "torn persist at 0x%x" addr)
      end
  | Fault.Dropped_tail ->
      (* one MC's persist buffer silently dropped its newest data writes
         for a supposedly-persisted region: the undo-log records are
         intact (logging happens on the arrival path), the data never
         reached NVM. Only newest-per-address stores are droppable — a
         younger persisted store to the same location would contradict
         the per-location FIFO. *)
      let m = newest_per_addr cs in
      let candidates =
        Hashtbl.fold
          (fun addr (idx, (e : Mc_logs.entry)) acc ->
            if idx > cs.cs_nominal then (addr, e) :: acc else acc)
          m []
      in
      if candidates = [] then None
      else begin
        let arr = sorted_candidates candidates in
        let k = 1 + Cwsp_util.Rng.int rng (min 3 (Array.length arr)) in
        let dropped = ref [] in
        for _ = 1 to k do
          let addr, (e : Mc_logs.entry) =
            arr.(Cwsp_util.Rng.int rng (Array.length arr))
          in
          if not (List.mem addr !dropped) then begin
            Memory.write cs.cs_mem addr e.e_old;
            if Layout.is_ckpt_addr addr then
              Hashtbl.replace cs.cs_slot_sums addr (Fault.value_sum e.e_old);
            dropped := addr :: !dropped
          end
        done;
        Some
          (Printf.sprintf "dropped persist-buffer writes at [%s]"
             (String.concat "; "
                (List.map (Printf.sprintf "0x%x") !dropped)))
      end
  | Fault.Log_corruption ->
      Mc_logs.inject_corrupt cs.cs_logs rng
        ~regions:(List.map (fun (r : region_record) -> r.region_index) cs.cs_regions)
  | Fault.Ckpt_bitflip ->
      (* bit rot in a checkpoint slot (the slot's shadow checksum still
         describes the intended value). A flip in a slot the nominal
         revert set covers is healed by the replay before the slice
         reads it — legal but unobservable — so prefer slots the slice
         reads whose checkpoint is OLDER than the rollback boundary
         (pruning makes slices read ancient slots), then any uncovered
         written slot, then anything the slice reads. *)
      let r_o = List.nth cs.cs_regions cs.cs_nominal in
      let m = newest_per_addr cs in
      let covered a =
        match Hashtbl.find_opt m a with
        | Some (idx, _) -> idx <= cs.cs_nominal
        | None -> false
      in
      let slice_slots = slice_slot_addrs cs r_o in
      let written =
        Hashtbl.fold (fun a _ acc -> a :: acc) cs.cs_slot_sums []
        |> List.sort compare
      in
      let pool1 = List.filter (fun a -> not (covered a)) slice_slots in
      let pool2 = List.filter (fun a -> not (covered a)) written in
      let slots =
        if pool1 <> [] then pool1
        else if pool2 <> [] then pool2
        else slice_slots
      in
      if slots = [] then None
      else begin
        let a = List.nth slots (Cwsp_util.Rng.int rng (List.length slots)) in
        Memory.mutate cs.cs_mem a (Fault.flip_bit rng);
        Some (Printf.sprintf "bit flip in checkpoint slot 0x%x" a)
      end

(* ---- hardened recovery: audit, degradation ladder, staged plan ---- *)

type rung_check = {
  rc_usable : bool; (* this rung's rollback can be trusted *)
  rc_fatal : bool; (* no deeper rung can help: stop the ladder *)
  rc_notes : string list; (* detection messages *)
  rc_skip : Mc_logs.entry list; (* corrupt records proven immaterial *)
}

(** Audit rollback boundary [back] (position in [cs_regions]).

    - Revert-set regions (positions <= back) must have verifiable logs:
      count headers match, LSNs contiguous, record checksums good. A
      corrupt record is tolerated only if an OLDER verified record
      covers the same address — reverse-chronological replay overwrites
      whatever the corrupt record would have written, so its loss is
      immaterial. (Its address field may itself be the corrupted field;
      under the single-fault adversary the shadow lookup then misses and
      we refuse rather than trust it.) Structural damage or an
      unshadowed corrupt record is fatal: records are missing or
      untrustworthy, so the region's write set is unknowable and no
      deeper rung restores it either.
    - Persisted-side regions (positions > back) are audited for
      *persistence*: the newest verified record per address carries the
      checksum of the value NVM must hold. A mismatch (torn persist,
      dropped persist-buffer write) fails the rung but a deeper rung
      that pulls the damaged region into the revert set repairs it.
    - The rung's slice inputs are audited: every checkpoint slot the
      slice reads must either be rewritten by the revert replay (a
      revert-set record covers it) or match its shadow checksum.
    - Rolling back must not cross a committed sync point nor re-release
      device I/O; both bound the ladder below. *)
let check_rung cs ~back =
  let notes = ref [] and fatal = ref false and soft = ref false in
  let skip = ref [] in
  let note msg = notes := msg :: !notes in
  let rung = List.nth cs.cs_regions back in
  if rung.region_index <= cs.cs_sync_floor then begin
    fatal := true;
    note "rollback would cross a committed sync point"
  end;
  if rung.outputs_at_entry <> List.length cs.cs_released then begin
    fatal := true;
    note "rollback would re-release device I/O"
  end;
  let n_regions = List.length cs.cs_regions in
  let region_arr = Array.of_list cs.cs_regions in
  let entries_at i =
    Mc_logs.region_entries cs.cs_logs ~region:region_arr.(i).region_index
  in
  (* audit the revert set *)
  for i = 0 to min back (n_regions - 1) do
    let rid = region_arr.(i).region_index in
    let a = Mc_logs.audit_region cs.cs_logs ~region:rid in
    List.iter
      (fun msg ->
        fatal := true;
        note ("undo log unusable: " ^ msg))
      a.au_structural;
    List.iter
      (fun (bad : Mc_logs.entry) ->
        let shadowed =
          let found = ref false in
          for j = i to back do
            if not !found then
              List.iter
                (fun (e : Mc_logs.entry) ->
                  if
                    e != bad
                    && Mc_logs.entry_ok ~region:region_arr.(j).region_index e
                    && e.e_addr = bad.e_addr
                    && (j > i || e.e_lsn < bad.e_lsn)
                  then found := true)
                (entries_at j)
          done;
          !found
        in
        if shadowed then begin
          skip := bad :: !skip;
          note
            (Printf.sprintf
               "corrupt log record in region %d tolerated (older record \
                covers 0x%x)"
               rid bad.e_addr)
        end
        else begin
          fatal := true;
          note
            (Printf.sprintf "unshadowed corrupt log record in region %d" rid)
        end)
      a.au_bad
  done;
  (* audit persistence of the persisted side *)
  let m = newest_per_addr cs in
  let mismatches = ref [] in
  Hashtbl.iter
    (fun addr (idx, (e : Mc_logs.entry)) ->
      if idx > back && Fault.value_sum (Memory.read cs.cs_mem addr) <> e.e_new_sum
      then mismatches := (addr, idx) :: !mismatches)
    m;
  List.iter
    (fun (addr, idx) ->
      soft := true;
      note
        (Printf.sprintf
           "persisted store at 0x%x (region %d) is not in NVM" addr
           region_arr.(idx).region_index))
    (List.sort compare !mismatches);
  (* audit the checkpoint area — every slot, not just the ones this
     rung's slice reads: a rotted slot that no surviving record covers
     cannot be healed by ANY rung (its true value is unknowable, the
     metadata only stores a checksum), so it must keep failing rungs
     until the ladder refuses rather than commit an image with a wrong
     word in it *)
  let covered a =
    match Hashtbl.find_opt m a with Some (idx, _) -> idx <= back | None -> false
  in
  let slot_alarms = ref [] in
  Hashtbl.iter
    (fun a expect ->
      if
        (not (covered a))
        && Fault.value_sum (Memory.read cs.cs_mem a) <> expect
      then slot_alarms := a :: !slot_alarms)
    cs.cs_slot_sums;
  (* slice inputs the program never stored to read as zero *)
  List.iter
    (fun a ->
      if
        (not (Hashtbl.mem cs.cs_slot_sums a))
        && (not (covered a))
        && Memory.read cs.cs_mem a <> 0
      then slot_alarms := a :: !slot_alarms)
    (slice_slot_addrs cs rung);
  List.iter
    (fun a ->
      soft := true;
      note (Printf.sprintf "checkpoint slot 0x%x fails its checksum" a))
    (List.sort_uniq compare !slot_alarms);
  {
    rc_usable = (not !fatal) && not !soft;
    rc_fatal = !fatal;
    rc_notes = List.rev !notes;
    rc_skip = !skip;
  }

(* The recovery runtime's durable actions, as an explicit instruction
   sequence so a second power failure can be injected after ANY of them.
   Hardened ordering: a durable intent record pins the chosen rung
   first, every revert (an absolute write — idempotent) runs next, the
   logs are truncated only once all reverts are durable, and the slice
   evaluates last into volatile registers. Replaying the whole plan
   after a mid-recovery crash is therefore a no-op-or-completion, never
   a corruption. *)
type recovery_step =
  | S_intent of int (* durably pin the chosen rung's region index *)
  | S_revert of int * int (* absolute write: addr, rung-entry value *)
  | S_truncate (* drop all MC logs (and headers) *)
  | S_slice of int * Cwsp_ckpt.Slice.expr (* restore one live-in register *)

type world = {
  w_mem : Memory.t;
  w_logs : Mc_logs.t;
  w_sums : (int, int) Hashtbl.t;
  mutable w_intent : int option;
}

let world_of cs =
  {
    w_mem = Memory.snapshot cs.cs_mem;
    w_logs = Mc_logs.copy cs.cs_logs;
    w_sums = Hashtbl.copy cs.cs_slot_sums;
    w_intent = None;
  }

let exec_step w = function
  | S_intent r -> w.w_intent <- Some r
  | S_revert (addr, v) ->
      Memory.write w.w_mem addr v;
      (* recovery's writes go through the MCs like any store: slot
         metadata follows the slot *)
      if Layout.is_ckpt_addr addr then
        Hashtbl.replace w.w_sums addr (Fault.value_sum v)
  | S_truncate -> Mc_logs.reset w.w_logs
  | S_slice _ -> () (* registers are volatile; materialized at resume *)

let run_plan w plan = List.iter (exec_step w) plan

(** Hardened full-revert plan for rung [back]: replay EVERY record of
    every region at positions <= back (minus proven-immaterial corrupt
    ones), newest region first, newest record first — after which every
    logged address holds its exact rung-entry value; idempotent
    re-execution regenerates the rest. *)
let build_plan cs ~back ~skip =
  let rung = List.nth cs.cs_regions back in
  let reverts =
    List.concat
      (List.filteri (fun i _ -> i <= back) cs.cs_regions
      |> List.map (fun (r : region_record) ->
             Mc_logs.region_entries cs.cs_logs ~region:r.region_index
             |> List.filter (fun e -> not (List.memq e skip))
             |> List.map (fun (e : Mc_logs.entry) ->
                    S_revert (e.e_addr, e.e_old))))
  in
  let slices =
    if rung.static_id < 0 then []
    else
      List.map
        (fun (r, e) -> S_slice (r, e))
        cs.cs_compiled.slices.(rung.static_id)
  in
  (S_intent rung.region_index :: reverts) @ (S_truncate :: slices)

(** Blind (legacy-ordering) plan: trust every record, revert only the
    younger regions plus R_o's checkpoint stores, and — the vulnerability
    the hardened ordering fixes — free the log space while loading the
    records into volatile buffers, BEFORE the reverts are applied. Built
    from [logs] so a restart after a mid-recovery crash sees whatever
    log state survived. *)
let blind_plan cs ~logs =
  let back = cs.cs_nominal in
  let rung = List.nth cs.cs_regions back in
  let reverts =
    List.concat
      (List.mapi
         (fun i (r : region_record) ->
           if i > back then []
           else
             Mc_logs.region_entries logs ~region:r.region_index
             |> List.filter (fun (e : Mc_logs.entry) ->
                    i < back || Layout.is_ckpt_addr e.e_addr)
             |> List.map (fun (e : Mc_logs.entry) ->
                    S_revert (e.e_addr, e.e_old)))
         cs.cs_regions)
  in
  let slices =
    if rung.static_id < 0 then []
    else
      List.map
        (fun (r, e) -> S_slice (r, e))
        cs.cs_compiled.slices.(rung.static_id)
  in
  (S_truncate :: reverts) @ slices

(** Resume execution at rung [back] on [w]'s memory: evaluate the rung's
    recovery slice into a poisoned register file (or restart/rewind for
    the pre-first-boundary cases). *)
let resume_at cs w ~back =
  let rung = List.nth cs.cs_regions back in
  let linked = cs.cs_linked in
  if rung.static_id = -2 then
    Machine.resume linked ~mem:w.w_mem
      ~frames:(`Frames (List.map copy_frame rung.frames))
      ~depth:rung.depth
  else if rung.static_id < 0 then
    Machine.resume linked ~mem:w.w_mem ~frames:`Fresh ~depth:0
  else begin
    let slice = cs.cs_compiled.slices.(rung.static_id) in
    let frames = List.map copy_frame rung.frames in
    let fr = List.hd frames in
    Array.fill fr.regs 0 (Array.length fr.regs) poison;
    let slot r = Memory.read w.w_mem (Layout.ckpt_slot ~tid:0 ~depth:rung.depth r) in
    let addr_of g =
      match Hashtbl.find_opt linked.global_addr g with
      | Some a -> a
      | None -> failwith ("recovery slice references unknown global " ^ g)
    in
    List.iter
      (fun (r, expr) -> fr.regs.(r) <- Cwsp_ckpt.Slice.eval ~slot ~addr_of expr)
      slice;
    Machine.resume linked ~mem:w.w_mem ~frames:(`Frames frames) ~depth:rung.depth
  end

(* Run the resumed machine to completion and compare against the golden
   run. A trap, a hang, or any NVM/IO divergence is a wrong outcome —
   the oracle, independent of all checksums. The flight-recorder region
   is excluded: it is observability state, written on the crashing path
   only, and legitimately differs from the failure-free image. *)
let run_and_compare cs golden m =
  let fuel = (4 * golden.g_steps) + 10_000 in
  match Machine.run ~fuel m Machine.no_hooks with
  | () ->
      Memory.equal_except ~except:Layout.is_flight_addr golden.g_mem m.mem
      && cs.cs_released @ Machine.outputs m = golden.g_outputs
  | exception Machine.Trap _ -> false
  | exception Machine.Fuel_exhausted -> false

type fault_outcome = Recovered | Degraded | Refused

type fault_report = {
  fr_crash_step : int;
  fr_nominal_region : int; (* dynamic index of the nominal recovery point *)
  fr_rung_region : int; (* region recovery actually used; -1 if refused *)
  fr_outcome : fault_outcome;
  fr_injected : string option; (* what the adversary did, if anything bit *)
  fr_detections : string list; (* what the audits saw *)
  fr_state_ok : bool; (* final state matches golden (vacuous for Refused) *)
  fr_sweep_points : int; (* mid-recovery crash sites exercised *)
  fr_sweep_slice_points : int; (* ... of which were slice instructions *)
  fr_sweep_failures : int; (* sweep runs with a wrong final state *)
  fr_flight : string option;
    (* flight-recorder dump (text artifact) when recording was enabled:
       the ring's surviving words after the crash, the recovery-side
       events appended to them, ready for [cwsp_postmortem] *)
}

(* Mid-recovery crash sites: every non-revert step (intent, truncate and
   every recovery-slice instruction), plus an evenly-strided sample of
   the revert writes (they are all the same instruction shape; sweeping
   thousands of them per cell buys nothing). Index k means "power fails
   after plan step k has executed". *)
let sweep_cuts plan ~max_reverts =
  let reverts = ref [] and others = ref [] in
  List.iteri
    (fun i s ->
      match s with
      | S_revert _ -> reverts := i :: !reverts
      | _ -> others := i :: !others)
    plan;
  let reverts = Array.of_list (List.rev !reverts) in
  let n = Array.length reverts in
  let sampled =
    if n <= max_reverts then Array.to_list reverts
    else List.init max_reverts (fun i -> reverts.(i * n / max_reverts))
  in
  List.sort compare (sampled @ !others)

let slice_cut_count plan cuts =
  let arr = Array.of_list plan in
  List.length
    (List.filter (fun k -> match arr.(k) with S_slice _ -> true | _ -> false) cuts)

(** One fault experiment against a crash state. [restart] receives the
    post-second-crash world and must bring recovery to completion the
    way the protocol under test would. Returns (all-runs-consistent,
    sweep stats). When [sweep] is empty only the crash-free recovery
    runs. *)
let execute_recovery cs golden ~back ~plan ~restart ~sweep =
  let once cut =
    let w = world_of cs in
    (match cut with
    | None -> run_plan w plan
    | Some k ->
        List.iteri (fun i s -> if i <= k then exec_step w s) plan;
        (* power failed; volatile state (loaded plan, registers) is gone *)
        restart w);
    run_and_compare cs golden (resume_at cs w ~back)
  in
  let clean_ok = once None in
  let failures =
    List.length (List.filter (fun k -> not (once (Some k))) sweep)
  in
  (clean_ok && failures = 0, failures)

(** Validate one adversarial crash. Runs [compiled] to [crash_at], cuts
    power, injects [fault] into the surviving state (for
    [Recovery_crash] the injection IS a second power failure swept
    across every recovery step), then recovers — hardened (audit +
    degradation ladder + staged idempotent plan) or blind (trust
    everything, legacy ordering) — and compares the final state against
    a failure-free run. The returned report says what the adversary did,
    what the audits detected, and whether the final state is right;
    [Refused] means recovery proved it could not proceed safely and
    stopped without committing any image. *)
let validate_fault ?(window = 16) ?(n_mcs = 2) ?golden ?(flight = false)
    ~hardened ?fault ~seed ~crash_at
    (compiled : Cwsp_compiler.Pipeline.compiled) : (fault_report, string) result
    =
  let flight = flight || flight_env in
  let rng = Cwsp_util.Rng.create seed in
  let golden = match golden with Some g -> g | None -> golden_of compiled in
  let t = create ~window compiled in
  (* The recorder ring is formatted inside the tracked machine's own NVM
     image and fed through [Obs.record] sites; its writes bypass the
     instrumentation hooks (never undo-logged) and nothing in recovery
     reads it, so enabling it cannot change any outcome. Its rng draws
     come from a dedicated stream so the main [rng]'s draw sequence is
     byte-identical with recording on or off. *)
  let frec = if flight then Some (Recorder.format t.machine.mem) else None in
  let with_sink f =
    match frec with
    | Some fr ->
      Obs.with_recorder
        (fun k a b c d ->
          match Recorder.kind_of_code k with
          | Some kind -> Recorder.append fr ~kind a b c d
          | None -> ())
        f
    | None -> f ()
  in
  with_sink @@ fun () ->
  if run_until t crash_at then Error "program halted before the crash point"
  else begin
    let cs = cut_power ~n_mcs rng t in
    (* the ring is ordinary NVM: the in-flight append can tear at the
       crash, leaving a frontier slot that fails its checksum *)
    (match frec with
    | Some fr ->
      let frng = Cwsp_util.Rng.stream (Cwsp_util.Rng.create seed) 0x666c74 in
      if Cwsp_util.Rng.bool frng then (
        match Recorder.frontier_words fr with
        | [] -> ()
        | ws ->
          let a = List.nth ws (Cwsp_util.Rng.int frng (List.length ws)) in
          Memory.mutate cs.cs_mem a (fun v ->
              Fault.tear frng ~value:v ~old:0))
    | None -> ());
    let injected =
      match fault with None -> None | Some cls -> inject rng cls cs
    in
    let nominal_region =
      (List.nth cs.cs_regions cs.cs_nominal).region_index
    in
    let want_sweep = fault = Some Fault.Recovery_crash in
    (* recovery-side recorder: re-attach on the surviving image (cursor
       rebuilt by slot scan), open a new crash epoch, and log what the
       adversary did and what the ladder decides *)
    let rrec = if flight then Recorder.attach cs.cs_mem else None in
    (match rrec with Some r -> Recorder.bump_epoch r | None -> ());
    let rapp kind a b c d =
      match rrec with
      | Some r -> Recorder.append r ~kind a b c d
      | None -> ()
    in
    rapp Recorder.Crash cs.cs_crash_step nominal_region n_mcs 0;
    (match fault with
    | Some cls when injected <> None || cls = Fault.Recovery_crash ->
      rapp Recorder.Inject (fault_code cls) 0 0 0
    | _ -> ());
    let report ~rung_region ~outcome ~detections ~state_ok ~sweep ~plan
        ~failures =
      {
        fr_crash_step = cs.cs_crash_step;
        fr_nominal_region = nominal_region;
        fr_rung_region = rung_region;
        fr_outcome = outcome;
        fr_injected =
          (if want_sweep then Some "power failure during recovery (sweep)"
           else injected);
        fr_detections = detections;
        fr_state_ok = state_ok;
        fr_sweep_points = List.length sweep;
        fr_sweep_slice_points = slice_cut_count plan sweep;
        fr_sweep_failures = failures;
        fr_flight =
          (if flight then Some (Recorder.dump_string cs.cs_mem) else None);
      }
    in
    (* mid-recovery power failures re-attach the ring of the sweep
       world's image and open yet another epoch before replaying *)
    let flight_restart w =
      if flight then
        match Recorder.attach w.w_mem with
        | Some r ->
          Recorder.bump_epoch r;
          Recorder.append r ~kind:Recorder.Restart 0 0 0 0
        | None -> ()
    in
    if not hardened then begin
      (* blind protocol: trust every surviving byte *)
      let plan = blind_plan cs ~logs:cs.cs_logs in
      let sweep =
        if want_sweep then sweep_cuts plan ~max_reverts:8 else []
      in
      let restart w =
        (* a blind restart re-reads whatever logs survived — after the
           premature truncation, usually nothing *)
        flight_restart w;
        run_plan w (blind_plan cs ~logs:w.w_logs)
      in
      let ok, failures =
        execute_recovery cs golden ~back:cs.cs_nominal ~plan ~restart ~sweep
      in
      rapp Recorder.Decision 0 cs.cs_nominal 0 (if ok then 1 else 0);
      rapp Recorder.Resume nominal_region 0 (List.length plan) 0;
      Ok
        (report ~rung_region:nominal_region ~outcome:Recovered ~detections:[]
           ~state_ok:ok ~sweep ~plan ~failures)
    end
    else begin
      (* hardened protocol: audit, degrade, or refuse *)
      let n = List.length cs.cs_regions in
      let rec ladder back detections =
        if back >= n then begin
          rapp Recorder.Decision 2 n (List.length detections + 1) 1;
          Ok
            (report ~rung_region:(-1) ~outcome:Refused
               ~detections:
                 (detections @ [ "no verifiable rollback boundary left" ])
               ~state_ok:true ~sweep:[] ~plan:[] ~failures:0)
        end
        else begin
          let rc = check_rung cs ~back in
          rapp Recorder.Rung back
            (if rc.rc_usable then 1 else 0)
            (if rc.rc_fatal then 1 else 0)
            (List.length rc.rc_skip);
          if rc.rc_fatal then begin
            rapp Recorder.Decision 2 back
              (List.length (detections @ rc.rc_notes))
              1;
            Ok
              (report ~rung_region:(-1) ~outcome:Refused
                 ~detections:(detections @ rc.rc_notes) ~state_ok:true
                 ~sweep:[] ~plan:[] ~failures:0)
          end
          else if not rc.rc_usable then
            ladder (back + 1) (detections @ rc.rc_notes)
          else begin
            let detections = detections @ rc.rc_notes in
            let plan = build_plan cs ~back ~skip:rc.rc_skip in
            let sweep =
              if want_sweep then sweep_cuts plan ~max_reverts:8 else []
            in
            let restart w =
              flight_restart w;
              (* the durable intent record makes the plan idempotent:
                 no intent yet -> recovery never started, run it all;
                 intent + live logs -> reverts are absolute writes,
                 replay them and truncate; intent + empty logs -> all
                 durable work is done, only the volatile slice remains *)
              match w.w_intent with
              | None -> run_plan w plan
              | Some _ ->
                  if Mc_logs.live_entries w.w_logs > 0 then
                    List.iter
                      (fun s ->
                        match s with
                        | S_revert _ | S_truncate -> exec_step w s
                        | _ -> ())
                      plan
            in
            let ok, failures =
              execute_recovery cs golden ~back ~plan ~restart ~sweep
            in
            let rung_region = (List.nth cs.cs_regions back).region_index in
            let outcome =
              if back = cs.cs_nominal then Recovered else Degraded
            in
            rapp Recorder.Decision
              (if outcome = Recovered then 0 else 1)
              back
              (List.length detections)
              (if ok then 1 else 0);
            let count p = List.length (List.filter p plan) in
            rapp Recorder.Resume rung_region
              (count (function S_slice _ -> true | _ -> false))
              (count (function S_revert _ -> true | _ -> false))
              0;
            Ok
              (report ~rung_region ~outcome ~detections ~state_ok:ok ~sweep
                 ~plan ~failures)
          end
        end
      in
      ladder cs.cs_nominal []
    end
  end
