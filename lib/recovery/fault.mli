(** Adversarial fault model for the persistence path: the fault classes
    the injection campaign exercises, plus the deterministic primitives
    (word tearing, bit flips, checksums) shared by the injectors in
    [Harness] and the hardened record format in [Mc_logs]. The adversary
    is single-fault: one class, one injection site per crash. *)

type cls =
  | Torn_persist  (** an 8-byte store reaches NVM only as a byte prefix *)
  | Dropped_tail  (** one MC silently drops the tail of its persist buffer *)
  | Log_corruption  (** undo-log records flipped, truncated, or removed *)
  | Ckpt_bitflip  (** a bit flip in a checkpoint slot the slice will read *)
  | Recovery_crash  (** power fails again at an instruction of recovery *)

(** All classes, in a fixed order (campaign matrix order). *)
val all : cls list

(** Stable CLI/JSON name, e.g. ["torn-persist"]. *)
val name : cls -> string

val of_name : string -> cls option

(** Checksum of a stored word (62-bit avalanche; stands in for the CRC an
    MC keeps beside each slot). *)
val value_sum : int -> int

(** Checksum of a full undo-log record, covering position (region, LSN),
    address, the old value replay writes back, and the checksum of the
    new value. Any single-field change moves the sum. *)
val record_sum : region:int -> lsn:int -> addr:int -> old:int -> new_sum:int -> int

(** Tear a persisting 8-byte store: a (possibly empty) low-order byte
    prefix of [value] reaches NVM, the rest of the word keeps [old];
    the prefix length is picked uniformly among those that observably
    change the word ([value] is returned unchanged if none does). *)
val tear : Cwsp_util.Rng.t -> value:int -> old:int -> int

(** Flip one uniformly chosen bit (of the low 62) of a stored word. *)
val flip_bit : Cwsp_util.Rng.t -> int -> int
