(** Deterministic fault-injection campaign over the adversarial fault
    model ([Fault], [Harness.validate_fault]).

    A campaign is a (workload x fault-class x seed) matrix. Each cell
    gets its own independent RNG stream derived from the master seed and
    the cell's fixed position in the matrix ([Rng.stream]), so results
    are bit-identical no matter how the cells are fanned out — the
    caller can hand [run] a parallel [map] (e.g. [Executor.map_pool])
    without affecting a single outcome.

    The report counts, per fault class: cells where the adversary found
    a target (injected), cells where the hardening audits saw damage or
    refused (detected), and the recovery outcomes — recovered at the
    nominal boundary, degraded to a deeper verified boundary, refused
    (structured [Unrecoverable]: no image committed), and ESCAPED: the
    protocol claimed success but the final NVM/IO state diverged from
    the failure-free run. A hardened campaign must report zero escapes;
    escapes are exactly what the blind (hardening-disabled) protocol is
    expected to produce. *)

module Obs = Cwsp_obs.Obs

type target = {
  t_name : string;
  t_compiled : Cwsp_compiler.Pipeline.compiled;
  t_golden : Harness.golden;
}

let target ~name compiled =
  { t_name = name; t_compiled = compiled; t_golden = Harness.golden_of compiled }

(** One matrix position; [sp_index] is the cell's fixed rank in the
    matrix, from which its RNG stream is derived. *)
type cell_spec = {
  sp_target : target;
  sp_cls : Fault.cls;
  sp_rep : int; (* 0-based repetition index within (workload, class) *)
  sp_index : int;
}

type cell_outcome = Recovered | Degraded | Refused | Escaped | Masked

let outcome_name = function
  | Recovered -> "recovered"
  | Degraded -> "degraded"
  | Refused -> "refused"
  | Escaped -> "ESCAPED"
  | Masked -> "masked"

type cell = {
  c_workload : string;
  c_cls : Fault.cls;
  c_rep : int;
  c_seed : int; (* the derived per-cell seed fed to the harness *)
  c_crash_at : int;
  c_outcome : cell_outcome;
  c_injected : bool;
  c_detected : bool;
  c_detail : string;
  c_sweep_points : int;
  c_sweep_slice_points : int;
  c_sweep_failures : int;
  c_flight : string option; (* flight-recorder dump artifact when enabled *)
}

type class_stats = {
  st_cells : int;
  st_injected : int;
  st_detected : int;
  st_recovered : int;
  st_degraded : int;
  st_refused : int;
  st_escaped : int;
  st_masked : int;
}

type report = {
  r_hardened : bool;
  r_master_seed : int;
  r_window : int;
  r_seeds : int;
  r_workloads : string list;
  r_classes : Fault.cls list;
  r_cells : cell list; (* matrix order, independent of pool width *)
}

let outcome_code = function
  | Recovered -> 0
  | Degraded -> 1
  | Refused -> 2
  | Escaped -> 3
  | Masked -> 4

(* Stamp the campaign's own verdict into the cell's flight dump: reload
   the ring from the artifact, re-attach, append a [Cell] record in a
   fresh epoch and re-dump. The harness never sees this record — it is
   the campaign layer annotating the forensic timeline after the fact. *)
let stamp_cell_event ~sp ~outcome ~detections dump =
  match Cwsp_flight.Recorder.load_dump_string dump with
  | None -> Some dump (* unreadable artifact: ship it untouched *)
  | Some mem -> (
      match Cwsp_flight.Recorder.attach mem with
      | None -> Some dump
      | Some fr ->
          Cwsp_flight.Recorder.bump_epoch fr;
          Cwsp_flight.Recorder.append fr ~kind:Cwsp_flight.Recorder.Cell
            sp.sp_index (outcome_code outcome) detections sp.sp_rep;
          Some (Cwsp_flight.Recorder.dump_string mem))

let run_cell_inner ?(flight = false) ~hardened ~window ~master_seed
    (sp : cell_spec) : cell =
  let rng = Cwsp_util.Rng.stream (Cwsp_util.Rng.create master_seed) sp.sp_index in
  let seed = Cwsp_util.Rng.int rng max_int in
  let g = sp.sp_target.t_golden in
  let crash_at = 1 + Cwsp_util.Rng.int rng (max 1 (g.g_steps - 2)) in
  let base outcome ~injected ~detected ~detail ~sweep ~slice ~fails ~fdump =
    {
      c_workload = sp.sp_target.t_name;
      c_cls = sp.sp_cls;
      c_rep = sp.sp_rep;
      c_seed = seed;
      c_crash_at = crash_at;
      c_outcome = outcome;
      c_injected = injected;
      c_detected = detected;
      c_detail = detail;
      c_sweep_points = sweep;
      c_sweep_slice_points = slice;
      c_sweep_failures = fails;
      c_flight =
        Option.bind fdump (fun d ->
            stamp_cell_event ~sp ~outcome
              ~detections:(if detected then 1 else 0)
              d);
    }
  in
  match
    Harness.validate_fault ~window ~golden:g ~hardened ~flight ~fault:sp.sp_cls
      ~seed ~crash_at sp.sp_target.t_compiled
  with
  | Error e ->
      base Masked ~injected:false ~detected:false ~detail:("harness: " ^ e)
        ~sweep:0 ~slice:0 ~fails:0 ~fdump:None
  | Ok r ->
      let injected = r.fr_injected <> None in
      let detected = r.fr_detections <> [] || r.fr_outcome = Harness.Refused in
      let detail =
        String.concat "; "
          (Option.to_list r.fr_injected
          @ (match r.fr_detections with
            | [] -> []
            | l -> [ String.concat " | " l ]))
      in
      let outcome =
        if not injected then Masked
        else if (not r.fr_state_ok) && r.fr_outcome <> Harness.Refused then
          Escaped
        else
          match r.fr_outcome with
          | Harness.Recovered -> Recovered
          | Harness.Degraded -> Degraded
          | Harness.Refused -> Refused
      in
      base outcome ~injected ~detected ~detail ~sweep:r.fr_sweep_points
        ~slice:r.fr_sweep_slice_points ~fails:r.fr_sweep_failures
        ~fdump:r.fr_flight

(* Tracing wrapper: one span per matrix cell plus a per-(class, outcome)
   counter, e.g. "campaign.torn_write.recovered". Dynamic names are only
   built when instrumentation is on; outcomes themselves are computed by
   [run_cell_inner] either way, so reports are unaffected. *)
let run_cell ?flight ~hardened ~window ~master_seed (sp : cell_spec) : cell =
  if not !Obs.on then run_cell_inner ?flight ~hardened ~window ~master_seed sp
  else begin
    Obs.span_begin ~cat:"campaign"
      ~args:
        [
          ("rep", float_of_int sp.sp_rep);
          ("index", float_of_int sp.sp_index);
        ]
      (Printf.sprintf "cell:%s/%s" sp.sp_target.t_name (Fault.name sp.sp_cls));
    Fun.protect ~finally:Obs.span_end (fun () ->
        let c = run_cell_inner ?flight ~hardened ~window ~master_seed sp in
        Obs.Counter.incr
          (Obs.Counter.make
             (Printf.sprintf "campaign.%s.%s" (Fault.name c.c_cls)
                (String.lowercase_ascii (outcome_name c.c_outcome))));
        c)
  end

(** Run the matrix. [map] fans the cells out (default: sequential); it
    MUST be order-preserving, e.g. [Executor.map_pool]. *)
let run ?(map = Array.map) ?(window = 16) ?(hardened = true)
    ?(master_seed = 2024) ?(flight = false) ~seeds ~classes targets : report =
  let specs =
    List.concat_map
      (fun t ->
        List.concat_map
          (fun cls -> List.init seeds (fun rep -> (t, cls, rep)))
          classes)
      targets
    |> List.mapi (fun i (t, cls, rep) ->
           { sp_target = t; sp_cls = cls; sp_rep = rep; sp_index = i })
    |> Array.of_list
  in
  let cells = map (run_cell ~flight ~hardened ~window ~master_seed) specs in
  {
    r_hardened = hardened;
    r_master_seed = master_seed;
    r_window = window;
    r_seeds = seeds;
    r_workloads = List.map (fun t -> t.t_name) targets;
    r_classes = classes;
    r_cells = Array.to_list cells;
  }

let class_stats report cls =
  List.fold_left
    (fun st c ->
      if c.c_cls <> cls then st
      else
        {
          st_cells = st.st_cells + 1;
          st_injected = (st.st_injected + if c.c_injected then 1 else 0);
          st_detected = (st.st_detected + if c.c_detected then 1 else 0);
          st_recovered =
            (st.st_recovered + if c.c_outcome = Recovered then 1 else 0);
          st_degraded =
            (st.st_degraded + if c.c_outcome = Degraded then 1 else 0);
          st_refused = (st.st_refused + if c.c_outcome = Refused then 1 else 0);
          st_escaped = (st.st_escaped + if c.c_outcome = Escaped then 1 else 0);
          st_masked = (st.st_masked + if c.c_outcome = Masked then 1 else 0);
        })
    {
      st_cells = 0;
      st_injected = 0;
      st_detected = 0;
      st_recovered = 0;
      st_degraded = 0;
      st_refused = 0;
      st_escaped = 0;
      st_masked = 0;
    }
    report.r_cells

let summarize report = List.map (fun c -> (c, class_stats report c)) report.r_classes

let escaped report =
  List.filter (fun c -> c.c_outcome = Escaped) report.r_cells

(* Deterministic per-cell artifact name: derived from the cell's fixed
   matrix coordinates only, so a --jobs 4 run writes byte-identical
   files under byte-identical names as --jobs 1. *)
let flight_file_name c =
  Printf.sprintf "%s-%s-rep%03d.flight" c.c_workload (Fault.name c.c_cls)
    c.c_rep

let save_flights report dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.fold_left
    (fun n c ->
      match c.c_flight with
      | None -> n
      | Some dump ->
          let oc = open_out (Filename.concat dir (flight_file_name c)) in
          output_string oc dump;
          close_out oc;
          n + 1)
    0 report.r_cells

(** Total (mid-recovery crash sites, of which recovery-slice
    instructions) exercised by the sweep cells. *)
let sweep_coverage report =
  List.fold_left
    (fun (p, s) c -> (p + c.c_sweep_points, s + c.c_sweep_slice_points))
    (0, 0) report.r_cells

let render report =
  let b = Buffer.create 1024 in
  Printf.bprintf b "fault campaign: %s, %d workloads x %d classes x %d seeds (window %d, master seed %d)\n"
    (if report.r_hardened then "hardened" else "BLIND (hardening disabled)")
    (List.length report.r_workloads)
    (List.length report.r_classes)
    report.r_seeds report.r_window report.r_master_seed;
  Printf.bprintf b "%-15s %6s %9s %9s %10s %9s %8s %8s %7s\n" "class" "cells"
    "injected" "detected" "recovered" "degraded" "refused" "escaped" "masked";
  List.iter
    (fun (cls, st) ->
      Printf.bprintf b "%-15s %6d %9d %9d %10d %9d %8d %8d %7d\n"
        (Fault.name cls) st.st_cells st.st_injected st.st_detected
        st.st_recovered st.st_degraded st.st_refused st.st_escaped st.st_masked)
    (summarize report);
  let pts, slice_pts = sweep_coverage report in
  Printf.bprintf b
    "crash-during-recovery sweep: %d recovery-step crash sites (%d on slice \
     instructions)\n"
    pts slice_pts;
  (match escaped report with
  | [] -> Buffer.add_string b "escaped faults: none\n"
  | l ->
      Printf.bprintf b "escaped faults: %d\n" (List.length l);
      List.iter
        (fun c ->
          Printf.bprintf b "  ESCAPED %s %s seed=%d crash@%d: %s\n"
            c.c_workload (Fault.name c.c_cls) c.c_seed c.c_crash_at c.c_detail)
        l);
  Buffer.contents b

(* Hand-rolled JSON, matching the repo's other report emitters. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Printf.bprintf b "\\u%04x" (Char.code c)
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json report =
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "{\"hardened\":%b,\"master_seed\":%d,\"window\":%d,\"seeds\":%d,\n"
    report.r_hardened report.r_master_seed report.r_window report.r_seeds;
  Printf.bprintf b "\"workloads\":[%s],\n"
    (String.concat ","
       (List.map (fun w -> "\"" ^ json_escape w ^ "\"") report.r_workloads));
  Printf.bprintf b "\"classes\":{";
  List.iteri
    (fun i (cls, st) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "\n\"%s\":{\"cells\":%d,\"injected\":%d,\"detected\":%d,\
         \"recovered\":%d,\"degraded\":%d,\"refused\":%d,\"escaped\":%d,\
         \"masked\":%d}"
        (Fault.name cls) st.st_cells st.st_injected st.st_detected
        st.st_recovered st.st_degraded st.st_refused st.st_escaped st.st_masked)
    (summarize report);
  Buffer.add_string b "},\n";
  let pts, slice_pts = sweep_coverage report in
  Printf.bprintf b "\"sweep\":{\"points\":%d,\"slice_points\":%d},\n" pts
    slice_pts;
  Printf.bprintf b "\"escaped_total\":%d,\n"
    (List.length (escaped report));
  Printf.bprintf b "\"cells\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "\n{\"workload\":\"%s\",\"class\":\"%s\",\"rep\":%d,\"seed\":%d,\
         \"crash_at\":%d,\"outcome\":\"%s\",\"injected\":%b,\"detected\":%b,\
         \"sweep_points\":%d,\"sweep_failures\":%d,\"detail\":\"%s\"}"
        (json_escape c.c_workload)
        (Fault.name c.c_cls) c.c_rep c.c_seed c.c_crash_at
        (outcome_name c.c_outcome) c.c_injected c.c_detected c.c_sweep_points
        c.c_sweep_failures (json_escape c.c_detail))
    report.r_cells;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b
