(** Adversarial fault model for the persistence path.

    The clean-crash harness assumes fail-stop power loss: every byte that
    reached NVM is intact and every undo-log record is trustworthy. Real
    NVM failure modes are messier — WITCHER-style torn/partial persists,
    dropped persist-buffer tails, bit rot in the log or checkpoint area,
    and power failing again in the middle of recovery itself. This module
    names those fault classes and provides the deterministic primitives
    (word tearing, bit flips, checksums) that the injectors in [Harness]
    and the record format in [Mc_logs] share.

    The adversary is single-fault: one class, one injection site per
    crash. That is the standard model for persistence-path hardening
    (one checksum detects any single corruption of the record it covers;
    colliding double faults are out of scope). *)

type cls =
  | Torn_persist  (** an 8-byte store reaches NVM only as a byte prefix *)
  | Dropped_tail  (** one MC silently drops the tail of its persist buffer *)
  | Log_corruption  (** undo-log records flipped, truncated, or removed *)
  | Ckpt_bitflip  (** a bit flip in a checkpoint slot the slice will read *)
  | Recovery_crash  (** power fails again at an instruction of recovery *)

let all =
  [ Torn_persist; Dropped_tail; Log_corruption; Ckpt_bitflip; Recovery_crash ]

let name = function
  | Torn_persist -> "torn-persist"
  | Dropped_tail -> "dropped-tail"
  | Log_corruption -> "log-corruption"
  | Ckpt_bitflip -> "ckpt-bitflip"
  | Recovery_crash -> "recovery-crash"

let of_name s =
  List.find_opt (fun c -> name c = s) all

(* The checksum core lives in [Cwsp_util.Checksum] so the flight
   recorder (which this library depends on) shares the exact sum the
   undo-log records use. *)
let value_sum = Cwsp_util.Checksum.value_sum
let combine = Cwsp_util.Checksum.combine

(** Checksum of a full undo-log record. Covers every field the replay
    trusts: position (region, per-MC sequence number), address, the OLD
    value replay writes back, and the checksum of the NEW value (used to
    audit that a "persisted" store actually reached NVM). *)
let record_sum ~region ~lsn ~addr ~old ~new_sum =
  List.fold_left combine (combine 0 region) [ lsn; addr; old; new_sum ]

(** Tear a persisting 8-byte store: only a (possibly empty) byte prefix
    of [value] reaches NVM — low-order bytes, little-endian — and the
    rest of the word keeps [old]. Picks uniformly among the prefix
    lengths that actually change the word (when the values differ only
    in the surviving prefix the store is effectively atomic); returns
    [value] unchanged if no tear is observable. *)
let tear rng ~value ~old =
  let at k =
    let mask = (1 lsl (8 * k)) - 1 in
    value land mask lor (old land lnot mask)
  in
  let opts =
    List.filter (fun k -> at k <> value) [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  match opts with
  | [] -> value
  | l -> at (List.nth l (Cwsp_util.Rng.int rng (List.length l)))

(** Flip one uniformly chosen bit of a stored word (62-bit payload, so
    the result stays a valid OCaml int on 64-bit platforms). *)
let flip_bit rng v = v lxor (1 lsl Cwsp_util.Rng.int rng 62)
