(** Hardware undo logging at the memory controllers (Section V-B2).

    Each MC keeps the logs of stores arriving at it in its own local NVM
    space — no centralized logging, no inter-MC communication — managed
    as *append-only, per-region log arrays*:

    - append-only eliminates the Fig. 10(c) overwriting hazard: when two
      speculative regions store to the same address, both (address, old
      value) pairs survive, and reverse-chronological replay restores the
      value the oldest unpersisted region must observe;
    - per-region arrays make deallocation free of search cost: when a
      region turns non-speculative, its Region ID indexes the arrays to
      reclaim (the RBT head's MCBitVec tells which MCs to signal).

    Hardening (adversarial fault model): records are no longer trusted
    blindly. Each record carries a per-(MC, region) log sequence number,
    a checksum over every field replay trusts, and the checksum of the
    NEW value the store wrote (so recovery can audit whether a
    supposedly-persisted store actually reached NVM). Each (MC, region)
    array additionally keeps a durable count header, so a silently
    truncated tail is detectable even though the surviving records all
    verify. [audit_region] checks all three; the recovery harness uses it
    to decide whether a rollback boundary's logs can be trusted.

    The recovery harness drives this module exactly as the paper's
    recovery runtime drives the hardware: log on store arrival,
    deallocate on non-speculative transitions, and on power failure
    revert each MC's logs in reverse chronological region order. *)

type entry = {
  e_lsn : int;  (** append index within this (MC, region) array *)
  mutable e_addr : int;
  mutable e_old : int;
  e_new_sum : int;  (** checksum of the NEW value the store wrote *)
  mutable e_sum : int;  (** record checksum over (region, lsn, addr, old, new_sum) *)
}

let entry_ok ~region e =
  e.e_sum
  = Fault.record_sum ~region ~lsn:e.e_lsn ~addr:e.e_addr ~old:e.e_old
      ~new_sum:e.e_new_sum

type t = {
  n_mcs : int;
  (* per MC: region id -> reversed entry list (newest first) *)
  arrays : (int, entry list) Hashtbl.t array;
  (* per MC: region id -> durable count header (appends so far) *)
  counts : (int, int) Hashtbl.t array;
  mutable logged_entries : int; (* lifetime counter, for stats *)
}

let create ~n_mcs =
  {
    n_mcs;
    arrays = Array.init n_mcs (fun _ -> Hashtbl.create 64);
    counts = Array.init n_mcs (fun _ -> Hashtbl.create 64);
    logged_entries = 0;
  }

let mc_of t addr = (addr lsr 8) mod t.n_mcs

(** A store of region [region] arrived at its MC: undo-log it. [value] is
    the new value being stored; only its checksum is kept. *)
let log t ~region ~addr ~old ~value =
  let mc = mc_of t addr in
  let tbl = t.arrays.(mc) in
  let cur = Option.value ~default:[] (Hashtbl.find_opt tbl region) in
  let lsn = Option.value ~default:0 (Hashtbl.find_opt t.counts.(mc) region) in
  let new_sum = Fault.value_sum value in
  let e =
    {
      e_lsn = lsn;
      e_addr = addr;
      e_old = old;
      e_new_sum = new_sum;
      e_sum = Fault.record_sum ~region ~lsn ~addr ~old ~new_sum;
    }
  in
  Hashtbl.replace tbl region (e :: cur);
  Hashtbl.replace t.counts.(mc) region (lsn + 1);
  t.logged_entries <- t.logged_entries + 1

(** The region became non-speculative: its own logs are no longer needed
    for recovery and every MC reclaims the region's array (and header). *)
let deallocate t ~region =
  Array.iter (fun tbl -> Hashtbl.remove tbl region) t.arrays;
  Array.iter (fun tbl -> Hashtbl.remove tbl region) t.counts

(** Entries of one region across all MCs, newest first (program order is
    preserved per location because a location always maps to one MC). *)
let region_entries t ~region =
  Array.to_list t.arrays
  |> List.concat_map (fun tbl ->
         Option.value ~default:[] (Hashtbl.find_opt tbl region))

(** Drop all logs and headers — recovery's final truncation step. *)
let reset t =
  Array.iter Hashtbl.reset t.arrays;
  Array.iter Hashtbl.reset t.counts

(** Structural copy sharing no mutable state with [t] — recovery
    experiments snapshot the surviving log image at the crash point. *)
let copy t =
  {
    n_mcs = t.n_mcs;
    arrays =
      Array.map
        (fun tbl ->
          let c = Hashtbl.copy tbl in
          Hashtbl.iter (fun r es -> Hashtbl.replace c r (List.map (fun e -> { e with e_lsn = e.e_lsn }) es)) tbl;
          c)
        t.arrays;
    counts = Array.map Hashtbl.copy t.counts;
    logged_entries = t.logged_entries;
  }

(** Power failure: revert every logged region newer than (and NOT
    including) [oldest_unpersisted], processing regions in reverse
    chronological order of Region ID as the paper's recovery runtime
    does, then drop all logs. [apply] receives (addr, old value). *)
let revert_speculative t ~oldest_unpersisted ~apply =
  let regions =
    Array.to_list t.arrays
    |> List.concat_map (fun tbl -> Hashtbl.fold (fun r _ acc -> r :: acc) tbl [])
    |> List.sort_uniq compare |> List.rev
  in
  List.iter
    (fun r ->
      if r > oldest_unpersisted then
        List.iter (fun e -> apply e.e_addr e.e_old) (region_entries t ~region:r))
    regions;
  reset t

(** Revert (reverse chronological region order) exactly the regions for
    which [should_revert] holds, then remove their logs — the multi-core
    variant where each thread contributes its own unpersisted-region set
    (Section VIII). *)
let revert_where t ~should_revert ~apply =
  let regions =
    Array.to_list t.arrays
    |> List.concat_map (fun tbl -> Hashtbl.fold (fun r _ acc -> r :: acc) tbl [])
    |> List.sort_uniq compare |> List.rev
  in
  List.iter
    (fun r ->
      if should_revert r then begin
        List.iter (fun e -> apply e.e_addr e.e_old) (region_entries t ~region:r);
        deallocate t ~region:r
      end)
    regions

(** Live (not yet deallocated) entries — bounded in hardware because each
    region holds only a handful of stores and the number of concurrently
    speculative regions is capped by the RBT size (Section V-B2). *)
let live_entries t =
  Array.fold_left
    (fun acc tbl -> Hashtbl.fold (fun _ es acc -> acc + List.length es) tbl acc)
    0 t.arrays

(** Audit of one region's logs across all MCs. Three independent damage
    signals: [au_structural] — the durable count header disagrees with
    the record count, or the LSN sequence has a gap (records are
    *missing*, so the region's write set is unknowable); [au_bad] —
    records whose checksum fails (present but not trustworthy). A region
    with neither is verified. *)
type audit = { au_structural : string list; au_bad : entry list }

let audit_region t ~region =
  let structural = ref [] and bad = ref [] in
  for mc = 0 to t.n_mcs - 1 do
    let es = Option.value ~default:[] (Hashtbl.find_opt t.arrays.(mc) region) in
    let header = Option.value ~default:0 (Hashtbl.find_opt t.counts.(mc) region) in
    let n = List.length es in
    if n <> header then
      structural :=
        Printf.sprintf "mc%d region %d: count header %d but %d records" mc
          region header n
        :: !structural;
    (* Newest first, so LSNs must read header-1, header-2, ..., 0. A bad
       record's LSN cannot be trusted for gap analysis, so gaps are
       judged on the positions of GOOD records only. *)
    let good = List.filter (entry_ok ~region) es in
    List.iter (fun e -> if not (entry_ok ~region e) then bad := e :: !bad) es;
    let expect = ref (n - 1) in
    List.iter
      (fun e ->
        if List.memq e good then begin
          if e.e_lsn <> !expect then
            structural :=
              Printf.sprintf "mc%d region %d: lsn %d where %d expected" mc
                region e.e_lsn !expect
              :: !structural
        end;
        decr expect)
      es
  done;
  { au_structural = !structural; au_bad = !bad }

(* ------------------------------------------------------------------ *)
(* Fault injectors (adversarial campaign). These model damage to the   *)
(* MC's local NVM log space itself, not to the data it protects.       *)
(* ------------------------------------------------------------------ *)

(** Silently remove the newest [k] records of one (MC, region) array
    WITHOUT updating the durable count header — a truncated persist of
    the log tail. Returns a description, or [None] if no region in
    [regions] has a record. *)
let inject_drop_tail t rng ~regions =
  let candidates =
    List.concat_map
      (fun r ->
        List.filteri (fun mc _ -> Hashtbl.mem t.arrays.(mc) r)
          (List.init t.n_mcs (fun mc -> (mc, r))))
      regions
  in
  match candidates with
  | [] -> None
  | _ ->
      let mc, r = List.nth candidates (Cwsp_util.Rng.int rng (List.length candidates)) in
      let es = Hashtbl.find t.arrays.(mc) r in
      let k = 1 + Cwsp_util.Rng.int rng (List.length es) in
      let rec drop k es = if k = 0 then es else drop (k - 1) (List.tl es) in
      Hashtbl.replace t.arrays.(mc) r (drop k es);
      Some (Printf.sprintf "dropped %d newest log records of mc%d region %d" k mc r)

(** Corrupt one record of one region in [regions]: flip a bit in its
    address, old value, or checksum, or remove it from the middle of the
    list (header intact, LSN gap). Returns a description, or [None] if
    there is nothing to corrupt. *)
let inject_corrupt t rng ~regions =
  let candidates =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun mc ->
            match Hashtbl.find_opt t.arrays.(mc) r with
            | Some (_ :: _) -> Some (mc, r)
            | _ -> None)
          (List.init t.n_mcs (fun mc -> mc)))
      regions
  in
  match candidates with
  | [] -> None
  | _ ->
      let mc, r = List.nth candidates (Cwsp_util.Rng.int rng (List.length candidates)) in
      let es = Hashtbl.find t.arrays.(mc) r in
      let i = Cwsp_util.Rng.int rng (List.length es) in
      let e = List.nth es i in
      (match Cwsp_util.Rng.int rng 4 with
      | 0 ->
          e.e_addr <- Fault.flip_bit rng e.e_addr;
          Some (Printf.sprintf "flipped addr bit of record lsn=%d mc%d region %d" e.e_lsn mc r)
      | 1 ->
          e.e_old <- Fault.flip_bit rng e.e_old;
          Some (Printf.sprintf "flipped old-value bit of record lsn=%d mc%d region %d" e.e_lsn mc r)
      | 2 ->
          e.e_sum <- Fault.flip_bit rng e.e_sum;
          Some (Printf.sprintf "flipped checksum bit of record lsn=%d mc%d region %d" e.e_lsn mc r)
      | _ ->
          Hashtbl.replace t.arrays.(mc) r
            (List.filteri (fun j _ -> j <> i) es);
          Some (Printf.sprintf "removed record lsn=%d from mc%d region %d (header intact)" e.e_lsn mc r))
