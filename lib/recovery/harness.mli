(** Power-failure injection and the cWSP recovery protocol (Section VII)
    — the validation the paper leaves as future work ("No Power Failure
    Recovery Test", Section VIII).

    The harness executes a compiled program while maintaining the state
    the cWSP hardware keeps: per-region undo logs at the MCs
    ([Mc_logs]), the register checkpoints (ordinary stores to the NVM
    checkpoint area made by the instrumented program itself), the
    region-buffered I/O ([Io_buffer]) and the compiler's recovery-slice
    table. At a "power failure" it picks the oldest unpersisted region
    within the RBT window (never at or before a committed sync point),
    reverts speculative NVM updates with the undo logs, un-persists a
    random per-MC FIFO suffix of that region's own stores, evaluates its
    recovery slice into a poisoned register file, and resumes. *)

open Cwsp_interp

type region_record
type tracked

(** Start tracking a fresh execution of [compiled]. [window] is the RBT
    size: the maximum number of concurrently unpersisted regions. *)
val create : ?window:int -> Cwsp_compiler.Pipeline.compiled -> tracked

(** Track a machine that is itself resuming after a recovery: crashes
    before its first boundary roll back to the resume point, enabling
    crash-during-recovery validation. *)
val create_resumed :
  ?window:int -> Cwsp_compiler.Pipeline.compiled -> Machine.t -> tracked

(** The tracked machine's instrumentation hooks. *)
val hooks : tracked -> Machine.hooks

(** Run for at most [steps] more instructions; [true] if the program
    halted first. *)
val run_until : tracked -> int -> bool

type crash_report = {
  crash_step : int;
  recovery_region : int; (** dynamic index of the oldest unpersisted region *)
  reverted_regions : int;
  reexecuted_instructions : int;
  restored_registers : int;
  released_outputs : int list;
    (** device I/O already released at the crash, oldest first *)
}

(** Cut power now; build the surviving NVM state and run the recovery
    protocol. Returns a machine resumed at the recovery point. [rng]
    drives which regions/stores count as persisted. *)
val crash_and_recover :
  ?n_mcs:int -> Cwsp_util.Rng.t -> tracked -> Machine.t * crash_report

(** Full experiment: run [compiled] to completion twice — once
    undisturbed, once with a power failure after [crash_at] instructions
    — and require a bit-exact final NVM state plus an exactly-once
    device-output stream. *)
val validate :
  ?window:int ->
  ?n_mcs:int ->
  seed:int ->
  crash_at:int ->
  Cwsp_compiler.Pipeline.compiled ->
  (crash_report, string) result

(** Multi-failure variant: [crash_points] are instruction-count deltas
    between consecutive failures (a failure may interrupt the previous
    recovery's re-execution). Returns the number of failures injected. *)
val validate_chain :
  ?window:int ->
  ?n_mcs:int ->
  seed:int ->
  crash_points:int list ->
  Cwsp_compiler.Pipeline.compiled ->
  (int, string) result

(** Explicit-persistency crash experiment, the dynamic ground truth for
    the [Persist_check] static tier: run an [Explicit]-mode binary to
    [crash_at] instructions, cut power — losing the caches, the
    flushed-but-unfenced set and any uncommitted atomic, and reverting
    the open region's checkpoint-area stores — then blindly resume at
    the newest boundary via its recovery slice and require a bit-exact
    final NVM state plus an exactly-once device-output stream.
    Deterministic (no RNG): the adversary always takes everything a
    fence had not sealed, so a dropped or misplaced flush/fence escapes
    at some crash point reproducibly.

    [flight:true] formats a flight-recorder ring inside the durable
    image, records each boundary commit (with the flushed-but-unfenced
    set as telemetry) and the crash/resume decision, and hands the dump
    artifact to [on_flight]. Recording never changes the verdict: the
    ring region is excluded from the golden comparison and nothing
    reads it. *)
val validate_explicit :
  ?flight:bool ->
  ?on_flight:(string -> unit) ->
  crash_at:int ->
  Cwsp_compiler.Pipeline.compiled ->
  (crash_report, string) result

(** {2 Adversarial fault model}

    Crashes where the persistence path itself is faulty ([Fault]): the
    hardened protocol audits the undo logs (checksums, LSNs, durable
    count headers) and the checkpoint area before committing to a
    rollback boundary, walks a degradation ladder to deeper boundaries
    whose logs verify, and refuses outright — never committing a wrong
    final NVM image — when none is left. *)

(** A failure-free reference run: final NVM image, device outputs and
    step count. Compute once per workload and share across cells. *)
type golden = { g_mem : Memory.t; g_outputs : int list; g_steps : int }

val golden_of : Cwsp_compiler.Pipeline.compiled -> golden

type fault_outcome =
  | Recovered  (** recovered at the nominal boundary *)
  | Degraded  (** recovered at a deeper boundary whose logs verify *)
  | Refused  (** structured refusal: no trustworthy boundary remained *)

type fault_report = {
  fr_crash_step : int;
  fr_nominal_region : int;
      (** dynamic index of the nominal (fault-free) recovery point *)
  fr_rung_region : int;  (** region recovery actually used; -1 if refused *)
  fr_outcome : fault_outcome;
  fr_injected : string option;
      (** what the adversary did; [None] if the fault found no target *)
  fr_detections : string list;  (** what the hardening audits saw *)
  fr_state_ok : bool;
      (** final NVM + exactly-once I/O match the failure-free run
          (vacuously true for [Refused]: no image was committed) *)
  fr_sweep_points : int;  (** mid-recovery crash sites exercised *)
  fr_sweep_slice_points : int;
      (** ... of which were recovery-slice instructions (the acceptance
          sweep covers every slice index) *)
  fr_sweep_failures : int;  (** sweep runs ending in a wrong final state *)
  fr_flight : string option;
      (** flight-recorder dump (the [Cwsp_flight.Recorder] text
          artifact) when recording was enabled: pre-crash boundary and
          telemetry records in epoch 0, the crash/injection/ladder
          events in epoch 1 — ready for [cwsp_postmortem] *)
}

(** Validate one adversarial crash: run to [crash_at], cut power, inject
    [fault] into the surviving durable state ([Fault.Recovery_crash] is
    realized as a second power failure swept across every instruction of
    the staged recovery plan), recover — hardened, or blind when
    [hardened:false] (trust every byte, legacy ordering; the negative
    corpus) — and compare the final state against a failure-free run.

    [flight:true] additionally formats a flight-recorder ring inside
    the tracked machine's NVM: boundary commits and persist telemetry
    are recorded as the program runs (epoch 0); the crash re-attaches
    the surviving ring and a new epoch records the injection, every
    ladder-rung audit, the decision and the resume point; mid-recovery
    sweep crashes open further epochs. The crash can tear the in-flight
    append (dedicated rng stream — the main [seed]-driven draw sequence
    is unchanged), the ring region is excluded from golden comparisons,
    and nothing in recovery reads it, so outcomes are identical with
    recording on or off; [fr_flight] carries the dump artifact. The
    [CWSP_FLIGHT=1] environment forces recording on process-wide (here
    and in [validate_explicit]) — CI uses it to pin recorder-on runs to
    the recorder-off goldens and perf baselines. *)
val validate_fault :
  ?window:int ->
  ?n_mcs:int ->
  ?golden:golden ->
  ?flight:bool ->
  hardened:bool ->
  ?fault:Fault.cls ->
  seed:int ->
  crash_at:int ->
  Cwsp_compiler.Pipeline.compiled ->
  (fault_report, string) result
