(** Hardware undo logging at the memory controllers (Section V-B2):
    append-only, per-region log arrays kept in each MC's local NVM.
    Append-only eliminates the Fig. 10(c) overwriting hazard; per-region
    arrays make deallocation a Region-ID-indexed reclaim with no search
    cost.

    Hardened against the adversarial fault model: each record carries a
    per-(MC, region) log sequence number, a checksum over every field
    replay trusts, and the checksum of the NEW value the store wrote;
    each (MC, region) array keeps a durable count header so silent tail
    truncation is detectable. *)

type entry = {
  e_lsn : int;  (** append index within this (MC, region) array *)
  mutable e_addr : int;
  mutable e_old : int;
  e_new_sum : int;  (** [Fault.value_sum] of the NEW value the store wrote *)
  mutable e_sum : int;  (** [Fault.record_sum] over (region, lsn, addr, old, new_sum) *)
}

(** Does the record's checksum match its fields? *)
val entry_ok : region:int -> entry -> bool

type t

val create : n_mcs:int -> t

(** The MC an address belongs to (256-byte channel interleave). *)
val mc_of : t -> int -> int

(** A store of [region] arrived at its MC: undo-log the old value.
    [value] is the new value being stored (only its checksum is kept). *)
val log : t -> region:int -> addr:int -> old:int -> value:int -> unit

(** The region became non-speculative: every MC reclaims its array. *)
val deallocate : t -> region:int -> unit

(** Entries of one region across all MCs, newest first per MC (program
    order per location is preserved — a location maps to one MC). *)
val region_entries : t -> region:int -> entry list

(** Drop all logs and count headers — recovery's final truncation step. *)
val reset : t -> unit

(** Structural copy sharing no mutable state with [t] — used to snapshot
    the surviving log image at a crash point. *)
val copy : t -> t

(** Power failure: revert every logged region strictly newer than
    [oldest_unpersisted], in reverse chronological Region-ID order, then
    drop all logs. [apply] receives (address, old value). *)
val revert_speculative :
  t -> oldest_unpersisted:int -> apply:(int -> int -> unit) -> unit

(** Revert exactly the regions for which [should_revert] holds, in
    reverse chronological Region-ID order, removing their logs — the
    multi-core variant where each thread contributes its own
    unpersisted-region set (Section VIII). *)
val revert_where :
  t -> should_revert:(int -> bool) -> apply:(int -> int -> unit) -> unit

(** Live (not yet deallocated) entries — bounded in hardware by the RBT
    size times the handful of stores per region. *)
val live_entries : t -> int

(** Audit of one region's logs across all MCs: [au_structural] lists
    count-header mismatches and LSN gaps (records are missing, so the
    region's write set is unknowable); [au_bad] lists records whose
    checksum fails (present but untrustworthy). Both empty = verified. *)
type audit = { au_structural : string list; au_bad : entry list }

val audit_region : t -> region:int -> audit

(** Fault injector: silently remove the newest records of one (MC,
    region) array in [regions] without updating the durable count header.
    Returns a description, or [None] if there was nothing to drop. *)
val inject_drop_tail :
  t -> Cwsp_util.Rng.t -> regions:int list -> string option

(** Fault injector: corrupt one record of one region in [regions] — flip
    a bit in its address, old value, or checksum, or remove it from the
    middle of the list (header intact, LSN gap). Returns a description,
    or [None] if there was nothing to corrupt. *)
val inject_corrupt :
  t -> Cwsp_util.Rng.t -> regions:int list -> string option
