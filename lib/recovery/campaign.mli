(** Deterministic fault-injection campaign: a (workload x fault-class x
    seed) matrix over [Harness.validate_fault]. Each cell's RNG stream
    is derived from the master seed and the cell's fixed matrix position
    ([Rng.stream]), so results are bit-identical regardless of how the
    cells are fanned out over a pool. A hardened campaign must report
    zero ESCAPED faults (the protocol claimed success but the final
    state diverged); the blind variant exists to prove the oracle sees
    what the checksums catch. *)

type target = {
  t_name : string;
  t_compiled : Cwsp_compiler.Pipeline.compiled;
  t_golden : Harness.golden;
}

(** Build a campaign target (runs the failure-free golden execution). *)
val target : name:string -> Cwsp_compiler.Pipeline.compiled -> target

type cell_spec = {
  sp_target : target;
  sp_cls : Fault.cls;
  sp_rep : int;  (** 0-based repetition index within (workload, class) *)
  sp_index : int;  (** fixed rank in the matrix; seeds the cell's RNG *)
}

type cell_outcome =
  | Recovered
  | Degraded
  | Refused
  | Escaped  (** claimed success, diverged final state — must never happen hardened *)
  | Masked  (** the fault found no target (or the harness skipped the cell) *)

val outcome_name : cell_outcome -> string

type cell = {
  c_workload : string;
  c_cls : Fault.cls;
  c_rep : int;
  c_seed : int;
  c_crash_at : int;
  c_outcome : cell_outcome;
  c_injected : bool;
  c_detected : bool;
  c_detail : string;
  c_sweep_points : int;
  c_sweep_slice_points : int;
  c_sweep_failures : int;
  c_flight : string option;
      (** flight-recorder dump ([Cwsp_flight.Recorder] text artifact)
          when the campaign ran with [flight:true]: the harness's
          cross-crash event ring plus a final campaign [Cell] record
          (index, outcome, detected, rep) stamped in its own epoch *)
}

type class_stats = {
  st_cells : int;
  st_injected : int;
  st_detected : int;
  st_recovered : int;
  st_degraded : int;
  st_refused : int;
  st_escaped : int;
  st_masked : int;
}

type report = {
  r_hardened : bool;
  r_master_seed : int;
  r_window : int;
  r_seeds : int;
  r_workloads : string list;
  r_classes : Fault.cls list;
  r_cells : cell list;  (** matrix order, independent of pool width *)
}

(** Run one cell (exposed for tests). *)
val run_cell :
  ?flight:bool ->
  hardened:bool ->
  window:int ->
  master_seed:int ->
  cell_spec ->
  cell

(** Run the matrix. [map] fans the cells out (default sequential); it
    must be order-preserving, e.g. [Executor.map_pool ~jobs].
    [flight:true] runs every cell with the in-NVM flight recorder on and
    carries each cell's dump in [c_flight]; recording never changes an
    outcome (the harness excludes the ring from its golden compare). *)
val run :
  ?map:((cell_spec -> cell) -> cell_spec array -> cell array) ->
  ?window:int ->
  ?hardened:bool ->
  ?master_seed:int ->
  ?flight:bool ->
  seeds:int ->
  classes:Fault.cls list ->
  target list ->
  report

val class_stats : report -> Fault.cls -> class_stats
val summarize : report -> (Fault.cls * class_stats) list

(** Cells whose corruption escaped undetected to a divergent final state. *)
val escaped : report -> cell list

(** Total (mid-recovery crash sites, of which on recovery-slice
    instructions) exercised by the crash-during-recovery sweeps. *)
val sweep_coverage : report -> int * int

(** Deterministic per-cell flight-dump file name (matrix coordinates
    only — identical at any pool width). *)
val flight_file_name : cell -> string

(** Write every cell's flight dump under [dir] (created if missing)
    using [flight_file_name]; returns the number written. *)
val save_flights : report -> string -> int

(** Human-readable summary table. *)
val render : report -> string

(** JSON fault-coverage report (the CI artifact). *)
val to_json : report -> string
