(** Multi-core power-failure injection and recovery (Section VIII,
    "Recovery for Multi-Cores").

    The paper's claim for data-race-free programs: stores before a
    synchronization primitive persist before the primitive commits, so at
    most one thread can be inside a critical section when power fails,
    and each thread resumes {e independently} from the end of its own
    latest persisted region — no happens-before tracking is needed at
    recovery time.

    This harness drives an SPMD execution ([Cwsp_interp.Multi]) with a
    global region-id counter (the hardware-managed counter of Fig. 9),
    global per-MC undo-log arrays, and per-thread region snapshots. At a
    power failure, every thread picks its own oldest unpersisted region
    (never at or before its last committed sync point — the drain
    guarantees those persisted), all chosen threads' speculative stores
    are reverted in reverse global region order, per-thread recovery
    slices restore live-ins, and all threads resume.

    The soundness of independent per-thread recovery rests on DRF + the
    sync drain: data written by a thread's unpersisted regions postdates
    its last sync, so no other thread can have (race-freely) read it. *)

open Cwsp_interp

type region_record = {
  region_index : int; (* global id *)
  static_id : int;    (* -1 = worker start; -3 = post-sync resume point *)
  frames : Machine.frame list;
  depth : int;
}

type thread_state = {
  tid : int;
  mutable regions : region_record list; (* newest first *)
  mutable sync_floor : int;
}

type tracked = {
  multi : Multi.t;
  compiled : Cwsp_compiler.Pipeline.compiled;
  window : int;
  logs : Mc_logs.t;
  threads : thread_state array;
  mutable next_region : int; (* global atomically-increasing counter *)
}

let copy_frame (fr : Machine.frame) = { fr with regs = Array.copy fr.regs }

let worker_start_record tid (m : Machine.t) =
  {
    region_index = -1 - tid; (* distinct negative ids per thread *)
    static_id = -1;
    frames = List.map copy_frame m.frames;
    depth = m.depth;
  }

let create ?(window = 16) (compiled : Cwsp_compiler.Pipeline.compiled) ~threads
    ~worker =
  let linked = Machine.link compiled.prog in
  let multi = Multi.create linked ~threads ~worker in
  {
    multi;
    compiled;
    window;
    logs = Mc_logs.create ~n_mcs:2;
    threads =
      Array.mapi
        (fun tid m ->
          { tid; regions = [ worker_start_record tid m ]; sync_floor = min_int })
        multi.machines;
    next_region = 0;
  }

let current_region ts = List.hd ts.regions

let hooks (t : tracked) tid : Machine.hooks =
  let ts = t.threads.(tid) in
  let m = t.multi.machines.(tid) in
  let push_record ~static_id =
    let gid = t.next_region in
    t.next_region <- gid + 1;
    let rec trim n = function
      | [] -> []
      | x :: rest ->
        if n = 0 then begin
          List.iter
            (fun r -> Mc_logs.deallocate t.logs ~region:r.region_index)
            (x :: rest);
          []
        end
        else x :: trim (n - 1) rest
    in
    ts.regions <-
      {
        region_index = gid;
        static_id;
        frames = List.map copy_frame m.Machine.frames;
        depth = m.Machine.depth;
      }
      :: trim t.window ts.regions
  in
  {
    on_event =
      (fun ev ->
        let tag = Event.tag ev in
        if tag = Event.tag_boundary then push_record ~static_id:(Event.payload ev)
        else if tag = Event.tag_atomic then begin
          (* The primitive's effect, its drain and its live state persist
             synchronously with its commit: once another thread can
             observe the atomic, this thread can never roll back past it.
             Model: seal everything up to here and snapshot a post-sync
             resume point (full register image, no slice). *)
          ts.sync_floor <- (current_region ts).region_index;
          push_record ~static_id:(-3)
        end);
    on_store =
      (fun ~addr ~old ~value ->
        Mc_logs.log t.logs ~region:(current_region ts).region_index ~addr ~old
          ~value);
  }

(** Run all threads round-robin for roughly [steps] more instructions in
    total (or to completion); [true] when every thread halted. *)
let run_until (t : tracked) steps =
  let consumed = ref 0 in
  let hs = Array.init (Array.length t.multi.machines) (hooks t) in
  let live () =
    Array.exists (fun m -> m.Machine.status = Machine.Running) t.multi.machines
  in
  while live () && !consumed < steps do
    Array.iteri
      (fun i m ->
        for _ = 1 to t.multi.quantum do
          if m.Machine.status = Machine.Running && !consumed < steps then begin
            incr consumed;
            Machine.step m hs.(i)
          end
        done)
      t.multi.machines
  done;
  not (live ())

(* per-MC FIFO-suffix un-persistence of one region's data stores *)
let revert_partial rng mem (entries : Mc_logs.entry list) ~n_mcs =
  let mc_of addr = (addr lsr 8) mod n_mcs in
  let per_mc_total = Array.make n_mcs 0 in
  List.iter
    (fun (e : Mc_logs.entry) ->
      if not (Layout.is_ckpt_addr e.e_addr) then
        per_mc_total.(mc_of e.e_addr) <- per_mc_total.(mc_of e.e_addr) + 1)
    entries;
  let persisted_prefix =
    Array.map (fun n -> if n = 0 then 0 else Cwsp_util.Rng.int rng (n + 1)) per_mc_total
  in
  let seen_from_end = Array.make n_mcs 0 in
  List.iter
    (fun (e : Mc_logs.entry) ->
      if not (Layout.is_ckpt_addr e.e_addr) then begin
        let mc = mc_of e.e_addr in
        let pos_from_start = per_mc_total.(mc) - seen_from_end.(mc) in
        seen_from_end.(mc) <- seen_from_end.(mc) + 1;
        if pos_from_start > persisted_prefix.(mc) then
          Memory.write mem e.e_addr e.e_old
      end)
    entries

(** Cut power on the whole machine and recover every thread. Returns the
    resumed [Multi.t]. *)
let crash_and_recover ?(n_mcs = 2) rng (t : tracked) : Multi.t =
  let mem = Memory.snapshot t.multi.mem in
  let linked = t.multi.linked in
  (* each thread picks its own oldest unpersisted region *)
  let chosen =
    Array.map
      (fun ts ->
        let eligible =
          List.filter (fun r -> r.region_index > ts.sync_floor) ts.regions
        in
        let avail = max 1 (List.length eligible) in
        let back = Cwsp_util.Rng.int rng (min avail t.window) in
        List.nth ts.regions back)
      t.threads
  in
  (* revert all speculative stores: any region strictly newer than its
     thread's recovery point (global reverse chronological order) *)
  let floor_of_thread = Array.map (fun r -> r.region_index) chosen in
  let owner_floor region =
    (* a region belongs to the thread whose records contain it; negative
       ids are worker starts *)
    let rec find i =
      if i >= Array.length t.threads then min_int
      else if
        List.exists
          (fun r -> r.region_index = region)
          t.threads.(i).regions
        || floor_of_thread.(i) = region
      then floor_of_thread.(i)
      else find (i + 1)
    in
    find 0
  in
  Mc_logs.revert_where t.logs
    ~should_revert:(fun region -> region > owner_floor region)
    ~apply:(fun addr old -> Memory.write mem addr old);
  (* per-thread: partially un-persist the recovery region's own stores,
     revert its checkpoint-area stores, restore live-ins, resume *)
  let machines =
    Array.mapi
      (fun tid r_o ->
        let entries = Mc_logs.region_entries t.logs ~region:r_o.region_index in
        revert_partial rng mem entries ~n_mcs;
        List.iter
          (fun (e : Mc_logs.entry) ->
            if Layout.is_ckpt_addr e.e_addr then Memory.write mem e.e_addr e.e_old)
          entries;
        let frames = List.map copy_frame r_o.frames in
        if r_o.static_id >= 0 then begin
          let fr = List.hd frames in
          Array.fill fr.regs 0 (Array.length fr.regs) 0x5F5F5F5F;
          let slot r2 =
            Memory.read mem (Layout.ckpt_slot ~tid ~depth:r_o.depth r2)
          in
          let addr_of g = Hashtbl.find linked.Machine.global_addr g in
          List.iter
            (fun (r, expr) -> fr.regs.(r) <- Cwsp_ckpt.Slice.eval ~slot ~addr_of expr)
            t.compiled.slices.(r_o.static_id)
        end;
        Machine.resume ~tid linked ~mem ~frames:(`Frames frames) ~depth:r_o.depth)
      chosen
  in
  { t.multi with mem; machines }

(** Full experiment for schedule-deterministic DRF workloads: run the
    SPMD program to completion twice — once undisturbed, once with a
    power failure after ~[crash_at] instructions — and compare the final
    program-visible NVM state (the checkpoint area is excluded: recovery
    legitimately rewinds some per-thread slots, and re-execution under a
    different interleaving is entitled to a different checkpoint
    history). *)
let validate ?(window = 16) ?(n_mcs = 2) ~seed ~crash_at
    (compiled : Cwsp_compiler.Pipeline.compiled) ~threads ~worker :
    (unit, string) result =
  let rng = Cwsp_util.Rng.create seed in
  let golden, _ = Multi.traces_of_program compiled.prog ~threads ~worker in
  let t = create ~window compiled ~threads ~worker in
  let halted = run_until t crash_at in
  if halted then Error "program halted before the crash point"
  else begin
    let resumed = crash_and_recover ~n_mcs rng t in
    Multi.run resumed (fun _ -> Machine.no_hooks);
    let data mem =
      let out = ref [] in
      Memory.iter
        (fun a v -> if not (Layout.is_ckpt_addr a) then out := (a, v) :: !out)
        mem;
      List.sort compare !out
    in
    if data golden.Multi.mem = data resumed.Multi.mem then Ok ()
    else
      let g = data golden.Multi.mem and r = data resumed.Multi.mem in
      let diff =
        List.find_opt (fun (a, v) -> List.assoc_opt a r <> Some v) g
      in
      Error
        (match diff with
        | Some (a, v) ->
          Printf.sprintf "multi-core NVM mismatch at 0x%x: golden=%d got=%s" a v
            (match List.assoc_opt a r with Some x -> string_of_int x | None -> "absent")
        | None -> "multi-core NVM mismatch")
  end
