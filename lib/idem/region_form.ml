(** Idempotent region formation (De Kruijf-style, Section IV-A).

    Phase 1 places the initial boundaries: at function entry, at every loop
    header (one region per iteration), and around every call site and
    synchronization point (atomics, fences). Phase 2 iteratively cuts any
    remaining memory antidependence: in-block pairs are cut with the
    optimal interval hitting set, cross-block pairs by a boundary directly
    before the offending store. The result is verified with the
    independent checker [Antidep.violations]. *)

open Cwsp_ir
open Cwsp_analysis
module Obs = Cwsp_obs.Obs

(* Synchronization points are isolated into their own single-instruction
   region (boundaries on both sides); call sites only need a boundary
   *after* the call — the callee's entry boundary already separates the
   pre-call code, while a boundary after the call cuts any antidependence
   between the callee's tail and the caller's continuation, which the
   per-function checker cannot see. *)
let boundary_before (ins : Types.instr) =
  match ins with
  | Atomic_rmw _ | Cas _ | Fence -> true
  | Call _ | Bin _ | Cmp _ | Mov _ | La _ | Load _ | Store _ | Flush _
  | Pfence | Ckpt _ | Boundary _ -> false

let boundary_after (ins : Types.instr) =
  match ins with
  | Call _ | Atomic_rmw _ | Cas _ | Fence -> true
  | Bin _ | Cmp _ | Mov _ | La _ | Load _ | Store _ | Flush _ | Pfence
  | Ckpt _ | Boundary _ -> false

(** Insert fresh boundaries before the given (block, index) positions.
    Indices refer to the function *before* insertion. Boundaries directly
    adjacent to an existing or just-inserted boundary are skipped — two
    back-to-back boundaries delimit an empty region and serve no purpose. *)
let insert_boundaries ~next_id (fn : Prog.func) (positions : (int * int) list) :
    Prog.func =
  let by_block = Hashtbl.create 8 in
  List.iter
    (fun (bi, ii) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_block bi) in
      if not (List.mem ii cur) then Hashtbl.replace by_block bi (ii :: cur))
    positions;
  let blocks =
    Array.mapi
      (fun bi (blk : Prog.block) ->
        match Hashtbl.find_opt by_block bi with
        | None -> blk
        | Some iis ->
          let iis = List.sort compare iis in
          let rec rebuild idx instrs pending acc =
            let insert_here =
              match pending with p :: _ when p = idx -> true | _ -> false
            in
            if insert_here then begin
              let pending = List.tl pending in
              (* skip if adjacent to a boundary on either side *)
              let prev_is_boundary =
                match acc with Types.Boundary _ :: _ -> true | _ -> false
              in
              let next_is_boundary =
                match instrs with Types.Boundary _ :: _ -> true | _ -> false
              in
              if prev_is_boundary || next_is_boundary then
                rebuild idx instrs pending acc
              else begin
                let id = !next_id in
                incr next_id;
                rebuild idx instrs pending (Types.Boundary id :: acc)
              end
            end
            else
              match instrs with
              | [] -> List.rev acc
              | ins :: rest -> rebuild (idx + 1) rest pending (ins :: acc)
          in
          { blk with instrs = rebuild 0 blk.instrs iis [] })
      fn.blocks
  in
  { fn with blocks }

(* Phase 1: entry, loop headers, around calls and sync points. *)
let initial_boundaries ~next_id (fn : Prog.func) : Prog.func =
  let headers = Loops.headers fn in
  let positions = ref [ (0, 0) ] in
  Array.iteri
    (fun bi _ -> if headers.(bi) then positions := (bi, 0) :: !positions)
    fn.blocks;
  Array.iteri
    (fun bi (blk : Prog.block) ->
      List.iteri
        (fun ii ins ->
          if boundary_before ins then positions := (bi, ii) :: !positions;
          if boundary_after ins then positions := (bi, ii + 1) :: !positions)
        blk.instrs)
    fn.blocks;
  insert_boundaries ~next_id fn !positions

(* Phase 2: iterative antidependence cutting. *)
let rec cut_antideps ~next_id ~iter (fn : Prog.func) : Prog.func =
  match Antidep.violations fn with
  | [] -> fn
  | pairs ->
    if iter > 50 then
      failwith
        (Printf.sprintf
           "Region_form: %s did not converge; %d pairs remain, e.g. %s"
           fn.name (List.length pairs)
           (Antidep.pair_to_string (List.hd pairs)));
    let in_block, cross_block =
      List.partition
        (fun (p : Antidep.pair) -> p.load.p_bi = p.store.p_bi)
        pairs
    in
    let positions = ref [] in
    (* optimal stabbing per block for in-block pairs *)
    let by_block = Hashtbl.create 8 in
    List.iter
      (fun (p : Antidep.pair) ->
        let cur =
          Option.value ~default:[] (Hashtbl.find_opt by_block p.load.p_bi)
        in
        Hashtbl.replace by_block p.load.p_bi
          ({ Hitting.lo = p.load.p_ii; hi = p.store.p_ii } :: cur))
      in_block;
    Hashtbl.iter
      (fun bi intervals ->
        List.iter (fun c -> positions := (bi, c) :: !positions) (Hitting.stab intervals))
      by_block;
    (* cut directly before the store for cross-block pairs *)
    List.iter
      (fun (p : Antidep.pair) ->
        positions := (p.store.p_bi, p.store.p_ii) :: !positions)
      cross_block;
    let fn' = insert_boundaries ~next_id fn !positions in
    cut_antideps ~next_id ~iter:(iter + 1) fn'

(** Partition one function into idempotent regions. *)
let run_func (fn : Prog.func) : Prog.func =
  let next_id = ref (Prog.max_boundary_id fn + 1) in
  Obs.span_begin ~cat:"compiler" "region-init";
  let fn = initial_boundaries ~next_id fn in
  Obs.span_end ();
  Obs.span_begin ~cat:"compiler" "antidep-cut";
  let fn = cut_antideps ~next_id ~iter:0 fn in
  Obs.span_end ();
  fn

(** Partition every function of the program — user code, runtime library
    and kernel-entry path alike: this is what makes the scheme
    whole-system (Section IV-D). *)
let run (p : Prog.t) : Prog.t = Prog.map_funcs run_func p

(** Static region count of a function (= number of boundaries). *)
let boundary_count (fn : Prog.func) =
  Prog.fold_instrs
    (fun n _ _ ins -> match ins with Types.Boundary _ -> n + 1 | _ -> n)
    0 fn
