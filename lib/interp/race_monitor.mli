(** Dynamic data-race monitor: vector-clock (FastTrack-style)
    happens-before checking over one concrete [Multi.run] interleaving.

    The executable counterpart of the static race tier
    ([Cwsp_verify.Race_check]): a static race-freedom certificate is
    corroborated when monitored runs stay race-free across scheduling
    quanta, and a mutant that trips the static tier must also race (or
    hang) here. Atomics form release/acquire chains per word; a plain
    store of 0 to a word some atomic targeted is treated as the TSO
    release idiom; the per-thread checkpoint area is exempt. *)

open Cwsp_ir

type race = {
  r_addr : int;  (** shared word both threads touched *)
  r_tid : int;  (** thread whose access was flagged *)
  r_prev : int;  (** thread that made the unordered earlier access *)
}

type outcome = {
  races : race list;  (** deduplicated by address, sorted *)
  hung : bool;  (** fuel ran out or the threads deadlocked *)
  quantum : int;
}

(** Monitor one full run of [worker] across [threads] threads under the
    given round-robin [quantum] (default 32). [Fuel_exhausted] and
    [Deadlock] are reported as [hung], not raised: a mutant that drops
    an unlock leaves its siblings spinning forever, and that is a
    verdict, not an error. *)
val observe :
  ?fuel:int ->
  ?quantum:int ->
  Prog.t ->
  threads:int ->
  worker:string ->
  outcome

(** [observe] under several quanta (default [[32; 7; 13]]): distinct
    quanta give distinct deterministic interleavings, probing more of
    the schedule space than one run. *)
val sweep :
  ?fuel:int ->
  ?quanta:int list ->
  Prog.t ->
  threads:int ->
  worker:string ->
  outcome list

(** No run in the sweep raced or hung. *)
val all_clean : outcome list -> bool
