(** Deterministic SPMD multi-threaded execution.

    [threads] machines share one NVM memory image; thread [t] starts in
    [worker](t). Scheduling is round-robin with a fixed instruction
    quantum, so multi-threaded runs are bit-reproducible — the property
    every test in this repository leans on. There is no cache-coherence
    modeling at this (functional) level: memory is sequentially
    consistent under the interleaving, which is the contract the paper
    assumes for data-race-free programs (Section VIII).

    Checkpoint slots are per-thread ([Layout.ckpt_slot ~tid]), matching
    the paper's per-core checkpoint storage. *)

open Cwsp_ir

type t = {
  linked : Machine.linked;
  mem : Memory.t;
  machines : Machine.t array;
  quantum : int;
}

(** [create linked ~threads ~worker] initializes globals once and spawns
    [threads] machines, each entering [worker](tid). [quantum] is the
    round-robin instruction quantum (default 32); different quanta give
    different — but each individually reproducible — interleavings. *)
let create ?(quantum = 32) (linked : Machine.linked) ~threads ~worker : t =
  if threads <= 0 then invalid_arg "Multi.create: threads must be positive";
  if quantum <= 0 then invalid_arg "Multi.create: quantum must be positive";
  let wf =
    match Hashtbl.find_opt linked.fidx worker with
    | Some i -> linked.lfuncs.(i)
    | None -> invalid_arg ("Multi.create: no worker function " ^ worker)
  in
  if wf.nparams <> 1 then
    invalid_arg "Multi.create: worker must take exactly the thread id";
  let mem = Memory.create () in
  List.iter
    (fun (g : Prog.global) ->
      let base = Hashtbl.find linked.global_addr g.gname in
      List.iter (fun (w, v) -> Memory.write mem (base + (w * 8)) v) g.init)
    linked.source.globals;
  let machines =
    Array.init threads (fun tid ->
        let regs = Array.make (max 1 wf.nregs) 0 in
        regs.(0) <- tid;
        Machine.resume linked ~mem
          ~frames:(`Frames [ { Machine.lf = wf; regs; blk = 0; idx = 0; ret_to = None } ])
          ~depth:0
        |> fun m -> { m with Machine.tid })
  in
  { linked; mem; machines; quantum }

exception Deadlock

(** Run all threads to completion. [hooks t] supplies the per-thread
    hooks (e.g. one trace per thread). Raises [Machine.Fuel_exhausted]
    if the combined budget runs out. *)
let run ?(fuel = 200_000_000) ?quantum (t : t) (hooks : int -> Machine.hooks) =
  let quantum = Option.value ~default:t.quantum quantum in
  let hs = Array.init (Array.length t.machines) hooks in
  let budget = ref fuel in
  let live () =
    Array.exists (fun m -> m.Machine.status = Machine.Running) t.machines
  in
  while live () do
    let progressed = ref false in
    Array.iteri
      (fun i m ->
        if m.Machine.status = Machine.Running then begin
          for _ = 1 to quantum do
            if m.Machine.status = Machine.Running then begin
              if !budget <= 0 then raise Machine.Fuel_exhausted;
              decr budget;
              Machine.step m hs.(i);
              progressed := true
            end
          done
        end)
      t.machines;
    if not !progressed then raise Deadlock
  done

(** Convenience: SPMD trace generation — one commit trace per thread. *)
let traces_of_program ?fuel ?quantum (p : Prog.t) ~threads ~worker :
    t * Trace.t array =
  let linked = Machine.link p in
  let t = create ?quantum linked ~threads ~worker in
  let traces = Array.init threads (fun _ -> Trace.create ()) in
  run ?fuel ?quantum t (fun tid ->
      { Machine.no_hooks with on_event = Trace.push traces.(tid) });
  (t, traces)
