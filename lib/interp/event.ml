(** Re-export: commit-event encoding now lives in [Cwsp_ir.Event] so the
    decoded execution core ([Cwsp_ir.Decode]) can emit events without a
    dependency cycle. Interp call sites keep their [Event.*] spelling. *)

include Cwsp_ir.Event
