(** Functional interpreter for IR programs.

    The machine is an explicit-state stepper so that higher layers can do
    more than run-to-completion: the recovery harness ([Cwsp_recovery])
    snapshots frames at region boundaries, logs store old-values, stops at
    arbitrary instruction counts and resumes — exactly what is needed to
    emulate power failure and validate the paper's recovery protocol. *)

open Cwsp_ir

(* The decoded fast path ([Cwsp_ir.Decode]) raises the very same
   exception constructors, so callers and the differential oracle see
   identical failures from either engine. *)
exception Fuel_exhausted = Decode.Fuel_exhausted
exception Trap = Decode.Trap

(* ---- linking ---- *)

type lfunc = {
  lf_name : string;
  findex : int;
  nregs : int;
  nparams : int;
  code : Types.instr array array; (* per block *)
  terms : Types.term array;
}

type linked = {
  source : Prog.t;
  lfuncs : lfunc array;
  fidx : (string, int) Hashtbl.t;
  global_addr : (string, int) Hashtbl.t;
  main_idx : int;
}

(** Name of the output intrinsic: [call __out(v)] appends [v] to the
    machine's observable output vector. Used by tests to compare golden
    and post-recovery executions. *)
let out_intrinsic = Decode.out_intrinsic

let link (p : Prog.t) : linked =
  let fidx = Hashtbl.create 16 in
  List.iteri (fun i (name, _) -> Hashtbl.replace fidx name i) p.funcs;
  let lfuncs =
    Array.of_list
      (List.mapi
         (fun i (_, (f : Prog.func)) ->
           {
             lf_name = f.name;
             findex = i;
             nregs = f.nregs;
             nparams = f.nparams;
             code = Array.map (fun (b : Prog.block) -> Array.of_list b.instrs) f.blocks;
             terms = Array.map (fun (b : Prog.block) -> b.term) f.blocks;
           })
         p.funcs)
  in
  let global_addr = Hashtbl.create 16 in
  let next = ref Layout.global_base in
  List.iter
    (fun (g : Prog.global) ->
      Hashtbl.replace global_addr g.gname !next;
      let aligned = (g.size + Layout.cache_line - 1) / Layout.cache_line * Layout.cache_line in
      next := !next + aligned)
    p.globals;
  let main_idx =
    match Hashtbl.find_opt fidx p.main with
    | Some i -> i
    | None -> invalid_arg "Machine.link: missing main"
  in
  { source = p; lfuncs; fidx; global_addr; main_idx }

(* ---- machine state ---- *)

type frame = {
  lf : lfunc;
  regs : int array;
  mutable blk : int;
  mutable idx : int;
  ret_to : Types.reg option; (* caller register receiving the return value *)
}

type status = Running | Halted

type t = {
  linked : linked;
  mem : Memory.t;
  mutable frames : frame list; (* head = current frame *)
  mutable status : status;
  mutable steps : int;
  mutable outputs : int list; (* reversed observable output *)
  mutable depth : int;        (* call-stack depth, for checkpoint slots *)
  tid : int;
}

let create ?(tid = 0) linked =
  let mem = Memory.create () in
  List.iter
    (fun (g : Prog.global) ->
      let base = Hashtbl.find linked.global_addr g.gname in
      List.iter (fun (w, v) -> Memory.write mem (base + (w * 8)) v) g.init)
    linked.source.globals;
  let mf = linked.lfuncs.(linked.main_idx) in
  if mf.nparams <> 0 then invalid_arg "Machine.create: main must take no params";
  {
    linked;
    mem;
    frames = [ { lf = mf; regs = Array.make (max 1 mf.nregs) 0; blk = 0; idx = 0; ret_to = None } ];
    status = Running;
    steps = 0;
    outputs = [];
    depth = 0;
    tid;
  }

let outputs t = List.rev t.outputs
let steps t = t.steps

(** Resume a machine on an existing (post-recovery) memory image. With
    [`Fresh] the program restarts from [main]'s entry; with [`Frames fs]
    execution continues from the given call stack (head = current frame,
    positioned just after a region boundary). Used by the recovery
    harness; global initializers are NOT re-applied — the memory image is
    the surviving NVM state. *)
let resume ?(tid = 0) linked ~mem ~frames ~depth =
  let frames =
    match frames with
    | `Frames fs -> fs
    | `Fresh ->
      let mf = linked.lfuncs.(linked.main_idx) in
      [ { lf = mf; regs = Array.make (max 1 mf.nregs) 0; blk = 0; idx = 0; ret_to = None } ]
  in
  {
    linked;
    mem;
    frames;
    status = (if frames = [] then Halted else Running);
    steps = 0;
    outputs = [];
    depth;
    tid;
  }

(** Hooks invoked during stepping. [on_event] receives the packed commit
    event ([Event]); [on_store] receives every memory write with the old
    value, which is what undo logging consumes. *)
type hooks = {
  on_event : int -> unit;
  on_store : addr:int -> old:int -> value:int -> unit;
}

let no_hooks = { on_event = ignore; on_store = (fun ~addr:_ ~old:_ ~value:_ -> ()) }

let current_frame t =
  match t.frames with
  | f :: _ -> f
  | [] -> raise (Trap "no frame")

let operand_value regs (op : Types.operand) =
  match op with Reg r -> regs.(r) | Imm v -> v

let mem_write t hooks addr value =
  let old = Memory.read t.mem addr in
  Memory.write t.mem addr value;
  hooks.on_store ~addr ~old ~value

(** Execute one instruction (or one terminator if the block is done).
    Raises [Trap] on dynamic errors. No-op once [status = Halted]. *)
let step t hooks =
  match t.status with
  | Halted -> ()
  | Running ->
    let fr = current_frame t in
    let code = fr.lf.code.(fr.blk) in
    t.steps <- t.steps + 1;
    if fr.idx < Array.length code then begin
      let ins = code.(fr.idx) in
      fr.idx <- fr.idx + 1;
      let regs = fr.regs in
      match ins with
      | Types.Bin (op, dst, a, b) ->
        regs.(dst) <- Eval.binop op (operand_value regs a) (operand_value regs b);
        hooks.on_event (Event.encode Alu ~payload:0)
      | Types.Cmp (op, dst, a, b) ->
        regs.(dst) <- Eval.cmpop op (operand_value regs a) (operand_value regs b);
        hooks.on_event (Event.encode Alu ~payload:0)
      | Types.Mov (dst, src) ->
        regs.(dst) <- operand_value regs src;
        hooks.on_event (Event.encode Alu ~payload:0)
      | Types.La (dst, sym) ->
        (match Hashtbl.find_opt t.linked.global_addr sym with
        | Some a -> regs.(dst) <- a
        | None -> raise (Trap ("unknown global " ^ sym)));
        hooks.on_event (Event.encode Alu ~payload:0)
      | Types.Load (dst, base, off) ->
        let addr = regs.(base) + off in
        regs.(dst) <- Memory.read t.mem addr;
        hooks.on_event (Event.encode Load ~payload:addr)
      | Types.Store (base, off, src) ->
        let addr = regs.(base) + off in
        mem_write t hooks addr (operand_value regs src);
        hooks.on_event (Event.encode Store ~payload:addr)
      | Types.Atomic_rmw (op, dst, base, off, src) ->
        let addr = regs.(base) + off in
        let old = Memory.read t.mem addr in
        regs.(dst) <- old;
        mem_write t hooks addr (Eval.binop op old (operand_value regs src));
        hooks.on_event (Event.encode Atomic ~payload:addr)
      | Types.Cas (dst, base, off, expected, desired) ->
        let addr = regs.(base) + off in
        let old = Memory.read t.mem addr in
        regs.(dst) <- old;
        if old = operand_value regs expected then
          mem_write t hooks addr (operand_value regs desired);
        hooks.on_event (Event.encode Atomic ~payload:addr)
      | Types.Fence -> hooks.on_event (Event.encode Fence ~payload:0)
      | Types.Flush (base, off) ->
        (* no architectural effect: a line writeback only moves data down
           the persist path, which the timing/recovery layers model *)
        hooks.on_event (Event.encode Flush ~payload:(regs.(base) + off))
      | Types.Pfence -> hooks.on_event (Event.encode Pfence ~payload:0)
      | Types.Ckpt r ->
        let slot = Layout.ckpt_slot ~tid:t.tid ~depth:t.depth r in
        mem_write t hooks slot regs.(r);
        hooks.on_event (Event.encode Ckpt ~payload:slot)
      | Types.Boundary id -> hooks.on_event (Event.encode Boundary ~payload:id)
      | Types.Call (callee, args, ret_to) ->
        if callee = out_intrinsic then begin
          (match args with
          | [ a ] -> t.outputs <- operand_value regs a :: t.outputs
          | _ -> raise (Trap "__out takes exactly one argument"));
          hooks.on_event (Event.encode Alu ~payload:0)
        end
        else begin
          match Hashtbl.find_opt t.linked.fidx callee with
          | None -> raise (Trap ("unknown function " ^ callee))
          | Some fi ->
            let lf = t.linked.lfuncs.(fi) in
            let nregs = max 1 lf.nregs in
            let nregs = max nregs lf.nparams in
            let callee_regs = Array.make nregs 0 in
            List.iteri (fun i a -> callee_regs.(i) <- operand_value regs a) args;
            t.frames <-
              { lf; regs = callee_regs; blk = 0; idx = 0; ret_to } :: t.frames;
            t.depth <- t.depth + 1;
            if t.depth >= Layout.max_frames then
              raise (Trap "call stack deeper than the checkpoint area");
            hooks.on_event (Event.encode Alu ~payload:0)
        end
    end
    else begin
      (* terminator *)
      let regs = fr.regs in
      match fr.lf.terms.(fr.blk) with
      | Types.Jmp l ->
        fr.blk <- l;
        fr.idx <- 0;
        hooks.on_event (Event.encode Alu ~payload:0)
      | Types.Br (c, ifso, ifnot) ->
        fr.blk <- (if regs.(c) <> 0 then ifso else ifnot);
        fr.idx <- 0;
        hooks.on_event (Event.encode Alu ~payload:0)
      | Types.Ret op ->
        let value = match op with Some o -> operand_value regs o | None -> 0 in
        (match t.frames with
        | [ _ ] ->
          t.frames <- [];
          t.status <- Halted
        | _ :: (caller :: _ as rest) ->
          (match fr.ret_to with
          | Some dst -> caller.regs.(dst) <- value
          | None -> ());
          t.frames <- rest;
          t.depth <- t.depth - 1
        | [] -> raise (Trap "ret with no frame"));
        hooks.on_event (Event.encode Alu ~payload:0)
    end

(** Run until halt or until [fuel] steps have been executed.
    Raises [Fuel_exhausted] if the budget runs out first. *)
let run ?(fuel = 50_000_000) t hooks =
  let limit = t.steps + fuel in
  while t.status = Running do
    if t.steps >= limit then raise Fuel_exhausted;
    step t hooks
  done

(** Convenience: link, run to completion, return (machine, trace). *)
let trace_of_program ?fuel (p : Prog.t) =
  let m = create (link p) in
  let tr = Trace.create () in
  let hooks = { no_hooks with on_event = Trace.push tr } in
  run ?fuel m hooks;
  (m, tr)

(** Run functionally with no trace; returns the machine (memory + outputs). *)
let run_functional ?fuel (p : Prog.t) =
  let m = create (link p) in
  run ?fuel m no_hooks;
  m
