(** Dynamic data-race monitor: the race tier's executable cross-check.

    [Cwsp_verify.Race_check] certifies SPMD programs race-free
    statically; this monitor watches one concrete interleaving of
    [Multi.run] and reports every pair of conflicting accesses that the
    execution's happens-before order leaves unordered. A certificate is
    corroborated when monitored runs (across several scheduling quanta)
    stay race-free; a mutant that defeats the static tier must also
    misbehave here, or the static rule caught nothing real.

    The machinery is vector clocks in the FastTrack style:

    - each thread [t] carries a clock [vc_t]; per shared word the
      monitor keeps the last-write epoch [(w_tid, w_clk)] and a read
      vector, and flags any access that the recorded epoch does not
      happen-before;
    - any word an [Atomic] event ever targets is a {e sync word} from
      then on. Atomics that write (RMWs, successful CAS) form a
      release/acquire chain ([vc_t ⊔= L\[a\]; L\[a\] := vc_t]) —
      exactly how the spinlock's CAS and [atomic_rmw] unlock publish a
      critical section. A {e failed} CAS (no store committed) is an
      atomic read: it acquires ([vc_t ⊔= L\[a\]]) but does not release,
      so spinning threads cannot overwrite the holder's release clock;
    - a {e plain} store of 0 to a sync word is the TSO release idiom
      ([Race.Tso_release]): it publishes like an atomic release
      ([L\[a\] := vc_t]) and is not itself a checked access — but only
      when the storing thread's VC {e dominates} the word's current
      release clock, i.e. the thread actually synchronized on this word
      (its acquire joined, and nobody released since). A non-holder's
      0-store must not impersonate a release: it would both escape
      checking and overwrite the true holder's release VC, distorting
      happens-before for every later acquirer. Such stores, and any
      other plain access to a sync word, are checked like ordinary
      data — that is what catches mixed atomic/plain accesses to one
      word;
    - the per-thread register-checkpoint area ([Layout.is_ckpt_addr])
      is exempt: slots are thread-private by construction.

    One deliberate asymmetry: consecutive atomics on the same word are
    never reported against each other (the chain orders them by
    definition), so benign CAS contention on lock words stays silent. *)

open Cwsp_ir

type race = {
  r_addr : int; (* shared word both threads touched *)
  r_tid : int; (* thread whose access was flagged *)
  r_prev : int; (* thread that made the unordered earlier access *)
}

type outcome = {
  races : race list; (* deduplicated by address, sorted *)
  hung : bool; (* fuel ran out or the threads deadlocked *)
  quantum : int;
}

(* Per-word monitor state. [l] and [r] are allocated lazily: most words
   are only ever written by one thread and need neither. *)
type cell = {
  mutable sync : bool; (* some Atomic event targeted this word *)
  mutable l : int array option; (* release VC (lock words) *)
  mutable w_tid : int;
  mutable w_clk : int; (* last-write epoch; 0 = never written *)
  mutable w_plain : bool; (* that write was a plain store *)
  mutable r : int array option; (* per-thread plain-read clocks *)
}

let join dst src =
  Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src

let observe ?(fuel = 200_000_000) ?(quantum = 32) (p : Prog.t) ~threads
    ~worker : outcome =
  let linked = Machine.link p in
  let t = Multi.create ~quantum linked ~threads ~worker in
  let vc = Array.init threads (fun i ->
      let c = Array.make threads 0 in
      c.(i) <- 1;
      c)
  in
  let cells : (int, cell) Hashtbl.t = Hashtbl.create 1024 in
  let cell addr =
    match Hashtbl.find_opt cells addr with
    | Some c -> c
    | None ->
      let c =
        { sync = false; l = None; w_tid = 0; w_clk = 0; w_plain = false;
          r = None }
      in
      Hashtbl.add cells addr c;
      c
  in
  let races : (int, race) Hashtbl.t = Hashtbl.create 16 in
  let flag addr ~tid ~prev =
    if not (Hashtbl.mem races addr) then
      Hashtbl.add races addr { r_addr = addr; r_tid = tid; r_prev = prev }
  in
  (* write-write / write-read: does the recorded last write happen-before
     thread [tid]'s current point? *)
  let check_write c addr tid =
    if c.w_clk > 0 && c.w_clk > vc.(tid).(c.w_tid) then
      flag addr ~tid ~prev:c.w_tid
  in
  let check_reads c addr tid =
    match c.r with
    | None -> ()
    | Some r ->
      Array.iteri
        (fun u clk -> if u <> tid && clk > vc.(tid).(u) then flag addr ~tid ~prev:u)
        r
  in
  let record_read c tid =
    let r =
      match c.r with
      | Some r -> r
      | None ->
        let r = Array.make threads 0 in
        c.r <- Some r;
        r
    in
    r.(tid) <- vc.(tid).(tid)
  in
  let record_write c tid ~plain =
    c.w_tid <- tid;
    c.w_clk <- vc.(tid).(tid);
    c.w_plain <- plain
  in
  let release c tid =
    c.l <- Some (Array.copy vc.(tid));
    vc.(tid).(tid) <- vc.(tid).(tid) + 1
  in
  (* The storing thread holds the word's synchronization iff its VC
     dominates the recorded release clock: its acquire joined that
     clock and no other thread released since. *)
  let holds_sync c tid =
    match c.l with
    | None -> false
    | Some l ->
      let ok = ref true in
      Array.iteri (fun i v -> if vc.(tid).(i) < v then ok := false) l;
      !ok
  in
  (* [on_store] fires before [on_event] for the same instruction, so the
     stored value is buffered per thread until the event classifies it.
     [wrote] marks that the current instruction actually wrote memory —
     a *failed* CAS fires the Atomic event with no store, which is how
     the monitor tells a spinning acquire attempt from a successful
     one. The flag is cleared at the end of every event (each
     instruction commits exactly one). *)
  let pending = Array.make threads 0 in
  let wrote = Array.make threads false in
  let hooks tid =
    {
      Machine.on_store =
        (fun ~addr:_ ~old:_ ~value ->
          pending.(tid) <- value;
          wrote.(tid) <- true);
      on_event =
        (fun ev ->
          let tag = Event.tag ev in
          if tag = Event.tag_load || tag = Event.tag_store
             || tag = Event.tag_atomic
          then begin
            let addr = Event.payload ev in
            if not (Layout.is_ckpt_addr addr) then begin
              let c = cell addr in
              if tag = Event.tag_load then begin
                check_write c addr tid;
                record_read c tid
              end
              else if tag = Event.tag_store then begin
                if c.sync && pending.(tid) = 0 && holds_sync c tid then
                  release c tid
                else begin
                  check_write c addr tid;
                  check_reads c addr tid;
                  record_write c tid ~plain:true
                end
              end
              else if wrote.(tid) then begin
                (* Atomic that wrote (RMW or successful CAS): a full
                   acquire+release link. The chain orders it against
                   every earlier atomic on the word, so only plain
                   state is checked. *)
                c.sync <- true;
                if c.w_plain then check_write c addr tid;
                check_reads c addr tid;
                (match c.l with Some l -> join vc.(tid) l | None -> ());
                record_write c tid ~plain:false;
                release c tid
              end
              else begin
                (* Failed CAS: an atomic read — acquire edge only. It
                   must NOT release (a spinner overwriting [l] with its
                   own VC would let the holder's later unlock store fail
                   the [holds_sync] test) and writes nothing, so only
                   the plain-write state is checked. *)
                c.sync <- true;
                if c.w_plain then check_write c addr tid;
                match c.l with Some l -> join vc.(tid) l | None -> ()
              end
            end
          end;
          wrote.(tid) <- false);
    }
  in
  let hung =
    match Multi.run ~fuel t hooks with
    | () -> false
    | exception (Machine.Fuel_exhausted | Multi.Deadlock) -> true
  in
  let rs = Hashtbl.fold (fun _ r acc -> r :: acc) races [] in
  {
    races = List.sort (fun a b -> compare a.r_addr b.r_addr) rs;
    hung;
    quantum;
  }

(** Run [observe] under several scheduling quanta: distinct quanta give
    distinct (deterministic) interleavings, so a sweep probes more of
    the schedule space than one run. *)
let sweep ?fuel ?(quanta = [ 32; 7; 13 ]) (p : Prog.t) ~threads ~worker :
    outcome list =
  List.map (fun q -> observe ?fuel ~quantum:q p ~threads ~worker) quanta

(** No run in the sweep raced or hung. *)
let all_clean (os : outcome list) =
  List.for_all (fun o -> o.races = [] && not o.hung) os
