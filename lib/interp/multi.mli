(** Deterministic SPMD multi-threaded execution.

    [threads] machines share one NVM memory image; thread [t] starts in
    [worker](t). Scheduling is round-robin with a fixed instruction
    quantum, so multi-threaded runs are bit-reproducible. Memory is
    sequentially consistent under the interleaving — the contract the
    paper assumes for data-race-free programs (Section VIII). Checkpoint
    slots are per-thread, matching per-core checkpoint storage. *)

open Cwsp_ir

type t = {
  linked : Machine.linked;
  mem : Memory.t;
  machines : Machine.t array;
  quantum : int;
}

exception Deadlock

(** Initialize globals once and spawn [threads] machines, each entering
    [worker](tid); the worker must take exactly one parameter. [quantum]
    sets the round-robin instruction quantum (default 32); different
    quanta give different — but each individually reproducible —
    interleavings. *)
val create : ?quantum:int -> Machine.linked -> threads:int -> worker:string -> t

(** Run all threads round-robin to completion. [hooks tid] supplies the
    per-thread hooks. Raises [Machine.Fuel_exhausted] when the combined
    budget runs out and [Deadlock] if no thread can make progress. *)
val run : ?fuel:int -> ?quantum:int -> t -> (int -> Machine.hooks) -> unit

(** SPMD trace generation: one commit trace per thread. *)
val traces_of_program :
  ?fuel:int ->
  ?quantum:int ->
  Prog.t ->
  threads:int ->
  worker:string ->
  t * Trace.t array
