(** Differential oracle: the decoded fast path ([Cwsp_ir.Decode])
    checked against the reference semantics ([Machine]/[Multi]).

    [trace_of_program]/[spmd_traces_of_program] run the decoded core;
    with [CWSP_ORACLE=1] they also run the reference interpreter and
    raise [Mismatch] on any divergence in trace, outputs, step count,
    final memory, or trap behaviour. [check]/[check_spmd] expose the
    full comparison directly for tests. *)

open Cwsp_ir

(** True when [CWSP_ORACLE] is set (to anything but "" or "0"). *)
val checks_enabled : unit -> bool

exception Mismatch of string

(** How an engine run ended; [Trapped]/[Out_of_fuel] are valid outcomes
    a differential check must also agree on. *)
type 'a outcome = Value of 'a | Trapped of string | Out_of_fuel

(** Run both engines on [p] and compare every observable. [Ok] carries
    the decoded outcome; [Error] describes the first divergence. *)
val check :
  ?fuel:int ->
  label:string ->
  Prog.t ->
  ((Decode.st * Trace.t) outcome, string) result

(** SPMD variant of [check] (same round-robin schedule on both sides). *)
val check_spmd :
  ?fuel:int ->
  ?quantum:int ->
  label:string ->
  Prog.t ->
  threads:int ->
  worker:string ->
  ((Decode.spmd * Trace.t array) outcome, string) result

(** Commit trace via the decoded core; cross-checked against the
    reference interpreter when [CWSP_ORACLE] is set. *)
val trace_of_program : ?fuel:int -> ?label:string -> Prog.t -> Trace.t

(** Per-thread SPMD traces via the decoded core; cross-checked against
    [Multi] when [CWSP_ORACLE] is set. *)
val spmd_traces_of_program :
  ?fuel:int ->
  ?quantum:int ->
  ?label:string ->
  Prog.t ->
  threads:int ->
  worker:string ->
  Trace.t array
