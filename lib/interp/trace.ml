(** Re-export: commit-event traces now live in [Cwsp_ir.Trace] (shared by
    the reference interpreter here and the decoded core in [Cwsp_ir]). *)

include Cwsp_ir.Trace
