(** Growable commit-event traces.

    A trace is produced once per (workload, compile configuration) by the
    functional interpreter and then replayed by every timing configuration
    — the trace/timing split that makes the ~1700 simulation points of the
    benchmark harness affordable (see DESIGN.md §5). *)

type t = {
  mutable events : int array;
  mutable len : int;
}

let create ?(capacity = 4096) () = { events = Array.make capacity 0; len = 0 }

let push t ev =
  if t.len = Array.length t.events then begin
    let bigger = Array.make (2 * Array.length t.events) 0 in
    Array.blit t.events 0 bigger 0 t.len;
    t.events <- bigger
  end;
  t.events.(t.len) <- ev;
  t.len <- t.len + 1

let length t = t.len
let get t i = t.events.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.events.(i)
  done

(** Aggregate counts used by workload metadata tests and region stats. *)
type summary = {
  instructions : int;
  loads : int;
  stores : int;     (* data stores, excluding checkpoints *)
  ckpts : int;
  boundaries : int;
  atomics : int;
  fences : int;
}

let summarize t =
  let loads = ref 0 and stores = ref 0 and ckpts = ref 0 in
  let boundaries = ref 0 and atomics = ref 0 and fences = ref 0 in
  iter
    (fun ev ->
      match Event.kind ev with
      | Alu -> ()
      | Load -> incr loads
      | Store -> incr stores
      | Ckpt -> incr ckpts
      | Boundary -> incr boundaries
      | Fence -> incr fences
      | Atomic -> incr atomics
      (* flush/pfence traffic is persist-path plumbing, not one of the
         workload-shape counts this summary feeds *)
      | Flush | Pfence -> ())
    t;
  {
    instructions = t.len;
    loads = !loads;
    stores = !stores;
    ckpts = !ckpts;
    boundaries = !boundaries;
    atomics = !atomics;
    fences = !fences;
  }

(** Dynamic region lengths (instructions between consecutive boundaries),
    for Figure 19. The stretch before the first boundary and after the
    last are excluded, matching how region statistics are defined. *)
let region_lengths t =
  let lens = ref [] in
  let since = ref (-1) in
  let pos = ref 0 in
  iter
    (fun ev ->
      (match Event.kind ev with
      | Boundary ->
        if !since >= 0 then lens := (!pos - !since) :: !lens;
        since := !pos
      | Alu | Load | Store | Ckpt | Fence | Atomic | Flush | Pfence -> ());
      incr pos)
    t;
  List.rev !lens
