(** Re-export: sparse paged NVM memory now lives in [Cwsp_ir.Memory],
    shared by the reference interpreter and the decoded execution core. *)

include Cwsp_ir.Memory
