(** Sparse paged word-addressable memory.

    4 KiB pages materialize on first touch; untouched memory reads as
    zero. Words are native ints (the IR machine word); addresses must be
    8-byte aligned — workloads and the runtime only ever issue aligned
    accesses, and the simulator's 8-byte persist-path granularity
    (Section V-A2) matches this. *)

let page_words = 512
let page_bytes = page_words * 8

type t = { pages : (int, int array) Hashtbl.t }

let create () = { pages = Hashtbl.create 256 }

let check_addr a =
  if a land 7 <> 0 then
    invalid_arg (Printf.sprintf "Memory: unaligned address 0x%x" a);
  if a < 0 then invalid_arg "Memory: negative address"

let read t a =
  check_addr a;
  match Hashtbl.find_opt t.pages (a / page_bytes) with
  | None -> 0
  | Some page -> page.(a mod page_bytes / 8)

let write t a v =
  check_addr a;
  let key = a / page_bytes in
  let page =
    match Hashtbl.find_opt t.pages key with
    | Some p -> p
    | None ->
      let p = Array.make page_words 0 in
      Hashtbl.add t.pages key p;
      p
  in
  page.(a mod page_bytes / 8) <- v

(** Read-modify-write one word: [mutate t a f] stores [f (read t a)].
    The persistence-path fault injectors use this to tear or bit-flip a
    surviving NVM word in place. *)
let mutate t a f = write t a (f (read t a))

let snapshot t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter (fun k p -> Hashtbl.add pages k (Array.copy p)) t.pages;
  { pages }

(** Structural equality treating absent pages as zero-filled. *)
let equal a b =
  let covered t other =
    Hashtbl.fold
      (fun k p ok ->
        ok
        &&
        match Hashtbl.find_opt other.pages k with
        | Some q -> p = q
        | None -> Array.for_all (fun w -> w = 0) p)
      t.pages true
  in
  covered a b && covered b a

(** First differing (addr, a_value, b_value), for test diagnostics. *)
let first_diff a b =
  let exception Found of int * int * int in
  let scan t other =
    Hashtbl.iter
      (fun k p ->
        let q =
          match Hashtbl.find_opt other.pages k with
          | Some q -> q
          | None -> Array.make page_words 0
        in
        Array.iteri
          (fun i v -> if v <> q.(i) then raise (Found ((k * page_bytes) + (i * 8), v, q.(i))))
          p)
      t.pages
  in
  try
    scan a b;
    (* catch words present only in b *)
    (try
       scan b a;
       None
     with Found (addr, bv, av) -> Some (addr, av, bv))
  with Found (addr, av, bv) -> Some (addr, av, bv)

let iter f t =
  Hashtbl.iter
    (fun k p ->
      Array.iteri (fun i v -> if v <> 0 then f ((k * page_bytes) + (i * 8)) v) p)
    t.pages
