(** Differential oracle: the decoded fast path ([Cwsp_ir.Decode])
    checked against the reference semantics ([Machine]/[Multi]).

    The harness runs the decoded core everywhere ([Cwsp_core.Api.trace],
    the MP experiment); this module is the seam where the two engines
    meet. [trace_of_program] / [spmd_traces_of_program] normally just
    run the fast path — but with [CWSP_ORACLE=1] in the environment they
    additionally run the reference interpreter on every program and
    raise [Mismatch] unless trace, outputs, step count, final memory and
    trap behaviour are all identical. test/test_decode.ml drives the
    same comparison across the whole workload registry and a fuzzer, so
    divergence is caught in CI even when the env var is off. *)

open Cwsp_ir

(** Cross-checking is on when CWSP_ORACLE is set to anything but ""/"0". *)
let enabled =
  lazy
    (match Sys.getenv_opt "CWSP_ORACLE" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

let checks_enabled () = Lazy.force enabled

exception Mismatch of string

(* Both engines raise the very same exception constructors
   ([Machine.Trap] is a rebinding of [Decode.Trap]), so one catch
   covers either. *)
type 'a outcome = Value of 'a | Trapped of string | Out_of_fuel

let outcome f : _ outcome =
  match f () with
  | v -> Value v
  | exception Decode.Trap m -> Trapped m
  | exception Decode.Fuel_exhausted -> Out_of_fuel

let shape = function
  | Value _ -> "completed"
  | Trapped m -> "trapped: " ^ m
  | Out_of_fuel -> "ran out of fuel"

let fail label fmt =
  Printf.ksprintf (fun s -> Error (Printf.sprintf "[%s] %s" label s)) fmt

let check_pair ~label ~(tid : int) ~(fast_tr : Trace.t) ~(ref_tr : Trace.t)
    ~(fast_out : int list) ~(ref_out : int list) ~(fast_steps : int)
    ~(ref_steps : int) =
  match Trace.first_diff fast_tr ref_tr with
  | Some i ->
    fail label
      "thread %d: traces diverge at event %d (decoded len %d, reference len \
       %d; decoded ev %s, reference ev %s)"
      tid i (Trace.length fast_tr) (Trace.length ref_tr)
      (if i < Trace.length fast_tr then string_of_int (Trace.get fast_tr i)
       else "-")
      (if i < Trace.length ref_tr then string_of_int (Trace.get ref_tr i)
       else "-")
  | None ->
    if fast_out <> ref_out then
      fail label "thread %d: outputs diverge (decoded %d values, reference %d)"
        tid (List.length fast_out) (List.length ref_out)
    else if fast_steps <> ref_steps then
      fail label "thread %d: step counts diverge (decoded %d, reference %d)"
        tid fast_steps ref_steps
    else Ok ()

let check_memory ~label fast_mem ref_mem =
  match Memory.first_diff fast_mem ref_mem with
  | None -> Ok ()
  | Some (addr, dv, rv) ->
    fail label "final memory diverges at 0x%x (decoded %d, reference %d)" addr
      dv rv

(** Full differential run of one single-threaded program: both engines,
    every observable compared. [Ok] with the decoded outcome, or [Error]
    with a description of the first divergence. *)
let check ?fuel ~label (p : Prog.t) :
    ((Decode.st * Trace.t) outcome, string) result =
  let fast = outcome (fun () -> Decode.trace_of_program ?fuel p) in
  let ref_ = outcome (fun () -> Machine.trace_of_program ?fuel p) in
  match (fast, ref_) with
  | Value (st, tr), Value (m, mtr) ->
    Result.bind
      (check_pair ~label ~tid:0 ~fast_tr:tr ~ref_tr:mtr
         ~fast_out:(Decode.outputs st) ~ref_out:(Machine.outputs m)
         ~fast_steps:(Decode.steps st) ~ref_steps:(Machine.steps m))
      (fun () ->
        Result.map
          (fun () -> fast)
          (check_memory ~label (Decode.memory st) m.Machine.mem))
  | Trapped a, Trapped b when a = b -> Ok fast
  | Out_of_fuel, Out_of_fuel -> Ok fast
  | _ ->
    fail label "outcomes diverge (decoded %s, reference %s)" (shape fast)
      (shape ref_)

(** Full differential run of one SPMD program (same schedule both sides). *)
let check_spmd ?fuel ?quantum ~label (p : Prog.t) ~threads ~worker :
    ((Decode.spmd * Trace.t array) outcome, string) result =
  let fast =
    outcome (fun () ->
        Decode.spmd_traces_of_program ?fuel ?quantum p ~threads ~worker)
  in
  let ref_ =
    outcome (fun () -> Multi.traces_of_program ?fuel ?quantum p ~threads ~worker)
  in
  match (fast, ref_) with
  | Value (sp, trs), Value (mt, mtrs) ->
    let rec per_thread tid =
      if tid >= threads then Ok ()
      else
        let st = sp.Decode.sts.(tid) and m = mt.Multi.machines.(tid) in
        Result.bind
          (check_pair ~label ~tid ~fast_tr:trs.(tid) ~ref_tr:mtrs.(tid)
             ~fast_out:(Decode.outputs st) ~ref_out:(Machine.outputs m)
             ~fast_steps:(Decode.steps st) ~ref_steps:(Machine.steps m))
          (fun () -> per_thread (tid + 1))
    in
    Result.bind (per_thread 0) (fun () ->
        Result.map
          (fun () -> fast)
          (check_memory ~label
             (Decode.memory sp.Decode.sts.(0))
             mt.Multi.mem))
  | Trapped a, Trapped b when a = b -> Ok fast
  | Out_of_fuel, Out_of_fuel -> Ok fast
  | _ ->
    fail label "outcomes diverge (decoded %s, reference %s)" (shape fast)
      (shape ref_)

let reraise : 'a. 'a outcome -> 'a = function
  | Value v -> v
  | Trapped m -> raise (Decode.Trap m)
  | Out_of_fuel -> raise Decode.Fuel_exhausted

(** Commit trace via the decoded core; cross-checked against the
    reference interpreter when [CWSP_ORACLE] is set. *)
let trace_of_program ?fuel ?(label = "program") (p : Prog.t) : Trace.t =
  if checks_enabled () then
    match check ?fuel ~label p with
    | Ok out ->
      let _, tr = reraise out in
      tr
    | Error msg -> raise (Mismatch msg)
  else
    let _, tr = Decode.trace_of_program ?fuel p in
    tr

(** Per-thread SPMD commit traces via the decoded core; cross-checked
    against [Multi] when [CWSP_ORACLE] is set. *)
let spmd_traces_of_program ?fuel ?quantum ?(label = "program") (p : Prog.t)
    ~threads ~worker : Trace.t array =
  if checks_enabled () then
    match check_spmd ?fuel ?quantum ~label p ~threads ~worker with
    | Ok out -> snd (reraise out)
    | Error msg -> raise (Mismatch msg)
  else snd (Decode.spmd_traces_of_program ?fuel ?quantum p ~threads ~worker)
