(** Re-export: the simulated machine's address-space layout now lives in
    [Cwsp_ir.Layout] (the decoded core resolves checkpoint slots and
    global addresses at decode time). *)

include Cwsp_ir.Layout
