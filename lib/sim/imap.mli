(** Open-addressing int -> float map for the engine's hot per-address
    state. No allocation on probe or in-place update (values live in an
    unboxed float array); keys must be non-negative. *)

type t

(** [create n] sizes the table for about [n] expected bindings. *)
val create : int -> t

(** [find_def t k def] is the value bound to [k], or [def]. *)
val find_def : t -> int -> float -> float

(** Bind [k] to [v], replacing any previous binding. [k] must be >= 0. *)
val put : t -> int -> float -> unit

val length : t -> int
