(** Bounded FIFO timestamp queue — the simulator's workhorse.

    Hardware queues (WPQ, redo buffers, write buffers) are modeled as a
    single-server FIFO with [size] slots: an item becoming ready at time
    [r] is admitted once a slot is free (backpressure), then completes
    after the in-order service of everything ahead of it. Only
    timestamps are stored, which is what makes replaying a trace through
    dozens of configurations cheap.

    The record keeps every float in a flat [float array] ([fs]) rather
    than in mutable float fields: OCaml boxes each assignment to a float
    field of a mixed record, and [push_u] runs once per store event
    across ~1700 simulation points. [push_u]/[admit]/[last_completion]
    together are the allocation-free interface the engines use; [push]
    is the tupled convenience wrapper. *)

type t = {
  size : int;
  completions : float array; (* ring of the last [size] completion times *)
  mutable count : int;       (* total items ever pushed *)
  fs : float array;          (* 0 = last completion; 1 = admit of last push *)
}

let create ~size =
  if size <= 0 then invalid_arg "Tsq.create: size must be positive";
  { size; completions = Array.make size 0.0; count = 0; fs = Array.make 2 0.0 }

(* Float.max for the NaN-free timestamp domain (ties keep [a], exactly
   as [Float.max] does). *)
let[@inline] fmax (a : float) (b : float) = if b > a then b else a

(** Allocation-free push: admit time is [admit t], completion time is
    [last_completion t]. [admit >= ready] is when a slot frees up
    (equals [ready] unless the queue is full of unfinished work), and
    [completion = max(admit, previous completion) + service]. *)
let[@inline always] push_u t ~ready ~service =
  let ring = t.completions in
  let slot = t.count mod t.size in
  let admit =
    if t.count < t.size then ready
    else
      (* slot of the item [size] pushes ago must have completed *)
      fmax ready (Array.unsafe_get ring slot)
  in
  let completion = fmax admit (Array.unsafe_get t.fs 0) +. service in
  Array.unsafe_set ring slot completion;
  t.count <- t.count + 1;
  Array.unsafe_set t.fs 0 completion;
  Array.unsafe_set t.fs 1 admit

(** [push t ~ready ~service] returns [(admit, completion)]. *)
let push t ~ready ~service =
  push_u t ~ready ~service;
  (t.fs.(1), t.fs.(0))

let last_completion t = Array.unsafe_get t.fs 0

(** Admit time of the most recent [push_u]/[push]. *)
let admit t = Array.unsafe_get t.fs 1

(** Raw result cells (0 = last completion, 1 = last admit). *)
let times t = t.fs

(** Entries still in flight (completion after [now]); capped at [size]. *)
let occupancy t ~now =
  let n = min t.count t.size in
  let occ = ref 0 in
  for i = 0 to n - 1 do
    if t.completions.(i) > now then incr occ
  done;
  !occ
