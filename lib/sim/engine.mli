(** The single-core timing engine: replays a commit-event trace under a
    persistence scheme, advancing a nanosecond timeline and charging
    stalls where the modeled hardware produces backpressure (the cWSP
    hardware of Fig. 9: PB -> persist path -> per-MC WPQs with
    asynchronous undo logging; RBT admission for MC speculation; WB
    stale-read delaying; WPQ-hit load delaying). *)

type cwsp_flags = {
  persist_path : bool;   (** Fig. 15 stage 2: persist committed stores *)
  mc_speculation : bool; (** stage 3: RBT admission + MC undo logging *)
  boundary_drain : bool; (** prior-work behaviour: region-end drains *)
  wb_delay : bool;       (** stage 4: stale-read prevention at the WB *)
  wpq_delay : bool;      (** stage 5: delay loads hitting the WPQ *)
}

val cwsp_full : cwsp_flags
val cwsp_flags_none : cwsp_flags

type scheme =
  | Baseline
  | Cwsp of cwsp_flags
  | Ido
  | Capri
  | Replaycache
  | Explicit_flush
      (** compiler-inserted clwb/sfence persistency: data stores stay in
          the cache until flushed; register checkpoints keep the
          hardware persist path *)

val scheme_name : scheme -> string

(** {2 Hardware sub-models (shared with the multi-core engine)} *)

(** Persist-buffer: bounded slots freed on WPQ admission; sends
    serialized at the persist-path bandwidth. *)
type pb = {
  free_at : float array;
  size : int;
  mutable count : int;
  mutable last_send : float;
}

val pb_create : int -> pb

(** [(slot_admit, send_time)] for an entry ready at [ready]. *)
val pb_admit_send : pb -> ready:float -> gap:float -> float * float

val pb_record_free : pb -> float -> unit

(** Region-boundary table: ring of region persist-completion times;
    admission stalls only when all entries hold unpersisted regions. *)
type rbt = { comp : float array; rsize : int; mutable rcount : int }

val rbt_create : int -> rbt

(** Returns the admission stall. *)
val rbt_push : rbt -> now:float -> completion:float -> float

(** 11 bytes per RBT entry (Section IX-N): 176 bytes at the default 16. *)
val storage_bytes : rbt_entries:int -> int

(** {2 Running} *)

val run_trace : Config.t -> scheme -> Cwsp_interp.Trace.t -> Stats.t
