(** The single-core timing engine: replays a commit-event trace under a
    persistence scheme, advancing a nanosecond timeline and charging
    stalls where the modeled hardware produces backpressure (the cWSP
    hardware of Fig. 9: PB -> persist path -> per-MC WPQs with
    asynchronous undo logging; RBT admission for MC speculation; WB
    stale-read delaying; WPQ-hit load delaying). *)

type cwsp_flags = {
  persist_path : bool;   (** Fig. 15 stage 2: persist committed stores *)
  mc_speculation : bool; (** stage 3: RBT admission + MC undo logging *)
  boundary_drain : bool; (** prior-work behaviour: region-end drains *)
  wb_delay : bool;       (** stage 4: stale-read prevention at the WB *)
  wpq_delay : bool;      (** stage 5: delay loads hitting the WPQ *)
}

val cwsp_full : cwsp_flags
val cwsp_flags_none : cwsp_flags

type scheme =
  | Baseline
  | Cwsp of cwsp_flags
  | Ido
  | Capri
  | Replaycache
  | Explicit_flush
      (** compiler-inserted clwb/sfence persistency: data stores stay in
          the cache until flushed; register checkpoints keep the
          hardware persist path *)

val scheme_name : scheme -> string

(** {2 Hardware sub-models (shared with the multi-core engine)} *)

(** All-float mutable timeline state (flat, unboxed representation —
    DESIGN.md §12): current time, persist high-water marks, the stall
    breakdown accumulated during a run, and the out-params of the
    allocation-free helpers. The multi-core engine keeps one per core. *)
type clocks = {
  mutable now : float;
  mutable all_pm : float;     (** drain point for fences *)
  mutable region_pm : float;  (** max persist of current region *)
  mutable s_pb : float;
  mutable s_rbt : float;
  mutable s_drain : float;
  mutable s_sync : float;
  mutable s_wb : float;
  mutable s_wpq_hit : float;
  mutable s_redo : float;
  mutable wb_occ_sum : float;
  mutable pstall : float;     (** out-param of the persist helpers *)
}

val clocks_create : unit -> clocks

(** Flush the accumulated stall breakdown (and [now] as elapsed) into a
    [Stats.t]. *)
val clocks_flush : clocks -> Stats.t -> unit

(** Persist-buffer: bounded slots freed on WPQ admission; sends
    serialized at the persist-path bandwidth. The record is transparent
    so the multi-core engine can read the [fs] result cells with
    unboxed array loads. *)
type pb = {
  free_at : float array;
  size : int;
  mutable count : int;
  fs : float array;  (** 0 = last send; 1 = admit out; 2 = send out *)
}

val pb_create : int -> pb

(** Admit an entry ready at [ready]; the resulting slot-admit and send
    times are left in [fs.(1)] / [fs.(2)] (allocation-free). *)
val pb_admit_send : pb -> ready:float -> gap:float -> unit

val pb_record_free : pb -> float -> unit

(** Region-boundary table: ring of region persist-completion times;
    admission stalls only when all entries hold unpersisted regions. *)
type rbt = { comp : float array; rsize : int; mutable rcount : int }

val rbt_create : int -> rbt

(** Returns the admission stall. *)
val rbt_push : rbt -> now:float -> completion:float -> float

(** 11 bytes per RBT entry (Section IX-N): 176 bytes at the default 16. *)
val storage_bytes : rbt_entries:int -> int

(** {2 Running} *)

val run_trace : Config.t -> scheme -> Cwsp_interp.Trace.t -> Stats.t
