(** The timing engine: replays a commit-event trace under a persistence
    scheme, advancing a nanosecond timeline and charging stalls where the
    modeled hardware would produce backpressure.

    The modeled cWSP hardware follows Figure 9 of the paper:

    - every committed store (and register checkpoint) copies its 8 bytes
      into the persist buffer (PB, a repurposed write-combining buffer);
      the PB sends one entry per bandwidth slot over the persist path to
      the target memory controller's WPQ;
    - data is *persisted* on WPQ admission (battery-backed, Intel ADR
      semantics); the WPQ drains to media at the NVM write bandwidth, and
      speculatively-persisted entries are undo-logged, doubling their
      drain cost but staying off the critical path (asynchronous undo
      logging, Fig. 10b);
    - a region boundary allocates an RBT entry; with memory-controller
      speculation the core only stalls when the RBT is full, otherwise it
      stalls until the finishing region's stores have all persisted;
    - dirty L1D evictions wait in the write buffer until the same line
      has persisted (stale-read prevention); loads that miss every cache
      level and hit a pending WPQ entry wait for the entry to drain.

    Performance shape (DESIGN.md §12): the replay loop runs once per
    event across ~1700 simulation points, so this file keeps the per-
    event path allocation-free. All hot floats live in [clocks] — a
    record whose fields are all float, which OCaml stores flat (a float
    field assignment in a mixed record allocates a box every time);
    per-address state is in [Imap]s (open addressing, unboxed float
    values); cache results travel as packed ints ([Hierarchy.probe]);
    queue pushes are the unboxed [Tsq.push_u]. Stall breakdowns
    accumulate in [clocks] and are flushed to [Stats.t] once per run. *)

module Obs = Cwsp_obs.Obs

type cwsp_flags = {
  persist_path : bool;    (* stage 2 of Fig. 15: persist committed stores *)
  mc_speculation : bool;  (* stage 3: RBT admission + MC undo logging *)
  boundary_drain : bool;  (* prior-work behaviour: wait at every region end
                             for the region's stores to persist (the
                             conservative alternative to MC speculation) *)
  wb_delay : bool;        (* stage 4: stale-read prevention at the WB *)
  wpq_delay : bool;       (* stage 5: delay loads hitting the WPQ *)
}

let cwsp_full =
  { persist_path = true; mc_speculation = true; boundary_drain = false;
    wb_delay = true; wpq_delay = true }

let cwsp_flags_none =
  { persist_path = false; mc_speculation = false; boundary_drain = false;
    wb_delay = false; wpq_delay = false }

type scheme =
  | Baseline          (* no crash consistency support *)
  | Cwsp of cwsp_flags
  | Ido               (* persist barriers at every region boundary *)
  | Capri             (* 64B redo-buffer WSP with battery-backed buffers *)
  | Replaycache       (* software write-through persistence *)
  | Explicit_flush    (* compiler-inserted clwb/sfence persistency: data
                         stores are cache-only; flushes push 64B lines down
                         the persist path, pfences drain it; register
                         checkpoints keep the hardware persist path *)

let scheme_name = function
  | Baseline -> "baseline"
  | Cwsp _ -> "cwsp"
  | Ido -> "ido"
  | Capri -> "capri"
  | Replaycache -> "replaycache"
  | Explicit_flush -> "explicit-flush"

(* Float.max for the NaN-free timestamp domain (ties keep [a], exactly
   as [Float.max] does); stays unboxed when inlined. *)
let[@inline] fmax (a : float) (b : float) = if b > a then b else a

(** All-float mutable timeline state. Every field being float gives the
    record OCaml's flat double representation: field assignment writes
    the raw double in place instead of allocating a box, which is what
    the once-per-event [now <- now + cycle] update needs. Shared with
    the multi-core engine (one [clocks] per core there). *)
type clocks = {
  mutable now : float;
  mutable all_pm : float;      (* drain point for fences *)
  mutable region_pm : float;   (* max persist of current region *)
  (* stall breakdown, flushed to [Stats.t] at end of run *)
  mutable s_pb : float;
  mutable s_rbt : float;
  mutable s_drain : float;
  mutable s_sync : float;
  mutable s_wb : float;
  mutable s_wpq_hit : float;
  mutable s_redo : float;
  (* WB-occupancy samples (sum; the count is an int on the engine) *)
  mutable wb_occ_sum : float;
  (* out-param of [persist_store] (a float return would be boxed) *)
  mutable pstall : float;
}

let clocks_create () =
  {
    now = 0.0;
    all_pm = 0.0;
    region_pm = 0.0;
    s_pb = 0.0;
    s_rbt = 0.0;
    s_drain = 0.0;
    s_sync = 0.0;
    s_wb = 0.0;
    s_wpq_hit = 0.0;
    s_redo = 0.0;
    wb_occ_sum = 0.0;
    pstall = 0.0;
  }

(** Flush the accumulated stall breakdown into a [Stats.t] (identical
    values to updating the stats per event — same additions in the same
    order, different storage). *)
let clocks_flush c (stats : Stats.t) =
  stats.elapsed_ns <- c.now;
  stats.stall_pb_ns <- c.s_pb;
  stats.stall_rbt_ns <- c.s_rbt;
  stats.stall_drain_ns <- c.s_drain;
  stats.stall_sync_ns <- c.s_sync;
  stats.stall_wb_ns <- c.s_wb;
  stats.stall_wpq_hit_ns <- c.s_wpq_hit;
  stats.stall_redo_ns <- c.s_redo

(* Persist-buffer model: [pb_entries] slots, freed when the entry is
   admitted into the target WPQ; sends are serialized at the persist-path
   bandwidth. Floats live in [fs] (flat array) — see [clocks]. *)
type pb = {
  free_at : float array;
  size : int;
  mutable count : int;
  fs : float array; (* 0 = last send; 1 = admit out; 2 = send out *)
}

let pb_create size =
  { free_at = Array.make size 0.0; size; count = 0; fs = Array.make 3 0.0 }

(* Leaves (slot_admit, send_time) in [fs.(1)], [fs.(2)]. *)
let[@inline always] pb_admit_send pb ~ready ~gap =
  let admit =
    if pb.count < pb.size then ready
    else fmax ready pb.free_at.(pb.count mod pb.size)
  in
  let send = fmax admit (Array.unsafe_get pb.fs 0 +. gap) in
  Array.unsafe_set pb.fs 0 send;
  Array.unsafe_set pb.fs 1 admit;
  Array.unsafe_set pb.fs 2 send

let[@inline always] pb_record_free pb free_time =
  pb.free_at.(pb.count mod pb.size) <- free_time;
  pb.count <- pb.count + 1

(* Region-boundary-table model: ring of region persist-completion times. *)
type rbt = { comp : float array; rsize : int; mutable rcount : int }

let rbt_create size = { comp = Array.make size 0.0; rsize = size; rcount = 0 }

let[@inline always] rbt_push rbt ~now ~completion =
  let admit =
    if rbt.rcount < rbt.rsize then now
    else fmax now rbt.comp.(rbt.rcount mod rbt.rsize)
  in
  rbt.comp.(rbt.rcount mod rbt.rsize) <- completion;
  rbt.rcount <- rbt.rcount + 1;
  admit -. now (* stall *)

let storage_bytes ~rbt_entries =
  (* 11 bytes per RBT entry: Region ID, PendingWrs, MCBitVec, RS pointer
     (Section IX-N) *)
  rbt_entries * 11

type t = {
  cfg : Config.t;
  scheme : scheme;
  stats : Stats.t;
  hier : Hierarchy.t;
  c : clocks;
  (* persist machinery *)
  pb : pb;
  wpqs : Tsq.t array; (* one per MC *)
  rbt : rbt;
  line_persist : Imap.t; (* line -> last persist time *)
  word_wpq_done : Imap.t; (* word -> WPQ drain completion *)
  (* L1D write buffer *)
  wb : Tsq.t;
  mutable wb_occ_n : int; (* occupancy sample count *)
  (* Capri redo buffer *)
  redo : pb;
  (* per-MC last line seen, for line-granularity write coalescing *)
  mc_last_line : int array;
  (* per-MC copy of [Config.numa_of_mc] (unboxed reads on the persist
     path; a cross-module float return would box without flambda) *)
  numa_ns : float array;
}

let create (cfg : Config.t) (scheme : scheme) =
  {
    cfg;
    scheme;
    stats = Stats.create ();
    hier = Hierarchy.create cfg;
    c = clocks_create ();
    pb = pb_create cfg.pb_entries;
    wpqs = Array.init cfg.n_mcs (fun _ -> Tsq.create ~size:cfg.wpq_entries);
    rbt = rbt_create cfg.rbt_entries;
    line_persist = Imap.create 4096;
    word_wpq_done = Imap.create 4096;
    wb = Tsq.create ~size:cfg.wb_entries;
    wb_occ_n = 0;
    redo = pb_create 288 (* 18KB Capri redo buffer / 64B lines *);
    mc_last_line = Array.make cfg.n_mcs (-1);
    numa_ns = Array.init cfg.n_mcs (fun mc -> Config.numa_of_mc cfg mc);
  }

(* ---- persist path ---- *)

(* Persist one store through PB -> path -> WPQ. [bytes] selects the
   persist granularity (8 for cWSP, 64 for Capri/ReplayCache); [logged]
   stores pay double drain service for the undo log write.
   Leaves the core-visible stall in [t.c.pstall]. *)
let persist_store t ~addr ~commit ~bytes ~logged ~use_redo ?(coalesce = false) () =
  let cfg = t.cfg in
  let gap = float_of_int bytes /. cfg.path_bandwidth_gbs in
  let buffer = if use_redo then t.redo else t.pb in
  pb_admit_send buffer ~ready:commit ~gap;
  let admit = Array.unsafe_get buffer.fs 1 and send = Array.unsafe_get buffer.fs 2 in
  let line = Cwsp_interp.Layout.line_of_addr addr in
  let mc = Config.mc_of_line cfg line in
  let arrive = send +. cfg.path_latency_ns +. Array.unsafe_get t.numa_ns mc in
  let drain_service =
    let per_entry = float_of_int bytes /. cfg.mem.write_bw_gbs in
    (* Line-granularity schemes (Capri/ReplayCache) coalesce consecutive
       writes to the same line at the media: back-to-back same-line
       entries merge into the pending line write. *)
    let per_entry =
      if coalesce && t.mc_last_line.(mc) = line then per_entry /. 8.0
      else per_entry
    in
    t.mc_last_line.(mc) <- line;
    (* Undo-log writes are append-only per region (Section V-B2), so they
       write-combine into full lines at the media: 8 log entries share one
       64-byte line write, costing 1/8 extra media bandwidth per entry. *)
    if logged then per_entry *. 1.125 else per_entry
  in
  let q = t.wpqs.(mc) in
  Tsq.push_u q ~ready:arrive ~service:drain_service;
  let qts = Tsq.times q in
  let wpq_admit = Array.unsafe_get qts 1 and wpq_done = Array.unsafe_get qts 0 in
  (* the PB slot is held until the WPQ admits the entry (backpressure) *)
  pb_record_free buffer wpq_admit;
  let persist_time = wpq_admit in
  t.c.all_pm <- fmax t.c.all_pm persist_time;
  t.c.region_pm <- fmax t.c.region_pm persist_time;
  Imap.put t.line_persist line persist_time;
  Imap.put t.word_wpq_done addr wpq_done;
  t.stats.nvm_writes <- t.stats.nvm_writes + 1;
  if logged then t.stats.log_writes <- t.stats.log_writes + 1;
  t.c.pstall <- fmax 0.0 (admit -. commit)

(* ---- event handlers ---- *)

(* Returns the packed [Hierarchy.probe] code. *)
let handle_cache_write t ~addr ~count_wb_occupancy =
  let code = Hierarchy.probe t.hier ~addr ~write:true in
  (if code land Hierarchy.l1_evict_bit <> 0 then begin
     let line = Hierarchy.last_l1_evict t.hier in
     (* the eviction enters the L1D write buffer; under cWSP's stale-read
        prevention it may not drain to L2 before the line has persisted *)
     let delay_start =
       match t.scheme with
       | Cwsp f when f.persist_path && f.wb_delay ->
         fmax t.c.now (Imap.find_def t.line_persist line neg_infinity)
       | Baseline | Cwsp _ | Ido | Capri | Replaycache | Explicit_flush ->
         t.c.now
     in
     Tsq.push_u t.wb ~ready:delay_start ~service:t.cfg.wb_drain_ns;
     let admit = Array.unsafe_get (Tsq.times t.wb) 1 in
     Hierarchy.wb_install t.hier ~line_addr:line;
     let stall = fmax 0.0 (admit -. delay_start) in
     t.c.s_wb <- t.c.s_wb +. stall;
     t.c.now <- t.c.now +. stall
   end);
  if count_wb_occupancy then begin
    t.c.wb_occ_sum <-
      t.c.wb_occ_sum +. float_of_int (Tsq.occupancy t.wb ~now:t.c.now);
    t.wb_occ_n <- t.wb_occ_n + 1
  end;
  code

let handle_load t ~addr =
  t.stats.loads <- t.stats.loads + 1;
  let code = Hierarchy.probe t.hier ~addr ~write:false in
  let level = code land Hierarchy.level_mask in
  let serve_ns =
    if code land Hierarchy.from_memory_bit <> 0 then t.cfg.mem.read_ns
    else Array.unsafe_get t.hier.hit_ns level
  in
  let latency = if level = 0 then serve_ns else serve_ns /. t.cfg.mlp in
  t.c.now <- t.c.now +. t.cfg.cycle_ns +. latency;
  (* loads reaching main memory may hit a pending WPQ entry *)
  if code land Hierarchy.from_memory_bit <> 0 then begin
    let d = Imap.find_def t.word_wpq_done addr neg_infinity in
    if d > t.c.now then begin
      t.stats.wpq_hits <- t.stats.wpq_hits + 1;
      let delays =
        match t.scheme with
        | Cwsp f -> f.persist_path && f.wpq_delay
        | Ido | Capri | Replaycache | Explicit_flush -> true
        | Baseline -> false
      in
      if delays then begin
        t.c.s_wpq_hit <- t.c.s_wpq_hit +. (d -. t.c.now);
        t.c.now <- d
      end
    end
  end

let handle_store t ~addr ~is_ckpt =
  if is_ckpt then t.stats.ckpt_stores <- t.stats.ckpt_stores + 1
  else t.stats.stores <- t.stats.stores + 1;
  let commit = t.c.now +. t.cfg.cycle_ns in
  t.c.now <- commit;
  let code = handle_cache_write t ~addr ~count_wb_occupancy:true in
  match t.scheme with
  | Baseline -> ()
  | Cwsp f ->
    if f.persist_path then begin
      (* stores of speculative regions are undo-logged at the MC *)
      let logged = f.mc_speculation in
      persist_store t ~addr ~commit ~bytes:8 ~logged ~use_redo:false ();
      let stall = t.c.pstall in
      t.c.s_pb <- t.c.s_pb +. stall;
      t.c.now <- t.c.now +. stall
    end
  | Ido ->
    persist_store t ~addr ~commit ~bytes:8 ~logged:false ~use_redo:false ();
    let stall = t.c.pstall in
    t.c.s_pb <- t.c.s_pb +. stall;
    t.c.now <- t.c.now +. stall
  | Capri ->
    (* per-store dirty-cacheline copy into the redo buffer (one L1 port
       slot), then a 64B line + 8B of log metadata on the persist path;
       hardware redo+undo logging amplifies NVM writes (Section II-D) *)
    t.c.now <- t.c.now +. t.cfg.cycle_ns;
    persist_store t ~addr ~commit ~bytes:72 ~logged:true ~use_redo:true
      ~coalesce:true ();
    let stall = t.c.pstall in
    t.c.s_redo <- t.c.s_redo +. stall;
    t.c.now <- t.c.now +. stall;
    (* Capri scans the proxy buffer on DRAM-cache evictions and must wait
       the worst-case delivery latency (Section II-D) *)
    if code land Hierarchy.llc_evict_bit <> 0 then
      t.c.now <- t.c.now +. t.cfg.path_latency_ns
  | Replaycache ->
    (* software scheme: per-store instrumentation plus 64B write-through *)
    t.c.now <- t.c.now +. (2.0 *. t.cfg.cycle_ns);
    persist_store t ~addr ~commit ~bytes:64 ~logged:false ~use_redo:false
      ~coalesce:true ();
    let stall = t.c.pstall in
    t.c.s_pb <- t.c.s_pb +. stall;
    t.c.now <- t.c.now +. stall
  | Explicit_flush ->
    (* data stores stay in the cache until an explicit flush; only the
       register-checkpoint engine keeps the hardware persist path *)
    if is_ckpt then begin
      persist_store t ~addr ~commit ~bytes:8 ~logged:false ~use_redo:false ();
      let stall = t.c.pstall in
      t.c.s_pb <- t.c.s_pb +. stall;
      t.c.now <- t.c.now +. stall
    end

(* clwb-like line writeback: one issue cycle, then an asynchronous 64B
   line write down the persist path; the core stalls only on persist-
   buffer backpressure, never on the drain itself. *)
let handle_flush t ~addr =
  let commit = t.c.now +. t.cfg.cycle_ns in
  t.c.now <- commit;
  match t.scheme with
  | Explicit_flush ->
    persist_store t ~addr ~commit ~bytes:64 ~logged:false ~use_redo:false
      ~coalesce:true ();
    let stall = t.c.pstall in
    t.c.s_pb <- t.c.s_pb +. stall;
    t.c.now <- t.c.now +. stall
  | Baseline | Cwsp _ | Ido | Capri | Replaycache ->
    (* schemes with an implicit persist path treat the hint as a no-op *)
    ()

(* sfence-like persist fence: drains every outstanding flush. *)
let handle_pfence t =
  t.c.now <- t.c.now +. t.cfg.cycle_ns;
  match t.scheme with
  | Explicit_flush ->
    let stall = fmax 0.0 (t.c.all_pm -. t.c.now) in
    t.c.s_drain <- t.c.s_drain +. stall;
    t.c.now <- t.c.now +. stall
  | Baseline | Cwsp _ | Ido | Capri | Replaycache -> ()

let handle_boundary t =
  t.stats.boundaries <- t.stats.boundaries + 1;
  let completion = fmax t.c.now t.c.region_pm in
  (match t.scheme with
  | Baseline -> ()
  | Cwsp f when not f.persist_path -> ()
  | Cwsp f when f.mc_speculation ->
    let stall = rbt_push t.rbt ~now:t.c.now ~completion in
    t.c.s_rbt <- t.c.s_rbt +. stall;
    t.c.now <- t.c.now +. stall
  | Cwsp f when f.boundary_drain ->
    (* conservative prior-work behaviour (Section II-B): wait at the
       region end for the region's stores to persist *)
    let stall = fmax 0.0 (t.c.region_pm -. t.c.now) in
    t.c.s_drain <- t.c.s_drain +. stall;
    t.c.now <- t.c.now +. stall
  | Cwsp _ -> () (* unsafe asynchronous persistence: Fig. 15 stage 2 *)
  | Capri ->
    (* battery-backed redo buffer: region end is free; buffer
       backpressure was already charged per store. *)
    ()
  | Ido ->
    (* two persist barriers around every region boundary (Section I) *)
    let stall = fmax 0.0 (t.c.all_pm -. t.c.now) in
    t.c.s_drain <- t.c.s_drain +. stall +. (2.0 *. t.cfg.path_latency_ns);
    t.c.now <- t.c.now +. stall +. (2.0 *. t.cfg.path_latency_ns)
  | Replaycache ->
    (* software region-end flush: wait for everything outstanding *)
    let stall = fmax 0.0 (t.c.all_pm -. t.c.now) in
    t.c.s_drain <- t.c.s_drain +. stall +. (4.0 *. t.cfg.cycle_ns);
    t.c.now <- t.c.now +. stall +. (4.0 *. t.cfg.cycle_ns)
  | Explicit_flush ->
    (* the compiler's pfence already drained the region's data; the
       boundary only waits for its own register checkpoints *)
    let stall = fmax 0.0 (t.c.region_pm -. t.c.now) in
    t.c.s_drain <- t.c.s_drain +. stall;
    t.c.now <- t.c.now +. stall);
  t.c.region_pm <- t.c.now

(* [addr < 0] is a fence; otherwise the atomic's address (an [option]
   here would allocate per sync event). *)
let handle_sync t ~addr =
  (* atomics/fences: stores prior to the primitive must have persisted
     before it commits (Section VIII) *)
  (if addr >= 0 then begin
     t.stats.atomics <- t.stats.atomics + 1;
     (* a locked RMW is expensive on any machine, baseline included *)
     t.c.now <- t.c.now +. t.cfg.atomic_ns;
     handle_load t ~addr;
     handle_store t ~addr ~is_ckpt:false
   end
   else begin
     t.stats.fences <- t.stats.fences + 1;
     t.c.now <- t.c.now +. t.cfg.cycle_ns
   end);
  match t.scheme with
  | Baseline -> ()
  | Explicit_flush ->
    (* the atomic's own store bypassed the data cache-only rule: it is
       hardware failure-atomic, so it enters the persist path here *)
    (if addr >= 0 then begin
       persist_store t ~addr ~commit:t.c.now ~bytes:8 ~logged:false
         ~use_redo:false ();
       let stall = t.c.pstall in
       t.c.s_pb <- t.c.s_pb +. stall;
       t.c.now <- t.c.now +. stall
     end);
    let stall = fmax 0.0 (t.c.all_pm -. t.c.now) in
    t.c.s_sync <- t.c.s_sync +. stall;
    t.c.now <- t.c.now +. stall
  | Cwsp _ | Ido | Capri | Replaycache ->
    let stall = fmax 0.0 (t.c.all_pm -. t.c.now) in
    t.c.s_sync <- t.c.s_sync +. stall;
    t.c.now <- t.c.now +. stall

(* ---- main loop ---- *)

(* Epoch telemetry: every [epoch_mask + 1] replayed events the engine
   samples the cumulative stall breakdown and the instantaneous WB
   occupancy onto a per-run Perfetto counter track whose timeline is
   *simulated* microseconds — figures can show how stalls accumulate
   over a run, not just the totals. Samples never touch [Stats.t], so
   results are identical with tracing on or off. *)
let epoch_mask = 8191

let emit_epoch t track =
  let ts_us = t.c.now /. 1000.0 in
  Obs.counter_event ~pid:track ~name:"stall_ns" ~ts_us
    [
      ("pb", t.c.s_pb);
      ("rbt", t.c.s_rbt);
      ("drain", t.c.s_drain);
      ("sync", t.c.s_sync);
      ("wb", t.c.s_wb);
      ("wpq_hit", t.c.s_wpq_hit);
      ("redo", t.c.s_redo);
    ];
  Obs.counter_event ~pid:track ~name:"wb_occupancy" ~ts_us
    [ ("entries", float_of_int (Tsq.occupancy t.wb ~now:t.c.now)) ]

let run_trace (cfg : Config.t) (scheme : scheme) (trace : Cwsp_interp.Trace.t) :
    Stats.t =
  let t = create cfg scheme in
  let open Cwsp_interp in
  let n = Trace.length trace in
  (* [track < 0] is the single disabled-path branch per epoch check *)
  let track =
    if not !Obs.on then -1
    else begin
      let pid = Obs.alloc_track (Printf.sprintf "sim:%s" (scheme_name scheme)) in
      Obs.span_begin ~cat:"sim"
        ~args:[ ("events", float_of_int n); ("track", float_of_int pid) ]
        ("replay:" ^ scheme_name scheme);
      pid
    end
  in
  let cycle_ns = cfg.cycle_ns in
  for i = 0 to n - 1 do
    let ev = Trace.get trace i in
    let tag = Event.tag ev in
    if tag = Event.tag_alu then t.c.now <- t.c.now +. cycle_ns
    else if tag = Event.tag_load then handle_load t ~addr:(Event.payload ev)
    else if tag = Event.tag_store then
      handle_store t ~addr:(Event.payload ev) ~is_ckpt:false
    else if tag = Event.tag_ckpt then
      handle_store t ~addr:(Event.payload ev) ~is_ckpt:true
    else if tag = Event.tag_boundary then handle_boundary t
    else if tag = Event.tag_fence then handle_sync t ~addr:(-1)
    else if tag = Event.tag_flush then handle_flush t ~addr:(Event.payload ev)
    else if tag = Event.tag_pfence then handle_pfence t
    else handle_sync t ~addr:(Event.payload ev);
    if track >= 0 && i land epoch_mask = epoch_mask then emit_epoch t track
  done;
  t.stats.instructions <- n;
  clocks_flush t.c t.stats;
  Cwsp_util.Stats.Acc.add_sum t.stats.wb_occupancy ~sum:t.c.wb_occ_sum
    ~count:t.wb_occ_n;
  t.stats.nvm_reads <- t.hier.nvm_reads;
  t.stats.l1_miss_rate <- Hierarchy.l1_miss_rate t.hier;
  t.stats.llc_miss_rate <- Hierarchy.llc_miss_rate t.hier;
  if track >= 0 then begin
    emit_epoch t track;
    Obs.span_end ()
  end;
  t.stats
