(** The timing engine: replays a commit-event trace under a persistence
    scheme, advancing a nanosecond timeline and charging stalls where the
    modeled hardware would produce backpressure.

    The modeled cWSP hardware follows Figure 9 of the paper:

    - every committed store (and register checkpoint) copies its 8 bytes
      into the persist buffer (PB, a repurposed write-combining buffer);
      the PB sends one entry per bandwidth slot over the persist path to
      the target memory controller's WPQ;
    - data is *persisted* on WPQ admission (battery-backed, Intel ADR
      semantics); the WPQ drains to media at the NVM write bandwidth, and
      speculatively-persisted entries are undo-logged, doubling their
      drain cost but staying off the critical path (asynchronous undo
      logging, Fig. 10b);
    - a region boundary allocates an RBT entry; with memory-controller
      speculation the core only stalls when the RBT is full, otherwise it
      stalls until the finishing region's stores have all persisted;
    - dirty L1D evictions wait in the write buffer until the same line
      has persisted (stale-read prevention); loads that miss every cache
      level and hit a pending WPQ entry wait for the entry to drain. *)

module Obs = Cwsp_obs.Obs

type cwsp_flags = {
  persist_path : bool;    (* stage 2 of Fig. 15: persist committed stores *)
  mc_speculation : bool;  (* stage 3: RBT admission + MC undo logging *)
  boundary_drain : bool;  (* prior-work behaviour: wait at every region end
                             for the region's stores to persist (the
                             conservative alternative to MC speculation) *)
  wb_delay : bool;        (* stage 4: stale-read prevention at the WB *)
  wpq_delay : bool;       (* stage 5: delay loads hitting the WPQ *)
}

let cwsp_full =
  { persist_path = true; mc_speculation = true; boundary_drain = false;
    wb_delay = true; wpq_delay = true }

let cwsp_flags_none =
  { persist_path = false; mc_speculation = false; boundary_drain = false;
    wb_delay = false; wpq_delay = false }

type scheme =
  | Baseline          (* no crash consistency support *)
  | Cwsp of cwsp_flags
  | Ido               (* persist barriers at every region boundary *)
  | Capri             (* 64B redo-buffer WSP with battery-backed buffers *)
  | Replaycache       (* software write-through persistence *)
  | Explicit_flush    (* compiler-inserted clwb/sfence persistency: data
                         stores are cache-only; flushes push 64B lines down
                         the persist path, pfences drain it; register
                         checkpoints keep the hardware persist path *)

let scheme_name = function
  | Baseline -> "baseline"
  | Cwsp _ -> "cwsp"
  | Ido -> "ido"
  | Capri -> "capri"
  | Replaycache -> "replaycache"
  | Explicit_flush -> "explicit-flush"

(* Persist-buffer model: [pb_entries] slots, freed when the entry is
   admitted into the target WPQ; sends are serialized at the persist-path
   bandwidth. *)
type pb = {
  free_at : float array;
  size : int;
  mutable count : int;
  mutable last_send : float;
}

let pb_create size = { free_at = Array.make size 0.0; size; count = 0; last_send = 0.0 }

(* Returns (slot_admit, send_time). *)
let pb_admit_send pb ~ready ~gap =
  let admit =
    if pb.count < pb.size then ready
    else Float.max ready pb.free_at.(pb.count mod pb.size)
  in
  let send = Float.max admit (pb.last_send +. gap) in
  pb.last_send <- send;
  (admit, send)

let pb_record_free pb free_time =
  pb.free_at.(pb.count mod pb.size) <- free_time;
  pb.count <- pb.count + 1

(* Region-boundary-table model: ring of region persist-completion times. *)
type rbt = { comp : float array; rsize : int; mutable rcount : int }

let rbt_create size = { comp = Array.make size 0.0; rsize = size; rcount = 0 }

let rbt_push rbt ~now ~completion =
  let admit =
    if rbt.rcount < rbt.rsize then now
    else Float.max now rbt.comp.(rbt.rcount mod rbt.rsize)
  in
  rbt.comp.(rbt.rcount mod rbt.rsize) <- completion;
  rbt.rcount <- rbt.rcount + 1;
  admit -. now (* stall *)

let storage_bytes ~rbt_entries =
  (* 11 bytes per RBT entry: Region ID, PendingWrs, MCBitVec, RS pointer
     (Section IX-N) *)
  rbt_entries * 11

type t = {
  cfg : Config.t;
  scheme : scheme;
  stats : Stats.t;
  hier : Hierarchy.t;
  mutable now : float;
  (* persist machinery *)
  pb : pb;
  wpqs : Tsq.t array; (* one per MC *)
  mutable all_persist_max : float;      (* drain point for fences *)
  mutable region_persist_max : float;   (* max persist of current region *)
  rbt : rbt;
  line_persist : (int, float) Hashtbl.t; (* line -> last persist time *)
  word_wpq_done : (int, float) Hashtbl.t; (* word -> WPQ drain completion *)
  (* L1D write buffer *)
  wb : Tsq.t;
  (* Capri redo buffer *)
  redo : pb;
  (* per-MC last line seen, for line-granularity write coalescing *)
  mc_last_line : int array;
}

let create (cfg : Config.t) (scheme : scheme) =
  {
    cfg;
    scheme;
    stats = Stats.create ();
    hier = Hierarchy.create cfg;
    now = 0.0;
    pb = pb_create cfg.pb_entries;
    wpqs = Array.init cfg.n_mcs (fun _ -> Tsq.create ~size:cfg.wpq_entries);
    all_persist_max = 0.0;
    region_persist_max = 0.0;
    rbt = rbt_create cfg.rbt_entries;
    line_persist = Hashtbl.create 4096;
    word_wpq_done = Hashtbl.create 4096;
    wb = Tsq.create ~size:cfg.wb_entries;
    redo = pb_create 288 (* 18KB Capri redo buffer / 64B lines *);
    mc_last_line = Array.make cfg.n_mcs (-1);
  }

(* ---- persist path ---- *)

(* Persist one store through PB -> path -> WPQ. [bytes] selects the
   persist granularity (8 for cWSP, 64 for Capri/ReplayCache); [logged]
   stores pay double drain service for the undo log write.
   Returns the core-visible stall. *)
let persist_store t ~addr ~commit ~bytes ~logged ~use_redo ?(coalesce = false) () =
  let cfg = t.cfg in
  let gap = float_of_int bytes /. cfg.path_bandwidth_gbs in
  let buffer = if use_redo then t.redo else t.pb in
  let admit, send = pb_admit_send buffer ~ready:commit ~gap in
  let line = Cwsp_interp.Layout.line_of_addr addr in
  let mc = Config.mc_of_line cfg line in
  let arrive = send +. cfg.path_latency_ns +. Config.numa_of_mc cfg mc in
  let drain_service =
    let per_entry = float_of_int bytes /. cfg.mem.write_bw_gbs in
    (* Line-granularity schemes (Capri/ReplayCache) coalesce consecutive
       writes to the same line at the media: back-to-back same-line
       entries merge into the pending line write. *)
    let per_entry =
      if coalesce && t.mc_last_line.(mc) = line then per_entry /. 8.0
      else per_entry
    in
    t.mc_last_line.(mc) <- line;
    (* Undo-log writes are append-only per region (Section V-B2), so they
       write-combine into full lines at the media: 8 log entries share one
       64-byte line write, costing 1/8 extra media bandwidth per entry. *)
    if logged then per_entry *. 1.125 else per_entry
  in
  let wpq_admit, wpq_done = Tsq.push t.wpqs.(mc) ~ready:arrive ~service:drain_service in
  (* the PB slot is held until the WPQ admits the entry (backpressure) *)
  pb_record_free buffer wpq_admit;
  let persist_time = wpq_admit in
  t.all_persist_max <- Float.max t.all_persist_max persist_time;
  t.region_persist_max <- Float.max t.region_persist_max persist_time;
  Hashtbl.replace t.line_persist line persist_time;
  Hashtbl.replace t.word_wpq_done addr wpq_done;
  t.stats.nvm_writes <- t.stats.nvm_writes + 1;
  if logged then t.stats.log_writes <- t.stats.log_writes + 1;
  Float.max 0.0 (admit -. commit)

(* ---- event handlers ---- *)

let handle_cache_write t ~addr ~count_wb_occupancy =
  let o = Hierarchy.access t.hier ~addr ~write:true in
  (match o.l1_dirty_eviction with
  | None -> ()
  | Some line ->
    (* the eviction enters the L1D write buffer; under cWSP's stale-read
       prevention it may not drain to L2 before the line has persisted *)
    let delay_start =
      match t.scheme with
      | Cwsp f when f.persist_path && f.wb_delay -> (
        match Hashtbl.find_opt t.line_persist line with
        | Some p -> Float.max t.now p
        | None -> t.now)
      | Baseline | Cwsp _ | Ido | Capri | Replaycache | Explicit_flush ->
        t.now
    in
    let admit, _done_ = Tsq.push t.wb ~ready:delay_start ~service:t.cfg.wb_drain_ns in
    Hierarchy.wb_install t.hier ~line_addr:line;
    let stall = Float.max 0.0 (admit -. delay_start) in
    t.stats.stall_wb_ns <- t.stats.stall_wb_ns +. stall;
    t.now <- t.now +. stall);
  if count_wb_occupancy then
    Cwsp_util.Stats.Acc.add t.stats.wb_occupancy
      (float_of_int (Tsq.occupancy t.wb ~now:t.now));
  o

let handle_load t ~addr =
  t.stats.loads <- t.stats.loads + 1;
  let o = Hierarchy.access t.hier ~addr ~write:false in
  let latency =
    if o.hit_level = 0 then o.latency_ns else o.latency_ns /. t.cfg.mlp
  in
  t.now <- t.now +. t.cfg.cycle_ns +. latency;
  (* loads reaching main memory may hit a pending WPQ entry *)
  if o.from_memory then begin
    match Hashtbl.find_opt t.word_wpq_done addr with
    | Some d when d > t.now ->
      t.stats.wpq_hits <- t.stats.wpq_hits + 1;
      let delays =
        match t.scheme with
        | Cwsp f -> f.persist_path && f.wpq_delay
        | Ido | Capri | Replaycache | Explicit_flush -> true
        | Baseline -> false
      in
      if delays then begin
        t.stats.stall_wpq_hit_ns <- t.stats.stall_wpq_hit_ns +. (d -. t.now);
        t.now <- d
      end
    | Some _ | None -> ()
  end

let handle_store t ~addr ~is_ckpt =
  if is_ckpt then t.stats.ckpt_stores <- t.stats.ckpt_stores + 1
  else t.stats.stores <- t.stats.stores + 1;
  let commit = t.now +. t.cfg.cycle_ns in
  t.now <- commit;
  let o = handle_cache_write t ~addr ~count_wb_occupancy:true in
  match t.scheme with
  | Baseline -> ()
  | Cwsp f ->
    if f.persist_path then begin
      (* stores of speculative regions are undo-logged at the MC *)
      let logged = f.mc_speculation in
      let stall =
        persist_store t ~addr ~commit ~bytes:8 ~logged ~use_redo:false ()
      in
      t.stats.stall_pb_ns <- t.stats.stall_pb_ns +. stall;
      t.now <- t.now +. stall
    end
  | Ido ->
    let stall = persist_store t ~addr ~commit ~bytes:8 ~logged:false ~use_redo:false () in
    t.stats.stall_pb_ns <- t.stats.stall_pb_ns +. stall;
    t.now <- t.now +. stall
  | Capri ->
    (* per-store dirty-cacheline copy into the redo buffer (one L1 port
       slot), then a 64B line + 8B of log metadata on the persist path;
       hardware redo+undo logging amplifies NVM writes (Section II-D) *)
    t.now <- t.now +. t.cfg.cycle_ns;
    let stall = persist_store t ~addr ~commit ~bytes:72 ~logged:true ~use_redo:true ~coalesce:true () in
    t.stats.stall_redo_ns <- t.stats.stall_redo_ns +. stall;
    t.now <- t.now +. stall;
    (* Capri scans the proxy buffer on DRAM-cache evictions and must wait
       the worst-case delivery latency (Section II-D) *)
    if o.llc_eviction then t.now <- t.now +. t.cfg.path_latency_ns
  | Replaycache ->
    (* software scheme: per-store instrumentation plus 64B write-through *)
    t.now <- t.now +. (2.0 *. t.cfg.cycle_ns);
    let stall = persist_store t ~addr ~commit ~bytes:64 ~logged:false ~use_redo:false ~coalesce:true () in
    t.stats.stall_pb_ns <- t.stats.stall_pb_ns +. stall;
    t.now <- t.now +. stall
  | Explicit_flush ->
    (* data stores stay in the cache until an explicit flush; only the
       register-checkpoint engine keeps the hardware persist path *)
    if is_ckpt then begin
      let stall = persist_store t ~addr ~commit ~bytes:8 ~logged:false ~use_redo:false () in
      t.stats.stall_pb_ns <- t.stats.stall_pb_ns +. stall;
      t.now <- t.now +. stall
    end

(* clwb-like line writeback: one issue cycle, then an asynchronous 64B
   line write down the persist path; the core stalls only on persist-
   buffer backpressure, never on the drain itself. *)
let handle_flush t ~addr =
  let commit = t.now +. t.cfg.cycle_ns in
  t.now <- commit;
  match t.scheme with
  | Explicit_flush ->
    let stall =
      persist_store t ~addr ~commit ~bytes:64 ~logged:false ~use_redo:false
        ~coalesce:true ()
    in
    t.stats.stall_pb_ns <- t.stats.stall_pb_ns +. stall;
    t.now <- t.now +. stall
  | Baseline | Cwsp _ | Ido | Capri | Replaycache ->
    (* schemes with an implicit persist path treat the hint as a no-op *)
    ()

(* sfence-like persist fence: drains every outstanding flush. *)
let handle_pfence t =
  t.now <- t.now +. t.cfg.cycle_ns;
  match t.scheme with
  | Explicit_flush ->
    let stall = Float.max 0.0 (t.all_persist_max -. t.now) in
    t.stats.stall_drain_ns <- t.stats.stall_drain_ns +. stall;
    t.now <- t.now +. stall
  | Baseline | Cwsp _ | Ido | Capri | Replaycache -> ()

let handle_boundary t =
  t.stats.boundaries <- t.stats.boundaries + 1;
  let completion = Float.max t.now t.region_persist_max in
  (match t.scheme with
  | Baseline -> ()
  | Cwsp f when not f.persist_path -> ()
  | Cwsp f when f.mc_speculation ->
    let stall = rbt_push t.rbt ~now:t.now ~completion in
    t.stats.stall_rbt_ns <- t.stats.stall_rbt_ns +. stall;
    t.now <- t.now +. stall
  | Cwsp f when f.boundary_drain ->
    (* conservative prior-work behaviour (Section II-B): wait at the
       region end for the region's stores to persist *)
    let stall = Float.max 0.0 (t.region_persist_max -. t.now) in
    t.stats.stall_drain_ns <- t.stats.stall_drain_ns +. stall;
    t.now <- t.now +. stall
  | Cwsp _ -> () (* unsafe asynchronous persistence: Fig. 15 stage 2 *)
  | Capri ->
    (* battery-backed redo buffer: region end is free; buffer
       backpressure was already charged per store. *)
    ()
  | Ido ->
    (* two persist barriers around every region boundary (Section I) *)
    let stall = Float.max 0.0 (t.all_persist_max -. t.now) in
    t.stats.stall_drain_ns <- t.stats.stall_drain_ns +. stall +. (2.0 *. t.cfg.path_latency_ns);
    t.now <- t.now +. stall +. (2.0 *. t.cfg.path_latency_ns)
  | Replaycache ->
    (* software region-end flush: wait for everything outstanding *)
    let stall = Float.max 0.0 (t.all_persist_max -. t.now) in
    t.stats.stall_drain_ns <- t.stats.stall_drain_ns +. stall +. (4.0 *. t.cfg.cycle_ns);
    t.now <- t.now +. stall +. (4.0 *. t.cfg.cycle_ns)
  | Explicit_flush ->
    (* the compiler's pfence already drained the region's data; the
       boundary only waits for its own register checkpoints *)
    let stall = Float.max 0.0 (t.region_persist_max -. t.now) in
    t.stats.stall_drain_ns <- t.stats.stall_drain_ns +. stall;
    t.now <- t.now +. stall);
  t.region_persist_max <- t.now

let handle_sync t ~addr =
  (* atomics/fences: stores prior to the primitive must have persisted
     before it commits (Section VIII) *)
  (match addr with
  | Some a ->
    t.stats.atomics <- t.stats.atomics + 1;
    (* a locked RMW is expensive on any machine, baseline included *)
    t.now <- t.now +. t.cfg.atomic_ns;
    handle_load t ~addr:a;
    handle_store t ~addr:a ~is_ckpt:false
  | None ->
    t.stats.fences <- t.stats.fences + 1;
    t.now <- t.now +. t.cfg.cycle_ns);
  match t.scheme with
  | Baseline -> ()
  | Explicit_flush ->
    (* the atomic's own store bypassed the data cache-only rule: it is
       hardware failure-atomic, so it enters the persist path here *)
    (match addr with
    | Some a ->
      let stall =
        persist_store t ~addr:a ~commit:t.now ~bytes:8 ~logged:false
          ~use_redo:false ()
      in
      t.stats.stall_pb_ns <- t.stats.stall_pb_ns +. stall;
      t.now <- t.now +. stall
    | None -> ());
    let stall = Float.max 0.0 (t.all_persist_max -. t.now) in
    t.stats.stall_sync_ns <- t.stats.stall_sync_ns +. stall;
    t.now <- t.now +. stall
  | Cwsp _ | Ido | Capri | Replaycache ->
    let stall = Float.max 0.0 (t.all_persist_max -. t.now) in
    t.stats.stall_sync_ns <- t.stats.stall_sync_ns +. stall;
    t.now <- t.now +. stall

(* ---- main loop ---- *)

(* Epoch telemetry: every [epoch_mask + 1] replayed events the engine
   samples the cumulative stall breakdown and the instantaneous WB
   occupancy onto a per-run Perfetto counter track whose timeline is
   *simulated* microseconds — figures can show how stalls accumulate
   over a run, not just the totals. Samples never touch [Stats.t], so
   results are identical with tracing on or off. *)
let epoch_mask = 8191

let emit_epoch t track =
  let ts_us = t.now /. 1000.0 in
  Obs.counter_event ~pid:track ~name:"stall_ns" ~ts_us
    [
      ("pb", t.stats.stall_pb_ns);
      ("rbt", t.stats.stall_rbt_ns);
      ("drain", t.stats.stall_drain_ns);
      ("sync", t.stats.stall_sync_ns);
      ("wb", t.stats.stall_wb_ns);
      ("wpq_hit", t.stats.stall_wpq_hit_ns);
      ("redo", t.stats.stall_redo_ns);
    ];
  Obs.counter_event ~pid:track ~name:"wb_occupancy" ~ts_us
    [ ("entries", float_of_int (Tsq.occupancy t.wb ~now:t.now)) ]

let run_trace (cfg : Config.t) (scheme : scheme) (trace : Cwsp_interp.Trace.t) :
    Stats.t =
  let t = create cfg scheme in
  let open Cwsp_interp in
  let n = Trace.length trace in
  (* [track < 0] is the single disabled-path branch per epoch check *)
  let track =
    if not !Obs.on then -1
    else begin
      let pid = Obs.alloc_track (Printf.sprintf "sim:%s" (scheme_name scheme)) in
      Obs.span_begin ~cat:"sim"
        ~args:[ ("events", float_of_int n); ("track", float_of_int pid) ]
        ("replay:" ^ scheme_name scheme);
      pid
    end
  in
  for i = 0 to n - 1 do
    let ev = Trace.get trace i in
    let tag = Event.tag ev in
    if tag = Event.tag_alu then t.now <- t.now +. cfg.cycle_ns
    else if tag = Event.tag_load then handle_load t ~addr:(Event.payload ev)
    else if tag = Event.tag_store then
      handle_store t ~addr:(Event.payload ev) ~is_ckpt:false
    else if tag = Event.tag_ckpt then
      handle_store t ~addr:(Event.payload ev) ~is_ckpt:true
    else if tag = Event.tag_boundary then handle_boundary t
    else if tag = Event.tag_fence then handle_sync t ~addr:None
    else if tag = Event.tag_flush then handle_flush t ~addr:(Event.payload ev)
    else if tag = Event.tag_pfence then handle_pfence t
    else handle_sync t ~addr:(Some (Event.payload ev));
    if track >= 0 && i land epoch_mask = epoch_mask then emit_epoch t track
  done;
  t.stats.instructions <- n;
  t.stats.elapsed_ns <- t.now;
  t.stats.nvm_reads <- t.hier.nvm_reads;
  t.stats.l1_miss_rate <- Hierarchy.l1_miss_rate t.hier;
  t.stats.llc_miss_rate <- Hierarchy.llc_miss_rate t.hier;
  if track >= 0 then begin
    emit_epoch t track;
    Obs.span_end ()
  end;
  t.stats
