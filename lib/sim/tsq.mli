(** Bounded FIFO timestamp queue — the simulator's workhorse.

    Hardware queues (WPQ, write buffers) are modeled as a single-server
    FIFO with [size] slots: an item becoming ready at time r is admitted
    once a slot frees (backpressure), then completes after the in-order
    service of everything ahead of it. Only timestamps are stored. *)

type t

val create : size:int -> t

(** Allocation-free push (the engines' hot path): results are read back
    with [admit] and [last_completion]. [admit >= ready] (delayed while
    all slots hold unfinished work); [completion = max(admit, previous
    completion) + service]. *)
val push_u : t -> ready:float -> service:float -> unit

(** [(admit, completion)] of pushing one item — tupled convenience
    wrapper over [push_u]. *)
val push : t -> ready:float -> service:float -> float * float

val last_completion : t -> float

(** Admit time of the most recent push. *)
val admit : t -> float

(** The queue's result cells — slot 0 = last completion, slot 1 = admit
    of the last push. Returned as the raw float array so engine hot
    loops can read both results of a [push_u] with unboxed array loads
    (a float-returning accessor would box without flambda). *)
val times : t -> float array

(** Entries still in flight at [now]; at most [size]. *)
val occupancy : t -> now:float -> int
