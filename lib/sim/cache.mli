(** Set-associative write-back, write-allocate cache with LRU
    replacement. Tag storage is a hash table keyed by set index, so a
    multi-gigabyte direct-mapped DRAM cache costs memory proportional to
    the sets actually touched. *)

type t

val line_bytes : int

val create : Config.cache_level -> t

type result = {
  hit : bool;
  evicted_dirty_line : int option; (** line address of a dirty eviction *)
}

(** Access the line containing [addr], allocating on miss; [write] marks
    it dirty. *)
val access : t -> addr:int -> write:bool -> result

(** Allocation-free [access] (the engines' hot path): returns the hit
    flag; a dirty eviction's line address is left in [last_dirty_evict]
    (-1 when none) until the next probe. *)
val probe : t -> addr:int -> write:bool -> bool

val last_dirty_evict : t -> int

(** Install a dirty line arriving as a writeback from an upper level. *)
val install_dirty : t -> line_addr:int -> unit

val miss_rate : t -> float
