(** Open-addressing int -> float map for the engine's hot per-address
    state (line persist times, WPQ drain completions).

    [Hashtbl] costs a polymorphic hash plus an allocated [Some] on every
    probe; this map stores keys and values in flat arrays (values in an
    unboxed float array), probes linearly from a multiplicative hash and
    allocates only when growing. Keys must be non-negative (addresses and
    line numbers are); -1 is the empty-slot sentinel. *)

type t = {
  mutable keys : int array;   (* -1 = empty *)
  mutable vals : float array;
  mutable mask : int;         (* capacity - 1; capacity is a power of 2 *)
  mutable count : int;
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create n =
  let cap = pow2 (max 16 (2 * n)) 16 in
  { keys = Array.make cap (-1); vals = Array.make cap 0.0; mask = cap - 1; count = 0 }

(* Fibonacci hashing: odd multiplier spreads consecutive addresses. *)
let[@inline] slot t k = (k * 0x2545F4914F6CDD1D) land t.mask

let rec probe keys mask k i =
  let key = Array.unsafe_get keys i in
  if key = k || key = -1 then i else probe keys mask k ((i + 1) land mask)

(** [find_def t k def] is the value bound to [k], or [def]. *)
let[@inline always] find_def t k def =
  let i = probe t.keys t.mask k (slot t k) in
  if Array.unsafe_get t.keys i = k then Array.unsafe_get t.vals i else def

let grow t =
  let keys = t.keys and vals = t.vals in
  let cap = 2 * (t.mask + 1) in
  t.keys <- Array.make cap (-1);
  t.vals <- Array.make cap 0.0;
  t.mask <- cap - 1;
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let j = probe t.keys t.mask k (slot t k) in
        t.keys.(j) <- k;
        t.vals.(j) <- vals.(i)
      end)
    keys

(** Bind [k] to [v], replacing any previous binding. *)
let[@inline always] put t k v =
  let i = probe t.keys t.mask k (slot t k) in
  if Array.unsafe_get t.keys i = k then Array.unsafe_set t.vals i v
  else begin
    Array.unsafe_set t.keys i k;
    Array.unsafe_set t.vals i v;
    t.count <- t.count + 1;
    (* load factor 1/2 keeps probe chains short *)
    if 2 * t.count > t.mask then grow t
  end

let length t = t.count
