(** Multi-core timing engine (extension of [Engine] to the paper's 8-core
    platform).

    Each core owns its private L1D, write buffer, persist buffer and RBT;
    the L2 and deeper levels, the memory controllers' WPQs and the
    persist-path bandwidth are shared. Per-thread commit traces (from
    [Cwsp_interp.Multi]) are replayed in global time order: at every step
    the core with the smallest local clock consumes its next event, so
    shared-queue contention is observed in the order a real machine would
    produce it.

    Simplification versus the paper's gem5 runs: no coherence traffic is
    modeled — the PB is coherence-agnostic by design (Section V-A1) and
    the workloads are data-race-free, so coherence misses would add a
    scheme-independent constant to both sides of every ratio.

    Like the single-core engine, the per-event path is allocation-free
    (DESIGN.md §12): per-core timeline floats live in an [Engine.clocks]
    (flat all-float record), cache results travel as packed ints, and
    the shared line-persist table is an [Imap]. *)

open Cwsp_interp

(* Float.max for the NaN-free timestamp domain (ties keep [a]). *)
let[@inline] fmax (a : float) (b : float) = if b > a then b else a

type core = {
  cid : int;
  l1 : Cache.t;
  wb : Tsq.t;
  pb : Engine.pb;
  rbt : Engine.rbt;
  c : Engine.clocks;
  stats : Stats.t;
  trace : Trace.t;
  mutable pos : int;
}

type t = {
  cfg : Config.t;
  shared : Cache.t array; (* L2 and deeper *)
  shared_hit_ns : float array;
  wpqs : Tsq.t array;
  line_persist : Imap.t;
  cores : core array;
  numa_ns : float array; (* per-MC copy of [Config.numa_of_mc] *)
}

let create (cfg : Config.t) (traces : Trace.t array) : t =
  let l1_level, shared_levels =
    match cfg.levels with
    | l1 :: rest -> (l1, rest)
    | [] -> invalid_arg "Engine_mp: empty hierarchy"
  in
  {
    cfg;
    shared = Array.of_list (List.map Cache.create shared_levels);
    shared_hit_ns =
      Array.of_list
        (List.map (fun (l : Config.cache_level) -> l.hit_ns) shared_levels);
    wpqs = Array.init cfg.n_mcs (fun _ -> Tsq.create ~size:cfg.wpq_entries);
    line_persist = Imap.create 4096;
    cores =
      Array.mapi
        (fun cid trace ->
          {
            cid;
            l1 = Cache.create l1_level;
            wb = Tsq.create ~size:cfg.wb_entries;
            pb = Engine.pb_create cfg.pb_entries;
            rbt = Engine.rbt_create cfg.rbt_entries;
            c = Engine.clocks_create ();
            stats = Stats.create ();
            trace;
            pos = 0;
          })
        traces;
    numa_ns = Array.init cfg.n_mcs (fun mc -> Config.numa_of_mc cfg mc);
  }

(* Private L1 then the shared levels. Packed result: bit 0 = L1 hit,
   bit 1 = served by memory, bit 2 = dirty L1 eviction (line address in
   [Cache.last_dirty_evict c.l1]); bits 3+ = shared level index that
   served the access. The caller derives the latency from the code, so
   no float crosses a call boundary. *)
let l1_hit_bit = 1
let from_mem_bit = 2
let l1_evict_bit = 4

let mem_access t (c : core) ~addr ~write =
  let l1_hit = Cache.probe c.l1 ~addr ~write in
  let evict =
    if Cache.last_dirty_evict c.l1 >= 0 then l1_evict_bit else 0
  in
  if l1_hit then l1_hit_bit lor evict
  else begin
    let n = Array.length t.shared in
    (* non-escaping refs compile to registers; a local rec function
       here would allocate a closure per L1 miss *)
    let code = ref (-1) in
    let i = ref 0 in
    while !code < 0 && !i < n do
      let hit = Cache.probe t.shared.(!i) ~addr ~write:false in
      let line = Cache.last_dirty_evict t.shared.(!i) in
      (if line >= 0 && !i + 1 < n then
         Cache.install_dirty t.shared.(!i + 1) ~line_addr:line);
      if hit then code := !i lsl 3 else incr i
    done;
    (if !code < 0 then from_mem_bit else !code) lor evict
  end

(* per-core persist path (Fig. 3b: each core has its own path to the
   MCs); the WPQs and media bandwidth behind them are shared.
   Leaves the core-visible stall in [c.c.pstall]. *)
let persist t (c : core) ~addr ~commit ~logged =
  let cfg = t.cfg in
  let gap = 8.0 /. cfg.path_bandwidth_gbs in
  Engine.pb_admit_send c.pb ~ready:commit ~gap;
  let admit = Array.unsafe_get c.pb.Engine.fs 1
  and send = Array.unsafe_get c.pb.Engine.fs 2 in
  let line = Layout.line_of_addr addr in
  let mc = Config.mc_of_line cfg line in
  let arrive = send +. cfg.path_latency_ns +. Array.unsafe_get t.numa_ns mc in
  let per_entry = 8.0 /. cfg.mem.write_bw_gbs in
  let service = if logged then per_entry *. 1.125 else per_entry in
  let q = t.wpqs.(mc) in
  Tsq.push_u q ~ready:arrive ~service;
  let wpq_admit = Array.unsafe_get (Tsq.times q) 1 in
  Engine.pb_record_free c.pb wpq_admit;
  c.c.all_pm <- fmax c.c.all_pm wpq_admit;
  c.c.region_pm <- fmax c.c.region_pm wpq_admit;
  Imap.put t.line_persist line wpq_admit;
  c.stats.nvm_writes <- c.stats.nvm_writes + 1;
  if logged then c.stats.log_writes <- c.stats.log_writes + 1;
  c.c.pstall <- fmax 0.0 (admit -. commit)

let handle_store t (c : core) ~addr ~is_ckpt ~persisting =
  if is_ckpt then c.stats.ckpt_stores <- c.stats.ckpt_stores + 1
  else c.stats.stores <- c.stats.stores + 1;
  let commit = c.c.now +. t.cfg.cycle_ns in
  c.c.now <- commit;
  let code = mem_access t c ~addr ~write:true in
  (if code land l1_evict_bit <> 0 then begin
     let line = Cache.last_dirty_evict c.l1 in
     let delay_start =
       if persisting then
         fmax c.c.now (Imap.find_def t.line_persist line neg_infinity)
       else c.c.now
     in
     Tsq.push_u c.wb ~ready:delay_start ~service:t.cfg.wb_drain_ns;
     let admit = Array.unsafe_get (Tsq.times c.wb) 1 in
     (if Array.length t.shared > 0 then
        Cache.install_dirty t.shared.(0) ~line_addr:line);
     let stall = fmax 0.0 (admit -. delay_start) in
     c.c.s_wb <- c.c.s_wb +. stall;
     c.c.now <- c.c.now +. stall
   end);
  if persisting then begin
    persist t c ~addr ~commit ~logged:true;
    let stall = c.c.pstall in
    c.c.s_pb <- c.c.s_pb +. stall;
    c.c.now <- c.c.now +. stall
  end

let handle_load t (c : core) ~addr =
  c.stats.loads <- c.stats.loads + 1;
  let code = mem_access t c ~addr ~write:false in
  let lat =
    if code land l1_hit_bit <> 0 then 2.0
    else if code land from_mem_bit <> 0 then t.cfg.mem.read_ns
    else Array.unsafe_get t.shared_hit_ns (code lsr 3)
  in
  let charged = if lat <= 2.0 then lat else lat /. t.cfg.mlp in
  c.c.now <- c.c.now +. t.cfg.cycle_ns +. charged

let step t (c : core) ~persisting =
  let ev = Trace.get c.trace c.pos in
  c.pos <- c.pos + 1;
  let tag = Event.tag ev in
  if tag = Event.tag_alu then c.c.now <- c.c.now +. t.cfg.cycle_ns
  else if tag = Event.tag_load then handle_load t c ~addr:(Event.payload ev)
  else if tag = Event.tag_store then
    handle_store t c ~addr:(Event.payload ev) ~is_ckpt:false ~persisting
  else if tag = Event.tag_ckpt then
    handle_store t c ~addr:(Event.payload ev) ~is_ckpt:true ~persisting
  else if tag = Event.tag_flush || tag = Event.tag_pfence then
    (* the multi-core engine models only the implicit cWSP persist path;
       explicit-persistency hints cost their issue cycle *)
    c.c.now <- c.c.now +. t.cfg.cycle_ns
  else if tag = Event.tag_boundary then begin
    c.stats.boundaries <- c.stats.boundaries + 1;
    if persisting then begin
      let completion = fmax c.c.now c.c.region_pm in
      let stall = Engine.rbt_push c.rbt ~now:c.c.now ~completion in
      c.c.s_rbt <- c.c.s_rbt +. stall;
      c.c.now <- c.c.now +. stall
    end;
    c.c.region_pm <- c.c.now
  end
  else begin
    (* fence or atomic: sync point; drains this core's pending persists *)
    (if tag = Event.tag_atomic then begin
       c.stats.atomics <- c.stats.atomics + 1;
       c.c.now <- c.c.now +. t.cfg.atomic_ns;
       handle_load t c ~addr:(Event.payload ev);
       handle_store t c ~addr:(Event.payload ev) ~is_ckpt:false ~persisting
     end
     else begin
       c.stats.fences <- c.stats.fences + 1;
       c.c.now <- c.c.now +. t.cfg.cycle_ns
     end);
    if persisting then begin
      let stall = fmax 0.0 (c.c.all_pm -. c.c.now) in
      c.c.s_sync <- c.c.s_sync +. stall;
      c.c.now <- c.c.now +. stall
    end
  end

type result = {
  per_core : Stats.t array;
  elapsed_ns : float; (* completion of the slowest core *)
}

(** Replay per-thread traces on an N-core machine. [scheme] is either
    [`Baseline] or [`Cwsp] (the full cWSP hardware). *)
let run_traces (cfg : Config.t) (scheme : [ `Baseline | `Cwsp ])
    (traces : Trace.t array) : result =
  let t = create cfg traces in
  let persisting = scheme = `Cwsp in
  let ncores = Array.length t.cores in
  (* global time order: always advance the core with the smallest clock *)
  let rec loop () =
    let best = ref (-1) in
    for i = 0 to ncores - 1 do
      let c = Array.unsafe_get t.cores i in
      if
        c.pos < Trace.length c.trace
        && (!best < 0 || c.c.Engine.now < t.cores.(!best).c.Engine.now)
      then best := i
    done;
    if !best >= 0 then begin
      step t t.cores.(!best) ~persisting;
      loop ()
    end
  in
  loop ();
  Array.iter
    (fun c ->
      c.stats.instructions <- Trace.length c.trace;
      Engine.clocks_flush c.c c.stats;
      c.stats.l1_miss_rate <- Cache.miss_rate c.l1)
    t.cores;
  {
    per_core = Array.map (fun c -> c.stats) t.cores;
    elapsed_ns =
      Array.fold_left (fun acc c -> fmax acc c.c.Engine.now) 0.0 t.cores;
  }
