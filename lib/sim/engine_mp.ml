(** Multi-core timing engine (extension of [Engine] to the paper's 8-core
    platform).

    Each core owns its private L1D, write buffer, persist buffer and RBT;
    the L2 and deeper levels, the memory controllers' WPQs and the
    persist-path bandwidth are shared. Per-thread commit traces (from
    [Cwsp_interp.Multi]) are replayed in global time order: at every step
    the core with the smallest local clock consumes its next event, so
    shared-queue contention is observed in the order a real machine would
    produce it.

    Simplification versus the paper's gem5 runs: no coherence traffic is
    modeled — the PB is coherence-agnostic by design (Section V-A1) and
    the workloads are data-race-free, so coherence misses would add a
    scheme-independent constant to both sides of every ratio. *)

open Cwsp_interp

type core = {
  cid : int;
  l1 : Cache.t;
  wb : Tsq.t;
  pb : Engine.pb;
  rbt : Engine.rbt;
  mutable now : float;
  mutable all_persist_max : float;
  mutable region_persist_max : float;
  stats : Stats.t;
  trace : Trace.t;
  mutable pos : int;
}

type t = {
  cfg : Config.t;
  shared : Cache.t list; (* L2 and deeper *)
  shared_hit_ns : float list;
  wpqs : Tsq.t array;
  line_persist : (int, float) Hashtbl.t;
  cores : core array;
}

let create (cfg : Config.t) (traces : Trace.t array) : t =
  let l1_level, shared_levels =
    match cfg.levels with
    | l1 :: rest -> (l1, rest)
    | [] -> invalid_arg "Engine_mp: empty hierarchy"
  in
  {
    cfg;
    shared = List.map Cache.create shared_levels;
    shared_hit_ns = List.map (fun (l : Config.cache_level) -> l.hit_ns) shared_levels;
    wpqs = Array.init cfg.n_mcs (fun _ -> Tsq.create ~size:cfg.wpq_entries);
    line_persist = Hashtbl.create 4096;
    cores =
      Array.mapi
        (fun cid trace ->
          {
            cid;
            l1 = Cache.create l1_level;
            wb = Tsq.create ~size:cfg.wb_entries;
            pb = Engine.pb_create cfg.pb_entries;
            rbt = Engine.rbt_create cfg.rbt_entries;
            now = 0.0;
            all_persist_max = 0.0;
            region_persist_max = 0.0;
            stats = Stats.create ();
            trace;
            pos = 0;
          })
        traces;
  }

(* private L1 then the shared levels *)
let mem_access t (c : core) ~addr ~write =
  let r1 = Cache.access c.l1 ~addr ~write in
  let l1_evict = r1.evicted_dirty_line in
  if r1.hit then (2.0, false, l1_evict)
  else begin
    let rec walk caches lats =
      match (caches, lats) with
      | [], [] -> (t.cfg.mem.read_ns, true)
      | cache :: cs, lat :: ls ->
        let r = Cache.access cache ~addr ~write:false in
        (match r.evicted_dirty_line with
        | Some line -> (
          match cs with
          | next :: _ -> Cache.install_dirty next ~line_addr:line
          | [] -> ())
        | None -> ());
        if r.hit then (lat, false) else walk cs ls
      | _ -> assert false
    in
    let lat, from_mem = walk t.shared t.shared_hit_ns in
    (lat, from_mem, l1_evict)
  end

(* per-core persist path (Fig. 3b: each core has its own path to the
   MCs); the WPQs and media bandwidth behind them are shared *)
let persist t (c : core) ~addr ~commit ~logged =
  let cfg = t.cfg in
  let gap = 8.0 /. cfg.path_bandwidth_gbs in
  let admit, send = Engine.pb_admit_send c.pb ~ready:commit ~gap in
  let line = Layout.line_of_addr addr in
  let mc = Config.mc_of_line cfg line in
  let arrive = send +. cfg.path_latency_ns +. Config.numa_of_mc cfg mc in
  let per_entry = 8.0 /. cfg.mem.write_bw_gbs in
  let service = if logged then per_entry *. 1.125 else per_entry in
  let wpq_admit, _done = Tsq.push t.wpqs.(mc) ~ready:arrive ~service in
  Engine.pb_record_free c.pb wpq_admit;
  c.all_persist_max <- Float.max c.all_persist_max wpq_admit;
  c.region_persist_max <- Float.max c.region_persist_max wpq_admit;
  Hashtbl.replace t.line_persist line wpq_admit;
  c.stats.nvm_writes <- c.stats.nvm_writes + 1;
  if logged then c.stats.log_writes <- c.stats.log_writes + 1;
  Float.max 0.0 (admit -. commit)

let handle_store t c ~addr ~is_ckpt ~persisting =
  if is_ckpt then c.stats.ckpt_stores <- c.stats.ckpt_stores + 1
  else c.stats.stores <- c.stats.stores + 1;
  let commit = c.now +. t.cfg.cycle_ns in
  c.now <- commit;
  let _, _, l1_evict = mem_access t c ~addr ~write:true in
  (match l1_evict with
  | Some line ->
    let delay_start =
      if persisting then
        match Hashtbl.find_opt t.line_persist line with
        | Some p -> Float.max c.now p
        | None -> c.now
      else c.now
    in
    let admit, _ = Tsq.push c.wb ~ready:delay_start ~service:t.cfg.wb_drain_ns in
    (match t.shared with
    | l2 :: _ -> Cache.install_dirty l2 ~line_addr:line
    | [] -> ());
    let stall = Float.max 0.0 (admit -. delay_start) in
    c.stats.stall_wb_ns <- c.stats.stall_wb_ns +. stall;
    c.now <- c.now +. stall
  | None -> ());
  if persisting then begin
    let stall = persist t c ~addr ~commit ~logged:true in
    c.stats.stall_pb_ns <- c.stats.stall_pb_ns +. stall;
    c.now <- c.now +. stall
  end

let handle_load t c ~addr =
  c.stats.loads <- c.stats.loads + 1;
  let lat, _from_mem, _ = mem_access t c ~addr ~write:false in
  let charged = if lat <= 2.0 then lat else lat /. t.cfg.mlp in
  c.now <- c.now +. t.cfg.cycle_ns +. charged

let step t (c : core) ~persisting =
  let ev = Trace.get c.trace c.pos in
  c.pos <- c.pos + 1;
  let tag = Event.tag ev in
  if tag = Event.tag_alu then c.now <- c.now +. t.cfg.cycle_ns
  else if tag = Event.tag_load then handle_load t c ~addr:(Event.payload ev)
  else if tag = Event.tag_store then
    handle_store t c ~addr:(Event.payload ev) ~is_ckpt:false ~persisting
  else if tag = Event.tag_ckpt then
    handle_store t c ~addr:(Event.payload ev) ~is_ckpt:true ~persisting
  else if tag = Event.tag_flush || tag = Event.tag_pfence then
    (* the multi-core engine models only the implicit cWSP persist path;
       explicit-persistency hints cost their issue cycle *)
    c.now <- c.now +. t.cfg.cycle_ns
  else if tag = Event.tag_boundary then begin
    c.stats.boundaries <- c.stats.boundaries + 1;
    if persisting then begin
      let completion = Float.max c.now c.region_persist_max in
      let stall = Engine.rbt_push c.rbt ~now:c.now ~completion in
      c.stats.stall_rbt_ns <- c.stats.stall_rbt_ns +. stall;
      c.now <- c.now +. stall
    end;
    c.region_persist_max <- c.now
  end
  else begin
    (* fence or atomic: sync point; drains this core's pending persists *)
    (if tag = Event.tag_atomic then begin
       c.stats.atomics <- c.stats.atomics + 1;
       c.now <- c.now +. t.cfg.atomic_ns;
       handle_load t c ~addr:(Event.payload ev);
       handle_store t c ~addr:(Event.payload ev) ~is_ckpt:false ~persisting
     end
     else begin
       c.stats.fences <- c.stats.fences + 1;
       c.now <- c.now +. t.cfg.cycle_ns
     end);
    if persisting then begin
      let stall = Float.max 0.0 (c.all_persist_max -. c.now) in
      c.stats.stall_sync_ns <- c.stats.stall_sync_ns +. stall;
      c.now <- c.now +. stall
    end
  end

type result = {
  per_core : Stats.t array;
  elapsed_ns : float; (* completion of the slowest core *)
}

(** Replay per-thread traces on an N-core machine. [scheme] is either
    [`Baseline] or [`Cwsp] (the full cWSP hardware). *)
let run_traces (cfg : Config.t) (scheme : [ `Baseline | `Cwsp ])
    (traces : Trace.t array) : result =
  let t = create cfg traces in
  let persisting = scheme = `Cwsp in
  (* global time order: always advance the core with the smallest clock *)
  let live () =
    Array.exists (fun c -> c.pos < Trace.length c.trace) t.cores
  in
  while live () do
    let best = ref None in
    Array.iter
      (fun c ->
        if c.pos < Trace.length c.trace then
          match !best with
          | None -> best := Some c
          | Some b -> if c.now < b.now then best := Some c)
      t.cores;
    match !best with None -> assert false | Some c -> step t c ~persisting
  done;
  Array.iter
    (fun c ->
      c.stats.instructions <- Trace.length c.trace;
      c.stats.elapsed_ns <- c.now;
      c.stats.l1_miss_rate <- Cache.miss_rate c.l1)
    t.cores;
  {
    per_core = Array.map (fun c -> c.stats) t.cores;
    elapsed_ns =
      Array.fold_left (fun acc c -> Float.max acc c.now) 0.0 t.cores;
  }
