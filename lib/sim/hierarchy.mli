(** The cache-hierarchy walker: one [Cache.t] per configured level; an
    access is served by the first hitting level and allocates the line in
    every level above. Dirty L1 evictions are surfaced to the engine (they
    enter the L1D write buffer); inner-level evictions install one level
    down; LLC evictions are counted (persist-path schemes silently drop
    them — the data already traveled the persist path). *)

type t = {
  cfg : Config.t;
  caches : Cache.t array;
  hit_ns : float array;
  mutable nvm_reads : int;
  mutable llc_dirty_evictions : int;
  mutable last_l1_evict : int; (** line address, -1 = none; see [probe] *)
}

val create : Config.t -> t

type outcome = {
  latency_ns : float;             (** serving-point latency, pre-MLP *)
  hit_level : int;                (** 0-based; = number of levels for memory *)
  l1_dirty_eviction : int option; (** line entering the L1D write buffer *)
  from_memory : bool;
  llc_eviction : bool;
}

val access : t -> addr:int -> write:bool -> outcome

(** {2 Allocation-free access (the engines' hot path)} *)

(** Flags packed into a [probe] result alongside the hit level
    ([land level_mask], = number of levels when served by memory). *)
val level_mask : int

val from_memory_bit : int
val l1_evict_bit : int
val llc_evict_bit : int

(** [access] without the record: the caller unpacks the level and flags
    and reads the serving latency from [hit_ns]/[cfg.mem.read_ns]
    itself. A dirty L1 eviction's line address is left in
    [last_l1_evict] until the next probe. *)
val probe : t -> addr:int -> write:bool -> int

val last_l1_evict : t -> int

(** A writeback arriving from the L1D write buffer installs into L2. *)
val wb_install : t -> line_addr:int -> unit

val l1_miss_rate : t -> float
val llc_miss_rate : t -> float
