(** Set-associative write-back, write-allocate cache with LRU replacement.

    Tag storage is flat int arrays (DESIGN.md §12): entry [set * assoc
    + way] packs the tag and dirty bit into one int ([tag lsl 1 lor
    dirty], -1 = invalid) with the LRU clock in a parallel array, so a
    probe is a handful of unboxed int loads instead of a hash lookup
    plus a chase through boxed way records. Caches too large to
    preallocate (beyond [dense_limit] ways) fall back to a hash table
    of per-set flat arrays, costing memory proportional to the sets
    actually touched. *)

type t = {
  level : Config.cache_level;
  nsets : int;
  assoc : int;
  set_mask : int; (* nsets - 1 when nsets is a power of two, else -1 *)
  tag_shift : int; (* log2 nsets when [set_mask >= 0] *)
  tags : int array; (* dense: (tag lsl 1) lor dirty; -1 invalid *)
  lrus : int array; (* dense: LRU clock per entry *)
  sets : (int, int array) Hashtbl.t; (* sparse: [tags.. ; lrus..] *)
  mutable tick : int; (* LRU clock *)
  mutable hits : int;
  mutable misses : int;
  mutable last_dirty_evict : int; (* line address, -1 = none; see [probe] *)
}

let line_bytes = 64

(* Largest tag store preallocated outright: 4M ways = two 32MB arrays.
   Every hierarchy in [Config] fits (the 64MB direct-mapped DRAM cache
   is 1M ways). *)
let dense_limit = 1 lsl 22

let create (level : Config.cache_level) =
  let nsets = max 1 (level.size_bytes / (line_bytes * level.assoc)) in
  let dense = nsets * level.assoc <= dense_limit in
  let pow2 = nsets land (nsets - 1) = 0 in
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n lsr 1) in
  {
    level;
    nsets;
    assoc = level.assoc;
    set_mask = (if pow2 then nsets - 1 else -1);
    tag_shift = (if pow2 then log2 nsets else 0);
    tags = (if dense then Array.make (nsets * level.assoc) (-1) else [||]);
    lrus = (if dense then Array.make (nsets * level.assoc) 0 else [||]);
    sets = Hashtbl.create (if dense then 1 else 4096);
    tick = 0;
    hits = 0;
    misses = 0;
    last_dirty_evict = -1;
  }

type result = {
  hit : bool;
  evicted_dirty_line : int option; (* line address of a dirty eviction *)
}

(* Probe the [assoc] entries of one set held in [tags]/[lrus] at
   [base]. [toff] is the tag-array offset of the set's lru slots
   relative to [base] within the same array (0 when [lrus] is a
   separate array, [assoc] for the sparse per-set layout). Shared by
   the dense and sparse paths; closed over nothing, so no closure. *)
let[@inline] probe_set t tags lrus ~base ~loff ~set_idx ~tag ~write =
  let assoc = t.assoc in
  (* non-escaping refs compile to registers *)
  let found = ref (-1) in
  let i = ref 0 in
  while !found < 0 && !i < assoc do
    if Array.unsafe_get tags (base + !i) asr 1 = tag then found := !i;
    incr i
  done;
  if !found >= 0 then begin
    let e = base + !found in
    t.hits <- t.hits + 1;
    Array.unsafe_set lrus (loff + e) t.tick;
    if write then
      Array.unsafe_set tags e (Array.unsafe_get tags e lor 1);
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* victim: invalid way if any, else least-recently used
       (ties keep the lowest way index) *)
    let victim = ref 0 in
    let i = ref 0 in
    let stop = ref false in
    while (not !stop) && !i < assoc do
      if Array.unsafe_get tags (base + !i) < 0 then begin
        victim := !i;
        stop := true
      end
      else begin
        if
          Array.unsafe_get lrus (loff + base + !i)
          < Array.unsafe_get lrus (loff + base + !victim)
        then victim := !i;
        incr i
      end
    done;
    let e = base + !victim in
    let old = Array.unsafe_get tags e in
    if old >= 0 && old land 1 = 1 then
      t.last_dirty_evict <- (((old asr 1) * t.nsets) + set_idx) * line_bytes;
    Array.unsafe_set tags e ((tag lsl 1) lor Bool.to_int write);
    Array.unsafe_set lrus (loff + e) t.tick;
    false
  end

(** Allocation-free access (the engines' hot path): returns whether the
    line containing [addr] hit, allocating it on miss; [write] marks it
    dirty. A dirty eviction leaves its line address in
    [last_dirty_evict] (-1 when none) until the next probe. *)
let probe t ~addr ~write : bool =
  t.tick <- t.tick + 1;
  t.last_dirty_evict <- -1;
  let line = addr / line_bytes in
  let set_idx, tag =
    if t.set_mask >= 0 then (line land t.set_mask, line lsr t.tag_shift)
    else (line mod t.nsets, line / t.nsets)
  in
  if Array.length t.tags > 0 then
    probe_set t t.tags t.lrus ~base:(set_idx * t.assoc) ~loff:0 ~set_idx ~tag
      ~write
  else begin
    let arr =
      match Hashtbl.find t.sets set_idx with
      | a -> a
      | exception Not_found ->
        let a = Array.make (2 * t.assoc) (-1) in
        Array.fill a t.assoc t.assoc 0;
        Hashtbl.add t.sets set_idx a;
        a
    in
    probe_set t arr arr ~base:0 ~loff:t.assoc ~set_idx ~tag ~write
  end

let last_dirty_evict t = t.last_dirty_evict

(** Access the line containing [addr]; allocates on miss. [write] marks
    the line dirty. Record-returning wrapper over [probe]. *)
let access t ~addr ~write : result =
  let hit = probe t ~addr ~write in
  {
    hit;
    evicted_dirty_line =
      (if t.last_dirty_evict >= 0 then Some t.last_dirty_evict else None);
  }

(** Mark a line dirty without an access (used for writebacks arriving from
    an upper level); allocates like a write access. *)
let install_dirty t ~line_addr = ignore (probe t ~addr:line_addr ~write:true)

let miss_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.misses /. float_of_int total
