(** The cache hierarchy walker.

    Maintains one [Cache.t] per configured level; an access is served by
    the first hitting level (charged that level's latency) and allocates
    the line in every level above. Dirty evictions from the L1 are
    surfaced to the engine (they enter the L1D write buffer, which the
    stale-read machinery of Section V-A1 delays); dirty evictions from
    inner levels are installed one level down; dirty evictions from the
    LLC are counted — under persist-path schemes they are silently dropped
    (the data already traveled the persist path), in the baseline they are
    plain memory write-backs. *)

type t = {
  cfg : Config.t;
  caches : Cache.t array;
  hit_ns : float array; (* per level *)
  mutable nvm_reads : int;
  mutable llc_dirty_evictions : int;
  mutable last_l1_evict : int; (* line address, -1 = none; see [probe] *)
}

let create (cfg : Config.t) =
  {
    cfg;
    caches = Array.of_list (List.map Cache.create cfg.levels);
    hit_ns = Array.of_list (List.map (fun (l : Config.cache_level) -> l.hit_ns) cfg.levels);
    nvm_reads = 0;
    llc_dirty_evictions = 0;
    last_l1_evict = -1;
  }

type outcome = {
  latency_ns : float;             (* serving-point latency, before MLP scaling *)
  hit_level : int;                (* 0-based; number of levels = memory *)
  l1_dirty_eviction : int option; (* line address entering the L1D WB *)
  from_memory : bool;             (* served by main memory *)
  llc_eviction : bool;            (* caused a dirty LLC eviction *)
}

(* packed [probe] result *)
let level_mask = 63
let from_memory_bit = 64
let l1_evict_bit = 128
let llc_evict_bit = 256

(** Allocation-free access (the engines' hot path): the result packs the
    0-based hit level ([land level_mask]; = number of levels when served
    by memory) with the [from_memory_bit] / [l1_evict_bit] /
    [llc_evict_bit] flags. A dirty L1 eviction leaves its line address
    in [last_l1_evict] until the next probe; the serving latency is
    [hit_ns.(level)] (or [cfg.mem.read_ns] from memory), which the
    caller reads directly so no float crosses the call boundary. *)
(* Top-level (closed) recursion: a local [let rec] capturing [t]/[addr]
   would allocate a closure on every access. *)
let rec probe_walk t ~addr ~write n i flags =
  if i >= n then begin
    t.nvm_reads <- t.nvm_reads + 1;
    n lor from_memory_bit lor flags
  end
  else begin
    let hit = Cache.probe t.caches.(i) ~addr ~write:(write && i = 0) in
    let line = Cache.last_dirty_evict t.caches.(i) in
    let flags =
      if line < 0 then flags
      else if i = 0 then begin
        t.last_l1_evict <- line;
        flags lor l1_evict_bit
      end
      else if i = n - 1 then begin
        t.llc_dirty_evictions <- t.llc_dirty_evictions + 1;
        flags lor llc_evict_bit
      end
      else begin
        Cache.install_dirty t.caches.(i + 1) ~line_addr:line;
        flags
      end
    in
    if hit then i lor flags else probe_walk t ~addr ~write n (i + 1) flags
  end

let probe t ~addr ~write : int =
  t.last_l1_evict <- -1;
  probe_walk t ~addr ~write (Array.length t.caches) 0 0

let last_l1_evict t = t.last_l1_evict

let access t ~addr ~write : outcome =
  let n = Array.length t.caches in
  let code = probe t ~addr ~write in
  let hit_level = code land level_mask in
  {
    latency_ns =
      (if code land from_memory_bit <> 0 then t.cfg.mem.read_ns
       else t.hit_ns.(hit_level));
    hit_level;
    l1_dirty_eviction =
      (if code land l1_evict_bit <> 0 then Some t.last_l1_evict else None);
    from_memory = hit_level >= n;
    llc_eviction = code land llc_evict_bit <> 0;
  }

(** A writeback arriving from the L1D write buffer installs into L2 (or
    is dropped to memory accounting when the L1 is the only level). *)
let wb_install t ~line_addr =
  if Array.length t.caches > 1 then Cache.install_dirty t.caches.(1) ~line_addr

let l1_miss_rate t = Cache.miss_rate t.caches.(0)
let llc_miss_rate t = Cache.miss_rate t.caches.(Array.length t.caches - 1)
