(** Machine configuration.

    Defaults reproduce the paper's evaluated platform (Section IX): a
    Skylake-class core, 64KB L1D + 16MB shared L2, a 4GB direct-mapped
    DRAM cache in front of 32GB PMEM (Intel memory mode), 2 memory
    controllers with 24-entry battery-backed WPQs, a 4GB/s 8-byte-granule
    persist path with 20ns latency, a 50-entry persist buffer and a
    16-entry region boundary table. *)

type cache_level = {
  cname : string;
  size_bytes : int;
  assoc : int; (* 1 = direct-mapped *)
  hit_ns : float;
}

type t = {
  levels : cache_level list; (* L1D first, LLC last *)
  wb_entries : int;          (* L1D write buffer entries *)
  wb_drain_ns : float;       (* service: WB head -> L2 *)
  mem : Nvm.t;               (* main memory behind the cache hierarchy *)
  n_mcs : int;
  numa_extra_ns : float array; (* extra persist-path latency per MC *)
  wpq_entries : int;
  path_bandwidth_gbs : float;
  path_latency_ns : float;
  pb_entries : int;
  rbt_entries : int;
  cycle_ns : float;          (* one pipeline slot *)
  atomic_ns : float;         (* intrinsic cost of a locked RMW (all schemes) *)
  mlp : float;               (* effective memory-level parallelism of the
                                OoO core: demand-miss latency is divided by
                                this before being charged to the timeline *)
}

let kib n = n * 1024
let mib n = n * 1024 * 1024

(* The hierarchy is scaled down ~64x from the paper's platform (64KB L1 /
   16MB L2 / 4GB DRAM cache) so that the synthetic workloads' megabyte
   footprints produce the same relative miss behaviour the paper's
   multi-gigabyte reference inputs produce on the full-size hierarchy.
   Latencies are kept at the paper's values — only capacities scale. *)
let l1d = { cname = "L1D"; size_bytes = kib 16; assoc = 8; hit_ns = 2.0 }
let l2_shared = { cname = "L2"; size_bytes = kib 256; assoc = 16; hit_ns = 22.0 }

(* private L2 + shared L3, the deeper hierarchy of Fig. 20 *)
let l2_private = { cname = "L2p"; size_bytes = kib 64; assoc = 8; hit_ns = 7.0 }
let l3_shared = { cname = "L3"; size_bytes = kib 256; assoc = 16; hit_ns = 22.0 }

(* L4 used in the Fig. 1 motivation sweep (paper: 128MB eDRAM-style) *)
let l4 = { cname = "L4"; size_bytes = mib 2; assoc = 16; hit_ns = 41.0 }

let dram_cache = { cname = "DRAM$"; size_bytes = mib 64; assoc = 1; hit_ns = 55.0 }

let default =
  {
    levels = [ l1d; l2_shared; dram_cache ];
    wb_entries = 32;
    wb_drain_ns = 4.0;
    mem = Nvm.pmem;
    n_mcs = 2;
    numa_extra_ns = [| 0.0; 30.0 |];
    wpq_entries = 24;
    path_bandwidth_gbs = 4.0;
    path_latency_ns = 20.0;
    pb_entries = 50;
    rbt_entries = 16;
    cycle_ns = 0.5;
    atomic_ns = 12.0;
    mlp = 4.0;
  }

(** Fig. 20 platform: private L2, shared L3, DRAM cache. *)
let with_l3 =
  { default with levels = [ l1d; l2_private; l3_shared; dram_cache ] }

(** Ideal partial-system persistence platform (Fig. 18): the DRAM cache
    cannot be enabled, so the hierarchy ends at the SRAM LLC and every
    miss goes to NVM. *)
let psp_no_dram_cache = { default with levels = [ l1d; l2_shared ] }

(** Fig. 1 hierarchies: 2..5 levels in front of the main memory. The
    5-level configuration appends the 4GB DRAM cache. *)
let fig1_levels n =
  let base =
    match n with
    | 2 -> [ l1d; l2_private ]
    | 3 -> [ l1d; l2_private; l3_shared ]
    | 4 -> [ l1d; l2_private; l3_shared; l4 ]
    | 5 -> [ l1d; l2_private; l3_shared; l4; dram_cache ]
    | _ -> invalid_arg "Config.fig1_levels: 2..5"
  in
  { default with levels = base }

(** CXL platform of Section IX-C: local DRAM as LLC atop a CXL device. *)
let cxl device = { default with mem = device }

(** Stable content fingerprint of a configuration, covering every field
    that affects simulation timing. Used as a memoization-key component so
    that two distinct platforms can never alias, no matter how an
    experiment labels them. *)
let fingerprint t =
  let buf = Buffer.create 128 in
  List.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d:%d:%g;" l.cname l.size_bytes l.assoc l.hit_ns))
    t.levels;
  Buffer.add_string buf
    (Printf.sprintf "|wb%d:%g|%s:%g:%g:%g|mc%d" t.wb_entries t.wb_drain_ns
       t.mem.mem_name t.mem.read_ns t.mem.write_ns t.mem.write_bw_gbs t.n_mcs);
  Array.iter (fun x -> Buffer.add_string buf (Printf.sprintf ":%g" x))
    t.numa_extra_ns;
  Buffer.add_string buf
    (Printf.sprintf "|wpq%d|bw%g|lat%g|pb%d|rbt%d|cyc%g|at%g|mlp%g"
       t.wpq_entries t.path_bandwidth_gbs t.path_latency_ns t.pb_entries
       t.rbt_entries t.cycle_ns t.atomic_ns t.mlp);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let entry_gap_ns t = 8.0 /. t.path_bandwidth_gbs
(* WPQ media drain per 8-byte entry *)
let wpq_service_ns t = 8.0 /. t.mem.write_bw_gbs

(* 256-byte channel interleave across memory controllers. *)
let mc_of_line t line_addr = (line_addr lsr 8) mod t.n_mcs
let numa_of_mc t mc =
  if mc < Array.length t.numa_extra_ns then t.numa_extra_ns.(mc) else 0.0
