(** Machine configuration. Defaults reproduce the paper's platform
    (Section IX) with capacities scaled 64x down to match the synthetic
    workloads (EXPERIMENTS.md): L1D + shared L2 + DRAM cache in front of
    PMEM, 2 memory controllers with battery-backed WPQs, a 4GB/s 8-byte
    persist path, a 50-entry persist buffer and a 16-entry RBT. *)

type cache_level = {
  cname : string;
  size_bytes : int;
  assoc : int; (** 1 = direct-mapped *)
  hit_ns : float;
}

type t = {
  levels : cache_level list;   (** L1D first, LLC last *)
  wb_entries : int;            (** L1D write-buffer entries *)
  wb_drain_ns : float;         (** service: WB head -> L2 *)
  mem : Nvm.t;                 (** main memory behind the hierarchy *)
  n_mcs : int;
  numa_extra_ns : float array; (** extra persist-path latency per MC *)
  wpq_entries : int;
  path_bandwidth_gbs : float;
  path_latency_ns : float;
  pb_entries : int;
  rbt_entries : int;
  cycle_ns : float;            (** one pipeline slot *)
  atomic_ns : float;           (** intrinsic locked-RMW cost (all schemes) *)
  mlp : float;                 (** demand-miss latency is divided by this *)
}

val kib : int -> int
val mib : int -> int

val l1d : cache_level
val l2_shared : cache_level
val l2_private : cache_level
val l3_shared : cache_level
val l4 : cache_level
val dram_cache : cache_level

(** The paper's default platform (PMEM memory mode). *)
val default : t

(** Fig. 20: private L2 + shared L3 in front of the DRAM cache. *)
val with_l3 : t

(** Ideal PSP platform (Fig. 18): hierarchy ends at the SRAM LLC. *)
val psp_no_dram_cache : t

(** Fig. 1 hierarchies: 2..5 levels in front of main memory. *)
val fig1_levels : int -> t

(** CXL platform of Section IX-C. *)
val cxl : Nvm.t -> t

(** Stable content fingerprint covering every timing-relevant field; a
    memoization-key component (two distinct platforms can never alias). *)
val fingerprint : t -> string

(** Persist-path send slot per 8-byte entry. *)
val entry_gap_ns : t -> float

(** WPQ media drain per 8-byte entry. *)
val wpq_service_ns : t -> float

(** 256-byte channel interleave across memory controllers. *)
val mc_of_line : t -> int -> int

val numa_of_mc : t -> int -> float
