(** Figure 1 (motivation): normalized slowdown of CXL PMEM main memory
    against CXL DRAM main memory, as the cache hierarchy deepens from 2 to
    5 levels (the 5th is the DRAM cache). Paper: 2.14x at 2 levels
    shrinking to 1.34x at 5 levels, over memory-intensive applications.
    No persistence scheme is involved — this is the case for WSP's
    deep-hierarchy premise. *)

open Cwsp_sim
open Cwsp_core
open Cwsp_workloads

let title = "Fig 1: CXL-PMEM vs CXL-DRAM slowdown, 2..5 cache levels"

let baseline = Cwsp_schemes.Schemes.baseline

let configs_at levels =
  let base = Config.fig1_levels levels in
  ({ base with mem = Nvm.cxl_pmem }, { base with mem = Nvm.cxl_dram })

let series =
  List.map
    (fun levels ->
      let pmem_cfg, dram_cfg = configs_at levels in
      {
        Exp.col = Printf.sprintf "%d levels" levels;
        points =
          (fun w ->
            [ Job.stats w baseline pmem_cfg; Job.stats w baseline dram_cfg ]);
        eval =
          (fun w ->
            Stats.slowdown
              (Api.stats w baseline pmem_cfg)
              ~baseline:(Api.stats w baseline dram_cfg));
      })
    [ 2; 3; 4; 5 ]

let plan () = Exp.plan ~subset:Registry.memory_intensive series

let render () =
  Exp.banner title;
  Exp.per_workload_table ~subset:Registry.memory_intensive ~series ()

let run () = Exp.execute_then_render ~plan ~render ()
