(** Figure 25: sensitivity to persist-buffer size (20/40/50/60 entries).
    Paper: insensitive; only 7% even at 20 entries. *)

open Cwsp_sim

let title = "Fig 25: persist buffer (PB) size sweep"

let series =
  Exp.cwsp_sweep_series
    (List.map
       (fun n ->
         (Printf.sprintf "PB-%d" n, { Config.default with pb_entries = n }))
       [ 20; 40; 50; 60 ])

let plan () = Exp.plan series

(* headline: the default 50-entry point *)
let render () =
  Exp.banner title;
  List.nth (Exp.per_suite_table ~series ()) 2

let run () = Exp.execute_then_render ~plan ~render ()
