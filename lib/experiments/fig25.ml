(** Figure 25: sensitivity to persist-buffer size (20/40/50/60 entries).
    Paper: insensitive; only 7% even at 20 entries. *)

open Cwsp_sim

let title = "Fig 25: persist buffer (PB) size sweep"

let series =
  Exp.cwsp_sweep_series
    (List.map
       (fun n ->
         (Printf.sprintf "PB-%d" n, { Config.default with pb_entries = n }))
       [ 20; 40; 50; 60 ])

let plan () = Exp.plan series

let render () =
  Exp.banner title;
  Exp.per_suite_table ~series ()

let run () = Exp.execute_then_render ~plan ~render ()
