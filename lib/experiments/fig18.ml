(** Figure 18: cWSP against ideal partial-system persistence
    (BBB/eADR/LightPC — no persist cost, but the DRAM cache cannot be
    enabled). Paper: cWSP ~3%, ideal PSP ~52% slowdown on the
    memory-intensive subset — the case for whole-system persistence. *)

open Cwsp_workloads

let title = "Fig 18: cWSP vs ideal PSP (BBB/eADR/LightPC)"

let series =
  let cfg = Cwsp_sim.Config.default in
  [
    Exp.slowdown_series "cWSP" Cwsp_schemes.Schemes.cwsp cfg;
    Exp.slowdown_series "idealPSP" Cwsp_schemes.Schemes.psp_ideal cfg;
  ]

let plan () = Exp.plan ~subset:Registry.memory_intensive series

let render () =
  Exp.banner title;
  Exp.per_workload_table ~subset:Registry.memory_intensive ~series ()

let run () = Exp.execute_then_render ~plan ~render ()
