(** Figure 20: cWSP on a deeper SRAM hierarchy (private L2 + shared L3 in
    front of the DRAM cache). Paper: 8% average overhead. *)

let title = "Fig 20: cWSP slowdown with an added L3"

let series =
  [
    Exp.slowdown_series "cWSP-L3" Cwsp_schemes.Schemes.cwsp
      Cwsp_sim.Config.with_l3;
  ]

let plan () = Exp.plan series

let render () =
  Exp.banner title;
  List.hd (Exp.per_workload_table ~series ())

let run () = Exp.execute_then_render ~plan ~render ()
