(** Section IX-N: hardware storage overhead.
    Paper: cWSP needs only the 16-entry x 11-byte RBT = 176 bytes per
    core (the PB reuses Intel's existing 1KB write-combining buffer),
    versus Capri's (N+1) x M x 18KB — 54KB per core with one MC, 88MB
    for a 128-core, 12-MC EPYC. *)

let title = "Hardware storage overhead (Section IX-N)"

let cwsp_bytes ~rbt_entries = Cwsp_sim.Engine.storage_bytes ~rbt_entries

let capri_bytes_per_core ~n_mcs = (n_mcs + 1) * 18 * 1024

(* pure arithmetic — no simulation points to declare *)
let plan () : Cwsp_core.Job.t list = []

let render () =
  Exp.banner title;
  let cwsp = cwsp_bytes ~rbt_entries:Cwsp_sim.Config.default.rbt_entries in
  let capri2 = capri_bytes_per_core ~n_mcs:2 in
  Cwsp_util.Table.print
    ~headers:[ "scheme"; "per-core bytes"; "128-core 12-MC total" ]
    [
      [ "cWSP (16-entry RBT)"; string_of_int cwsp;
        Printf.sprintf "%d KB" (cwsp * 128 / 1024) ];
      [ "Capri (2 MCs)"; string_of_int capri2;
        Printf.sprintf "%d MB" ((12 + 1) * 18 * 128 / 1024) ];
    ];
  Printf.printf "paper: 176 bytes vs 54KB (346x); measured ratio: %.0fx\n"
    (float_of_int (capri_bytes_per_core ~n_mcs:1) /. float_of_int cwsp);
  cwsp

let run () = Exp.execute_then_render ~plan ~render ()
