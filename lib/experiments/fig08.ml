(** Figure 8: WPQ hits per one million instructions under cWSP.
    Paper: 0.98 on average — loads that reach main memory while the
    target word is still pending in a WPQ are vanishingly rare, which is
    why delaying them (Section V-A2) is free. *)

open Cwsp_sim

let title = "Fig 8: WPQ hits per 1M instructions (cWSP)"

let series =
  [
    Exp.stats_series "WPQ-HPMI" Cwsp_schemes.Schemes.cwsp Config.default
      Stats.wpq_hits_per_minstr;
  ]

let plan () = Exp.plan series

let render () =
  Exp.banner title;
  Exp.per_workload_table ~agg:Exp.Mean ~series ()

let run () = Exp.execute_then_render ~plan ~render ()
