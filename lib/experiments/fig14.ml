(** Figure 14: cWSP against prior WSP schemes — ReplayCache and Capri —
    at 4GB/s (practical) and 32GB/s (ideal) persist-path bandwidth.
    Paper: ReplayCache ~4.3x, Capri-4GB ~1.27, cWSP-4GB ~1.06; Capri only
    matches cWSP with the ideal path. *)

open Cwsp_sim
open Cwsp_schemes

let title = "Fig 14: cWSP vs ReplayCache and Capri (4GB/s and 32GB/s)"

let cfg_bw bw = { Config.default with path_bandwidth_gbs = bw }

let series =
  [
    Exp.slowdown_series "ReplayCache" Schemes.replaycache (cfg_bw 4.0);
    Exp.slowdown_series "Capri-4GB" Schemes.capri (cfg_bw 4.0);
    Exp.slowdown_series "Capri-32GB" Schemes.capri (cfg_bw 32.0);
    Exp.slowdown_series "cWSP-4GB" Schemes.cwsp (cfg_bw 4.0);
    Exp.slowdown_series "cWSP-32GB" Schemes.cwsp (cfg_bw 32.0);
  ]

let plan () = Exp.plan series

(* headline: the cWSP-4GB overall gmean (the paper's ~1.06 claim) *)
let render () =
  Exp.banner title;
  List.nth (Exp.per_suite_table ~series ()) 3

let run () = Exp.execute_then_render ~plan ~render ()
