(** Shared infrastructure for the per-figure experiment drivers, built
    around the plan/execute/render split (DESIGN.md §5):

    - {b plan} — a driver declares its simulation points as pure
      [Cwsp_core.Job.t] values; a [series] pairs a table column with both
      the points it needs and the function that reads the memoized
      result.
    - {b execute} — [Cwsp_core.Executor.run] deduplicates the points,
      generates each shared trace once and replays the timing runs
      across a domain pool.
    - {b render} — the table helpers below iterate workloads and series
      in declaration order, so output is deterministic and identical for
      any pool width.

    Conventions: every driver prints the same series the paper's figure
    plots — per-workload values with per-suite and overall geometric
    means, or per-suite series for the sweeps — and returns the headline
    number(s) so the integration tests can assert the reproduced *shape*
    (who wins, by roughly what factor). *)

open Cwsp_util
open Cwsp_workloads
open Cwsp_core

let workloads = Registry.all

(* Occupancy-style series contain zeros; slowdown-style series use the
   geometric mean like the paper. *)
type agg = Gmean | Mean

let aggregate agg xs =
  match agg with Gmean -> Stats.gmean xs | Mean -> Stats.mean xs

let banner title =
  let line = String.make (String.length title) '=' in
  Printf.printf "\n%s\n%s\n" title line

(** One table column: the simulation points it needs (plan side) and the
    evaluation reading their memoized results (render side). *)
type series = {
  col : string;
  points : Defs.t -> Job.t list;
  eval : Defs.t -> float;
}

(** Slowdown column: [scheme] vs the baseline on [cfg]. *)
let slowdown_series ?scale col scheme cfg =
  {
    col;
    points = (fun w -> Job.slowdown ?scale w ~scheme cfg);
    eval = (fun w -> Api.slowdown ?scale w ~scheme cfg);
  }

(** Metric column: [metric] over the stats of [scheme] on [cfg]. *)
let stats_series ?scale col scheme cfg metric =
  {
    col;
    points = (fun w -> [ Job.stats ?scale w scheme cfg ]);
    eval = (fun w -> metric (Api.stats ?scale w scheme cfg));
  }

(** Trace-metric column: [metric] over the commit trace of [compile]. *)
let trace_series ?scale col compile metric =
  {
    col;
    points = (fun w -> [ Job.trace ?scale w compile ]);
    eval = (fun w -> metric (Api.trace ?scale w compile));
  }

(** The plan of a series list over a workload subset. *)
let plan ?(subset = workloads) series =
  List.concat_map
    (fun (w : Defs.t) -> List.concat_map (fun s -> s.points w) series)
    subset

(** Per-workload table: one row per workload, one column per series, plus
    per-suite gmean rows and an overall gmean row. Returns the overall
    gmeans in series order. *)
let per_workload_table ?(subset = workloads) ?(agg = Gmean) ~series () =
  let headers = "workload" :: "suite" :: List.map (fun s -> s.col) series in
  let values =
    List.map (fun (w : Defs.t) -> (w, List.map (fun s -> s.eval w) series)) subset
  in
  let row_of (w : Defs.t) vs =
    w.name :: Defs.suite_name w.suite :: List.map Table.f2 vs
  in
  let suite_rows =
    Defs.all_suites
    |> List.filter_map (fun suite ->
           let vs = List.filter (fun ((w : Defs.t), _) -> w.suite = suite) values in
           if vs = [] then None
           else
             let gm i = aggregate agg (List.map (fun (_, v) -> List.nth v i) vs) in
             Some
               ("gmean" :: Defs.suite_name suite
               :: List.mapi (fun i _ -> Table.f2 (gm i)) series))
  in
  let overall =
    List.mapi
      (fun i _ -> aggregate agg (List.map (fun (_, v) -> List.nth v i) values))
      series
  in
  let all_row = "gmean" :: "All" :: List.map Table.f2 overall in
  let rows =
    List.map (fun (w, vs) -> row_of w vs) values @ suite_rows @ [ all_row ]
  in
  Table.print ~headers rows;
  overall

(** Per-suite table for the sweeps: one row per suite plus All; one column
    per series. Returns the All-gmean per series. *)
let per_suite_table ?(subset = workloads) ~series () =
  let headers = "suite" :: List.map (fun s -> s.col) series in
  let values =
    List.map (fun (w : Defs.t) -> (w, List.map (fun s -> s.eval w) series)) subset
  in
  let suite_row suite =
    let vs = List.filter (fun ((w : Defs.t), _) -> w.suite = suite) values in
    if vs = [] then None
    else
      let gm i = Stats.gmean (List.map (fun (_, v) -> List.nth v i) vs) in
      Some (Defs.suite_name suite :: List.mapi (fun i _ -> Table.f2 (gm i)) series)
  in
  let overall =
    List.mapi (fun i _ -> Stats.gmean (List.map (fun (_, v) -> List.nth v i) values)) series
  in
  let rows =
    List.filter_map suite_row Defs.all_suites
    @ [ "All" :: List.map Table.f2 overall ]
  in
  Table.print ~headers rows;
  overall

(** Series of a cWSP-slowdown sweep over platform variants: [variants]
    are (column header, config) pairs. *)
let cwsp_sweep_series variants =
  List.map
    (fun (name, cfg) -> slowdown_series name Cwsp_schemes.Schemes.cwsp cfg)
    variants

(** Standalone-run scaffold: execute the plan (on the harness-wide pool),
    then render. Keeps each driver's [run] a one-call reproduction of
    its figure. *)
let execute_then_render ~plan:p ~render () =
  Executor.run (p ());
  render ()
