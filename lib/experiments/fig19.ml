(** Figure 19: average number of dynamic instructions per idempotent
    region. Paper: 38.15 on average; with a 16-entry RBT the persist
    latency of the oldest region overlaps ~572 instructions of
    execution. *)

let title = "Fig 19: dynamic instructions per region (cWSP binary)"

let avg lens =
  match lens with
  | [] -> 1.0
  | _ ->
    float_of_int (List.fold_left ( + ) 0 lens) /. float_of_int (List.length lens)

let percentile lens p =
  match List.sort compare lens with
  | [] -> 1.0
  | sorted ->
    let n = List.length sorted in
    float_of_int (List.nth sorted (min (n - 1) (p * n / 100)))

let series =
  let over_lengths col metric =
    Exp.trace_series col Cwsp_compiler.Pipeline.cwsp (fun tr ->
        metric (Cwsp_interp.Trace.region_lengths tr))
  in
  [
    over_lengths "mean" avg;
    over_lengths "p50" (fun lens -> percentile lens 50);
    over_lengths "p90" (fun lens -> percentile lens 90);
  ]

let plan () = Exp.plan series

let render () =
  Exp.banner title;
  match Exp.per_workload_table ~series () with
  | overall :: _ ->
    Printf.printf "paper: 38.15 overall average; measured gmean of means: %.1f\n"
      overall;
    overall
  | _ -> assert false

let run () = Exp.execute_then_render ~plan ~render ()
