(** Recovery validation (extension — the paper's declared future work,
    Section VIII "No Power Failure Recovery Test").

    Injects power failures at spread-out points of each workload,
    executes the recovery protocol and checks NVM-state equality with a
    failure-free run. Also reports what the paper argues analytically:
    the recovery cost is tiny because only tens of instructions are
    re-executed.

    The plan declares the compiled binaries and traces (the shared,
    memoizable part); the crash injections themselves re-execute the
    machine with per-run state and stay in the render step. *)

open Cwsp_workloads

let title = "Recovery: crash injection + protocol validation"

(* Workloads exercised heavily here; the full sweep over all 38 runs in
   the test suite. *)
let sample = [ "lbm"; "radix"; "c"; "tatp"; "xz" ]

let plan () =
  List.map
    (fun name ->
      Cwsp_core.Job.trace (Registry.find_exn name) Cwsp_compiler.Pipeline.cwsp)
    sample

let validate_workload ?(crashes = 12) (w : Defs.t) =
  let tr = Cwsp_core.Api.trace w Cwsp_compiler.Pipeline.cwsp in
  let total = Cwsp_interp.Trace.length tr in
  let ok = ref 0 and failed = ref 0 and restored = ref 0 in
  for i = 0 to crashes - 1 do
    let crash_at = 1 + (i * (total - 2) / crashes) in
    match Cwsp_core.Api.validate_recovery ~seed:(7000 + i) ~crash_at w with
    | Ok r ->
      incr ok;
      restored := !restored + r.restored_registers
    | Error _ -> incr failed
  done;
  (!ok, !failed, float_of_int !restored /. float_of_int (max 1 !ok))

let render () =
  Exp.banner title;
  let rows =
    List.map
      (fun name ->
        let w = Registry.find_exn name in
        let ok, failed, avg_restored = validate_workload w in
        [ w.name; string_of_int ok; string_of_int failed;
          Printf.sprintf "%.1f" avg_restored ])
      sample
  in
  Cwsp_util.Table.print
    ~headers:[ "workload"; "recoveries ok"; "failed"; "avg regs restored" ]
    rows;
  let total_failed =
    List.fold_left (fun acc row -> acc + int_of_string (List.nth row 2)) 0 rows
  in
  Printf.printf "crash-consistency violations: %d\n" total_failed;
  total_failed

let run () = Exp.execute_then_render ~plan ~render ()
