(** Multi-core experiment (extension): cWSP overhead as core count grows.

    The paper's platform has 8 cores sharing two memory controllers; this
    experiment reproduces the systemic effect — more cores multiply
    persist traffic into the same shared WPQs and persist-path bandwidth,
    so cWSP's overhead grows with the thread count while staying moderate
    thanks to MC speculation. Sync-heavy workloads additionally pay
    persist drains at every critical-section boundary (Section VIII).

    The multi-core engine ([Engine_mp]) consumes per-thread traces rather
    than [Api]'s single-threaded memo pipeline, so this driver has no
    shareable plan points; its cells compute during render. *)

let title = "MP (extension): cWSP overhead vs core count (shared MCs)"

(* a server provisions more NVM DIMMs per MC than a single-DIMM testbed:
   the provisioned variant quadruples the media write bandwidth *)
let provisioned (cfg : Cwsp_sim.Config.t) =
  { cfg with mem = { cfg.mem with write_bw_gbs = cfg.mem.write_bw_gbs *. 4.0 } }

let slowdown ?(cfg = Cwsp_sim.Config.default) (w : Cwsp_workloads.W_parallel.t)
    ~threads =
  let compile config =
    (Cwsp_compiler.Pipeline.compile ~config (w.pbuild ~scale:1 ~threads)).prog
  in
  let traces prog =
    Cwsp_interp.Oracle.spmd_traces_of_program ~label:w.pname prog ~threads
      ~worker:w.worker
  in
  let base =
    Cwsp_sim.Engine_mp.run_traces cfg `Baseline
      (traces (compile Cwsp_compiler.Pipeline.baseline))
  in
  let cwsp =
    Cwsp_sim.Engine_mp.run_traces cfg `Cwsp
      (traces (compile Cwsp_compiler.Pipeline.cwsp))
  in
  cwsp.elapsed_ns /. base.elapsed_ns

let plan () : Cwsp_core.Job.t list = []

let render () =
  Exp.banner title;
  let thread_counts = [ 1; 2; 4; 8 ] in
  let values =
    List.concat_map
      (fun (w : Cwsp_workloads.W_parallel.t) ->
        [
          ( w.pname ^ " (1 DIMM/MC)",
            true,
            List.map (fun threads -> slowdown w ~threads) thread_counts );
          ( w.pname ^ " (4 DIMM/MC)",
            false,
            List.map
              (fun threads ->
                slowdown ~cfg:(provisioned Cwsp_sim.Config.default) w ~threads)
              thread_counts );
        ])
      [
        Cwsp_workloads.W_parallel.psweep;
        Cwsp_workloads.W_parallel.ptransactions;
      ]
  in
  Cwsp_util.Table.print
    ~headers:("workload" :: List.map (Printf.sprintf "%d cores") thread_counts)
    (List.map
       (fun (name, _, vs) -> name :: List.map Cwsp_util.Table.f2 vs)
       values);
  (* headline: gmean of the 8-core single-DIMM slowdowns (the paper's
     testbed provisioning) *)
  Cwsp_util.Stats.gmean
    (List.filter_map
       (fun (_, single_dimm, vs) ->
         if single_dimm then Some (List.nth vs 3) else None)
       values)

let run () = Exp.execute_then_render ~plan ~render ()
