(** Design-choice ablations (extension): the alternatives DESIGN.md §5
    calls out, run head-to-head against full cWSP.

    - {b no MC speculation}: conservative region-end drains (the
      prior-work behaviour of Section II-B) instead of RBT admission;
    - {b no checkpoint pruning}: every live-out checkpointed (iDO-style
      compilation, Fig. 15 stage 5);
    - {b no scalar optimization}: the pipeline without the -O3-style
      passes — both binaries unoptimized, isolating how much instruction
      quality matters to the persistence overhead. *)

open Cwsp_compiler
open Cwsp_sim
open Cwsp_core

let title = "Ablation (extension): design choices vs full cWSP"

let no_opt_scheme : Cwsp_schemes.Schemes.t =
  {
    s_name = "cwsp-noopt";
    s_compile = { Pipeline.cwsp with optimize = false };
    s_engine = Engine.Cwsp Engine.cwsp_full;
    s_reconfig = (fun c -> c);
  }

let no_opt_baseline : Cwsp_schemes.Schemes.t =
  {
    s_name = "baseline-noopt";
    s_compile = { Pipeline.baseline with optimize = false };
    s_engine = Engine.Baseline;
    s_reconfig = (fun c -> c);
  }

(* unoptimized cWSP against an unoptimized baseline: isolates the
   persistence cost when both sides carry the same instruction bloat *)
let noopt_series =
  let cfg = Config.default in
  {
    Exp.col = "no-opt (both)";
    points =
      (fun w ->
        [ Job.stats w no_opt_baseline cfg; Job.stats w no_opt_scheme cfg ]);
    eval =
      (fun w ->
        Stats.slowdown
          (Api.stats w no_opt_scheme cfg)
          ~baseline:(Api.stats w no_opt_baseline cfg));
  }

let series =
  let cfg = Config.default in
  [
    Exp.slowdown_series "cWSP" Cwsp_schemes.Schemes.cwsp cfg;
    Exp.slowdown_series "no-MC-spec" Cwsp_schemes.Schemes.cwsp_no_speculation cfg;
    Exp.slowdown_series "no-pruning" Cwsp_schemes.Schemes.cwsp_no_prune cfg;
    noopt_series;
  ]

let plan () = Exp.plan series

let render () =
  Exp.banner title;
  Exp.per_suite_table ~series ()

let run () = Exp.execute_then_render ~plan ~render ()
