(** Figure 21: sensitivity to persist-path bandwidth (1..32 GB/s).
    Paper: overhead falls with bandwidth and flattens beyond 10GB/s —
    the 8-byte persist granularity keeps the demand low. *)

open Cwsp_sim

let title = "Fig 21: persist-path bandwidth sweep"

let series =
  Exp.cwsp_sweep_series
    (List.map
       (fun bw ->
         ( Printf.sprintf "%gGB" bw,
           { Config.default with path_bandwidth_gbs = bw } ))
       [ 1.0; 2.0; 4.0; 10.0; 20.0; 32.0 ])

let plan () = Exp.plan series

(* headline: the default 4GB/s point *)
let render () =
  Exp.banner title;
  List.nth (Exp.per_suite_table ~series ()) 2

let run () = Exp.execute_then_render ~plan ~render ()
