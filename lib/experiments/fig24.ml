(** Figure 24: sensitivity to L1D write-buffer size (8/16/32 entries).
    Paper: flat — the persist path is fast enough that delayed writebacks
    never back the WB up. *)

open Cwsp_sim

let title = "Fig 24: L1D write-buffer size sweep"

let series =
  Exp.cwsp_sweep_series
    (List.map
       (fun n ->
         (Printf.sprintf "WB-%d" n, { Config.default with wb_entries = n }))
       [ 8; 16; 32 ])

let plan () = Exp.plan series

(* headline: the default 32-entry point *)
let render () =
  Exp.banner title;
  List.nth (Exp.per_suite_table ~series ()) 2

let run () = Exp.execute_then_render ~plan ~render ()
