(** Energy experiment (extension): residual backup energy and NVM write
    energy per scheme — the quantitative form of the paper's argument
    that eADR/Capri-style JIT checkpointing is unsustainable
    (Sections I, II-D) while cWSP only needs Intel ADR's existing
    WPQ guarantee. *)

open Cwsp_sim

let title = "Energy (extension): backup requirement and NVM write energy"

(* analytic model over the configuration — no simulation points *)
let plan () : Cwsp_core.Job.t list = []

let render () =
  Exp.banner title;
  let cfg = Config.default in
  print_endline "residual (battery/capacitor) requirement on power failure:";
  Cwsp_util.Table.print
    ~headers:[ "scheme"; "volatile bytes"; "backup energy" ]
    (List.map
       (fun (b : Energy.backup) ->
         [
           b.scheme;
           (if b.volatile_bytes < 4096 then Printf.sprintf "%d B" b.volatile_bytes
            else Printf.sprintf "%d KB" (b.volatile_bytes / 1024));
           Printf.sprintf "%.2f uJ" b.backup_uj;
         ])
       (Energy.all_backups cfg));
  print_newline ();
  print_endline "steady-state NVM write energy:";
  Cwsp_util.Table.print
    ~headers:[ "scheme"; "bytes/store"; "uJ per 1000 stores" ]
    (List.map
       (fun (w : Energy.write_energy) ->
         [
           w.we_scheme;
           Printf.sprintf "%.0f" w.bytes_per_store;
           Printf.sprintf "%.2f" w.uj_per_kstore;
         ])
       Energy.all_write_energies);
  let cwsp = (Energy.cwsp_backup cfg).volatile_bytes in
  let eadr = (Energy.eadr_backup cfg).volatile_bytes in
  Printf.printf
    "\ncWSP's persistence domain is %dx smaller than eADR's flush set\n"
    (eadr / max 1 cwsp);
  eadr / max 1 cwsp

let run () = Exp.execute_then_render ~plan ~render ()

let ratio () =
  let cfg = Config.default in
  (Energy.eadr_backup cfg).volatile_bytes
  / max 1 (Energy.cwsp_backup cfg).volatile_bytes
