(** Stall-attribution breakdown (extension): where cWSP's overhead goes,
    per suite — the quantitative companion to the paper's qualitative
    claims (persist-path/PB backpressure for write-dense suites, RBT
    admission for short-region suites, sync drains for transactional
    ones, instruction bloat from boundaries and surviving checkpoints
    everywhere). Values are percent of the cWSP run's total time. *)

open Cwsp_sim
open Cwsp_core

let title = "Breakdown (extension): cWSP stall attribution per suite"

let pct part total = 100.0 *. part /. total

let plan () =
  List.concat_map
    (fun w -> Job.slowdown w ~scheme:Cwsp_schemes.Schemes.cwsp Config.default)
    Cwsp_workloads.Registry.all

let row_of (w : Cwsp_workloads.Defs.t) =
  let st = Api.stats w Cwsp_schemes.Schemes.cwsp Config.default in
  let base = Api.stats w Cwsp_schemes.Schemes.baseline Config.default in
  let t = st.elapsed_ns in
  (* instruction bloat: extra instructions the instrumented binary
     executes, charged at one cycle each *)
  let bloat =
    float_of_int (st.instructions - base.instructions) *. Config.default.cycle_ns
  in
  ( pct bloat t,
    pct st.stall_pb_ns t,
    pct st.stall_rbt_ns t,
    pct st.stall_sync_ns t,
    pct (st.stall_wb_ns +. st.stall_wpq_hit_ns) t )

let render () =
  Exp.banner title;
  let rows =
    List.filter_map
      (fun suite ->
        let ws = Cwsp_workloads.Registry.by_suite suite in
        if ws = [] then None
        else begin
          let parts = List.map row_of ws in
          let avg f =
            Cwsp_util.Stats.mean (List.map f parts) |> Printf.sprintf "%.2f%%"
          in
          Some
            [
              Cwsp_workloads.Defs.suite_name suite;
              avg (fun (a, _, _, _, _) -> a);
              avg (fun (_, b, _, _, _) -> b);
              avg (fun (_, _, c, _, _) -> c);
              avg (fun (_, _, _, d, _) -> d);
              avg (fun (_, _, _, _, e) -> e);
            ]
        end)
      Cwsp_workloads.Defs.all_suites
  in
  Cwsp_util.Table.print
    ~headers:[ "suite"; "instr bloat"; "PB/path"; "RBT"; "sync drain"; "WB+WPQ" ]
    rows;
  rows

let run () = Exp.execute_then_render ~plan ~render ()
