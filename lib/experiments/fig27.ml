(** Figure 27: sensitivity to NVM technology (PMEM / STT-MRAM / ReRAM).
    Paper: ~8% regardless of technology; faster NVM shows marginally
    higher *normalized* overhead because the baseline speeds up more. *)

open Cwsp_sim

let title = "Fig 27: NVM technology sweep"

let series =
  Exp.cwsp_sweep_series
    (List.map
       (fun (tech : Nvm.t) -> (tech.mem_name, { Config.default with mem = tech }))
       Nvm.all_techs)

let plan () = Exp.plan series

(* headline: the default PMEM point *)
let render () =
  Exp.banner title;
  List.hd (Exp.per_suite_table ~series ())

let run () = Exp.execute_then_render ~plan ~render ()
