(** Figure 6: average occupancy of the L1D write buffer, baseline vs cWSP.
    Paper: both average ~0.39 entries — delaying WB writebacks for
    stale-read prevention puts no pressure on the WB. *)

open Cwsp_sim

let title = "Fig 6: average L1D write-buffer occupancy"

let occupancy (st : Stats.t) = Cwsp_util.Stats.Acc.mean st.wb_occupancy

let series =
  [
    Exp.stats_series "baseline" Cwsp_schemes.Schemes.baseline Config.default
      occupancy;
    Exp.stats_series "cWSP" Cwsp_schemes.Schemes.cwsp Config.default occupancy;
  ]

let plan () = Exp.plan series

let render () =
  Exp.banner title;
  Exp.per_workload_table ~agg:Exp.Mean ~series ()

let run () = Exp.execute_then_render ~plan ~render ()
