(** Experiment index: id -> (plan, render). [bench/main.exe] runs these.

    [run_all] is the whole-evaluation pipeline: concatenate every
    driver's plan, hand the union to the executor (which dedupes shared
    points — e.g. the default-platform baseline appears in a dozen
    figures but runs once), then render every driver in declaration
    order. Rendering only reads memoized results, so output is
    byte-identical for any pool width. *)

type entry = {
  id : string;
  etitle : string;
  eplan : unit -> Cwsp_core.Job.t list;
  erender : unit -> float option;
      (** renders the figure; returns its headline number if it has one *)
}

let e id etitle eplan erender = { id; etitle; eplan; erender }

(* headline adapters *)
let headline_f render () = Some (render ())
let headline_i render () = Some (float_of_int (render ()))
let headline_none render () =
  ignore (render ());
  None

let all : entry list =
  [
    e "fig1" Fig01.title Fig01.plan (headline_none Fig01.render);
    e "fig6" Fig06.title Fig06.plan (headline_none Fig06.render);
    e "fig8" Fig08.title Fig08.plan (headline_none Fig08.render);
    e "fig13" Fig13.title Fig13.plan (headline_f Fig13.render);
    e "fig14" Fig14.title Fig14.plan (headline_f Fig14.render);
    e "fig15" Fig15.title Fig15.plan (headline_f Fig15.render);
    e "fig17" Fig17.title Fig17.plan (headline_f Fig17.render);
    e "fig18" Fig18.title Fig18.plan (headline_none Fig18.render);
    e "fig19" Fig19.title Fig19.plan (headline_f Fig19.render);
    e "fig20" Fig20.title Fig20.plan (headline_f Fig20.render);
    e "fig21" Fig21.title Fig21.plan (headline_f Fig21.render);
    e "fig22" Fig22.title Fig22.plan (headline_f Fig22.render);
    e "fig23" Fig23.title Fig23.plan (headline_f Fig23.render);
    e "fig24" Fig24.title Fig24.plan (headline_f Fig24.render);
    e "fig25" Fig25.title Fig25.plan (headline_f Fig25.render);
    e "fig26" Fig26.title Fig26.plan (headline_f Fig26.render);
    e "fig27" Fig27.title Fig27.plan (headline_f Fig27.render);
    e "hw" Hw_overhead.title Hw_overhead.plan (headline_i Hw_overhead.render);
    e "recovery" Fig_recovery.title Fig_recovery.plan
      (headline_i Fig_recovery.render);
    e "mp" Exp_mp.title Exp_mp.plan (headline_f Exp_mp.render);
    e "energy" Exp_energy.title Exp_energy.plan (headline_i Exp_energy.render);
    e "breakdown" Exp_breakdown.title Exp_breakdown.plan
      (headline_none Exp_breakdown.render);
    e "ablation" Exp_ablation.title Exp_ablation.plan
      (headline_none Exp_ablation.render);
    e "explicit" Exp_explicit.title Exp_explicit.plan
      (headline_f Exp_explicit.render);
  ]

let find id = List.find_opt (fun x -> x.id = id) all

(** Plan + execute + render one experiment. *)
let run_one (x : entry) : float option =
  Cwsp_core.Executor.run (x.eplan ());
  x.erender ()

(** Plan + execute + render the full evaluation: one deduplicated
    executor pass over every driver's points, then serial rendering. *)
let run_all () =
  Cwsp_core.Executor.run (List.concat_map (fun x -> x.eplan ()) all);
  List.iter (fun x -> ignore (x.erender ())) all
