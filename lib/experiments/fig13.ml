(** Figure 13: normalized slowdown of cWSP to the baseline at 4GB/s
    persist-path bandwidth. Paper: 6% average; SPLASH3 is the worst suite
    (short regions, sequential/repeated writes). *)

let title = "Fig 13: cWSP slowdown vs baseline (4GB/s persist path)"

let series =
  [
    Exp.slowdown_series "cWSP" Cwsp_schemes.Schemes.cwsp Cwsp_sim.Config.default;
  ]

let plan () = Exp.plan series

let render () =
  Exp.banner title;
  match Exp.per_workload_table ~series () with
  | [ overall ] ->
    Printf.printf "paper: 1.06 overall; measured: %.2f\n" overall;
    overall
  | _ -> assert false

let run () = Exp.execute_then_render ~plan ~render ()
