(** Table I + Figure 17: cWSP on CXL-attached NVM devices A-D.
    Paper: ~4% average overhead regardless of CXL device speed, with
    slightly *higher* normalized overhead on faster devices (the baseline
    benefits more from the speedup than cWSP does). *)

open Cwsp_sim
open Cwsp_workloads

let title = "Tab 1 + Fig 17: cWSP over CXL memory devices"

let print_table1 () =
  Cwsp_util.Table.print
    ~headers:[ "device"; "read ns"; "write ns"; "write GB/s" ]
    (List.map
       (fun (d : Nvm.t) ->
         [ d.mem_name; Printf.sprintf "%.0f" d.read_ns;
           Printf.sprintf "%.0f" d.write_ns;
           Printf.sprintf "%.1f" d.write_bw_gbs ])
       Nvm.cxl_devices)

let series =
  List.map
    (fun (d : Nvm.t) ->
      Exp.slowdown_series (d.mem_name ^ "-cWSP") Cwsp_schemes.Schemes.cwsp
        (Config.cxl d))
    Nvm.cxl_devices

let plan () = Exp.plan ~subset:Registry.memory_intensive series

(* headline: gmean across all devices (the paper's ~4% regardless of
   device speed) *)
let render () =
  Exp.banner title;
  print_table1 ();
  print_newline ();
  Cwsp_util.Stats.gmean
    (Exp.per_workload_table ~subset:Registry.memory_intensive ~series ())

let run () = Exp.execute_then_render ~plan ~render ()
