(** Explicit-persistency head-to-head: the certified flush/pfence binary
    ([explicit-flush]: [Persist_insert] placements proven sufficient and
    minimal by the [Persist_check] tier) against the implicit cWSP
    hardware on the same regions. The gap is the paper's implicit-
    persistence argument measured end to end: every flush/pfence the
    compiler must issue without the persist path is on the critical
    path, while cWSP persists committed stores off it. *)

let title = "Explicit persistency: certified flush/pfence vs cWSP"

let series =
  [
    Exp.slowdown_series "cWSP" Cwsp_schemes.Schemes.cwsp Cwsp_sim.Config.default;
    Exp.slowdown_series "ExplicitFlush" Cwsp_schemes.Schemes.explicit_flush
      Cwsp_sim.Config.default;
  ]

let plan () = Exp.plan series

let render () =
  Exp.banner title;
  match Exp.per_workload_table ~series () with
  | [ cwsp; explicit_ ] ->
    Printf.printf
      "cWSP %.2f vs explicit-flush %.2f overall (%.2fx implicit advantage)\n"
      cwsp explicit_ (explicit_ /. cwsp);
    explicit_ /. cwsp
  | _ -> assert false

let run () = Exp.execute_then_render ~plan ~render ()
