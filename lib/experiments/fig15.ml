(** Figure 15: cumulative impact of each cWSP optimization.
    Paper: +RegionFormation 4%, +PersistPath 10%, +MCSpeculation /
    +WBDelay / +WPQDelay flat, +Pruning drops to 6% overall. *)

let title = "Fig 15: per-optimization ablation (cumulative stages)"

let series =
  List.map
    (fun (name, scheme) ->
      Exp.slowdown_series name scheme Cwsp_sim.Config.default)
    Cwsp_schemes.Schemes.fig15_stages

let plan () = Exp.plan series

(* headline: the final cumulative stage (+Pruning — the paper's 6%) *)
let render () =
  Exp.banner title;
  let overall = Exp.per_suite_table ~series () in
  List.nth overall (List.length overall - 1)

let run () = Exp.execute_then_render ~plan ~render ()
