(** Figure 26: sensitivity to per-MC WPQ size (8/16/24/32 entries).
    Paper: 11% average at 8 entries (up to 31% for write-heavy SPLASH3),
    stable from 24 up. *)

open Cwsp_sim

let title = "Fig 26: NVM WPQ size sweep"

let series =
  Exp.cwsp_sweep_series
    (List.map
       (fun n ->
         (Printf.sprintf "WPQ-%d" n, { Config.default with wpq_entries = n }))
       [ 8; 16; 24; 32 ])

let plan () = Exp.plan series

(* headline: the default 24-entry point *)
let render () =
  Exp.banner title;
  List.nth (Exp.per_suite_table ~series ()) 2

let run () = Exp.execute_then_render ~plan ~render ()
