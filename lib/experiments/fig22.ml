(** Figure 22: sensitivity to RBT size (8/16/32 entries).
    Paper: 11% at 8 entries (short SPLASH3 regions stall), 6% at 16,
    4% at 32. *)

open Cwsp_sim

let title = "Fig 22: region boundary table (RBT) size sweep"

let series =
  Exp.cwsp_sweep_series
    (List.map
       (fun n ->
         (Printf.sprintf "RBT-%d" n, { Config.default with rbt_entries = n }))
       [ 8; 16; 32 ])

let plan () = Exp.plan series

(* headline: the default 16-entry point *)
let render () =
  Exp.banner title;
  List.nth (Exp.per_suite_table ~series ()) 1

let run () = Exp.execute_then_render ~plan ~render ()
