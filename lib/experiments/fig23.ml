(** Figure 23: sensitivity to persist-path latency (10..40ns).
    Paper: flat — region execution overlaps the path latency thanks to
    the RBT. *)

open Cwsp_sim

let title = "Fig 23: persist-path latency sweep"

let series =
  Exp.cwsp_sweep_series
    (List.map
       (fun lat ->
         (Printf.sprintf "Lat-%g" lat, { Config.default with path_latency_ns = lat }))
       [ 10.0; 20.0; 30.0; 40.0 ])

let plan () = Exp.plan series

(* headline: the default 20ns point *)
let render () =
  Exp.banner title;
  List.nth (Exp.per_suite_table ~series ()) 1

let run () = Exp.execute_then_render ~plan ~render ()
