(** Kernel combinators for synthetic workloads.

    Each of the 38 applications in the registry composes a few of these
    building blocks with per-application footprints, strides, and
    read/write mixes, chosen to match the paper's qualitative
    characterization of that application's memory behaviour (DESIGN.md §2:
    the figures depend on each app's behaviour *class*, not its
    semantics). All combinators emit straight IR through [Builder], so
    the cWSP compiler sees realistic compiled code: register
    accumulators, address arithmetic, loop-carried pointers. *)

open Cwsp_ir
open Builder

let word = 8

(* Simple in-IR xorshift-ish mixing of a register value; cheap ALU body
   filler that also decorrelates addresses. *)
let mix fb v =
  let a = bin fb Xor (Reg v) (Reg (bin fb Lshr (Reg v) (Imm 13))) in
  let b = bin fb Mul (Reg a) (Imm 0x2545F4914F6CDD1D) in
  bin fb And (Reg b) (Imm max_int)

(* d ALU instructions of filler work over [v]; returns the result reg. *)
let alu_chain fb v d =
  let r = ref v in
  for i = 1 to d do
    r := bin fb Add (Reg !r) (Imm i)
  done;
  !r

(** Sequential sweep: for i in [0, n): read a[i*stride_words], accumulate,
    and store to b every [write_every] iterations (b = a if [in_place]).
    [alu] pads the loop body with compute. *)
let sweep fb ~src ~dst ~n ~stride_words ~write_every ~alu =
  let acc = imm fb 0 in
  let _i =
    loop fb ~from:(Imm 0) ~below:(Imm n) (fun i ->
        let idx = bin fb Mul (Reg i) (Imm (stride_words * word)) in
        let a = bin fb Add (Reg src) (Reg idx) in
        let v = load fb a 0 in
        let w = alu_chain fb v alu in
        emit fb (Bin (Add, acc, Reg acc, Reg w));
        if write_every > 0 then begin
          let m = bin fb Rem (Reg i) (Imm write_every) in
          let z = cmp fb Eq (Reg m) (Imm 0) in
          if_ fb z
            ~then_:(fun () ->
              let d = bin fb Add (Reg dst) (Reg idx) in
              store fb d 0 (Reg w))
            ~else_:(fun () -> ())
        end)
  in
  acc

(** Unrolled in-place sweep: each iteration reads [unroll] elements, does
    [alu] work on each, then writes them all back — the loads-then-stores
    schedule a compiler produces for unrolled update loops. All the
    load/store antidependence pairs of a group overlap, so the hitting-set
    cutter places a *single* region boundary per group (Section IV-A):
    regions carry [unroll] stores over a realistically long body. *)
let sweep_wide fb ~arr ~n_groups ~stride_words ~alu ~unroll =
  let acc = imm fb 0 in
  let _i =
    loop fb ~from:(Imm 0) ~below:(Imm n_groups) (fun i ->
        let base = bin fb Mul (Reg i) (Imm (unroll * stride_words * word)) in
        let addr0 = bin fb Add (Reg arr) (Reg base) in
        let values =
          List.init unroll (fun u ->
              let v = load fb addr0 (u * stride_words * word) in
              let w = alu_chain fb v alu in
              emit fb (Bin (Add, acc, Reg acc, Reg w));
              w)
        in
        List.iteri
          (fun u w -> store fb addr0 (u * stride_words * word) (Reg w))
          values)
  in
  acc

(** 3-point stencil: dst[i] = src[i-1] + src[i] + src[i+1] over points
    spaced [stride_words] apart. One store per iteration, three loads,
    classic HPC shape; large strides turn it memory-intensive. *)
let stencil fb ~src ~dst ~n ?(stride_words = 1) ~alu () =
  let _i =
    loop fb ~from:(Imm 1) ~below:(Imm (n - 1)) (fun i ->
        let off = bin fb Mul (Reg i) (Imm (stride_words * word)) in
        let s = bin fb Add (Reg src) (Reg off) in
        let a = load fb s (-word) in
        let b = load fb s 0 in
        let c = load fb s word in
        let t = bin fb Add (Reg a) (Reg b) in
        let t = bin fb Add (Reg t) (Reg c) in
        let t = alu_chain fb t alu in
        let d = bin fb Add (Reg dst) (Reg off) in
        store fb d 0 (Reg t))
  in
  ()

(** Random access: [iters] iterations of idx = next_random mod n;
    read a[idx]; write back (read-modify-write) every [write_every]
    iterations. Randomness comes from an in-register LCG so the loop body
    stays self-contained (one region per iteration). *)
let random_access fb ~arr ~n_words ~iters ~write_every ~alu ?hot_words () =
  let seed = imm fb 88172645463325252 in
  let acc = imm fb 0 in
  let _i =
    loop fb ~from:(Imm 0) ~below:(Imm iters) (fun i ->
        (* xorshift-style step kept in a register (loop-carried) *)
        let s1 = bin fb Xor (Reg seed) (Reg (bin fb Shl (Reg seed) (Imm 13))) in
        let s2 = bin fb Xor (Reg s1) (Reg (bin fb Lshr (Reg s1) (Imm 7))) in
        let s3 = bin fb And (Reg s2) (Imm max_int) in
        emit fb (Mov (seed, Reg s3));
        let idx =
          match hot_words with
          | None -> bin fb Rem (Reg s3) (Imm n_words)
          | Some hw ->
            (* 3/4 of accesses hit a hot subset (table reuse), the rest
               roam the whole structure *)
            let sel = bin fb And (Reg (bin fb Lshr (Reg s3) (Imm 3))) (Imm 3) in
            let cold = cmp fb Eq (Reg sel) (Imm 0) in
            let idx = fresh fb in
            if_ fb cold
              ~then_:(fun () ->
                emit fb (Bin (Rem, idx, Reg s3, Imm n_words)))
              ~else_:(fun () ->
                emit fb (Bin (Rem, idx, Reg s3, Imm hw)));
            idx
        in
        let off = bin fb Mul (Reg idx) (Imm word) in
        let a = bin fb Add (Reg arr) (Reg off) in
        let v = load fb a 0 in
        let w = alu_chain fb v alu in
        emit fb (Bin (Add, acc, Reg acc, Reg w));
        if write_every > 0 then begin
          let m = bin fb Rem (Reg i) (Imm write_every) in
          let z = cmp fb Eq (Reg m) (Imm 0) in
          if_ fb z
            ~then_:(fun () -> store fb a 0 (Reg w))
            ~else_:(fun () -> ())
        end)
  in
  acc

(** Histogram / counting: bins[key]++ for [iters] keys — the
    load-increment-store creates a genuine memory antidependence each
    iteration, exercising the hitting-set cutter. *)
let histogram fb ~bins ~n_bins ~iters ?(alu = 5) () =
  let seed = imm fb 123456789 in
  let _i =
    loop fb ~from:(Imm 0) ~below:(Imm iters) (fun _i ->
        let s = mix fb seed in
        emit fb (Mov (seed, Reg s));
        let key = alu_chain fb s alu in
        let idx = bin fb Rem (Reg key) (Imm n_bins) in
        let a = bin fb Add (Reg bins) (Reg (bin fb Mul (Reg idx) (Imm word))) in
        let v = load fb a 0 in
        store fb a 0 (Reg (bin fb Add (Reg v) (Imm 1))))
  in
  ()

(** Build a linked list of [n] malloc'd nodes, head stored in global
    [head_g]. Node layout: [0]=value, [8]=next, rest = payload
    ([node_bytes] total) — realistic fat nodes so a few thousand of them
    exceed the SRAM caches. *)
let list_build fb ~head_g ~n ?(node_bytes = 128) () =
  let head = la fb head_g in
  let _i =
    loop fb ~from:(Imm 0) ~below:(Imm n) (fun i ->
        let node = call fb "malloc" [ Imm node_bytes ] in
        store fb node 0 (Reg i);
        store fb node (node_bytes - word) (Reg i); (* touch the tail *)
        let old = load fb head 0 in
        store fb node word (Reg old);
        store fb head 0 (Reg node))
  in
  ()

(** Chase the list [rounds] times, summing payloads and rewriting every
    [write_every]-th node's value. *)
let list_chase fb ~head_g ~rounds ~write_every ?(alu = 6) () =
  let head = la fb head_g in
  let acc = imm fb 0 in
  let _r =
    loop fb ~from:(Imm 0) ~below:(Imm rounds) (fun _r ->
        let cur = fresh fb in
        emit fb (Load (cur, head, 0));
        let k = imm fb 0 in
        let loop_head = block fb in
        let body = block fb in
        let exit_l = block fb in
        jmp fb loop_head;
        switch_to fb loop_head;
        let nz = cmp fb Ne (Reg cur) (Imm 0) in
        br fb nz ~ifso:body ~ifnot:exit_l;
        switch_to fb body;
        let v0 = load fb cur 0 in
        let v = alu_chain fb v0 alu in
        emit fb (Bin (Add, acc, Reg acc, Reg v));
        (if write_every > 0 then begin
           let m = bin fb Rem (Reg k) (Imm write_every) in
           let z = cmp fb Eq (Reg m) (Imm 0) in
           if_ fb z
             ~then_:(fun () -> store fb cur 0 (Reg (bin fb Add (Reg v0) (Imm 1))))
             ~else_:(fun () -> ())
         end);
        emit fb (Bin (Add, k, Reg k, Imm 1));
        emit fb (Load (cur, cur, word));
        jmp fb loop_head;
        switch_to fb exit_l)
  in
  acc

(** Transactional update: pick two "accounts", move money under an atomic
    lock — the STAMP/WHISPER shape (critical sections bounded by atomics,
    which are region boundaries and persist-drain points). *)
let transactions fb ~accounts ~n_accounts ~lock_g ~iters ~work ?(think = 12) () =
  let seed = imm fb 362436069 in
  let lock = la fb lock_g in
  let _i =
    loop fb ~from:(Imm 0) ~below:(Imm iters) (fun _i ->
        let s1 = mix fb seed in
        emit fb (Mov (seed, Reg s1));
        let a_idx = bin fb Rem (Reg s1) (Imm n_accounts) in
        let s2 = mix fb seed in
        emit fb (Mov (seed, Reg s2));
        let b_idx = bin fb Rem (Reg s2) (Imm n_accounts) in
        (* acquire: a guarded CAS spin, the [Libc.spin_lock] shape
           written inline — [Cwsp_analysis.Race] only treats a CAS as
           [Cas_acquire] when its result is checked and the failure
           edge retries; a bare fetch-add with the result discarded
           never blocks and would (rightly) certify nothing *)
        let head = block fb in
        let cont = block fb in
        jmp fb head;
        switch_to fb head;
        let old = cas fb lock 0 ~expected:(Imm 0) ~desired:(Imm 1) in
        let got = cmp fb Eq (Reg old) (Imm 0) in
        br fb got ~ifso:cont ~ifnot:head;
        switch_to fb cont;
        let a = bin fb Add (Reg accounts) (Reg (bin fb Mul (Reg a_idx) (Imm word))) in
        let b = bin fb Add (Reg accounts) (Reg (bin fb Mul (Reg b_idx) (Imm word))) in
        let va = load fb a 0 in
        let vb = load fb b 0 in
        let amount = bin fb And (Reg s2) (Imm 255) in
        let va' = alu_chain fb (bin fb Sub (Reg va) (Reg amount)) work in
        store fb a 0 (Reg va');
        store fb b 0 (Reg (bin fb Add (Reg vb) (Reg amount)));
        (* release: on TSO a plain store suffices (x86 unlock idiom); only
           the acquire side is a CAS / sync point. The race tier
           recognizes exactly this shape — a plain store of 0 to a word
           some *guarded* acquire targets — as [Cwsp_analysis.Race]'s
           [Tso_release], so the critical section still certifies; the
           dynamic monitor ([Cwsp_interp.Race_monitor]) blesses the same
           store as a release edge only when the storing thread actually
           holds the word's synchronization. Any other value, any other
           word, or a non-holder's store stays an ordinary (checked)
           access. *)
        store fb lock 0 (Imm 0);
        (* non-transactional think time between critical sections; the
           result feeds the next transaction's seed so dead-code
           elimination cannot remove it *)
        let t0 = bin fb Add (Reg s2) (Imm 1) in
        let th = alu_chain fb t0 think in
        emit fb (Mov (seed, Reg (bin fb Xor (Reg seed) (Reg th)))))
  in
  ()

(** Dense mat-vec-ish inner loops: for r in [0, rows): acc = Σ m[r][c]*v[c],
    store acc to out[r]. Bigger bodies, one store per [cols] loads. *)
let matvec fb ~mat ~vec ~out ~rows ~cols =
  let _r =
    loop fb ~from:(Imm 0) ~below:(Imm rows) (fun r ->
        let acc = imm fb 0 in
        let row_off = bin fb Mul (Reg r) (Imm (cols * word)) in
        let row = bin fb Add (Reg mat) (Reg row_off) in
        let _c =
          loop fb ~from:(Imm 0) ~below:(Imm cols) (fun c ->
              let off = bin fb Mul (Reg c) (Imm word) in
              let mv = load fb (bin fb Add (Reg row) (Reg off)) 0 in
              let vv = load fb (bin fb Add (Reg vec) (Reg off)) 0 in
              emit fb (Bin (Add, acc, Reg acc, Reg (bin fb Mul (Reg mv) (Reg vv)))))
        in
        let o = bin fb Add (Reg out) (Reg (bin fb Mul (Reg r) (Imm word))) in
        store fb o 0 (Reg acc))
  in
  ()

(** Block copies through the runtime's memcpy — the h264ref/imagick shape
    (bulk data movement through library code). *)
let block_copies fb ~src ~dst ~blocks ~block_bytes =
  let _i =
    loop fb ~from:(Imm 0) ~below:(Imm blocks) (fun i ->
        let off = bin fb Mul (Reg i) (Imm block_bytes) in
        let s = bin fb Add (Reg src) (Reg off) in
        let d = bin fb Add (Reg dst) (Reg off) in
        let _ = call fb "memcpy" [ Reg d; Reg s; Imm block_bytes ] in
        ())
  in
  ()

(** Random swaps (WHISPER's sps): pick two slots, exchange their values —
    two loads and two stores per iteration, maximally write-dense. *)
let swaps fb ~arr ~n_words ~iters ?(hot_words = 0) () =
  let seed = imm fb 521288629 in
  let pick s =
    (* one index hot (cache-resident working set), the other cold *)
    if hot_words > 0 then bin fb Rem (Reg s) (Imm hot_words)
    else bin fb Rem (Reg s) (Imm n_words)
  in
  let _i =
    loop fb ~from:(Imm 0) ~below:(Imm iters) (fun _i ->
        let s1 = mix fb seed in
        emit fb (Mov (seed, Reg s1));
        let i1 = pick s1 in
        let s2 = mix fb seed in
        emit fb (Mov (seed, Reg s2));
        let i2 = bin fb Rem (Reg s2) (Imm n_words) in
        let a = bin fb Add (Reg arr) (Reg (bin fb Mul (Reg i1) (Imm word))) in
        let b = bin fb Add (Reg arr) (Reg (bin fb Mul (Reg i2) (Imm word))) in
        let va = load fb a 0 in
        let vb = load fb b 0 in
        store fb a 0 (Reg vb);
        store fb b 0 (Reg va))
  in
  ()

(** Write a checksum and emit it through the output intrinsic; every
    workload ends with this so functional equivalence is checkable. *)
let finish fb ~checksum_g value =
  let g = la fb checksum_g in
  store fb g 0 (Reg value);
  call_void fb "__out" [ Reg value ]
