(** SPMD multi-threaded workloads (extension: the paper evaluates on an
    8-core machine and Section VIII describes multi-core recovery; these
    kernels drive the multi-core interpreter and timing engine).

    Each workload provides a [worker] function taking the thread id; all
    threads share the program's globals and heap. Synchronization uses
    the runtime's spinlock (CAS loop), whose atomics are region
    boundaries and persist-drain points exactly as Section VIII
    requires for DRF programs. *)

open Cwsp_ir
open Builder
open Kernels

type t = {
  pname : string;
  pdescription : string;
  worker : string;
  expect_racy : bool;
      (* deliberately racy: the race tier must reject it and the dynamic
         monitor must observe the race — tests assert both *)
  pbuild : scale:int -> threads:int -> Prog.t;
}

let scaffold ~globals ~worker_body () ~threads =
  let b = Builder.program () in
  Cwsp_runtime.Libc.add b;
  Builder.global b "checksum" ~size:64 ();
  List.iter (fun f -> f b) globals;
  Builder.func b "worker" ~nparams:1 (fun fb ->
      worker_body fb ~threads;
      ret fb None);
  (* single-threaded entry point so the program is also runnable and
     validatable as an ordinary binary *)
  Builder.func b "main" ~nparams:0 (fun fb ->
      call_void fb "worker" [ Imm 0 ];
      ret fb None);
  Builder.set_main b "main";
  Builder.finish b

(* Each thread sweeps its own stripe of a shared array: DRF, no locks. *)
let psweep =
  {
    pname = "psweep";
    pdescription = "striped parallel array update (DRF, lock-free)";
    worker = "worker";
    expect_racy = false;
    pbuild =
      (fun ~scale ~threads ->
        let words = 64 * 1024 in
        scaffold
          ~globals:[ Defs.g "parr" (words * 8); Defs.g "pout" (words * 8) ]
          ~worker_body:(fun fb ~threads ->
            let tid = param fb 0 in
            let arr = la fb "parr" in
            let out = la fb "pout" in
            let stripe = words / max 1 threads in
            let base = bin fb Mul (Reg tid) (Imm (stripe * 8)) in
            let my = bin fb Add (Reg arr) (Reg base) in
            let my_out = bin fb Add (Reg out) (Reg base) in
            let acc = imm fb 0 in
            (* fixed per-thread work: more cores = more total traffic into
               the shared WPQs; streaming (read one stripe, write the
               other) so no antidependence cuts the loop body *)
            let _ =
              loop fb ~from:(Imm 0) ~below:(Imm (5000 * scale)) (fun i ->
                  let idx = bin fb Rem (Reg i) (Imm stripe) in
                  let off = bin fb Shl (Reg idx) (Imm 3) in
                  let v = load fb (bin fb Add (Reg my) (Reg off)) 0 in
                  let w = alu_chain fb v 28 in
                  emit fb (Types.Bin (Add, acc, Reg acc, Reg w));
                  store fb (bin fb Add (Reg my_out) (Reg off)) 0 (Reg w))
            in
            let ck = la fb "checksum" in
            let slot = bin fb Add (Reg ck) (Reg (bin fb Shl (Reg tid) (Imm 3))) in
            store fb slot 0 (Reg acc))
          () ~threads);
  }

(* Threads increment a shared counter under the runtime spinlock; the
   final value is exactly threads x iters iff mutual exclusion holds. *)
let pcounter =
  {
    pname = "pcounter";
    pdescription = "shared counter under a spinlock (mutual exclusion)";
    worker = "worker";
    expect_racy = false;
    pbuild =
      (fun ~scale ~threads ->
        scaffold
          ~globals:[ Defs.g "pcnt" 8; Defs.g "plock" 8 ]
          ~worker_body:(fun fb ~threads:_ ->
            let _tid = param fb 0 in
            let cnt = la fb "pcnt" in
            let lock = la fb "plock" in
            let _ =
              loop fb ~from:(Imm 0) ~below:(Imm (400 * scale)) (fun _i ->
                  call_void fb "spin_lock" [ Reg lock ];
                  let v = load fb cnt 0 in
                  store fb cnt 0 (Reg (bin fb Add (Reg v) (Imm 1)));
                  call_void fb "spin_unlock" [ Reg lock ])
            in
            ())
          () ~threads);
  }

(* Racy variant of the counter — no lock. Lost updates are expected; it
   exists to show the interleaving is real (tests assert the deficit). *)
let pcounter_racy =
  {
    pname = "pcounter-racy";
    pdescription = "shared counter without a lock (lost updates expected)";
    worker = "worker";
    expect_racy = true;
    pbuild =
      (fun ~scale ~threads ->
        scaffold
          ~globals:[ Defs.g "rcnt" 8 ]
          ~worker_body:(fun fb ~threads:_ ->
            let cnt = la fb "rcnt" in
            let _ =
              loop fb ~from:(Imm 0) ~below:(Imm (400 * scale)) (fun _i ->
                  let v = load fb cnt 0 in
                  store fb cnt 0 (Reg (bin fb Add (Reg v) (Imm 1))))
            in
            ())
          () ~threads);
  }

(* Locked transfers between shared accounts: STAMP-flavoured contention. *)
let ptransactions =
  {
    pname = "ptx";
    pdescription = "locked account transfers with per-thread think time";
    worker = "worker";
    expect_racy = false;
    pbuild =
      (fun ~scale ~threads ->
        let accounts_words = 32 * 1024 in
        scaffold
          ~globals:[ Defs.g "paccounts" (accounts_words * 8); Defs.g "ptx_lock" 8 ]
          ~worker_body:(fun fb ~threads:_ ->
            let tid = param fb 0 in
            let accounts = la fb "paccounts" in
            let lock = la fb "ptx_lock" in
            let seed = bin fb Add (Reg (imm fb 362436069)) (Reg tid) in
            let _ =
              loop fb ~from:(Imm 0) ~below:(Imm (300 * scale)) (fun _i ->
                  let s1 = mix fb seed in
                  emit fb (Types.Mov (seed, Reg s1));
                  let a_idx = bin fb Rem (Reg s1) (Imm accounts_words) in
                  let s2 = mix fb seed in
                  emit fb (Types.Mov (seed, Reg s2));
                  let b_idx = bin fb Rem (Reg s2) (Imm accounts_words) in
                  call_void fb "spin_lock" [ Reg lock ];
                  let a = bin fb Add (Reg accounts) (Reg (bin fb Mul (Reg a_idx) (Imm 8))) in
                  let b' = bin fb Add (Reg accounts) (Reg (bin fb Mul (Reg b_idx) (Imm 8))) in
                  let va = load fb a 0 in
                  let vb = load fb b' 0 in
                  let amount = bin fb And (Reg s2) (Imm 255) in
                  store fb a 0 (Reg (bin fb Sub (Reg va) (Reg amount)));
                  store fb b' 0 (Reg (bin fb Add (Reg vb) (Reg amount)));
                  call_void fb "spin_unlock" [ Reg lock ];
                  (* live think time: feeds the next iteration's seed *)
                  let t0 = bin fb Add (Reg s2) (Imm 1) in
                  let th = alu_chain fb t0 160 in
                  emit fb (Types.Mov (seed, Reg (bin fb Xor (Reg seed) (Reg th)))))
            in
            ())
          () ~threads);
  }

(* Inline lock with the TSO release idiom: a CAS-acquire spin written
   directly in the worker and a *plain* store of 0 as the unlock — the
   x86 pattern [Kernels.transactions] also uses, recognized by the race
   tier as [Race.Tso_release]. DRF: every shared access happens between
   the CAS and the release store. *)
let ptso =
  {
    pname = "ptso";
    pdescription = "masked shared updates under an inline CAS/TSO-release lock";
    worker = "worker";
    expect_racy = false;
    pbuild =
      (fun ~scale ~threads ->
        let words = 1024 in
        scaffold
          ~globals:[ Defs.g "tso_acc" (words * 8); Defs.g "tso_lock" 8 ]
          ~worker_body:(fun fb ~threads:_ ->
            let tid = param fb 0 in
            let acc = la fb "tso_acc" in
            let lock = la fb "tso_lock" in
            let seed = bin fb Add (Reg (imm fb 88172645)) (Reg tid) in
            let _ =
              loop fb ~from:(Imm 0) ~below:(Imm (200 * scale)) (fun _i ->
                  let s = mix fb seed in
                  emit fb (Types.Mov (seed, Reg s));
                  let idx = bin fb And (Reg s) (Imm (words - 1)) in
                  let off = bin fb Shl (Reg idx) (Imm 3) in
                  (* inline CAS-acquire spin (same shape as Libc.spin_lock) *)
                  let head = block fb in
                  let cont = block fb in
                  jmp fb head;
                  switch_to fb head;
                  let old = cas fb lock 0 ~expected:(Imm 0) ~desired:(Imm 1) in
                  let got = cmp fb Eq (Reg old) (Imm 0) in
                  br fb got ~ifso:cont ~ifnot:head;
                  switch_to fb cont;
                  let slot = bin fb Add (Reg acc) (Reg off) in
                  let v = load fb slot 0 in
                  store fb slot 0 (Reg (bin fb Add (Reg v) (Imm 1)));
                  (* TSO release: plain store of 0 publishes the section *)
                  store fb lock 0 (Imm 0))
            in
            let ck = la fb "checksum" in
            let slot = bin fb Add (Reg ck) (Reg (bin fb Shl (Reg tid) (Imm 3))) in
            store fb slot 0 (Reg seed))
          () ~threads);
  }

let all = [ psweep; pcounter; pcounter_racy; ptransactions; ptso ]

let find_exn name =
  match List.find_opt (fun w -> w.pname = name) all with
  | Some w -> w
  | None -> invalid_arg ("unknown parallel workload " ^ name)
