(** Persistence schemes: each pairs a compile configuration with a timing
    model and an optional platform change, reproducing the systems the
    paper evaluates against (Sections II, IX-A, IX-D).

    | scheme      | binary          | hardware model                          |
    |-------------|-----------------|------------------------------------------|
    | baseline    | uninstrumented  | no crash consistency                     |
    | cWSP        | regions+pruned  | 8B persist path, RBT speculation, logging |
    | iDO         | regions+ckpts   | persist barriers at every region end      |
    | Capri       | regions only    | 64B redo buffers, battery-backed, 8x amp  |
    | ReplayCache | regions+ckpts   | software write-through, region-end flush  |
    | ideal PSP   | uninstrumented  | eADR/BBB/LightPC: DRAM cache disabled     | *)

open Cwsp_compiler
open Cwsp_sim

type t = {
  s_name : string;
  s_compile : Pipeline.config;
  s_engine : Engine.scheme;
  s_reconfig : Config.t -> Config.t;
}

let id_config c = c

let baseline =
  {
    s_name = "baseline";
    s_compile = Pipeline.baseline;
    s_engine = Engine.Baseline;
    s_reconfig = id_config;
  }

let cwsp =
  {
    s_name = "cwsp";
    s_compile = Pipeline.cwsp;
    s_engine = Engine.Cwsp Engine.cwsp_full;
    s_reconfig = id_config;
  }

(** cWSP built without checkpoint pruning (Fig. 15 stage 5). *)
let cwsp_no_prune =
  {
    s_name = "cwsp-no-prune";
    s_compile = Pipeline.cwsp_no_prune;
    s_engine = Engine.Cwsp Engine.cwsp_full;
    s_reconfig = id_config;
  }

(** cWSP without MC speculation: conservative region-end drains, the
    prior-work behaviour of Section II-B — an extra ablation point. *)
let cwsp_no_speculation =
  {
    s_name = "cwsp-no-spec";
    s_compile = Pipeline.cwsp;
    s_engine =
      Engine.Cwsp
        { Engine.cwsp_full with mc_speculation = false; boundary_drain = true };
    s_reconfig = id_config;
  }

let ido =
  {
    s_name = "ido";
    s_compile = Pipeline.cwsp_no_prune;
    s_engine = Engine.Ido;
    s_reconfig = id_config;
  }

let capri =
  {
    s_name = "capri";
    s_compile = Pipeline.regions_only;
    s_engine = Engine.Capri;
    s_reconfig = id_config;
  }

let replaycache =
  {
    s_name = "replaycache";
    s_compile = Pipeline.cwsp_no_prune;
    s_engine = Engine.Replaycache;
    s_reconfig = id_config;
  }

(** Ideal partial-system persistence (BBB / eADR / LightPC, Fig. 18): no
    persist-path costs at all (batteries cover everything), but the DRAM
    cache cannot be enabled, so the hierarchy ends at the SRAM LLC. *)
let psp_ideal =
  {
    s_name = "psp-ideal";
    s_compile = Pipeline.baseline;
    s_engine = Engine.Baseline;
    s_reconfig =
      (fun c ->
        match c.Config.levels with
        | [] -> c
        | levels ->
          let without_dram =
            List.filter (fun (l : Config.cache_level) -> l.cname <> "DRAM$") levels
          in
          { c with levels = without_dram });
  }

(** Compiler-directed explicit persistency: the [Persist_insert] binary
    (clwb/pfence sequences proven sufficient and minimal by
    [Persist_check]) on hardware without the cWSP persist path — data
    stores stay cached until flushed; register checkpoints keep their
    hardware path. The head-to-head for the paper's implicit-persistence
    thesis: what the same regions cost when the compiler must persist
    every store explicitly. *)
let explicit_flush =
  {
    s_name = "explicit-flush";
    s_compile = Pipeline.cwsp_explicit;
    s_engine = Engine.Explicit_flush;
    s_reconfig = id_config;
  }

(** The six cumulative stages of the Fig. 15 ablation. *)
let fig15_stages : (string * t) list =
  let stage name compile flags =
    ( name,
      {
        s_name = name;
        s_compile = compile;
        s_engine = Engine.Cwsp flags;
        s_reconfig = id_config;
      } )
  in
  let open Engine in
  [
    stage "+RegionFormation" Pipeline.cwsp_no_prune cwsp_flags_none;
    stage "+PersistPath" Pipeline.cwsp_no_prune
      { cwsp_flags_none with persist_path = true };
    stage "+MCSpeculation" Pipeline.cwsp_no_prune
      { cwsp_flags_none with persist_path = true; mc_speculation = true };
    stage "+WBDelay" Pipeline.cwsp_no_prune
      {
        cwsp_flags_none with
        persist_path = true;
        mc_speculation = true;
        wb_delay = true;
      };
    stage "+WPQDelay" Pipeline.cwsp_no_prune cwsp_full;
    stage "+Pruning" Pipeline.cwsp cwsp_full;
  ]

let comparison_schemes = [ replaycache; capri; cwsp ]
