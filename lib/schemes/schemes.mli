(** Persistence schemes: each pairs a compile configuration with a timing
    model and an optional platform change, reproducing the systems the
    paper evaluates against (Sections II, IX-A, IX-D). *)

open Cwsp_compiler
open Cwsp_sim

type t = {
  s_name : string;
  s_compile : Pipeline.config;
  s_engine : Engine.scheme;
  s_reconfig : Config.t -> Config.t;
}

val baseline : t

(** The full system: regions + pruned checkpoints + 8B persist path +
    RBT speculation + undo logging + WB/WPQ delaying. *)
val cwsp : t

(** Fig. 15 stage 5: every checkpoint kept. *)
val cwsp_no_prune : t

(** Conservative region-end drains instead of MC speculation (the
    prior-work behaviour of Section II-B). *)
val cwsp_no_speculation : t

(** iDO: persist barriers at every region boundary, unpruned binary. *)
val ido : t

(** Capri: 64B battery-backed redo buffers, hardware redo+undo logging. *)
val capri : t

(** ReplayCache adapted to the server platform: software write-through
    with region-end flushes. *)
val replaycache : t

(** BBB/eADR/LightPC: no persist cost, but the DRAM cache is disabled. *)
val psp_ideal : t

(** Compiler-directed explicit persistency: the flush/pfence-inserted
    binary ([Pipeline.cwsp_explicit], certified by the [Persist_check]
    verifier tier) on hardware without the cWSP persist path. *)
val explicit_flush : t

(** The six cumulative stages of the Fig. 15 ablation. *)
val fig15_stages : (string * t) list

val comparison_schemes : t list
