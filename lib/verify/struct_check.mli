(** Structural well-formedness: global boundary-id discipline (unique,
    monotone, dense over the recovery-slice table with matching owners)
    for renumbered programs, plus configuration-independent lints —
    checkpoint-to-boundary attachment and stores into the hardware
    checkpoint slot area. *)

open Cwsp_ir

(** Boundary-id lint over a whole renumbered program; [slices_len] is the
    recovery table size. Only meaningful after region formation. *)
val id_diags :
  slices_len:int -> boundary_owner:string array -> Prog.t -> Diag.t list

val ckpt_placement_diags : Prog.func -> Diag.t list
val ckpt_area_diags : Prog.func -> Diag.t list

(** Both per-function lints. *)
val check_func : Prog.func -> Diag.t list
