(** Top-level driver: runs every checker family applicable to the
    compile configuration and returns the combined diagnostics. *)

open Cwsp_compiler

(** All diagnostics of a compiled program. *)
val run : Pipeline.compiled -> Diag.t list

(** Error-severity diagnostics only. *)
val errors : Diag.t list -> Diag.t list

(** Render one diagnostic per line. *)
val report : Diag.t list -> string

(** Raise [Failure] with a rendered report if [run] yields any error. *)
val check_exn : Pipeline.compiled -> unit

(** Install [check_exn] as the pipeline's post-compile hook, so every
    [Pipeline.compile] in the process verifies its own output. *)
val install_pipeline_hook : unit -> unit
