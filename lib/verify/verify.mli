(** Top-level driver: runs every checker family applicable to the
    compile configuration and returns the combined diagnostics. *)

open Cwsp_compiler

(** All diagnostics of a compiled program. [sem] (default [true])
    additionally runs the semantic tier ([Sem_check]): symbolic
    evaluation of every recovery slice against the checkpoint-slot
    state its boundary observes. *)
val run : ?sem:bool -> Pipeline.compiled -> Diag.t list

(** Error-severity diagnostics only. *)
val errors : Diag.t list -> Diag.t list

(** Deduplicate identical diagnostics and sort the rest into the
    stable report order (rule, func, block, instr). *)
val normalize : Diag.t list -> Diag.t list

(** Distinct (rule-name, severity-name) pairs that fired, sorted — the
    fuzzer's coverage-cell view of a verification run. *)
val fired : Diag.t list -> (string * string) list

(** Render one diagnostic per line, normalized ({!normalize}). *)
val report : Diag.t list -> string

(** Render the normalized diagnostics as a JSON array of records
    ([rule] / [severity] / [func] / [block] / [instr] / [message]). *)
val report_json : Diag.t list -> string

(** Raise [Failure] with a rendered report if [run] yields any error. *)
val check_exn : Pipeline.compiled -> unit

(** Install [check_exn] as the pipeline's post-compile hook, so every
    [Pipeline.compile] in the process verifies its own output. *)
val install_pipeline_hook : unit -> unit
