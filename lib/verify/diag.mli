(** Structured diagnostics for the static crash-consistency verifier:
    a rule identifier, a severity, a (function, block, instruction)
    position and a human-readable message. *)

type severity = Error | Warning

type rule =
  | Antidep               (** uncut memory antidependence (IV-A) *)
  | Entry_boundary        (** function entry not opened by a boundary *)
  | Loop_boundary         (** loop header without a boundary *)
  | Sync_boundary         (** atomic/fence not isolated by boundaries *)
  | Call_boundary         (** call site without a trailing boundary *)
  | Live_in_uncovered     (** live-in register with no slice entry (IV-B) *)
  | Slot_not_checkpointed (** slice slot with no surviving checkpoint (IV-C) *)
  | Slot_ref_undefined    (** slice reads a register defined only after its boundary *)
  | Slice_unknown_global  (** slice address expression names a missing global *)
  | Duplicate_boundary_id
  | Nonmonotone_boundary_id
  | Boundary_id_range     (** id outside the slice table, or owner mismatch *)
  | Ckpt_placement        (** checkpoint not attached to a following boundary *)
  | Ckpt_area_store       (** user store targets the checkpoint slot region *)
  | Slice_value_mismatch  (** semantic: slice provably restores a wrong value (IV-C/VII) *)
  | Stale_slot_read       (** semantic: slice shape is right but a slot it reads
                              holds the wrong vintage (pruned/clobbered checkpoint) *)
  | Slice_unprovable      (** semantic: equality neither proven nor refuted *)
  | Missing_flush         (** persist: a store may still be dirty in the cache
                              at a commit point ([Persist_check]) *)
  | Missing_fence         (** persist: flushed but not fenced before a commit *)
  | Early_commit          (** persist: a fence exists but only after the commit *)
  | Redundant_flush       (** persist lint: flush upgrades no dirty site on any
                              path *)
  | Data_race             (** race: conflicting cross-thread pair whose locks
                              prove no exclusion ([Race_check]) *)
  | Unlocked_shared_write (** race: conflicting cross-thread pair with no
                              locks held at all *)
  | Tid_overlap_unprovable(** race: tid-indexed footprints not provably
                              disjoint across threads *)
  | Redundant_atomic      (** race lint: atomic RMW on a provably
                              thread-private word *)

(** Stable kebab-case name, used by tests and the CLI. *)
val rule_name : rule -> string

val severity_name : severity -> string

type t = {
  rule : rule;
  severity : severity;
  func : string;
  block : int;  (** -1 for program-level findings *)
  instr : int;
  message : string;
}

val error :
  rule -> func:string -> block:int -> instr:int ->
  ('a, unit, string, t) format4 -> 'a

val warning :
  rule -> func:string -> block:int -> instr:int ->
  ('a, unit, string, t) format4 -> 'a

val to_string : t -> string

(** One-line JSON record [{"rule":…,"severity":…,"func":…,"block":…,
    "instr":…,"message":…}] for CI annotation; strings are escaped per
    RFC 8259. *)
val to_json : t -> string

(** Total order for stable reports: (rule, func, block, instr, severity,
    message). Rule order follows the variant declaration order. *)
val compare : t -> t -> int

val is_error : t -> bool
