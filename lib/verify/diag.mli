(** Structured diagnostics for the static crash-consistency verifier:
    a rule identifier, a severity, a (function, block, instruction)
    position and a human-readable message. *)

type severity = Error | Warning

type rule =
  | Antidep               (** uncut memory antidependence (IV-A) *)
  | Entry_boundary        (** function entry not opened by a boundary *)
  | Loop_boundary         (** loop header without a boundary *)
  | Sync_boundary         (** atomic/fence not isolated by boundaries *)
  | Call_boundary         (** call site without a trailing boundary *)
  | Live_in_uncovered     (** live-in register with no slice entry (IV-B) *)
  | Slot_not_checkpointed (** slice slot with no surviving checkpoint (IV-C) *)
  | Slot_ref_undefined    (** slice reads a register defined only after its boundary *)
  | Slice_unknown_global  (** slice address expression names a missing global *)
  | Duplicate_boundary_id
  | Nonmonotone_boundary_id
  | Boundary_id_range     (** id outside the slice table, or owner mismatch *)
  | Ckpt_placement        (** checkpoint not attached to a following boundary *)
  | Ckpt_area_store       (** user store targets the checkpoint slot region *)

(** Stable kebab-case name, used by tests and the CLI. *)
val rule_name : rule -> string

val severity_name : severity -> string

type t = {
  rule : rule;
  severity : severity;
  func : string;
  block : int;  (** -1 for program-level findings *)
  instr : int;
  message : string;
}

val error :
  rule -> func:string -> block:int -> instr:int ->
  ('a, unit, string, t) format4 -> 'a

val warning :
  rule -> func:string -> block:int -> instr:int ->
  ('a, unit, string, t) format4 -> 'a

val to_string : t -> string
val is_error : t -> bool
