(** Structural well-formedness of compiled programs.

    Two groups of checks. The boundary-id lint applies to renumbered
    programs (any configuration that ran region formation): global ids
    must be unique, strictly increasing in traversal order, and exactly
    cover the recovery-slice table with matching owner functions —
    recovery dispatches on these ids, so any slip silently restores the
    wrong slice. The always-on checks are configuration-independent:
    every checkpoint must sit directly in front of the boundary it
    belongs to (the [Pass]/[remove_pruned] attachment convention), and no
    user store may target the hardware checkpoint slot area, which would
    let program data corrupt checkpointed registers. *)

open Cwsp_ir
open Cwsp_interp

(* ---- boundary-id discipline (renumbered programs only) ---- *)

let id_diags ~(slices_len : int) ~(boundary_owner : string array)
    (prog : Prog.t) : Diag.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let seen : (int, string * int * int) Hashtbl.t = Hashtbl.create 64 in
  let prev = ref (-1) in
  let count = ref 0 in
  List.iter
    (fun (_, (fn : Prog.func)) ->
      Prog.iter_instrs
        (fun bi ii ins ->
          match ins with
          | Types.Boundary id ->
            incr count;
            (match Hashtbl.find_opt seen id with
            | Some (f0, b0, i0) ->
              add
                (Diag.error Duplicate_boundary_id ~func:fn.name ~block:bi
                   ~instr:ii "boundary id %d already used at %s:(%d,%d)" id f0
                   b0 i0)
            | None -> Hashtbl.replace seen id (fn.name, bi, ii));
            if id <= !prev then
              add
                (Diag.error Nonmonotone_boundary_id ~func:fn.name ~block:bi
                   ~instr:ii
                   "boundary id %d does not increase over the previous id %d \
                    in traversal order"
                   id !prev);
            prev := id;
            if id < 0 || id >= slices_len then
              add
                (Diag.error Boundary_id_range ~func:fn.name ~block:bi ~instr:ii
                   "boundary id %d outside the recovery table [0,%d)" id
                   slices_len)
            else if boundary_owner.(id) <> fn.name then
              add
                (Diag.error Boundary_id_range ~func:fn.name ~block:bi ~instr:ii
                   "boundary id %d is owned by %s, not %s" id
                   boundary_owner.(id) fn.name)
          | _ -> ())
        fn)
    prog.funcs;
  if !count <> slices_len then
    add
      (Diag.error Boundary_id_range ~func:prog.main ~block:(-1) ~instr:(-1)
         "program has %d boundaries but the recovery table has %d entries"
         !count slices_len);
  List.rev !diags

(* ---- checkpoint placement ---- *)

(* Each Ckpt must be followed, within its block and across only further
   Ckpts, by the Boundary it checkpoints for. *)
let ckpt_placement_diags (fn : Prog.func) : Diag.t list =
  let diags = ref [] in
  Array.iteri
    (fun bi (blk : Prog.block) ->
      let rec go ii = function
        | [] -> ()
        | Types.Ckpt r :: rest ->
          let rec attached = function
            | Types.Ckpt _ :: tl -> attached tl
            | Types.Boundary _ :: _ -> true
            | _ -> false
          in
          if not (attached rest) then
            diags :=
              Diag.error Ckpt_placement ~func:fn.name ~block:bi ~instr:ii
                "checkpoint of r%d is not attached to a following boundary" r
              :: !diags;
          go (ii + 1) rest
        | _ :: rest -> go (ii + 1) rest
      in
      go 0 blk.instrs)
    fn.blocks;
  List.rev !diags

(* ---- stores into the checkpoint slot area ---- *)

(* Block-local constant propagation over registers; enough to catch
   hard-coded checkpoint-area addresses without a whole-program value
   analysis. [La] yields unknown: globals are laid out from
   [Layout.global_base], far below [Layout.ckpt_base]. *)
let ckpt_area_diags (fn : Prog.func) : Diag.t list =
  let diags = ref [] in
  let flag ~bi ~ii base_const off what =
    let addr = base_const + off in
    if Layout.is_ckpt_addr addr then
      diags :=
        Diag.error Ckpt_area_store ~func:fn.name ~block:bi ~instr:ii
          "%s targets address 0x%x inside the register-checkpoint area" what
          addr
        :: !diags
  in
  Array.iteri
    (fun bi (blk : Prog.block) ->
      let const : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let cval = function
        | Types.Imm v -> Some v
        | Types.Reg r -> Hashtbl.find_opt const r
      in
      let set r = function
        | Some v -> Hashtbl.replace const r v
        | None -> Hashtbl.remove const r
      in
      List.iteri
        (fun ii ins ->
          (match ins with
          | Types.Store (base, off, _) ->
            Option.iter
              (fun c -> flag ~bi ~ii c off "store")
              (Hashtbl.find_opt const base)
          | Types.Atomic_rmw (_, _, base, off, _) ->
            Option.iter
              (fun c -> flag ~bi ~ii c off "atomic rmw")
              (Hashtbl.find_opt const base)
          | Types.Cas (_, base, off, _, _) ->
            Option.iter
              (fun c -> flag ~bi ~ii c off "cas")
              (Hashtbl.find_opt const base)
          | _ -> ());
          match ins with
          | Types.Mov (dst, src) -> set dst (cval src)
          | Types.Bin (op, dst, a, b) -> (
            match (cval a, cval b) with
            | Some x, Some y -> set dst (Some (Eval.binop op x y))
            | _ -> set dst None)
          | Types.Cmp (op, dst, a, b) -> (
            match (cval a, cval b) with
            | Some x, Some y -> set dst (Some (Eval.cmpop op x y))
            | _ -> set dst None)
          | _ -> ( match Types.def ins with Some d -> set d None | None -> ()))
        blk.instrs)
    fn.blocks;
  List.rev !diags

(** Configuration-independent structural checks of one function. *)
let check_func (fn : Prog.func) : Diag.t list =
  ckpt_placement_diags fn @ ckpt_area_diags fn
