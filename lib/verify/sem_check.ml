(** Semantic translation validation of recovery slices — implementation.
    See the interface for the architecture; the short version:

    - symbolic forward dataflow on [Cwsp_analysis.Dataflow], state =
      (register -> symbolic value, checkpoint slot -> symbolic value);
    - one proof obligation per (boundary, slice entry): slice value
      equals the live-in register value at the boundary;
    - discharge by normalization-equality, refute by deterministic
      random valuation of the symbols, degrade to a warning otherwise.

    Soundness shape: an *error* is only emitted with a concrete witness
    valuation under which the slice restores a different value than the
    region consumed, so errors cannot be abstraction noise (modulo the
    two modeled opacities: memory loads are free symbols, and phi
    symbols identify the most recent dynamic visit of their join
    point). A *proof* relies on phi/origin symbol identity; the corner
    where a symbol written into a slot survives a re-visit of its join
    point without an intervening checkpoint refresh is deliberately
    accepted and documented (DESIGN.md §8) — the crash-injection
    harness covers it dynamically. *)

open Cwsp_ir
open Cwsp_analysis
open Cwsp_ckpt

(* ---- symbolic values ---- *)

type sym =
  | Param of int         (* entry value of parameter register *)
  | Origin of int * int  (* opaque def at (block, instr): load/call/atomic *)
  | Phi_reg of int * int (* join of register r at entry of block bi *)
  | Phi_slot of int * int(* join of slot r at entry of block bi *)

type sv =
  | Bot                  (* undefined register / slot never written *)
  | Imm of int
  | Addr of string
  | Sym of sym
  | SBin of Types.binop * sv * sv
  | SCmp of Types.cmpop * sv * sv
  | Var of int           (* unification variable (classification only) *)
  | Merge of sv * sv     (* join disagreement, collapsed to Phi_* by canon *)
  | Top                  (* abstraction overflow *)

let rec size = function
  | Bot | Imm _ | Addr _ | Sym _ | Var _ | Top -> 1
  | SBin (_, a, b) | SCmp (_, a, b) | Merge (a, b) -> 1 + size a + size b

let max_size = 64

let rec contains p v =
  p v
  ||
  match v with
  | SBin (_, a, b) | SCmp (_, a, b) | Merge (a, b) -> contains p a || contains p b
  | Bot | Imm _ | Addr _ | Sym _ | Var _ | Top -> false

let has_bot = contains (fun v -> v = Bot)
let has_top = contains (fun v -> v = Top)

let commutative = function
  | Types.Add | Types.Mul | Types.And | Types.Or | Types.Xor -> true
  | Types.Sub | Types.Div | Types.Rem | Types.Shl | Types.Lshr | Types.Ashr ->
    false

(* Light normalization: constant folding, unit/absorbing elements, and a
   canonical operand order for commutative operators — enough that the
   pipeline's remat expressions and the re-derived dataflow values agree
   structurally whenever they were built from the same defs. *)
let norm_bin op a b =
  match (a, b) with
  | (Bot, _ | _, Bot) -> Bot
  | (Top, _ | _, Top) -> Top
  | Imm x, Imm y -> Imm (Eval.binop op x y)
  | _ -> (
    match (op, a, b) with
    | (Types.Add | Types.Or | Types.Xor), Imm 0, x -> x
    | ( (Types.Add | Types.Sub | Types.Or | Types.Xor | Types.Shl | Types.Lshr
        | Types.Ashr),
        x,
        Imm 0 ) ->
      x
    | Types.Mul, Imm 1, x | Types.Mul, x, Imm 1 -> x
    | (Types.Mul | Types.And), Imm 0, _ | (Types.Mul | Types.And), _, Imm 0 ->
      Imm 0
    | _ ->
      let a, b =
        if commutative op && Stdlib.compare b a < 0 then (b, a) else (a, b)
      in
      let e = SBin (op, a, b) in
      if size e > max_size then Top else e)

let norm_cmp op a b =
  match (a, b) with
  | (Bot, _ | _, Bot) -> Bot
  | (Top, _ | _, Top) -> Top
  | Imm x, Imm y -> Imm (Eval.cmpop op x y)
  | _ ->
    let a, b =
      match op with
      | Types.Eq | Types.Ne ->
        if Stdlib.compare b a < 0 then (b, a) else (a, b)
      | Types.Lt | Types.Le | Types.Gt | Types.Ge -> (a, b)
    in
    let e = SCmp (op, a, b) in
    if size e > max_size then Top else e

let rec pp = function
  | Bot -> "undef"
  | Imm v -> string_of_int v
  | Addr g -> "@" ^ g
  | Sym (Param r) -> Printf.sprintf "p%d" r
  | Sym (Origin (bi, ii)) -> Printf.sprintf "mem(%d,%d)" bi ii
  | Sym (Phi_reg (bi, r)) -> Printf.sprintf "phi%d.r%d" bi r
  | Sym (Phi_slot (bi, r)) -> Printf.sprintf "phi%d.slot%d" bi r
  | SBin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (pp a) (Pp.binop_str op) (pp b)
  | SCmp (op, a, b) ->
    Printf.sprintf "(%s cmp.%s %s)" (pp a) (Pp.cmpop_str op) (pp b)
  | Var s -> Printf.sprintf "?slot%d" s
  | Merge (a, b) -> Printf.sprintf "merge(%s,%s)" (pp a) (pp b)
  | Top -> "?"

(* Truncate expression renderings in messages: mismatch reports must stay
   readable (and stable to diff) even for deep remat chains. *)
let pp_short v =
  let s = pp v in
  if String.length s <= 96 then s else String.sub s 0 93 ^ "..."

(* ---- the dataflow problem ---- *)

(* [synced.(r)] is a must-fact: on every path reaching this point, the
   last write to slot[r] was a [Ckpt r] not followed by a redefinition
   of r — i.e. slot[r] holds reg r's *current* value. It lets [canon]
   keep slot and register correlated across joins (both collapse to the
   same phi) without comparing merge trees, which would be a
   non-monotone decision and break fixpoint convergence. *)
type state = { regs : sv array; slots : sv array; synced : bool array }

let merge_sv a b = if a = b then a else if a = Bot then b else if b = Bot then a else Merge (a, b)

module Problem = struct
  module D = struct
    type t = state option (* None = bottom (no path reaches the block) *)

    let bottom = None
    let equal (a : t) (b : t) = a = b

    let join a b =
      match (a, b) with
      | None, x | x, None -> x
      | Some a, Some b ->
        Some
          {
            regs = Array.map2 merge_sv a.regs b.regs;
            slots = Array.map2 merge_sv a.slots b.slots;
            synced = Array.map2 ( && ) a.synced b.synced;
          }
  end

  (* Sticky-phi memo, one per solve: every (block, component) that ever
     collapsed a join disagreement to a phi. Once minted, the block
     keeps canonicalizing that component to its phi even when the
     current inflow happens to carry a single value — otherwise a loop
     ring can circulate two waves (the phi and a pre-phi value) that
     chase each other forever, and the fixpoint never settles. *)
  type ctx = {
    minted_reg : (int * int, unit) Hashtbl.t;
    minted_slot : (int * int, unit) Hashtbl.t;
  }

  let make_ctx () =
    { minted_reg = Hashtbl.create 64; minted_slot = Hashtbl.create 64 }

  let direction = `Forward

  let boundary _ctx (fn : Prog.func) =
    Some
      {
        regs =
          Array.init (max 1 fn.nregs) (fun r ->
              if r < fn.nparams then Sym (Param r) else Bot);
        slots = Array.make (max 1 fn.nregs) Bot;
        synced = Array.make (max 1 fn.nregs) false;
      }

  (* Collapse join disagreements to block-stable phi symbols: the solver
     recomputes the raw inflow from scratch at every visit, so [Merge]
     markers never accumulate across iterations, and the canonicalized
     out-states range over a finite vocabulary — which is what makes the
     fixpoint converge despite the unbounded expression domain. *)
  let canon ctx bi (s : state) : state =
    let regs =
      Array.mapi
        (fun r v ->
          match v with
          | Merge _ ->
            Hashtbl.replace ctx.minted_reg (bi, r) ();
            Sym (Phi_reg (bi, r))
          | v ->
            if Hashtbl.mem ctx.minted_reg (bi, r) then Sym (Phi_reg (bi, r))
            else v)
        s.regs
    in
    let slots =
      Array.mapi
        (fun r v ->
          (* A synced slot holds reg r's current value on every inbound
             path, so it follows the register through the join — alias
             it to the register's canonical value instead of minting an
             uncorrelated [Phi_slot], or every checkpoint kept across a
             join would be refuted as stale. The [synced] bit (not a
             comparison of merge trees) makes this decision monotone:
             it only ever decays true->false as more paths arrive. *)
          if s.synced.(r) then regs.(r)
          else
            match v with
            | Merge _ ->
              Hashtbl.replace ctx.minted_slot (bi, r) ();
              Sym (Phi_slot (bi, r))
            | v ->
              if Hashtbl.mem ctx.minted_slot (bi, r) then
                Sym (Phi_slot (bi, r))
              else v)
        s.slots
    in
    { regs; slots; synced = s.synced }

  let operand regs = function
    | Types.Imm v -> Imm v
    | Types.Reg r -> regs.(r)

  let step (s : state) bi ii ins =
    (match ins with
    | Types.Mov (d, o) -> s.regs.(d) <- operand s.regs o
    | Types.Bin (op, d, a, b) ->
      s.regs.(d) <- norm_bin op (operand s.regs a) (operand s.regs b)
    | Types.Cmp (op, d, a, b) ->
      s.regs.(d) <- norm_cmp op (operand s.regs a) (operand s.regs b)
    | Types.La (d, g) -> s.regs.(d) <- Addr g
    | Types.Load (d, _, _) -> s.regs.(d) <- Sym (Origin (bi, ii))
    | Types.Call (_, _, ret) ->
      Option.iter (fun d -> s.regs.(d) <- Sym (Origin (bi, ii))) ret
    | Types.Atomic_rmw (_, d, _, _, _) | Types.Cas (d, _, _, _, _) ->
      s.regs.(d) <- Sym (Origin (bi, ii))
    | Types.Ckpt r ->
      (* the checkpoint store: slot[r] <- current value of r. Callee
         checkpoints land at a deeper call-depth slot frame (see
         [Layout.ckpt_slot]), so calls do not touch this state. *)
      s.slots.(r) <- s.regs.(r);
      s.synced.(r) <- true
    | Types.Store _ | Types.Fence | Types.Flush _ | Types.Pfence
    | Types.Boundary _ -> ());
    (* a redefinition desynchronizes the register from its slot *)
    match Types.def ins with Some d -> s.synced.(d) <- false | None -> ()

  (* Debug tracing of a single block's inflow states, for diagnosing
     divergence or precision loss: CWSP_SEM_TRACE=<block> CWSP_SEM_FN=<fn>
     print 20 visits starting after CWSP_SEM_SKIP (default 0). *)
  let trace_gate =
    match (Sys.getenv_opt "CWSP_SEM_TRACE", Sys.getenv_opt "CWSP_SEM_FN") with
    | Some b, Some f ->
      let skip =
        match Sys.getenv_opt "CWSP_SEM_SKIP" with
        | Some s -> int_of_string s
        | None -> 0
      in
      Some (int_of_string b, f, skip)
    | _ -> None

  let trace_count = ref 0

  let trace fname bi (s : state) =
    match trace_gate with
    | Some (b, f, skip) when b = bi && f = fname ->
      incr trace_count;
      if !trace_count > skip && !trace_count <= skip + 20 then begin
        Printf.eprintf "-- b%d in (visit %d):\n" bi !trace_count;
        Array.iteri
          (fun r v ->
            if v <> Bot then
              Printf.eprintf "   r%d=%s slot=%s sync=%b\n" r (pp_short v)
                (pp_short s.slots.(r)) s.synced.(r))
          s.regs
      end
    | _ -> ()

  let transfer ctx (fn : Prog.func) bi inflow =
    match inflow with
    | None -> None
    | Some st ->
      trace fn.name bi st;
      let st = canon ctx bi st in
      let s =
        {
          regs = Array.copy st.regs;
          slots = Array.copy st.slots;
          synced = Array.copy st.synced;
        }
      in
      List.iteri (fun ii ins -> step s bi ii ins) fn.blocks.(bi).instrs;
      Some s
end

module Solver = Dataflow.Make (Problem)

(* ---- slice evaluation over the symbolic state ---- *)

(* [slot] resolves slot reads: the current symbolic slot contents for
   the proof/refutation, or unification variables for classification. *)
let rec sym_eval ~slot (e : Slice.expr) : sv =
  match e with
  | Slice.EImm v -> Imm v
  | Slice.EAddr g -> Addr g
  | Slice.ESlot r -> slot r
  | Slice.EBin (op, a, b) -> norm_bin op (sym_eval ~slot a) (sym_eval ~slot b)
  | Slice.ECmp (op, a, b) -> norm_cmp op (sym_eval ~slot a) (sym_eval ~slot b)

(* ---- refutation by deterministic random valuation ---- *)

let witness_rounds = 8

(* Deterministic value for a symbol: both sides of an obligation share
   the valuation, so disagreement is a genuine semantic counterexample
   (modulo the opacity of memory). splitmix via [Rng] keeps the values
   well spread; reproducible across runs and domains. *)
let valuation round key =
  let h = Hashtbl.hash key in
  Int64.to_int
    (Cwsp_util.Rng.next_int64
       (Cwsp_util.Rng.create ((h * 1_000_003) + (round * 7_919) + 1)))

let rec concrete round = function
  | Imm v -> v
  | Addr g -> valuation round ("addr", Hashtbl.hash g, 0)
  | Sym s -> valuation round ("sym", Hashtbl.hash s, 1)
  | SBin (op, a, b) -> Eval.binop op (concrete round a) (concrete round b)
  | SCmp (op, a, b) -> Eval.cmpop op (concrete round a) (concrete round b)
  | Bot | Top | Var _ | Merge _ ->
    invalid_arg "Sem_check.concrete: non-ground value"

(* Some round on which the two ground values disagree, if any. *)
let refute v_slice v_reg =
  let rec go round =
    if round >= witness_rounds then None
    else
      let a = concrete round v_slice and b = concrete round v_reg in
      if a <> b then Some (a, b) else go (round + 1)
  in
  go 0

(* Phi symbols occurring in a value. Distinct phis can be dynamically
   correlated (a join may merge r26 = 58 lshr r20 on every path, giving
   the uncorrelated-looking symbols phi.r26 and phi.r20), so a
   refutation that rests on valuating a phi one side has and the other
   lacks is not a genuine counterexample. Param and Origin symbols are
   exempt: a correct slice restores a register from its own checkpoint
   data, so both sides of a true obligation name the same loads, calls
   and parameters. *)
let phi_syms v =
  let rec go acc = function
    | Sym (Phi_reg _ as s) | Sym (Phi_slot _ as s) -> s :: acc
    | SBin (_, a, b) | SCmp (_, a, b) | Merge (a, b) -> go (go acc a) b
    | Imm _ | Addr _ | Sym _ | Var _ | Bot | Top -> acc
  in
  List.sort_uniq Stdlib.compare (go [] v)

let phi_sets_agree v_slice v_reg = phi_syms v_slice = phi_syms v_reg

(* ---- mismatch classification ---- *)

(* Does the slice re-evaluate to the live-in value once its slot reads
   are treated as unknowns? If yes the formula shape is consistent and
   the defect is the slot *contents* — a pruned-but-needed or clobbered
   checkpoint — which recovery debugging wants pointed at the slot, not
   at the expression. *)
let slot_contents_explain (e : Slice.expr) (v_reg : sv) : bool =
  let shape = sym_eval ~slot:(fun r -> Var r) e in
  let binding : (int, sv) Hashtbl.t = Hashtbl.create 4 in
  let rec unify a b =
    match (a, b) with
    | Var s, t -> (
      match Hashtbl.find_opt binding s with
      | Some t' -> t' = t
      | None ->
        Hashtbl.replace binding s t;
        true)
    | SBin (o1, a1, b1), SBin (o2, a2, b2) -> o1 = o2 && unify a1 a2 && unify b1 b2
    | SCmp (o1, a1, b1), SCmp (o2, a2, b2) -> o1 = o2 && unify a1 a2 && unify b1 b2
    | a, b -> a = b
  in
  unify shape v_reg

(* ---- the per-function check ---- *)

let check_func ~(slices : Slice.t array) ~(boundary_owner : string array)
    (fn : Prog.func) : Diag.t list =
  let ctx = Problem.make_ctx () in
  let r = Solver.solve ctx fn in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  Array.iteri
    (fun bi (blk : Prog.block) ->
      match r.inb.(bi) with
      | None -> () (* unreachable: no crash can land here *)
      | Some entry ->
        (* Replay with the solve's mint memo: canon decisions here must
           match the final solver iteration exactly. *)
        let st = Problem.canon ctx bi entry in
        let s =
          {
            regs = Array.copy st.regs;
            slots = Array.copy st.slots;
            synced = Array.copy st.synced;
          }
        in
        List.iteri
          (fun ii ins ->
            (match ins with
            | Types.Boundary id
              when id >= 0
                   && id < Array.length slices
                   && boundary_owner.(id) = fn.name ->
              (* The state at the boundary instruction is the region-entry
                 state: attached checkpoints already executed, so [s.slots]
                 is exactly what recovery reads after reverting the
                 checkpoint-area stores of unpersisted regions — for every
                 crash site inside this region. *)
              List.iter
                (fun (reg, expr) ->
                  let v_slice = sym_eval ~slot:(fun r2 -> s.slots.(r2)) expr in
                  let v_reg = s.regs.(reg) in
                  if v_slice = v_reg then ()
                  else if has_bot v_slice then
                    add
                      (Diag.error Stale_slot_read ~func:fn.name ~block:bi
                         ~instr:ii
                         "slice for r%d at region %d reads a checkpoint slot \
                          that no surviving checkpoint has written on any \
                          path to this boundary"
                         reg id)
                  else if has_bot v_reg then
                    add
                      (Diag.warning Slice_unprovable ~func:fn.name ~block:bi
                         ~instr:ii
                         "r%d is live into region %d but has no definition on \
                          some path; cannot compare against its slice"
                         reg id)
                  else if has_top v_slice || has_top v_reg then
                    add
                      (Diag.warning Slice_unprovable ~func:fn.name ~block:bi
                         ~instr:ii
                         "slice for r%d at region %d: symbolic value exceeded \
                          the abstraction budget; equality not proven"
                         reg id)
                  else if not (phi_sets_agree v_slice v_reg) then
                    add
                      (Diag.warning Slice_unprovable ~func:fn.name ~block:bi
                         ~instr:ii
                         "slice for r%d at region %d: %s vs %s involve \
                          join symbols not shared by both sides; equality \
                          depends on cross-join correlations the symbolic \
                          domain does not track"
                         reg id (pp_short v_slice) (pp_short v_reg))
                  else
                    match refute v_slice v_reg with
                    | Some (got, want) ->
                      if slot_contents_explain expr v_reg then
                        add
                          (Diag.error Stale_slot_read ~func:fn.name ~block:bi
                             ~instr:ii
                             "slice for r%d at region %d reads a slot holding \
                              the wrong vintage: restores %s but region entry \
                              saw %s (witness: %d vs %d)"
                             reg id (pp_short v_slice) (pp_short v_reg) got
                             want)
                      else
                        add
                          (Diag.error Slice_value_mismatch ~func:fn.name
                             ~block:bi ~instr:ii
                             "slice for r%d at region %d restores %s but its \
                              value at region entry is %s (witness: %d vs %d)"
                             reg id (pp_short v_slice) (pp_short v_reg) got
                             want)
                    | None ->
                      add
                        (Diag.warning Slice_unprovable ~func:fn.name ~block:bi
                           ~instr:ii
                           "slice for r%d at region %d agrees on %d random \
                            valuations but is not structurally provable: %s \
                            vs %s"
                           reg id witness_rounds (pp_short v_slice)
                           (pp_short v_reg)))
                slices.(id)
            | _ -> ());
            Problem.step s bi ii ins)
          blk.instrs)
    fn.blocks;
  List.rev !diags

(** Semantic diagnostics for a compiled program; configurations without
    checkpoints have no slices to validate. *)
let check (compiled : Cwsp_compiler.Pipeline.compiled) : Diag.t list =
  let cfg = compiled.Cwsp_compiler.Pipeline.cconfig in
  if not (cfg.Cwsp_compiler.Pipeline.region_formation && cfg.Cwsp_compiler.Pipeline.checkpoints)
  then []
  else
    List.concat_map
      (fun (_, fn) ->
        check_func ~slices:compiled.Cwsp_compiler.Pipeline.slices
          ~boundary_owner:compiled.Cwsp_compiler.Pipeline.boundary_owner fn)
      compiled.Cwsp_compiler.Pipeline.prog.funcs
