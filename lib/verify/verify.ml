(** Top-level driver of the static crash-consistency verifier.

    [run] re-derives the cWSP invariants appropriate to the compile
    configuration — structural lints always; idempotence (antidependence
    freedom + boundary placement) and boundary-id discipline once region
    formation ran; checkpoint coverage once checkpoints were inserted —
    and returns the combined diagnostics. The verifier shares only the
    base analyses ([Alias], [Liveness], [Cfg], [Loops]) with the
    compiler; every judgement about boundaries, checkpoints and slices is
    recomputed from the final program, translation-validation style, so
    a bug in [Region_form] or [Pass] shows up as a diagnostic here rather
    than as silent state corruption after a power failure. *)

open Cwsp_ir
open Cwsp_compiler
module Obs = Cwsp_obs.Obs

(* Per-tier wall-clock distributions across every [run] in the process. *)
let h_structural = Obs.Hist.make "verify.tier_us.structural"
let h_ids = Obs.Hist.make "verify.tier_us.ids"
let h_idem = Obs.Hist.make "verify.tier_us.idem"
let h_ckpt = Obs.Hist.make "verify.tier_us.ckpt"
let h_semantic = Obs.Hist.make "verify.tier_us.semantic"
let h_persist = Obs.Hist.make "verify.tier_us.persist"
let h_race = Obs.Hist.make "verify.tier_us.race"

(* Time one verifier tier: a span on the trace plus a sample in the
   tier's latency histogram. Single branch when instrumentation is off. *)
let timed h name f =
  if not !Obs.on then f ()
  else begin
    Obs.span_begin ~cat:"verify" name;
    let t0 = Obs.now_us () in
    Fun.protect ~finally:Obs.span_end (fun () ->
        let r = f () in
        Obs.Hist.add h (Obs.now_us () -. t0);
        r)
  end

let run ?(sem = true) (c : Pipeline.compiled) : Diag.t list =
  let cfg = c.Pipeline.cconfig in
  let (prog : Prog.t) = c.Pipeline.prog in
  let per_func f = List.concat_map (fun (_, fn) -> f fn) prog.funcs in
  let structural =
    timed h_structural "tier:structural" (fun () ->
        per_func Struct_check.check_func)
  in
  let ids =
    if cfg.Pipeline.region_formation then
      timed h_ids "tier:ids" (fun () ->
          Struct_check.id_diags
            ~slices_len:(Array.length c.Pipeline.slices)
            ~boundary_owner:c.Pipeline.boundary_owner prog)
    else []
  in
  let idem =
    if cfg.Pipeline.region_formation then
      timed h_idem "tier:idem" (fun () -> per_func Idem_check.check)
    else []
  in
  let ckpt =
    if cfg.Pipeline.region_formation && cfg.Pipeline.checkpoints then
      timed h_ckpt "tier:ckpt" (fun () -> Ckpt_check.check c)
    else []
  in
  let semantic =
    if sem && cfg.Pipeline.region_formation && cfg.Pipeline.checkpoints then
      timed h_semantic "tier:semantic" (fun () -> Sem_check.check c)
    else []
  in
  let persist =
    (* only explicit-persistency compiles promise static durability; the
       implicit mode persists in hardware, so the obligations are vacuous *)
    if cfg.Pipeline.persist_mode = Pipeline.Explicit
       && cfg.Pipeline.region_formation
    then timed h_persist "tier:persist" (fun () -> per_func Persist_check.check_func)
    else []
  in
  let race =
    (* SPMD data-race freedom is a property of the final program under
       every configuration (the SC-for-DRF premise of [Multi]), so the
       tier arms on the entry convention alone. *)
    if Race_check.spmd_entry prog <> None then
      timed h_race "tier:race" (fun () -> Race_check.check prog)
    else []
  in
  structural @ ids @ idem @ ckpt @ semantic @ persist @ race

let errors diags = List.filter Diag.is_error diags

let normalize diags = List.sort_uniq Diag.compare diags

let fired diags =
  List.sort_uniq compare
    (List.map
       (fun (d : Diag.t) ->
         (Diag.rule_name d.rule, Diag.severity_name d.severity))
       diags)

let report diags =
  String.concat "\n" (List.map Diag.to_string (normalize diags))

let report_json diags =
  match normalize diags with
  | [] -> "[]"
  | ds ->
    Printf.sprintf "[\n  %s\n]"
      (String.concat ",\n  " (List.map Diag.to_json ds))

let check_exn c =
  match errors (run c) with
  | [] -> ()
  | errs ->
    failwith
      (Printf.sprintf "cwsp_verify: %d error(s) in compiled program:\n%s"
         (List.length errs) (report errs))

(** Make every [Pipeline.compile] in the process verify its own output. *)
let install_pipeline_hook () = Pipeline.set_post_compile_hook check_exn
