(** Independent idempotence verification (paper Section IV-A).

    [Cwsp_idem.Antidep] both drives region formation and re-checks its
    result, so a bug there is invisible to the pipeline. This module
    re-derives the antidependence-freedom invariant with a different
    algorithm: for every may-aliasing (load, store) pair it asks whether
    the store can execute after the load with no region boundary
    committing in between, by a forward instruction-level search from the
    load that stops at boundaries — rather than Antidep's block-level
    boundary-position precomputation.

    It also checks the boundary *placement* rules of [Region_form] that
    the antidependence test alone cannot see: a boundary opens every
    function, every loop header starts a fresh region (one per
    iteration), synchronization points are isolated into their own
    single-instruction region, and every call site is followed by a
    boundary. *)

open Cwsp_ir
open Cwsp_analysis

let is_boundary = function Types.Boundary _ -> true | _ -> false
let is_ckpt = function Types.Ckpt _ -> true | _ -> false

(* ---- antidependence re-derivation ---- *)

(** All uncut may-alias antidependences, found by forward search from each
    load. A path is a sequence of instruction positions in execution
    order containing no [Boundary]; reaching a may-aliasing store over
    such a path is exactly the re-execution hazard of Section IV-A. *)
let antidep_diags (fn : Prog.func) : Diag.t list =
  let accesses = Alias.accesses fn in
  let loads = List.filter (fun (a : Alias.access) -> a.reads) accesses in
  let code = Array.map (fun (b : Prog.block) -> Array.of_list b.instrs) fn.blocks in
  (* write accesses indexed by position, for the may-alias test *)
  let write_sym : (int * int, Alias.sym) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (a : Alias.access) ->
      if a.writes then Hashtbl.replace write_sym (a.a_bi, a.a_ii) a.sym)
    accesses;
  let diags = ref [] in
  let check_load (l : Alias.access) =
    let entered = Array.make (Array.length fn.blocks) false in
    let worklist = Queue.create () in
    (* scan block [bi] from instruction [pos]; returns without enqueueing
       successors when a boundary cuts the path *)
    let rec scan bi pos =
      if pos >= Array.length code.(bi) then
        List.iter
          (fun s ->
            if not entered.(s) then begin
              entered.(s) <- true;
              Queue.add s worklist
            end)
          (Cfg.successors fn bi)
      else if is_boundary code.(bi).(pos) then ()
      else begin
        (match Hashtbl.find_opt write_sym (bi, pos) with
        | Some ssym
          when (bi, pos) <> (l.a_bi, l.a_ii) && Alias.may_alias l.sym ssym ->
          diags :=
            Diag.error Antidep ~func:fn.name ~block:bi ~instr:pos
              "store may overwrite the input of load at (%d,%d) with no \
               boundary in between"
              l.a_bi l.a_ii
            :: !diags
        | _ -> ());
        scan bi (pos + 1)
      end
    in
    scan l.a_bi (l.a_ii + 1);
    while not (Queue.is_empty worklist) do
      scan (Queue.pop worklist) 0
    done
  in
  List.iter check_load loads;
  List.rev !diags

(* ---- boundary placement rules ---- *)

(* First non-checkpoint instruction of a block, if any. *)
let first_real_instr (blk : Prog.block) =
  List.find_opt (fun ins -> not (is_ckpt ins)) blk.instrs

(* Next non-checkpoint instruction strictly after position [ii]. *)
let next_real_instr code ~bi ~ii =
  let n = Array.length code.(bi) in
  let rec go j =
    if j >= n then None
    else if is_ckpt code.(bi).(j) then go (j + 1)
    else Some code.(bi).(j)
  in
  go (ii + 1)

(* Previous non-checkpoint instruction strictly before position [ii]. *)
let prev_real_instr code ~bi ~ii =
  let rec go j =
    if j < 0 then None
    else if is_ckpt code.(bi).(j) then go (j - 1)
    else Some code.(bi).(j)
  in
  go (ii - 1)

let placement_diags (fn : Prog.func) : Diag.t list =
  let code = Array.map (fun (b : Prog.block) -> Array.of_list b.instrs) fn.blocks in
  let headers = Loops.headers fn in
  let reachable = Cfg.reachable fn in
  let diags = ref [] in
  let err rule ~block ~instr fmt =
    Printf.ksprintf
      (fun m ->
        diags := Diag.error rule ~func:fn.name ~block ~instr "%s" m :: !diags)
      fmt
  in
  (* entry region *)
  (match first_real_instr fn.blocks.(0) with
  | Some (Types.Boundary _) -> ()
  | Some _ | None ->
    err Entry_boundary ~block:0 ~instr:0 "function entry is not a region boundary");
  Array.iteri
    (fun bi (blk : Prog.block) ->
      if reachable.(bi) then begin
        (* loop headers: one region per iteration *)
        if bi > 0 && headers.(bi) then (
          match first_real_instr blk with
          | Some (Types.Boundary _) -> ()
          | Some _ | None ->
            err Loop_boundary ~block:bi ~instr:0
              "loop header does not start a fresh region");
        List.iteri
          (fun ii ins ->
            if Types.is_sync ins then begin
              (match prev_real_instr code ~bi ~ii with
              | Some (Types.Boundary _) -> ()
              | Some _ | None ->
                err Sync_boundary ~block:bi ~instr:ii
                  "synchronization point not preceded by a boundary");
              match next_real_instr code ~bi ~ii with
              | Some (Types.Boundary _) -> ()
              | Some _ | None ->
                err Sync_boundary ~block:bi ~instr:ii
                  "synchronization point not followed by a boundary"
            end
            else
              match ins with
              | Types.Call (callee, _, _) -> (
                match next_real_instr code ~bi ~ii with
                | Some (Types.Boundary _) -> ()
                | Some _ | None ->
                  err Call_boundary ~block:bi ~instr:ii
                    "call to %s not followed by a boundary" callee)
              | _ -> ())
          blk.instrs
      end)
    fn.blocks;
  List.rev !diags

(** All idempotence diagnostics of one region-formed function. *)
let check (fn : Prog.func) : Diag.t list =
  antidep_diags fn @ placement_diags fn
