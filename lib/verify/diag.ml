(** Structured diagnostics for the static crash-consistency verifier.

    Every check reports a [t] rather than a bare string so that callers
    (the CLI, the test oracles, the pipeline hook) can filter by rule and
    severity, count errors, and render uniformly. The position fields use
    the same (block, instruction) coordinates as the rest of the compiler;
    program-level findings use block [-1]. *)

type severity = Error | Warning

type rule =
  | Antidep              (* uncut memory antidependence (IV-A) *)
  | Entry_boundary       (* function entry not opened by a boundary *)
  | Loop_boundary        (* loop header without a boundary *)
  | Sync_boundary        (* atomic/fence not isolated by boundaries *)
  | Call_boundary        (* call site without a trailing boundary *)
  | Live_in_uncovered    (* live-in register with no recovery-slice entry (IV-B) *)
  | Slot_not_checkpointed(* slice reads a slot with no surviving checkpoint (IV-C) *)
  | Slot_ref_undefined   (* slice reads a register defined only after its boundary *)
  | Slice_unknown_global (* slice address expression names a missing global *)
  | Duplicate_boundary_id
  | Nonmonotone_boundary_id
  | Boundary_id_range    (* id outside the slice table, or owner mismatch *)
  | Ckpt_placement       (* checkpoint not attached to a following boundary *)
  | Ckpt_area_store      (* user store targets the checkpoint slot region *)
  | Slice_value_mismatch (* semantic: slice provably restores a wrong value *)
  | Stale_slot_read      (* semantic: slot read holds the wrong vintage *)
  | Slice_unprovable     (* semantic: neither proven nor refuted *)
  | Missing_flush        (* persist: store may be dirty at a commit point *)
  | Missing_fence        (* persist: flushed but unfenced at a commit point *)
  | Early_commit         (* persist: the fence exists but after the commit *)
  | Redundant_flush      (* persist lint: flush covers no dirty site *)
  | Data_race            (* race: conflicting pair, locks prove nothing *)
  | Unlocked_shared_write(* race: conflicting pair with no locks at all *)
  | Tid_overlap_unprovable (* race: tid-indexed footprints not provably disjoint *)
  | Redundant_atomic     (* race lint: atomic on a thread-private word *)

let rule_name = function
  | Antidep -> "antidep"
  | Entry_boundary -> "entry-boundary"
  | Loop_boundary -> "loop-boundary"
  | Sync_boundary -> "sync-boundary"
  | Call_boundary -> "call-boundary"
  | Live_in_uncovered -> "live-in-uncovered"
  | Slot_not_checkpointed -> "slot-not-checkpointed"
  | Slot_ref_undefined -> "slot-ref-undefined"
  | Slice_unknown_global -> "slice-unknown-global"
  | Duplicate_boundary_id -> "duplicate-boundary-id"
  | Nonmonotone_boundary_id -> "nonmonotone-boundary-id"
  | Boundary_id_range -> "boundary-id-range"
  | Ckpt_placement -> "ckpt-placement"
  | Ckpt_area_store -> "ckpt-area-store"
  | Slice_value_mismatch -> "slice-value-mismatch"
  | Stale_slot_read -> "stale-slot-read"
  | Slice_unprovable -> "slice-unprovable"
  | Missing_flush -> "missing-flush"
  | Missing_fence -> "missing-fence"
  | Early_commit -> "early-commit"
  | Redundant_flush -> "redundant-flush"
  | Data_race -> "data-race"
  | Unlocked_shared_write -> "unlocked-shared-write"
  | Tid_overlap_unprovable -> "tid-overlap-unprovable"
  | Redundant_atomic -> "redundant-atomic"

let severity_name = function Error -> "error" | Warning -> "warning"

type t = {
  rule : rule;
  severity : severity;
  func : string;
  block : int; (* -1 for program-level findings *)
  instr : int;
  message : string;
}

let make severity rule ~func ~block ~instr fmt =
  Printf.ksprintf
    (fun message -> { rule; severity; func; block; instr; message })
    fmt

let error rule ~func ~block ~instr fmt = make Error rule ~func ~block ~instr fmt
let warning rule ~func ~block ~instr fmt = make Warning rule ~func ~block ~instr fmt

let to_string d =
  let pos =
    if d.block < 0 then d.func
    else Printf.sprintf "%s:(%d,%d)" d.func d.block d.instr
  in
  Printf.sprintf "[%s] %s %s: %s" (severity_name d.severity) (rule_name d.rule)
    pos d.message

(* RFC 8259 string escaping; messages embed register/position text only,
   but escape defensively so the JSON stream is always well-formed. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    {|{"rule":"%s","severity":"%s","func":"%s","block":%d,"instr":%d,"message":"%s"}|}
    (rule_name d.rule) (severity_name d.severity) (json_escape d.func) d.block
    d.instr (json_escape d.message)

(* Variant declaration order for the rule component; Stdlib.compare on
   constant constructors follows it. *)
let compare a b =
  let c = Stdlib.compare a.rule b.rule in
  if c <> 0 then c
  else
    let c = String.compare a.func b.func in
    if c <> 0 then c
    else
      let c = Int.compare a.block b.block in
      if c <> 0 then c
      else
        let c = Int.compare a.instr b.instr in
        if c <> 0 then c
        else
          let c = Stdlib.compare a.severity b.severity in
          if c <> 0 then c else String.compare a.message b.message

let is_error d = d.severity = Error
