(** Checkpoint-coverage verification (paper Sections IV-B, IV-C, VII).

    Recomputes each boundary's live-in set with a fresh
    [Cwsp_analysis.Liveness] run over the *final* (post-pruning) code and
    proves that recovery can rebuild every live-in register: each one
    must have a recovery-slice entry, every checkpoint slot a slice reads
    must belong to a checkpoint instruction that survived Penny pruning,
    slot reads must name registers whose defining checkpoint can actually
    have executed before the boundary, and address expressions must
    resolve against the program's globals — the three value sources of
    Fig. 4(b), checked independently of the [Pass] that built the
    slices. *)

open Cwsp_ir
open Cwsp_analysis
open Cwsp_ckpt
module IntSetU = Set.Make (Int)

(* Positions (bi, ii, id) of every boundary of the function. *)
let boundaries_of (fn : Prog.func) =
  Prog.fold_instrs
    (fun acc bi ii ins ->
      match ins with Types.Boundary id -> (bi, ii, id) :: acc | _ -> acc)
    [] fn
  |> List.rev

(* Registers with a surviving Ckpt instruction anywhere in the function. *)
let checkpointed_regs (fn : Prog.func) =
  Prog.fold_instrs
    (fun acc _ _ ins ->
      match ins with Types.Ckpt r -> IntSetU.add r acc | _ -> acc)
    IntSetU.empty fn

let check_func ~(prog : Prog.t) ~(slices : Slice.t array)
    ~(boundary_owner : string array) (fn : Prog.func) : Diag.t list =
  let live = Liveness.compute fn in
  let reachable = Cfg.reachable fn in
  let ckpted = checkpointed_regs fn in
  (* def positions per register, for the slot-validity check *)
  let defs : (int, (int * int) list) Hashtbl.t = Hashtbl.create 64 in
  Prog.iter_instrs
    (fun bi ii ins ->
      match Types.def ins with
      | Some d -> Hashtbl.replace defs d ((bi, ii) :: (try Hashtbl.find defs d with Not_found -> []))
      | None -> ())
    fn;
  (* registers with some definition reaching each block entry, from the
     shared dataflow solver (forward may-analysis, union join) *)
  let reach = Reaching_defs.solve fn in
  let def_reaches r ~bi ~ii =
    Reaching_defs.IntSet.mem r reach.Reaching_defs.inb.(bi)
    ||
    match Hashtbl.find_opt defs r with
    | None -> false
    | Some ps -> List.exists (fun (dbi, dii) -> dbi = bi && dii < ii) ps
  in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  List.iter
    (fun (bi, ii, id) ->
      if
        reachable.(bi)
        && id >= 0
        && id < Array.length slices
        && boundary_owner.(id) = fn.name
        (* out-of-range / foreign ids are Struct_check findings *)
      then begin
        let slice = slices.(id) in
        (* (1) every live-in register is covered by a slice entry *)
        Liveness.live_before live ~bi ~ii
        |> Liveness.IntSet.iter (fun r ->
               if not (List.mem_assoc r slice) then
                 add
                   (Diag.error Live_in_uncovered ~func:fn.name ~block:bi
                      ~instr:ii
                      "register r%d is live into region %d but its recovery \
                       slice cannot restore it"
                      r id));
        List.iter
          (fun (r, expr) ->
            (* (2) referenced slots survived pruning *)
            List.iter
              (fun s ->
                if not (IntSetU.mem s ckpted) then
                  add
                    (Diag.error Slot_not_checkpointed ~func:fn.name ~block:bi
                       ~instr:ii
                       "slice for r%d at region %d reads slot[r%d] but no \
                        checkpoint of r%d survives pruning"
                       r id s s)
                else if
                  (* (3) the slot's register can have been defined (and hence
                     checkpointed) before the boundary runs *)
                  s >= fn.nparams && not (def_reaches s ~bi ~ii)
                then
                  add
                    (Diag.error Slot_ref_undefined ~func:fn.name ~block:bi
                       ~instr:ii
                       "slice for r%d at region %d reads slot[r%d], but r%d \
                        has no definition reaching this boundary"
                       r id s s))
              (Slice.slot_refs expr);
            (* (4) address expressions resolve *)
            List.iter
              (fun g ->
                if Prog.find_global prog g = None then
                  add
                    (Diag.error Slice_unknown_global ~func:fn.name ~block:bi
                       ~instr:ii
                       "slice for r%d at region %d takes the address of \
                        unknown global %s"
                       r id g))
              (Slice.expr_globals expr))
          slice
      end)
    (boundaries_of fn);
  List.rev !diags

(** Checkpoint-coverage diagnostics for every function of a compiled
    program that carries checkpoints. *)
let check (compiled : Cwsp_compiler.Pipeline.compiled) : Diag.t list =
  let { Cwsp_compiler.Pipeline.prog; slices; boundary_owner; _ } = compiled in
  List.concat_map
    (fun (_, fn) -> check_func ~prog ~slices ~boundary_owner fn)
    prog.funcs
