(** Persistency-order verifier tier ([Diag.Missing_flush] /
    [Missing_fence] / [Early_commit] / [Redundant_flush]).

    Re-derives [Persist_order] on the final program — independently of
    the insertion pass, translation-validation style — and proves that
    every store is durable before any commit point its region can reach:
    a region boundary, a call to a non-intrinsic function (whose entry
    boundary dynamically closes the caller's region), or a return (the
    modular contract that a function leaves its stores durable). Each
    diagnostic is witness-backed: the message carries the coordinates and
    alias class of the offending store, and the diagnostic position is
    the commit point it escapes through. *)

open Cwsp_ir
open Cwsp_analysis

(* Is there a pfence (or a full fence, which subsumes one) later in the
   block, after position [ii]? Distinguishes "no fence at all"
   (missing-fence) from "fenced, but the commit comes first"
   (early-commit). *)
let fence_after (code : Types.instr array) ~ii =
  let n = Array.length code in
  let rec go j =
    if j >= n then false
    else
      match code.(j) with
      | Types.Pfence | Types.Fence -> true
      | _ -> go (j + 1)
  in
  go (ii + 1)

(* Report every obligation in [st] escaping through the commit point at
   (bi, ii) described by [what]. *)
let report_escapes diags t ~fname ~bi ~ii ~fence_later ~what
    (st : Persist_order.state) =
  Persist_order.Site_map.iter
    (fun ((sb, si) as site) d ->
      let sym = Persist_order.string_of_sym (Persist_order.sym_at t site) in
      let d' =
        match d with
        | Persist_order.Dirty ->
          Diag.error Diag.Missing_flush ~func:fname ~block:bi ~instr:ii
            "store at (%d,%d) to [%s] may still be dirty in the cache at %s"
            sb si sym what
        | Persist_order.Flushed ->
          if fence_later then
            Diag.error Diag.Early_commit ~func:fname ~block:bi ~instr:ii
              "store at (%d,%d) to [%s] is flushed but the fence comes only \
               after %s"
              sb si sym what
          else
            Diag.error Diag.Missing_fence ~func:fname ~block:bi ~instr:ii
              "store at (%d,%d) to [%s] is flushed but not fenced before %s"
              sb si sym what
      in
      diags := d' :: !diags)
    st

let check_func (fn : Prog.func) : Diag.t list =
  let t = Persist_order.analyze fn in
  let fname = fn.name in
  let diags = ref [] in
  Array.iteri
    (fun bi (blk : Prog.block) ->
      if t.reachable.(bi) then begin
        let code = Array.of_list blk.instrs in
        Persist_order.iter_block t bi ~f:(fun ~ii ins ~before ~covered ->
            (match ins with
            | Types.Flush (_, off) when covered = [] ->
              let sym = Persist_order.string_of_sym
                  (Persist_order.sym_at t (bi, ii)) in
              diags :=
                Diag.warning Diag.Redundant_flush ~func:fname ~block:bi
                  ~instr:ii
                  "flush of [%s] (+%d) upgrades no dirty store on any path"
                  sym off
                :: !diags
            | _ -> ());
            if Persist_order.is_commit_instr ins then begin
              let what =
                match ins with
                | Types.Boundary id -> Printf.sprintf "region boundary %d" id
                | Types.Call (callee, _, _) ->
                  Printf.sprintf "the commit call to %s" callee
                | _ -> "a commit point"
              in
              report_escapes diags t ~fname ~bi ~ii
                ~fence_later:(fence_after code ~ii) ~what before
            end);
        match blk.term with
        | Types.Ret _ ->
          report_escapes diags t ~fname ~bi ~ii:(Array.length code)
            ~fence_later:false ~what:"the function return" t.outb.(bi)
        | Types.Jmp _ | Types.Br _ -> ()
      end)
    fn.blocks;
  List.rev !diags
