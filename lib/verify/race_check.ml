(** Verifier tier 7: static SPMD data-race freedom.

    [Cwsp_interp.Multi] is sequentially consistent *for data-race-free
    programs* (Section VIII); every multi-core result rests on that
    premise, and this tier is what discharges it. The actual analysis —
    tid-affine disjointness, the lockset dataflow with the named lock
    patterns, and the bottom-up interprocedural summaries — lives in
    [Cwsp_analysis.Race]; this module maps its findings onto the
    verifier's diagnostic surface:

    - [data-race] (error): a cross-thread conflicting pair whose locks
      prove no exclusion (disjoint locksets, broken release discipline,
      or mixed atomic/plain accesses to one word);
    - [unlocked-shared-write] (error): a conflicting pair with no locks
      held at all;
    - [tid-overlap-unprovable] (error): tid-indexed footprints the
      stride/range analysis cannot separate — either a proven collision
      or an unprovable one; both void the DRF certificate;
    - [redundant-atomic] (warning): an atomic RMW on a provably
      thread-private word.

    The tier arms itself only on programs with an SPMD entry (a unary
    ["worker"] function); everything else is vacuously certified. Its
    dynamic counterpart is [Cwsp_interp.Race_monitor], which
    cross-checks certificates on executed interleavings. *)

open Cwsp_ir
module Race = Cwsp_analysis.Race

let spmd_entry = Race.spmd_entry

let diag_of_finding ~worker (f : Race.finding) : Diag.t =
  let err rule =
    Diag.error rule ~func:worker ~block:f.f_bi ~instr:f.f_ii "%s" f.f_msg
  in
  match f.f_rule with
  | Race.Rdata_race -> err Diag.Data_race
  | Race.Runlocked_shared_write -> err Diag.Unlocked_shared_write
  | Race.Rtid_overlap_unprovable -> err Diag.Tid_overlap_unprovable
  | Race.Rredundant_atomic ->
    Diag.warning Diag.Redundant_atomic ~func:worker ~block:f.f_bi
      ~instr:f.f_ii "%s" f.f_msg

(** Race-check [prog]'s SPMD worker; [\[\]] when there is none. *)
let check (prog : Prog.t) : Diag.t list =
  match spmd_entry prog with
  | None -> []
  | Some worker ->
    List.map (diag_of_finding ~worker) (Race.check prog ~worker)
