(** Persistency-order verifier tier: independently re-derives
    [Cwsp_analysis.Persist_order] on the final program and reports every
    store whose durability is unproven at a commit point it can reach
    ([missing-flush] / [missing-fence] / [early-commit]), plus a
    [redundant-flush] lint for flushes that upgrade nothing on any path.
    Runs only for explicit-persistency compiles (see [Verify.run]). *)

open Cwsp_ir

val check_func : Prog.func -> Diag.t list
