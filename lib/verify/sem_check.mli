(** Semantic translation validation of recovery slices (IV-C / VII).

    The syntactic tiers prove that slices are *well-formed*; this tier
    proves they are *correct*: for every region boundary, evaluating the
    boundary's recovery slice over the NVM checkpoint-slot state a crash
    inside that region leaves behind must reproduce the region's live-in
    register values.

    The engine is a forward symbolic abstract interpretation over the
    shared [Cwsp_analysis.Dataflow] solver. The abstract state carries a
    symbolic value per register and per NVM checkpoint slot; opaque
    sources (parameters, loads, call returns, atomics) become named
    symbols, joins that disagree become boundary-stable phi symbols, and
    [Ckpt r] copies the register's symbolic value into its slot — the
    exact store the hardware performs. Crash sites inside a region all
    collapse to one obligation per boundary: recovery reverts every
    checkpoint-area store of unpersisted regions (see
    [Cwsp_recovery.Harness]), so the slice always evaluates against the
    slot state as of region entry, whatever instruction the power
    failure hit.

    Each slice entry is discharged three ways, in order: structural
    equality after normalization proves it; a random concrete valuation
    of the symbols on which the two sides disagree *refutes* it (the
    valuation is a genuine counterexample modulo the memory abstraction,
    reported as [Slice_value_mismatch], or [Stale_slot_read] when the
    slice re-evaluates correctly once its slot reads are treated as
    unknowns — i.e. the formula is right but a pruned or clobbered
    checkpoint left the wrong vintage in the slot); anything in between
    is a [Slice_unprovable] warning, never an error, which keeps the
    tier sound-for-errors on programs the abstraction cannot decide. *)

open Cwsp_ir
open Cwsp_ckpt

(** Semantic diagnostics for one function of a compiled program. *)
val check_func :
  slices:Slice.t array ->
  boundary_owner:string array ->
  Prog.func ->
  Diag.t list

(** Semantic diagnostics for every function of a compiled program that
    carries checkpoints (no-op on configurations without slices). *)
val check : Cwsp_compiler.Pipeline.compiled -> Diag.t list
