(** Independent idempotence verification (Section IV-A): re-derives
    memory-antidependence freedom over the final boundary placement with
    a forward path search (an algorithm disjoint from
    [Cwsp_idem.Antidep]'s), and checks the [Region_form] placement rules
    — entry boundary, loop-header boundaries, isolated synchronization
    points, post-call boundaries. *)

open Cwsp_ir

(** Antidependence diagnostics only. *)
val antidep_diags : Prog.func -> Diag.t list

(** Boundary placement diagnostics only. *)
val placement_diags : Prog.func -> Diag.t list

(** Both, for one region-formed function. *)
val check : Prog.func -> Diag.t list
