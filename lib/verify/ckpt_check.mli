(** Checkpoint-coverage verification (Sections IV-B, IV-C, VII):
    recomputes per-boundary live-ins on the final code and proves every
    live-in register is restorable from its recovery slice — slice entry
    present, referenced checkpoint slots survive pruning and are
    definable before the boundary, address expressions name real
    globals. *)

open Cwsp_ir
open Cwsp_ckpt

(** One function; [slices]/[boundary_owner] are the global tables of the
    compiled program it came from. *)
val check_func :
  prog:Prog.t ->
  slices:Slice.t array ->
  boundary_owner:string array ->
  Prog.func ->
  Diag.t list

(** Every function of a compiled program. *)
val check : Cwsp_compiler.Pipeline.compiled -> Diag.t list
