(** Word-sized checksums shared by the persistent record formats (undo
    logs, flight-recorder ring). *)

(** Avalanche hash of one word (splitmix64 finalizer), truncated to 62
    bits so it round-trips through OCaml ints. *)
val value_sum : int -> int

(** Order-sensitive accumulation: [combine acc v] folds [v] into [acc]
    such that swapped fields do not cancel. *)
val combine : int -> int -> int

(** Checksum of a whole field list (length-prefixed, order-sensitive). *)
val words : int list -> int
