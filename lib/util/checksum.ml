(** Word-sized checksums for persistent record formats.

    Both the per-MC undo logs ([Mc_logs]) and the flight-recorder ring
    ([Cwsp_flight.Recorder]) guard every durable record with a checksum
    so a post-crash reader can tell an intact record from a torn or
    bit-rotted one. The sum stands in for the CRC a memory controller
    would store beside each record: what matters for the model is that
    any single-field change moves the sum with overwhelming probability,
    that it is cheap, and that it round-trips through OCaml ints. *)

(* Word-sized avalanche (splitmix64 finalizer), truncated to 62 bits so
   the result is a valid OCaml int on 64-bit platforms. *)
let value_sum v =
  let open Int64 in
  let z = of_int v in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (shift_right_logical (logxor z (shift_right_logical z 31)) 2)

(* Order-sensitive combination, so swapped fields do not cancel. *)
let combine acc v = value_sum (acc lxor (v + 0x9E3779B9 + (acc lsl 6)))

(** Checksum of a field list, order-sensitively folded from a zero seed. *)
let words vs = List.fold_left combine (combine 0 (List.length vs)) vs
