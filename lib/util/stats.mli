(** Numeric helpers for aggregating simulation results. *)

(** Arithmetic mean; [nan] on the empty list. *)
val mean : float list -> float

(** Geometric mean — the paper's aggregate for normalized slowdowns.
    Raises [Invalid_argument] on non-positive inputs; [nan] when empty. *)
val gmean : float list -> float

(** Sample standard deviation (0 for fewer than two points). *)
val stddev : float list -> float

(** Smallest and largest element; raises [Invalid_argument] when empty. *)
val min_max : float list -> float * float

(** Streaming average accumulator (e.g. queue occupancy sampling). *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit

  (** Fold a pre-summed batch in: callers on an allocation-free path
      accumulate samples in an unboxed local and flush once. *)
  val add_sum : t -> sum:float -> count:int -> unit

  val mean : t -> float
  val count : t -> int

  (** Fold [src] into [into] (e.g. combining per-domain accumulators);
      [src] is left untouched. *)
  val merge : into:t -> t -> unit
end

(** Fixed-bucket histogram with quantile estimation. Bounds are strictly
    increasing inclusive upper bounds plus an implicit overflow bucket;
    fixed buckets make same-bounds histograms mergeable. *)
module Histogram : sig
  type t

  (** Raises [Invalid_argument] on empty or non-increasing bounds. *)
  val create : float array -> t

  val clear : t -> unit
  val add : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float

  (** (upper_bound, count) per bucket; the overflow bound is [infinity]. *)
  val buckets : t -> (float * int) list

  (** Estimated [q]-quantile (0 <= q <= 1), linearly interpolated within
      the owning bucket and clamped to the observed min/max; [nan] when
      empty. Raises [Invalid_argument] outside [0,1]. *)
  val quantile : t -> float -> float

  (** One-line quantile digest:
      ["count=N mean=M p50=A p90=B p99=C p999=D"] (["count=0"] when
      empty) — the shared renderer for metrics.json histogram lines and
      the bench harness's end-of-run summary. *)
  val summary : t -> string

  (** Fold [src] into [into]; raises [Invalid_argument] unless both share
      identical bounds. *)
  val merge : into:t -> t -> unit
end
