(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic choice in the repository — workload address streams,
    crash-injection points, property-test inputs that are not driven by
    qcheck — goes through this module so that simulations and experiments
    are bit-reproducible across runs and machines. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step: well-distributed, passes BigCrush, and trivially
   portable — exactly what a simulator seed stream needs. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [int t bound] returns a uniform value in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Uniform float in [0, 1). *)
let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992.0

(** Geometric-ish skewed index in [0, bound): small indices are much more
    likely. Used to synthesize workloads with temporal locality. *)
let skewed t bound =
  if bound <= 0 then invalid_arg "Rng.skewed: bound must be positive";
  let f = float t in
  let idx = int_of_float (f *. f *. f *. float_of_int bound) in
  if idx >= bound then bound - 1 else idx

(* A second finalizer with murmur3-style constants, distinct from the
   splitmix64 step above, so child streams share no outputs with the
   parent's raw sequence. *)
let remix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  logxor z (shift_right_logical z 33)

(** Split off an independent child generator. Advances the parent by one
    step; equal parent states yield equal children. *)
let split t = { state = remix (next_int64 t) }

(** The [i]-th child stream, without advancing the parent: equal
    (parent state, i) pairs always yield the same child, so fanned-out
    consumers (e.g. fault-campaign cells) get deterministic seeds
    regardless of evaluation order or pool width. *)
let stream t i =
  if i < 0 then invalid_arg "Rng.stream: negative index";
  let open Int64 in
  { state = remix (logxor t.state (mul (add (of_int i) 1L) 0x9E3779B97F4A7C15L)) }

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
