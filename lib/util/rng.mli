(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic choice in the repository — workload address streams,
    crash-injection points, fuzzed program shapes — goes through this
    module, so simulations and experiments are bit-reproducible across
    runs and machines. *)

type t

(** A fresh generator; equal seeds give equal streams. *)
val create : int -> t

(** An independent copy continuing from the same state. *)
val copy : t -> t

(** Next raw 64-bit output. *)
val next_int64 : t -> int64

(** Uniform value in [0, bound). Raises [Invalid_argument] on
    non-positive bounds. *)
val int : t -> int -> int

val bool : t -> bool

(** Uniform float in [0, 1). *)
val float : t -> float

(** Skewed index in [0, bound): small indices are much more likely; used
    to synthesize workloads with temporal locality. *)
val skewed : t -> int -> int

(** Split off an independent child generator (advances the parent by one
    step). The child's stream shares no outputs with the parent's. *)
val split : t -> t

(** [stream t i] is the [i]-th independent child stream; it does not
    advance the parent, and equal (parent state, i) pairs always yield
    the same child. Use for deterministic per-cell fan-out that must not
    depend on evaluation order or pool width. Raises [Invalid_argument]
    on negative indices. *)
val stream : t -> int -> t

(** Uniform element of a non-empty array. *)
val pick : t -> 'a array -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit
