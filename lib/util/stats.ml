(** Small numeric helpers used when aggregating simulation results.

    The paper reports per-suite and overall geometric means of normalized
    slowdowns; [gmean] is the workhorse. *)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(** Geometric mean. All inputs must be positive. *)
let gmean = function
  | [] -> nan
  | xs ->
    let n = List.length xs in
    let sum_logs =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.gmean: non-positive input";
          acc +. log x)
        0.0 xs
    in
    exp (sum_logs /. float_of_int n)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
      /. float_of_int (List.length xs - 1)
    in
    sqrt var

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

(** Accumulator for streaming averages (e.g. queue occupancy sampled every
    event). *)
module Acc = struct
  type t = { mutable sum : float; mutable count : int }

  let create () = { sum = 0.0; count = 0 }
  let add t v =
    t.sum <- t.sum +. v;
    t.count <- t.count + 1
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
  let count t = t.count

  (** Fold a pre-summed batch in: the timing engines accumulate their
      samples in an unboxed local (a float-field assignment on this
      mixed record would allocate per sample) and flush once per run. *)
  let add_sum t ~sum ~count =
    t.sum <- t.sum +. sum;
    t.count <- t.count + count

  (** Fold [src] into [into] (combining per-domain accumulators after a
      pool run); [src] is left untouched. *)
  let merge ~into src =
    into.sum <- into.sum +. src.sum;
    into.count <- into.count + src.count
end

(** Fixed-bucket histogram: [bounds] are strictly increasing inclusive
    upper bounds; one extra overflow bucket catches everything above the
    last bound. Buckets are fixed at creation so two histograms built
    from the same bounds can be merged (per-domain collection). *)
module Histogram = struct
  type t = {
    bounds : float array;
    counts : int array; (* length bounds + 1; last is overflow *)
    mutable sum : float;
    mutable n : int;
    mutable vmin : float;
    mutable vmax : float;
  }

  let create bounds =
    let k = Array.length bounds in
    if k = 0 then invalid_arg "Histogram.create: no buckets";
    for i = 1 to k - 1 do
      if bounds.(i) <= bounds.(i - 1) then
        invalid_arg "Histogram.create: bounds not strictly increasing"
    done;
    {
      bounds = Array.copy bounds;
      counts = Array.make (k + 1) 0;
      sum = 0.0;
      n = 0;
      vmin = infinity;
      vmax = neg_infinity;
    }

  let clear t =
    Array.fill t.counts 0 (Array.length t.counts) 0;
    t.sum <- 0.0;
    t.n <- 0;
    t.vmin <- infinity;
    t.vmax <- neg_infinity

  (* index of the first bound >= v, or the overflow bucket *)
  let bucket_of t v =
    let k = Array.length t.bounds in
    let lo = ref 0 and hi = ref k in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= t.bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo

  let add t v =
    t.counts.(bucket_of t v) <- t.counts.(bucket_of t v) + 1;
    t.sum <- t.sum +. v;
    t.n <- t.n + 1;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v

  let count t = t.n
  let sum t = t.sum
  let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

  (** Buckets as (upper_bound, count) pairs; the overflow bucket carries
      [infinity]. *)
  let buckets t =
    List.init
      (Array.length t.counts)
      (fun i ->
        ( (if i < Array.length t.bounds then t.bounds.(i) else infinity),
          t.counts.(i) ))

  (** Estimated [q]-quantile (0 <= q <= 1) by linear interpolation inside
      the bucket holding the q-th ranked sample; exact observed min/max
      clamp the ends, and the overflow bucket reports the observed max.
      [nan] when empty. *)
  let quantile t q =
    if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q outside [0,1]";
    if t.n = 0 then nan
    else begin
      let rank = q *. float_of_int t.n in
      let k = Array.length t.bounds in
      let rec find i cum =
        if i > k then (k, cum) (* unreachable: counts sum to n *)
        else
          let cum' = cum + t.counts.(i) in
          if float_of_int cum' >= rank && t.counts.(i) > 0 then (i, cum)
          else find (i + 1) cum'
      in
      let i, below = find 0 0 in
      if i >= k then t.vmax
      else begin
        let lo = if i = 0 then t.vmin else t.bounds.(i - 1) in
        let hi = t.bounds.(i) in
        let lo = Float.max lo (Float.min t.vmin hi) in
        let inside = (rank -. float_of_int below) /. float_of_int t.counts.(i) in
        let est = lo +. ((hi -. lo) *. Float.min 1.0 (Float.max 0.0 inside)) in
        Float.min t.vmax (Float.max t.vmin est)
      end
    end

  (** One-line quantile digest, p50 through the p999 tail. *)
  let summary t =
    if t.n = 0 then "count=0"
    else
      Printf.sprintf "count=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g p999=%.4g"
        t.n (mean t) (quantile t 0.5) (quantile t 0.9) (quantile t 0.99)
        (quantile t 0.999)

  (** Fold [src] into [into]; both must share identical bounds. *)
  let merge ~into src =
    if into.bounds <> src.bounds then
      invalid_arg "Histogram.merge: different bucket bounds";
    Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
    into.sum <- into.sum +. src.sum;
    into.n <- into.n + src.n;
    if src.vmin < into.vmin then into.vmin <- src.vmin;
    if src.vmax > into.vmax then into.vmax <- src.vmax
end
