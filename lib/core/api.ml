(** The public one-stop API: compile a workload, trace it once, replay the
    trace under any scheme/platform, and compare against the baseline.

    Compiled binaries and traces are memoized per (workload, scale,
    compile config); timing statistics per (workload, scale, scheme,
    platform fingerprint) — the platform key is a content hash of the
    full [Config.t] ([Config.fingerprint]), so two experiments can never
    alias a cache entry by reusing a label string for different
    platforms.

    All three caches are mutex-protected [Store.t]s, so any layer may be
    called from multiple domains; the executor ([Executor]) relies on
    this to replay jobs in parallel. Memoized values are shared
    read-only after insertion: a [Trace.t] is append-only and complete
    when stored, and a [Stats.t] is only mutated by the engine run that
    produces it. *)

open Cwsp_interp
open Cwsp_compiler
open Cwsp_sim
open Cwsp_workloads

(* (workload, scale, compile-config name) *)
type binary_key = string * int * string

(* (workload, scale, scheme name, platform fingerprint) *)
type stats_key = string * int * string * string

let compiled_cache : (binary_key, Pipeline.compiled) Store.t = Store.create 64
let trace_cache : (binary_key, Trace.t) Store.t = Store.create 64
let stats_cache : (stats_key, Stats.t) Store.t = Store.create 256

let binary_key ?(scale = 1) (w : Defs.t) (cc : Pipeline.config) : binary_key =
  (w.name, scale, Pipeline.config_name cc)

let stats_key ?(scale = 1) (w : Defs.t) (s : Cwsp_schemes.Schemes.t)
    (cfg : Config.t) : stats_key =
  (* fingerprint the platform the engine actually runs: the scheme's
     reconfiguration applied to the experiment's configuration *)
  (w.name, scale, s.s_name, Config.fingerprint (s.s_reconfig cfg))

(** Compile a workload under a compile configuration (memoized). *)
let compiled ?(scale = 1) (w : Defs.t) (cc : Pipeline.config) :
    Pipeline.compiled =
  Store.memo compiled_cache (binary_key ~scale w cc) (fun () ->
      Pipeline.compile ~config:cc (w.build ~scale))

(** Functional commit trace of a workload under a compile configuration
    (memoized). Runs the decoded core ([Cwsp_ir.Decode]); with
    CWSP_ORACLE=1 the oracle cross-checks it against the reference
    interpreter on every miss. *)
let trace ?(scale = 1) (w : Defs.t) (cc : Pipeline.config) : Trace.t =
  Store.memo trace_cache (binary_key ~scale w cc) (fun () ->
      let c = compiled ~scale w cc in
      Oracle.trace_of_program ~label:w.name c.prog)

(** Timing statistics of a workload under a scheme on a platform. *)
let stats ?(scale = 1) (w : Defs.t) (s : Cwsp_schemes.Schemes.t)
    (cfg : Config.t) : Stats.t =
  Store.memo stats_cache (stats_key ~scale w s cfg) (fun () ->
      let tr = trace ~scale w s.s_compile in
      Engine.run_trace (s.s_reconfig cfg) s.s_engine tr)

(** Normalized slowdown of [scheme] against the uninstrumented baseline on
    the *same* platform (the baseline never gets the scheme's platform
    restriction — e.g. ideal PSP is normalized against the DRAM-cache
    baseline, as in Fig. 18). *)
let slowdown ?(scale = 1) (w : Defs.t) ~(scheme : Cwsp_schemes.Schemes.t)
    (cfg : Config.t) : float =
  let base = stats ~scale w Cwsp_schemes.Schemes.baseline cfg in
  let st = stats ~scale w scheme cfg in
  Stats.slowdown st ~baseline:base

(** Per-cache memo effectiveness: (name, traffic counters, entries).
    [bench/main.exe] prints this in its end-of-run summary; the obs
    gauge provider below exports it into metrics.json. *)
let cache_stats () =
  [
    ("compiled", Store.stats compiled_cache, Store.length compiled_cache);
    ("trace", Store.stats trace_cache, Store.length trace_cache);
    ("stats", Store.stats stats_cache, Store.length stats_cache);
  ]

let () =
  Cwsp_obs.Obs.register_gauges (fun () ->
      List.concat_map
        (fun (name, (s : Store.stats), entries) ->
          [
            (Printf.sprintf "store.%s.hits" name, float_of_int s.hits);
            (Printf.sprintf "store.%s.misses" name, float_of_int s.misses);
            (Printf.sprintf "store.%s.races" name, float_of_int s.races);
            (Printf.sprintf "store.%s.entries" name, float_of_int entries);
          ])
        (cache_stats ()))

(** Clear all memoized state (used by tests that tweak workload scale). *)
let reset_caches () =
  Store.reset compiled_cache;
  Store.reset trace_cache;
  Store.reset stats_cache

(** End-to-end crash-consistency validation of a workload (compile with
    the full cWSP pipeline, inject a power failure, recover, compare NVM
    states). *)
let validate_recovery ?(scale = 1) ~seed ~crash_at (w : Defs.t) =
  Cwsp_recovery.Harness.validate ~seed ~crash_at (compiled ~scale w Pipeline.cwsp)

(** Adversarial variant: crash with a faulty persistence path ([fault])
    and recover with the hardened (or, for study, the blind) protocol. *)
let validate_fault ?(scale = 1) ?fault ?(hardened = true) ~seed ~crash_at
    (w : Defs.t) =
  Cwsp_recovery.Harness.validate_fault ~hardened ?fault ~seed ~crash_at
    (compiled ~scale w Pipeline.cwsp)
