(** The public one-stop API: compile a workload, trace it once, replay
    the trace under any scheme/platform, compare against the baseline,
    and validate crash recovery.

    Compiled binaries and traces are memoized per (workload, scale,
    compile config); timing statistics per (workload, scale, scheme,
    platform fingerprint) — the platform key hashes the full [Config.t]
    contents, so distinct platforms can never alias. All caches are
    mutex-protected and safe to populate from multiple domains
    ([Executor]). *)

open Cwsp_interp
open Cwsp_compiler
open Cwsp_sim
open Cwsp_workloads

(** (workload, scale, compile-config name): identifies a compiled binary
    and its trace. *)
type binary_key = string * int * string

(** (workload, scale, scheme name, platform fingerprint): identifies one
    simulation point. *)
type stats_key = string * int * string * string

val binary_key : ?scale:int -> Defs.t -> Pipeline.config -> binary_key

val stats_key :
  ?scale:int -> Defs.t -> Cwsp_schemes.Schemes.t -> Config.t -> stats_key

(** Compile a workload under a compile configuration (memoized). *)
val compiled : ?scale:int -> Defs.t -> Pipeline.config -> Pipeline.compiled

(** Functional commit trace (memoized). *)
val trace : ?scale:int -> Defs.t -> Pipeline.config -> Trace.t

(** Timing statistics of a workload under a scheme on a platform. *)
val stats :
  ?scale:int -> Defs.t -> Cwsp_schemes.Schemes.t -> Config.t -> Stats.t

(** Normalized slowdown against the uninstrumented baseline on the same
    platform; the baseline never gets the scheme's platform restriction
    (e.g. ideal PSP is normalized against the DRAM-cache baseline, as in
    Fig. 18). *)
val slowdown :
  ?scale:int -> Defs.t -> scheme:Cwsp_schemes.Schemes.t -> Config.t -> float

(** Per-cache memo effectiveness: (name, traffic, entries) for the
    compiled/trace/stats caches. Also exported as obs gauges. *)
val cache_stats : unit -> (string * Store.stats * int) list

(** Clear all memoized state. *)
val reset_caches : unit -> unit

(** End-to-end crash-consistency validation: compile with the full cWSP
    pipeline, inject a power failure at [crash_at], recover, compare. *)
val validate_recovery :
  ?scale:int ->
  seed:int ->
  crash_at:int ->
  Defs.t ->
  (Cwsp_recovery.Harness.crash_report, string) result

(** Adversarial crash-consistency validation: inject a persistence-path
    fault ([Cwsp_recovery.Fault]) at the crash and recover with the
    hardened protocol (or blind with [~hardened:false]). *)
val validate_fault :
  ?scale:int ->
  ?fault:Cwsp_recovery.Fault.cls ->
  ?hardened:bool ->
  seed:int ->
  crash_at:int ->
  Defs.t ->
  (Cwsp_recovery.Harness.fault_report, string) result
