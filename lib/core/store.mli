(** A mutex-protected memoization table — the result store behind
    [Api]'s caches and the executor's job results.

    Contract: producers run outside the lock; a race on an absent key
    computes twice (deterministically equal values) and the first writer
    wins, so all readers observe one canonical value per key. [memo]
    traffic is counted so cache effectiveness stays observable. *)

type ('k, 'v) t

(** [memo] traffic totals: lookup hits, lookup misses, and produce
    races (productions discarded because an equal value won the insert). *)
type stats = { hits : int; misses : int; races : int }

val create : int -> ('k, 'v) t
val find_opt : ('k, 'v) t -> 'k -> 'v option

(** Number of stored results. *)
val length : ('k, 'v) t -> int

(** Traffic counters since creation (or the last [reset]). *)
val stats : ('k, 'v) t -> stats

(** [memo t k produce]: stored value for [k], computing if absent.
    First writer wins on a race. *)
val memo : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

(** Clear entries and traffic counters. *)
val reset : ('k, 'v) t -> unit
