(** The execute layer: deduplicate declared jobs, generate each shared
    trace exactly once, then replay the timing points across an OCaml 5
    domain pool.

    Execution is two phases with a barrier between them:

    1. {b traces} — one task per distinct (workload, scale, compile
       config); each compiles the binary and interprets it into a commit
       trace ([Api.trace], memoized).
    2. {b stats} — one task per distinct simulation point; each replays
       its (already memoized) trace under the point's scheme/platform
       ([Api.stats], memoized).

    The barrier guarantees phase 2 never interprets: every trace a stats
    task needs is a cache hit, so no work is duplicated across domains
    regardless of which domain picks which task.

    Domain-safety contract (see DESIGN.md §5): tasks share only
    [Api]'s mutex-protected stores and the immutable values inside them
    (traces are complete before they are published; a [Stats.t] is only
    mutated by the engine run that produces it). Everything else the
    engine and interpreter touch is allocated per run. [jobs = 1] runs
    on the calling domain with no spawns — byte-identical to the
    pre-parallel harness by construction, and the render layer's
    deterministic iteration makes higher [jobs] produce identical output
    too.

    Observability (DESIGN.md §10): when [Obs.on] is set, every task gets
    a span carrying its queue wait, each phase emits a per-domain
    utilization sample, task durations feed the [executor.task_us]
    histogram, and plan sizes feed the dedupe counters. With tracing off
    the pool takes exactly one extra branch per phase. *)

module Obs = Cwsp_obs.Obs

let default_jobs = ref 1

(* Domains beyond the hardware count never help and hurt badly: every
   minor collection is a stop-the-world sync across all domains, so an
   oversubscribed pool spends most of its wall time in GC barriers
   (observed 3.5x on a 1-core host). Rendered output is byte-identical
   for any width, so clamping is safe. *)
let clamp_jobs n = max 1 (min n (Domain.recommended_domain_count ()))

(** Set the pool width [run] uses when no explicit [~jobs] is given —
    how [bench/main.exe -- --jobs N] reaches every driver. Clamped to
    the hardware domain count. *)
let set_default_jobs n = default_jobs := clamp_jobs n

let h_task = Obs.Hist.make "executor.task_us"
let c_declared = Obs.Counter.make "executor.jobs.declared"
let c_points = Obs.Counter.make "executor.jobs.unique"
let c_traces = Obs.Counter.make "executor.traces.unique"

(* Work-stealing-free pool: an atomic cursor over an immutable task
   array. Tasks are coarse (whole simulation runs), so contention on the
   cursor is negligible. [label], when tracing, names task [i]'s span;
   [cat] prefixes the utilization sample and categorizes the spans. *)
let run_pool ~jobs ?(cat = "executor") ?label (tasks : (unit -> unit) array) =
  let n = Array.length tasks in
  if n = 0 then ()
  else if not !Obs.on then begin
    (* fast path: identical to the untraced pool, no per-task overhead *)
    if jobs <= 1 || n = 1 then Array.iter (fun f -> f ()) tasks
    else begin
      let cursor = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add cursor 1 in
          if i < n then begin
            tasks.(i) ();
            loop ()
          end
        in
        loop ()
      in
      let spawned = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join spawned
    end
  end
  else begin
    let width = if jobs <= 1 || n = 1 then 1 else min jobs n in
    let t_phase = Obs.now_us () in
    let busy = Array.make width 0.0 in
    let run_task w i =
      let t0 = Obs.now_us () in
      let name = match label with Some f -> f i | None -> "task" in
      Obs.span_begin ~cat ~args:[ ("queue_wait_us", t0 -. t_phase) ] name;
      Fun.protect ~finally:Obs.span_end tasks.(i);
      let dur = Obs.now_us () -. t0 in
      busy.(w) <- busy.(w) +. dur;
      Obs.Hist.add h_task dur
    in
    if width = 1 then
      for i = 0 to n - 1 do
        run_task 0 i
      done
    else begin
      let cursor = Atomic.make 0 in
      let worker w () =
        let rec loop () =
          let i = Atomic.fetch_and_add cursor 1 in
          if i < n then begin
            run_task w i;
            loop ()
          end
        in
        loop ()
      in
      let spawned =
        List.init (width - 1) (fun k -> Domain.spawn (worker (k + 1)))
      in
      worker 0 ();
      List.iter Domain.join spawned
    end;
    let wall = Obs.now_us () -. t_phase in
    Obs.counter_event
      ~name:(cat ^ ".utilization")
      ~ts_us:(Obs.now_us ())
      (List.init width (fun w ->
           ( Printf.sprintf "domain%d" w,
             if wall > 0.0 then busy.(w) /. wall else 0.0 )))
  end

(** Parallel map over the domain pool with deterministic results: each
    task writes its own slot of the result array, so the output order is
    the input order no matter which domain ran what. [f] must obey the
    domain-safety contract above (shared state only through
    mutex-protected stores). [label], when tracing, names input [i]'s
    span. *)
let map_pool ?cat ?label ~jobs (f : 'a -> 'b) (inputs : 'a array) : 'b array =
  let out = Array.make (Array.length inputs) None in
  run_pool ~jobs ?cat ?label
    (Array.mapi (fun i x () -> out.(i) <- Some (f x)) inputs);
  Array.map
    (function Some y -> y | None -> assert false (* every task ran *))
    out

(* Keep the first job per key, preserving declaration order. *)
let dedupe key_of js =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun j ->
      let k = key_of j in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    js

(** Execute a job plan: dedupe, trace phase, barrier, stats phase.
    [jobs] defaults to the harness-wide setting ([set_default_jobs]). *)
let run ?jobs (plan : Job.t list) =
  let jobs = match jobs with Some n -> clamp_jobs n | None -> !default_jobs in
  let points = dedupe Job.key plan in
  let traces = dedupe Job.trace_key points in
  Obs.Counter.add c_declared (List.length plan);
  Obs.Counter.add c_points (List.length points);
  Obs.Counter.add c_traces (List.length traces);
  (* span names index into label arrays built only when tracing *)
  let labels js f =
    if !Obs.on then begin
      let a = Array.of_list (List.map f js) in
      Some (fun i -> a.(i))
    end
    else None
  in
  Obs.span_begin ~cat:"executor" "phase:traces";
  run_pool ~jobs
    ?label:(labels traces (fun j -> "trace:" ^ Job.trace_key j))
    (Array.of_list (List.map (fun j () -> Job.execute_trace j) traces));
  Obs.span_end ();
  Obs.span_begin ~cat:"executor" "phase:stats";
  run_pool ~jobs
    ?label:(labels points Job.key)
    (Array.of_list (List.map (fun j () -> Job.execute j) points));
  Obs.span_end ()
