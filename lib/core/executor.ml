(** The execute layer: deduplicate declared jobs, generate each shared
    trace exactly once, then replay the timing points across an OCaml 5
    domain pool.

    Execution is two phases with a barrier between them:

    1. {b traces} — one task per distinct (workload, scale, compile
       config); each compiles the binary and interprets it into a commit
       trace ([Api.trace], memoized).
    2. {b stats} — one task per distinct simulation point; each replays
       its (already memoized) trace under the point's scheme/platform
       ([Api.stats], memoized).

    The barrier guarantees phase 2 never interprets: every trace a stats
    task needs is a cache hit, so no work is duplicated across domains
    regardless of which domain picks which task.

    Domain-safety contract (see DESIGN.md §5): tasks share only
    [Api]'s mutex-protected stores and the immutable values inside them
    (traces are complete before they are published; a [Stats.t] is only
    mutated by the engine run that produces it). Everything else the
    engine and interpreter touch is allocated per run. [jobs = 1] runs
    on the calling domain with no spawns — byte-identical to the
    pre-parallel harness by construction, and the render layer's
    deterministic iteration makes higher [jobs] produce identical output
    too. *)

let default_jobs = ref 1

(** Set the pool width [run] uses when no explicit [~jobs] is given —
    how [bench/main.exe -- --jobs N] reaches every driver. *)
let set_default_jobs n = default_jobs := max 1 n

(* Work-stealing-free pool: an atomic cursor over an immutable task
   array. Tasks are coarse (whole simulation runs), so contention on the
   cursor is negligible. *)
let run_pool ~jobs (tasks : (unit -> unit) array) =
  let n = Array.length tasks in
  if n = 0 then ()
  else if jobs <= 1 || n = 1 then Array.iter (fun f -> f ()) tasks
  else begin
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          tasks.(i) ();
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned
  end

(** Parallel map over the domain pool with deterministic results: each
    task writes its own slot of the result array, so the output order is
    the input order no matter which domain ran what. [f] must obey the
    domain-safety contract above (shared state only through
    mutex-protected stores). *)
let map_pool ~jobs (f : 'a -> 'b) (inputs : 'a array) : 'b array =
  let out = Array.make (Array.length inputs) None in
  run_pool ~jobs
    (Array.mapi (fun i x () -> out.(i) <- Some (f x)) inputs);
  Array.map
    (function Some y -> y | None -> assert false (* every task ran *))
    out

(* Keep the first job per key, preserving declaration order. *)
let dedupe key_of js =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun j ->
      let k = key_of j in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    js

(** Execute a job plan: dedupe, trace phase, barrier, stats phase.
    [jobs] defaults to the harness-wide setting ([set_default_jobs]). *)
let run ?jobs (plan : Job.t list) =
  let jobs = match jobs with Some n -> max 1 n | None -> !default_jobs in
  let points = dedupe Job.key plan in
  let traces = dedupe Job.trace_key points in
  run_pool ~jobs
    (Array.of_list (List.map (fun j () -> Job.execute_trace j) traces));
  run_pool ~jobs (Array.of_list (List.map (fun j () -> Job.execute j) points))
