(** The unit of work of the plan/execute/render architecture: a pure
    description of one simulation point (see DESIGN.md §5). *)

open Cwsp_compiler
open Cwsp_sim
open Cwsp_workloads

type spec =
  | Stats of { scheme : Cwsp_schemes.Schemes.t; cfg : Config.t }
      (** replay the workload's trace under [scheme] on [cfg] *)
  | Trace of { compile : Pipeline.config }
      (** generate the commit trace only (Fig. 19, recovery) *)

type t = { workload : Defs.t; scale : int; spec : spec }

val stats : ?scale:int -> Defs.t -> Cwsp_schemes.Schemes.t -> Config.t -> t

(** The two stats points [Api.slowdown] consumes: scheme + baseline on
    the same platform. *)
val slowdown :
  ?scale:int -> Defs.t -> scheme:Cwsp_schemes.Schemes.t -> Config.t -> t list

val trace : ?scale:int -> Defs.t -> Pipeline.config -> t

(** Identity of the job's end result (the [Api] memo key); dedup goes
    through this. *)
val key : t -> string

(** Identity of the trace the job replays; jobs sharing it are grouped so
    each trace is generated once. *)
val trace_key : t -> string

(** Run the job to completion through [Api]'s memoized entry points. *)
val execute : t -> unit

(** Generate (only) the job's trace — phase one of the executor. *)
val execute_trace : t -> unit
