(** The execute layer: deduplicate declared jobs, generate each shared
    trace exactly once, then replay the timing points across an OCaml 5
    domain pool. Two phases with a barrier: traces (one per distinct
    workload/scale/compile-config), then stats (one per distinct
    simulation point, every trace already a cache hit). [jobs = 1] runs
    on the calling domain with no spawns. When [Cwsp_obs.Obs.on] is set,
    tasks get spans (with queue-wait args), phases emit per-domain
    utilization samples, and dedupe totals feed counters. *)

(** Pool width used when [run] gets no explicit [~jobs] (default 1).
    Clamped to the hardware domain count — oversubscribed domain pools
    lose most of their wall time to stop-the-world minor-GC syncs. *)
val set_default_jobs : int -> unit

(** Execute a job plan: dedupe, trace phase, barrier, stats phase. *)
val run : ?jobs:int -> Job.t list -> unit

(** Parallel map over the domain pool, deterministic: result order is
    input order regardless of scheduling. [jobs <= 1] maps on the
    calling domain. [f] must follow the domain-safety contract
    (DESIGN.md §5b): share state only through mutex-protected stores.
    [label], when tracing, names input [i]'s span; [cat] categorizes
    the spans (default "executor"). *)
val map_pool :
  ?cat:string ->
  ?label:(int -> string) ->
  jobs:int ->
  ('a -> 'b) ->
  'a array ->
  'b array
