(** The execute layer: deduplicate declared jobs, generate each shared
    trace exactly once, then replay the timing points across an OCaml 5
    domain pool. Two phases with a barrier: traces (one per distinct
    workload/scale/compile-config), then stats (one per distinct
    simulation point, every trace already a cache hit). [jobs = 1] runs
    on the calling domain with no spawns. *)

(** Pool width used when [run] gets no explicit [~jobs] (default 1). *)
val set_default_jobs : int -> unit

(** Execute a job plan: dedupe, trace phase, barrier, stats phase. *)
val run : ?jobs:int -> Job.t list -> unit

(** Parallel map over the domain pool, deterministic: result order is
    input order regardless of scheduling. [jobs <= 1] maps on the
    calling domain. [f] must follow the domain-safety contract
    (DESIGN.md §5b): share state only through mutex-protected stores. *)
val map_pool : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
