(** A mutex-protected memoization table — the result store behind
    [Api]'s caches and the executor's job results.

    Domain-safety contract: [memo] runs the producer {e outside} the
    lock (simulation runs take milliseconds to seconds; serializing them
    would defeat the executor). If two domains race on the same absent
    key, both compute — deterministically producing equal values — and
    the first writer wins, so every later [find_opt]/[memo] observes one
    canonical value. The executor deduplicates jobs up front, making
    such races a non-event in practice.

    Every store counts its [memo] traffic (hits, misses, produce races)
    under the same lock, so cache effectiveness is observable — [Api]
    exposes the per-cache totals and [bench/main.exe] prints them in its
    end-of-run summary. *)

type ('k, 'v) t = {
  mu : Mutex.t;
  tbl : ('k, 'v) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable races : int;
}

(** [memo] traffic totals. [races] counts productions discarded because
    another domain's equal value won the insert. *)
type stats = { hits : int; misses : int; races : int }

let create n =
  { mu = Mutex.create (); tbl = Hashtbl.create n; hits = 0; misses = 0;
    races = 0 }

let find_opt t k = Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.tbl k)

let length t = Mutex.protect t.mu (fun () -> Hashtbl.length t.tbl)

let stats t =
  Mutex.protect t.mu (fun () ->
      { hits = t.hits; misses = t.misses; races = t.races })

(** [memo t k produce] returns the stored value for [k], computing it
    with [produce] if absent. First writer wins on a race. *)
let memo t k produce =
  let cached =
    Mutex.protect t.mu (fun () ->
        match Hashtbl.find_opt t.tbl k with
        | Some _ as v ->
          t.hits <- t.hits + 1;
          v
        | None ->
          t.misses <- t.misses + 1;
          None)
  in
  match cached with
  | Some v -> v
  | None ->
    let v = produce () in
    Mutex.protect t.mu (fun () ->
        match Hashtbl.find_opt t.tbl k with
        | Some v' ->
          t.races <- t.races + 1;
          v'
        | None ->
          Hashtbl.add t.tbl k v;
          v)

let reset t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.reset t.tbl;
      t.hits <- 0;
      t.misses <- 0;
      t.races <- 0)
