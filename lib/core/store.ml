(** A mutex-protected memoization table — the result store behind
    [Api]'s caches and the executor's job results.

    Domain-safety contract: [memo] runs the producer {e outside} the
    lock (simulation runs take milliseconds to seconds; serializing them
    would defeat the executor). If two domains race on the same absent
    key, both compute — deterministically producing equal values — and
    the first writer wins, so every later [find_opt]/[memo] observes one
    canonical value. The executor deduplicates jobs up front, making
    such races a non-event in practice. *)

type ('k, 'v) t = { mu : Mutex.t; tbl : ('k, 'v) Hashtbl.t }

let create n = { mu = Mutex.create (); tbl = Hashtbl.create n }

let find_opt t k = Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.tbl k)

let length t = Mutex.protect t.mu (fun () -> Hashtbl.length t.tbl)

(** [memo t k produce] returns the stored value for [k], computing it
    with [produce] if absent. First writer wins on a race. *)
let memo t k produce =
  match find_opt t k with
  | Some v -> v
  | None ->
    let v = produce () in
    Mutex.protect t.mu (fun () ->
        match Hashtbl.find_opt t.tbl k with
        | Some v' -> v'
        | None ->
          Hashtbl.add t.tbl k v;
          v)

let reset t = Mutex.protect t.mu (fun () -> Hashtbl.reset t.tbl)
