(** The unit of work of the plan/execute/render architecture: a pure
    description of one simulation point. Figure drivers {e declare} jobs
    (plan), [Executor] deduplicates and replays them across a domain pool
    (execute), and drivers then format tables from the memoized results
    in deterministic order (render).

    Two kinds of points exist: [Stats] — replay a workload's trace under
    a scheme on a platform (the vast majority of the evaluation) — and
    [Trace] — generate a compiled binary's commit trace without timing
    it (Fig. 19 region statistics, the recovery harness's input). *)

open Cwsp_compiler
open Cwsp_sim
open Cwsp_workloads

type spec =
  | Stats of { scheme : Cwsp_schemes.Schemes.t; cfg : Config.t }
  | Trace of { compile : Pipeline.config }

type t = { workload : Defs.t; scale : int; spec : spec }

let stats ?(scale = 1) (w : Defs.t) (scheme : Cwsp_schemes.Schemes.t)
    (cfg : Config.t) =
  { workload = w; scale; spec = Stats { scheme; cfg } }

(** The two stats points [Api.slowdown] consumes: the scheme and the
    uninstrumented baseline on the same platform. *)
let slowdown ?(scale = 1) (w : Defs.t) ~(scheme : Cwsp_schemes.Schemes.t)
    (cfg : Config.t) =
  [
    stats ~scale w Cwsp_schemes.Schemes.baseline cfg;
    stats ~scale w scheme cfg;
  ]

let trace ?(scale = 1) (w : Defs.t) (compile : Pipeline.config) =
  { workload = w; scale; spec = Trace { compile } }

(** Identity of the job's end result — [Api]'s memo key. Deduplication
    and result lookup both go through this. *)
let key (j : t) : string =
  match j.spec with
  | Stats { scheme; cfg } ->
    let w, sc, s, fp = Api.stats_key ~scale:j.scale j.workload scheme cfg in
    Printf.sprintf "stats/%s@%d/%s/%s" w sc s fp
  | Trace { compile } ->
    let w, sc, cc = Api.binary_key ~scale:j.scale j.workload compile in
    Printf.sprintf "trace/%s@%d/%s" w sc cc

(** Identity of the trace the job replays — jobs sharing a trace key are
    grouped so each (workload, compile config, scale) trace is generated
    exactly once before the timing runs fan out. *)
let trace_key (j : t) : string =
  let compile =
    match j.spec with
    | Stats { scheme; _ } -> scheme.s_compile
    | Trace { compile } -> compile
  in
  let w, sc, cc = Api.binary_key ~scale:j.scale j.workload compile in
  Printf.sprintf "%s@%d/%s" w sc cc

(** Run the job to completion through [Api]'s memoized entry points. *)
let execute (j : t) : unit =
  match j.spec with
  | Stats { scheme; cfg } ->
    ignore (Api.stats ~scale:j.scale j.workload scheme cfg)
  | Trace { compile } -> ignore (Api.trace ~scale:j.scale j.workload compile)

(** Generate (only) the job's trace — phase one of the executor. *)
let execute_trace (j : t) : unit =
  match j.spec with
  | Stats { scheme; _ } ->
    ignore (Api.trace ~scale:j.scale j.workload scheme.s_compile)
  | Trace { compile } -> ignore (Api.trace ~scale:j.scale j.workload compile)
