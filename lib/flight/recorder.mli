(** Persistent flight recorder: a checksummed event ring in a reserved
    NVM region, appendable before and after power cuts.

    Records are fixed 64-byte slots: a commit/checksum word (written
    last), a monotonic LSN, the crash-epoch, an event kind and four
    integer arguments. There is no mutable ring metadata in NVM —
    [attach] rebuilds the cursor by scanning for intact records — so a
    crash at any point leaves at worst one torn frontier slot, which the
    next append overwrites. *)

type t

(** {1 Geometry} *)

val record_words : int
val record_bytes : int
val super_bytes : int
val default_capacity : int
val max_capacity : int

(** Byte address of record slot [i] inside the flight region. *)
val slot_addr : int -> int

(** {1 Event vocabulary} *)

type kind =
  | Boundary
  | Telemetry
  | Crash
  | Inject
  | Rung
  | Decision
  | Resume
  | Restart
  | Cell
  | Note

val kind_code : kind -> int
val kind_of_code : int -> kind option
val kind_name : kind -> string

(** Decode the outcome / fault-class argument codes used by [Decision],
    [Cell] and [Inject] records. Defined here so a dump can be decoded
    without the recovery library. *)
val outcome_name : int -> string

val fault_name : int -> string

(** {1 Ring lifecycle} *)

(** Initialize the superblock and return a fresh recorder (epoch 0,
    next LSN 1). Raises [Invalid_argument] if [capacity] is outside
    (0, [max_capacity]]. *)
val format : ?capacity:int -> Cwsp_ir.Memory.t -> t

(** Re-open the ring of a (possibly post-crash) image: validates the
    superblock and scans every slot; the cursor resumes one past the
    largest intact LSN, at the largest intact epoch. [None] when the
    image carries no valid superblock. *)
val attach : Cwsp_ir.Memory.t -> t option

val capacity : t -> int
val epoch : t -> int
val next_lsn : t -> int

(** Start a new crash epoch (call at each recovery attach). *)
val bump_epoch : t -> unit

(** Append one event (fields first, commit word last). *)
val append : t -> kind:kind -> int -> int -> int -> int -> unit

(** Word addresses of the most recently appended record, commit word
    first — the surface a torn persist at the crash point exposes. *)
val frontier_words : t -> int list

(** {1 Record codec} (exposed for the post-mortem auditor and tests) *)

val record_sum :
  lsn:int -> epoch:int -> kind:int -> a0:int -> a1:int -> a2:int -> a3:int -> int

val read_slot :
  Cwsp_ir.Memory.t ->
  capacity:int ->
  int ->
  [ `Empty | `Bad | `Record of int * int * int * (int * int * int * int) ]

val read_super : Cwsp_ir.Memory.t -> int option

(** {1 Dump artifact}

    The text artifact attached to campaign cells and fuzz findings: the
    nonzero words of the flight region, address-sorted, one hex pair per
    line under a version header. Deterministic bytes for identical
    rings. *)

val dump_header : string
val dump_string : Cwsp_ir.Memory.t -> string
val dump_to_file : Cwsp_ir.Memory.t -> string -> unit
val load_dump_string : string -> Cwsp_ir.Memory.t option
val load_dump : string -> Cwsp_ir.Memory.t option
