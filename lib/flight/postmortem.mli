(** Audit and timeline reconstruction over a flight-recorder ring.

    Verdict semantics: [Clean] — every occupied slot intact; [Truncated]
    — some slots unreadable, but all of them sit in the consecutive run
    starting at the write frontier, exactly where a fail-stop crash
    (with at worst a single torn persist) can leave damage, so the
    surviving timeline is a consistent prefix; [Corrupt] — damage
    outside the frontier, which the fault model cannot explain; [Empty]
    — a formatted ring with no records; [No_ring] — no valid
    superblock. *)

type verdict = Clean | Truncated | Corrupt | Empty | No_ring

val verdict_name : verdict -> string

type record = {
  r_lsn : int;
  r_epoch : int;
  r_kind : Recorder.kind option;
  r_kind_code : int;
  r_args : int * int * int * int;
}

type audit = {
  a_verdict : verdict;
  a_capacity : int;
  a_records : record list;  (** intact, ascending LSN *)
  a_max_lsn : int;
  a_torn : int;
  a_corrupt_slots : int list;
  a_stale : int;
  a_overwritten : int;
  a_epochs : int list;
}

val audit : Cwsp_ir.Memory.t -> audit

(** One-line decodings used by both renderers. *)
val kind_label : record -> string

val describe : record -> string

type summary = {
  s_crashes : int;
  s_injections : (string * int) list;
  s_decisions : (string * int) list;
  s_refusals : int;
  s_restarts : int;
}

val summarize : audit -> summary

(** Human timeline: verdict header, damage report, correlation summary,
    then records grouped by crash epoch in LSN order. Deterministic. *)
val render_text : audit -> string

(** Chrome trace-event JSON: one track (pid) per crash epoch, [ts] = LSN
    — no wall-clock anywhere, so output is bit-deterministic. *)
val render_chrome : audit -> string
