(** Persistent flight recorder: a fixed-layout, checksummed event ring
    living inside the simulated NVM image.

    The paper's promise is that *whole-system* state survives power
    failure; this module makes the observability state a persistence
    client too. Events are appended to a ring of fixed 64-byte records
    in a reserved NVM region ([Layout.flight_base]); each record carries
    a monotonic LSN, the crash-epoch it was written in, and a checksum
    over every field — the same per-record discipline as the undo logs
    ([Mc_logs]) — so a post-crash reader can separate intact records
    from torn ones without any volatile metadata.

    Crash tolerance is by construction, not by protocol:

    - The superblock (magic, capacity, checksum) is written once at
      [format] and never mutated again.
    - A record's fields are written first and its checksum word last
      (the commit word), so a crash mid-append leaves a slot that fails
      its checksum — a torn record, not a lie.
    - There is no head/tail pointer in NVM. [attach] rebuilds the write
      cursor by scanning every slot for valid records: the next LSN is
      one past the largest intact LSN, and the current epoch is the
      largest intact epoch. Torn frontier slots are simply overwritten
      by the next append.

    The ring is ordinary simulated NVM — faults tear its words exactly
    like any other persist — but it is observability state: the golden
    image comparisons exclude the region, and nothing in the recovery
    protocol ever reads it, so enabling the recorder cannot change any
    outcome. *)

module Memory = Cwsp_ir.Memory
module Layout = Cwsp_ir.Layout
module Checksum = Cwsp_util.Checksum

(* ---- geometry ---- *)

let magic = 0x43574631 (* "CWF1" *)
let record_words = 8
let record_bytes = record_words * 8
let super_words = 3
let super_bytes = super_words * 8
let slot_addr i = Layout.flight_base + super_bytes + (i * record_bytes)
let default_capacity = 512

let max_capacity =
  (Layout.flight_bytes - super_bytes) / record_bytes

(* ---- event vocabulary ---- *)

type kind =
  | Boundary  (** a region boundary committed: (step, static_id, live_log_entries, sync) *)
  | Telemetry  (** persist-path telemetry at a boundary: (regions, live_entries, sync_floor, slots) *)
  | Crash  (** power cut: (crash_step, nominal_region, n_mcs, 0) *)
  | Inject  (** adversarial fault injected: (class, site, 0, 0) *)
  | Rung  (** recovery ladder probe: (back, usable, fatal, skips) *)
  | Decision  (** ladder verdict: (outcome, back, detections, state_ok) *)
  | Resume  (** recovery resumed execution: (region, slices, reverts, 0) *)
  | Restart  (** recovery itself crashed and restarted: (sweep_point, 0, 0, 0) *)
  | Cell  (** campaign cell outcome: (index, outcome, detections, rep) *)
  | Note  (** free-form marker: (a, b, c, d) *)

let kinds =
  [ Boundary; Telemetry; Crash; Inject; Rung; Decision; Resume; Restart; Cell; Note ]

let kind_code = function
  | Boundary -> 1
  | Telemetry -> 2
  | Crash -> 3
  | Inject -> 4
  | Rung -> 5
  | Decision -> 6
  | Resume -> 7
  | Restart -> 8
  | Cell -> 9
  | Note -> 10

let kind_of_code c = List.find_opt (fun k -> kind_code k = c) kinds

let kind_name = function
  | Boundary -> "boundary"
  | Telemetry -> "telemetry"
  | Crash -> "crash"
  | Inject -> "inject"
  | Rung -> "rung"
  | Decision -> "decision"
  | Resume -> "resume"
  | Restart -> "restart"
  | Cell -> "cell"
  | Note -> "note"

(* Shared arg vocabularies. The codes are defined here (not in the
   recovery library) so the post-mortem reader can decode a dump without
   depending on — or being depended on by — the protocol code. *)

let outcome_name = function
  | 0 -> "recovered"
  | 1 -> "degraded"
  | 2 -> "refused"
  | 3 -> "escaped"
  | 4 -> "masked"
  | n -> Printf.sprintf "outcome-%d" n

let fault_name = function
  | 0 -> "none"
  | 1 -> "torn-persist"
  | 2 -> "dropped-tail"
  | 3 -> "log-corruption"
  | 4 -> "ckpt-bitflip"
  | 5 -> "recovery-crash"
  | n -> Printf.sprintf "fault-%d" n

(* ---- record codec ---- *)

let record_sum ~lsn ~epoch ~kind ~a0 ~a1 ~a2 ~a3 =
  Checksum.words [ lsn; epoch; kind; a0; a1; a2; a3 ]

let super_sum ~capacity = Checksum.words [ magic; capacity ]

(* ---- recorder handle ---- *)

type t = {
  mem : Memory.t;
  capacity : int;
  mutable next_lsn : int; (* LSN the next append will take; >= 1 *)
  mutable cur_epoch : int;
}

let capacity t = t.capacity
let epoch t = t.cur_epoch
let next_lsn t = t.next_lsn
let bump_epoch t = t.cur_epoch <- t.cur_epoch + 1

let format ?(capacity = default_capacity) mem =
  if capacity <= 0 || capacity > max_capacity then
    invalid_arg "Recorder.format: capacity";
  Memory.write mem Layout.flight_base magic;
  Memory.write mem (Layout.flight_base + 8) capacity;
  Memory.write mem (Layout.flight_base + 16) (super_sum ~capacity);
  { mem; capacity; next_lsn = 1; cur_epoch = 0 }

let read_super mem =
  let m = Memory.read mem Layout.flight_base in
  let cap = Memory.read mem (Layout.flight_base + 8) in
  let sum = Memory.read mem (Layout.flight_base + 16) in
  if m = magic && cap > 0 && cap <= max_capacity && sum = super_sum ~capacity:cap
  then Some cap
  else None

(* A slot holds a valid record iff its commit word matches the checksum
   of its fields, its LSN is positive, and the LSN actually maps to this
   slot — the last check rejects records smeared across slots. *)
let read_slot mem ~capacity i =
  let a = slot_addr i in
  let sum = Memory.read mem a in
  let lsn = Memory.read mem (a + 8) in
  let epoch = Memory.read mem (a + 16) in
  let kind = Memory.read mem (a + 24) in
  let a0 = Memory.read mem (a + 32) in
  let a1 = Memory.read mem (a + 40) in
  let a2 = Memory.read mem (a + 48) in
  let a3 = Memory.read mem (a + 56) in
  if sum = 0 && lsn = 0 && epoch = 0 && kind = 0 && a0 = 0 && a1 = 0 && a2 = 0 && a3 = 0
  then `Empty
  else if
    lsn >= 1
    && (lsn - 1) mod capacity = i
    && sum = record_sum ~lsn ~epoch ~kind ~a0 ~a1 ~a2 ~a3
  then `Record (lsn, epoch, kind, (a0, a1, a2, a3))
  else `Bad

let attach mem =
  match read_super mem with
  | None -> None
  | Some capacity ->
    let max_lsn = ref 0 and max_epoch = ref 0 in
    for i = 0 to capacity - 1 do
      match read_slot mem ~capacity i with
      | `Record (lsn, epoch, _, _) ->
        if lsn > !max_lsn then max_lsn := lsn;
        if epoch > !max_epoch then max_epoch := epoch
      | `Empty | `Bad -> ()
    done;
    Some { mem; capacity; next_lsn = !max_lsn + 1; cur_epoch = !max_epoch }

(* Fields first, commit word last: a crash between the two leaves a slot
   that fails its checksum. The stores go through [Memory.write]
   directly — the ring is below every instrumentation hook, so recording
   is never undo-logged and can never perturb recovery. *)
let append t ~kind a0 a1 a2 a3 =
  let lsn = t.next_lsn in
  let epoch = t.cur_epoch in
  let k = kind_code kind in
  let a = slot_addr ((lsn - 1) mod t.capacity) in
  Memory.write t.mem (a + 8) lsn;
  Memory.write t.mem (a + 16) epoch;
  Memory.write t.mem (a + 24) k;
  Memory.write t.mem (a + 32) a0;
  Memory.write t.mem (a + 40) a1;
  Memory.write t.mem (a + 48) a2;
  Memory.write t.mem (a + 56) a3;
  Memory.write t.mem a (record_sum ~lsn ~epoch ~kind:k ~a0 ~a1 ~a2 ~a3);
  t.next_lsn <- lsn + 1

(** Addresses of the words the most recent append wrote, commit word
    first — the torn-persist surface a crash exposes. Empty before the
    first append. *)
let frontier_words t =
  if t.next_lsn <= 1 then []
  else begin
    let a = slot_addr ((t.next_lsn - 2) mod t.capacity) in
    List.init record_words (fun i -> a + (i * 8))
  end

(* ---- dump artifact ---- *)

(* The on-disk artifact a campaign or fuzz finding ships: the nonzero
   words of the flight region, address-sorted — deterministic bytes for
   identical rings, loadable without the rest of the image. *)

let dump_header = "cwsp-flight-dump v1"

let dump_string mem =
  let words = ref [] in
  Memory.iter
    (fun a v -> if Layout.is_flight_addr a then words := (a, v) :: !words)
    mem;
  let words = List.sort compare !words in
  let b = Buffer.create 4096 in
  Buffer.add_string b dump_header;
  Buffer.add_char b '\n';
  List.iter
    (fun (a, v) ->
      (* negative words (legal OCaml ints) as sign-magnitude so the
         parse round-trips without overflowing [int_of_string] *)
      if v < 0 then Buffer.add_string b (Printf.sprintf "%x -%x\n" a (-v))
      else Buffer.add_string b (Printf.sprintf "%x %x\n" a v))
    words;
  Buffer.contents b

let dump_to_file mem path =
  let oc = open_out path in
  output_string oc (dump_string mem);
  close_out oc

let load_dump_string s =
  match String.split_on_char '\n' s with
  | hdr :: rest when hdr = dump_header ->
    let mem = Memory.create () in
    let ok =
      List.for_all
        (fun line ->
          if line = "" then true
          else
            match String.index_opt line ' ' with
            | None -> false
            | Some sp -> (
              let a = String.sub line 0 sp in
              let v = String.sub line (sp + 1) (String.length line - sp - 1) in
              let parse s =
                if String.length s > 1 && s.[0] = '-' then
                  Option.map Int.neg
                    (int_of_string_opt
                       ("0x" ^ String.sub s 1 (String.length s - 1)))
                else int_of_string_opt ("0x" ^ s)
              in
              match (parse a, parse v) with
              | Some a, Some v when Layout.is_flight_addr a ->
                Memory.write mem a v;
                true
              | _ -> false))
        rest
    in
    if ok then Some mem else None
  | _ -> None

let load_dump path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    load_dump_string s
