(** Forensic auditor and timeline reconstructor for flight-recorder
    rings.

    Given a post-crash NVM image (or a dump artifact loaded back into
    one), [audit] classifies every ring slot, separates intact records
    from torn ones, and reconstructs the cross-crash timeline in LSN
    order. Torn records are themselves findings, but *tolerated* ones:
    the single-fault adversary can only tear the append frontier, so
    invalid slots are acceptable precisely when they form the
    consecutive run of slots starting at the write frontier — the
    verdict is [Truncated]. An invalid slot anywhere else means the ring
    was damaged in a way the fault model cannot explain, and the verdict
    escalates to [Corrupt].

    Rendering is deterministic: no wall-clock anywhere; the Chrome-trace
    timestamps are LSNs and each crash epoch gets its own track. *)

module Memory = Cwsp_ir.Memory

type verdict = Clean | Truncated | Corrupt | Empty | No_ring

let verdict_name = function
  | Clean -> "clean"
  | Truncated -> "truncated"
  | Corrupt -> "corrupt"
  | Empty -> "empty"
  | No_ring -> "no-ring"

type record = {
  r_lsn : int;
  r_epoch : int;
  r_kind : Recorder.kind option;
  r_kind_code : int;
  r_args : int * int * int * int;
}

type audit = {
  a_verdict : verdict;
  a_capacity : int;
  a_records : record list;  (** intact, ascending LSN *)
  a_max_lsn : int;
  a_torn : int;  (** invalid slots explicable as the torn frontier *)
  a_corrupt_slots : int list;  (** invalid slots that are not *)
  a_stale : int;  (** intact records older than the live LSN window *)
  a_overwritten : int;  (** records lost to ring wrap, by LSN arithmetic *)
  a_epochs : int list;  (** distinct epochs present, ascending *)
}

let audit mem =
  match Recorder.read_super mem with
  | None ->
    {
      a_verdict = No_ring;
      a_capacity = 0;
      a_records = [];
      a_max_lsn = 0;
      a_torn = 0;
      a_corrupt_slots = [];
      a_stale = 0;
      a_overwritten = 0;
      a_epochs = [];
    }
  | Some capacity ->
    let slots =
      Array.init capacity (fun i -> Recorder.read_slot mem ~capacity i)
    in
    let max_lsn =
      Array.fold_left
        (fun m -> function `Record (lsn, _, _, _) -> max m lsn | _ -> m)
        0 slots
    in
    (* live window: the LSNs that should currently occupy the ring *)
    let lo = max 1 (max_lsn - capacity + 1) in
    let records = ref [] and bad = ref [] and stale = ref 0 in
    Array.iteri
      (fun i s ->
        match s with
        | `Empty -> ()
        | `Bad -> bad := i :: !bad
        | `Record (lsn, epoch, kc, args) ->
          if lsn >= lo then
            records :=
              {
                r_lsn = lsn;
                r_epoch = epoch;
                r_kind = Recorder.kind_of_code kc;
                r_kind_code = kc;
                r_args = args;
              }
              :: !records
          else begin
            (* an old record surviving where a newer one should sit: a
               torn overwrite that left the previous tenant intact *)
            incr stale;
            bad := i :: !bad
          end)
      slots;
    let bad = List.sort compare !bad in
    let records =
      List.sort (fun a b -> compare a.r_lsn b.r_lsn) !records
    in
    (* Invalid slots are tolerable iff they form a consecutive run of
       slots starting at the write frontier slot_of(max_lsn + 1): the
       only place a fail-stop crash (plus a single torn persist) can
       leave damage. *)
    let frontier = max_lsn mod capacity in
    let n_bad = List.length bad in
    let tolerated =
      let run = List.init n_bad (fun k -> (frontier + k) mod capacity) in
      List.sort compare run = bad
    in
    let verdict =
      if records = [] && n_bad = 0 then Empty
      else if n_bad = 0 then Clean
      else if tolerated then Truncated
      else Corrupt
    in
    let epochs =
      List.sort_uniq compare (List.map (fun r -> r.r_epoch) records)
    in
    {
      a_verdict = verdict;
      a_capacity = capacity;
      a_records = records;
      a_max_lsn = max_lsn;
      a_torn = (if tolerated then n_bad else 0);
      a_corrupt_slots = (if tolerated then [] else bad);
      a_stale = !stale;
      a_overwritten = max 0 (max_lsn - capacity);
      a_epochs = epochs;
    }

(* ---- decoding ---- *)

let describe r =
  let a0, a1, a2, a3 = r.r_args in
  match r.r_kind with
  | Some Recorder.Boundary ->
    Printf.sprintf "boundary committed: step=%d region=%d live-log-entries=%d%s"
      a0 a1 a2
      (if a3 <> 0 then " [sync]" else "")
  | Some Recorder.Telemetry ->
    Printf.sprintf
      "persist telemetry: regions=%d live-entries=%d sync-floor=%d slots=%d" a0
      a1 a2 a3
  | Some Recorder.Crash ->
    Printf.sprintf "power cut: step=%d nominal-region=%d mcs=%d" a0 a1 a2
  | Some Recorder.Inject ->
    Printf.sprintf "fault injected: %s site=%d" (Recorder.fault_name a0) a1
  | Some Recorder.Rung ->
    Printf.sprintf "ladder rung back=%d: usable=%b fatal=%b skips=%d" a0
      (a1 <> 0) (a2 <> 0) a3
  | Some Recorder.Decision ->
    Printf.sprintf "verdict: %s back=%d detections=%d state-ok=%b"
      (Recorder.outcome_name a0) a1 a2 (a3 <> 0)
  | Some Recorder.Resume ->
    Printf.sprintf "resumed at region=%d slices=%d reverts=%d" a0 a1 a2
  | Some Recorder.Restart ->
    Printf.sprintf "recovery crashed at sweep point %d; restarting" a0
  | Some Recorder.Cell ->
    Printf.sprintf "campaign cell %d: %s detections=%d rep=%d" a0
      (Recorder.outcome_name a1) a2 a3
  | Some Recorder.Note -> Printf.sprintf "note: %d %d %d %d" a0 a1 a2 a3
  | None -> Printf.sprintf "unknown-kind-%d: %d %d %d %d" r.r_kind_code a0 a1 a2 a3

let kind_label r =
  match r.r_kind with
  | Some k -> Recorder.kind_name k
  | None -> Printf.sprintf "kind-%d" r.r_kind_code

(* ---- correlation summary ---- *)

(* Cross-checks the timeline against the recovery audit's decisions: how
   many crashes were recorded, what was injected, and how each recovery
   attempt resolved on the degradation ladder. *)
type summary = {
  s_crashes : int;
  s_injections : (string * int) list;  (** fault class -> count *)
  s_decisions : (string * int) list;  (** outcome -> count *)
  s_refusals : int;
  s_restarts : int;
}

let summarize a =
  let bump assoc k =
    match List.assoc_opt k !assoc with
    | Some n -> assoc := (k, n + 1) :: List.remove_assoc k !assoc
    | None -> assoc := (k, 1) :: !assoc
  in
  let inj = ref [] and dec = ref [] in
  let crashes = ref 0 and refusals = ref 0 and restarts = ref 0 in
  List.iter
    (fun r ->
      let a0, _, _, _ = r.r_args in
      match r.r_kind with
      | Some Recorder.Crash -> incr crashes
      | Some Recorder.Inject -> bump inj (Recorder.fault_name a0)
      | Some Recorder.Decision ->
        bump dec (Recorder.outcome_name a0);
        if a0 = 2 then incr refusals
      | Some Recorder.Restart -> incr restarts
      | _ -> ())
    a.a_records;
  {
    s_crashes = !crashes;
    s_injections = List.sort compare !inj;
    s_decisions = List.sort compare !dec;
    s_refusals = !refusals;
    s_restarts = !restarts;
  }

(* ---- text rendering ---- *)

let render_text a =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "flight ring: verdict=%s" (verdict_name a.a_verdict);
  if a.a_verdict = No_ring then begin
    add "\n  no valid superblock in the flight region\n";
    Buffer.contents b
  end
  else begin
    add " capacity=%d records=%d max-lsn=%d epochs=%d\n" a.a_capacity
      (List.length a.a_records)
      a.a_max_lsn
      (List.length a.a_epochs);
    if a.a_torn > 0 then
      add "  torn frontier: %d slot%s unreadable (tolerated: prefix of the \
           timeline is intact)\n"
        a.a_torn
        (if a.a_torn = 1 then "" else "s");
    if a.a_stale > 0 then
      add "  stale survivors: %d slot%s kept a pre-wrap record after a torn \
           overwrite\n"
        a.a_stale
        (if a.a_stale = 1 then "" else "s");
    if a.a_corrupt_slots <> [] then
      add "  CORRUPT: slot%s %s damaged outside the write frontier\n"
        (if List.length a.a_corrupt_slots = 1 then "" else "s")
        (String.concat "," (List.map string_of_int a.a_corrupt_slots));
    if a.a_overwritten > 0 then
      add "  ring wrapped: %d oldest record%s overwritten\n" a.a_overwritten
        (if a.a_overwritten = 1 then "" else "s");
    let s = summarize a in
    add
      "  summary: crashes=%d restarts=%d refusals=%d  injections=[%s]  \
       decisions=[%s]\n"
      s.s_crashes s.s_restarts s.s_refusals
      (String.concat ", "
         (List.map (fun (k, n) -> Printf.sprintf "%s:%d" k n) s.s_injections))
      (String.concat ", "
         (List.map (fun (k, n) -> Printf.sprintf "%s:%d" k n) s.s_decisions));
    List.iter
      (fun e ->
        add "epoch %d:\n" e;
        List.iter
          (fun r ->
            if r.r_epoch = e then
              add "  lsn %-5d %-10s %s\n" r.r_lsn (kind_label r) (describe r))
          a.a_records)
      a.a_epochs;
    Buffer.contents b
  end

(* ---- Chrome trace rendering ---- *)

(* One track (pid) per crash epoch; ts is the LSN in fake microseconds,
   so relative order inside and across epochs is exact and the output is
   bit-deterministic. Complete events ("X", dur 1) render every record
   as a visible slice in about:tracing / Perfetto. *)
let render_chrome a =
  let b = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let esc s =
    String.concat ""
      (List.map
         (function
           | '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  add "[";
  let first = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_string b ",";
        Buffer.add_string b "\n";
        Buffer.add_string b s)
      fmt
  in
  List.iter
    (fun e ->
      emit
        "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"crash epoch %d\"}}"
        e e)
    a.a_epochs;
  List.iter
    (fun r ->
      let a0, a1, a2, a3 = r.r_args in
      emit
        "{\"ph\":\"X\",\"pid\":%d,\"tid\":1,\"ts\":%d,\"dur\":1,\"name\":\"%s\",\"args\":{\"lsn\":%d,\"detail\":\"%s\",\"a0\":%d,\"a1\":%d,\"a2\":%d,\"a3\":%d}}"
        r.r_epoch r.r_lsn (kind_label r) r.r_lsn (esc (describe r)) a0 a1 a2 a3)
    a.a_records;
  add "\n]\n";
  Buffer.contents b
