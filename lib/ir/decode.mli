(** Decoded execution core: one-shot pre-decoding of a validated [Prog.t]
    into flat, closure-compiled code (threaded dispatch, pre-resolved call
    targets / global addresses / [__out], unboxed packed-int event
    stream). The fast path of the benchmark harness; [Machine] in
    lib/interp remains the reference semantics, and the differential
    oracle ([Cwsp_interp.Oracle], test/test_decode.ml) holds the two
    bit-identical. See DESIGN.md §12. *)

(** Same exceptions as the reference interpreter ([Machine] re-exports
    these very constructors), raised under identical conditions. *)
exception Trap of string

exception Fuel_exhausted

(** Name of the output intrinsic ("__out"). *)
val out_intrinsic : string

(** A decoded program (pre-resolved, closure-compiled). *)
type t

(** A running (or finished) decoded machine. *)
type st

(** One-shot pre-decode. Global addresses are laid out exactly as
    [Machine.link] lays them out. *)
val decode : Prog.t -> t

(** Fresh machine on a fresh memory image with globals initialized;
    [main] must take no parameters. *)
val create : ?tid:int -> t -> st

(** Run until halt or until [fuel] steps (default 50M, as [Machine.run]);
    raises [Fuel_exhausted] if the budget runs out first. *)
val run : ?fuel:int -> st -> unit

(** Observable output, oldest first. *)
val outputs : st -> int list

val steps : st -> int
val memory : st -> Memory.t
val halted : st -> bool

(** The commit-event stream as a [Trace.t]. Takes ownership of the
    internal buffer — call once, after the run completes. *)
val trace : st -> Trace.t

(** Decode, run to completion, return (final state, trace) — fast-path
    equivalent of [Machine.trace_of_program]. *)
val trace_of_program : ?fuel:int -> Prog.t -> st * Trace.t

(** Decode and run with no trace consumer; returns the final state. *)
val run_functional : ?fuel:int -> Prog.t -> st

(** {2 Deterministic SPMD execution (mirrors [Multi])} *)

type spmd = {
  sts : st array;
  quantum : int;
}

exception Deadlock

(** [threads] machines sharing one memory image, thread [t] entering
    [worker](t); worker must take exactly the thread id. [quantum] sets
    the round-robin instruction quantum (default 32). *)
val create_spmd : ?quantum:int -> t -> threads:int -> worker:string -> spmd

(** Run all threads to completion under the fixed round-robin quantum
    schedule (default 32, identical interleaving to [Multi.run]). *)
val run_spmd : ?fuel:int -> ?quantum:int -> spmd -> unit

(** One commit trace per thread — fast-path equivalent of
    [Multi.traces_of_program]. *)
val spmd_traces_of_program :
  ?fuel:int ->
  ?quantum:int ->
  Prog.t ->
  threads:int ->
  worker:string ->
  spmd * Trace.t array
