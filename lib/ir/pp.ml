(** Human-readable assembly-like printing of IR programs, used by the
    [cwspc --dump-ir] driver and by examples to show where the compiler
    placed boundaries and checkpoints. *)

open Types

let operand_str = function
  | Reg r -> Printf.sprintf "r%d" r
  | Imm v -> string_of_int v

let binop_str = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Lshr -> "lshr"
  | Ashr -> "ashr"

let cmpop_str = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let instr_str = function
  | Bin (op, d, a, b) ->
    Printf.sprintf "r%d = %s %s, %s" d (binop_str op) (operand_str a) (operand_str b)
  | Cmp (op, d, a, b) ->
    Printf.sprintf "r%d = cmp.%s %s, %s" d (cmpop_str op) (operand_str a)
      (operand_str b)
  | Mov (d, s) -> Printf.sprintf "r%d = mov %s" d (operand_str s)
  | La (d, sym) -> Printf.sprintf "r%d = la @%s" d sym
  | Load (d, b, off) -> Printf.sprintf "r%d = load [r%d + %d]" d b off
  | Store (b, off, s) -> Printf.sprintf "store [r%d + %d], %s" b off (operand_str s)
  | Call (f, args, ret) ->
    let args = String.concat ", " (List.map operand_str args) in
    (match ret with
    | Some d -> Printf.sprintf "r%d = call %s(%s)" d f args
    | None -> Printf.sprintf "call %s(%s)" f args)
  | Atomic_rmw (op, d, b, off, s) ->
    Printf.sprintf "r%d = atomic.%s [r%d + %d], %s" d (binop_str op) b off
      (operand_str s)
  | Cas (d, b, off, e, v) ->
    Printf.sprintf "r%d = cas [r%d + %d], %s -> %s" d b off (operand_str e)
      (operand_str v)
  | Fence -> "fence"
  | Flush (b, off) -> Printf.sprintf "flush [r%d + %d]" b off
  | Pfence -> "pfence"
  | Ckpt r -> Printf.sprintf "ckpt r%d" r
  | Boundary id -> Printf.sprintf "--- region boundary #%d ---" id

let term_str = function
  | Jmp l -> Printf.sprintf "jmp .b%d" l
  | Br (c, a, b) -> Printf.sprintf "br r%d, .b%d, .b%d" c a b
  | Ret (Some op) -> Printf.sprintf "ret %s" (operand_str op)
  | Ret None -> "ret"

let func_str (f : Prog.func) =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "func %s(%d params, %d regs):\n" f.name f.nparams f.nregs;
  Array.iteri
    (fun bi (blk : Prog.block) ->
      Printf.bprintf buf ".b%d:\n" bi;
      List.iter (fun ins -> Printf.bprintf buf "  %s\n" (instr_str ins)) blk.instrs;
      Printf.bprintf buf "  %s\n" (term_str blk.term))
    f.blocks;
  Buffer.contents buf

let program_str (p : Prog.t) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (g : Prog.global) ->
      Printf.bprintf buf "global @%s : %d bytes" g.gname g.size;
      if g.init <> [] then begin
        Buffer.add_string buf " init";
        List.iter (fun (w, v) -> Printf.bprintf buf " %d:%d" w v) g.init
      end;
      Buffer.add_char buf '\n')
    p.globals;
  Printf.bprintf buf "main = %s\n\n" p.main;
  List.iter (fun (_, f) -> Buffer.add_string buf (func_str f); Buffer.add_char buf '\n')
    p.funcs;
  Buffer.contents buf
