(** Commit events, packed into a single native int each.

    The timing simulator replays millions of events per configuration, so
    the encoding is allocation-free: low 4 bits = kind tag, remaining
    bits = payload (a byte address for memory events, the static boundary
    id for boundary events, 0 otherwise). *)

type kind =
  | Alu       (** any non-memory instruction, including branches/calls *)
  | Load
  | Store
  | Ckpt      (** register checkpoint: a store to the NVM checkpoint area *)
  | Boundary  (** region-boundary commit *)
  | Fence
  | Atomic    (** atomic RMW / CAS: sync point that reads and writes memory *)
  | Flush     (** clwb-like line writeback; payload = byte address *)
  | Pfence    (** persist fence: drains pending flushes *)

val tag_of_kind : kind -> int
val kind_of_tag : int -> kind

val encode : kind -> payload:int -> int
val kind : int -> kind
val payload : int -> int

(** {2 Fast-path tags for the simulator's hot loop} *)

val tag : int -> int
val tag_alu : int
val tag_load : int
val tag_store : int
val tag_ckpt : int
val tag_boundary : int
val tag_fence : int
val tag_atomic : int
val tag_flush : int
val tag_pfence : int

(** Does the event deliver data to the persist path? *)
val writes_nvm : int -> bool

val to_string : int -> string
