(** Core IR types.

    The IR is a register machine over native OCaml integers (63-bit two's
    complement — documented as the machine word of this IR; using the
    native int keeps register files and memory pages unboxed, which the
    interpreter's throughput depends on). It is deliberately shaped
    like the subset of LLVM that the cWSP compiler passes care about:
    loads/stores with base+displacement addressing, calls, atomics and
    fences (synchronization points), plus the two instruction kinds the
    cWSP compiler *inserts* — region boundaries and register checkpoints.

    Functions own an unbounded set of virtual registers (an abstraction of
    the architectural register file plus spill slots); the paper's
    "architectural registers" map onto these directly for checkpointing
    purposes. *)

type reg = int [@@deriving show, eq]

type binop =
  | Add
  | Sub
  | Mul
  | Div   (* signed; division by zero yields 0, as a total semantics *)
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Ashr
[@@deriving show { with_path = false }, eq]

type cmpop = Eq | Ne | Lt | Le | Gt | Ge [@@deriving show { with_path = false }, eq]

type operand = Reg of reg | Imm of int
[@@deriving show { with_path = false }, eq]

(** Label of a basic block within its function (index into [Func.blocks]). *)
type label = int [@@deriving show, eq]

type instr =
  | Bin of binop * reg * operand * operand  (** dst <- a op b *)
  | Cmp of cmpop * reg * operand * operand  (** dst <- (a cmp b) ? 1 : 0 *)
  | Mov of reg * operand
  | La of reg * string                      (** dst <- address of global *)
  | Load of reg * reg * int                 (** dst <- mem[base + off] *)
  | Store of reg * int * operand            (** mem[base + off] <- src *)
  | Call of string * operand list * reg option
  | Atomic_rmw of binop * reg * reg * int * operand
      (** dst <- mem[base+off]; mem[base+off] <- dst op src; sync point *)
  | Cas of reg * reg * int * operand * operand
      (** dst <- old; if old = expected then mem <- desired; sync point *)
  | Fence
  | Flush of reg * int                      (** write the cache line of mem[base+off]
                                                back to NVM (clwb-like); async *)
  | Pfence                                  (** persist fence (sfence-like): pending
                                                flushes become durable; not a
                                                region-ending synchronization *)
  | Ckpt of reg                             (** compiler-inserted register checkpoint *)
  | Boundary of int                         (** compiler-inserted region boundary; id
                                                indexes per-function recovery metadata *)
[@@deriving show { with_path = false }, eq]

type term =
  | Jmp of label
  | Br of reg * label * label   (** if reg <> 0 then ifso else ifnot *)
  | Ret of operand option
[@@deriving show { with_path = false }, eq]

(** Registers read by an instruction. *)
let uses_of_operand = function Reg r -> [ r ] | Imm _ -> []

let uses = function
  | Bin (_, _, a, b) | Cmp (_, _, a, b) -> uses_of_operand a @ uses_of_operand b
  | Mov (_, src) -> uses_of_operand src
  | La _ -> []
  | Load (_, base, _) -> [ base ]
  | Store (base, _, src) -> base :: uses_of_operand src
  | Call (_, args, _) -> List.concat_map uses_of_operand args
  | Atomic_rmw (_, _, base, _, src) -> base :: uses_of_operand src
  | Cas (_, base, _, e, d) -> (base :: uses_of_operand e) @ uses_of_operand d
  | Fence -> []
  | Flush (base, _) -> [ base ]
  | Pfence -> []
  | Ckpt r -> [ r ]
  | Boundary _ -> []

(** Register written by an instruction, if any. *)
let def = function
  | Bin (_, dst, _, _) | Cmp (_, dst, _, _) | Mov (dst, _) | La (dst, _)
  | Load (dst, _, _) | Atomic_rmw (_, dst, _, _, _) | Cas (dst, _, _, _, _) ->
    Some dst
  | Call (_, _, ret) -> ret
  | Store _ | Fence | Flush _ | Pfence | Ckpt _ | Boundary _ -> None

let term_uses = function
  | Jmp _ -> []
  | Br (r, _, _) -> [ r ]
  | Ret (Some op) -> uses_of_operand op
  | Ret None -> []

let term_succs = function
  | Jmp l -> [ l ]
  | Br (_, a, b) -> if a = b then [ a ] else [ a; b ]
  | Ret _ -> []

(** Synchronization points end regions (Section IV-A / VIII of the paper).
    [Flush]/[Pfence] are deliberately *not* sync points: they order the
    persist stream, not inter-thread visibility, so the explicit-flush
    compiler may place them inside a region. *)
let is_sync = function
  | Atomic_rmw _ | Cas _ | Fence -> true
  | Bin _ | Cmp _ | Mov _ | La _ | Load _ | Store _ | Call _ | Flush _
  | Pfence | Ckpt _ | Boundary _ -> false

(** Does the instruction write memory? (Checkpoints are stores to the
    dedicated NVM checkpoint area.) *)
let writes_memory = function
  | Store _ | Atomic_rmw _ | Cas _ | Ckpt _ -> true
  | Bin _ | Cmp _ | Mov _ | La _ | Load _ | Call _ | Fence | Flush _
  | Pfence | Boundary _ -> false

let reads_memory = function
  | Load _ | Atomic_rmw _ | Cas _ -> true
  | Bin _ | Cmp _ | Mov _ | La _ | Store _ | Call _ | Fence | Flush _
  | Pfence | Ckpt _ | Boundary _ -> false
