(** The decoded execution core: a one-shot pre-decoder that lowers a
    validated [Prog.t] into flat, closure-compiled code.

    [Machine] (lib/interp) is the *reference* semantics: an explicit-state
    stepper whose frames the recovery/fault harnesses snapshot and resume.
    This module is the *fast path* the benchmark harness runs: every name
    is resolved once at decode time — call targets and the [__out]
    intrinsic to function indices, globals to absolute addresses,
    checkpoint slots to a per-thread base plus a depth displacement — so
    the hot loop never touches a string or a [Hashtbl]. Each function's
    blocks are flattened into a single [op array]; an [op] is a closure
    [st -> int] that executes one reference-machine step (one instruction
    or one terminator) and returns the next flat pc, so dispatch is one
    array load and one indirect call (threaded dispatch, after the zwasm
    playbook).

    Commit events are appended to a local int buffer with an inlined
    bounds check (no per-event closure call, no [Event.t] allocation —
    events stay packed ints, PR 6's 4-bit tag encoding) and surface as an
    ordinary [Trace.t].

    Decode invariants (asserted by the differential oracle,
    [Cwsp_interp.Oracle], and test/test_decode.ml):
    - outputs, the packed event stream, and the final memory image are
      bit-identical to the reference [Machine] run;
    - traps ([Trap], [Fuel_exhausted]) are raised under exactly the same
      conditions, with the same messages, at the same step counts;
    - SPMD runs replicate [Multi]'s round-robin quantum schedule, so
      per-thread traces are bit-identical too.

    Dynamic-error closures are still compiled (not raised at decode time):
    an unknown callee or global traps only if the instruction executes,
    exactly like the reference interpreter. *)

exception Trap of string
exception Fuel_exhausted

(** Name of the output intrinsic (see [Machine.out_intrinsic], which
    aliases this): [call __out(v)] appends [v] to the observable output
    vector. *)
let out_intrinsic = "__out"

type st = {
  mem : Memory.t;
  mutable regs : int array; (* current frame's registers *)
  mutable ops : op array;   (* current function's flat code *)
  mutable pc : int;         (* suspension point between quanta *)
  (* call stack as parallel arrays (depth-indexed, [Layout.max_frames]) *)
  stack_ops : op array array;
  stack_regs : int array array;
  stack_pc : int array;
  stack_ret : int array; (* caller register receiving the return, or -1 *)
  mutable depth : int;
  tid : int;
  mutable steps : int;
  mutable halted : bool;
  mutable outputs : int list; (* reversed observable output *)
  (* unboxed event stream: packed commit events, [Event] encoding *)
  mutable ev : int array;
  mutable evlen : int;
}

and op = st -> int

type dfunc = {
  d_name : string;
  d_nregs : int;   (* register-file size: max 1 nregs, >= nparams *)
  d_nparams : int;
  mutable d_ops : op array; (* filled in pass 2 (callees may be forward) *)
}

type t = {
  source : Prog.t;
  dfuncs : dfunc array;
  fidx : (string, int) Hashtbl.t;
  global_addr : (string, int) Hashtbl.t;
  main_idx : int;
}

(* ---- event buffer ---- *)

let emit st e =
  let n = st.evlen in
  if n = Array.length st.ev then begin
    let bigger = Array.make (2 * n) 0 in
    Array.blit st.ev 0 bigger 0 n;
    st.ev <- bigger
  end;
  Array.unsafe_set st.ev n e;
  st.evlen <- n + 1

(* pre-encoded constant events (Event.encode kind ~payload:0) *)
let ev_alu = 0 (* tag_alu = 0, payload 0 *)
let ev_fence = Event.tag_fence
let ev_pfence = Event.tag_pfence

(* ---- decoding ---- *)

(* Operand shapes are split at decode time; the generic accessors below
   only run inside the rare closures that keep an operand list (calls). *)
let operand_code = function Types.Reg r -> r | Types.Imm _ -> -1
let operand_imm = function Types.Reg _ -> 0 | Types.Imm v -> v

let compile_func (d : t) (f : Prog.func) : op array =
  (* flat pc layout: block [b] occupies [start.(b) .. start.(b+1)-1],
     its instructions first, its terminator last *)
  let nblocks = Array.length f.blocks in
  let start = Array.make (nblocks + 1) 0 in
  for b = 0 to nblocks - 1 do
    start.(b + 1) <- start.(b) + List.length f.blocks.(b).instrs + 1
  done;
  let ops = Array.make start.(nblocks) (fun (_ : st) -> 0) in
  let compile_instr pc (ins : Types.instr) : op =
    let next = pc + 1 in
    match ins with
    | Bin (op, dst, a, b) -> (
      match (a, b) with
      | Reg ra, Reg rb ->
        fun st ->
          let r = st.regs in
          r.(dst) <- Eval.binop op r.(ra) r.(rb);
          emit st ev_alu;
          next
      | Reg ra, Imm vb ->
        fun st ->
          let r = st.regs in
          r.(dst) <- Eval.binop op r.(ra) vb;
          emit st ev_alu;
          next
      | Imm va, Reg rb ->
        fun st ->
          let r = st.regs in
          r.(dst) <- Eval.binop op va r.(rb);
          emit st ev_alu;
          next
      | Imm va, Imm vb ->
        let v = Eval.binop op va vb in
        fun st ->
          st.regs.(dst) <- v;
          emit st ev_alu;
          next)
    | Cmp (op, dst, a, b) -> (
      match (a, b) with
      | Reg ra, Reg rb ->
        fun st ->
          let r = st.regs in
          r.(dst) <- Eval.cmpop op r.(ra) r.(rb);
          emit st ev_alu;
          next
      | Reg ra, Imm vb ->
        fun st ->
          let r = st.regs in
          r.(dst) <- Eval.cmpop op r.(ra) vb;
          emit st ev_alu;
          next
      | Imm va, Reg rb ->
        fun st ->
          let r = st.regs in
          r.(dst) <- Eval.cmpop op va r.(rb);
          emit st ev_alu;
          next
      | Imm va, Imm vb ->
        let v = Eval.cmpop op va vb in
        fun st ->
          st.regs.(dst) <- v;
          emit st ev_alu;
          next)
    | Mov (dst, Reg src) ->
      fun st ->
        let r = st.regs in
        r.(dst) <- r.(src);
        emit st ev_alu;
        next
    | Mov (dst, Imm v) ->
      fun st ->
        st.regs.(dst) <- v;
        emit st ev_alu;
        next
    | La (dst, sym) -> (
      match Hashtbl.find_opt d.global_addr sym with
      | Some a ->
        fun st ->
          st.regs.(dst) <- a;
          emit st ev_alu;
          next
      | None -> fun _ -> raise (Trap ("unknown global " ^ sym)))
    | Load (dst, base, off) ->
      fun st ->
        let addr = st.regs.(base) + off in
        st.regs.(dst) <- Memory.read st.mem addr;
        emit st ((addr lsl 4) lor Event.tag_load);
        next
    | Store (base, off, src) -> (
      match src with
      | Reg rs ->
        fun st ->
          let r = st.regs in
          let addr = r.(base) + off in
          Memory.write st.mem addr r.(rs);
          emit st ((addr lsl 4) lor Event.tag_store);
          next
      | Imm v ->
        fun st ->
          let addr = st.regs.(base) + off in
          Memory.write st.mem addr v;
          emit st ((addr lsl 4) lor Event.tag_store);
          next)
    | Atomic_rmw (op, dst, base, off, src) ->
      let sc = operand_code src and si = operand_imm src in
      fun st ->
        let r = st.regs in
        let addr = r.(base) + off in
        let old = Memory.read st.mem addr in
        r.(dst) <- old;
        let v = if sc >= 0 then r.(sc) else si in
        Memory.write st.mem addr (Eval.binop op old v);
        emit st ((addr lsl 4) lor Event.tag_atomic);
        next
    | Cas (dst, base, off, expected, desired) ->
      let ec = operand_code expected and ei = operand_imm expected in
      let dc = operand_code desired and di = operand_imm desired in
      fun st ->
        let r = st.regs in
        let addr = r.(base) + off in
        let old = Memory.read st.mem addr in
        r.(dst) <- old;
        if old = (if ec >= 0 then r.(ec) else ei) then
          Memory.write st.mem addr (if dc >= 0 then r.(dc) else di);
        emit st ((addr lsl 4) lor Event.tag_atomic);
        next
    | Fence ->
      fun st ->
        emit st ev_fence;
        next
    | Flush (base, off) ->
      fun st ->
        emit st (((st.regs.(base) + off) lsl 4) lor Event.tag_flush);
        next
    | Pfence ->
      fun st ->
        emit st ev_pfence;
        next
    | Ckpt r ->
      (* slot = ckpt_base + (((tid*F + depth land (F-1)) * S + r) * 8):
         everything but the depth term is fixed at decode time *)
      assert (r < Layout.ckpt_slots_per_frame);
      let frame_bytes = Layout.ckpt_slots_per_frame * Layout.word in
      let dmask = Layout.max_frames - 1 in
      fun st ->
        let base0 =
          Layout.ckpt_base
          + ((st.tid * Layout.max_frames * Layout.ckpt_slots_per_frame) + r)
            * Layout.word
        in
        let slot = base0 + ((st.depth land dmask) * frame_bytes) in
        Memory.write st.mem slot st.regs.(r);
        emit st ((slot lsl 4) lor Event.tag_ckpt);
        next
    | Boundary id ->
      let e = (id lsl 4) lor Event.tag_boundary in
      fun st ->
        emit st e;
        next
    | Call (callee, args, ret_to) ->
      if callee = out_intrinsic then (
        match args with
        | [ Reg ra ] ->
          fun st ->
            st.outputs <- st.regs.(ra) :: st.outputs;
            emit st ev_alu;
            next
        | [ Imm v ] ->
          fun st ->
            st.outputs <- v :: st.outputs;
            emit st ev_alu;
            next
        | _ -> fun _ -> raise (Trap "__out takes exactly one argument"))
      else (
        match Hashtbl.find_opt d.fidx callee with
        | None -> fun _ -> raise (Trap ("unknown function " ^ callee))
        | Some fi ->
          let lf = d.dfuncs.(fi) in
          let nregs = lf.d_nregs in
          let nargs = List.length args in
          let acode = Array.of_list (List.map operand_code args) in
          let aimm = Array.of_list (List.map operand_imm args) in
          let ret = match ret_to with Some r -> r | None -> -1 in
          fun st ->
            let regs = st.regs in
            let cregs = Array.make nregs 0 in
            for i = 0 to nargs - 1 do
              let c = acode.(i) in
              cregs.(i) <- (if c >= 0 then regs.(c) else aimm.(i))
            done;
            let dpt = st.depth in
            st.stack_ops.(dpt) <- st.ops;
            st.stack_regs.(dpt) <- regs;
            st.stack_pc.(dpt) <- next;
            st.stack_ret.(dpt) <- ret;
            st.depth <- dpt + 1;
            if st.depth >= Layout.max_frames then
              raise (Trap "call stack deeper than the checkpoint area");
            st.ops <- lf.d_ops;
            st.regs <- cregs;
            emit st ev_alu;
            0)
  in
  let compile_term (term : Types.term) : op =
    match term with
    | Jmp l ->
      let target = start.(l) in
      fun st ->
        emit st ev_alu;
        target
    | Br (c, ifso, ifnot) ->
      let so = start.(ifso) and no = start.(ifnot) in
      fun st ->
        emit st ev_alu;
        if st.regs.(c) <> 0 then so else no
    | Ret op ->
      let rc, ri =
        match op with
        | Some o -> (operand_code o, operand_imm o)
        | None -> (-1, 0)
      in
      fun st ->
        let v = if rc >= 0 then st.regs.(rc) else ri in
        if st.depth = 0 then begin
          st.halted <- true;
          emit st ev_alu;
          st.pc (* unused: the dispatch loop checks [halted] first *)
        end
        else begin
          let dpt = st.depth - 1 in
          st.depth <- dpt;
          let cregs = st.stack_regs.(dpt) in
          let ret = st.stack_ret.(dpt) in
          if ret >= 0 then cregs.(ret) <- v;
          st.regs <- cregs;
          st.ops <- st.stack_ops.(dpt);
          emit st ev_alu;
          st.stack_pc.(dpt)
        end
  in
  Array.iteri
    (fun b (blk : Prog.block) ->
      let pc = ref start.(b) in
      List.iter
        (fun ins ->
          ops.(!pc) <- compile_instr !pc ins;
          incr pc)
        blk.instrs;
      ops.(!pc) <- compile_term blk.term)
    f.blocks;
  ops

(** One-shot pre-decode of a (validated) program. Global addresses are
    assigned exactly as [Machine.link] assigns them, so memory images and
    event payloads are directly comparable. *)
let decode (p : Prog.t) : t =
  let fidx = Hashtbl.create 16 in
  List.iteri (fun i (name, _) -> Hashtbl.replace fidx name i) p.funcs;
  let dfuncs =
    Array.of_list
      (List.map
         (fun (_, (f : Prog.func)) ->
           {
             d_name = f.name;
             d_nregs = max (max 1 f.nregs) f.nparams;
             d_nparams = f.nparams;
             d_ops = [||];
           })
         p.funcs)
  in
  let global_addr = Hashtbl.create 16 in
  let next = ref Layout.global_base in
  List.iter
    (fun (g : Prog.global) ->
      Hashtbl.replace global_addr g.gname !next;
      let aligned =
        (g.size + Layout.cache_line - 1) / Layout.cache_line * Layout.cache_line
      in
      next := !next + aligned)
    p.globals;
  let main_idx =
    match Hashtbl.find_opt fidx p.main with
    | Some i -> i
    | None -> invalid_arg "Decode.decode: missing main"
  in
  let d = { source = p; dfuncs; fidx; global_addr; main_idx } in
  (* pass 2: compile bodies (call closures capture forward dfuncs) *)
  List.iteri
    (fun i (_, f) -> dfuncs.(i).d_ops <- compile_func d f)
    p.funcs;
  d

(* ---- execution ---- *)

let init_globals (d : t) mem =
  List.iter
    (fun (g : Prog.global) ->
      let base = Hashtbl.find d.global_addr g.gname in
      List.iter (fun (w, v) -> Memory.write mem (base + (w * 8)) v) g.init)
    d.source.globals

let make_st ?(tid = 0) ~mem ~regs ~(ops : op array) () =
  {
    mem;
    regs;
    ops;
    pc = 0;
    stack_ops = Array.make Layout.max_frames [||];
    stack_regs = Array.make Layout.max_frames [||];
    stack_pc = Array.make Layout.max_frames 0;
    stack_ret = Array.make Layout.max_frames (-1);
    depth = 0;
    tid;
    steps = 0;
    halted = false;
    outputs = [];
    ev = Array.make 4096 0;
    evlen = 0;
  }

(** Fresh machine on a fresh memory image, entering [main] (which must
    take no parameters), global initializers applied. *)
let create ?(tid = 0) (d : t) : st =
  let mem = Memory.create () in
  init_globals d mem;
  let mf = d.dfuncs.(d.main_idx) in
  if mf.d_nparams <> 0 then invalid_arg "Decode.create: main must take no params";
  make_st ~tid ~mem ~regs:(Array.make mf.d_nregs 0) ~ops:mf.d_ops ()

let outputs st = List.rev st.outputs
let steps st = st.steps
let memory st = st.mem
let halted st = st.halted

(** The event stream as a [Trace.t]. Takes ownership of the buffer: call
    once, after the run. *)
let trace st = Trace.of_array st.ev ~len:st.evlen

(* the threaded-dispatch inner loop: one array load + one indirect call
   per reference-machine step *)
let run_steps st ~(limit : int) =
  while not st.halted && st.steps < limit do
    st.steps <- st.steps + 1;
    st.pc <- (Array.unsafe_get st.ops st.pc) st
  done

(** Run until halt or until [fuel] steps have been executed; raises
    [Fuel_exhausted] if the budget runs out first (same contract as
    [Machine.run]). *)
let run ?(fuel = 50_000_000) st =
  let limit = st.steps + fuel in
  run_steps st ~limit;
  if not st.halted then raise Fuel_exhausted

(** Decode, run to completion, return (final state, trace). The fast-path
    equivalent of [Machine.trace_of_program]. *)
let trace_of_program ?fuel (p : Prog.t) : st * Trace.t =
  let st = create (decode p) in
  run ?fuel st;
  (st, trace st)

(** Run functionally; returns the final state (memory + outputs). *)
let run_functional ?fuel (p : Prog.t) : st =
  let st = create (decode p) in
  run ?fuel st;
  st

(* ---- deterministic SPMD execution (mirrors [Multi]) ---- *)

type spmd = {
  sts : st array;
  quantum : int;
}

(** [create_spmd d ~threads ~worker]: [threads] decoded machines sharing
    one memory image, thread [t] entering [worker](t) — the decoded
    equivalent of [Multi.create], same round-robin quantum default. *)
let create_spmd ?(quantum = 32) (d : t) ~threads ~worker : spmd =
  if threads <= 0 then invalid_arg "Decode.create_spmd: threads must be positive";
  if quantum <= 0 then invalid_arg "Decode.create_spmd: quantum must be positive";
  let wf =
    match Hashtbl.find_opt d.fidx worker with
    | Some i -> d.dfuncs.(i)
    | None -> invalid_arg ("Decode.create_spmd: no worker function " ^ worker)
  in
  if wf.d_nparams <> 1 then
    invalid_arg "Decode.create_spmd: worker must take exactly the thread id";
  let mem = Memory.create () in
  init_globals d mem;
  let sts =
    Array.init threads (fun tid ->
        let regs = Array.make wf.d_nregs 0 in
        regs.(0) <- tid;
        make_st ~tid ~mem ~regs ~ops:wf.d_ops ())
  in
  { sts; quantum }

exception Deadlock

(** Run all threads to completion under the fixed round-robin quantum
    schedule (bit-reproducible; identical interleaving to [Multi.run]). *)
let run_spmd ?(fuel = 200_000_000) ?quantum (m : spmd) =
  let quantum = Option.value ~default:m.quantum quantum in
  let budget = ref fuel in
  let live () = Array.exists (fun st -> not st.halted) m.sts in
  while live () do
    let progressed = ref false in
    Array.iter
      (fun st ->
        if not st.halted then begin
          progressed := true;
          (* same budget accounting as [Multi.run]: one fuel unit per
             step, checked before the step executes *)
          let want = ref quantum in
          while !want > 0 && not st.halted do
            if !budget <= 0 then raise Fuel_exhausted;
            decr budget;
            st.steps <- st.steps + 1;
            st.pc <- (Array.unsafe_get st.ops st.pc) st;
            decr want
          done
        end)
      m.sts;
    if not !progressed then raise Deadlock
  done

(** SPMD trace generation: one commit trace per thread — the fast-path
    equivalent of [Multi.traces_of_program]. *)
let spmd_traces_of_program ?fuel ?quantum (p : Prog.t) ~threads ~worker :
    spmd * Trace.t array =
  let m = create_spmd (decode p) ~threads ~worker in
  run_spmd ?fuel ?quantum m;
  (m, Array.map trace m.sts)
