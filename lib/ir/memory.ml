(** Sparse paged word-addressable memory.

    4 KiB pages materialize on first touch; untouched memory reads as
    zero. Words are native ints (the IR machine word); addresses must be
    8-byte aligned — workloads and the runtime only ever issue aligned
    accesses, and the simulator's 8-byte persist-path granularity
    (Section V-A2) matches this. *)

let page_words = 512
let page_bytes = page_words * 8

(* Shift/mask forms of the page arithmetic: [page_bytes] is a computed
   top-level value, so [a / page_bytes] compiles to a real division
   without flambda. Addresses are non-negative (checked), so the shifts
   are exact. *)
let page_key a = a lsr 12
let word_index a = (a land 4095) lsr 3

(* [last_key]/[last_page] is a one-entry translation cache: the decoded
   core and the interpreter both exhibit strong page locality, and going
   through [Hashtbl] costs a hash plus (on the read path) an allocated
   option per access. The hashtable stays the source of truth — the cache
   only ever aliases an array that is already installed in it. *)
type t = {
  pages : (int, int array) Hashtbl.t;
  mutable last_key : int;
  mutable last_page : int array;
}

let no_page : int array = [||]
let create () = { pages = Hashtbl.create 256; last_key = -1; last_page = no_page }

let check_addr a =
  if a land 7 <> 0 then
    invalid_arg (Printf.sprintf "Memory: unaligned address 0x%x" a);
  if a < 0 then invalid_arg "Memory: negative address"

let read t a =
  check_addr a;
  let key = page_key a in
  if key = t.last_key then Array.unsafe_get t.last_page (word_index a)
  else
    match Hashtbl.find t.pages key with
    | page ->
      t.last_key <- key;
      t.last_page <- page;
      Array.unsafe_get page (word_index a)
    | exception Not_found -> 0

let write t a v =
  check_addr a;
  let key = page_key a in
  let page =
    if key = t.last_key then t.last_page
    else
      match Hashtbl.find t.pages key with
      | p ->
        t.last_key <- key;
        t.last_page <- p;
        p
      | exception Not_found ->
        let p = Array.make page_words 0 in
        Hashtbl.add t.pages key p;
        t.last_key <- key;
        t.last_page <- p;
        p
  in
  Array.unsafe_set page (word_index a) v

(** Read-modify-write one word: [mutate t a f] stores [f (read t a)].
    The persistence-path fault injectors use this to tear or bit-flip a
    surviving NVM word in place. *)
let mutate t a f = write t a (f (read t a))

let snapshot t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter (fun k p -> Hashtbl.add pages k (Array.copy p)) t.pages;
  { pages; last_key = -1; last_page = no_page }

(** Structural equality treating absent pages as zero-filled. *)
let equal a b =
  let covered t other =
    Hashtbl.fold
      (fun k p ok ->
        ok
        &&
        match Hashtbl.find_opt other.pages k with
        | Some q -> p = q
        | None -> Array.for_all (fun w -> w = 0) p)
      t.pages true
  in
  covered a b && covered b a

(** Like [equal], but words whose address satisfies [except] are ignored.
    Identical pages still take the fast structural-compare path; only
    pages that differ fall back to the word-wise scan. *)
let equal_except ~except a b =
  let covered t other =
    Hashtbl.fold
      (fun k p ok ->
        ok
        &&
        let q =
          match Hashtbl.find_opt other.pages k with
          | Some q -> q
          | None -> no_page
        in
        (q != no_page && p = q)
        ||
        let base = k * page_bytes in
        let ok = ref true in
        Array.iteri
          (fun i v ->
            let w = if q == no_page then 0 else q.(i) in
            if v <> w && not (except (base + (i * 8))) then ok := false)
          p;
        !ok)
      t.pages true
  in
  covered a b && covered b a

(** First differing (addr, a_value, b_value), for test diagnostics. *)
let first_diff a b =
  let exception Found of int * int * int in
  let scan t other =
    Hashtbl.iter
      (fun k p ->
        let q =
          match Hashtbl.find_opt other.pages k with
          | Some q -> q
          | None -> Array.make page_words 0
        in
        Array.iteri
          (fun i v -> if v <> q.(i) then raise (Found ((k * page_bytes) + (i * 8), v, q.(i))))
          p)
      t.pages
  in
  try
    scan a b;
    (* catch words present only in b *)
    (try
       scan b a;
       None
     with Found (addr, bv, av) -> Some (addr, av, bv))
  with Found (addr, av, bv) -> Some (addr, av, bv)

(** [first_diff] restricted to addresses where [except] is false. *)
let first_diff_except ~except a b =
  let exception Found of int * int * int in
  let scan t other =
    Hashtbl.iter
      (fun k p ->
        let q =
          match Hashtbl.find_opt other.pages k with
          | Some q -> q
          | None -> Array.make page_words 0
        in
        Array.iteri
          (fun i v ->
            let addr = (k * page_bytes) + (i * 8) in
            if v <> q.(i) && not (except addr) then raise (Found (addr, v, q.(i))))
          p)
      t.pages
  in
  try
    scan a b;
    (try
       scan b a;
       None
     with Found (addr, bv, av) -> Some (addr, av, bv))
  with Found (addr, av, bv) -> Some (addr, av, bv)

let iter f t =
  Hashtbl.iter
    (fun k p ->
      Array.iteri (fun i v -> if v <> 0 then f ((k * page_bytes) + (i * 8)) v) p)
    t.pages
