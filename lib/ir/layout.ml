(** Address-space layout of the simulated whole-system-persistent machine.

    Under WSP all of main memory is NVM, so there is a single flat address
    space: globals, heap and the hardware-managed register-checkpoint area
    (Section IV-B of the paper) all live in it. Addresses are byte
    addresses; data accesses are 8-byte words. *)

let word = 8

(* Globals are laid out from here, each aligned to a cache line. *)
let global_base = 0x1_0000

(* Register-checkpoint area: slot for register [r] at call-stack depth
   [depth] of thread [tid]. The hardware indexes this storage by register
   id; the depth dimension models the per-activation register context
   that a real machine keeps in the (NVM-resident) stack via spills and
   calling conventions — our IR abstracts spills away, so activations
   deeper than [max_frames] wrap and are rejected by the interpreter. *)
let ckpt_base = 0x2000_0000
let ckpt_slots_per_frame = 65536
let max_frames = 64

let ckpt_slot ~tid ~depth r =
  assert (r < ckpt_slots_per_frame);
  ckpt_base
  + ((((tid * max_frames) + (depth land (max_frames - 1))) * ckpt_slots_per_frame + r)
     * word)

let ckpt_area_bytes = ckpt_slots_per_frame * max_frames * word
let is_ckpt_addr a = a >= ckpt_base && a < ckpt_base + (16 * ckpt_area_bytes)

(* The IR runtime's sbrk starts the heap here. *)
let heap_base = 0x4000_0000

(* Flight-recorder ring: a reserved NVM region, far above anything the
   heap can plausibly reach, where the persistent event log lives
   (superblock + fixed 64-byte records). It is ordinary simulated NVM —
   written through the same persist path as everything else — but it is
   observability state, not program state, so the golden-image
   comparisons exclude it ([Memory.equal_except is_flight_addr]). *)
let flight_base = 0x1_0000_0000
let flight_bytes = 0x10_0000
let is_flight_addr a = a >= flight_base && a < flight_base + flight_bytes

let cache_line = 64
let line_of_addr a = a land lnot (cache_line - 1)
