(** Growable commit-event traces.

    A trace is produced once per (workload, compile configuration) by the
    functional interpreter and then replayed by every timing
    configuration — the trace/timing split that makes the benchmark
    harness's ~1700 simulation points affordable (DESIGN.md §5). *)

type t

val create : ?capacity:int -> unit -> t
val push : t -> int -> unit
val length : t -> int
val get : t -> int -> int
val iter : (int -> unit) -> t -> unit

(** Wrap a caller-filled buffer (takes ownership of the array). *)
val of_array : int array -> len:int -> t

(** Index of the first differing event (or the shorter length when one
    trace is a prefix of the other); [None] when identical. *)
val first_diff : t -> t -> int option

val equal : t -> t -> bool

(** Aggregate counts used by workload metadata tests and region stats. *)
type summary = {
  instructions : int;
  loads : int;
  stores : int; (** data stores, excluding checkpoints *)
  ckpts : int;
  boundaries : int;
  atomics : int;
  fences : int;
}

val summarize : t -> summary

(** Dynamic region lengths (instructions between consecutive boundaries),
    for Figure 19. *)
val region_lengths : t -> int list
