(** Growable commit-event traces.

    A trace is produced once per (workload, compile configuration) by the
    functional interpreter and then replayed by every timing configuration
    — the trace/timing split that makes the ~1700 simulation points of the
    benchmark harness affordable (see DESIGN.md §5). *)

type t = {
  mutable events : int array;
  mutable len : int;
}

let create ?(capacity = 4096) () = { events = Array.make capacity 0; len = 0 }

let push t ev =
  if t.len = Array.length t.events then begin
    let bigger = Array.make (2 * Array.length t.events) 0 in
    Array.blit t.events 0 bigger 0 t.len;
    t.events <- bigger
  end;
  t.events.(t.len) <- ev;
  t.len <- t.len + 1

let length t = t.len
let get t i = t.events.(i)

(** Wrap a buffer the producer already filled (takes ownership of
    [events]); the decoded core appends into a local array with an
    inlined bounds check and hands the result over wholesale. *)
let of_array events ~len =
  if len < 0 || len > Array.length events then
    invalid_arg "Trace.of_array: bad length";
  { events; len }

(** Structural equality of two traces (same length, same packed events)
    — the decoded-vs-reference oracle's trace check. Returns the index
    of the first difference on failure. *)
let first_diff a b =
  if a.len <> b.len then Some (min a.len b.len)
  else begin
    let i = ref 0 in
    while !i < a.len && a.events.(!i) = b.events.(!i) do incr i done;
    if !i = a.len then None else Some !i
  end

let equal a b = first_diff a b = None

let iter f t =
  for i = 0 to t.len - 1 do
    f t.events.(i)
  done

(** Aggregate counts used by workload metadata tests and region stats. *)
type summary = {
  instructions : int;
  loads : int;
  stores : int;     (* data stores, excluding checkpoints *)
  ckpts : int;
  boundaries : int;
  atomics : int;
  fences : int;
}

let summarize t =
  let loads = ref 0 and stores = ref 0 and ckpts = ref 0 in
  let boundaries = ref 0 and atomics = ref 0 and fences = ref 0 in
  iter
    (fun ev ->
      match Event.kind ev with
      | Alu -> ()
      | Load -> incr loads
      | Store -> incr stores
      | Ckpt -> incr ckpts
      | Boundary -> incr boundaries
      | Fence -> incr fences
      | Atomic -> incr atomics
      (* flush/pfence traffic is persist-path plumbing, not one of the
         workload-shape counts this summary feeds *)
      | Flush | Pfence -> ())
    t;
  {
    instructions = t.len;
    loads = !loads;
    stores = !stores;
    ckpts = !ckpts;
    boundaries = !boundaries;
    atomics = !atomics;
    fences = !fences;
  }

(** Dynamic region lengths (instructions between consecutive boundaries),
    for Figure 19. The stretch before the first boundary and after the
    last are excluded, matching how region statistics are defined. *)
let region_lengths t =
  let lens = ref [] in
  let since = ref (-1) in
  let pos = ref 0 in
  iter
    (fun ev ->
      (match Event.kind ev with
      | Boundary ->
        if !since >= 0 then lens := (!pos - !since) :: !lens;
        since := !pos
      | Alu | Load | Store | Ckpt | Fence | Atomic | Flush | Pfence -> ());
      incr pos)
    t;
  List.rev !lens
