(** Parser for the textual IR syntax produced by [Pp] — programs
    round-trip through [Pp.program_str] and [Parse.program], which gives
    the [cwspc] driver a file format and the test suite a printer/parser
    consistency oracle.

    Grammar (one construct per line, '#' starts a comment):
    {v
    global @name : <bytes> bytes
    main = <name>
    func <name>(<nparams> params, <nregs> regs):
    .b<k>:
      r1 = add r2, 3
      r4 = cmp.lt r1, 10
      r5 = mov 7
      r6 = la @g
      r7 = load [r6 + 8]
      store [r6 + 0], r7
      r8 = call f(r1, 2)
      call f(r1)
      r9 = atomic.add [r6 + 0], 1
      r10 = cas [r6 + 0], 0 -> 1
      fence
      flush [r6 + 0]
      pfence
      ckpt r3
      --- region boundary #2 ---
      jmp .b1
      br r4, .b1, .b2
      ret r1
      ret
    v} *)

open Types

exception Parse_error of int * string (* line number, message *)

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

(* ---- tokens-by-regex-free scanning helpers ---- *)

let is_space c = c = ' ' || c = '\t'
let strip s = String.trim s

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let after ~prefix s = String.sub s (String.length prefix) (String.length s - String.length prefix)

(* split "a, b, c" at top level commas *)
let split_commas s =
  if strip s = "" then []
  else String.split_on_char ',' s |> List.map strip

let parse_int ln s =
  match int_of_string_opt (strip s) with
  | Some v -> v
  | None -> fail ln "expected integer, got %S" s

let parse_reg ln s =
  let s = strip s in
  if String.length s >= 2 && s.[0] = 'r' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some r -> r
    | None -> fail ln "bad register %S" s
  else fail ln "expected register, got %S" s

let parse_operand ln s =
  let s = strip s in
  if String.length s >= 1 && s.[0] = 'r' && String.length s > 1
     && s.[1] >= '0' && s.[1] <= '9'
  then Reg (parse_reg ln s)
  else Imm (parse_int ln s)

let parse_label ln s =
  let s = strip s in
  if starts_with ~prefix:".b" s then parse_int ln (after ~prefix:".b" s)
  else fail ln "expected label, got %S" s

let binop_of_string = function
  | "add" -> Some Add | "sub" -> Some Sub | "mul" -> Some Mul
  | "div" -> Some Div | "rem" -> Some Rem | "and" -> Some And
  | "or" -> Some Or | "xor" -> Some Xor | "shl" -> Some Shl
  | "lshr" -> Some Lshr | "ashr" -> Some Ashr
  | _ -> None

let cmpop_of_string = function
  | "eq" -> Some Eq | "ne" -> Some Ne | "lt" -> Some Lt | "le" -> Some Le
  | "gt" -> Some Gt | "ge" -> Some Ge
  | _ -> None

(* parse "[rN + K]", allowing negative K as "[rN + -8]" *)
let parse_mem ln s =
  let s = strip s in
  let n = String.length s in
  if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then
    fail ln "expected [reg + off], got %S" s;
  let inner = String.sub s 1 (n - 2) in
  match String.index_opt inner '+' with
  | Some i ->
    let base = parse_reg ln (String.sub inner 0 i) in
    let off = parse_int ln (String.sub inner (i + 1) (String.length inner - i - 1)) in
    (base, off)
  | None -> (parse_reg ln inner, 0)

(* parse "name(arg, arg)" *)
let parse_call ln s =
  let s = strip s in
  match String.index_opt s '(' with
  | None -> fail ln "expected call syntax, got %S" s
  | Some i ->
    let callee = String.sub s 0 i in
    let n = String.length s in
    if s.[n - 1] <> ')' then fail ln "unterminated call %S" s;
    let args = String.sub s (i + 1) (n - i - 2) in
    (strip callee, List.map (parse_operand ln) (split_commas args))

(* "r1 = <rhs>" -> Some (r1, rhs) *)
let parse_assign s =
  match String.index_opt s '=' with
  | Some i when i > 0 ->
    let lhs = strip (String.sub s 0 i) in
    let rhs = strip (String.sub s (i + 1) (String.length s - i - 1)) in
    if String.length lhs > 1 && lhs.[0] = 'r' then Some (lhs, rhs) else None
  | _ -> None

let parse_instr ln s : instr =
  let s = strip s in
  if starts_with ~prefix:"--- region boundary #" s then begin
    let rest = after ~prefix:"--- region boundary #" s in
    match String.index_opt rest ' ' with
    | Some i -> Boundary (parse_int ln (String.sub rest 0 i))
    | None -> Boundary (parse_int ln rest)
  end
  else if s = "fence" then Fence
  else if starts_with ~prefix:"fence " s then
    fail ln "fence takes no operand: %S" s
  else if s = "pfence" then Pfence
  else if starts_with ~prefix:"pfence " s then
    fail ln "pfence takes no operand: %S" s
  else if starts_with ~prefix:"flush " s then begin
    let base, off = parse_mem ln (after ~prefix:"flush " s) in
    Flush (base, off)
  end
  else if starts_with ~prefix:"ckpt " s then Ckpt (parse_reg ln (after ~prefix:"ckpt " s))
  else if starts_with ~prefix:"store " s then begin
    (* store [rN + K], src *)
    let rest = after ~prefix:"store " s in
    match String.index_opt rest ']' with
    | None -> fail ln "bad store %S" s
    | Some i ->
      let mem = String.sub rest 0 (i + 1) in
      let base, off = parse_mem ln mem in
      let tail = strip (String.sub rest (i + 1) (String.length rest - i - 1)) in
      if not (starts_with ~prefix:"," tail) then fail ln "bad store %S" s;
      Store (base, off, parse_operand ln (after ~prefix:"," tail))
  end
  else if starts_with ~prefix:"call " s then begin
    let callee, args = parse_call ln (after ~prefix:"call " s) in
    Call (callee, args, None)
  end
  else
    match parse_assign s with
    | None -> fail ln "unrecognized instruction %S" s
    | Some (lhs, rhs) -> (
      let dst = parse_reg ln lhs in
      if starts_with ~prefix:"mov " rhs then Mov (dst, parse_operand ln (after ~prefix:"mov " rhs))
      else if starts_with ~prefix:"la @" rhs then La (dst, strip (after ~prefix:"la @" rhs))
      else if starts_with ~prefix:"load " rhs then begin
        let base, off = parse_mem ln (after ~prefix:"load " rhs) in
        Load (dst, base, off)
      end
      else if starts_with ~prefix:"call " rhs then begin
        let callee, args = parse_call ln (after ~prefix:"call " rhs) in
        Call (callee, args, Some dst)
      end
      else if starts_with ~prefix:"cmp." rhs then begin
        let rest = after ~prefix:"cmp." rhs in
        match String.index_opt rest ' ' with
        | None -> fail ln "bad cmp %S" rhs
        | Some i -> (
          let opname = String.sub rest 0 i in
          match cmpop_of_string opname with
          | None -> fail ln "unknown cmp op %S" opname
          | Some op -> (
            match split_commas (String.sub rest i (String.length rest - i)) with
            | [ a; b ] -> Cmp (op, dst, parse_operand ln a, parse_operand ln b)
            | _ -> fail ln "cmp needs two operands: %S" rhs))
      end
      else if starts_with ~prefix:"atomic." rhs then begin
        let rest = after ~prefix:"atomic." rhs in
        match String.index_opt rest ' ' with
        | None -> fail ln "bad atomic %S" rhs
        | Some i -> (
          let opname = String.sub rest 0 i in
          match binop_of_string opname with
          | None -> fail ln "unknown atomic op %S" opname
          | Some op -> (
            let tail = strip (String.sub rest i (String.length rest - i)) in
            match String.index_opt tail ']' with
            | None -> fail ln "bad atomic %S" rhs
            | Some j ->
              let base, off = parse_mem ln (String.sub tail 0 (j + 1)) in
              let rest2 = strip (String.sub tail (j + 1) (String.length tail - j - 1)) in
              if not (starts_with ~prefix:"," rest2) then fail ln "bad atomic %S" rhs;
              Atomic_rmw (op, dst, base, off, parse_operand ln (after ~prefix:"," rest2))))
      end
      else if starts_with ~prefix:"cas " rhs then begin
        (* cas [rN + K], e -> d *)
        let rest = after ~prefix:"cas " rhs in
        match String.index_opt rest ']' with
        | None -> fail ln "bad cas %S" rhs
        | Some j -> (
          let base, off = parse_mem ln (String.sub rest 0 (j + 1)) in
          let tail = strip (String.sub rest (j + 1) (String.length rest - j - 1)) in
          if not (starts_with ~prefix:"," tail) then fail ln "bad cas %S" rhs;
          let tail = strip (after ~prefix:"," tail) in
          match
            (* split on "->" *)
            let rec find i =
              if i + 1 >= String.length tail then None
              else if tail.[i] = '-' && tail.[i + 1] = '>' then Some i
              else find (i + 1)
            in
            find 0
          with
          | None -> fail ln "cas needs '->': %S" rhs
          | Some i ->
            let e = String.sub tail 0 i in
            let d = String.sub tail (i + 2) (String.length tail - i - 2) in
            Cas (dst, base, off, parse_operand ln e, parse_operand ln d))
      end
      else begin
        (* binary op: "<op> a, b" *)
        match String.index_opt rhs ' ' with
        | None -> fail ln "unrecognized rhs %S" rhs
        | Some i -> (
          let opname = String.sub rhs 0 i in
          match binop_of_string opname with
          | None -> fail ln "unknown op %S" opname
          | Some op -> (
            match split_commas (String.sub rhs i (String.length rhs - i)) with
            | [ a; b ] -> Bin (op, dst, parse_operand ln a, parse_operand ln b)
            | _ -> fail ln "binop needs two operands: %S" rhs))
      end)

let parse_term ln s : term option =
  let s = strip s in
  if starts_with ~prefix:"jmp " s then Some (Jmp (parse_label ln (after ~prefix:"jmp " s)))
  else if starts_with ~prefix:"br " s then begin
    match split_commas (after ~prefix:"br " s) with
    | [ c; a; b ] -> Some (Br (parse_reg ln c, parse_label ln a, parse_label ln b))
    | _ -> fail ln "br needs three operands: %S" s
  end
  else if s = "ret" then Some (Ret None)
  else if starts_with ~prefix:"ret " s then
    Some (Ret (Some (parse_operand ln (after ~prefix:"ret " s))))
  else None

(* "func name(<p> params, <r> regs):" *)
let parse_func_header ln s =
  let rest = after ~prefix:"func " s in
  match String.index_opt rest '(' with
  | None -> fail ln "bad func header %S" s
  | Some i -> (
    let name = strip (String.sub rest 0 i) in
    let n = String.length rest in
    match String.index_opt rest ')' with
    | None -> fail ln "bad func header %S" s
    | Some j ->
      ignore n;
      let inner = String.sub rest (i + 1) (j - i - 1) in
      (match split_commas inner with
      | [ p; r ] when starts_with ~prefix:"" p ->
        let nparams =
          match String.split_on_char ' ' (strip p) with
          | np :: _ -> parse_int ln np
          | [] -> fail ln "bad params %S" p
        in
        let nregs =
          match String.split_on_char ' ' (strip r) with
          | nr :: _ -> parse_int ln nr
          | [] -> fail ln "bad regs %S" r
        in
        (name, nparams, nregs)
      | _ -> fail ln "bad func header %S" s))

type pblock = { mutable rinstrs : instr list; mutable pterm : term option }

(** Parse a whole program from the [Pp.program_str] syntax. *)
let program (text : string) : Prog.t =
  let lines = String.split_on_char '\n' text in
  let globals = ref [] in
  let funcs = ref [] in
  let main = ref None in
  (* current function being assembled *)
  let cur : (string * int * int) option ref = ref None in
  let blocks : pblock list ref = ref [] in
  let curblock : pblock option ref = ref None in
  let finish_func () =
    match !cur with
    | None -> ()
    | Some (name, nparams, nregs) ->
      let bs = List.rev !blocks in
      let blocks =
        Array.of_list
          (List.mapi
             (fun i (pb : pblock) ->
               match pb.pterm with
               | Some term -> { Prog.instrs = List.rev pb.rinstrs; term }
               | None -> failwith (Printf.sprintf "block %d of %s unterminated" i name))
             bs)
      in
      funcs := (name, { Prog.name; nparams; nregs; blocks }) :: !funcs;
      cur := None;
      curblock := None;
      blocks |> ignore
  in
  List.iteri
    (fun idx raw ->
      let ln = idx + 1 in
      let line = strip raw in
      let line =
        match String.index_opt line '#' with
        | Some 0 -> ""
        | _ -> line
      in
      if line = "" then ()
      else if starts_with ~prefix:"global @" line then begin
        let rest = after ~prefix:"global @" line in
        match String.index_opt rest ':' with
        | None -> fail ln "bad global %S" line
        | Some i ->
          let name = strip (String.sub rest 0 i) in
          let tail = strip (String.sub rest (i + 1) (String.length rest - i - 1)) in
          let size, init =
            match String.split_on_char ' ' tail with
            | sz :: "bytes" :: "init" :: pairs ->
              let init =
                List.map
                  (fun pr ->
                    match String.split_on_char ':' pr with
                    | [ w; v ] -> (parse_int ln w, parse_int ln v)
                    | _ -> fail ln "bad init pair %S" pr)
                  (List.filter (fun x -> x <> "") pairs)
              in
              (parse_int ln sz, init)
            | sz :: _ -> (parse_int ln sz, [])
            | [] -> fail ln "bad global size %S" tail
          in
          globals := { Prog.gname = name; size; init } :: !globals
      end
      else if starts_with ~prefix:"main = " line then
        main := Some (strip (after ~prefix:"main = " line))
      else if starts_with ~prefix:"func " line then begin
        finish_func ();
        cur := Some (parse_func_header ln line);
        blocks := []
      end
      else if starts_with ~prefix:".b" line then begin
        (* block label ".bK:" *)
        let pb = { rinstrs = []; pterm = None } in
        blocks := pb :: !blocks;
        curblock := Some pb
      end
      else begin
        match !curblock with
        | None -> fail ln "instruction outside a block: %S" line
        | Some pb -> (
          match parse_term ln line with
          | Some t ->
            if pb.pterm <> None then fail ln "second terminator: %S" line;
            pb.pterm <- Some t
          | None ->
            if pb.pterm <> None then fail ln "instruction after terminator: %S" line;
            pb.rinstrs <- parse_instr ln line :: pb.rinstrs)
      end;
      ignore is_space)
    lines;
  finish_func ();
  let main =
    match !main with Some m -> m | None -> failwith "Parse.program: no main"
  in
  { Prog.globals = List.rev !globals; funcs = List.rev !funcs; main }
