(** Sparse paged word-addressable memory.

    4 KiB pages materialize on first touch; untouched memory reads as
    zero. Words are native ints (the IR machine word); addresses must be
    8-byte aligned. *)

type t

val page_words : int
val page_bytes : int

val create : unit -> t

(** Raise [Invalid_argument] on unaligned or negative addresses. *)
val read : t -> int -> int

val write : t -> int -> int -> unit

(** Read-modify-write one word: [mutate t a f] stores [f (read t a)] —
    used by the persistence-path fault injectors to tear or bit-flip a
    surviving NVM word in place. *)
val mutate : t -> int -> (int -> int) -> unit

(** Deep copy. *)
val snapshot : t -> t

(** Structural equality treating absent pages as zero-filled. *)
val equal : t -> t -> bool

(** First differing (address, left value, right value), if any. *)
val first_diff : t -> t -> (int * int * int) option

(** [equal]/[first_diff] with an exclusion predicate: words whose address
    satisfies [except] are ignored. Used to compare golden and recovered
    images modulo the flight-recorder region, which is observability
    state and legitimately differs across a crash. *)
val equal_except : except:(int -> bool) -> t -> t -> bool

val first_diff_except :
  except:(int -> bool) -> t -> t -> (int * int * int) option

(** Iterate non-zero words as [f addr value]. *)
val iter : (int -> int -> unit) -> t -> unit
