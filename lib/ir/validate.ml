(** Structural validation of IR programs.

    Run after construction and after every compiler pass in tests: label
    ranges, register ranges, referenced globals/functions exist, unique
    names, boundary ids positive. Returns a list of human-readable error
    strings; empty means valid. *)

open Types

(** Intrinsics resolved by the interpreter rather than the program: name ->
    arity. [__out v] appends [v] to the machine's observable output. *)
let intrinsics = [ ("__out", 1) ]

let check_func (prog : Prog.t) (fn : Prog.func) : string list =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let nblocks = Array.length fn.blocks in
  if nblocks = 0 then err "%s: no blocks" fn.name;
  let check_reg what r =
    if r < 0 || r >= fn.nregs then err "%s: %s register %d out of range" fn.name what r
  in
  let check_operand = function Reg r -> check_reg "use" r | Imm _ -> () in
  let check_label l =
    if l < 0 || l >= nblocks then err "%s: label %d out of range" fn.name l
  in
  (* boundary ids key per-function recovery metadata, so a repeat would
     make recovery restore the wrong slice *)
  let bids = Hashtbl.create 16 in
  (* Block-local shape of each register, for the flush-address check:
     a comparison result is a boolean and a misaligned constant is no
     word address, so flushing either is a program bug. *)
  let shape : (reg, [ `Bool | `Const of int ]) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun bi (blk : Prog.block) ->
      Hashtbl.reset shape;
      List.iter
        (fun ins ->
          List.iter (check_reg "use") (uses ins);
          (match def ins with Some d -> check_reg "def" d | None -> ());
          (match ins with
          | Flush (base, off) -> (
            match Hashtbl.find_opt shape base with
            | Some `Bool ->
              err "%s: block %d flushes a comparison result (r%d), not an address"
                fn.name bi base
            | Some (`Const c) when (c + off) land 7 <> 0 ->
              err "%s: block %d flushes misaligned address 0x%x" fn.name bi (c + off)
            | _ -> ())
          | _ -> ());
          (match ins with
          | Cmp (_, dst, _, _) -> Hashtbl.replace shape dst `Bool
          | Mov (dst, Imm v) -> Hashtbl.replace shape dst (`Const v)
          | _ -> (
            match def ins with
            | Some d -> Hashtbl.remove shape d
            | None -> ()));
          match ins with
          | La (_, sym) ->
            if Prog.find_global prog sym = None then
              err "%s: block %d references unknown global %S" fn.name bi sym
          | Call (callee, args, _) -> (
            List.iter check_operand args;
            match List.assoc_opt callee intrinsics with
            | Some arity ->
              if List.length args <> arity then
                err "%s: intrinsic %s with %d args, expected %d" fn.name callee
                  (List.length args) arity
            | None -> (
              match Prog.find_func prog callee with
              | None -> err "%s: block %d calls unknown function %S" fn.name bi callee
              | Some f ->
                if List.length args <> f.nparams then
                  err "%s: call to %s with %d args, expected %d" fn.name callee
                    (List.length args) f.nparams))
          | Boundary id ->
            if id < 0 then err "%s: negative boundary id" fn.name
            else if Hashtbl.mem bids id then
              err "%s: duplicate boundary id %d" fn.name id
            else Hashtbl.replace bids id ()
          | Bin _ | Cmp _ | Mov _ | Load _ | Store _ | Atomic_rmw _ | Cas _
          | Fence | Flush _ | Pfence | Ckpt _ -> ())
        blk.instrs;
      List.iter (check_reg "use") (term_uses blk.term);
      List.iter check_label (term_succs blk.term))
    fn.blocks;
  List.rev !errs

let check (prog : Prog.t) : string list =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  (* unique names *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (g : Prog.global) ->
      if Hashtbl.mem seen g.gname then err "duplicate global %S" g.gname;
      Hashtbl.replace seen g.gname ();
      if g.size <= 0 || g.size mod 8 <> 0 then
        err "global %S: bad size %d" g.gname g.size;
      List.iter
        (fun (w, _) ->
          if w < 0 || w * 8 >= g.size then
            err "global %S: init word %d out of range" g.gname w)
        g.init)
    prog.globals;
  let fseen = Hashtbl.create 16 in
  List.iter
    (fun (n, (f : Prog.func)) ->
      if Hashtbl.mem fseen n then err "duplicate function %S" n;
      Hashtbl.replace fseen n ();
      if n <> f.name then err "function list name %S <> func name %S" n f.name)
    prog.funcs;
  if Prog.find_func prog prog.main = None then err "main function %S missing" prog.main;
  let func_errs =
    List.concat_map (fun (_, f) -> check_func prog f) prog.funcs
  in
  List.rev !errs @ func_errs

let check_exn prog =
  match check prog with
  | [] -> ()
  | errs -> failwith ("Validate.check_exn:\n  " ^ String.concat "\n  " errs)
