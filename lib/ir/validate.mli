(** Structural validation of IR programs: label and register ranges,
    referenced globals/functions exist, unique names, call arities,
    boundary ids non-negative and unique within their function. Run
    after construction and after every compiler pass in tests. *)

(** Intrinsics resolved by the interpreter rather than the program:
    name -> arity. [__out v] appends [v] to the machine's observable
    output. *)
val intrinsics : (string * int) list

(** Human-readable errors for one function. *)
val check_func : Prog.t -> Prog.func -> string list

(** All errors of a program; empty means valid. *)
val check : Prog.t -> string list

(** Raises [Failure] with the error list when invalid. *)
val check_exn : Prog.t -> unit
